// Command rptcn trains an RPTCN predictor on a trace CSV (or a generated
// synthetic workload) and prints test metrics plus a k-step forecast — the
// end-to-end flow of the paper's Algorithm 1.
//
// Usage:
//
//	rptcn -input trace.csv -entity c_10000 -scenario mul-exp -horizon 5
//	rptcn -synthetic -scenario uni            # no CSV needed
//	rptcn -input trace.csv -target mem_util_percent
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/trace"
	"repro/internal/train"
)

func main() {
	var (
		input     = flag.String("input", "", "trace CSV in v2018 layout (empty with -synthetic)")
		synthetic = flag.Bool("synthetic", false, "generate a synthetic workload instead of reading a CSV")
		entityID  = flag.String("entity", "", "entity to train on (default: first in the file)")
		kindName  = flag.String("kind", "container", "entity kind of the CSV rows: machine or container")
		scenario  = flag.String("scenario", "mul-exp", "input scenario: uni, mul, or mul-exp")
		targetCol = flag.String("target", "cpu_util_percent", "indicator to predict")
		window    = flag.Int("window", 32, "input window length L")
		horizon   = flag.Int("horizon", 1, "forecast steps k")
		epochs    = flag.Int("epochs", 30, "max training epochs")
		samples   = flag.Int("samples", 2500, "synthetic series length")
		seed      = flag.Uint64("seed", 1, "seed")
		saveModel = flag.String("save", "", "write the fitted predictor to this file")
		ckptDir   = flag.String("checkpoint-dir", "", "write crash-safe training checkpoints under this directory")
		ckptEvery = flag.Int("checkpoint-every", 1, "checkpoint every N epochs (with -checkpoint-dir)")
		resume    = flag.Bool("resume", false, "resume from the newest checkpoint in -checkpoint-dir")
		guard     = flag.Bool("guard", false, "enable divergence guards (skip NaN/exploding batches, roll back on NaN validation)")
	)
	flag.Parse()

	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "rptcn: "+format+"\n", args...)
		os.Exit(1)
	}

	var sc core.Scenario
	switch strings.ToLower(*scenario) {
	case "uni":
		sc = core.Uni
	case "mul":
		sc = core.Mul
	case "mul-exp", "mulexp":
		sc = core.MulExp
	default:
		fail("unknown scenario %q (want uni|mul|mul-exp)", *scenario)
	}

	target, ok := trace.IndicatorByName(*targetCol)
	if !ok {
		fail("unknown indicator %q", *targetCol)
	}

	var entity *trace.EntitySeries
	switch {
	case *synthetic:
		kind := trace.Container
		if *kindName == "machine" {
			kind = trace.Machine
		}
		entity = trace.Generate(trace.GeneratorConfig{
			Entities: 1, Kind: kind, Samples: *samples, Seed: *seed,
		})[0]
	case *input != "":
		f, err := os.Open(*input)
		if err != nil {
			fail("%v", err)
		}
		kind := trace.Container
		if *kindName == "machine" {
			kind = trace.Machine
		}
		entities, stats, err := trace.ReadCSVStats(f, kind)
		f.Close()
		if err != nil {
			fail("%v", err)
		}
		if stats.Skipped > 0 {
			fmt.Fprintf(os.Stderr, "rptcn: skipped %d unusable rows in %s (kept %d)\n",
				stats.Skipped, *input, stats.Rows)
		}
		if len(entities) == 0 {
			fail("no entities in %s", *input)
		}
		entity = entities[0]
		if *entityID != "" {
			entity = nil
			for _, e := range entities {
				if e.ID == *entityID {
					entity = e
					break
				}
			}
			if entity == nil {
				fail("entity %q not found in %s", *entityID, *input)
			}
		}
	default:
		fail("need -input or -synthetic")
	}

	p := core.NewPredictor(core.PredictorConfig{
		Scenario: sc,
		Window:   *window,
		Horizon:  *horizon,
		Epochs:   *epochs,
		Seed:     *seed,
		Model: core.Config{
			Channels: []int{16, 16, 16}, KernelSize: 3, Dilations: []int{1, 2, 4},
			Dropout: 0.1, WeightNorm: true, FCWidth: 32,
		},
		Checkpoint: train.CheckpointConfig{Dir: *ckptDir, Every: *ckptEvery, Resume: *resume},
		Guard:      train.GuardConfig{Enabled: *guard},
	})

	fmt.Printf("training RPTCN (%s) on %s %s, target %s, %d samples\n",
		sc, entity.Kind, entity.ID, target, entity.Len())
	if err := p.Fit(entity.Matrix(), int(target)); err != nil {
		fail("fit: %v", err)
	}

	sel := p.SelectedIndicators()
	names := make([]string, len(sel))
	for i, s := range sel {
		names[i] = trace.Indicator(s).String()
	}
	fmt.Printf("screened indicators: %s\n", strings.Join(names, ", "))

	rep, err := p.TestMetrics()
	if err != nil {
		fail("evaluate: %v", err)
	}
	fmt.Printf("test MSE = %.4f x10^-2, MAE = %.4f x10^-2 (normalized scale)\n",
		rep.MSE*100, rep.MAE*100)

	h := p.History()
	fmt.Printf("trained %d epochs (best validation at epoch %d, early-stopped=%v)\n",
		len(h.TrainLoss), h.BestEpoch, h.Stopped)

	forecast, err := p.Forecast()
	if err != nil {
		fail("forecast: %v", err)
	}
	fmt.Printf("next %d-step %s forecast:", *horizon, target)
	for _, v := range forecast {
		fmt.Printf(" %.2f", v)
	}
	fmt.Println()

	if *saveModel != "" {
		// Atomic write: a crash mid-save never leaves a truncated model.
		if err := p.SaveFile(*saveModel); err != nil {
			fail("save: %v", err)
		}
		fmt.Printf("saved predictor to %s\n", *saveModel)
	}
}
