// Command rptcntop is a polling terminal dashboard for a running rptcnd:
// the operator's single-screen answer to "is the fleet healthy right
// now, and which machines are not". Each tick it fetches /debug/fleet
// and /debug/quality from the serving address and renders request rate,
// latency quantiles, breaker and degradation state, the top-K entities
// by load/latency/errors, drift flags, SLO alarms, and tail-sampling
// accounting.
//
// Usage:
//
//	rptcntop                          # http://localhost:8080, 2s refresh
//	rptcntop -addr http://host:8080 -interval 1s
//	rptcntop -once                    # one snapshot, no screen clearing (CI/scripts)
//
// The dashboard is read-only and stateless across restarts: everything
// it shows comes from the two debug endpoints, so anything visible here
// is equally available to curl and to real dashboards.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/obs/sketch"
	"repro/internal/quality"
	"repro/internal/server"
)

func main() {
	var (
		addr     = flag.String("addr", "http://localhost:8080", "base URL of the rptcnd serving address")
		interval = flag.Duration("interval", 2*time.Second, "poll interval")
		once     = flag.Bool("once", false, "print one snapshot and exit (no screen clearing)")
		rows     = flag.Int("rows", 10, "max entity rows shown per table")
	)
	flag.Parse()

	client := &http.Client{Timeout: 5 * time.Second}
	var prev *sample
	for {
		cur, err := poll(client, *addr)
		now := time.Now()
		if !*once {
			fmt.Print("\x1b[H\x1b[2J") // home + clear
		}
		if err != nil {
			fmt.Printf("rptcntop: %s unreachable: %v\n", *addr, err)
			if *once {
				os.Exit(1)
			}
		} else {
			render(os.Stdout, *addr, now, prev, cur, *rows)
			prev = cur
		}
		if *once {
			return
		}
		time.Sleep(*interval)
	}
}

// sample is one polled snapshot plus the instant it was taken, so
// successive samples yield rates.
type sample struct {
	at      time.Time
	fleet   server.FleetStatus
	quality quality.StatusReport
	qualErr error // /debug/quality is optional; the dashboard degrades
}

func poll(c *http.Client, base string) (*sample, error) {
	s := &sample{at: time.Now()}
	if err := getJSON(c, base+"/debug/fleet", &s.fleet); err != nil {
		return nil, err
	}
	s.qualErr = getJSON(c, base+"/debug/quality", &s.quality)
	return s, nil
}

func getJSON(c *http.Client, url string, v any) error {
	resp, err := c.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return fmt.Errorf("%s: status %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// render writes the dashboard for the current sample; prev (may be nil)
// supplies the baseline for request/error rates.
func render(w io.Writer, addr string, now time.Time, prev, cur *sample, rows int) {
	f := &cur.fleet
	fmt.Fprintf(w, "rptcntop · %s · %s\n", addr, now.Format("15:04:05"))

	reqRate, errRate := "-", "-"
	if prev != nil && cur.at.After(prev.at) {
		dt := cur.at.Sub(prev.at).Seconds()
		reqRate = fmt.Sprintf("%.1f/s", float64(f.Fleet.Requests-prev.fleet.Fleet.Requests)/dt)
		errRate = fmt.Sprintf("%.1f/s", float64(f.Fleet.Errors-prev.fleet.Fleet.Errors)/dt)
	}
	breaker := "closed"
	if f.BreakerOpen {
		breaker = "OPEN"
	}
	g := f.Fleet.Global
	fmt.Fprintf(w, "req %s (total %d) · err %s (total %d) · p50 %s · p99 %s · max %s · breaker %s\n",
		reqRate, f.Fleet.Requests, errRate, f.Fleet.Errors,
		fmtDur(g.P50), fmtDur(g.P99), fmtDur(g.Max), breaker)
	fmt.Fprintf(w, "drift: error=%s input=%s", flag4(f.ErrorDrift), flag4(f.InputDrift))
	if ts := f.TraceSampling; ts != nil {
		total := ts.KeptMarked + ts.KeptSlow + ts.KeptSampled + ts.Dropped
		fmt.Fprintf(w, " · traces kept %d/%d (marked %d, slow %d)",
			ts.KeptMarked+ts.KeptSlow+ts.KeptSampled, total, ts.KeptMarked, ts.KeptSlow)
	}
	fmt.Fprintln(w)

	// Active alarms first: an operator scanning the top of the screen
	// must see every breach without scrolling.
	var alarms []string
	if cur.qualErr == nil {
		for _, r := range cur.quality.SLO {
			if r.State == "breach" {
				alarms = append(alarms, fmt.Sprintf("SLO BREACH %s (value %.4g over %d pairs)", r.Rule, r.Value, r.Count))
			}
		}
	}
	for _, d := range []struct{ name, state string }{
		{"error-drift", f.ErrorDrift}, {"input-drift", f.InputDrift},
	} {
		if d.state == "alarm" || d.state == "warn" {
			alarms = append(alarms, fmt.Sprintf("DRIFT %s: %s", d.name, d.state))
		}
	}
	if f.BreakerOpen {
		alarms = append(alarms, "CIRCUIT BREAKER OPEN: forecasts degrading to fallback")
	}
	if len(alarms) > 0 {
		fmt.Fprintf(w, "\n!! %s\n", strings.Join(alarms, "\n!! "))
	}

	fmt.Fprintf(w, "\ntop entities by requests (K=%d, showing %d)\n", f.Fleet.K, min(rows, len(f.Fleet.Entities)))
	fmt.Fprintf(w, "%-20s %10s %10s %10s %10s %10s\n", "entity", "reqs≤", "±err", "p50", "p99", "max")
	for i, e := range f.Fleet.Entities {
		if i >= rows {
			break
		}
		fmt.Fprintf(w, "%-20s %10.0f %10.0f %10s %10s %10s\n",
			clip(e.Entity, 20), e.Requests, e.RequestsErr,
			fmtDur(e.Latency.P50), fmtDur(e.Latency.P99), fmtDur(e.Latency.Max))
	}
	topTable(w, "top by latency sum", f.Fleet.TopByLatency, rows, func(v float64) string {
		return fmtDur(v)
	})
	topTable(w, "top by errors", f.Fleet.TopByErrors, rows, func(v float64) string {
		return fmt.Sprintf("%.0f", v)
	})

	if len(f.Exemplars) > 0 {
		fmt.Fprintf(w, "\nlatency exemplars (le → trace)\n")
		for _, ex := range f.Exemplars {
			fmt.Fprintf(w, "  ≤%-8s %-10s entity=%s trace=%s\n",
				ex.Le, fmtDur(ex.Exemplar.Value), orDash(ex.Exemplar.Entity), orDash(ex.Exemplar.TraceID))
		}
	}

	if cur.qualErr == nil && len(cur.quality.SLO) > 0 {
		fmt.Fprintf(w, "\nSLO rules\n")
		sloSorted := append([]quality.RuleStatus(nil), cur.quality.SLO...)
		sort.SliceStable(sloSorted, func(i, j int) bool { return sloSorted[i].State > sloSorted[j].State })
		for _, r := range sloSorted {
			fmt.Fprintf(w, "  [%-7s] %s = %.4g (%d pairs)\n", r.State, r.Rule, r.Value, r.Count)
		}
	}
}

func topTable(w io.Writer, title string, items []sketch.Item, rows int, fmtW func(float64) string) {
	if len(items) == 0 {
		return
	}
	fmt.Fprintf(w, "\n%s\n", title)
	for i, it := range items {
		if i >= rows {
			break
		}
		fmt.Fprintf(w, "  %-20s %12s ±%s\n", clip(it.Key, 20), fmtW(it.Weight), fmtW(it.Err))
	}
}

func fmtDur(seconds float64) string {
	switch {
	case seconds <= 0:
		return "0"
	case seconds < 1e-3:
		return fmt.Sprintf("%.0fµs", seconds*1e6)
	case seconds < 1:
		return fmt.Sprintf("%.1fms", seconds*1e3)
	default:
		return fmt.Sprintf("%.2fs", seconds)
	}
}

// flag4 renders a drift state compactly, uppercasing anything abnormal.
func flag4(state string) string {
	if state == "" {
		return "-"
	}
	if state != "ok" && state != "warmup" {
		return strings.ToUpper(state)
	}
	return state
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}
