package main

import (
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/sketch"
	"repro/internal/quality"
	"repro/internal/server"
)

func fakeSample(at time.Time, requests, errors uint64) *sample {
	ts := server.FleetStatus{
		Fleet: sketch.Report{
			Requests: requests, Errors: errors, K: 8,
			TopByCount:   []sketch.Item{{Key: "m_1", Weight: 40}, {Key: "m_2", Weight: 12}},
			TopByLatency: []sketch.Item{{Key: "m_2", Weight: 0.9}},
			TopByErrors:  []sketch.Item{{Key: "m_7", Weight: 3}},
			Global:       sketch.Quantiles{Count: requests, P50: 0.002, P90: 0.004, P99: 0.02, Max: 0.5},
			Entities: []sketch.EntityStats{
				{Entity: "m_1", Requests: 40, Latency: sketch.Quantiles{Count: 40, P50: 0.001, P99: 0.01, Max: 0.02}},
			},
		},
		Exemplars: []obs.BucketExemplar{
			{Le: "0.005", Exemplar: obs.Exemplar{Value: 0.002, TraceID: "t0000000000000005", Entity: "m_1"}},
		},
		ErrorDrift:  "alarm",
		InputDrift:  "ok",
		BreakerOpen: true,
	}
	return &sample{
		at:    at,
		fleet: ts,
		quality: quality.StatusReport{
			SLO: []quality.RuleStatus{
				{Rule: "mae<=5@256", State: "breach", Value: 7.2, Count: 256},
				{Rule: "p90_abs_err<=12", State: "ok", Value: 3.1, Count: 256},
			},
		},
	}
}

func TestRenderDashboard(t *testing.T) {
	t0 := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	prev := fakeSample(t0, 100, 2)
	cur := fakeSample(t0.Add(2*time.Second), 150, 4)

	var b strings.Builder
	render(&b, "http://localhost:8080", cur.at, prev, cur, 10)
	out := b.String()

	for _, want := range []string{
		"req 25.0/s",   // (150-100)/2s
		"err 1.0/s",    // (4-2)/2s
		"breaker OPEN", // breaker state surfaced
		"ALARM",        // error drift alarm flag
		"SLO BREACH mae<=5@256",
		"CIRCUIT BREAKER OPEN",
		"m_1",               // top entity table
		"t0000000000000005", // exemplar trace id
		"2.0ms",             // exemplar latency formatting
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dashboard missing %q:\n%s", want, out)
		}
	}
}

func TestRenderFirstSampleNoRates(t *testing.T) {
	cur := fakeSample(time.Now(), 10, 0)
	var b strings.Builder
	render(&b, "x", cur.at, nil, cur, 10)
	if !strings.Contains(b.String(), "req - ") {
		t.Fatalf("first sample should show dashes for rates:\n%s", b.String())
	}
}

func TestFmtDur(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{0, "0"}, {0.000002, "2µs"}, {0.0002, "200µs"}, {0.0025, "2.5ms"}, {1.5, "1.50s"},
	}
	for _, c := range cases {
		if got := fmtDur(c.in); got != c.want {
			t.Errorf("fmtDur(%g) = %q, want %q", c.in, got, c.want)
		}
	}
}
