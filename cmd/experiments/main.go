// Command experiments regenerates the paper's tables and figures on the
// synthetic trace substrate and prints paper-style rows (plus optional
// CSV).
//
// Usage:
//
//	experiments -all                 # everything (slow)
//	experiments -table 2             # Table II only
//	experiments -fig 8               # one figure
//	experiments -ablations           # the DESIGN.md ablations
//	experiments -fast                # reduced sizes for a quick look
//	experiments -seed 7 -samples 4000 -epochs 50
//	experiments -fast -table 2 -trace-out traces.jsonl   # span traces of every run
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/obs"
	obstrace "repro/internal/obs/trace"
	"repro/internal/trace"
	"repro/internal/train"
)

func main() {
	var (
		all       = flag.Bool("all", false, "run every experiment")
		table     = flag.Int("table", 0, "run one table (1 or 2)")
		fig       = flag.Int("fig", 0, "run one figure (1,2,3,7,8,9,10)")
		ablations = flag.Bool("ablations", false, "run the ablation studies")
		general   = flag.Bool("generalization", false, "run the cross-entity generalization study")
		timing    = flag.Bool("timing", false, "run the TCN-parameter timing study")
		naiveCmp  = flag.Bool("naive", false, "compare RPTCN against classical reference forecasters")
		fast      = flag.Bool("fast", false, "reduced sizes (seconds instead of minutes)")
		verbose   = flag.Bool("verbose", false, "log per-epoch training progress to stderr")
		csv       = flag.Bool("csv", false, "also print machine-readable CSV where available")
		seed      = flag.Uint64("seed", 1, "experiment seed")
		samples   = flag.Int("samples", 0, "series length override")
		epochs    = flag.Int("epochs", 0, "training epochs override")
		entities  = flag.Int("entities", 0, "fleet size override")
		traceOut  = flag.String("trace-out", "", "record span traces of every training run and write them as JSONL to this file")
	)
	flag.Parse()

	opts := experiments.Options{Seed: *seed}
	if *fast {
		opts = experiments.Fast(*seed)
	}
	if *samples > 0 {
		opts.Samples = *samples
	}
	if *epochs > 0 {
		opts.Epochs = *epochs
	}
	if *entities > 0 {
		opts.Entities = *entities
	}
	if *verbose {
		opts.Hooks = append(opts.Hooks, train.NewLogHook(obs.Logger("experiments")))
		fmt.Fprint(os.Stderr, gemmSpeedupTable(*seed))
	}
	if *traceOut != "" {
		obstrace.Default().SetEnabled(true)
		opts.Tracer = obstrace.Default()
		defer func() {
			f, err := os.Create(*traceOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments: trace-out:", err)
				return
			}
			defer f.Close()
			if err := obstrace.Default().WriteJSONL(f); err != nil {
				fmt.Fprintln(os.Stderr, "experiments: trace-out:", err)
			}
		}()
	}

	if !*all && *table == 0 && *fig == 0 && !*ablations && !*general && !*timing && !*naiveCmp {
		flag.Usage()
		os.Exit(2)
	}

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}

	if *all || *table == 1 {
		fmt.Println(experiments.TableI())
	}
	if *all || *fig == 1 {
		fmt.Println(experiments.RunFig1(opts).Format())
	}
	if *all || *fig == 2 {
		fmt.Println(experiments.RunFig2(opts).Format())
	}
	if *all || *fig == 3 {
		fmt.Println(experiments.RunFig3(opts).Format())
	}
	if *all || *fig == 7 {
		fmt.Println(experiments.RunFig7(opts).Format())
	}
	if *all || *table == 2 {
		res, err := experiments.RunTableII(opts)
		if err != nil {
			fail(err)
		}
		fmt.Println(res.Format())
		if *csv {
			fmt.Println(res.CSV())
		}
	}
	if *all || *fig == 8 {
		res, err := experiments.RunFig8(opts)
		if err != nil {
			fail(err)
		}
		fmt.Println(res.Format())
	}
	if *all || *fig == 9 {
		res, err := experiments.RunFig9(opts)
		if err != nil {
			fail(err)
		}
		fmt.Println(res.Format())
	}
	if *all || *fig == 10 {
		res, err := experiments.RunFig10(opts)
		if err != nil {
			fail(err)
		}
		fmt.Println(res.Format())
	}
	if *all || *ablations {
		for _, run := range []func(experiments.Options) (*experiments.AblationResult, error){
			experiments.RunAblationHeads,
			experiments.RunAblationExpansion,
			experiments.RunAblationDilations,
			experiments.RunAblationWeightNorm,
			experiments.RunAblationScreening,
			experiments.RunAblationFutureWork,
		} {
			res, err := run(opts)
			if err != nil {
				fail(err)
			}
			fmt.Println(res.Format())
		}
		res, err := experiments.RunHorizonSweep(opts, nil)
		if err != nil {
			fail(err)
		}
		fmt.Println(res.Format())
	}
	if *all || *general {
		res, err := experiments.RunGeneralization(opts, 3)
		if err != nil {
			fail(err)
		}
		fmt.Println(res.Format())
	}
	if *all || *timing {
		res, err := experiments.RunTimingStudy(opts)
		if err != nil {
			fail(err)
		}
		fmt.Println(res.Format())
	}
	if *all || *naiveCmp {
		for _, kind := range []trace.EntityKind{trace.Container, trace.Machine} {
			res, err := experiments.RunNaiveComparison(opts, kind)
			if err != nil {
				fail(err)
			}
			fmt.Println(res.Format())
		}
	}
}
