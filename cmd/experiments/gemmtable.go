package main

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/tensor"
)

// gemmSpeedupTable times the packed cache-blocked GEMM against the naive
// reference loops on the matmul shapes the model actually runs, so the
// per-layer profiler output stays honest about where time goes. Shapes:
// the im2col conv GEMM, the fused LSTM gate projection, the FC head, and
// two square sizes for scale.
func gemmSpeedupTable(seed uint64) string {
	r := tensor.NewRNG(seed)
	fill := func(t *tensor.Tensor) *tensor.Tensor {
		for i := range t.Data {
			t.Data[i] = r.NormFloat64()
		}
		return t
	}

	type row struct {
		op, shape     string
		naive, packed func()
	}
	var rows []row
	add := func(op, shape string, naive, packed func()) {
		rows = append(rows, row{op, shape, naive, packed})
	}

	// Dilated conv as im2col: [in·k, b·t]ᵀ × [in·k, out].
	{
		a, b := fill(tensor.New(48, 1024)), fill(tensor.New(48, 16))
		dst := tensor.New(1024, 16)
		add("TMatMulAcc", "48x1024 · 48x16",
			func() { a.ReferenceTMatMulAcc(b, dst) },
			func() { a.TMatMulAcc(b, dst) })
	}
	// Fused LSTM gate projection: [T·b, F] × [4H, F]ᵀ.
	{
		a, b := fill(tensor.New(512, 16)), fill(tensor.New(256, 16))
		dst := tensor.New(512, 256)
		add("MatMulTInto", "512x16 · 256x16T",
			func() { a.ReferenceMatMulTInto(b, dst) },
			func() { a.MatMulTInto(b, dst) })
	}
	// FC head after flatten: [batch, C·W] × [width, C·W]ᵀ.
	{
		a, b := fill(tensor.New(32, 512)), fill(tensor.New(128, 512))
		dst := tensor.New(32, 128)
		add("MatMulTInto", "32x512 · 128x512T",
			func() { a.ReferenceMatMulTInto(b, dst) },
			func() { a.MatMulTInto(b, dst) })
	}
	// Square GEMMs for scale.
	for _, n := range []int{256, 512} {
		a, b := fill(tensor.New(n, n)), fill(tensor.New(n, n))
		dst := tensor.New(n, n)
		add("MatMulInto", fmt.Sprintf("%dx%d · %dx%d", n, n, n, n),
			func() { a.ReferenceMatMulInto(b, dst) },
			func() { a.MatMulInto(b, dst) })
	}

	var sb strings.Builder
	sb.WriteString("GEMM kernel: packed vs naive (ns/op)\n")
	fmt.Fprintf(&sb, "%-12s %-20s %14s %14s %9s\n", "op", "shape", "naive", "packed", "speedup")
	for _, rw := range rows {
		naive, packed := timeOp(rw.naive), timeOp(rw.packed)
		fmt.Fprintf(&sb, "%-12s %-20s %14.0f %14.0f %8.2fx\n",
			rw.op, rw.shape, naive, packed, naive/packed)
	}
	return sb.String()
}

// timeOp returns the mean ns per call over a short fixed wall-clock
// budget, after one warm-up call.
func timeOp(f func()) float64 {
	f()
	const budget = 30 * time.Millisecond
	n := 0
	start := time.Now()
	for time.Since(start) < budget {
		f()
		n++
	}
	return float64(time.Since(start).Nanoseconds()) / float64(n)
}
