// Command chaosfit demonstrates and verifies the crash-recovery contract
// end to end: it trains an RPTCN predictor, deliberately kills the run at
// a chosen epoch, resumes from the newest checkpoint, and checks that the
// stitched loss history and final forecast are bitwise identical to an
// uninterrupted baseline run.
//
// Both the interrupted and the resumed run journal into <dir>/journal, so
// the resulting JSONL files — the abruptly-ending crash journal and the
// resumed journal opening with a "resume" event — are the durable record
// of the exercise. CI's chaos-smoke job runs this and uploads them as an
// artifact.
//
// Usage:
//
//	chaosfit -dir chaos-run -epochs 6 -kill-epoch 3
//
// Exit status 0 means the resumed run reproduced the baseline bitwise.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/obs/runlog"
	"repro/internal/trace"
	"repro/internal/train"
)

func main() {
	var (
		dir       = flag.String("dir", "chaos-run", "working directory for checkpoints and journals")
		samples   = flag.Int("samples", 600, "synthetic series length")
		epochs    = flag.Int("epochs", 6, "training epochs")
		killEpoch = flag.Int("kill-epoch", 3, "epoch at which the first run is killed")
		seed      = flag.Uint64("seed", 7, "seed")
	)
	flag.Parse()

	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "chaosfit: "+format+"\n", args...)
		os.Exit(1)
	}
	if *killEpoch <= 0 || *killEpoch >= *epochs {
		fail("-kill-epoch must be in (0, epochs)")
	}

	entity := trace.Generate(trace.GeneratorConfig{
		Entities: 1, Kind: trace.Container, Samples: *samples, Seed: *seed,
	})[0]
	ckptDir := filepath.Join(*dir, "checkpoints")
	journalDir := filepath.Join(*dir, "journal")

	cfg := func() core.PredictorConfig {
		return core.PredictorConfig{
			Scenario: core.MulExp, Window: 16, Horizon: 3,
			Epochs: *epochs, Seed: *seed, Patience: -1,
			Model: core.Config{
				Channels: []int{8, 8}, KernelSize: 3,
				Dropout: 0.1, WeightNorm: true, FCWidth: 16,
			},
		}
	}
	target := int(trace.CPUUtilPercent)

	// Uninterrupted baseline: the ground truth the resumed run must match.
	baseline := core.NewPredictor(cfg())
	if err := baseline.Fit(entity.Matrix(), target); err != nil {
		fail("baseline fit: %v", err)
	}

	// Run 1: checkpointing on, killed mid-run by a hook. The recover here
	// stands in for a process crash; its journal simply stops.
	j1, err := runlog.Create(journalDir)
	if err != nil {
		fail("journal: %v", err)
	}
	killCfg := cfg()
	killCfg.Checkpoint = train.CheckpointConfig{Dir: ckptDir}
	killCfg.Hooks = []train.Hook{
		train.NewJournalHook(j1),
		train.FuncHook{EpochEnd: func(s train.EpochStats) {
			if s.Epoch == *killEpoch {
				panic("chaosfit: simulated crash")
			}
		}},
	}
	crashed := false
	func() {
		defer func() {
			if recover() != nil {
				crashed = true
			}
		}()
		core.NewPredictor(killCfg).Fit(entity.Matrix(), target) //nolint:errcheck
	}()
	if !crashed {
		fail("kill hook never fired")
	}
	j1.Close() //nolint:errcheck // flush what the "crash" left behind
	fmt.Printf("run 1 killed at epoch %d (journal %s)\n", *killEpoch, j1.Path())

	// Run 2: resume from the newest checkpoint and finish the run.
	j2, err := runlog.Create(journalDir)
	if err != nil {
		fail("journal: %v", err)
	}
	resCfg := cfg()
	resCfg.Checkpoint = train.CheckpointConfig{Dir: ckptDir, Resume: true}
	resCfg.Hooks = []train.Hook{train.NewJournalHook(j2)}
	resumed := core.NewPredictor(resCfg)
	if err := resumed.Fit(entity.Matrix(), target); err != nil {
		fail("resumed fit: %v", err)
	}
	rep, err := resumed.TestMetrics()
	if err != nil {
		fail("test metrics: %v", err)
	}
	j2.Log(runlog.TypeFinal, map[string]any{"test_mse": rep.MSE, "test_mae": rep.MAE})
	if err := j2.Close(); err != nil {
		fail("journal close: %v", err)
	}
	fmt.Printf("run 2 resumed and finished (journal %s)\n", j2.Path())

	// The contract: the stitched history and the forecast are bitwise
	// identical to the uninterrupted baseline.
	bh, rh := baseline.History(), resumed.History()
	mismatch := 0
	check := func(name string, a, b []float64) {
		if len(a) != len(b) {
			fmt.Fprintf(os.Stderr, "chaosfit: %s length %d vs %d\n", name, len(b), len(a))
			mismatch++
			return
		}
		for i := range a {
			if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
				fmt.Fprintf(os.Stderr, "chaosfit: %s[%d] = %x, want %x\n",
					name, i, math.Float64bits(b[i]), math.Float64bits(a[i]))
				mismatch++
			}
		}
	}
	check("TrainLoss", bh.TrainLoss, rh.TrainLoss)
	check("ValidLoss", bh.ValidLoss, rh.ValidLoss)
	bf, err := baseline.Forecast()
	if err != nil {
		fail("baseline forecast: %v", err)
	}
	rf, err := resumed.Forecast()
	if err != nil {
		fail("resumed forecast: %v", err)
	}
	check("Forecast", bf, rf)
	if mismatch > 0 {
		fail("%d bitwise mismatches between baseline and resumed run", mismatch)
	}
	fmt.Printf("bitwise identical: %d epochs of loss history and the %d-step forecast\n",
		len(bh.TrainLoss), len(bf))
}
