// Command fleetreplay drives a running rptcnd with a multi-entity
// synthetic workload and then validates the fleet-telemetry surfaces —
// the smoke half of the CI fleet-smoke job, and a handy local load
// generator for eyeballing rptcntop.
//
// It generates -entities synthetic container series (internal/trace,
// deterministic by -seed), posts -requests forecasts round-robin across
// them with a skewed repeat pattern (so real heavy hitters exist), then
// fetches /debug/fleet and asserts the response is well-formed:
//
//   - request totals match what was sent
//   - top-K tables are non-empty, descending, within K
//   - per-entity latency quantiles are ordered (p50 ≤ p90 ≤ p99 ≤ max)
//   - exemplars parse (le is a float or +Inf) and carry entities
//   - when tracing is on, sampling decisions account for every trace
//
// Any violation exits non-zero, making the command a usable CI gate.
//
// Usage:
//
//	fleetreplay -addr http://localhost:8080 -entities 40 -requests 200
//	fleetreplay -fleet -entities 4096 -requests 12000 -expect-shards 8   # sharded-serving drill (see fleet.go)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs/sketch"
	"repro/internal/server"
	"repro/internal/trace"
)

func main() {
	var (
		addr     = flag.String("addr", "http://localhost:8080", "base URL of the rptcnd serving address")
		entities = flag.Int("entities", 40, "distinct synthetic entities to replay")
		requests = flag.Int("requests", 200, "total forecast requests to send")
		window   = flag.Int("window", 64, "history samples per request")
		seed     = flag.Uint64("seed", 7, "synthetic workload seed")
		wait     = flag.Duration("wait", 60*time.Second, "how long to wait for /readyz before giving up")

		adaptMode = flag.Bool("adapt", false, "drive the online-adaptation loop instead: ingest a mutated trace, replay it, and require a hot-swap (see adapt.go)")
		samples   = flag.Int("samples", 900, "adapt mode: synthetic series length")
		mutateAt  = flag.Int("mutate-at", 500, "adapt mode: sample index where the regime mutation is injected")
		adaptWait = flag.Duration("adapt-wait", 120*time.Second, "adapt mode: how long to wait for a hot-swap before failing")

		fleetMode    = flag.Bool("fleet", false, "drive the sharded-serving drill instead: chunked CSV ingest of the whole fleet, paginated listing, concurrent per-entity forecasts, /debug/shards balance assertions (see fleet.go)")
		concurrency  = flag.Int("concurrency", 64, "fleet mode: concurrent forecast clients (server needs -max-inflight at least this)")
		expectShards = flag.Int("expect-shards", 0, "fleet mode: require /debug/shards to report exactly this shard count (0 = any)")
		modelName    = flag.String("model", "", "fleet mode: serve every 4th forecast through ?model=<name> (the registry path)")
		extraEnt     = flag.Int("extra-entities", 0, "fleet mode: after the drill, ingest this many throwaway entities to push past the server's -max-entities cap and require evictions")
	)
	flag.Parse()

	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "fleetreplay: "+format+"\n", args...)
		os.Exit(1)
	}
	client := &http.Client{Timeout: 30 * time.Second}

	// Wait for the server to finish training and flip ready.
	deadline := time.Now().Add(*wait)
	for {
		resp, err := client.Get(*addr + "/readyz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		if time.Now().After(deadline) {
			fail("server at %s not ready after %s", *addr, *wait)
		}
		time.Sleep(500 * time.Millisecond)
	}

	if *adaptMode {
		runAdapt(client, *addr, *samples, *mutateAt, *window, *seed, *adaptWait, fail)
		return
	}
	if *fleetMode {
		runFleet(client, *addr, fleetCfg{
			entities:     *entities,
			requests:     *requests,
			window:       *window,
			concurrency:  *concurrency,
			expectShards: *expectShards,
			extra:        *extraEnt,
			seed:         *seed,
			model:        *modelName,
		}, fail)
		return
	}

	// One synthetic series per entity; the request history is its tail.
	series := trace.Generate(trace.GeneratorConfig{
		Entities: *entities, Kind: trace.Container, Samples: *window + 16, Seed: *seed,
	})
	bodies := make([][]byte, *entities)
	for i, e := range series {
		hist := make([][]float64, trace.NumIndicators)
		for j := range hist {
			m := e.Metrics[j]
			hist[j] = m[len(m)-*window:]
		}
		t := int64(1000 + i)
		raw, err := json.Marshal(server.ForecastRequest{
			Indicators: hist, Entity: e.ID, T: &t,
		})
		if err != nil {
			fail("marshal request: %v", err)
		}
		bodies[i] = raw
	}

	// Skewed replay: entity i is hit proportionally more the lower its
	// index (i*i wraparound), giving the heavy-hitter sketches real
	// hitters to find. Deterministic, so reruns see the same top-K.
	sent := make(map[string]int, *entities)
	for i := 0; i < *requests; i++ {
		idx := (i * i) % *entities
		resp, err := client.Post(*addr+"/v1/forecast", "application/json", strings.NewReader(string(bodies[idx])))
		if err != nil {
			fail("forecast %d: %v", i, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			fail("forecast %d: status %d", i, resp.StatusCode)
		}
		sent[series[idx].ID]++
	}
	fmt.Printf("replayed %d forecasts over %d entities\n", *requests, len(sent))

	// Fetch and validate the fleet view.
	resp, err := client.Get(*addr + "/debug/fleet")
	if err != nil {
		fail("fetch /debug/fleet: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fail("/debug/fleet: status %d", resp.StatusCode)
	}
	var st server.FleetStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		fail("decode /debug/fleet: %v", err)
	}

	var probs []string
	addf := func(format string, args ...any) { probs = append(probs, fmt.Sprintf(format, args...)) }

	if st.Fleet.Requests < uint64(*requests) {
		addf("requests %d < replayed %d", st.Fleet.Requests, *requests)
	}
	for _, tk := range []struct {
		name  string
		items []sketch.Item
	}{
		{"top_by_count", st.Fleet.TopByCount},
		{"top_by_latency_sum", st.Fleet.TopByLatency},
	} {
		if len(tk.items) == 0 {
			addf("%s empty after %d requests", tk.name, *requests)
			continue
		}
		if len(tk.items) > st.Fleet.K {
			addf("%s has %d entries, K=%d", tk.name, len(tk.items), st.Fleet.K)
		}
		for i := 1; i < len(tk.items); i++ {
			if tk.items[i].Weight > tk.items[i-1].Weight {
				addf("%s not descending at %d (%g > %g)", tk.name, i, tk.items[i].Weight, tk.items[i-1].Weight)
			}
		}
	}
	// The most-replayed entity must surface in the top-K by count.
	best, bestN := "", 0
	for id, n := range sent {
		if n > bestN {
			best, bestN = id, n
		}
	}
	found := false
	for _, it := range st.Fleet.TopByCount {
		if it.Key == best {
			found = true
			if it.Weight < float64(bestN) {
				addf("top entity %s estimate %g below true count %d (Space-Saving never undercounts)", best, it.Weight, bestN)
			}
		}
	}
	if !found {
		addf("heaviest entity %s (%d requests) missing from top-K", best, bestN)
	}
	for _, es := range st.Fleet.Entities {
		q := es.Latency
		if q.Count == 0 {
			continue
		}
		if !(q.P50 <= q.P90 && q.P90 <= q.P99 && q.P99 <= q.Max) {
			addf("entity %s quantiles not ordered: %+v", es.Entity, q)
		}
	}
	if len(st.Exemplars) == 0 {
		addf("no latency exemplars recorded")
	}
	for _, ex := range st.Exemplars {
		if ex.Le != "+Inf" {
			if _, err := strconv.ParseFloat(ex.Le, 64); err != nil {
				addf("exemplar le %q unparseable", ex.Le)
			}
		}
		if ex.Exemplar.Entity == "" {
			addf("exemplar in bucket %s has no entity", ex.Le)
		}
	}
	if ts := st.TraceSampling; ts != nil {
		total := ts.KeptMarked + ts.KeptSlow + ts.KeptSampled + ts.Dropped
		if total < uint64(*requests) {
			addf("sampling decisions %d < requests %d: traces vanished silently", total, *requests)
		}
		fmt.Printf("trace sampling: kept %d (marked %d, slow %d, sampled %d), dropped %d\n",
			ts.KeptMarked+ts.KeptSlow+ts.KeptSampled, ts.KeptMarked, ts.KeptSlow, ts.KeptSampled, ts.Dropped)
	}

	if len(probs) > 0 {
		fail("fleet view malformed:\n  %s", strings.Join(probs, "\n  "))
	}
	fmt.Printf("fleet view OK: %d requests, top entity %s, global p99 %.4gs\n",
		st.Fleet.Requests, st.Fleet.TopByCount[0].Key, st.Fleet.Global.P99)
}
