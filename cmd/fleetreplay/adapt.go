// Adapt mode (-adapt): instead of the fleet-telemetry check, drive the
// online-adaptation loop end to end against a running rptcnd started
// with -adapt (and, for CI cadences, -quality-fast):
//
//  1. generate a synthetic series with a regime mutation injected at
//     -mutate-at (deterministic by -seed),
//  2. stream the mutated tail into the server's ingestion rings (the
//     candidate's training data),
//  3. replay forecasts over the mutated regime with entity+t so the
//     requests' own self-join actuals resolve earlier forecasts —
//     feeding the mutation detector, the shadow scorer, and probation,
//  4. poll /debug/adapt until a hot-swap lands.
//
// The command exits non-zero unless a swap occurs before -adapt-wait,
// every replayed request returned 200 (zero dropped requests across the
// swap), and /v1/model reports generation ≥ 2 with an adapt snapshot.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/adapt"
	"repro/internal/server"
	"repro/internal/trace"
)

func runAdapt(client *http.Client, addr string, samples, mutateAt, hist int, seed uint64, wait time.Duration,
	fail func(string, ...any)) {
	if mutateAt+hist >= samples {
		fail("adapt: -mutate-at %d + -window %d leaves no mutated samples to replay (have %d)", mutateAt, hist, samples)
	}
	ser := trace.GenerateWithMutations(samples, []int{mutateAt}, seed)

	// The mutated tail becomes the rings' content — what a resource
	// manager's monitoring stream would have delivered since the regime
	// changed, and what the candidate fine-tunes on.
	tail := &trace.EntitySeries{ID: ser.ID, Kind: ser.Kind, Interval: ser.Interval}
	for i := range tail.Metrics {
		tail.Metrics[i] = ser.Metrics[i][mutateAt:]
	}
	var csv bytes.Buffer
	if err := trace.WriteCSV(&csv, []*trace.EntitySeries{tail}); err != nil {
		fail("adapt: write csv: %v", err)
	}
	resp, err := client.Post(addr+"/v1/ingest", "text/csv", &csv)
	if err != nil {
		fail("adapt: ingest: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fail("adapt: ingest status %d (is rptcnd running with ingestion enabled?)", resp.StatusCode)
	}

	adaptStatus := func() adapt.Status {
		resp, err := client.Get(addr + "/debug/adapt")
		if err != nil {
			fail("adapt: fetch /debug/adapt: %v", err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			fail("adapt: /debug/adapt status %d (was rptcnd started with -adapt?)", resp.StatusCode)
		}
		var st adapt.Status
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			fail("adapt: decode /debug/adapt: %v", err)
		}
		return st
	}
	adaptStatus() // fail fast when adaptation is off

	// Replay forecasts across the mutated regime until the supervisor
	// reports a swap. Re-walking the same span on later passes is safe:
	// duplicate forecasts replace their earlier selves and repeated
	// actuals resolve nothing new, but the shadow scorer keeps getting
	// fresh mirrors while the candidate trains.
	deadline := time.Now().Add(wait)
	requests, swapped := 0, false
	var st adapt.Status
	for pass := 1; !swapped; pass++ {
		for s0 := mutateAt + hist; s0 < samples && !swapped; s0++ {
			win := make([][]float64, trace.NumIndicators)
			for i := range win {
				win[i] = ser.Metrics[i][s0-hist : s0]
			}
			tt := int64(s0 - 1)
			raw, err := json.Marshal(server.ForecastRequest{Indicators: win, Entity: ser.ID, T: &tt})
			if err != nil {
				fail("adapt: marshal request: %v", err)
			}
			resp, err := client.Post(addr+"/v1/forecast", "application/json", strings.NewReader(string(raw)))
			if err != nil {
				fail("adapt: forecast %d: %v", requests, err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				fail("adapt: forecast %d: status %d — a request was dropped across the swap", requests, resp.StatusCode)
			}
			requests++
			if requests%8 == 0 {
				if st = adaptStatus(); st.Swaps >= 1 {
					swapped = true
				}
			}
		}
		if !swapped {
			if st = adaptStatus(); st.Swaps >= 1 {
				swapped = true
			}
		}
		if !swapped && time.Now().After(deadline) {
			fail("adapt: no hot-swap after %d requests over %d passes (state %q, retrains %d, failures %d, alarm %v)",
				requests, pass, st.State, st.Retrains, st.Failures, st.Alarm)
		}
	}

	// The swap must be visible on the model surface too.
	resp, err = client.Get(addr + "/v1/model")
	if err != nil {
		fail("adapt: fetch /v1/model: %v", err)
	}
	defer resp.Body.Close()
	var info server.ModelInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		fail("adapt: decode /v1/model: %v", err)
	}
	if info.Generation < 2 {
		fail("adapt: /v1/model generation = %d, want ≥ 2 after a swap", info.Generation)
	}
	if info.Adapt == nil || info.Adapt.Swaps < 1 || info.Adapt.LastSwapUnix == 0 {
		fail("adapt: /v1/model adapt snapshot missing or swapless: %+v", info.Adapt)
	}

	fmt.Printf("adaptation OK: swap after %d requests (all 200), generation %d, state %s, retrains %d, rollbacks %d\n",
		requests, info.Generation, st.State, st.Retrains, st.Rollbacks)
}
