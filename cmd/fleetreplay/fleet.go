package main

// The -fleet mode: an end-to-end sharded-serving drill against a
// running rptcnd, sized for a real fleet (thousands of entities) rather
// than the -adapt/-telemetry smokes' dozens. It exercises the whole
// sharded path and exits non-zero on any violation, which makes it the
// CI shard-smoke gate:
//
//  1. Ingest: N synthetic entities stream in as chunked v2018 CSV
//     bodies through POST /v1/ingest (the zero-copy scanner path).
//  2. Listing: GET /v1/entities?limit=&after= walks the whole fleet in
//     bounded pages; the union must be exactly the ingested IDs, each
//     page sorted.
//  3. Serving: -concurrency workers issue GET /v1/forecast/{entity}
//     round-robin across the fleet, optionally alternating every 4th
//     request through ?model=<name> (the registry path). Every response
//     must be 200 with a non-empty forecast.
//  4. Balance: GET /debug/shards must report the expected shard count,
//     every shard holding entities and having served requests, queues
//     drained, latency quantiles ordered, and no worse than a 4x
//     entity imbalance between the fullest and emptiest shard.
//  5. Bounding: with -extra-entities, a second ingest wave pushes the
//     fleet past the server's -max-entities cap and the eviction
//     counter must move — the bounded-RSS contract, observable.
//
// The server must be booted with -max-inflight ≥ -concurrency (the
// drill requires all-200s, so admission shedding would fail it).

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/server"
	"repro/internal/trace"
)

type fleetCfg struct {
	entities     int
	requests     int
	window       int
	concurrency  int
	expectShards int
	extra        int
	seed         uint64
	model        string
}

// ingestSeries posts the series as chunked CSV bodies and returns the
// server's entity count after the last chunk.
func ingestSeries(client *http.Client, addr string, series []*trace.EntitySeries, fail func(string, ...any)) int {
	const chunk = 256
	entities, rows := 0, 0
	for lo := 0; lo < len(series); lo += chunk {
		hi := min(lo+chunk, len(series))
		var buf bytes.Buffer
		if err := trace.WriteCSV(&buf, series[lo:hi]); err != nil {
			fail("serialize csv: %v", err)
		}
		resp, err := client.Post(addr+"/v1/ingest", "text/csv", &buf)
		if err != nil {
			fail("ingest chunk at %d: %v", lo, err)
		}
		var ir server.IngestResponse
		err = json.NewDecoder(resp.Body).Decode(&ir)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || err != nil {
			fail("ingest chunk at %d: status %d, decode err %v", lo, resp.StatusCode, err)
		}
		if ir.Skipped > 0 {
			fail("ingest chunk at %d: %d rows skipped", lo, ir.Skipped)
		}
		entities = ir.Entities
		rows += ir.Rows
	}
	fmt.Printf("ingested %d rows across %d entities (%d resident)\n", rows, len(series), entities)
	return entities
}

// walkEntities pages through GET /v1/entities and returns every listed
// ID, asserting each page is sorted and the pagination terminates.
func walkEntities(client *http.Client, addr string, limit int, fail func(string, ...any)) []string {
	var ids []string
	after := ""
	for page := 0; ; page++ {
		if page > 1_000_000 {
			fail("entity pagination did not terminate")
		}
		url := fmt.Sprintf("%s/v1/entities?limit=%d", addr, limit)
		if after != "" {
			url += "&after=" + after
		}
		resp, err := client.Get(url)
		if err != nil {
			fail("list entities: %v", err)
		}
		var infos []server.EntityInfo
		err = json.NewDecoder(resp.Body).Decode(&infos)
		next := resp.Header.Get("X-Next-After")
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || err != nil {
			fail("list entities: status %d, decode err %v", resp.StatusCode, err)
		}
		for i, info := range infos {
			if i > 0 && infos[i-1].ID >= info.ID {
				fail("entity page not strictly ascending: %q then %q", infos[i-1].ID, info.ID)
			}
			if info.Samples <= 0 {
				fail("entity %s listed with %d samples", info.ID, info.Samples)
			}
			ids = append(ids, info.ID)
		}
		if next == "" {
			return ids
		}
		after = next
	}
}

// fetchShards decodes GET /debug/shards.
func fetchShards(client *http.Client, addr string, fail func(string, ...any)) server.ShardsStatus {
	resp, err := client.Get(addr + "/debug/shards")
	if err != nil {
		fail("fetch /debug/shards: %v", err)
	}
	defer resp.Body.Close()
	var st server.ShardsStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil || resp.StatusCode != http.StatusOK {
		fail("/debug/shards: status %d, decode err %v", resp.StatusCode, err)
	}
	return st
}

func runFleet(client *http.Client, addr string, cfg fleetCfg, fail func(string, ...any)) {
	series := trace.Generate(trace.GeneratorConfig{
		Entities: cfg.entities, Kind: trace.Container, Samples: cfg.window + 16, Seed: cfg.seed,
	})

	resident := ingestSeries(client, addr, series, fail)
	if resident < cfg.entities {
		fail("only %d of %d entities resident after ingest (cap too small for the drill?)", resident, cfg.entities)
	}

	// Walk the fleet in pages small enough to force several round trips.
	limit := cfg.entities/4 + 1
	listed := walkEntities(client, addr, limit, fail)
	if len(listed) != cfg.entities {
		fail("pagination walk listed %d entities, ingested %d", len(listed), cfg.entities)
	}
	want := make(map[string]bool, len(series))
	for _, e := range series {
		want[e.ID] = true
	}
	for _, id := range listed {
		if !want[id] {
			fail("listing carries unknown entity %q", id)
		}
	}

	// The serving drill: round-robin across the whole fleet from
	// -concurrency closed-loop clients; every response must be a 200
	// with a non-empty forecast. With -model, every 4th request serves
	// through the registry path instead of the shard's own engine.
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		drillErr error
		durs     = make([][]time.Duration, cfg.concurrency)
	)
	report := func(err error) { errOnce.Do(func() { drillErr = err }) }
	start := time.Now()
	for w := 0; w < cfg.concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			durs[w] = make([]time.Duration, 0, cfg.requests/cfg.concurrency+1)
			for i := w; i < cfg.requests; i += cfg.concurrency {
				url := addr + "/v1/forecast/" + series[i%cfg.entities].ID
				if cfg.model != "" && i%4 == 3 {
					url += "?model=" + cfg.model
				}
				t0 := time.Now()
				resp, err := client.Get(url)
				if err != nil {
					report(fmt.Errorf("forecast %d: %w", i, err))
					return
				}
				var fr server.ForecastResponse
				err = json.NewDecoder(resp.Body).Decode(&fr)
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					report(fmt.Errorf("forecast %d (%s): status %d", i, url, resp.StatusCode))
					return
				}
				if err != nil || len(fr.Forecast) == 0 {
					report(fmt.Errorf("forecast %d: empty body (decode err %v)", i, err))
					return
				}
				durs[w] = append(durs[w], time.Since(t0))
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if drillErr != nil {
		fail("%v", drillErr)
	}
	var all []time.Duration
	for _, d := range durs {
		all = append(all, d...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	q := func(p float64) time.Duration { return all[int(p*float64(len(all)-1))] }
	fmt.Printf("served %d forecasts over %d entities at concurrency %d: %.0f req/s, client p50 %s p99 %s\n",
		cfg.requests, cfg.entities, cfg.concurrency,
		float64(cfg.requests)/elapsed.Seconds(), q(0.50).Round(time.Microsecond), q(0.99).Round(time.Microsecond))

	// Shard balance and accounting.
	st := fetchShards(client, addr, fail)
	if cfg.expectShards > 0 && st.Shards != cfg.expectShards {
		fail("serving on %d shards, expected %d", st.Shards, cfg.expectShards)
	}
	if len(st.PerShard) != st.Shards {
		fail("%d per-shard rows for %d shards", len(st.PerShard), st.Shards)
	}
	var totalReqs uint64
	minEnt, maxEnt := series[0].Len()*cfg.entities, 0
	for _, sh := range st.PerShard {
		totalReqs += sh.Requests
		if sh.QueueDepth != 0 {
			fail("shard %d queue not drained: depth %d", sh.Shard, sh.QueueDepth)
		}
		if sh.Entities == 0 {
			fail("shard %d holds no entities (routing imbalance)", sh.Shard)
		}
		if sh.Requests == 0 {
			fail("shard %d served no requests", sh.Shard)
		}
		if sh.Requests > 0 && !(sh.P50Micros <= sh.P99Micros && sh.P99Micros <= sh.MaxMicros) {
			fail("shard %d latency quantiles not ordered: p50 %.1fus p99 %.1fus max %.1fus",
				sh.Shard, sh.P50Micros, sh.P99Micros, sh.MaxMicros)
		}
		minEnt = min(minEnt, sh.Entities)
		maxEnt = max(maxEnt, sh.Entities)
	}
	if totalReqs < uint64(cfg.requests) {
		fail("shards account for %d requests, drill sent %d", totalReqs, cfg.requests)
	}
	if st.Shards > 1 && maxEnt > 4*minEnt {
		fail("shard imbalance: fullest holds %d entities, emptiest %d", maxEnt, minEnt)
	}
	if cfg.model != "" {
		if st.ModelCache == nil {
			fail("-model %s given but /debug/shards reports no model cache", cfg.model)
		}
		if st.ModelCache.Hits == 0 {
			fail("model cache served no hits after %d ?model= requests", cfg.requests/4)
		}
	}
	fmt.Printf("shards OK: %d shards, %d-%d entities each, %d requests, worst p99 %s\n",
		st.Shards, minEnt, maxEnt, totalReqs, worstP99(st))

	// Bounded-RSS probe: push past the server's entity cap and require
	// the eviction counter to move (rings are bounded, not hoarded).
	if cfg.extra > 0 {
		extraSeries := trace.Generate(trace.GeneratorConfig{
			Entities: cfg.extra, Kind: trace.Container, Samples: 8, Seed: cfg.seed + 1,
		})
		for _, e := range extraSeries {
			e.ID = "xx_" + e.ID // never collides with the drill fleet
		}
		ingestSeries(client, addr, extraSeries, fail)
		st2 := fetchShards(client, addr, fail)
		if st2.Evicted <= st.Evicted {
			fail("eviction counter did not move (%d -> %d) after %d entities over the cap",
				st.Evicted, st2.Evicted, cfg.extra)
		}
		if st2.Entities > st.Entities+cfg.extra {
			fail("entity count %d grew past %d+%d: cap not enforced", st2.Entities, st.Entities, cfg.extra)
		}
		fmt.Printf("bounded rings OK: %d entities resident, %d evicted\n", st2.Entities, st2.Evicted)
	}
}

func worstP99(st server.ShardsStatus) time.Duration {
	var worst float64
	for _, sh := range st.PerShard {
		if sh.P99Micros > worst {
			worst = sh.P99Micros
		}
	}
	return time.Duration(worst * float64(time.Microsecond)).Round(time.Microsecond)
}
