// Command qualityreport replays a synthetic workload with injected
// mutation points through a freshly trained RPTCN model and the online
// quality engine, then renders the accuracy/drift timeline the engine
// observed. It is both a human-readable diagnostic and the CI smoke
// check for the forecast-quality pipeline:
//
//	qualityreport                          # defaults: 1400 samples, mutations at 600,1000
//	qualityreport -mutations 500 -seed 17
//	qualityreport -require-detect -require-drift -rundir runs   # CI mode
//
// With -require-detect the process exits non-zero unless the input
// mutation detector fires within the detection tolerance of every
// injected point and nowhere else; -require-drift additionally demands
// the input drift detector reach the alarm state after the first
// mutation. The engine's rolling error statistics are recomputed
// offline from the replayed forecast/actual pairs and must match the
// engine bitwise — any divergence is a hard failure.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/obs/runlog"
	"repro/internal/quality"
	"repro/internal/trace"
)

const entityName = "replay"

func main() {
	var (
		samples   = flag.Int("samples", 1400, "synthetic series length")
		mutSpec   = flag.String("mutations", "600,1000", "comma-separated sample times to inject mutation points at (each toggles a +35 CPU regime)")
		seed      = flag.Uint64("seed", 13, "generator seed")
		trainN    = flag.Int("train", 400, "train on the first N samples (must precede the first mutation)")
		window    = flag.Int("window", 16, "model input window")
		horizon   = flag.Int("horizon", 3, "forecast steps")
		epochs    = flag.Int("epochs", 6, "training epochs")
		stride    = flag.Int("stride", 2, "samples between replayed forecast requests")
		histLen   = flag.Int("hist", 64, "history samples per replayed request")
		sloSpec   = flag.String("slo", "", `SLO rules to evaluate during replay (e.g. "mae<=8@256")`)
		runDir    = flag.String("rundir", "", "also write drift/SLO journal events (JSONL) under this directory")
		reqDetect = flag.Bool("require-detect", false, "exit non-zero unless every injected mutation is detected in tolerance with no false alarms")
		reqDrift  = flag.Bool("require-drift", false, "exit non-zero unless input drift reaches the alarm state")

		adaptMode  = flag.Bool("adapt", false, "mutation-recovery study: replay with a live adapt supervisor vs a frozen control (single -mutations point; see adapt.go)")
		reqRecover = flag.Bool("require-recovery", false, "adapt mode: exit non-zero unless post-swap MAE returns within the recovery factor of the clean baseline while the frozen control stays degraded")
		outPath    = flag.String("out", "", "adapt mode: also write the recovery report to this file")
		ftEpochs   = flag.Int("finetune-epochs", 0, "adapt mode: candidate fine-tune epochs (0 = same as -epochs)")
	)
	flag.Parse()
	log := obs.Logger("qualityreport")
	fatal := func(msg string, err error) {
		log.Error(msg, "err", err)
		os.Exit(1)
	}

	points, err := parsePoints(*mutSpec)
	if err != nil {
		fatal("parse -mutations", err)
	}
	if len(points) > 0 && *trainN >= points[0] {
		fatal("configure", fmt.Errorf("-train %d overlaps first mutation at %d", *trainN, points[0]))
	}
	if *adaptMode {
		if len(points) != 1 {
			fatal("configure", fmt.Errorf("-adapt needs exactly one mutation point (a persistent regime flip), got %v; e.g. -mutations 600", points))
		}
		fe := *ftEpochs
		if fe <= 0 {
			fe = *epochs
		}
		runAdaptReplay(adaptReplayConfig{
			samples: *samples, trainN: *trainN, mutateAt: points[0],
			window: *window, horizon: *horizon, epochs: *epochs,
			stride: *stride, histLen: *histLen, seed: *seed,
			runDir: *runDir, outPath: *outPath, requireRecovery: *reqRecover,
			minShadow: 12, probation: 12, fineTuneEpochs: fe,
			recoverFactor: 1.10, degradedThreshold: 1.10,
		})
		return
	}
	rules, err := quality.ParseRules(*sloSpec)
	if err != nil {
		fatal("parse -slo", err)
	}

	e := trace.GenerateWithMutations(*samples, points, *seed)
	target := e.Series(trace.CPUUtilPercent)

	// Train on the clean prefix only: the replay then walks the model
	// into the injected regime changes, exactly the situation the
	// quality engine exists to surface.
	trainSeries := make([][]float64, trace.NumIndicators)
	for i, srs := range e.Matrix() {
		trainSeries[i] = srs[:*trainN]
	}
	p := core.NewPredictor(core.PredictorConfig{
		Scenario: core.MulExp, Window: *window, Horizon: *horizon, Epochs: *epochs, Seed: 2,
		Model: core.Config{Channels: []int{8, 8}, KernelSize: 3, WeightNorm: true, FCWidth: 16},
	})
	if err := p.Fit(trainSeries, int(trace.CPUUtilPercent)); err != nil {
		fatal("fit", err)
	}
	normMin, normMax := p.NormBounds()
	minHist := p.MinHistory()

	// Journal drift/SLO transitions either to a run artifact (-rundir)
	// or to memory; either way the events are read back for the report.
	var (
		journal *runlog.Run
		buf     bytes.Buffer
	)
	if *runDir != "" {
		journal, err = runlog.Create(*runDir)
		if err != nil {
			fatal("create journal", err)
		}
		log.Info("journaling", "path", journal.Path())
	} else {
		journal = runlog.New(&buf)
	}

	// Detector tuning for the compressed replay cadence: small median
	// and warmup windows, a faster EWMA so the level tracks the
	// generator's diurnal wander between mutations, and a widened
	// tolerance/threshold so long mutated regimes (where CPU clamping
	// distorts the wander) don't re-fire. The +35 step stays far above
	// the raised threshold.
	detector := quality.MutationConfig{MedianWidth: 5, Warmup: 16, Cooldown: 8, Alpha: 0.25, Delta: 3, Lambda: 50}
	eng := quality.New(quality.Config{
		Horizon: *horizon,
		// One ring large enough to hold every replayed pair (up to
		// horizon per sample), so the offline recomputation below must
		// match the engine exactly.
		Window:     *samples * *horizon,
		Mutation:   detector,
		InputDrift: quality.DriftConfig{Baseline: 16, Alpha: 0.5, MinStd: 0.02},
		Rules:      rules,
		Registry:   obs.NewRegistry(),
		Journal:    journal,
	})
	defer eng.Close()

	// Replay. Each request self-joins its own history window (resolving
	// earlier forecasts), records a fresh forecast, and reports input
	// statistics — the same protocol rptcnd's /v1/forecast follows for
	// requests tagged with entity and t.
	mirror := newMirror(*horizon)
	requests, skipped := 0, 0
	for t := *trainN; t < *samples; t += *stride {
		if t+1 < *histLen {
			continue
		}
		hist := make([][]float64, trace.NumIndicators)
		for i, srs := range e.Matrix() {
			hist[i] = srs[t+1-*histLen : t+1]
		}
		tgt := hist[trace.CPUUtilPercent]
		eng.Observe(entityName, int64(t-*histLen+1), tgt)
		mirror.observe(int64(t-*histLen+1), tgt)

		forecast, err := p.ForecastFrom(hist)
		if err != nil {
			skipped++
			continue
		}
		eng.RecordForecast(entityName, int64(t), forecast)
		mirror.record(int64(t), forecast)

		mean := 0.0
		for _, v := range tgt[len(tgt)-minHist:] {
			mean += v
		}
		mean /= float64(minHist)
		oor, hasOOR := oorRatio(hist, normMin, normMax)
		eng.ObserveInput(entityName, int64(t), mean, oor, hasOOR)
		requests++
	}
	eng.Flush()
	st := eng.Status()

	// ---- Report ----------------------------------------------------
	fmt.Printf("qualityreport: %d requests (stride %d, hist %d) over %d samples, mutations at %v\n",
		requests, *stride, *histLen, *samples, points)
	if skipped > 0 {
		fmt.Printf("  %d requests skipped (inference error)\n", skipped)
	}
	fmt.Printf("resolved pairs: %d   pending: %d   expired: %d   dropped: %d\n\n",
		st.Resolved, st.Pending, st.Expired, st.Dropped)

	ok := true
	offMAE, offBias := mirror.stats()
	if st.Aggregate.MAE != offMAE || st.Aggregate.Bias != offBias {
		fmt.Printf("OFFLINE MISMATCH: engine mae=%v bias=%v, offline mae=%v bias=%v\n",
			st.Aggregate.MAE, st.Aggregate.Bias, offMAE, offBias)
		ok = false
	} else {
		fmt.Printf("offline recomputation: MAE %.4f, bias %+.4f — exact match with engine\n\n", offMAE, offBias)
	}

	fmt.Println("per-step accuracy:")
	fmt.Println("  step  count     mae      mse     bias  over/under   p90|e|")
	printStep := func(label string, s quality.StepStats) {
		fmt.Printf("  %4s %6d %7.3f %8.3f %+8.3f %5d/%-5d %8.3f\n",
			label, s.Count, s.MAE, s.MSE, s.Bias, s.Over, s.Under, s.P90AbsErr)
	}
	printStep("all", st.Aggregate)
	for _, s := range st.Steps {
		printStep(strconv.Itoa(s.Step), s)
	}

	fmt.Println("\ndrift:")
	fmt.Printf("  input: %-5s  level %.4f  baseline %.4f ± %.4f\n",
		st.InputDrift.State, st.InputDrift.Level, st.InputDrift.BaselineMean, st.InputDrift.BaselineStd)
	fmt.Printf("  error: %-5s  level %.4f  baseline %.4f ± %.4f\n",
		st.ErrorDrift.State, st.ErrorDrift.Level, st.ErrorDrift.BaselineMean, st.ErrorDrift.BaselineStd)

	var fires []int64
	if len(st.Entities) > 0 {
		fires = st.Entities[0].InputMutations
	}
	// Detection tolerance: the median filter needs MedianWidth requests
	// to flip, and the input window mean ramps over MinHistory samples.
	tol := int64(2*detector.MedianWidth**stride + minHist)
	fmt.Printf("\ninput mutations fired at %v (injected %v, tolerance +%d)\n", fires, points, tol)
	detectOK := validateDetections(points, fires, tol)
	if !detectOK {
		fmt.Println("DETECTION CHECK FAILED: missed or spurious mutation fires")
	}

	if len(st.SLO) > 0 {
		fmt.Println("\nslo:")
		for _, r := range st.SLO {
			fmt.Printf("  %-24s %-8s value %.4f over %d pairs\n", r.Rule, r.State, r.Value, r.Count)
		}
	}

	fmt.Println("\ntimeline (MAE per bin over forecast target time; * injected mutation, ! detector fire):")
	printTimeline(mirror, target, points, fires, *trainN, *samples)

	eng.Close()
	if err := journal.Close(); err != nil {
		fatal("close journal", err)
	}
	events := readEvents(journal, &buf, *runDir)
	drift, slo := 0, 0
	inputAlarmed := false
	for _, ev := range events {
		switch ev.Type {
		case runlog.TypeDrift:
			drift++
			if ev.Data["kind"] == "level" && ev.Data["signal"] == "input" && ev.Data["state"] == "alarm" {
				inputAlarmed = true
			}
		case runlog.TypeSLO:
			slo++
		}
	}
	fmt.Printf("\njournal: %d drift events, %d slo transitions; input drift reached alarm: %v (final state %q)\n",
		drift, slo, inputAlarmed, st.InputDrift.State)

	if *reqDetect && !detectOK {
		ok = false
	}
	// The drift detector recovers once a mutation toggles back off, so
	// the requirement is that the alarm was reached, not that it is the
	// final state.
	if *reqDrift && !inputAlarmed {
		fmt.Println("DRIFT CHECK FAILED: input drift never reached alarm")
		ok = false
	}
	if !ok {
		os.Exit(1)
	}
}

func parsePoints(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad mutation point %q", part)
		}
		out = append(out, n)
	}
	sort.Ints(out)
	return out, nil
}

// oorRatio mirrors the serving-side input monitor: the fraction of all
// submitted values outside the training min-max bounds.
func oorRatio(series [][]float64, min, max []float64) (float64, bool) {
	if len(min) == 0 {
		return 0, false
	}
	total, out := 0, 0
	for i, s := range series {
		if i >= len(min) {
			break
		}
		for _, v := range s {
			total++
			if v < min[i] || v > max[i] {
				out++
			}
		}
	}
	if total == 0 {
		return 0, false
	}
	return float64(out) / float64(total), true
}

// mirror replays the engine's pending-store semantics offline so the
// engine's rolling statistics can be checked bitwise: same resolution
// order, same chronological summation.
type mirror struct {
	horizon int
	pending map[int64][]mirrorPred
	errs    []float64 // resolution order
	targets []int64   // forecast target time per resolved pair
}

type mirrorPred struct {
	step   int
	issued int64
	value  float64
}

func newMirror(horizon int) *mirror {
	return &mirror{horizon: horizon, pending: make(map[int64][]mirrorPred)}
}

func (m *mirror) record(issuedAt int64, forecast []float64) {
	for k, v := range forecast {
		tt := issuedAt + int64(k) + 1
		list := m.pending[tt]
		replaced := false
		for i := range list {
			if list[i].issued == issuedAt && list[i].step == k+1 {
				list[i].value = v
				replaced = true
				break
			}
		}
		if !replaced {
			list = append(list, mirrorPred{step: k + 1, issued: issuedAt, value: v})
		}
		m.pending[tt] = list
	}
}

func (m *mirror) observe(t0 int64, actuals []float64) {
	for i, actual := range actuals {
		if math.IsNaN(actual) || math.IsInf(actual, 0) {
			continue
		}
		tt := t0 + int64(i)
		for _, pred := range m.pending[tt] {
			m.errs = append(m.errs, pred.value-actual)
			m.targets = append(m.targets, tt)
		}
		delete(m.pending, tt)
	}
}

func (m *mirror) stats() (mae, bias float64) {
	if len(m.errs) == 0 {
		return 0, 0
	}
	sumAbs, sum := 0.0, 0.0
	for _, e := range m.errs {
		sum += e
		sumAbs += math.Abs(e)
	}
	n := float64(len(m.errs))
	return sumAbs / n, sum / n
}

func validateDetections(points []int, fires []int64, tol int64) bool {
	matched := make([]bool, len(points))
	for _, f := range fires {
		hit := false
		for i, pt := range points {
			if f >= int64(pt) && f <= int64(pt)+tol {
				matched[i] = true
				hit = true
			}
		}
		if !hit {
			return false // spurious fire
		}
	}
	for _, m := range matched {
		if !m {
			return false // missed point
		}
	}
	return true
}

// printTimeline buckets resolved pairs by forecast target time and draws
// a crude MAE bar per bucket with mutation/fire markers.
func printTimeline(m *mirror, target []float64, points []int, fires []int64, from, to int) {
	const bins = 24
	width := (to - from + bins - 1) / bins
	if width == 0 {
		return
	}
	sumAbs := make([]float64, bins)
	count := make([]int, bins)
	for i, tt := range m.targets {
		b := (int(tt) - from) / width
		if b < 0 || b >= bins {
			continue
		}
		sumAbs[b] += math.Abs(m.errs[i])
		count[b]++
	}
	maxMAE := 0.0
	for b := range sumAbs {
		if count[b] > 0 && sumAbs[b]/float64(count[b]) > maxMAE {
			maxMAE = sumAbs[b] / float64(count[b])
		}
	}
	for b := 0; b < bins; b++ {
		lo, hi := from+b*width, from+(b+1)*width
		mark := " "
		for _, pt := range points {
			if pt >= lo && pt < hi {
				mark = "*"
			}
		}
		for _, f := range fires {
			if f >= int64(lo) && f < int64(hi) {
				mark += "!"
			}
		}
		if count[b] == 0 {
			fmt.Printf("  %5d %-2s |\n", lo, mark)
			continue
		}
		mae := sumAbs[b] / float64(count[b])
		barLen := 0
		if maxMAE > 0 {
			barLen = int(mae / maxMAE * 40)
		}
		fmt.Printf("  %5d %-2s |%s %.2f\n", lo, mark, strings.Repeat("#", barLen), mae)
	}
}

// readEvents loads the journal back, from disk for -rundir runs and from
// the in-memory buffer otherwise.
func readEvents(journal *runlog.Run, buf *bytes.Buffer, runDir string) []runlog.Event {
	if runDir != "" {
		events, err := runlog.ReadFile(journal.Path())
		if err != nil {
			return nil
		}
		return events
	}
	events, err := runlog.Read(buf)
	if err != nil {
		return nil
	}
	return events
}
