// Adapt mode (-adapt): the mutation-recovery study. One synthetic
// series with a single persistent regime mutation is replayed through
// TWO predictors trained identically on the clean prefix:
//
//   - the adapted predictor serves behind a live adapt.Supervisor wired
//     to the quality engine, exactly as rptcnd -adapt runs it: the
//     mutation fires, a candidate fine-tunes in the background on the
//     mutated windows (from a RingStore, as ingestion would fill it),
//     shadow-scores against the mirrored live forecasts, and hot-swaps;
//   - the frozen control is a Save/Load clone that never retrains.
//
// The report compares rolling MAE on the mutated tail: recovery means
// the adapted model returns to within 10% of its own clean-prefix
// baseline while the frozen control stays degraded. -require-recovery
// turns that into an exit code; -out writes the report to a file
// (results_adapt.txt in the repo was produced this way).
package main

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/adapt"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/obs/runlog"
	"repro/internal/quality"
	"repro/internal/trace"
)

type adaptReplayConfig struct {
	samples, trainN                  int
	mutateAt                         int
	window, horizon, epochs          int
	stride, histLen                  int
	seed                             uint64
	runDir, outPath                  string
	requireRecovery                  bool
	minShadow, probation             int
	fineTuneEpochs                   int
	recoverFactor, degradedThreshold float64
}

func runAdaptReplay(cfg adaptReplayConfig) {
	log := obs.Logger("qualityreport")
	fatal := func(msg string, err error) {
		log.Error(msg, "err", err)
		os.Exit(1)
	}

	e := trace.GenerateWithMutations(cfg.samples, []int{cfg.mutateAt}, cfg.seed)

	// Both predictors fit the clean prefix; the frozen control is a
	// Save/Load round-trip so it shares not one tensor with the live one.
	trainSeries := make([][]float64, trace.NumIndicators)
	for i, srs := range e.Matrix() {
		trainSeries[i] = srs[:cfg.trainN]
	}
	p := core.NewPredictor(core.PredictorConfig{
		Scenario: core.MulExp, Window: cfg.window, Horizon: cfg.horizon, Epochs: cfg.epochs, Seed: 2,
		Model: core.Config{Channels: []int{8, 8}, KernelSize: 3, WeightNorm: true, FCWidth: 16},
	})
	if err := p.Fit(trainSeries, int(trace.CPUUtilPercent)); err != nil {
		fatal("fit", err)
	}
	var snap bytes.Buffer
	if err := p.Save(&snap); err != nil {
		fatal("snapshot predictor", err)
	}
	frozen, err := core.LoadPredictor(&snap)
	if err != nil {
		fatal("load frozen control", err)
	}

	// The rings hold the mutated tail — what streaming ingestion would
	// have delivered since the regime changed, and what the candidate
	// fine-tunes on.
	tailLen := cfg.samples - cfg.mutateAt
	rings := trace.NewBoundedRingStore(tailLen, 0)
	var vals [trace.NumIndicators]float64
	for s := cfg.mutateAt; s < cfg.samples; s++ {
		for i, srs := range e.Matrix() {
			vals[i] = srs[s]
		}
		rings.IngestString(entityName, s, &vals)
	}

	adaptDir := ""
	if cfg.runDir != "" {
		adaptDir = filepath.Join(cfg.runDir, "adapt-state")
	} else if adaptDir, err = os.MkdirTemp("", "qualityreport-adapt"); err != nil {
		fatal("adapt state dir", err)
	}
	var (
		journal *runlog.Run
		jbuf    bytes.Buffer
	)
	if cfg.runDir != "" {
		if journal, err = runlog.Create(cfg.runDir); err != nil {
			fatal("create journal", err)
		}
		log.Info("journaling", "path", journal.Path())
	} else {
		journal = runlog.New(&jbuf)
	}

	minSamples := 4 * p.MinHistory()
	if max := tailLen - cfg.horizon; minSamples > max {
		minSamples = max
	}
	sup, err := adapt.New(adapt.Config{
		Predictor:         p,
		Rings:             rings,
		Dir:               adaptDir,
		MinSamples:        minSamples,
		FineTune:          core.FineTuneConfig{Epochs: cfg.fineTuneEpochs, Seed: 5},
		MinShadowResolved: cfg.minShadow,
		ProbationResolved: cfg.probation,
		Cooldown:          time.Hour, // one swap: keep the tail measurement clean
		Registry:          obs.NewRegistry(),
		Journal:           journal,
	})
	if err != nil {
		fatal("start supervisor", err)
	}
	defer sup.Close()

	eng := quality.New(quality.Config{
		Horizon:    cfg.horizon,
		Window:     cfg.samples * cfg.horizon,
		Mutation:   quality.MutationConfig{MedianWidth: 5, Warmup: 16, Cooldown: 8, Alpha: 0.25, Delta: 3, Lambda: 50},
		InputDrift: quality.DriftConfig{Baseline: 16, Alpha: 0.5, MinStd: 0.02},
		Registry:   obs.NewRegistry(),
		Events:     sup.OnQualityEvent,
	})
	defer eng.Close()

	// Replay, serving through the swap-safe batched path (the supervisor
	// swaps concurrently; PrepareInput is lock-free, the forward holds
	// the same lock as the swap — the exact contract rptcnd serves under).
	adapted, control := newMirror(cfg.horizon), newMirror(cfg.horizon)
	swapT, requests := 0, 0
	for t := cfg.trainN; t < cfg.samples; t += cfg.stride {
		if t+1 < cfg.histLen {
			continue
		}
		hist := make([][]float64, trace.NumIndicators)
		for i, srs := range e.Matrix() {
			hist[i] = srs[t+1-cfg.histLen : t+1]
		}
		tgt := hist[trace.CPUUtilPercent]
		t0 := int64(t - cfg.histLen + 1)
		eng.Observe(entityName, t0, tgt)
		sup.ObserveActuals(entityName, t0, tgt)
		adapted.observe(t0, tgt)
		control.observe(t0, tgt)

		in, err := p.PrepareInput(hist)
		if err != nil {
			continue
		}
		live, _, err := p.ForecastBatchGen([]*core.PreparedInput{in})
		if err != nil {
			continue
		}
		served := live[0]
		eng.RecordForecast(entityName, int64(t), served)
		sup.MirrorForecast(entityName, int64(t), in, served)
		adapted.record(int64(t), served)
		if ctl, err := frozen.ForecastFrom(hist); err == nil {
			control.record(int64(t), ctl)
		}
		requests++
		if swapT == 0 && p.Generation() > 1 {
			swapT = t
		}

		// Keep the async pipeline in lockstep with the replay: the engine
		// must process this step's observations (so the mutation fires at
		// its true sample time) and the supervisor must drain the trigger
		// and mirrors before the next step decides whether to pause.
		eng.Flush()
		sup.Flush()

		// Pace the replay while the candidate trains, so the remaining
		// samples are spent shadow-scoring it rather than running out.
		for deadline := time.Now().Add(5 * time.Minute); sup.Status().State == adapt.StateTraining; {
			if time.Now().After(deadline) {
				fatal("replay", fmt.Errorf("candidate still training after 5m"))
			}
			time.Sleep(10 * time.Millisecond)
		}
		if swapT == 0 && p.Generation() > 1 {
			swapT = t
		}
	}
	eng.Flush()
	sup.Flush()
	st := sup.Status()

	// ---- Recovery report -------------------------------------------
	var report bytes.Buffer
	out := io.Writer(&report)

	fmt.Fprintf(out, "qualityreport -adapt: %d requests (stride %d, hist %d) over %d samples, mutation at %d\n",
		requests, cfg.stride, cfg.histLen, cfg.samples, cfg.mutateAt)
	fmt.Fprintf(out, "adapt: state=%s generation=%d swaps=%d rollbacks=%d retrains=%d failures=%d\n\n",
		st.State, st.Generation, st.Swaps, st.Rollbacks, st.Retrains, st.Failures)

	firstTarget := cfg.trainN + cfg.histlenFloor()
	cleanBase := maeIn(adapted, int64(firstTarget), int64(cfg.mutateAt))
	cleanCtl := maeIn(control, int64(firstTarget), int64(cfg.mutateAt))
	fmt.Fprintf(out, "clean prefix  [%d,%d): adapted MAE %.3f   frozen MAE %.3f (same weights: must match)\n",
		firstTarget, cfg.mutateAt, cleanBase, cleanCtl)

	ok := true
	if st.Swaps < 1 || swapT == 0 {
		fmt.Fprintf(out, "\nNO HOT-SWAP: the supervisor never promoted a candidate (state %s, retrains %d, failures %d)\n",
			st.State, st.Retrains, st.Failures)
		ok = false
	} else {
		tailStart := int64(swapT + cfg.horizon)
		adaptedTail := maeIn(adapted, tailStart, int64(cfg.samples))
		frozenTail := maeIn(control, tailStart, int64(cfg.samples))
		degraded := maeIn(adapted, int64(cfg.mutateAt), tailStart)

		fmt.Fprintf(out, "mutated, pre-swap  [%d,%d): adapted MAE %.3f (degraded — this is what fires the detector)\n",
			cfg.mutateAt, tailStart, degraded)
		fmt.Fprintf(out, "post-swap tail [%d,%d):  adapted MAE %.3f   frozen MAE %.3f\n\n",
			tailStart, cfg.samples, adaptedTail, frozenTail)

		recov := adaptedTail / cleanBase
		stay := frozenTail / cleanBase
		fmt.Fprintf(out, "recovery: adapted tail / clean baseline = %.3f (gate ≤ %.2f)\n", recov, cfg.recoverFactor)
		fmt.Fprintf(out, "control:  frozen tail / clean baseline  = %.3f (gate > %.2f: stays degraded)\n",
			stay, cfg.degradedThreshold)
		if !(recov <= cfg.recoverFactor) {
			fmt.Fprintf(out, "RECOVERY CHECK FAILED: post-swap MAE did not return to the clean baseline\n")
			ok = false
		}
		if !(stay > cfg.degradedThreshold) {
			fmt.Fprintf(out, "CONTROL CHECK FAILED: the frozen model was not degraded — nothing to recover from\n")
			ok = false
		}
	}

	fmt.Fprintf(out, "\ntimeline (MAE per bin over forecast target time; * mutation, ⇅ hot-swap):\n")
	printAdaptTimeline(out, adapted, control, cfg.mutateAt, swapT, cfg.trainN, cfg.samples)

	os.Stdout.Write(report.Bytes())
	if cfg.outPath != "" {
		if err := os.WriteFile(cfg.outPath, report.Bytes(), 0o644); err != nil {
			fatal("write -out", err)
		}
		log.Info("report written", "path", cfg.outPath)
	}

	sup.Close()
	eng.Close()
	if err := journal.Close(); err != nil {
		fatal("close journal", err)
	}
	if cfg.requireRecovery && !ok {
		os.Exit(1)
	}
}

// histlenFloor is where resolved forecast targets can first appear: the
// first replayed request issues at max(trainN, histLen-1)+1 … keep it
// simple and skip one full history window into the replay.
func (c adaptReplayConfig) histlenFloor() int {
	if c.histLen > c.stride {
		return c.histLen
	}
	return c.stride
}

// maeIn is the mean absolute error of resolved pairs whose forecast
// target time lies in [lo, hi).
func maeIn(m *mirror, lo, hi int64) float64 {
	sum, n := 0.0, 0
	for i, tt := range m.targets {
		if tt >= lo && tt < hi {
			sum += math.Abs(m.errs[i])
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// printAdaptTimeline draws adapted vs frozen MAE per target-time bin.
func printAdaptTimeline(w io.Writer, adapted, control *mirror, mutateAt, swapT, from, to int) {
	const bins = 24
	width := (to - from + bins - 1) / bins
	if width == 0 {
		return
	}
	maxMAE := 0.0
	binned := func(m *mirror) []float64 {
		out := make([]float64, bins)
		cnt := make([]int, bins)
		for i, tt := range m.targets {
			b := (int(tt) - from) / width
			if b < 0 || b >= bins {
				continue
			}
			out[b] += math.Abs(m.errs[i])
			cnt[b]++
		}
		for b := range out {
			if cnt[b] > 0 {
				out[b] /= float64(cnt[b])
				if out[b] > maxMAE {
					maxMAE = out[b]
				}
			} else {
				out[b] = math.NaN()
			}
		}
		return out
	}
	a, c := binned(adapted), binned(control)
	bar := func(mae float64) string {
		if math.IsNaN(mae) || maxMAE == 0 {
			return ""
		}
		return strings.Repeat("#", int(mae/maxMAE*30))
	}
	fmt.Fprintf(w, "  %5s    %-38s %s\n", "t", "adapted", "frozen control")
	for b := 0; b < bins; b++ {
		lo, hi := from+b*width, from+(b+1)*width
		mark := " "
		if mutateAt >= lo && mutateAt < hi {
			mark = "*"
		}
		if swapT >= lo && swapT < hi && swapT > 0 {
			mark += "⇅"
		}
		av, cv := "", ""
		if !math.IsNaN(a[b]) {
			av = fmt.Sprintf("%s %.2f", bar(a[b]), a[b])
		}
		if !math.IsNaN(c[b]) {
			cv = fmt.Sprintf("%s %.2f", bar(c[b]), c[b])
		}
		fmt.Fprintf(w, "  %5d %-2s |%-36s |%s\n", lo, mark, av, cv)
	}
}
