// Command runlog renders a run-artifact journal back into text tables:
// the run config, per-epoch scalars, the per-layer profile, and final
// metrics.
//
//	runlog runs/run-20260806-101530.jsonl   # a specific journal
//	runlog runs/                            # the latest journal in a dir
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/obs/runlog"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: runlog <journal.jsonl | run-dir>\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	path := flag.Arg(0)
	info, err := os.Stat(path)
	if err != nil {
		fatal(err)
	}
	if info.IsDir() {
		path, err = runlog.Latest(path)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("journal: %s\n\n", path)
	}
	events, err := runlog.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	fmt.Print(runlog.Summarize(events))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "runlog:", err)
	os.Exit(1)
}
