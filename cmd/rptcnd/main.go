// Command rptcnd trains an RPTCN predictor and serves forecasts over HTTP
// — the online integration point for a cluster resource manager.
//
// Usage:
//
//	rptcnd -synthetic -addr :8080
//	rptcnd -input trace.csv -entity c_10000 -scenario mul-exp
//	rptcnd -synthetic -debug-addr :6060   # pprof + expvar + trace sidecar
//	rptcnd -synthetic -trace -rundir runs # span traces + JSONL run journal
//	rptcnd -synthetic -adapt -adapt-dir adapt-state   # drift-adaptive online retraining
//	rptcnd -synthetic -shards 8 -max-entities 4096    # fleet-scale sharded entity serving
//	rptcnd -synthetic -registry-dir models -publish base   # versioned registry + ?model= serving
//
// Then:
//
//	curl localhost:8080/v1/model
//	curl localhost:8080/metrics
//	curl -X POST localhost:8080/v1/forecast -d '{"indicators": [[...], ...], "entity": "c1", "t": 1234}'
//	curl -X POST localhost:8080/v1/ingest --data-binary @trace.csv   # stream raw CSV into per-entity rings
//	curl localhost:8080/v1/forecast/c_10000                          # forecast straight from an entity's ring
//	curl -X POST localhost:8080/v1/observe -d '{"entity": "c1", "t0": 1235, "values": [42.1, 40.8]}'
//	curl localhost:8080/debug/quality      # live accuracy, drift, and SLO status (add ?format=html)
//	curl localhost:8080/debug/fleet        # per-entity sketches, exemplars, trace sampling (add ?format=html)
//	curl localhost:8080/debug/adapt        # online-adaptation state: generation, shadow gates, rollbacks (with -adapt)
//	curl localhost:8080/debug/shards       # per-shard occupancy, queue depth, latency quantiles, model-cache stats
//	curl localhost:8080/debug              # index of every diagnostic endpoint
//	curl localhost:8080/debug/traces      # tail-sampled span journal (with -trace)
//	go run ./cmd/rptcntop                 # live terminal ops dashboard
//	go run ./cmd/runlog runs              # summarize the run journal
//
// The process shuts down gracefully on SIGINT/SIGTERM: in-flight
// forecasts drain, then a final metrics snapshot is logged.
package main

import (
	"context"
	"errors"
	"flag"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/adapt"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/obs/runlog"
	obstrace "repro/internal/obs/trace"
	"repro/internal/quality"
	"repro/internal/registry"
	"repro/internal/server"
	"repro/internal/trace"
	"repro/internal/train"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		debugAddr   = flag.String("debug-addr", "", "optional debug listen address serving /debug/pprof, /debug/vars, and /metrics")
		input       = flag.String("input", "", "trace CSV in v2018 layout")
		synthetic   = flag.Bool("synthetic", false, "train on a generated workload")
		entityID    = flag.String("entity", "", "entity to train on (default: first)")
		kindName    = flag.String("kind", "container", "machine or container")
		scenario    = flag.String("scenario", "mul-exp", "uni, mul, or mul-exp")
		window      = flag.Int("window", 32, "input window length")
		horizon     = flag.Int("horizon", 5, "forecast steps")
		epochs      = flag.Int("epochs", 30, "max training epochs")
		samples     = flag.Int("samples", 2500, "synthetic series length")
		seed        = flag.Uint64("seed", 1, "seed")
		loadModel   = flag.String("load", "", "serve a predictor saved by `rptcn -save` instead of training")
		traceOn     = flag.Bool("trace", false, "record span traces of training and serving (see /debug/traces)")
		runDir      = flag.String("rundir", "", "write a run-artifact journal (JSONL) for the training run under this directory")
		ckptDir     = flag.String("checkpoint-dir", "", "write crash-safe training checkpoints under this directory")
		resume      = flag.Bool("resume", false, "resume training from the newest checkpoint in -checkpoint-dir")
		guard       = flag.Bool("guard", true, "divergence guards: skip NaN/exploding batches, roll back on NaN validation")
		reqTimeout  = flag.Duration("request-timeout", 10*time.Second, "per-forecast inference deadline before degrading to the naive fallback")
		maxInflight = flag.Int("max-inflight", 32, "max concurrent requests before shedding with 429")
		maxBatch    = flag.Int("max-batch", 32, "max forecasts fused into one model pass (1 disables micro-batching)")
		maxDelay    = flag.Duration("max-batch-delay", 2*time.Millisecond, "longest a forecast waits for batch-mates before running anyway")
		sloSpec     = flag.String("slo", "", `forecast-quality SLO rules, comma-separated (e.g. "mae<=5@256, p90_abs_err<=12")`)
		fleetK      = flag.Int("fleet-k", 32, "heavy-hitter capacity of the per-entity fleet sketches (0 disables /debug/fleet)")
		f32         = flag.Bool("f32", false, "serve on the float32 SIMD tier (validated against the f64 oracle; refused if out of bounds)")
		keepEvery   = flag.Int("trace-keep-every", 1, "tail sampling: retain 1 in N boring traces (errors/slow/degraded always kept; 1 keeps all)")
		slowTrace   = flag.Duration("trace-slow", 250*time.Millisecond, "tail sampling: always retain traces at least this slow")

		ringCap     = flag.Int("ring-capacity", 0, "samples retained per ingested entity (0 = auto: 2x the model's minimum history, grown to cover -adapt-min-samples)")
		maxEntities = flag.Int("max-entities", 0, "max entities with ring state; beyond it the least-recently-touched ring is evicted (0 = unbounded)")

		shards      = flag.Int("shards", 1, "entity-serving shard workers; >1 serves each shard on a private model replica (lock-free forwards)")
		shardQueue  = flag.Int("shard-queue", 0, "pending-forecast queue capacity per shard (0 = 64)")
		registryDir = flag.String("registry-dir", "", "versioned model registry directory; enables GET /v1/forecast/{entity}?model=<name>")
		modelCache  = flag.Int("model-cache", 0, "max models resident in the registry's warmed-arena LRU cache (0 = 8)")
		publish     = flag.String("publish", "", "publish the served predictor into -registry-dir under this name at boot")

		adaptOn      = flag.Bool("adapt", false, "drift-adaptive online retraining: background fine-tune on drift/mutation, shadow-evaluate, hot-swap (needs streaming ingestion for training data)")
		adaptDir     = flag.String("adapt-dir", "adapt-state", "crash-safe supervisor state and candidate checkpoints live here")
		adaptMinSamp = flag.Int("adapt-min-samples", 0, "ring samples required before a retrain starts (0 = 4x the model's minimum history)")
		adaptShadow  = flag.Int("adapt-shadow", 0, "resolved shadow forecasts required before the promotion gate is judged (0 = 32)")
		adaptMargin  = flag.Float64("adapt-margin", 0, "promotion margin: candidate shadow MAE must beat live MAE by this fraction (0 = 0.02)")
		adaptCool    = flag.Duration("adapt-cooldown", 0, "minimum time between swaps (0 = 60s)")
		qualityFast  = flag.Bool("quality-fast", false, "tune the mutation/drift detectors for compressed replays (small median/warmup windows); for demos and CI, not production cadences")
	)
	flag.Parse()
	log := obs.Logger("rptcnd")
	obs.RegisterRuntimeMetrics(obs.Default())
	if *traceOn {
		obstrace.Default().SetEnabled(true)
		if *keepEvery != 1 || *slowTrace > 0 {
			obstrace.Default().SetTailSampling(&obstrace.TailSampleConfig{
				KeepEvery: *keepEvery, SlowThreshold: *slowTrace,
			})
		}
	}

	fatal := func(msg string, err error) {
		log.Error(msg, "err", err)
		os.Exit(1)
	}
	sloRules, err := quality.ParseRules(*sloSpec)
	if err != nil {
		fatal("parse -slo", err)
	}
	scfg := serveConfig{
		addr:      *addr,
		debugAddr: *debugAddr,
		res: server.ResilienceConfig{
			MaxInFlight:    *maxInflight,
			RequestTimeout: *reqTimeout,
		},
		batch: server.BatchConfig{
			MaxBatch: *maxBatch,
			MaxDelay: *maxDelay,
		},
		slo:         sloRules,
		runDir:      *runDir,
		fleetK:      *fleetK,
		f32:         *f32,
		qualityFast: *qualityFast,
		ingest:      server.IngestConfig{RingCapacity: *ringCap, MaxEntities: *maxEntities},
		shard:       server.ShardConfig{Shards: *shards, QueueCap: *shardQueue},
		registryDir: *registryDir,
		modelCache:  *modelCache,
		publish:     *publish,
	}
	if scfg.publish != "" && scfg.registryDir == "" {
		fatal("configure", errors.New("-publish needs -registry-dir"))
	}
	if *adaptOn {
		scfg.adapt = &adapt.Config{
			Dir:               *adaptDir,
			MinSamples:        *adaptMinSamp,
			MinShadowResolved: *adaptShadow,
			PromoteMargin:     *adaptMargin,
			Cooldown:          *adaptCool,
		}
	}

	if *loadModel != "" {
		f, err := os.Open(*loadModel)
		if err != nil {
			fatal("open model", err)
		}
		p, err := core.LoadPredictor(f)
		f.Close()
		if err != nil {
			fatal("load model", err)
		}
		serve(log, p, scfg)
		return
	}

	var sc core.Scenario
	switch strings.ToLower(*scenario) {
	case "uni":
		sc = core.Uni
	case "mul":
		sc = core.Mul
	case "mul-exp", "mulexp":
		sc = core.MulExp
	default:
		log.Error("unknown scenario", "scenario", *scenario)
		os.Exit(1)
	}

	kind := trace.Container
	if *kindName == "machine" {
		kind = trace.Machine
	}

	var entity *trace.EntitySeries
	switch {
	case *synthetic:
		entity = trace.Generate(trace.GeneratorConfig{
			Entities: 1, Kind: kind, Samples: *samples, Seed: *seed,
		})[0]
	case *input != "":
		f, err := os.Open(*input)
		if err != nil {
			fatal("open trace", err)
		}
		entities, stats, err := trace.ReadCSVStats(f, kind)
		f.Close()
		if err != nil {
			fatal("read trace", err)
		}
		if stats.Skipped > 0 {
			log.Warn("trace csv had unusable rows", "skipped", stats.Skipped, "kept", stats.Rows)
		}
		if len(entities) == 0 {
			fatal("read trace", errors.New("no entities in "+*input))
		}
		entity = entities[0]
		if *entityID != "" {
			entity = nil
			for _, e := range entities {
				if e.ID == *entityID {
					entity = e
					break
				}
			}
			if entity == nil {
				fatal("select entity", errors.New("entity "+*entityID+" not found"))
			}
		}
	default:
		fatal("configure", errors.New("need -input or -synthetic"))
	}

	// Run-artifact journal: a persistent JSONL record of this training
	// run (render it back with `go run ./cmd/runlog <dir>`).
	var journal *runlog.Run
	if *runDir != "" {
		var err error
		journal, err = runlog.Create(*runDir)
		if err != nil {
			fatal("create run journal", err)
		}
		log.Info("journaling run", "path", journal.Path())
	}
	hooks := []train.Hook{
		train.NewMetricsHook(obs.Default()),
		train.NewLogHook(obs.Logger("train")),
	}
	if journal != nil {
		hooks = append(hooks, train.NewJournalHook(journal))
	}
	journal.Log(runlog.TypeConfig, map[string]any{
		"scenario": sc.String(), "kind": entity.Kind.String(), "entity": entity.ID,
		"window": *window, "horizon": *horizon, "epochs": *epochs, "seed": *seed,
	})

	p := core.NewPredictor(core.PredictorConfig{
		Scenario: sc, Window: *window, Horizon: *horizon, Epochs: *epochs, Seed: *seed,
		Model: core.Config{
			Channels: []int{16, 16, 16}, KernelSize: 3, Dilations: []int{1, 2, 4},
			Dropout: 0.1, WeightNorm: true, FCWidth: 32,
		},
		// Training progress streams into the same registry /metrics
		// serves, plus per-epoch structured log lines.
		Hooks:      hooks,
		Tracer:     obstrace.Default(),
		Checkpoint: train.CheckpointConfig{Dir: *ckptDir, Resume: *resume},
		Guard:      train.GuardConfig{Enabled: *guard},
	})
	log.Info("training RPTCN", "scenario", sc.String(), "kind", entity.Kind.String(), "entity", entity.ID)
	start := time.Now()
	if err := p.Fit(entity.Matrix(), int(trace.CPUUtilPercent)); err != nil {
		fatal("fit", err)
	}
	rep, err := p.TestMetrics()
	if err != nil {
		fatal("test metrics", err)
	}
	log.Info("trained",
		"dur", time.Since(start).Round(time.Millisecond),
		"test_mse_x100", rep.MSE*100, "test_mae_x100", rep.MAE*100)
	journal.Log(runlog.TypeFinal, map[string]any{
		"test_mse": rep.MSE, "test_mae": rep.MAE,
		"train_seconds": time.Since(start).Seconds(),
	})
	if err := journal.Close(); err != nil {
		log.Error("run journal", "err", err)
	}
	serve(log, p, scfg)
}

// serveConfig carries every serving-side knob from flag parsing to
// serve(), so the training and -load paths stay symmetric.
type serveConfig struct {
	addr, debugAddr string
	res             server.ResilienceConfig
	batch           server.BatchConfig
	slo             []quality.Rule
	runDir          string
	fleetK          int
	f32             bool
	qualityFast     bool
	ingest          server.IngestConfig
	shard           server.ShardConfig
	registryDir     string // "": no model registry
	modelCache      int
	publish         string        // publish the served predictor under this name at boot
	adapt           *adapt.Config // nil: adaptation off
}

func serve(log *slog.Logger, p *core.Predictor, sc serveConfig) {
	addr, debugAddr, runDir := sc.addr, sc.debugAddr, sc.runDir
	if sc.f32 {
		// Gated opt-in: the tier only activates when the f32 forecasts
		// validate against the f64 oracle on the held-out split; a refusal
		// (out-of-bound error, or a -load'ed predictor without retained
		// test data) leaves the f64 path serving.
		if rep, err := p.EnableFloat32(); err != nil {
			log.Warn("float32 serving tier refused; serving float64", "err", err)
		} else {
			log.Info("serving on the float32 tier",
				"samples", rep.Samples, "max_rel_err", rep.MaxRelErr, "mae_delta", rep.MAEDelta)
		}
	}
	reg := obs.Default()
	reg.PublishExpvar("rptcn")
	// Pre-register the training families so /metrics shows them even for
	// predictors served via -load (no training in this process).
	train.NewMetricsHook(reg)

	// Serving journal: drift and SLO transitions detected while serving
	// land in their own JSONL run artifact, separate from the training run.
	var journal *runlog.Run
	if runDir != "" {
		var err error
		journal, err = runlog.Create(runDir)
		if err != nil {
			log.Error("create serving journal", "err", err)
			os.Exit(1)
		}
		log.Info("journaling serving-quality events", "path", journal.Path())
	}

	qcfg := quality.Config{Rules: sc.slo}
	if sc.qualityFast {
		// Compressed-replay tuning: detectors that flip within tens of
		// requests instead of hundreds (same constants qualityreport's
		// replay uses). Production cadences want the defaults.
		qcfg.Mutation = quality.MutationConfig{MedianWidth: 5, Warmup: 16, Cooldown: 8, Alpha: 0.25, Delta: 3, Lambda: 50}
		qcfg.InputDrift = quality.DriftConfig{Baseline: 16, Alpha: 0.5, MinStd: 0.02}
	}
	if sc.adapt != nil {
		// The supervisor retrains from the ingestion rings, so a ring must
		// be able to hold a full training set: grow the default capacity to
		// twice the retrain minimum.
		minSamples := sc.adapt.MinSamples
		if minSamples <= 0 {
			minSamples = 4 * p.MinHistory()
		}
		if sc.ingest.RingCapacity <= 0 && !sc.ingest.Disabled {
			sc.ingest.RingCapacity = 2 * minSamples
		}
		log.Info("online adaptation enabled",
			"dir", sc.adapt.Dir, "min_samples", minSamples, "ring_capacity", sc.ingest.RingCapacity)
	}
	opts := []server.Option{
		server.WithRegistry(reg), server.WithTracer(obstrace.Default()),
		server.WithResilience(sc.res), server.WithBatching(sc.batch),
		server.WithQualityConfig(qcfg),
		server.WithJournal(journal),
		server.WithIngest(sc.ingest),
		server.WithSharding(sc.shard),
		server.WithFleetTelemetry(server.FleetConfig{Disabled: sc.fleetK <= 0, K: sc.fleetK}),
		server.WithDebugAddr(debugAddr),
	}
	if sc.registryDir != "" {
		store, err := registry.Open(sc.registryDir)
		if err != nil {
			log.Error("open model registry", "err", err)
			os.Exit(1)
		}
		if sc.publish != "" {
			v, err := store.Publish(sc.publish, p)
			if err != nil {
				log.Error("publish model", "name", sc.publish, "err", err)
				os.Exit(1)
			}
			log.Info("published serving model", "name", sc.publish, "version", v, "dir", sc.registryDir)
		}
		cache := registry.NewCache(store, sc.modelCache)
		cache.RegisterMetrics(reg)
		opts = append(opts, server.WithModelRegistry(cache))
		log.Info("model registry enabled", "dir", sc.registryDir, "models", store.Names())
	}
	if sc.shard.Shards > 1 {
		log.Info("sharded entity serving", "shards", sc.shard.Shards)
	}
	if sc.adapt != nil {
		opts = append(opts, server.WithAdaptation(*sc.adapt))
	}
	handler := server.New(p, opts...)
	srv := &http.Server{
		Addr:              addr,
		Handler:           handler,
		ReadTimeout:       10 * time.Second,
		ReadHeaderTimeout: 5 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       120 * time.Second,
	}

	if debugAddr != "" {
		go func() {
			mux := http.NewServeMux()
			mux.HandleFunc("/debug/pprof/", pprof.Index)
			mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
			mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
			mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
			mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
			mux.Handle("/debug/vars", http.DefaultServeMux)
			mux.Handle("/debug/traces", obstrace.Default().Handler())
			mux.Handle("/metrics", reg.Handler())
			dbg := &http.Server{Addr: debugAddr, Handler: mux, ReadHeaderTimeout: 5 * time.Second}
			log.Info("debug server listening", "addr", debugAddr)
			if err := dbg.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Error("debug server", "err", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	endpoints := "GET /healthz, GET /readyz, GET /metrics, GET /v1/model, POST /v1/forecast, POST /v1/ingest, GET /v1/forecast/{entity}, GET /v1/entities, POST /v1/observe, GET /debug (index), GET /debug/quality, GET /debug/fleet, GET /debug/shards"
	if sc.adapt != nil {
		endpoints += ", GET /debug/adapt"
	}
	log.Info("serving forecasts", "addr", addr, "endpoints", endpoints)

	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Error("serve", "err", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		log.Info("signal received, draining in-flight forecasts")
		shutCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil {
			log.Error("shutdown", "err", err)
		}
	}
	// Stop the quality engine's worker and flush the serving journal.
	if err := handler.Close(); err != nil {
		log.Error("close server", "err", err)
	}
	if err := journal.Close(); err != nil {
		log.Error("serving journal", "err", err)
	}

	// Final metrics snapshot: the operational record of this process.
	for _, s := range reg.Snapshot() {
		if s.Type == "histogram" {
			log.Info("final metric", "name", s.Name+s.Labels, "count", s.Count, "sum", s.Sum)
		} else {
			log.Info("final metric", "name", s.Name+s.Labels, "value", s.Value)
		}
	}
	log.Info("bye")
}
