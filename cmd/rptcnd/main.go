// Command rptcnd trains an RPTCN predictor and serves forecasts over HTTP
// — the online integration point for a cluster resource manager.
//
// Usage:
//
//	rptcnd -synthetic -addr :8080
//	rptcnd -input trace.csv -entity c_10000 -scenario mul-exp
//
// Then:
//
//	curl localhost:8080/v1/model
//	curl -X POST localhost:8080/v1/forecast -d '{"indicators": [[...], ...]}'
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/server"
	"repro/internal/trace"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		input     = flag.String("input", "", "trace CSV in v2018 layout")
		synthetic = flag.Bool("synthetic", false, "train on a generated workload")
		entityID  = flag.String("entity", "", "entity to train on (default: first)")
		kindName  = flag.String("kind", "container", "machine or container")
		scenario  = flag.String("scenario", "mul-exp", "uni, mul, or mul-exp")
		window    = flag.Int("window", 32, "input window length")
		horizon   = flag.Int("horizon", 5, "forecast steps")
		epochs    = flag.Int("epochs", 30, "max training epochs")
		samples   = flag.Int("samples", 2500, "synthetic series length")
		seed      = flag.Uint64("seed", 1, "seed")
		loadModel = flag.String("load", "", "serve a predictor saved by `rptcn -save` instead of training")
	)
	flag.Parse()

	if *loadModel != "" {
		f, err := os.Open(*loadModel)
		if err != nil {
			log.Fatalf("rptcnd: %v", err)
		}
		p, err := core.LoadPredictor(f)
		f.Close()
		if err != nil {
			log.Fatalf("rptcnd: load: %v", err)
		}
		serve(*addr, p)
		return
	}

	var sc core.Scenario
	switch strings.ToLower(*scenario) {
	case "uni":
		sc = core.Uni
	case "mul":
		sc = core.Mul
	case "mul-exp", "mulexp":
		sc = core.MulExp
	default:
		log.Fatalf("rptcnd: unknown scenario %q", *scenario)
	}

	kind := trace.Container
	if *kindName == "machine" {
		kind = trace.Machine
	}

	var entity *trace.EntitySeries
	switch {
	case *synthetic:
		entity = trace.Generate(trace.GeneratorConfig{
			Entities: 1, Kind: kind, Samples: *samples, Seed: *seed,
		})[0]
	case *input != "":
		f, err := os.Open(*input)
		if err != nil {
			log.Fatalf("rptcnd: %v", err)
		}
		entities, err := trace.ReadCSV(f, kind)
		f.Close()
		if err != nil {
			log.Fatalf("rptcnd: %v", err)
		}
		if len(entities) == 0 {
			log.Fatalf("rptcnd: no entities in %s", *input)
		}
		entity = entities[0]
		if *entityID != "" {
			entity = nil
			for _, e := range entities {
				if e.ID == *entityID {
					entity = e
					break
				}
			}
			if entity == nil {
				log.Fatalf("rptcnd: entity %q not found", *entityID)
			}
		}
	default:
		log.Fatal("rptcnd: need -input or -synthetic")
	}

	p := core.NewPredictor(core.PredictorConfig{
		Scenario: sc, Window: *window, Horizon: *horizon, Epochs: *epochs, Seed: *seed,
		Model: core.Config{
			Channels: []int{16, 16, 16}, KernelSize: 3, Dilations: []int{1, 2, 4},
			Dropout: 0.1, WeightNorm: true, FCWidth: 32,
		},
	})
	log.Printf("training RPTCN (%s) on %s %s ...", sc, entity.Kind, entity.ID)
	start := time.Now()
	if err := p.Fit(entity.Matrix(), int(trace.CPUUtilPercent)); err != nil {
		log.Fatalf("rptcnd: fit: %v", err)
	}
	rep, err := p.TestMetrics()
	if err != nil {
		log.Fatalf("rptcnd: %v", err)
	}
	log.Printf("trained in %s; test MSE %.4f x10^-2, MAE %.4f x10^-2",
		time.Since(start).Round(time.Millisecond), rep.MSE*100, rep.MAE*100)
	serve(*addr, p)
}

func serve(addr string, p *core.Predictor) {
	srv := &http.Server{
		Addr:              addr,
		Handler:           server.New(p),
		ReadHeaderTimeout: 5 * time.Second,
	}
	fmt.Printf("serving forecasts on %s (GET /v1/model, POST /v1/forecast)\n", addr)
	if err := srv.ListenAndServe(); err != nil {
		log.Fatalf("rptcnd: %v", err)
	}
}
