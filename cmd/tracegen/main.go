// Command tracegen generates a synthetic Alibaba-v2018-like cluster trace
// and writes it as CSV (machine_usage / container_usage column layout).
//
// Usage:
//
//	tracegen -kind container -entities 4 -samples 5000 -o trace.csv
//	tracegen -kind machine -missing 0.01        # inject missing samples
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/trace"
)

func main() {
	var (
		kindName = flag.String("kind", "container", "entity kind: machine or container")
		entities = flag.Int("entities", 1, "number of entities")
		samples  = flag.Int("samples", 5000, "samples per entity")
		interval = flag.Int("interval", 10, "sampling interval in seconds")
		seed     = flag.Uint64("seed", 1, "generator seed")
		missing  = flag.Float64("missing", 0, "missing-sample injection rate")
		mutation = flag.Int("mutation", 0, "inject one step change at this sample (single entity only)")
		out      = flag.String("o", "-", "output file (- for stdout)")
	)
	flag.Parse()

	var kind trace.EntityKind
	switch *kindName {
	case "machine":
		kind = trace.Machine
	case "container":
		kind = trace.Container
	default:
		fmt.Fprintf(os.Stderr, "tracegen: unknown kind %q (want machine|container)\n", *kindName)
		os.Exit(2)
	}

	var entitiesOut []*trace.EntitySeries
	if *mutation > 0 {
		entitiesOut = []*trace.EntitySeries{trace.GenerateWithMutation(*samples, *mutation, *seed)}
	} else {
		entitiesOut = trace.Generate(trace.GeneratorConfig{
			Entities:    *entities,
			Kind:        kind,
			Samples:     *samples,
			Interval:    *interval,
			Seed:        *seed,
			MissingRate: *missing,
		})
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := trace.WriteCSV(w, entitiesOut); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}
