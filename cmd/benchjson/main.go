// Command benchjson runs the repo's Go benchmarks and records the results
// as machine-readable JSON, so performance numbers can be committed,
// diffed, and uploaded as CI artifacts instead of living in ad-hoc logs.
//
// Each invocation writes (or replaces) one labeled section in the output
// file, so a before/after comparison is two runs with different -label
// values against the same -o path:
//
//	benchjson -label before -parse old_bench.txt -o BENCH_compute.json
//	benchjson -label after -o BENCH_compute.json
//
// Without -parse the tool shells out to `go test -bench` for the packages
// in -pkgs; with -parse it ingests previously captured `go test -bench`
// output (use "-" for stdin).
//
// With -check the tool becomes a regression gate instead of a recorder:
// it measures the named benchmarks fresh, compares ns/op against the
// committed -baseline section, and exits non-zero when any of them
// regressed by more than -max-regress percent:
//
//	benchjson -check -baseline after-pr5 -names BenchmarkMatMulLarge,BenchmarkFit -max-regress 20
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Result is one benchmark line. Extra holds custom b.ReportMetric units
// (e.g. "req/s", "p99-ns" from the serving benchmarks) that are not part
// of the standard -benchmem columns.
type Result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// Section is one labeled capture (e.g. "before" / "after").
type Section struct {
	Label       string   `json:"label"`
	GeneratedAt string   `json:"generated_at"`
	GoVersion   string   `json:"go_version"`
	GOOS        string   `json:"goos"`
	GOARCH      string   `json:"goarch"`
	GOMAXPROCS  int      `json:"gomaxprocs"`
	Packages    []string `json:"packages,omitempty"`
	Results     []Result `json:"results"`
}

// File is the on-disk document.
type File struct {
	Sections []Section `json:"sections"`
}

// benchLine matches a `go test -bench -benchmem` result row, e.g.
//
//	BenchmarkLSTMForwardBackward-4  100  230070 ns/op  501234 B/op  3547 allocs/op
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([0-9.]+) ns/op(?:\s+[0-9.]+ MB/s)?(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

// metricPair matches one "<value> <unit>" column; units outside the
// standard -benchmem set are custom b.ReportMetric outputs.
var metricPair = regexp.MustCompile(`([0-9.e+-]+) ([A-Za-z][^\s]*)`)

// extraMetrics extracts custom metric columns from a benchmark line.
func extraMetrics(line string) map[string]float64 {
	var extra map[string]float64
	for _, m := range metricPair.FindAllStringSubmatch(line, -1) {
		switch m[2] {
		case "ns/op", "B/op", "allocs/op", "MB/s":
			continue
		}
		v, err := strconv.ParseFloat(m[1], 64)
		if err != nil {
			continue
		}
		if extra == nil {
			extra = make(map[string]float64)
		}
		extra[m[2]] = v
	}
	return extra
}

// parseBench extracts benchmark results from `go test -bench` output.
func parseBench(r io.Reader) ([]Result, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	var out []Result
	for _, line := range strings.Split(string(data), "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		ns, _ := strconv.ParseFloat(m[3], 64)
		res := Result{Name: m[1], Iterations: iters, NsPerOp: ns}
		if m[4] != "" {
			res.BytesPerOp, _ = strconv.ParseInt(m[4], 10, 64)
		}
		if m[5] != "" {
			res.AllocsPerOp, _ = strconv.ParseInt(m[5], 10, 64)
		}
		res.Extra = extraMetrics(line)
		out = append(out, res)
	}
	return out, nil
}

// runBenchmarks shells out to `go test -bench` for each package and parses
// the combined output.
func runBenchmarks(pkgs []string, benchRE, benchtime string) ([]Result, error) {
	var all []Result
	for _, pkg := range pkgs {
		args := []string{"test", "-run=^$", "-bench=" + benchRE, "-benchmem"}
		if benchtime != "" {
			args = append(args, "-benchtime="+benchtime)
		}
		args = append(args, pkg)
		cmd := exec.Command("go", args...)
		cmd.Stderr = os.Stderr
		out, err := cmd.Output()
		if err != nil {
			return nil, fmt.Errorf("go test %s: %w", pkg, err)
		}
		res, err := parseBench(strings.NewReader(string(out)))
		if err != nil {
			return nil, err
		}
		all = append(all, res...)
	}
	return all, nil
}

// findSection returns the section with the given label, or nil.
func findSection(f *File, label string) *Section {
	for i := range f.Sections {
		if f.Sections[i].Label == label {
			return &f.Sections[i]
		}
	}
	return nil
}

// checkRegression compares fresh ns/op numbers for the named benchmarks
// against the baseline section. It returns one report line per name and
// ok=false when any benchmark is missing or slower than the baseline by
// more than maxPct percent. Faster-than-baseline results pass; only
// slowdowns gate.
func checkRegression(base *Section, fresh []Result, names []string, maxPct float64) (lines []string, ok bool) {
	byName := func(rs []Result, name string) *Result {
		for i := range rs {
			if rs[i].Name == name {
				return &rs[i]
			}
		}
		return nil
	}
	ok = true
	for _, name := range names {
		ref := byName(base.Results, name)
		got := byName(fresh, name)
		switch {
		case ref == nil:
			lines = append(lines, fmt.Sprintf("FAIL %s: not in baseline section %q", name, base.Label))
			ok = false
		case got == nil:
			lines = append(lines, fmt.Sprintf("FAIL %s: no fresh measurement", name))
			ok = false
		default:
			delta := (got.NsPerOp - ref.NsPerOp) / ref.NsPerOp * 100
			verdict := "ok"
			if delta > maxPct {
				verdict = "FAIL"
				ok = false
			}
			lines = append(lines, fmt.Sprintf("%s %s: %.0f ns/op vs baseline %.0f ns/op (%+.1f%%, limit +%.0f%%)",
				verdict, name, got.NsPerOp, ref.NsPerOp, delta, maxPct))
		}
	}
	return lines, ok
}

// upsertSection replaces the section with the same label or appends it.
func upsertSection(f *File, s Section) {
	for i := range f.Sections {
		if f.Sections[i].Label == s.Label {
			f.Sections[i] = s
			return
		}
	}
	f.Sections = append(f.Sections, s)
}

func main() {
	var (
		out       = flag.String("o", "BENCH_compute.json", "output JSON file (updated in place)")
		label     = flag.String("label", "", "section label, e.g. before or after (required)")
		benchRE   = flag.String("bench", ".", "benchmark regexp passed to go test")
		benchtime = flag.String("benchtime", "", "go test -benchtime value (empty = default)")
		pkgsFlag  = flag.String("pkgs", "./internal/tensor,./internal/nn,./internal/train", "comma-separated packages to benchmark")
		parse     = flag.String("parse", "", "ingest saved `go test -bench` output from this file instead of running (\"-\" = stdin)")

		check      = flag.Bool("check", false, "regression-gate mode: compare fresh runs against -baseline instead of recording")
		baseline   = flag.String("baseline", "", "section label to compare against in -check mode (required with -check)")
		names      = flag.String("names", "", "comma-separated benchmark names to gate in -check mode (required with -check)")
		maxRegress = flag.Float64("max-regress", 20, "maximum allowed ns/op slowdown percentage in -check mode")
	)
	flag.Parse()
	if *check {
		runCheck(*out, *baseline, *names, *maxRegress, *parse, *pkgsFlag, *benchtime)
		return
	}
	if *label == "" {
		fmt.Fprintln(os.Stderr, "benchjson: -label is required")
		flag.Usage()
		os.Exit(2)
	}

	var (
		results []Result
		pkgs    []string
		err     error
	)
	if *parse != "" {
		var r io.Reader = os.Stdin
		if *parse != "-" {
			f, ferr := os.Open(*parse)
			if ferr != nil {
				fmt.Fprintln(os.Stderr, "benchjson:", ferr)
				os.Exit(1)
			}
			defer f.Close()
			r = f
		}
		results, err = parseBench(r)
	} else {
		pkgs = strings.Split(*pkgsFlag, ",")
		results, err = runBenchmarks(pkgs, *benchRE, *benchtime)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark results found")
		os.Exit(1)
	}

	var doc File
	if data, rerr := os.ReadFile(*out); rerr == nil {
		if jerr := json.Unmarshal(data, &doc); jerr != nil {
			fmt.Fprintf(os.Stderr, "benchjson: existing %s is not valid JSON: %v\n", *out, jerr)
			os.Exit(1)
		}
	}
	upsertSection(&doc, Section{
		Label:       *label,
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Packages:    pkgs,
		Results:     results,
	})

	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Printf("benchjson: wrote %d results to section %q of %s\n", len(results), *label, *out)
}

// runCheck implements -check: measure the named benchmarks and gate on
// the committed baseline section.
func runCheck(out, baseline, namesCSV string, maxRegress float64, parse, pkgsCSV, benchtime string) {
	if baseline == "" || namesCSV == "" {
		fmt.Fprintln(os.Stderr, "benchjson: -check requires -baseline and -names")
		os.Exit(2)
	}
	names := strings.Split(namesCSV, ",")

	data, err := os.ReadFile(out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	var doc File
	if err := json.Unmarshal(data, &doc); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", out, err)
		os.Exit(1)
	}
	base := findSection(&doc, baseline)
	if base == nil {
		fmt.Fprintf(os.Stderr, "benchjson: no section %q in %s\n", baseline, out)
		os.Exit(1)
	}

	var fresh []Result
	if parse != "" {
		var r io.Reader = os.Stdin
		if parse != "-" {
			f, ferr := os.Open(parse)
			if ferr != nil {
				fmt.Fprintln(os.Stderr, "benchjson:", ferr)
				os.Exit(1)
			}
			defer f.Close()
			r = f
		}
		fresh, err = parseBench(r)
	} else {
		// Anchor each name so BenchmarkFit does not also run BenchmarkFitTracerOn.
		re := "^(" + strings.Join(names, "|") + ")$"
		fresh, err = runBenchmarks(strings.Split(pkgsCSV, ","), re, benchtime)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}

	lines, ok := checkRegression(base, fresh, names, maxRegress)
	for _, l := range lines {
		fmt.Println(l)
	}
	if !ok {
		os.Exit(1)
	}
}
