package main

import (
	"strings"
	"testing"
)

func TestParseBench(t *testing.T) {
	raw := `
goos: linux
goarch: amd64
pkg: repro/internal/nn
BenchmarkCausalConv1DForward-4        1440            829509 ns/op           90240 B/op         10 allocs/op
BenchmarkLSTMForwardBackward-4          52          23007096 ns/op         3160352 B/op       3547 allocs/op
BenchmarkParDispatchInline               4194304    286.2 ns/op            16 B/op          1 allocs/op
BenchmarkNoMem-8        1000    123 ns/op
BenchmarkMatMulSmall    11799   17471 ns/op        1406.70 MB/s      8320 B/op          5 allocs/op
PASS
ok      repro/internal/nn       12.3s
`
	res, err := parseBench(strings.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 5 {
		t.Fatalf("got %d results, want 5", len(res))
	}
	mm := res[4]
	if mm.BytesPerOp != 8320 || mm.AllocsPerOp != 5 {
		t.Errorf("row with MB/s column parsed as %+v", mm)
	}
	conv := res[0]
	if conv.Name != "BenchmarkCausalConv1DForward" {
		t.Errorf("name = %q (GOMAXPROCS suffix should be stripped)", conv.Name)
	}
	if conv.Iterations != 1440 || conv.NsPerOp != 829509 || conv.BytesPerOp != 90240 || conv.AllocsPerOp != 10 {
		t.Errorf("conv row parsed as %+v", conv)
	}
	if res[2].NsPerOp != 286.2 {
		t.Errorf("fractional ns/op parsed as %v", res[2].NsPerOp)
	}
	if res[3].BytesPerOp != 0 || res[3].AllocsPerOp != 0 {
		t.Errorf("row without -benchmem columns parsed as %+v", res[3])
	}
}

func TestParseBenchExtraMetrics(t *testing.T) {
	raw := `BenchmarkForecastServingBatched 	   28741	    128766 ns/op	   4130466 p50-ns	   7276047 p99-ns	      7766 req/s`
	res, err := parseBench(strings.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("got %d results, want 1", len(res))
	}
	r := res[0]
	if r.NsPerOp != 128766 {
		t.Errorf("ns/op = %v", r.NsPerOp)
	}
	want := map[string]float64{"p50-ns": 4130466, "p99-ns": 7276047, "req/s": 7766}
	for k, v := range want {
		if r.Extra[k] != v {
			t.Errorf("extra[%q] = %v, want %v (all: %v)", k, r.Extra[k], v, r.Extra)
		}
	}
	if len(r.Extra) != len(want) {
		t.Errorf("extra = %v, want exactly %v", r.Extra, want)
	}

	// Standard rows carry no extras.
	res, err = parseBench(strings.NewReader(
		`BenchmarkMatMulSmall    11799   17471 ns/op        1406.70 MB/s      8320 B/op          5 allocs/op`))
	if err != nil || len(res) != 1 {
		t.Fatalf("res=%v err=%v", res, err)
	}
	if res[0].Extra != nil {
		t.Errorf("standard row grew extras: %v", res[0].Extra)
	}
}

func TestCheckRegression(t *testing.T) {
	base := &Section{
		Label: "after-pr5",
		Results: []Result{
			{Name: "BenchmarkMatMulLarge", NsPerOp: 10_000_000},
			{Name: "BenchmarkFit", NsPerOp: 650_000},
		},
	}
	names := []string{"BenchmarkMatMulLarge", "BenchmarkFit"}

	// Within the limit (one slightly slower, one faster) passes.
	fresh := []Result{
		{Name: "BenchmarkMatMulLarge", NsPerOp: 11_500_000},
		{Name: "BenchmarkFit", NsPerOp: 600_000},
	}
	lines, ok := checkRegression(base, fresh, names, 20)
	if !ok {
		t.Fatalf("within-limit run failed: %v", lines)
	}
	if len(lines) != 2 {
		t.Fatalf("got %d report lines, want 2: %v", len(lines), lines)
	}

	// 25% slower than baseline with a 20% limit fails.
	fresh[0].NsPerOp = 12_500_000
	if _, ok := checkRegression(base, fresh, names, 20); ok {
		t.Fatal("run 25 percent slower passed a 20 percent gate")
	}

	// A gated benchmark missing from the fresh run fails.
	if _, ok := checkRegression(base, fresh[:1], names, 20); ok {
		t.Fatal("missing fresh measurement passed the gate")
	}

	// A gated benchmark missing from the baseline fails loudly rather than
	// silently passing.
	if _, ok := checkRegression(&Section{Label: "x"}, fresh, names, 20); ok {
		t.Fatal("missing baseline entry passed the gate")
	}
}

func TestUpsertSection(t *testing.T) {
	var f File
	upsertSection(&f, Section{Label: "before", Results: []Result{{Name: "A"}}})
	upsertSection(&f, Section{Label: "after", Results: []Result{{Name: "B"}}})
	upsertSection(&f, Section{Label: "before", Results: []Result{{Name: "C"}}})
	if len(f.Sections) != 2 {
		t.Fatalf("got %d sections, want 2", len(f.Sections))
	}
	if f.Sections[0].Results[0].Name != "C" {
		t.Errorf("before section not replaced: %+v", f.Sections[0])
	}
}
