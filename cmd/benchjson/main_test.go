package main

import (
	"strings"
	"testing"
)

func TestParseBench(t *testing.T) {
	raw := `
goos: linux
goarch: amd64
pkg: repro/internal/nn
BenchmarkCausalConv1DForward-4        1440            829509 ns/op           90240 B/op         10 allocs/op
BenchmarkLSTMForwardBackward-4          52          23007096 ns/op         3160352 B/op       3547 allocs/op
BenchmarkParDispatchInline               4194304    286.2 ns/op            16 B/op          1 allocs/op
BenchmarkNoMem-8        1000    123 ns/op
BenchmarkMatMulSmall    11799   17471 ns/op        1406.70 MB/s      8320 B/op          5 allocs/op
PASS
ok      repro/internal/nn       12.3s
`
	res, err := parseBench(strings.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 5 {
		t.Fatalf("got %d results, want 5", len(res))
	}
	mm := res[4]
	if mm.BytesPerOp != 8320 || mm.AllocsPerOp != 5 {
		t.Errorf("row with MB/s column parsed as %+v", mm)
	}
	conv := res[0]
	if conv.Name != "BenchmarkCausalConv1DForward" {
		t.Errorf("name = %q (GOMAXPROCS suffix should be stripped)", conv.Name)
	}
	if conv.Iterations != 1440 || conv.NsPerOp != 829509 || conv.BytesPerOp != 90240 || conv.AllocsPerOp != 10 {
		t.Errorf("conv row parsed as %+v", conv)
	}
	if res[2].NsPerOp != 286.2 {
		t.Errorf("fractional ns/op parsed as %v", res[2].NsPerOp)
	}
	if res[3].BytesPerOp != 0 || res[3].AllocsPerOp != 0 {
		t.Errorf("row without -benchmem columns parsed as %+v", res[3])
	}
}

func TestUpsertSection(t *testing.T) {
	var f File
	upsertSection(&f, Section{Label: "before", Results: []Result{{Name: "A"}}})
	upsertSection(&f, Section{Label: "after", Results: []Result{{Name: "B"}}})
	upsertSection(&f, Section{Label: "before", Results: []Result{{Name: "C"}}})
	if len(f.Sections) != 2 {
		t.Fatalf("got %d sections, want 2", len(f.Sections))
	}
	if f.Sections[0].Results[0].Name != "C" {
		t.Errorf("before section not replaced: %+v", f.Sections[0])
	}
}
