// Package repro's root benchmark harness: one benchmark per table and
// figure of the paper, plus the ablation benches listed in DESIGN.md.
//
// Benchmarks run the experiments in the reduced Fast configuration so a
// full `go test -bench=. -benchmem` completes in minutes; run
// `cmd/experiments` without -fast for full-fidelity numbers. Each
// benchmark reports the headline metric of its experiment as a custom
// metric so regressions in *accuracy*, not just speed, are visible.
package repro

import (
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/trace"
)

// BenchmarkFig1Characterization regenerates Fig. 1 (container utilization
// dynamics).
func BenchmarkFig1Characterization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunFig1(experiments.Fast(uint64(i)))
		if len(r.CPU) == 0 {
			b.Fatal("empty series")
		}
	}
}

// BenchmarkFig2Boxplot regenerates Fig. 2 (fleet CPU boxplots per 6 h).
func BenchmarkFig2Boxplot(b *testing.B) {
	var q3 float64
	for i := 0; i < b.N; i++ {
		r := experiments.RunFig2(experiments.Fast(uint64(i)))
		q3 = r.Boxes[0].Q3
	}
	b.ReportMetric(q3, "q3_window0")
}

// BenchmarkFig3LowUtil regenerates Fig. 3 (% machines under 50% CPU).
func BenchmarkFig3LowUtil(b *testing.B) {
	var frac float64
	for i := 0; i < b.N; i++ {
		frac = experiments.RunFig3(experiments.Fast(uint64(i))).OverallAverage
	}
	b.ReportMetric(frac*100, "pct_under_50")
}

// BenchmarkFig7Correlation regenerates Fig. 7 (indicator PCC heatmap).
func BenchmarkFig7Correlation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunFig7(experiments.Fast(uint64(i)))
		if len(r.TopFour) != 4 {
			b.Fatal("screening failed")
		}
	}
}

// benchTableIICell trains and scores one Table II cell.
func benchTableIICell(b *testing.B, sc core.Scenario, model experiments.ModelName, kind trace.EntityKind) {
	b.Helper()
	var mse float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTableIICell(experiments.Fast(1), sc, model, kind)
		if err != nil {
			b.Fatal(err)
		}
		mse = res.MSE
	}
	b.ReportMetric(mse*100, "mse_x100")
}

// BenchmarkTableII covers every cell of Table II: model × scenario ×
// entity kind.
func BenchmarkTableII(b *testing.B) {
	for _, kind := range []trace.EntityKind{trace.Container, trace.Machine} {
		for _, sc := range []core.Scenario{core.Uni, core.Mul, core.MulExp} {
			for _, model := range experiments.TableIIModels(sc) {
				name := kind.String() + "/" + sc.String() + "/" + string(model)
				b.Run(name, func(b *testing.B) {
					benchTableIICell(b, sc, model, kind)
				})
			}
		}
	}
}

// BenchmarkFig8Mutation regenerates Fig. 8 (mutation tracking, Mul-Exp).
func BenchmarkFig8Mutation(b *testing.B) {
	var post float64
	for i := 0; i < b.N; i++ {
		o := experiments.Fast(8)
		o.Samples = 1200
		res, err := experiments.RunFig8(o)
		if err != nil {
			b.Fatal(err)
		}
		post = res.PostMutationMAE[experiments.ModelRPTCN]
	}
	b.ReportMetric(post*100, "rptcn_poststep_mae_x100")
}

// BenchmarkFig9Convergence regenerates Fig. 9 (training-loss curves on
// containers).
func BenchmarkFig9Convergence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig9(experiments.Fast(9))
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Curves[experiments.ModelRPTCN]) == 0 {
			b.Fatal("no curve")
		}
	}
}

// BenchmarkFig10ValidLoss regenerates Fig. 10 (validation-loss curves on
// machines).
func BenchmarkFig10ValidLoss(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig10(experiments.Fast(10))
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Curves[experiments.ModelRPTCN]) == 0 {
			b.Fatal("no curve")
		}
	}
}

// benchAblation runs one ablation study and reports its first variant's MSE.
func benchAblation(b *testing.B, run func(experiments.Options) (*experiments.AblationResult, error)) {
	b.Helper()
	var mse float64
	for i := 0; i < b.N; i++ {
		res, err := run(experiments.Fast(11))
		if err != nil {
			b.Fatal(err)
		}
		mse = res.Results[res.Order[0]].MSE
	}
	b.ReportMetric(mse*100, "mse_x100")
}

// BenchmarkAblationHeads ablates the FC layer and attention head.
func BenchmarkAblationHeads(b *testing.B) { benchAblation(b, experiments.RunAblationHeads) }

// BenchmarkAblationExpansion compares Fig. 4a vs 4b feature expansion.
func BenchmarkAblationExpansion(b *testing.B) { benchAblation(b, experiments.RunAblationExpansion) }

// BenchmarkAblationDilations sweeps the dilation schedule.
func BenchmarkAblationDilations(b *testing.B) { benchAblation(b, experiments.RunAblationDilations) }

// BenchmarkAblationWeightNorm toggles weight normalization.
func BenchmarkAblationWeightNorm(b *testing.B) { benchAblation(b, experiments.RunAblationWeightNorm) }

// BenchmarkAblationScreening compares PCC screening policies.
func BenchmarkAblationScreening(b *testing.B) { benchAblation(b, experiments.RunAblationScreening) }

// BenchmarkAblationFutureWork evaluates the paper's future-work expansion
// strategies (first-difference channels, correlation-weighted factors).
func BenchmarkAblationFutureWork(b *testing.B) { benchAblation(b, experiments.RunAblationFutureWork) }

// BenchmarkNaiveComparison pits RPTCN against the classical reference
// forecasters (persistence, drift, moving average, EWMA, Holt, ARIMA).
func BenchmarkNaiveComparison(b *testing.B) {
	var mse float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunNaiveComparison(experiments.Fast(14), trace.Container)
		if err != nil {
			b.Fatal(err)
		}
		mse = res.Results["RPTCN"].MSE
	}
	b.ReportMetric(mse*100, "rptcn_mse_x100")
}

// BenchmarkHorizonSweep measures long-term (k-step) prediction.
func BenchmarkHorizonSweep(b *testing.B) {
	benchAblation(b, func(o experiments.Options) (*experiments.AblationResult, error) {
		return experiments.RunHorizonSweep(o, []int{1, 4})
	})
}
