package repro

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"os/exec"
	"strings"
	"testing"

	"repro/internal/alloc"
	"repro/internal/core"
	"repro/internal/naive"
	"repro/internal/server"
	"repro/internal/trace"
)

// TestEndToEndPipeline drives the full production flow through public
// APIs: generate a trace → CSV round trip → fit RPTCN → evaluate → save →
// load → serve over HTTP → use forecasts in an allocation policy.
func TestEndToEndPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end pipeline is expensive")
	}

	// 1. Trace generation and CSV round trip.
	entity := trace.Generate(trace.GeneratorConfig{
		Entities: 1, Kind: trace.Container, Samples: 1000, Seed: 99, MissingRate: 0.01,
	})[0]
	var csvBuf bytes.Buffer
	if err := trace.WriteCSV(&csvBuf, []*trace.EntitySeries{entity}); err != nil {
		t.Fatal(err)
	}
	loaded, err := trace.ReadCSV(&csvBuf, trace.Container)
	if err != nil {
		t.Fatal(err)
	}
	entity = loaded[0]

	// 2. Fit the Algorithm 1 pipeline.
	p := core.NewPredictor(core.PredictorConfig{
		Scenario: core.MulExp, Window: 24, Horizon: 3, Epochs: 8, Seed: 7,
		Model: core.Config{
			Channels: []int{12, 12}, KernelSize: 3, Dilations: []int{1, 2},
			Dropout: 0.1, WeightNorm: true, FCWidth: 24,
		},
	})
	if err := p.Fit(entity.Matrix(), int(trace.CPUUtilPercent)); err != nil {
		t.Fatal(err)
	}
	rep, err := p.TestMetrics()
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(rep.MSE) || rep.MSE > 0.1 {
		t.Fatalf("end-to-end MSE = %g (normalized)", rep.MSE)
	}

	// 3. Save / load, then serve the LOADED predictor over HTTP.
	var modelBuf bytes.Buffer
	if err := p.Save(&modelBuf); err != nil {
		t.Fatal(err)
	}
	restored, err := core.LoadPredictor(&modelBuf)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.New(restored))
	defer ts.Close()

	tail := make([][]float64, trace.NumIndicators)
	for i := range tail {
		s := entity.Metrics[i]
		tail[i] = s[len(s)-80:]
	}
	body, _ := json.Marshal(server.ForecastRequest{Indicators: tail})
	resp, err := http.Post(ts.URL+"/v1/forecast", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("forecast status = %d", resp.StatusCode)
	}
	var out server.ForecastResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Forecast) != 3 {
		t.Fatalf("forecast = %+v", out)
	}

	// 4. Allocation: RPTCN forecasts must waste less than the static-peak
	//    policy while keeping violations bounded.
	truthN, predsN, err := p.TestSeries()
	if err != nil {
		t.Fatal(err)
	}
	demand := p.DenormalizeTarget(truthN)
	forecasts := p.DenormalizeTarget(predsN)
	peak := 0.0
	for _, v := range entity.Series(trace.CPUUtilPercent) {
		if v > peak {
			peak = v
		}
	}
	rows, err := alloc.Compare(demand, []alloc.NamedReservation{
		{Name: "static", Reservation: alloc.Static(peak, len(demand))},
		{Name: "rptcn", Reservation: alloc.FromForecasts(forecasts, 5)},
	})
	if err != nil {
		t.Fatal(err)
	}
	static, rptcn := rows[0], rows[1]
	if rptcn.WastePerStep >= static.WastePerStep {
		t.Fatalf("rptcn waste %g not below static %g", rptcn.WastePerStep, static.WastePerStep)
	}
	if rptcn.SLOAttainment < 0.9 {
		t.Fatalf("rptcn SLO attainment = %g", rptcn.SLOAttainment)
	}
}

// TestPredictorBeatsNaiveOnDynamicWorkload pits the full pipeline against
// the persistence baseline on the same held-out windows.
func TestPredictorBeatsNaiveOnDynamicWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("expensive")
	}
	entity := trace.Generate(trace.GeneratorConfig{
		Entities: 1, Kind: trace.Container, Samples: 1500, Seed: 123,
		MutationRate: 0.01, BurstRate: 0.02,
	})[0]
	p := core.NewPredictor(core.PredictorConfig{
		Scenario: core.MulExp, Window: 24, Horizon: 1, Epochs: 12, Seed: 3,
		LearningRate: 2e-3,
		Model: core.Config{
			Channels: []int{16, 16}, KernelSize: 3, Dilations: []int{1, 2},
			Dropout: 0.1, WeightNorm: true, FCWidth: 24,
		},
	})
	if err := p.Fit(entity.Matrix(), int(trace.CPUUtilPercent)); err != nil {
		t.Fatal(err)
	}
	truth, preds, err := p.TestSeries()
	if err != nil {
		t.Fatal(err)
	}
	var seModel, seNaive float64
	// Persistence on the same normalized truth series.
	nf := &naive.Persistence{}
	if err := nf.Fit(truth[:1]); err != nil {
		t.Fatal(err)
	}
	naivePreds := naive.RollingForecast(nf, truth[1:])
	for i := 1; i < len(truth); i++ {
		dm := truth[i] - preds[i]
		dn := truth[i] - naivePreds[i-1]
		seModel += dm * dm
		seNaive += dn * dn
	}
	// RPTCN should at least be competitive with persistence (within 10%)
	// on this highly dynamic workload; typically it is better.
	if seModel > seNaive*1.1 {
		t.Fatalf("RPTCN SSE %g much worse than persistence %g", seModel, seNaive)
	}
}

// TestCLIToolsBuild ensures every command compiles to a runnable binary.
func TestCLIToolsBuild(t *testing.T) {
	if testing.Short() {
		t.Skip("build test")
	}
	for _, pkg := range []string{"./cmd/tracegen", "./cmd/rptcn", "./cmd/rptcnd", "./cmd/experiments"} {
		cmd := exec.Command("go", "build", "-o", "/dev/null", pkg)
		cmd.Dir = "."
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("building %s: %v\n%s", pkg, err, out)
		}
	}
}

// TestTracegenCLIProducesValidCSV runs the tracegen binary end to end.
func TestTracegenCLIProducesValidCSV(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI test")
	}
	cmd := exec.Command("go", "run", "./cmd/tracegen", "-kind", "machine", "-entities", "2", "-samples", "20")
	out, err := cmd.Output()
	if err != nil {
		t.Fatalf("tracegen: %v", err)
	}
	entities, err := trace.ReadCSV(bytes.NewReader(out), trace.Machine)
	if err != nil {
		t.Fatal(err)
	}
	if len(entities) != 2 || entities[0].Len() != 20 {
		t.Fatalf("tracegen output: %d entities", len(entities))
	}
	if !strings.HasPrefix(entities[0].ID, "m_") {
		t.Fatalf("entity ID = %q", entities[0].ID)
	}
}
