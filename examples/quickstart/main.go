// Quickstart: generate a high-dynamic cloud workload, train RPTCN on it
// with the paper's full pipeline (Algorithm 1), and report accuracy plus a
// multi-step forecast.
//
//	go run ./examples/quickstart
//	go run ./examples/quickstart -rundir runs   # also write a JSONL run journal
//	go run ./cmd/runlog runs                    # ...and summarize it later
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/nn"
	"repro/internal/obs/runlog"
	"repro/internal/trace"
	"repro/internal/train"
)

func main() {
	runDir := flag.String("rundir", "", "write a run-artifact journal (JSONL) under this directory")
	flag.Parse()

	// 1. A synthetic container workload standing in for Alibaba trace
	//    v2018: eight correlated performance indicators sampled at 10 s,
	//    with regime shifts and bursts.
	entity := trace.Generate(trace.GeneratorConfig{
		Entities: 1,
		Kind:     trace.Container,
		Samples:  2000,
		Seed:     42,
	})[0]
	fmt.Printf("workload: %s (%d samples, %d indicators)\n",
		entity.ID, entity.Len(), trace.NumIndicators)

	// Optional run journal: an append-only JSONL record of this training
	// run. All runlog calls are nil-safe, so the no-flag path costs nothing.
	var journal *runlog.Run
	if *runDir != "" {
		var err error
		journal, err = runlog.Create(*runDir)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("journal: %s\n", journal.Path())
	}
	journal.Log(runlog.TypeConfig, map[string]any{
		"scenario": core.MulExp.String(), "window": 32, "horizon": 5,
		"epochs": 25, "seed": 1, "entity": entity.ID,
	})

	// 2. An RPTCN predictor in the paper's strongest configuration:
	//    Mul-Exp inputs (PCC-screened indicators, horizontally expanded),
	//    kernel size 3, dilations [1,2,4], FC + attention heads.
	//    A profiler wraps every model stage to break training cost down
	//    per layer.
	prof := nn.NewProfiler()
	hooks := []train.Hook{train.FuncHook{
		EpochEnd: func(s train.EpochStats) {
			fmt.Printf("  epoch %2d  train %.5f  valid %.5f  (%s)\n",
				s.Epoch, s.TrainLoss, s.ValidLoss, s.Duration.Round(time.Millisecond))
		},
		EarlyStop: func(s train.StopInfo) {
			fmt.Printf("  early stop at epoch %d (best epoch %d)\n", s.Epoch, s.BestEpoch)
		},
	}}
	if journal != nil {
		hooks = append(hooks, train.NewJournalHook(journal))
	}
	predictor := core.NewPredictor(core.PredictorConfig{
		Scenario: core.MulExp,
		Window:   32,
		Horizon:  5, // predict cpu_{m+1..m+5}
		Epochs:   25,
		Seed:     1,
		Model: core.Config{
			Channels:   []int{16, 16, 16},
			KernelSize: 3,
			Dilations:  []int{1, 2, 4},
			Dropout:    0.1,
			WeightNorm: true,
			FCWidth:    32,
		},
		// A training hook streams per-epoch progress — the same interface
		// rptcnd uses to feed its /metrics endpoint (see internal/obs).
		Hooks:    hooks,
		Profiler: prof,
	})

	// 3. Fit runs Algorithm 1 end to end: clean → normalize → screen by
	//    Pearson correlation → expand horizontally → window → train with
	//    early stopping (patience 10) on a chronological 6:2:2 split.
	if err := predictor.Fit(entity.Matrix(), int(trace.CPUUtilPercent)); err != nil {
		log.Fatal(err)
	}

	sel := predictor.SelectedIndicators()
	fmt.Print("screened indicators:")
	for _, s := range sel {
		fmt.Printf(" %s", trace.Indicator(s))
	}
	fmt.Println()

	// 4. Held-out accuracy at the normalized scale (the paper's Table II
	//    reports these values ×10⁻²).
	rep, err := predictor.TestMetrics()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("test MSE = %.4f x10^-2   MAE = %.4f x10^-2\n", rep.MSE*100, rep.MAE*100)

	// Per-layer training cost: where the per-epoch budget actually went.
	fmt.Printf("per-layer training cost:\n%s", prof.Table())
	journal.Log(runlog.TypeProfile, train.ProfileData(prof))
	journal.Log(runlog.TypeFinal, map[string]any{
		"test_mse": rep.MSE, "test_mae": rep.MAE,
	})
	if err := journal.Close(); err != nil {
		log.Fatal(err)
	}

	// 5. Forecast the next 5 CPU utilization values on the raw 0–100 scale.
	forecast, err := predictor.Forecast()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print("next 5 CPU utilization steps:")
	for _, v := range forecast {
		fmt.Printf(" %.1f%%", v)
	}
	fmt.Println()
}
