// Multi-resource prediction: the paper's Sec. V-C generalization claim —
// "CPU resource can also be extended to other performance indicators such
// as memory usage and network bandwidth". This example trains one RPTCN
// predictor per resource on the same container and reports accuracy for
// each, demonstrating that the pipeline is target-agnostic.
//
//	go run ./examples/multiresource
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/trace"
)

func main() {
	entity := trace.Generate(trace.GeneratorConfig{
		Entities: 1,
		Kind:     trace.Container,
		Samples:  1800,
		Seed:     21,
	})[0]

	targets := []trace.Indicator{
		trace.CPUUtilPercent,
		trace.MemUtilPercent,
		trace.NetIn,
		trace.DiskIOPercent,
	}

	fmt.Printf("predicting four resources of %s with the same RPTCN pipeline\n\n", entity.ID)
	fmt.Printf("%-18s %14s %14s   %s\n", "target", "MSE (x10^-2)", "MAE (x10^-2)", "screened-with")
	for i, target := range targets {
		p := core.NewPredictor(core.PredictorConfig{
			Scenario: core.MulExp,
			Window:   32,
			Horizon:  1,
			Epochs:   20,
			Seed:     uint64(100 + i),
			Model: core.Config{
				Channels: []int{16, 16, 16}, KernelSize: 3, Dilations: []int{1, 2, 4},
				Dropout: 0.1, WeightNorm: true, FCWidth: 32,
			},
		})
		if err := p.Fit(entity.Matrix(), int(target)); err != nil {
			log.Fatal(err)
		}
		rep, err := p.TestMetrics()
		if err != nil {
			log.Fatal(err)
		}
		var names string
		for j, s := range p.SelectedIndicators() {
			if j > 0 {
				names += ", "
			}
			names += trace.Indicator(s).String()
		}
		fmt.Printf("%-18s %14.4f %14.4f   %s\n", target, rep.MSE*100, rep.MAE*100, names)
	}
}
