// Mutation tracking: the Fig. 8 scenario as a runnable example. A machine
// workload steps up abruptly inside the held-out period; we compare how an
// ARIMA baseline and RPTCN track the new regime, printing an ASCII plot of
// truth vs predictions around the mutation.
//
//	go run ./examples/mutationdetect
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/arima"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/trace"
)

func main() {
	const (
		samples    = 2200
		mutationAt = 2000 // raw index: inside the last 20% (test segment)
	)
	entity := trace.GenerateWithMutation(samples, mutationAt, 11)

	// RPTCN on Mul-Exp inputs.
	p := core.NewPredictor(core.PredictorConfig{
		Scenario: core.MulExp, Window: 32, Horizon: 1, Epochs: 25, Seed: 5,
		Model: core.Config{
			Channels: []int{16, 16, 16}, KernelSize: 3, Dilations: []int{1, 2, 4},
			Dropout: 0.1, WeightNorm: true, FCWidth: 32,
		},
	})
	if err := p.Fit(entity.Matrix(), int(trace.CPUUtilPercent)); err != nil {
		log.Fatal(err)
	}
	truthN, rptcnN, err := p.TestSeries()
	if err != nil {
		log.Fatal(err)
	}
	truth := p.DenormalizeTarget(truthN)
	rptcnPred := p.DenormalizeTarget(rptcnN)

	// ARIMA rolling one-step forecasts over the same period.
	cpu := entity.Series(trace.CPUUtilPercent)
	testLen := len(truth)
	histEnd := len(cpu) - testLen
	am, err := arima.Fit(cpu[:histEnd], arima.Config{P: 2, D: 0, Q: 1})
	if err != nil {
		log.Fatal(err)
	}
	arimaPred := am.RollingForecast(cpu[histEnd:])

	fmt.Printf("workload %s with a step change in the test period\n\n", entity.ID)
	fmt.Printf("%-8s %12s %12s\n", "model", "test MSE", "test MAE")
	for _, row := range []struct {
		name  string
		preds []float64
	}{
		{"arima", arimaPred},
		{"rptcn", rptcnPred},
	} {
		fmt.Printf("%-8s %12.3f %12.3f\n", row.name,
			metrics.MSE(truth, row.preds), metrics.MAE(truth, row.preds))
	}

	// Locate the step in the test segment and plot around it.
	step := locateStep(truth)
	lo, hi := step-12, step+24
	if lo < 0 {
		lo = 0
	}
	if hi > len(truth) {
		hi = len(truth)
	}
	fmt.Printf("\ntruth vs predictions around the mutation (test samples %d..%d):\n", lo, hi-1)
	fmt.Printf("%6s %8s %8s %8s  %s\n", "t", "truth", "arima", "rptcn", "truth bar")
	for t := lo; t < hi; t++ {
		bar := strings.Repeat("#", int(truth[t]/2.5))
		marker := " "
		if t == step {
			marker = "<- step"
		}
		fmt.Printf("%6d %8.1f %8.1f %8.1f  |%-40s %s\n", t, truth[t], arimaPred[t], rptcnPred[t], bar, marker)
	}
}

// locateStep finds the index with the largest jump in a short moving
// average — the mutation point.
func locateStep(xs []float64) int {
	const w = 8
	best, bestAt := 0.0, 0
	for t := w; t+w <= len(xs); t++ {
		var pre, post float64
		for i := t - w; i < t; i++ {
			pre += xs[i]
		}
		for i := t; i < t+w; i++ {
			post += xs[i]
		}
		if d := (post - pre) / w; d > best {
			best, bestAt = d, t
		}
	}
	return bestAt
}
