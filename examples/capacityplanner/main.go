// Capacity planner: the paper's motivating use case. A cluster manager
// must reserve CPU for a workload ahead of time; reserving too much wastes
// resources (the Fig. 2/3 problem — most machines idle below 50%), while
// reserving too little violates the workload's quality of service.
//
// This example drives an allocation loop with five policies over the same
// held-out period and accounts for both kinds of error:
//
//   - static peak: reserve the historical peak forever (what operators do
//     today, producing the low utilization of Fig. 3)
//   - reactive: reserve last observed usage + headroom
//   - moving average and Holt smoothing: classical forecasters + headroom
//   - RPTCN: reserve the model's one-step forecast + headroom
//
// Run with: go run ./examples/capacityplanner
package main

import (
	"fmt"
	"log"

	"repro/internal/alloc"
	"repro/internal/core"
	"repro/internal/naive"
	"repro/internal/trace"
)

func main() {
	const headroom = 5.0 // CPU points added on top of any dynamic estimate

	entity := trace.Generate(trace.GeneratorConfig{
		Entities: 1,
		Kind:     trace.Container,
		Samples:  2200,
		Seed:     7,
	})[0]

	predictor := core.NewPredictor(core.PredictorConfig{
		Scenario: core.MulExp,
		Window:   32,
		Horizon:  1,
		Epochs:   25,
		Seed:     3,
		Model: core.Config{
			Channels: []int{16, 16, 16}, KernelSize: 3, Dilations: []int{1, 2, 4},
			Dropout: 0.1, WeightNorm: true, FCWidth: 32,
		},
	})
	if err := predictor.Fit(entity.Matrix(), int(trace.CPUUtilPercent)); err != nil {
		log.Fatal(err)
	}

	truthN, predsN, err := predictor.TestSeries()
	if err != nil {
		log.Fatal(err)
	}
	demand := predictor.DenormalizeTarget(truthN)
	rptcnForecast := predictor.DenormalizeTarget(predsN)

	// Historical peak over the training prefix (the static policy).
	cpu := entity.Series(trace.CPUUtilPercent)
	peak := 0.0
	for _, v := range cpu[:entity.Len()*6/10] {
		if v > peak {
			peak = v
		}
	}

	ma := &naive.MovingAverage{Window: 6}
	holt := &naive.Holt{Alpha: 0.7, Beta: 0.1}
	history := cpu[:len(cpu)-len(demand)]
	if err := ma.Fit(history); err != nil {
		log.Fatal(err)
	}
	if err := holt.Fit(history); err != nil {
		log.Fatal(err)
	}

	rows, err := alloc.Compare(demand, []alloc.NamedReservation{
		{Name: "static-peak", Reservation: alloc.Static(peak, len(demand))},
		{Name: "reactive", Reservation: alloc.Reactive(demand, headroom, demand[0])},
		{Name: "moving-avg", Reservation: alloc.FromForecaster(ma, demand, headroom)},
		{Name: "holt", Reservation: alloc.FromForecaster(holt, demand, headroom)},
		{Name: "rptcn", Reservation: alloc.FromForecasts(rptcnForecast, headroom)},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("capacity planning over %d test steps (headroom %.0f CPU pts)\n\n", len(demand), headroom)
	fmt.Printf("%-12s %10s %12s %12s %13s %12s\n",
		"policy", "avg alloc", "waste/step", "violations", "deficit/step", "utilization")
	for _, r := range rows {
		fmt.Printf("%-12s %9.1f%% %12.2f %12d %13.3f %11.1f%%\n",
			r.Name, r.AvgReservation, r.WastePerStep, r.Violations, r.DeficitPerStep, r.Utilization*100)
	}
	fmt.Println("\nwaste/step   = reserved-but-unused CPU points (lower is better)")
	fmt.Println("violations   = steps where demand exceeded the reservation")
	fmt.Println("utilization  = served demand / reservation (the Fig. 3 problem is low values here)")
}
