// Fleet model: instead of one predictor per container (expensive to train
// and operate at Alibaba scale), train ONE RPTCN on windows pooled from
// several containers and serve every workload — including containers the
// model never saw — through the frozen serving path.
//
//	go run ./examples/fleetmodel
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/trace"
)

func main() {
	// Six containers: four train the fleet model, two stay unseen.
	fleet := trace.Generate(trace.GeneratorConfig{
		Entities: 6,
		Kind:     trace.Container,
		Samples:  1500,
		Seed:     77,
	})
	trainSet := fleet[:4]
	unseen := fleet[4:]

	entities := make([][][]float64, len(trainSet))
	for i, e := range trainSet {
		entities[i] = e.Matrix()
	}

	p := core.NewPredictor(core.PredictorConfig{
		Scenario: core.MulExp,
		Window:   32,
		Horizon:  1,
		Epochs:   20,
		Seed:     5,
		Model: core.Config{
			Channels: []int{16, 16, 16}, KernelSize: 3, Dilations: []int{1, 2, 4},
			Dropout: 0.1, WeightNorm: true, FCWidth: 32,
		},
	})
	fmt.Printf("training one RPTCN on %d containers (pooled windows)...\n", len(trainSet))
	if err := p.FitFleet(entities, int(trace.CPUUtilPercent)); err != nil {
		log.Fatal(err)
	}
	rep, err := p.TestMetrics()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pooled held-out accuracy: MSE %.4f x10^-2, MAE %.4f x10^-2\n\n", rep.MSE*100, rep.MAE*100)

	// Serve the unseen containers with the frozen model: slide a window
	// over each tail and collect one-step forecasts.
	span := p.Cfg.Window + p.Cfg.ExpandFactor - 1
	fmt.Printf("%-10s %12s %12s   (one-step, raw CPU%% scale)\n", "container", "MSE", "MAE")
	for _, e := range unseen {
		series := e.Matrix()
		n := e.Len()
		var truth, preds []float64
		for t := n * 8 / 10; t < n-1; t++ {
			window := make([][]float64, len(series))
			for i, s := range series {
				window[i] = s[t-span+1 : t+1]
			}
			f, err := p.ForecastFrom(window)
			if err != nil {
				log.Fatal(err)
			}
			preds = append(preds, f[0])
			truth = append(truth, series[int(trace.CPUUtilPercent)][t+1])
		}
		fmt.Printf("%-10s %12.3f %12.3f\n", e.ID, metrics.MSE(truth, preds), metrics.MAE(truth, preds))
	}
	fmt.Println("\nthe unseen containers were never in the training pool —")
	fmt.Println("one fleet model covers them through the shared normalizer and screening")
}
