package trace

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// GeneratorConfig controls the synthetic trace generator.
//
// The generator reproduces the qualitative properties the paper measures
// on the Alibaba v2018 trace:
//
//   - Fig. 1: high-dynamic utilization with no long-run regularity —
//     achieved with a Markov regime process plus bursty spikes.
//   - Fig. 2: mild diurnal periodicity of the fleet mean with wide
//     dispersion — a shared diurnal component with per-entity phase.
//   - Fig. 3: most machines below 50% CPU most of the time — baseline
//     levels drawn from a low-mean distribution.
//   - Fig. 7: cpu, mpki, cpi and mem_gps strongly correlated; the rest
//     weaker — derived indicators couple to CPU with fixed gains plus
//     independent noise.
type GeneratorConfig struct {
	Entities int        // number of machines/containers
	Kind     EntityKind // Machine (smoother, lower mean) or Container (burstier)
	Samples  int        // samples per entity
	Interval int        // seconds between samples (paper: 10)
	Seed     uint64

	// MutationRate is the per-sample probability of a regime shift —
	// the "mutation points" the paper highlights. Defaults per kind.
	MutationRate float64
	// BurstRate is the per-sample probability of a short spike.
	BurstRate float64
	// MissingRate injects NaN samples (network anomalies / interruptions)
	// to exercise the data-cleaning path; 0 disables.
	MissingRate float64
}

func (c *GeneratorConfig) fillDefaults() {
	if c.Entities == 0 {
		c.Entities = 1
	}
	if c.Samples == 0 {
		c.Samples = 2000
	}
	if c.Interval == 0 {
		c.Interval = 10
	}
	if c.MutationRate == 0 {
		if c.Kind == Container {
			c.MutationRate = 0.004
		} else {
			c.MutationRate = 0.002
		}
	}
	if c.BurstRate == 0 {
		if c.Kind == Container {
			c.BurstRate = 0.01
		} else {
			c.BurstRate = 0.004
		}
	}
}

// Generate produces a fleet of synthetic entity series.
func Generate(cfg GeneratorConfig) []*EntitySeries {
	cfg.fillDefaults()
	root := tensor.NewRNG(cfg.Seed)
	out := make([]*EntitySeries, cfg.Entities)
	for i := range out {
		out[i] = generateEntity(cfg, i, root.Split())
	}
	return out
}

// regime is a latent utilization level the entity dwells in.
type regime struct {
	level float64
}

func generateEntity(cfg GeneratorConfig, idx int, rng *tensor.RNG) *EntitySeries {
	e := &EntitySeries{
		ID:       fmt.Sprintf("%c_%d", kindPrefix(cfg.Kind), 10000+idx),
		Kind:     cfg.Kind,
		Interval: cfg.Interval,
	}
	for i := range e.Metrics {
		e.Metrics[i] = make([]float64, cfg.Samples)
	}

	// Entity-specific parameters. Machines skew low (Fig. 3: >80% of
	// machines under 50% CPU); containers are more varied and dynamic.
	var base, diurnalAmp, noiseStd, regimeSpread float64
	if cfg.Kind == Machine {
		base = 18 + 22*rng.Float64() // 18–40%
		diurnalAmp = 4 + 6*rng.Float64()
		noiseStd = 1.2
		regimeSpread = 14
	} else {
		base = 15 + 35*rng.Float64() // 15–50%
		diurnalAmp = 3 + 9*rng.Float64()
		noiseStd = 2.2
		regimeSpread = 22
	}
	phase := 2 * math.Pi * rng.Float64()
	dayPeriod := 86400.0 / float64(cfg.Interval) // samples per day

	reg := regime{level: 0}
	ar := 0.0 // AR(1) noise state
	const arPhi = 0.85

	burstLeft := 0
	burstHeight := 0.0

	// Indicator-specific noise generators (independent streams).
	rMem := rng.Split()
	rNet := rng.Split()
	rDisk := rng.Split()
	rCouple := rng.Split()

	memBase := 35 + 35*rng.Float64() // memory util runs higher and smoother
	memDrift := 0.0

	for t := 0; t < cfg.Samples; t++ {
		// Regime shifts create the abrupt mutation points of Fig. 1/8.
		if rng.Float64() < cfg.MutationRate {
			reg.level = regimeSpread * (2*rng.Float64() - 1)
		}
		// Short bursts (co-location interference).
		if burstLeft == 0 && rng.Float64() < cfg.BurstRate {
			burstLeft = 3 + rng.Intn(12)
			burstHeight = 8 + 25*rng.Float64()
		}
		burst := 0.0
		if burstLeft > 0 {
			burst = burstHeight
			burstLeft--
		}

		diurnal := diurnalAmp * math.Sin(2*math.Pi*float64(t)/dayPeriod+phase)
		ar = arPhi*ar + noiseStd*rng.NormFloat64()

		cpu := clamp(base+diurnal+reg.level+burst+ar, 0.5, 100)
		e.Metrics[CPUUtilPercent][t] = cpu

		// cpuN in [0,1] drives the coupled microarchitectural indicators.
		cpuN := cpu / 100

		// MPKI rises with utilization (cache pressure); strong coupling.
		e.Metrics[MPKI][t] = clamp(0.5+9*cpuN+0.35*rCouple.NormFloat64(), 0, 20)
		// CPI rises with contention; strong coupling.
		e.Metrics[CPI][t] = clamp(0.8+1.6*cpuN+0.08*rCouple.NormFloat64(), 0.4, 4)
		// Memory bandwidth follows CPU activity; strong coupling.
		e.Metrics[MemGPS][t] = clamp(0.05+0.8*cpuN+0.04*rCouple.NormFloat64(), 0, 1)

		// Memory utilization: slow random walk, weak coupling to CPU.
		memDrift = 0.995*memDrift + 0.25*rMem.NormFloat64()
		e.Metrics[MemUtilPercent][t] = clamp(memBase+memDrift+6*cpuN, 1, 100)

		// Network: moderate coupling plus own bursts.
		netNoise := 0.07 * rNet.NormFloat64()
		e.Metrics[NetIn][t] = clamp(0.1+0.35*cpuN+netNoise, 0, 1)
		e.Metrics[NetOut][t] = clamp(0.08+0.3*cpuN+0.07*rNet.NormFloat64(), 0, 1)

		// Disk I/O: weak coupling, occasionally saturating.
		e.Metrics[DiskIOPercent][t] = clamp(5+20*cpuN+8*rDisk.NormFloat64(), 0, 100)

		if cfg.MissingRate > 0 && rng.Float64() < cfg.MissingRate {
			for i := range e.Metrics {
				e.Metrics[i][t] = math.NaN()
			}
		}
	}
	return e
}

func kindPrefix(k EntityKind) byte {
	if k == Machine {
		return 'm'
	}
	return 'c'
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// GenerateWithMutation produces a single entity whose CPU series contains
// one large deterministic step change at sample mutationAt — the Fig. 8
// scenario ("CPU utilization increases abruptly after the 350th sampling
// point, then maintains a high utilization").
func GenerateWithMutation(samples, mutationAt int, seed uint64) *EntitySeries {
	return GenerateWithMutations(samples, []int{mutationAt}, seed)
}

// GenerateWithMutations produces a single entity with deterministic
// regime toggles at the given sample points (strictly increasing): each
// point flips a +35-CPU-point offset on or off, so consecutive points
// yield a high segment followed by a return to baseline — the ground
// truth for detector validation (the segments between points are
// stationary apart from the generator's own mild dynamics). Points at
// or past the ends are ignored.
func GenerateWithMutations(samples int, at []int, seed uint64) *EntitySeries {
	cfg := GeneratorConfig{
		Entities: 1, Kind: Machine, Samples: samples, Seed: seed,
		MutationRate: 0.0001, BurstRate: 0.002,
	}
	e := Generate(cfg)[0]
	// Superimpose the steps: +35 CPU points while the offset is on, with
	// the coupled indicators following through the generator's own gains.
	offset := false
	next := 0
	for t := 0; t < samples; t++ {
		for next < len(at) && at[next] == t {
			if at[next] > 0 {
				offset = !offset
			}
			next++
		}
		if !offset {
			continue
		}
		cpu := clamp(e.Metrics[CPUUtilPercent][t]+35, 0.5, 100)
		delta := (cpu - e.Metrics[CPUUtilPercent][t]) / 100
		e.Metrics[CPUUtilPercent][t] = cpu
		e.Metrics[MPKI][t] = clamp(e.Metrics[MPKI][t]+9*delta, 0, 20)
		e.Metrics[CPI][t] = clamp(e.Metrics[CPI][t]+1.6*delta, 0.4, 4)
		e.Metrics[MemGPS][t] = clamp(e.Metrics[MemGPS][t]+0.8*delta, 0, 1)
	}
	return e
}
