package trace

import (
	"sync"
	"testing"
)

func ringVals(base float64) *[NumIndicators]float64 {
	var v [NumIndicators]float64
	for i := range v {
		v[i] = base + float64(i)/10
	}
	return &v
}

// TestRingWindowContiguity fills a ring past wraparound and checks every
// trailing window is the correct, oldest-first view at every fill level.
func TestRingWindowContiguity(t *testing.T) {
	const capacity = 4
	r := NewRing(capacity)
	for s := 1; s <= 11; s++ {
		if !r.Append(s*10, ringVals(float64(s))) {
			t.Fatalf("append %d rejected", s)
		}
		held := s
		if held > capacity {
			held = capacity
		}
		if r.Len() != held {
			t.Fatalf("after %d appends Len = %d, want %d", s, r.Len(), held)
		}
		for n := 1; n <= held; n++ {
			win := r.Window(n)
			if len(win) != NumIndicators {
				t.Fatalf("window has %d series", len(win))
			}
			for i := 0; i < NumIndicators; i++ {
				if len(win[i]) != n {
					t.Fatalf("window(%d) series %d has %d samples", n, i, len(win[i]))
				}
				for j := 0; j < n; j++ {
					want := float64(s-n+1+j) + float64(i)/10
					if win[i][j] != want {
						t.Fatalf("after %d appends window(%d)[%d][%d] = %g, want %g",
							s, n, i, j, win[i][j], want)
					}
				}
			}
		}
	}
	// Requests beyond what the ring holds clamp to Len.
	if got := r.Window(99); len(got[0]) != capacity {
		t.Fatalf("oversized window has %d samples, want %d", len(got[0]), capacity)
	}
}

// TestRingRejectsNonAdvancingTimestamps pins the streaming replacement
// for the batch loader's sort-and-dedup pass.
func TestRingRejectsNonAdvancingTimestamps(t *testing.T) {
	r := NewRing(8)
	if !r.Append(10, ringVals(1)) {
		t.Fatal("first append rejected")
	}
	if r.Append(10, ringVals(2)) {
		t.Fatal("duplicate timestamp accepted")
	}
	if r.Append(5, ringVals(3)) {
		t.Fatal("regressing timestamp accepted")
	}
	if !r.Append(20, ringVals(4)) {
		t.Fatal("advancing append rejected")
	}
	if r.Len() != 2 || r.LastTS() != 20 {
		t.Fatalf("len=%d lastTS=%d", r.Len(), r.LastTS())
	}
	if got := r.Window(2); got[0][0] != 1 || got[0][1] != 4 {
		t.Fatalf("window = %v: rejected samples leaked in", got[0])
	}
}

// TestRingInterval checks interval estimation over the accepted span.
func TestRingInterval(t *testing.T) {
	r := NewRing(4)
	if r.Interval() != 10 {
		t.Fatalf("default interval = %d, want 10", r.Interval())
	}
	r.Append(0, ringVals(1))
	r.Append(30, ringVals(2))
	r.Append(60, ringVals(3))
	if r.Interval() != 30 {
		t.Fatalf("interval = %d, want 30", r.Interval())
	}
}

// TestRingStoreIngestAndWindow drives the store through the ScanCSV
// callback shape and reads windows back.
func TestRingStoreIngestAndWindow(t *testing.T) {
	s := NewRingStore(4)
	for i := 1; i <= 6; i++ {
		if !s.Ingest([]byte("m_1"), i*10, ringVals(float64(i))) {
			t.Fatalf("ingest %d rejected", i)
		}
	}
	s.IngestString("m_2", 10, ringVals(100))
	if s.Len() != 2 {
		t.Fatalf("entities = %d", s.Len())
	}
	if ids := s.Entities(); len(ids) != 2 || ids[0] != "m_1" || ids[1] != "m_2" {
		t.Fatalf("order = %v", ids)
	}
	ok := s.WithWindow("m_1", 3, func(win [][]float64, interval, lastTS int) {
		if lastTS != 60 || interval != 10 {
			t.Fatalf("lastTS=%d interval=%d", lastTS, interval)
		}
		if win[0][0] != 4 || win[0][1] != 5 || win[0][2] != 6 {
			t.Fatalf("window = %v", win[0])
		}
	})
	if !ok {
		t.Fatal("known entity reported missing")
	}
	if s.WithWindow("nope", 3, func([][]float64, int, int) {}) {
		t.Fatal("unknown entity reported present")
	}
	if s.SampleCount("m_1") != 4 || s.SampleCount("nope") != 0 {
		t.Fatalf("sample counts: %d, %d", s.SampleCount("m_1"), s.SampleCount("nope"))
	}
}

// TestRingStoreConcurrentIngest hammers the store from many goroutines
// (run under -race in CI) and checks per-entity integrity after.
func TestRingStoreConcurrentIngest(t *testing.T) {
	const writers, samples = 8, 200
	s := NewRingStore(64)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id := []byte{'m', '_', byte('a' + w)}
			for i := 1; i <= samples; i++ {
				s.Ingest(id, i, ringVals(float64(i)))
			}
		}(w)
	}
	wg.Wait()
	if s.Len() != writers {
		t.Fatalf("entities = %d, want %d", s.Len(), writers)
	}
	for _, id := range s.Entities() {
		s.WithWindow(id, 64, func(win [][]float64, _, lastTS int) {
			if lastTS != samples || len(win[0]) != 64 {
				t.Fatalf("%s: lastTS=%d len=%d", id, lastTS, len(win[0]))
			}
			for j, v := range win[0] {
				if want := float64(samples - 64 + 1 + j); v != want {
					t.Fatalf("%s: window[%d] = %g, want %g", id, j, v, want)
				}
			}
		})
	}
}

// TestRingStoreLRUEviction: a bounded store evicts the least recently
// touched entity (reads count as touches) when a new one arrives past
// the cap, and counts every eviction.
func TestRingStoreLRUEviction(t *testing.T) {
	s := NewBoundedRingStore(8, 3)
	for i, id := range []string{"m_a", "m_b", "m_c"} {
		s.IngestString(id, 10+i, ringVals(float64(i)))
	}
	// Touch m_a (oldest write) via a read: m_b becomes the LRU.
	if !s.WithWindow("m_a", 1, func([][]float64, int, int) {}) {
		t.Fatal("m_a missing before eviction")
	}
	s.IngestString("m_d", 40, ringVals(4))
	if s.Len() != 3 {
		t.Fatalf("entities = %d, want 3 (cap)", s.Len())
	}
	if s.WithWindow("m_b", 1, func([][]float64, int, int) {}) {
		t.Fatal("LRU entity m_b survived past the cap")
	}
	for _, id := range []string{"m_a", "m_c", "m_d"} {
		if !s.WithWindow(id, 1, func([][]float64, int, int) {}) {
			t.Fatalf("%s evicted, want m_b", id)
		}
	}
	if ids := s.Entities(); len(ids) != 3 || ids[0] != "m_a" || ids[1] != "m_c" || ids[2] != "m_d" {
		t.Fatalf("order after eviction = %v", ids)
	}
	if s.Evicted() != 1 {
		t.Fatalf("evicted = %d, want 1", s.Evicted())
	}
	// A re-appearing evicted entity gets a fresh ring and evicts again.
	s.IngestString("m_b", 99, ringVals(9))
	if s.Evicted() != 2 || s.Len() != 3 {
		t.Fatalf("after churn: evicted=%d len=%d", s.Evicted(), s.Len())
	}
	if s.SampleCount("m_b") != 1 {
		t.Fatalf("re-created entity has %d samples, want fresh ring with 1", s.SampleCount("m_b"))
	}
}

// TestRingStoreIngestZeroAlloc pins the hot-path claim: a sample for an
// already-known entity allocates nothing.
func TestRingStoreIngestZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation defeats escape analysis; allocation counts are meaningless")
	}
	s := NewRingStore(32)
	id := []byte("m_hot")
	vals := ringVals(1)
	ts := 0
	s.Ingest(id, ts, vals)
	allocs := testing.AllocsPerRun(1000, func() {
		ts++
		s.Ingest(id, ts, vals)
	})
	if allocs != 0 {
		t.Fatalf("hot-path ingest allocates %.2f per sample, want 0", allocs)
	}
}
