package trace

import (
	"sync"
	"sync/atomic"
)

// Ring is a fixed-capacity sliding sample buffer for one entity, built
// for the streaming ingestion path: ScanCSV (or an ingest endpoint)
// appends samples as they arrive, and the serving layer reads the
// trailing window straight out of the buffer with no copy.
//
// Storage is mirrored: each indicator's backing slice is twice the
// capacity and every append writes the sample at position i and i+cap.
// Any trailing window of up to cap samples is therefore one contiguous
// slice per indicator, so Window returns views, never copies.
//
// Ring is not synchronized; RingStore serializes access per entity.
type Ring struct {
	capacity int
	count    int // total accepted samples, monotonic
	firstTS  int
	lastTS   int
	data     [NumIndicators][]float64 // mirrored, len 2*capacity
	views    [][]float64              // reused Window return value
}

// NewRing creates a ring holding the most recent capacity samples.
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		panic("trace: ring capacity must be positive")
	}
	r := &Ring{capacity: capacity, views: make([][]float64, NumIndicators)}
	for i := range r.data {
		r.data[i] = make([]float64, 2*capacity)
	}
	return r
}

// Append adds one sample. Timestamps must strictly advance: a sample at
// or before the newest accepted one is rejected (returns false) —
// streaming replaces the batch loader's sort-and-dedup pass with this
// monotonicity gate.
func (r *Ring) Append(ts int, vals *[NumIndicators]float64) bool {
	if r.count > 0 && ts <= r.lastTS {
		return false
	}
	pos := r.count % r.capacity
	for i := 0; i < NumIndicators; i++ {
		r.data[i][pos] = vals[i]
		r.data[i][pos+r.capacity] = vals[i]
	}
	if r.count == 0 {
		r.firstTS = ts
	}
	r.lastTS = ts
	r.count++
	return true
}

// Len returns the number of samples currently held (≤ capacity).
func (r *Ring) Len() int {
	if r.count < r.capacity {
		return r.count
	}
	return r.capacity
}

// Cap returns the ring capacity.
func (r *Ring) Cap() int { return r.capacity }

// Total returns the number of samples ever accepted.
func (r *Ring) Total() int { return r.count }

// LastTS returns the newest accepted timestamp (meaningless before the
// first Append).
func (r *Ring) LastTS() int { return r.lastTS }

// Interval estimates the sampling interval from the accepted span,
// defaulting to 10s before two samples arrive (matching inferInterval).
func (r *Ring) Interval() int {
	if r.count < 2 {
		return 10
	}
	d := (r.lastTS - r.firstTS) / (r.count - 1)
	if d <= 0 {
		return 10
	}
	return d
}

// Window returns per-indicator views of the most recent n samples in
// canonical indicator order, oldest first. n is clamped to Len. The
// returned slice-of-slices is reused across calls and the views alias
// the ring's storage: both are valid only until the next Append or
// Window on this ring.
func (r *Ring) Window(n int) [][]float64 {
	if n > r.Len() {
		n = r.Len()
	}
	end := (r.count-1)%r.capacity + r.capacity + 1
	for i := range r.views {
		r.views[i] = r.data[i][end-n : end]
	}
	return r.views
}

// RingSource is the read surface consumers of ring history need —
// recent windows, entity enumeration, sample counts — without caring
// how the rings are laid out. *RingStore implements it directly; the
// sharded fleet router (internal/shard.Router) implements it by
// delegating to its per-shard stores, so consumers like the adaptation
// supervisor work unchanged whether serving is sharded or not.
type RingSource interface {
	// WithWindow runs fn with zero-copy views of the entity's most
	// recent n samples; see RingStore.WithWindow for the aliasing rules.
	WithWindow(entity string, n int, fn func(win [][]float64, interval, lastTS int)) bool
	// Entities returns the known entity IDs (a copy, safe to retain).
	Entities() []string
	// SampleCount returns how many samples the entity currently holds.
	SampleCount(entity string) int
}

// RingStore holds one Ring per entity and is the bridge between
// streaming ingestion and serving: ScanCSV's callback feeds Ingest, and
// the forecaster reads windows via WithWindow. It is safe for concurrent
// use.
type RingStore struct {
	mu          sync.RWMutex
	capacity    int
	maxEntities int // 0 = unbounded
	rings       map[string]*ringEntry
	order       []string

	// seq is a store-wide logical clock; every touch (ingest or window
	// read) stamps the entity with seq's next value, so the entity with
	// the smallest stamp is the least recently used. Atomics keep the
	// hot path allocation-free and outside the store lock.
	seq     atomic.Uint64
	evicted atomic.Uint64
}

type ringEntry struct {
	mu    sync.Mutex
	ring  *Ring
	touch atomic.Uint64 // last store-wide seq this entity was used at
}

// NewRingStore creates a store whose rings hold capacity samples each,
// with no bound on the number of entities.
func NewRingStore(capacity int) *RingStore {
	return NewBoundedRingStore(capacity, 0)
}

// NewBoundedRingStore creates a store holding at most maxEntities
// entities (0 = unbounded). When a new entity would exceed the cap, the
// least recently used entity — the one whose ring was neither written
// nor read for the longest — is evicted, so adversarial entity churn
// cannot grow memory without bound. Evictions are counted (Evicted).
func NewBoundedRingStore(capacity, maxEntities int) *RingStore {
	if capacity <= 0 {
		panic("trace: ring capacity must be positive")
	}
	return &RingStore{capacity: capacity, maxEntities: maxEntities, rings: map[string]*ringEntry{}}
}

// Ingest routes one sample to its entity's ring, creating the ring on
// first sight. The entity key is a byte view (as handed out by ScanCSV);
// the hot path — a sample for an already-known entity — allocates
// nothing: the map lookup uses the compiler's string([]byte) key
// optimization and the ID string is materialized only on first sight.
// Returns false when the ring rejected the sample (non-advancing
// timestamp).
func (s *RingStore) Ingest(entity []byte, ts int, vals *[NumIndicators]float64) bool {
	s.mu.RLock()
	e := s.rings[string(entity)]
	s.mu.RUnlock()
	if e == nil {
		e = s.create(string(entity))
	}
	e.touch.Store(s.seq.Add(1))
	e.mu.Lock()
	ok := e.ring.Append(ts, vals)
	e.mu.Unlock()
	return ok
}

// IngestString is Ingest for callers that already hold the ID as a
// string (e.g. a JSON ingest endpoint).
func (s *RingStore) IngestString(entity string, ts int, vals *[NumIndicators]float64) bool {
	s.mu.RLock()
	e := s.rings[entity]
	s.mu.RUnlock()
	if e == nil {
		e = s.create(entity)
	}
	e.touch.Store(s.seq.Add(1))
	e.mu.Lock()
	ok := e.ring.Append(ts, vals)
	e.mu.Unlock()
	return ok
}

func (s *RingStore) create(id string) *ringEntry {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e := s.rings[id]; e != nil {
		return e
	}
	if s.maxEntities > 0 && len(s.rings) >= s.maxEntities {
		s.evictOldestLocked()
	}
	e := &ringEntry{ring: NewRing(s.capacity)}
	s.rings[id] = e
	s.order = append(s.order, id)
	return e
}

// evictOldestLocked drops the least recently touched entity. The linear
// scan is fine: it only runs on entity creation past the cap, never on
// the per-sample hot path. Callers already using the victim's entry via
// a prior lookup keep a valid (now orphaned) ring; it is simply no
// longer reachable.
func (s *RingStore) evictOldestLocked() {
	victim := ""
	var oldest uint64
	for id, e := range s.rings {
		if t := e.touch.Load(); victim == "" || t < oldest {
			victim, oldest = id, t
		}
	}
	if victim == "" {
		return
	}
	delete(s.rings, victim)
	for i, id := range s.order {
		if id == victim {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	s.evicted.Add(1)
}

// Evicted returns how many entities have been LRU-evicted so far.
func (s *RingStore) Evicted() uint64 { return s.evicted.Load() }

// Entities returns the entity IDs in first-seen order (copy).
func (s *RingStore) Entities() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, len(s.order))
	copy(out, s.order)
	return out
}

// Len returns the number of entities with at least one sample.
func (s *RingStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.rings)
}

// WithWindow runs fn with zero-copy views of the entity's most recent n
// samples (clamped to what the ring holds), holding the entity's lock so
// concurrent Ingest calls cannot mutate the window mid-read. fn must not
// retain the views. Returns false if the entity is unknown.
func (s *RingStore) WithWindow(entity string, n int, fn func(win [][]float64, interval, lastTS int)) bool {
	s.mu.RLock()
	e := s.rings[entity]
	s.mu.RUnlock()
	if e == nil {
		return false
	}
	e.touch.Store(s.seq.Add(1))
	e.mu.Lock()
	fn(e.ring.Window(n), e.ring.Interval(), e.ring.LastTS())
	e.mu.Unlock()
	return true
}

// SampleCount returns how many samples the entity's ring currently
// holds, or 0 for an unknown entity.
func (s *RingStore) SampleCount(entity string) int {
	s.mu.RLock()
	e := s.rings[entity]
	s.mu.RUnlock()
	if e == nil {
		return 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.ring.Len()
}
