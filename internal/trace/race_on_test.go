//go:build race

package trace

// raceEnabled reports whether the race detector is active; its
// instrumentation defeats escape analysis, so allocation-count
// assertions are skipped under -race.
const raceEnabled = true
