package trace

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"strconv"
	"sync"
	"unsafe"

	"repro/internal/obs"
)

// numCSVFields is the fixed v2018 column count (entity, timestamp, and
// the eight indicators).
const numCSVFields = 2 + NumIndicators

// ScanCSV is the zero-copy streaming counterpart of ReadCSVStats: it
// parses a v2018-style usage CSV and hands each usable row to fn without
// materializing per-sample strings, records, or entity maps. The entity
// ID is passed as a byte slice into the scanner's internal buffer and is
// valid only for the duration of the callback — callers that need to
// retain it must copy (RingStore.Ingest does the map-lookup trick that
// avoids the copy for already-known entities).
//
// Salvage semantics match ReadCSVStats: ragged rows, unparsable
// timestamps or values, and malformed quoting are skipped (counted in
// ReadStats, first few logged) rather than aborting; empty fields become
// NaN; an error is returned only when the input held rows but none were
// usable. The one semantic difference is ordering: ScanCSV streams rows
// in file order and performs no per-entity sort or duplicate-timestamp
// drop — that responsibility moves to the consumer (Ring.Append rejects
// non-advancing timestamps).
//
// A non-nil error from fn aborts the scan and is returned verbatim.
//
// Quoting support is the minimal subset WriteCSV can emit plus simple
// externally-quoted fields: a field that begins with '"' must end with
// '"' and contain no interior quotes or commas, else the row is skipped.
func ScanCSV(r io.Reader, fn func(entity []byte, ts int, vals *[NumIndicators]float64) error) (ReadStats, error) {
	var st ReadStats
	sc := scannerPool.Get().(*lineScanner)
	sc.reset(r)
	defer scannerPool.Put(sc)

	var vals [NumIndicators]float64
	var fields [numCSVFields][]byte
	line := 0
	for {
		ln, err := sc.next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return st, fmt.Errorf("trace: reading csv: %w", err)
		}
		line++
		if len(ln) == 0 {
			continue
		}
		if line == 1 && bytes.HasPrefix(ln, []byte(csvHeader[0])) {
			continue // header row
		}
		n, wellFormed := splitComma(ln, &fields)
		if !wellFormed {
			st.skip(fmt.Errorf("trace: line %d: malformed quoting", line))
			continue
		}
		if n != len(csvHeader) {
			st.skip(fmt.Errorf("trace: line %d: %d fields, want %d", line, n, len(csvHeader)))
			continue
		}
		ts, err := strconv.Atoi(bstr(fields[1]))
		if err != nil {
			st.skip(fmt.Errorf("trace: line %d: bad timestamp %q", line, fields[1]))
			continue
		}
		ok := true
		for ci, ind := range csvIndicatorOrder {
			f := fields[2+ci]
			if len(f) == 0 {
				vals[ind] = math.NaN()
				continue
			}
			v, err := strconv.ParseFloat(bstr(f), 64)
			if err != nil {
				st.skip(fmt.Errorf("trace: line %d: bad value %q", line, f))
				ok = false
				break
			}
			vals[ind] = v
		}
		if !ok {
			continue
		}
		if err := fn(fields[0], ts, &vals); err != nil {
			return st, err
		}
		st.Rows++
	}
	if st.Skipped > 0 {
		obs.Logger("trace").Warn("csv scan skipped unusable rows",
			"skipped", st.Skipped, "kept", st.Rows)
	}
	if st.Rows == 0 && st.Skipped > 0 {
		return st, fmt.Errorf("trace: no usable rows (%d skipped, first: %w)",
			st.Skipped, st.Errors[0])
	}
	return st, nil
}

// bstr views a byte slice as a string without copying, for the strconv
// parsers (which never retain their argument).
func bstr(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(&b[0], len(b))
}

// splitComma splits ln on commas into fields, unwrapping simple external
// quotes. Returns the field count and whether every field was well
// formed; a field with unbalanced or interior quotes (including a quoted
// comma) reports false and the caller skips the row.
func splitComma(ln []byte, fields *[numCSVFields][]byte) (int, bool) {
	n := 0
	for {
		if n == len(fields) {
			return n + 1, true // too many fields; caller rejects on count
		}
		var f []byte
		if i := bytes.IndexByte(ln, ','); i >= 0 {
			f, ln = ln[:i], ln[i+1:]
		} else {
			f, ln = ln, nil
		}
		if len(f) > 0 && f[0] == '"' {
			if len(f) < 2 || f[len(f)-1] != '"' || bytes.IndexByte(f[1:len(f)-1], '"') >= 0 {
				return 0, false
			}
			f = f[1 : len(f)-1]
		}
		fields[n] = f
		n++
		if ln == nil {
			return n, true
		}
	}
}

// lineScanner yields lines from a reader out of one reused buffer. A
// line that fits the buffer is returned as a view into it (no copy, no
// allocation); the buffer grows only when a single line exceeds it.
type lineScanner struct {
	r   io.Reader
	buf []byte
	pos int // start of unconsumed bytes
	end int // end of valid bytes
	err error
}

const scanBufSize = 64 << 10

var scannerPool = sync.Pool{
	New: func() any { return &lineScanner{buf: make([]byte, scanBufSize)} },
}

func (s *lineScanner) reset(r io.Reader) {
	s.r = r
	s.pos, s.end = 0, 0
	s.err = nil
}

// next returns the next line with the trailing '\n' (and '\r', if any)
// removed. io.EOF signals a clean end of input.
func (s *lineScanner) next() ([]byte, error) {
	for {
		if i := bytes.IndexByte(s.buf[s.pos:s.end], '\n'); i >= 0 {
			line := s.buf[s.pos : s.pos+i]
			s.pos += i + 1
			return trimCR(line), nil
		}
		if s.err != nil {
			if s.pos < s.end {
				line := s.buf[s.pos:s.end]
				s.pos = s.end
				return trimCR(line), nil
			}
			if s.err == io.EOF {
				return nil, io.EOF
			}
			return nil, s.err
		}
		if s.pos > 0 {
			copy(s.buf, s.buf[s.pos:s.end])
			s.end -= s.pos
			s.pos = 0
		}
		if s.end == len(s.buf) {
			grown := make([]byte, 2*len(s.buf))
			copy(grown, s.buf[:s.end])
			s.buf = grown
		}
		n, err := s.r.Read(s.buf[s.end:])
		s.end += n
		if err != nil {
			s.err = err
		}
	}
}

func trimCR(line []byte) []byte {
	if len(line) > 0 && line[len(line)-1] == '\r' {
		return line[:len(line)-1]
	}
	return line
}
