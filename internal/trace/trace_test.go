package trace

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/stats"
)

func TestIndicatorNames(t *testing.T) {
	if CPUUtilPercent.String() != "cpu_util_percent" {
		t.Fatal("cpu indicator name wrong")
	}
	if Indicator(99).String() != "unknown" {
		t.Fatal("out-of-range indicator should be unknown")
	}
	ind, ok := IndicatorByName("mpki")
	if !ok || ind != MPKI {
		t.Fatal("IndicatorByName failed")
	}
	if _, ok := IndicatorByName("nope"); ok {
		t.Fatal("unknown name should not resolve")
	}
	if len(AllIndicators()) != NumIndicators {
		t.Fatal("AllIndicators length wrong")
	}
}

func TestGenerateShapesAndIDs(t *testing.T) {
	es := Generate(GeneratorConfig{Entities: 3, Kind: Container, Samples: 500, Seed: 1})
	if len(es) != 3 {
		t.Fatalf("entities = %d", len(es))
	}
	for _, e := range es {
		if e.Len() != 500 {
			t.Fatalf("samples = %d", e.Len())
		}
		if e.ID[0] != 'c' {
			t.Fatalf("container ID = %q", e.ID)
		}
		for _, ind := range AllIndicators() {
			if len(e.Series(ind)) != 500 {
				t.Fatal("indicator series length mismatch")
			}
		}
	}
	ms := Generate(GeneratorConfig{Entities: 1, Kind: Machine, Samples: 10, Seed: 2})
	if ms[0].ID[0] != 'm' {
		t.Fatalf("machine ID = %q", ms[0].ID)
	}
}

func TestGenerateValueRanges(t *testing.T) {
	es := Generate(GeneratorConfig{Entities: 4, Kind: Container, Samples: 2000, Seed: 3})
	for _, e := range es {
		for t2 := 0; t2 < e.Len(); t2++ {
			cpu := e.Metrics[CPUUtilPercent][t2]
			if cpu < 0 || cpu > 100 {
				t.Fatalf("cpu out of range: %g", cpu)
			}
			if v := e.Metrics[MemGPS][t2]; v < 0 || v > 1 {
				t.Fatalf("mem_gps out of range: %g", v)
			}
			if v := e.Metrics[NetIn][t2]; v < 0 || v > 1 {
				t.Fatalf("net_in out of range: %g", v)
			}
		}
	}
}

func TestGenerateReproducible(t *testing.T) {
	a := Generate(GeneratorConfig{Entities: 2, Samples: 300, Seed: 7})
	b := Generate(GeneratorConfig{Entities: 2, Samples: 300, Seed: 7})
	for i := range a {
		for ind := 0; ind < NumIndicators; ind++ {
			for t2 := range a[i].Metrics[ind] {
				if a[i].Metrics[ind][t2] != b[i].Metrics[ind][t2] {
					t.Fatal("same seed must reproduce the trace")
				}
			}
		}
	}
	c := Generate(GeneratorConfig{Entities: 2, Samples: 300, Seed: 8})
	if c[0].Metrics[CPUUtilPercent][10] == a[0].Metrics[CPUUtilPercent][10] &&
		c[0].Metrics[CPUUtilPercent][20] == a[0].Metrics[CPUUtilPercent][20] {
		t.Fatal("different seeds produced identical traces")
	}
}

// The correlation structure must match Fig. 7: cpu–mpki, cpu–cpi and
// cpu–mem_gps strongly correlated; cpu–mem_util weak.
func TestGenerateCorrelationStructure(t *testing.T) {
	e := Generate(GeneratorConfig{Entities: 1, Kind: Container, Samples: 5000, Seed: 4})[0]
	cpu := e.Series(CPUUtilPercent)
	strong := []Indicator{MPKI, CPI, MemGPS}
	for _, ind := range strong {
		if r := stats.Pearson(cpu, e.Series(ind)); r < 0.8 {
			t.Fatalf("corr(cpu, %s) = %g, want strong (>0.8)", ind, r)
		}
	}
	weak := stats.Pearson(cpu, e.Series(MemUtilPercent))
	for _, ind := range strong {
		if r := stats.Pearson(cpu, e.Series(ind)); r <= weak {
			t.Fatalf("corr(cpu, %s)=%g should exceed corr(cpu, mem_util)=%g", ind, r, weak)
		}
	}
}

// Fig. 3 property: the majority of machines stay below 50% CPU.
func TestGenerateMachineFleetMostlyUnderHalf(t *testing.T) {
	es := Generate(GeneratorConfig{Entities: 50, Kind: Machine, Samples: 1000, Seed: 5})
	under := 0
	for _, e := range es {
		if stats.Mean(e.Series(CPUUtilPercent)) < 50 {
			under++
		}
	}
	if frac := float64(under) / 50; frac < 0.8 {
		t.Fatalf("only %.0f%% of machines under 50%% CPU, want >= 80%%", frac*100)
	}
}

// High-dynamics property (Fig. 1): the CPU series must contain substantial
// level shifts, not just stationary noise.
func TestGenerateContainsMutations(t *testing.T) {
	e := Generate(GeneratorConfig{Entities: 1, Kind: Container, Samples: 8000, Seed: 6})[0]
	cpu := e.Series(CPUUtilPercent)
	// Compare means across windows: at least one pair of windows must
	// differ by more than 8 CPU points.
	const win = 500
	var means []float64
	for lo := 0; lo+win <= len(cpu); lo += win {
		means = append(means, stats.Mean(cpu[lo:lo+win]))
	}
	lo, hi := means[0], means[0]
	for _, m := range means {
		lo = math.Min(lo, m)
		hi = math.Max(hi, m)
	}
	if hi-lo < 8 {
		t.Fatalf("window means spread %g, want > 8 (no regime shifts?)", hi-lo)
	}
}

func TestGenerateWithMutationStepChange(t *testing.T) {
	e := GenerateWithMutation(700, 350, 9)
	cpu := e.Series(CPUUtilPercent)
	before := stats.Mean(cpu[250:350])
	after := stats.Mean(cpu[350:450])
	if after-before < 20 {
		t.Fatalf("mutation step = %g, want >= 20", after-before)
	}
	// Out-of-range mutation index must be a no-op.
	e2 := GenerateWithMutation(100, 500, 9)
	if e2.Len() != 100 {
		t.Fatal("out-of-range mutation broke generation")
	}
}

func TestGenerateWithMutationsToggles(t *testing.T) {
	// Two points: offset on at 300, back off at 600.
	e := GenerateWithMutations(900, []int{300, 600}, 9)
	cpu := e.Series(CPUUtilPercent)
	before := stats.Mean(cpu[200:300])
	during := stats.Mean(cpu[300:600])
	after := stats.Mean(cpu[650:750])
	if during-before < 20 {
		t.Fatalf("step up = %g, want >= 20", during-before)
	}
	if during-after < 20 {
		t.Fatalf("step down = %g, want >= 20", during-after)
	}
	// A single point must reproduce GenerateWithMutation exactly.
	a := GenerateWithMutation(700, 350, 9)
	b := GenerateWithMutations(700, []int{350}, 9)
	for i, v := range a.Series(CPUUtilPercent) {
		if b.Series(CPUUtilPercent)[i] != v {
			t.Fatalf("sample %d: %g != %g", i, b.Series(CPUUtilPercent)[i], v)
		}
	}
}

func TestMissingRateInjectsNaN(t *testing.T) {
	e := Generate(GeneratorConfig{Entities: 1, Samples: 2000, Seed: 10, MissingRate: 0.05})[0]
	nan := 0
	for _, v := range e.Series(CPUUtilPercent) {
		if math.IsNaN(v) {
			nan++
		}
	}
	if nan == 0 {
		t.Fatal("MissingRate produced no NaN samples")
	}
	if frac := float64(nan) / 2000; frac > 0.15 {
		t.Fatalf("NaN fraction %g too high for rate 0.05", frac)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	es := Generate(GeneratorConfig{Entities: 2, Kind: Container, Samples: 50, Seed: 11, MissingRate: 0.05})
	var buf bytes.Buffer
	if err := WriteCSV(&buf, es); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, Container)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 {
		t.Fatalf("round trip entities = %d", len(back))
	}
	for i, e := range back {
		if e.ID != es[i].ID || e.Len() != es[i].Len() || e.Interval != es[i].Interval {
			t.Fatalf("entity metadata mismatch: %+v", e)
		}
		for ind := 0; ind < NumIndicators; ind++ {
			for t2 := range e.Metrics[ind] {
				a, b := es[i].Metrics[ind][t2], e.Metrics[ind][t2]
				if math.IsNaN(a) != math.IsNaN(b) {
					t.Fatal("NaN round trip failed")
				}
				if !math.IsNaN(a) && a != b {
					t.Fatalf("value round trip failed: %g vs %g", a, b)
				}
			}
		}
	}
}

func TestReadCSVRejectsGarbage(t *testing.T) {
	if _, err := ReadCSV(bytes.NewBufferString("a,b\n"), Machine); err == nil {
		t.Fatal("expected error for wrong column count")
	}
	bad := "m_1,notanumber,1,2,3,4,5,6,7,8\n"
	if _, err := ReadCSV(bytes.NewBufferString(bad), Machine); err == nil {
		t.Fatal("expected error for bad timestamp")
	}
	bad2 := "m_1,0,xx,2,3,4,5,6,7,8\n"
	if _, err := ReadCSV(bytes.NewBufferString(bad2), Machine); err == nil {
		t.Fatal("expected error for bad value")
	}
}

func TestReadCSVEmpty(t *testing.T) {
	es, err := ReadCSV(bytes.NewBufferString(""), Machine)
	if err != nil || es != nil {
		t.Fatalf("empty csv: %v %v", es, err)
	}
}

func TestReadCSVSortsOutOfOrderRows(t *testing.T) {
	csvText := "m_1,20,3,2,1,0.5,4,0.1,0.1,10\n" +
		"m_1,0,1,2,1,0.5,4,0.1,0.1,10\n" +
		"m_1,10,2,2,1,0.5,4,0.1,0.1,10\n"
	es, err := ReadCSV(bytes.NewBufferString(csvText), Machine)
	if err != nil {
		t.Fatal(err)
	}
	cpu := es[0].Series(CPUUtilPercent)
	if cpu[0] != 1 || cpu[1] != 2 || cpu[2] != 3 {
		t.Fatalf("rows not sorted by timestamp: %v", cpu)
	}
	if es[0].Interval != 10 {
		t.Fatalf("inferred interval = %d", es[0].Interval)
	}
}
