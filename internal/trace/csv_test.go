package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// corruptedFixture is a deliberately dirty v2018-style CSV: good rows
// interleaved with every corruption class the lenient loader must
// survive — ragged rows, non-numeric timestamps and values, a stray
// quote, a duplicate timestamp, and out-of-order rows.
const corruptedFixture = `entity_id,time_stamp,cpu_util_percent,mem_util_percent,cpi,mem_gps,mpki,net_in,net_out,disk_io_percent
m_1,20,3,30,1,0.5,4,0.1,0.1,10
m_1,0,1,10,1,0.5,4,0.1,0.1,10
m_1,0,99,99,9,9.9,9,9.9,9.9,99
m_1,truncated
m_1,notanumber,5,50,1,0.5,4,0.1,0.1,10
m_1,30,null,40,1,0.5,4,0.1,0.1,10
m_1,10,2,,1,0.5,4,0.1,0.1,10
m_2,10,8,80,1,0.5,4,0.1,0.1,10
m_2,0,7,70,1,"unterminated,4,0.1,0.1,10
`

func TestReadCSVSalvagesCorruptedFixture(t *testing.T) {
	es, st, err := ReadCSVStats(strings.NewReader(corruptedFixture), Machine)
	if err != nil {
		t.Fatalf("lenient load aborted: %v", err)
	}
	// Salvageable: m_1 @ 0, 10, 20 and m_2 @ 10. Dropped: the ragged row,
	// the bad timestamp, the "null" value, the unterminated-quote row
	// (which swallows the rest of its record), and the duplicate m_1 @ 0.
	if st.Rows != 4 {
		t.Fatalf("salvaged rows = %d, want 4", st.Rows)
	}
	if st.Skipped != 5 {
		t.Fatalf("skipped rows = %d, want 5 (errors: %v)", st.Skipped, st.Errors)
	}
	if len(st.Errors) == 0 || len(st.Errors) > maxRowErrors {
		t.Fatalf("error samples = %d, want 1..%d", len(st.Errors), maxRowErrors)
	}

	if len(es) != 2 || es[0].ID != "m_1" || es[1].ID != "m_2" {
		t.Fatalf("entities = %+v", es)
	}
	// Out-of-order rows sorted; duplicate timestamp kept its FIRST
	// occurrence (cpu=1 at t=0, not the later 99).
	cpu := es[0].Series(CPUUtilPercent)
	if len(cpu) != 3 || cpu[0] != 1 || cpu[1] != 2 || cpu[2] != 3 {
		t.Fatalf("m_1 cpu series = %v, want [1 2 3]", cpu)
	}
	// The empty mem field at t=10 survives as NaN for dataprep to clean.
	mem := es[0].Series(MemUtilPercent)
	if !math.IsNaN(mem[1]) {
		t.Fatalf("empty field not NaN: %v", mem)
	}
	if es[0].Interval != 10 {
		t.Fatalf("inferred interval = %d", es[0].Interval)
	}
	if got := es[1].Series(CPUUtilPercent); len(got) != 1 || got[0] != 8 {
		t.Fatalf("m_2 cpu series = %v, want [8]", got)
	}
}

func TestReadCSVAllRowsBadIsError(t *testing.T) {
	bad := "m_1,notanumber,1,2,3,4,5,6,7,8\nm_1,also,bad\n"
	es, st, err := ReadCSVStats(strings.NewReader(bad), Machine)
	if err == nil {
		t.Fatalf("zero salvageable rows must error, got %d entities", len(es))
	}
	if st.Rows != 0 || st.Skipped != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestReadCSVStatsCleanInput(t *testing.T) {
	es := Generate(GeneratorConfig{Entities: 1, Kind: Container, Samples: 30, Seed: 3})
	var buf bytes.Buffer
	if err := WriteCSV(&buf, es); err != nil {
		t.Fatal(err)
	}
	back, st, err := ReadCSVStats(&buf, Container)
	if err != nil {
		t.Fatal(err)
	}
	if st.Skipped != 0 || len(st.Errors) != 0 {
		t.Fatalf("clean input reported skips: %+v", st)
	}
	if st.Rows != 30 || len(back) != 1 || back[0].Len() != 30 {
		t.Fatalf("round trip: rows=%d entities=%d", st.Rows, len(back))
	}
}
