//go:build !race

package trace

const raceEnabled = false
