package trace

import (
	"fmt"
	"sync"
	"testing"
)

// TestBoundedRingStoreEvictionRace hammers a small-capped store from
// concurrent writers (forcing continuous LRU eviction) and concurrent
// readers walking windows and counts. Run under -race this pins the
// eviction/ingest interleaving: an evicted entry a reader already
// resolved stays a valid orphaned ring, the cap holds, and nothing
// panics.
func TestBoundedRingStoreEvictionRace(t *testing.T) {
	const (
		maxEnt   = 8
		writers  = 4
		entities = 64
		rounds   = 50
	)
	s := NewBoundedRingStore(16, maxEnt)
	var vals [NumIndicators]float64
	var wg sync.WaitGroup

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for i := 0; i < entities; i++ {
					// Distinct entity sets per writer, so every round
					// churns well past the cap.
					id := fmt.Sprintf("w%d_e%d", w, i)
					s.IngestString(id, r+1, &vals)
				}
			}
		}(w)
	}
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds*entities; i++ {
				for _, id := range s.Entities() {
					s.WithWindow(id, 4, func(win [][]float64, _, _ int) {
						if len(win) != NumIndicators {
							t.Errorf("window has %d indicators", len(win))
						}
					})
					s.SampleCount(id)
				}
				if n := s.Len(); n > maxEnt {
					t.Errorf("store holds %d entities, max %d", n, maxEnt)
					return
				}
			}
		}()
	}
	wg.Wait()

	if n := s.Len(); n > maxEnt {
		t.Fatalf("final store holds %d entities, max %d", n, maxEnt)
	}
	// With writers×entities ≫ cap, eviction must have actually run —
	// this is the counter the server exports.
	if ev := s.Evicted(); ev < writers*entities-maxEnt {
		t.Fatalf("evicted = %d, want ≥ %d", ev, writers*entities-maxEnt)
	}
}

// TestBoundedRingStoreOrphanedRingStaysValid pins the documented
// evict-while-held semantics: a ring resolved before its entity is
// evicted keeps accepting appends (orphaned, unreachable) without
// corrupting the store's live state.
func TestBoundedRingStoreOrphanedRingStaysValid(t *testing.T) {
	s := NewBoundedRingStore(8, 2)
	var vals [NumIndicators]float64
	s.IngestString("a", 1, &vals)
	s.IngestString("b", 1, &vals)

	// Hold a's window open while c's arrival evicts a (the LRU entry:
	// b and c are touched later).
	done := make(chan struct{})
	s.WithWindow("a", 1, func([][]float64, int, int) {
		go func() {
			defer close(done)
			s.IngestString("b", 2, &vals)
			s.IngestString("c", 1, &vals)
		}()
		<-done
	})
	if s.SampleCount("a") != 0 {
		t.Fatal("evicted entity still resolvable")
	}
	if s.Len() != 2 || s.Evicted() != 1 {
		t.Fatalf("len=%d evicted=%d, want 2/1", s.Len(), s.Evicted())
	}
	// Re-ingesting the evicted ID builds a fresh ring.
	s.IngestString("a", 5, &vals)
	if s.SampleCount("a") != 1 {
		t.Fatalf("re-created entity has %d samples, want 1", s.SampleCount("a"))
	}
}
