package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"

	"repro/internal/obs"
)

// CSV layout follows the Alibaba v2018 usage tables:
//
//	entity_id,time_stamp,cpu_util_percent,mem_util_percent,cpi,mem_gps,mpki,net_in,net_out,disk_io_percent
//
// One row per (entity, timestamp); rows for a given entity are emitted in
// time order. Missing samples are written as empty fields.

// csvHeader is the column header written by WriteCSV and expected (or
// auto-detected) by ReadCSV.
var csvHeader = []string{
	"entity_id", "time_stamp",
	"cpu_util_percent", "mem_util_percent", "cpi", "mem_gps",
	"mpki", "net_in", "net_out", "disk_io_percent",
}

// column order in the CSV for each indicator.
var csvIndicatorOrder = [NumIndicators]Indicator{
	CPUUtilPercent, MemUtilPercent, CPI, MemGPS, MPKI, NetIn, NetOut, DiskIOPercent,
}

// WriteCSV writes the entity series to w in the v2018-style layout.
func WriteCSV(w io.Writer, entities []*EntitySeries) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("trace: writing header: %w", err)
	}
	row := make([]string, len(csvHeader))
	for _, e := range entities {
		for t := 0; t < e.Len(); t++ {
			row[0] = e.ID
			row[1] = strconv.Itoa(t * e.Interval)
			for ci, ind := range csvIndicatorOrder {
				v := e.Metrics[ind][t]
				if math.IsNaN(v) {
					row[2+ci] = ""
				} else {
					row[2+ci] = strconv.FormatFloat(v, 'g', -1, 64)
				}
			}
			if err := cw.Write(row); err != nil {
				return fmt.Errorf("trace: writing row: %w", err)
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadStats reports what a lenient CSV load salvaged and what it had to
// drop. Real usage traces are dirty — a collector hiccup truncates a row,
// an exporter emits "null" instead of an empty field — and one bad line
// must not abort a multi-million-row load.
type ReadStats struct {
	Rows    int // data rows parsed into samples
	Skipped int // rows dropped: ragged, unparsable, or duplicate timestamp
	// Errors holds the first few per-row failures (capped) for logs and
	// diagnostics; Skipped is the authoritative count.
	Errors []error
}

// maxRowErrors caps how many per-row failures are retained and logged
// verbatim; beyond that only the Skipped counter grows.
const maxRowErrors = 5

func (st *ReadStats) skip(err error) {
	st.Skipped++
	if len(st.Errors) < maxRowErrors {
		st.Errors = append(st.Errors, err)
		obs.Logger("trace").Warn("skipping unusable csv row", "err", err)
	}
}

// ReadCSV parses a v2018-style usage CSV back into entity series. It is
// lenient: ragged rows, non-numeric fields, and duplicate timestamps are
// skipped (counted and logged) rather than aborting the load, and rows
// may arrive in any order (they are sorted by timestamp per entity).
// Empty fields become NaN (cleaned later by the dataprep stage). An
// error is returned only when the input held rows but none were usable.
func ReadCSV(r io.Reader, kind EntityKind) ([]*EntitySeries, error) {
	es, _, err := ReadCSVStats(r, kind)
	return es, err
}

// ReadCSVStats is ReadCSV plus the salvage accounting, for callers that
// want to surface how dirty the input was.
func ReadCSVStats(r io.Reader, kind EntityKind) ([]*EntitySeries, ReadStats, error) {
	var st ReadStats
	cr := csv.NewReader(r)
	// Field-count validation is ours: a ragged row is skipped, not fatal.
	cr.FieldsPerRecord = -1

	// Pointer-valued buffers: the per-row hot path does one map lookup
	// and appends through the pointer, instead of a lookup plus a map
	// re-assignment per row. Growth inside append is geometric; the final
	// per-entity storage is shrunk to exact size below.
	byEntity := map[string]*entityBuf{}
	var order []string
	line := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		line++
		if err != nil {
			// A csv-level parse error (stray quote, bare CR) poisons only
			// its own line; the reader continues at the next one.
			st.skip(fmt.Errorf("trace: line %d: %w", line, err))
			continue
		}
		if line == 1 && len(rec) > 0 && rec[0] == csvHeader[0] {
			continue // header row
		}
		if len(rec) != len(csvHeader) {
			st.skip(fmt.Errorf("trace: line %d: %d fields, want %d", line, len(rec), len(csvHeader)))
			continue
		}
		ts, err := strconv.Atoi(rec[1])
		if err != nil {
			st.skip(fmt.Errorf("trace: line %d: bad timestamp %q", line, rec[1]))
			continue
		}
		var s sample
		s.ts = ts
		ok := true
		for ci, ind := range csvIndicatorOrder {
			f := rec[2+ci]
			if f == "" {
				s.vals[ind] = math.NaN()
				continue
			}
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				st.skip(fmt.Errorf("trace: line %d: bad value %q", line, f))
				ok = false
				break
			}
			s.vals[ind] = v
		}
		if !ok {
			continue
		}
		eb := byEntity[rec[0]]
		if eb == nil {
			eb = &entityBuf{samples: make([]sample, 0, 16)}
			byEntity[rec[0]] = eb
			order = append(order, rec[0])
		}
		eb.samples = append(eb.samples, s)
		st.Rows++
	}
	if st.Skipped > 0 {
		obs.Logger("trace").Warn("csv load skipped unusable rows",
			"skipped", st.Skipped, "kept", st.Rows)
	}
	if st.Rows == 0 {
		if st.Skipped > 0 {
			return nil, st, fmt.Errorf("trace: no usable rows (%d skipped, first: %w)",
				st.Skipped, st.Errors[0])
		}
		return nil, st, nil
	}

	out := make([]*EntitySeries, 0, len(order))
	for _, id := range order {
		samples := byEntity[id].samples
		sort.SliceStable(samples, func(a, b int) bool { return samples[a].ts < samples[b].ts })
		// Drop duplicate timestamps (keep the first occurrence): two rows
		// claiming the same instant cannot both be real.
		kept := samples[:1]
		for _, s := range samples[1:] {
			if s.ts == kept[len(kept)-1].ts {
				st.skip(fmt.Errorf("trace: entity %s: duplicate timestamp %d", id, s.ts))
				st.Rows--
				continue
			}
			kept = append(kept, s)
		}
		e := &EntitySeries{ID: id, Kind: kind, Interval: inferInterval(kept)}
		// One exact-size slab for all eight indicator series (the final
		// shrink): a single allocation instead of NumIndicators, and the
		// append-time over-capacity in samples is released here.
		n := len(kept)
		slab := make([]float64, NumIndicators*n)
		for i := range e.Metrics {
			e.Metrics[i] = slab[i*n : (i+1)*n : (i+1)*n]
		}
		for t, s := range kept {
			for i := 0; i < NumIndicators; i++ {
				e.Metrics[i][t] = s.vals[i]
			}
		}
		out = append(out, e)
	}
	return out, st, nil
}

// entityBuf accumulates one entity's rows during a CSV load.
type entityBuf struct {
	samples []sample
}

// sample is one parsed CSV row.
type sample struct {
	ts   int
	vals [NumIndicators]float64
}

func inferInterval(samples []sample) int {
	if len(samples) < 2 {
		return 10
	}
	d := samples[1].ts - samples[0].ts
	if d <= 0 {
		return 10
	}
	return d
}
