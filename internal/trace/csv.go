package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
)

// CSV layout follows the Alibaba v2018 usage tables:
//
//	entity_id,time_stamp,cpu_util_percent,mem_util_percent,cpi,mem_gps,mpki,net_in,net_out,disk_io_percent
//
// One row per (entity, timestamp); rows for a given entity are emitted in
// time order. Missing samples are written as empty fields.

// csvHeader is the column header written by WriteCSV and expected (or
// auto-detected) by ReadCSV.
var csvHeader = []string{
	"entity_id", "time_stamp",
	"cpu_util_percent", "mem_util_percent", "cpi", "mem_gps",
	"mpki", "net_in", "net_out", "disk_io_percent",
}

// column order in the CSV for each indicator.
var csvIndicatorOrder = [NumIndicators]Indicator{
	CPUUtilPercent, MemUtilPercent, CPI, MemGPS, MPKI, NetIn, NetOut, DiskIOPercent,
}

// WriteCSV writes the entity series to w in the v2018-style layout.
func WriteCSV(w io.Writer, entities []*EntitySeries) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("trace: writing header: %w", err)
	}
	row := make([]string, len(csvHeader))
	for _, e := range entities {
		for t := 0; t < e.Len(); t++ {
			row[0] = e.ID
			row[1] = strconv.Itoa(t * e.Interval)
			for ci, ind := range csvIndicatorOrder {
				v := e.Metrics[ind][t]
				if math.IsNaN(v) {
					row[2+ci] = ""
				} else {
					row[2+ci] = strconv.FormatFloat(v, 'g', -1, 64)
				}
			}
			if err := cw.Write(row); err != nil {
				return fmt.Errorf("trace: writing row: %w", err)
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a v2018-style usage CSV back into entity series. The
// kind is assigned to every entity (the CSV does not carry it). Rows may
// arrive in any order; they are sorted by timestamp per entity. Empty
// fields become NaN (cleaned later by the dataprep stage).
func ReadCSV(r io.Reader, kind EntityKind) ([]*EntitySeries, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(csvHeader)
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("trace: reading csv: %w", err)
	}
	if len(records) == 0 {
		return nil, nil
	}
	start := 0
	if records[0][0] == csvHeader[0] {
		start = 1
	}
	byEntity := map[string][]sample{}
	var order []string
	for li, rec := range records[start:] {
		ts, err := strconv.Atoi(rec[1])
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad timestamp %q", start+li+1, rec[1])
		}
		var s sample
		s.ts = ts
		for ci, ind := range csvIndicatorOrder {
			f := rec[2+ci]
			if f == "" {
				s.vals[ind] = math.NaN()
				continue
			}
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("trace: line %d: bad value %q", start+li+1, f)
			}
			s.vals[ind] = v
		}
		if _, ok := byEntity[rec[0]]; !ok {
			order = append(order, rec[0])
		}
		byEntity[rec[0]] = append(byEntity[rec[0]], s)
	}
	var out []*EntitySeries
	for _, id := range order {
		samples := byEntity[id]
		sort.Slice(samples, func(a, b int) bool { return samples[a].ts < samples[b].ts })
		e := &EntitySeries{ID: id, Kind: kind, Interval: inferInterval(samples)}
		for i := range e.Metrics {
			e.Metrics[i] = make([]float64, len(samples))
		}
		for t, s := range samples {
			for i := 0; i < NumIndicators; i++ {
				e.Metrics[i][t] = s.vals[i]
			}
		}
		out = append(out, e)
	}
	return out, nil
}

// sample is one parsed CSV row.
type sample struct {
	ts   int
	vals [NumIndicators]float64
}

func inferInterval(samples []sample) int {
	if len(samples) < 2 {
		return 10
	}
	d := samples[1].ts - samples[0].ts
	if d <= 0 {
		return 10
	}
	return d
}
