// Package trace provides the workload substrate for the experiments: a
// synthetic generator that reproduces the statistical character of the
// Alibaba cluster trace v2018 (high-dynamic utilization, abrupt mutation
// points, correlated performance indicators, low average CPU usage), plus
// CSV readers/writers in the v2018 column layout so a real trace can be
// substituted without code changes.
package trace

// Indicator identifies one of the eight performance indicators of the
// paper's Table I.
type Indicator int

// The indicators, in the order used throughout the repository.
const (
	CPUUtilPercent Indicator = iota // cpu utilization percent
	MemUtilPercent                  // memory utilization percent
	CPI                             // cycles per instruction
	MemGPS                          // normalized memory gigabytes per second
	MPKI                            // misses per kilo instructions
	NetIn                           // normalized incoming network traffic
	NetOut                          // normalized outgoing network traffic
	DiskIOPercent                   // disk io percent

	NumIndicators = 8
)

var indicatorNames = [NumIndicators]string{
	"cpu_util_percent",
	"mem_util_percent",
	"cpi",
	"mem_gps",
	"mpki",
	"net_in",
	"net_out",
	"disk_io_percent",
}

// String returns the v2018 column name of the indicator.
func (i Indicator) String() string {
	if i < 0 || int(i) >= NumIndicators {
		return "unknown"
	}
	return indicatorNames[i]
}

// IndicatorByName returns the Indicator for a v2018 column name.
func IndicatorByName(name string) (Indicator, bool) {
	for i, n := range indicatorNames {
		if n == name {
			return Indicator(i), true
		}
	}
	return 0, false
}

// AllIndicators lists every indicator in canonical order.
func AllIndicators() []Indicator {
	out := make([]Indicator, NumIndicators)
	for i := range out {
		out[i] = Indicator(i)
	}
	return out
}

// EntityKind distinguishes the two monitored entity types of the trace.
type EntityKind int

// Entity kinds.
const (
	Machine EntityKind = iota
	Container
)

// String returns the kind name.
func (k EntityKind) String() string {
	if k == Machine {
		return "machine"
	}
	return "container"
}

// EntitySeries holds the complete monitoring log of one machine or
// container: one time series per indicator, sampled at a fixed interval.
type EntitySeries struct {
	ID       string
	Kind     EntityKind
	Interval int // seconds between samples

	// Metrics[i] is the series for Indicator(i); all have equal length.
	Metrics [NumIndicators][]float64
}

// Len returns the number of samples.
func (e *EntitySeries) Len() int { return len(e.Metrics[0]) }

// Series returns the time series of one indicator.
func (e *EntitySeries) Series(i Indicator) []float64 { return e.Metrics[i] }

// Matrix returns the indicators as a [NumIndicators][]float64 slice-of-
// slices view in canonical order (no copy).
func (e *EntitySeries) Matrix() [][]float64 {
	out := make([][]float64, NumIndicators)
	for i := range out {
		out[i] = e.Metrics[i]
	}
	return out
}
