package trace

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"
)

// TestScanCSVSalvagesCorruptedFixture runs the streaming scanner over
// the same dirty fixture as the batch loader. The salvage accounting
// differs only where documented: ScanCSV streams rows in file order and
// does not drop duplicate timestamps (that moves to Ring.Append), so the
// duplicate m_1@0 row is delivered rather than skipped.
func TestScanCSVSalvagesCorruptedFixture(t *testing.T) {
	type row struct {
		entity string
		ts     int
	}
	var got []row
	st, err := ScanCSV(strings.NewReader(corruptedFixture), func(entity []byte, ts int, vals *[NumIndicators]float64) error {
		got = append(got, row{string(entity), ts})
		return nil
	})
	if err != nil {
		t.Fatalf("lenient scan aborted: %v", err)
	}
	if st.Rows != 5 {
		t.Fatalf("salvaged rows = %d, want 5", st.Rows)
	}
	// Dropped: ragged row, bad timestamp, "null" value, malformed quote.
	if st.Skipped != 4 {
		t.Fatalf("skipped rows = %d, want 4 (errors: %v)", st.Skipped, st.Errors)
	}
	want := []row{{"m_1", 20}, {"m_1", 0}, {"m_1", 0}, {"m_1", 10}, {"m_2", 10}}
	if len(got) != len(want) {
		t.Fatalf("delivered %d rows: %v", len(got), got)
	}
	for i, w := range want {
		if got[i] != w {
			t.Fatalf("row %d = %v, want %v", i, got[i], w)
		}
	}
}

// TestScanCSVValuesMatchBatchLoader round-trips a clean generated trace
// through both paths and demands identical values sample for sample.
func TestScanCSVValuesMatchBatchLoader(t *testing.T) {
	es := Generate(GeneratorConfig{Entities: 3, Kind: Container, Samples: 40, Seed: 9})
	var buf bytes.Buffer
	if err := WriteCSV(&buf, es); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	batch, _, err := ReadCSVStats(bytes.NewReader(data), Container)
	if err != nil {
		t.Fatal(err)
	}
	byID := map[string]*EntitySeries{}
	for _, e := range batch {
		byID[e.ID] = e
	}

	seen := map[string]int{}
	st, err := ScanCSV(bytes.NewReader(data), func(entity []byte, ts int, vals *[NumIndicators]float64) error {
		e := byID[string(entity)]
		if e == nil {
			return fmt.Errorf("unknown entity %q", entity)
		}
		idx := seen[string(entity)]
		seen[string(entity)]++
		if ts != idx*e.Interval {
			return fmt.Errorf("entity %q sample %d: ts %d, want %d", entity, idx, ts, idx*e.Interval)
		}
		for i := 0; i < NumIndicators; i++ {
			w := e.Metrics[i][idx]
			if v := vals[i]; v != w && !(math.IsNaN(v) && math.IsNaN(w)) {
				return fmt.Errorf("entity %q sample %d indicator %d: %g, want %g", entity, idx, i, v, w)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Rows != 3*40 || st.Skipped != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestScanCSVAllRowsBadIsError mirrors the batch loader's contract.
func TestScanCSVAllRowsBadIsError(t *testing.T) {
	bad := "m_1,notanumber,1,2,3,4,5,6,7,8\nm_1,also,bad\n"
	st, err := ScanCSV(strings.NewReader(bad), func([]byte, int, *[NumIndicators]float64) error { return nil })
	if err == nil {
		t.Fatal("zero salvageable rows must error")
	}
	if st.Rows != 0 || st.Skipped != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestScanCSVCallbackErrorAborts checks a callback error stops the scan
// and surfaces verbatim.
func TestScanCSVCallbackErrorAborts(t *testing.T) {
	es := Generate(GeneratorConfig{Entities: 1, Kind: Machine, Samples: 10, Seed: 1})
	var buf bytes.Buffer
	if err := WriteCSV(&buf, es); err != nil {
		t.Fatal(err)
	}
	stop := errors.New("stop")
	calls := 0
	_, err := ScanCSV(&buf, func([]byte, int, *[NumIndicators]float64) error {
		calls++
		if calls == 3 {
			return stop
		}
		return nil
	})
	if !errors.Is(err, stop) {
		t.Fatalf("err = %v, want the callback's error", err)
	}
	if calls != 3 {
		t.Fatalf("callback ran %d times, want 3", calls)
	}
}

// TestScanCSVLongLines exercises buffer compaction and growth: rows far
// longer than the refill chunks still parse intact.
func TestScanCSVLongLines(t *testing.T) {
	pad := strings.Repeat("x", 3*scanBufSize/2)
	input := "entity_" + pad + ",10,1,2,3,4,5,6,7,8\n" +
		"m_2,20,1,2,3,4,5,6,7,8" // no trailing newline
	var ids []string
	st, err := ScanCSV(strings.NewReader(input), func(entity []byte, ts int, vals *[NumIndicators]float64) error {
		ids = append(ids, string(entity))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Rows != 2 || st.Skipped != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if ids[0] != "entity_"+pad || ids[1] != "m_2" {
		t.Fatalf("ids = [%d bytes, %q]", len(ids[0]), ids[1])
	}
}

// TestScanCSVSteadyStateAllocations pins the zero-copy claim: scanning a
// large clean input into a warmed RingStore must cost a small constant
// number of allocations per scan — none per sample or per row.
func TestScanCSVSteadyStateAllocations(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation defeats escape analysis; allocation counts are meaningless")
	}
	const entities, samples = 8, 200
	es := Generate(GeneratorConfig{Entities: entities, Kind: Machine, Samples: samples, Seed: 4})
	var buf bytes.Buffer
	if err := WriteCSV(&buf, es); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	store := NewRingStore(64)
	rd := bytes.NewReader(data)
	ingest := func(entity []byte, ts int, vals *[NumIndicators]float64) error {
		store.Ingest(entity, ts, vals)
		return nil
	}
	// Warm: create all rings and the pooled scanner buffer. Later passes
	// re-deliver old timestamps, which the rings reject without
	// allocating — exactly the steady state of a tailing ingester.
	if _, err := ScanCSV(rd, ingest); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		rd.Reset(data)
		if _, err := ScanCSV(rd, ingest); err != nil {
			t.Fatal(err)
		}
	})
	// The constant overhead is the vals/fields escape into the callback
	// closure — independent of the 1600 rows scanned.
	if allocs > 4 {
		t.Fatalf("steady-state scan allocates %.1f times per pass over %d rows, want ≤ 4",
			allocs, entities*samples)
	}
}

// BenchmarkScanCSV measures streaming scan throughput (MB/s) into a
// warmed ring store; allocs/op must stay flat at the constant overhead.
func BenchmarkScanCSV(b *testing.B) {
	es := Generate(GeneratorConfig{Entities: 16, Kind: Machine, Samples: 500, Seed: 4})
	var buf bytes.Buffer
	if err := WriteCSV(&buf, es); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	store := NewRingStore(64)
	ingest := func(entity []byte, ts int, vals *[NumIndicators]float64) error {
		store.Ingest(entity, ts, vals)
		return nil
	}
	rd := bytes.NewReader(data)
	if _, err := ScanCSV(rd, ingest); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rd.Reset(data)
		if _, err := ScanCSV(rd, ingest); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReadCSVStats is the batch-loader baseline for the same input
// shape; its allocation count is pinned by the slab-building rewrite.
func BenchmarkReadCSVStats(b *testing.B) {
	es := Generate(GeneratorConfig{Entities: 16, Kind: Machine, Samples: 500, Seed: 4})
	var buf bytes.Buffer
	if err := WriteCSV(&buf, es); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ReadCSVStats(bytes.NewReader(data), Machine); err != nil {
			b.Fatal(err)
		}
	}
}
