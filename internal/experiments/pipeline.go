package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dataprep"
	"repro/internal/gbt"
	"repro/internal/metrics"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/opt"
	"repro/internal/tensor"
	"repro/internal/trace"
	"repro/internal/train"
)

// ModelName identifies a Table II competitor.
type ModelName string

// The competitors of Table II.
const (
	ModelARIMA   ModelName = "ARIMA"
	ModelLSTM    ModelName = "LSTM"
	ModelCNNLSTM ModelName = "CNN-LSTM"
	ModelXGBoost ModelName = "XGBoost"
	ModelRPTCN   ModelName = "RPTCN"
)

// preparedData holds the scenario-specific supervised splits plus the raw
// normalized target series (for ARIMA, which consumes the series directly).
type preparedData struct {
	tr, va, te train.Dataset
	channels   int
	// target series at the normalized scale, full length after cleaning
	// and (for Mul-Exp) expansion trimming.
	targetSeries []float64
	// testTruth is the first-step truth per test window (normalized).
	testTruth []float64
}

// prepareScenario runs Algorithm 1 lines 1–5 on one entity for a scenario.
func prepareScenario(e *trace.EntitySeries, sc core.Scenario, o Options) (*preparedData, error) {
	series := e.Matrix()
	target := int(trace.CPUUtilPercent)
	cleaned := dataprep.Clean(series)
	if len(cleaned) == 0 || len(cleaned[0]) == 0 {
		return nil, fmt.Errorf("experiments: entity %s empty after cleaning", e.ID)
	}
	norm := dataprep.FitNormalizer(cleaned)
	normed := norm.Transform(cleaned)

	var sel [][]float64
	switch sc {
	case core.Uni:
		sel = dataprep.Select(normed, []int{target})
	default:
		idx := dataprep.ScreenTopHalf(normed, target)
		sel = dataprep.Select(normed, idx)
	}
	if sc == core.MulExp {
		sel = dataprep.ExpandHorizontal(sel, o.ExpandFactor)
	}

	ds, err := dataprep.BuildSupervised(sel, dataprep.WindowConfig{
		Window: o.Window, Horizon: o.Horizon, Target: 0,
	})
	if err != nil {
		return nil, err
	}
	tr, va, te, err := train.Split(ds, 0.6, 0.2)
	if err != nil {
		return nil, err
	}
	p := &preparedData{
		tr: tr, va: va, te: te,
		channels:     len(sel),
		targetSeries: sel[0],
	}
	p.testTruth = make([]float64, te.Len())
	for i := range p.testTruth {
		p.testTruth[i] = te.Y.Data[i*o.Horizon]
	}
	return p, nil
}

// deepTrainConfig is the shared training recipe for the deep models.
// Baselines use the Keras-default Adam(1e-3) the paper relies on; RPTCN —
// the authors' own tuned model — uses 2e-3 (see runDeep).
func deepTrainConfig(o Options, seed uint64) train.Config {
	return deepTrainConfigLR(o, seed, 1e-3)
}

func deepTrainConfigLR(o Options, seed uint64, lr float64) train.Config {
	return train.Config{
		Epochs:      o.Epochs,
		BatchSize:   32,
		Optimizer:   opt.NewAdam(lr),
		Loss:        &nn.MSELoss{},
		Patience:    10, // the paper's EarlyStopping patience
		Shuffle:     true,
		Seed:        seed,
		RestoreBest: true,
		ClipNorm:    5,
		Hooks:       o.Hooks,
		Tracer:      o.Tracer,
	}
}

// buildDeepModel constructs a named deep model for the given channel count.
func buildDeepModel(name ModelName, channels int, o Options, seed uint64) nn.Layer {
	r := tensor.NewRNG(seed)
	switch name {
	case ModelLSTM:
		return models.NewLSTM(r, models.LSTMConfig{
			InChannels: channels, Hidden: 32, Horizon: o.Horizon,
		})
	case ModelCNNLSTM:
		return models.NewCNNLSTM(r, models.CNNLSTMConfig{
			InChannels: channels, ConvChannels: 16, KernelSize: 3,
			Hidden: 32, Horizon: o.Horizon, Dropout: 0.1,
		})
	case ModelRPTCN:
		return core.NewModel(r, core.Config{
			InChannels: channels,
			Channels:   []int{16, 16, 16},
			KernelSize: 3,
			Dilations:  []int{1, 2, 4}, // the paper's Fig. 5 configuration
			Dropout:    0.1,
			WeightNorm: true,
			FCWidth:    32,
			Horizon:    o.Horizon,
		})
	}
	panic(fmt.Sprintf("experiments: %s is not a deep model", name))
}

// runResult is one model evaluation: test metrics plus curves.
type runResult struct {
	Report    metrics.Report
	Preds     []float64 // first-step test predictions (normalized)
	TrainLoss []float64
	ValidLoss []float64
}

// runDeep trains and evaluates one deep model on prepared data.
func runDeep(name ModelName, p *preparedData, o Options, seed uint64) runResult {
	m := buildDeepModel(name, p.channels, o, seed)
	lr := 1e-3
	if name == ModelRPTCN {
		lr = 2e-3
	}
	hist := train.Fit(m, p.tr, p.va, deepTrainConfigLR(o, seed+100, lr))
	preds := train.Predict(m, p.te)
	return runResult{
		Report:    metrics.Evaluate(p.testTruth, preds),
		Preds:     preds,
		TrainLoss: hist.TrainLoss,
		ValidLoss: hist.ValidLoss,
	}
}

// runXGBoost trains and evaluates the gradient-boosted baseline on the
// flattened windows of the same prepared data.
func runXGBoost(p *preparedData, o Options, seed uint64) runResult {
	Xtr, ytr := dataprep.FlattenWindows(p.tr)
	Xva, yva := dataprep.FlattenWindows(p.va)
	Xte, _ := dataprep.FlattenWindows(p.te)
	model, err := gbt.Fit(Xtr, ytr, gbt.Config{
		Rounds: o.Rounds, MaxDepth: 4, LearningRate: 0.1,
		Subsample: 0.9, ColSample: 0.9, Seed: seed,
	})
	if err != nil {
		panic(fmt.Sprintf("experiments: xgboost fit: %v", err))
	}
	preds := model.PredictBatch(Xte)
	return runResult{
		Report:    metrics.Evaluate(p.testTruth, preds),
		Preds:     preds,
		TrainLoss: model.StagedLoss(Xtr, ytr),
		ValidLoss: model.StagedLoss(Xva, yva),
	}
}
