package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/dataprep"
	"repro/internal/metrics"
	"repro/internal/tensor"
	"repro/internal/trace"
	"repro/internal/train"
)

// AblationResult maps a variant label to its test metrics.
type AblationResult struct {
	Title   string
	Order   []string
	Results map[string]metrics.Report
}

// Format renders the variants in declaration order.
func (a *AblationResult) Format() string {
	var b strings.Builder
	b.WriteString(a.Title + "\n")
	fmt.Fprintf(&b, "%-28s %12s %12s\n", "variant", "MSE", "MAE")
	for _, k := range a.Order {
		r := a.Results[k]
		fmt.Fprintf(&b, "%-28s %12.5f %12.5f\n", k, r.MSE, r.MAE)
	}
	return b.String()
}

func (a *AblationResult) add(label string, r metrics.Report) {
	a.Order = append(a.Order, label)
	a.Results[label] = r
}

// runRPTCNVariant trains one RPTCN configuration on prepared data.
func runRPTCNVariant(p *preparedData, o Options, cfg core.Config, seed uint64) metrics.Report {
	cfg.InChannels = p.channels
	cfg.Horizon = o.Horizon
	m := core.NewModel(tensor.NewRNG(seed), cfg)
	train.Fit(m, p.tr, p.va, deepTrainConfig(o, seed+100))
	preds := train.Predict(m, p.te)
	return metrics.Evaluate(p.testTruth, preds)
}

func baseRPTCNConfig() core.Config {
	return core.Config{
		Channels:   []int{16, 16, 16},
		KernelSize: 3,
		Dilations:  []int{1, 2, 4},
		Dropout:    0.1,
		WeightNorm: true,
		FCWidth:    32,
	}
}

// RunAblationHeads compares the full RPTCN against variants without the
// fully connected layer and/or the attention head — the two additions the
// paper makes on top of the plain TCN.
func RunAblationHeads(o Options) (*AblationResult, error) {
	o = o.withDefaults()
	e := Generate1(trace.Container, o)
	p, err := prepareScenario(e, core.MulExp, o)
	if err != nil {
		return nil, err
	}
	out := &AblationResult{Title: "Ablation: FC layer and attention head (containers, Mul-Exp)", Results: map[string]metrics.Report{}}
	variants := []struct {
		label string
		mut   func(*core.Config)
	}{
		{"RPTCN (FC + attention)", func(*core.Config) {}},
		{"no attention", func(c *core.Config) { c.DisableAttention = true }},
		{"no FC", func(c *core.Config) { c.DisableFC = true }},
		{"plain TCN (neither)", func(c *core.Config) { c.DisableFC = true; c.DisableAttention = true }},
	}
	for i, v := range variants {
		cfg := baseRPTCNConfig()
		v.mut(&cfg)
		out.add(v.label, runRPTCNVariant(p, o, cfg, o.Seed+uint64(i)*613))
	}
	return out, nil
}

// RunAblationExpansion compares the paper's horizontal expansion
// (Fig. 4b) against vertical expansion (Fig. 4a: a longer window with the
// same raw span) and no expansion, all on the same screened features.
func RunAblationExpansion(o Options) (*AblationResult, error) {
	o = o.withDefaults()
	e := Generate1(trace.Container, o)
	out := &AblationResult{Title: "Ablation: feature expansion strategy (containers)", Results: map[string]metrics.Report{}}

	run := func(label string, sc core.Scenario, window int, seed uint64) error {
		oo := o
		oo.Window = window
		p, err := prepareScenario(e, sc, oo)
		if err != nil {
			return err
		}
		out.add(label, runRPTCNVariant(p, oo, baseRPTCNConfig(), seed))
		return nil
	}
	// Horizontal (Fig. 4b): window L over factor-expanded channels spans
	// L+factor−1 raw samples.
	if err := run("horizontal (Fig. 4b)", core.MulExp, o.Window, o.Seed+1); err != nil {
		return nil, err
	}
	// Vertical (Fig. 4a): same raw span with plain channels.
	if err := run("vertical (Fig. 4a)", core.Mul, o.Window+o.ExpandFactor-1, o.Seed+2); err != nil {
		return nil, err
	}
	if err := run("none (Mul)", core.Mul, o.Window, o.Seed+3); err != nil {
		return nil, err
	}
	return out, nil
}

// RunAblationDilations sweeps the dilation schedule depth, trading
// receptive field against parameter count.
func RunAblationDilations(o Options) (*AblationResult, error) {
	o = o.withDefaults()
	e := Generate1(trace.Container, o)
	p, err := prepareScenario(e, core.MulExp, o)
	if err != nil {
		return nil, err
	}
	out := &AblationResult{Title: "Ablation: dilation schedule (containers, Mul-Exp)", Results: map[string]metrics.Report{}}
	for i, dil := range [][]int{{1}, {1, 2}, {1, 2, 4}, {1, 2, 4, 8}} {
		cfg := baseRPTCNConfig()
		cfg.Dilations = dil
		cfg.Channels = make([]int, len(dil))
		for j := range cfg.Channels {
			cfg.Channels[j] = 16
		}
		label := fmt.Sprintf("dilations=%v", dil)
		out.add(label, runRPTCNVariant(p, o, cfg, o.Seed+uint64(i)*997))
	}
	return out, nil
}

// RunAblationWeightNorm compares weight-normalized temporal blocks against
// plain convolutions.
func RunAblationWeightNorm(o Options) (*AblationResult, error) {
	o = o.withDefaults()
	e := Generate1(trace.Container, o)
	p, err := prepareScenario(e, core.MulExp, o)
	if err != nil {
		return nil, err
	}
	out := &AblationResult{Title: "Ablation: weight normalization (containers, Mul-Exp)", Results: map[string]metrics.Report{}}
	on := baseRPTCNConfig()
	out.add("weight norm on", runRPTCNVariant(p, o, on, o.Seed+5))
	off := baseRPTCNConfig()
	off.WeightNorm = false
	out.add("weight norm off", runRPTCNVariant(p, o, off, o.Seed+6))
	return out, nil
}

// RunAblationScreening compares PCC top-half screening against using all
// indicators and the target alone, quantifying the paper's claim that
// weakly-correlated inputs hurt.
func RunAblationScreening(o Options) (*AblationResult, error) {
	o = o.withDefaults()
	e := Generate1(trace.Container, o)
	out := &AblationResult{Title: "Ablation: indicator screening (containers)", Results: map[string]metrics.Report{}}

	series := dataprep.Clean(e.Matrix())
	norm := dataprep.FitNormalizer(series)
	normed := norm.Transform(series)
	target := int(trace.CPUUtilPercent)

	runSet := func(label string, sel [][]float64, seed uint64) error {
		ds, err := dataprep.BuildSupervised(sel, dataprep.WindowConfig{
			Window: o.Window, Horizon: o.Horizon, Target: 0,
		})
		if err != nil {
			return err
		}
		tr, va, te, err := train.Split(ds, 0.6, 0.2)
		if err != nil {
			return err
		}
		truth := make([]float64, te.Len())
		for i := range truth {
			truth[i] = te.Y.Data[i*o.Horizon]
		}
		p := &preparedData{tr: tr, va: va, te: te, channels: len(sel), testTruth: truth}
		out.add(label, runRPTCNVariant(p, o, baseRPTCNConfig(), seed))
		return nil
	}

	topHalf := dataprep.Select(normed, dataprep.ScreenTopHalf(normed, target))
	all := dataprep.Select(normed, append([]int{target}, others(target, len(normed))...))
	uni := dataprep.Select(normed, []int{target})
	if err := runSet("top-half by |PCC| (paper)", topHalf, o.Seed+11); err != nil {
		return nil, err
	}
	if err := runSet("all indicators", all, o.Seed+12); err != nil {
		return nil, err
	}
	if err := runSet("target only", uni, o.Seed+13); err != nil {
		return nil, err
	}
	return out, nil
}

func others(target, n int) []int {
	var out []int
	for i := 0; i < n; i++ {
		if i != target {
			out = append(out, i)
		}
	}
	return out
}

// RunAblationFutureWork evaluates the two expansion improvements the
// paper's Sec. V-C proposes as future work — first-order difference
// channels and correlation-weighted expansion factors — against the
// published Fig. 4b method, using the full Predictor pipeline.
func RunAblationFutureWork(o Options) (*AblationResult, error) {
	o = o.withDefaults()
	e := Generate1(trace.Container, o)
	out := &AblationResult{Title: "Future work: expansion strategies (containers, Mul-Exp)", Results: map[string]metrics.Report{}}
	for i, mode := range []core.ExpansionMode{core.ExpandLags, core.ExpandLagsDiff, core.ExpandWeighted} {
		p := core.NewPredictor(core.PredictorConfig{
			Scenario:     core.MulExp,
			Expansion:    mode,
			Window:       o.Window,
			Horizon:      o.Horizon,
			ExpandFactor: o.ExpandFactor,
			Epochs:       o.Epochs,
			LearningRate: 2e-3,
			Seed:         o.Seed + uint64(i)*401,
			Model:        baseRPTCNConfig(),
		})
		if err := p.Fit(e.Matrix(), int(trace.CPUUtilPercent)); err != nil {
			return nil, err
		}
		rep, err := p.TestMetrics()
		if err != nil {
			return nil, err
		}
		out.add("expansion="+mode.String(), rep)
	}
	return out, nil
}

// RunHorizonSweep measures RPTCN accuracy as the forecast horizon grows —
// the "long-term prediction" axis of the paper's claims. Unlike the other
// studies (which score the first step, as Table II does), this one scores
// every one of the k predicted steps, so error growth with lead time is
// visible.
func RunHorizonSweep(o Options, horizons []int) (*AblationResult, error) {
	o = o.withDefaults()
	if len(horizons) == 0 {
		horizons = []int{1, 3, 6, 12}
	}
	e := Generate1(trace.Machine, o)
	out := &AblationResult{Title: "Horizon sweep: RPTCN all-step accuracy (machines, Mul-Exp)", Results: map[string]metrics.Report{}}
	for i, h := range horizons {
		oo := o
		oo.Horizon = h
		p, err := prepareScenario(e, core.MulExp, oo)
		if err != nil {
			return nil, err
		}
		cfg := baseRPTCNConfig()
		cfg.InChannels = p.channels
		cfg.Horizon = h
		m := core.NewModel(tensor.NewRNG(o.Seed+uint64(i)*211), cfg)
		train.Fit(m, p.tr, p.va, deepTrainConfigLR(oo, o.Seed+uint64(i)*211+100, 2e-3))
		rows := train.PredictAll(m, p.te)
		preds := make([]float64, 0, len(rows)*h)
		for _, row := range rows {
			preds = append(preds, row...)
		}
		out.add(fmt.Sprintf("k=%d", h), metrics.Evaluate(p.te.Y.Data, preds))
	}
	return out, nil
}
