// Package experiments regenerates every table and figure of the paper's
// evaluation (Table II, Figs. 1–3 and 7–10) on the synthetic Alibaba-like
// trace substrate. Each experiment has a Go function returning structured
// results, a text formatter producing paper-style rows, and a benchmark
// hook in the repository root's bench_test.go.
package experiments

import (
	obstrace "repro/internal/obs/trace"
	"repro/internal/train"
)

// Options controls the scale of every experiment. The zero value is the
// full-fidelity configuration; Fast() returns a reduced configuration for
// benchmarks and smoke tests.
type Options struct {
	Seed uint64
	// Hooks observe every deep-model training run the experiment performs
	// (per-epoch logging/metrics); see train.Hook.
	Hooks []train.Hook
	// Samples is the series length per entity (paper: 8 days @ 10s ≈ 69k;
	// default here 2500 to keep CPU training tractable).
	Samples int
	// Entities is the fleet size for the characterization figures.
	Entities int
	// Window is the model input length L.
	Window int
	// Horizon is the forecast length k.
	Horizon int
	// ExpandFactor is the Mul-Exp horizontal expansion factor.
	ExpandFactor int
	// Epochs bounds deep-model training (early stopping may end sooner).
	Epochs int
	// Rounds is the XGBoost boosting round count.
	Rounds int
	// Tracer records per-run span trees of every deep training run
	// (experiments -trace-out). Nil or disabled costs nothing.
	Tracer *obstrace.Tracer
}

func (o Options) withDefaults() Options {
	if o.Samples == 0 {
		o.Samples = 2500
	}
	if o.Entities == 0 {
		o.Entities = 60
	}
	if o.Window == 0 {
		o.Window = 32
	}
	if o.Horizon == 0 {
		o.Horizon = 1
	}
	if o.ExpandFactor == 0 {
		o.ExpandFactor = 3
	}
	if o.Epochs == 0 {
		o.Epochs = 50
	}
	if o.Rounds == 0 {
		o.Rounds = 120
	}
	return o
}

// Fast returns a reduced configuration (short series, few epochs) that
// exercises every code path in seconds. Use it for benchmarks and tests;
// absolute metric values will be noisier than the full run.
func Fast(seed uint64) Options {
	return Options{
		Seed:     seed,
		Samples:  700,
		Entities: 12,
		Window:   16,
		Epochs:   6,
		Rounds:   40,
	}
}
