package experiments

import (
	"fmt"
	"strings"

	"repro/internal/dataprep"
	"repro/internal/stats"
	"repro/internal/trace"
)

// TableI returns the paper's Table I: the meaning of each monitored
// indicator, in canonical order.
func TableI() string {
	meanings := map[trace.Indicator]string{
		trace.CPUUtilPercent: "cpu utilization percent",
		trace.MemUtilPercent: "memory utilization percent",
		trace.CPI:            "cycles per instruction",
		trace.MemGPS:         "normalized memory gigabyte per second",
		trace.MPKI:           "misses per kilo instructions",
		trace.NetIn:          "normalized incoming network traffic",
		trace.NetOut:         "normalized outgoing network traffic",
		trace.DiskIOPercent:  "disk io percent",
	}
	var b strings.Builder
	b.WriteString("Table I: the meaning of each indicator\n")
	fmt.Fprintf(&b, "%-18s %s\n", "Indicator", "Meaning")
	for _, ind := range trace.AllIndicators() {
		fmt.Fprintf(&b, "%-18s %s\n", ind.String(), meanings[ind])
	}
	return b.String()
}

// Fig1Result carries the high-dynamic container utilization series of
// Fig. 1 (CPU, memory and disk I/O of one container over time).
type Fig1Result struct {
	ID       string
	Interval int
	CPU      []float64
	Mem      []float64
	Disk     []float64
}

// RunFig1 regenerates Fig. 1: the utilization of one representative
// container, demonstrating fluctuation without long-run regularity.
func RunFig1(o Options) Fig1Result {
	o = o.withDefaults()
	e := trace.Generate(trace.GeneratorConfig{
		Entities: 1, Kind: trace.Container, Samples: o.Samples, Seed: o.Seed + 41,
	})[0]
	return Fig1Result{
		ID:       e.ID,
		Interval: e.Interval,
		CPU:      e.Series(trace.CPUUtilPercent),
		Mem:      e.Series(trace.MemUtilPercent),
		Disk:     e.Series(trace.DiskIOPercent),
	}
}

// Format renders a compact text summary (sampled rows).
func (f Fig1Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 1: utilization of container %s (every %d samples)\n", f.ID, len(f.CPU)/20+1)
	fmt.Fprintf(&b, "%8s %8s %8s %8s\n", "t", "cpu%", "mem%", "disk%")
	step := len(f.CPU)/20 + 1
	for t := 0; t < len(f.CPU); t += step {
		fmt.Fprintf(&b, "%8d %8.2f %8.2f %8.2f\n", t, f.CPU[t], f.Mem[t], f.Disk[t])
	}
	return b.String()
}

// Fig2Result carries the per-window boxplot statistics of the fleet's
// average CPU utilization (Fig. 2): one boxplot per 6-hour window plus the
// window means (the red line of the figure).
type Fig2Result struct {
	WindowSamples int // samples per 6h window
	Boxes         []stats.BoxplotStats
}

// RunFig2 regenerates Fig. 2. Each window's sample set is the per-machine
// mean CPU utilization within that window, normalized to [0,1] like the
// paper's y-axis.
func RunFig2(o Options) Fig2Result {
	o = o.withDefaults()
	fleet := trace.Generate(trace.GeneratorConfig{
		Entities: o.Entities, Kind: trace.Machine, Samples: o.Samples, Seed: o.Seed + 42,
	})
	win := windowSamples(fleet[0].Interval, o.Samples)
	var boxes []stats.BoxplotStats
	for lo := 0; lo+win <= o.Samples; lo += win {
		vals := make([]float64, 0, len(fleet))
		for _, e := range fleet {
			vals = append(vals, stats.Mean(e.Series(trace.CPUUtilPercent)[lo:lo+win])/100)
		}
		boxes = append(boxes, stats.Boxplot(vals))
	}
	return Fig2Result{WindowSamples: win, Boxes: boxes}
}

// windowSamples returns the number of samples in a 6-hour window, capped
// so that short (test-scale) traces still produce several windows.
func windowSamples(interval, total int) int {
	win := 6 * 3600 / interval
	if win > total/8 {
		win = total / 8
	}
	if win < 1 {
		win = 1
	}
	return win
}

// Format renders one row per window.
func (f Fig2Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 2: fleet CPU utilization boxplots per %d-sample window\n", f.WindowSamples)
	fmt.Fprintf(&b, "%4s %7s %7s %7s %7s %7s %7s\n", "win", "min", "q1", "median", "q3", "max", "mean")
	for i, bx := range f.Boxes {
		fmt.Fprintf(&b, "%4d %7.3f %7.3f %7.3f %7.3f %7.3f %7.3f\n",
			i, bx.Min, bx.Q1, bx.Median, bx.Q3, bx.Max, bx.Mean)
	}
	return b.String()
}

// Fig3Result carries the fraction of machines under 50% CPU per window
// (Fig. 3).
type Fig3Result struct {
	WindowSamples  int
	FractionUnder  []float64
	OverallAverage float64
}

// RunFig3 regenerates Fig. 3: for each window, the percentage of machines
// whose mean CPU utilization in the window is below 50%.
func RunFig3(o Options) Fig3Result {
	o = o.withDefaults()
	fleet := trace.Generate(trace.GeneratorConfig{
		Entities: o.Entities, Kind: trace.Machine, Samples: o.Samples, Seed: o.Seed + 42,
	})
	win := windowSamples(fleet[0].Interval, o.Samples)
	var fracs []float64
	for lo := 0; lo+win <= o.Samples; lo += win {
		means := make([]float64, 0, len(fleet))
		for _, e := range fleet {
			means = append(means, stats.Mean(e.Series(trace.CPUUtilPercent)[lo:lo+win]))
		}
		fracs = append(fracs, stats.FractionBelow(means, 50))
	}
	return Fig3Result{
		WindowSamples:  win,
		FractionUnder:  fracs,
		OverallAverage: stats.Mean(fracs),
	}
}

// Format renders the per-window fractions.
func (f Fig3Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 3: %% machines under 50%% CPU (avg %.1f%%)\n", f.OverallAverage*100)
	for i, v := range f.FractionUnder {
		fmt.Fprintf(&b, "win %3d: %5.1f%%\n", i, v*100)
	}
	return b.String()
}

// Fig7Result carries the indicator correlation analysis of Fig. 7.
type Fig7Result struct {
	EntityID string
	Names    []string
	Matrix   [][]float64 // PCC matrix in indicator order
	TopFour  []string    // most CPU-correlated indicators (excluding CPU)
}

// RunFig7 regenerates Fig. 7: the Pearson correlation matrix of the eight
// indicators on one container, and the top-four CPU-correlated indicators
// used as the Mul-Exp feature set (the paper finds cpu, mpki, cpi,
// mem_gps).
func RunFig7(o Options) Fig7Result {
	o = o.withDefaults()
	e := trace.Generate(trace.GeneratorConfig{
		Entities: 1, Kind: trace.Container, Samples: o.Samples, Seed: o.Seed + 43,
	})[0]
	series := dataprep.Clean(e.Matrix())
	m := dataprep.CorrelationMatrix(series)
	names := make([]string, trace.NumIndicators)
	for i, ind := range trace.AllIndicators() {
		names[i] = ind.String()
	}
	idx := dataprep.ScreenTopK(series, int(trace.CPUUtilPercent), 4)
	top := make([]string, 0, 4)
	for _, i := range idx {
		top = append(top, trace.Indicator(i).String())
	}
	return Fig7Result{EntityID: e.ID, Names: names, Matrix: m, TopFour: top}
}

// Format renders the matrix as a heatmap-style table.
func (f Fig7Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 7: indicator correlation on %s\n", f.EntityID)
	fmt.Fprintf(&b, "%-18s", "")
	for _, n := range f.Names {
		fmt.Fprintf(&b, "%8.7s", n)
	}
	b.WriteString("\n")
	for i, row := range f.Matrix {
		fmt.Fprintf(&b, "%-18s", f.Names[i])
		for _, v := range row {
			fmt.Fprintf(&b, "%8.3f", v)
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "Top-4 CPU-correlated: %s\n", strings.Join(f.TopFour, ", "))
	return b.String()
}
