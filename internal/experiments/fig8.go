package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Fig8Result carries the predicted-vs-true comparison around an abrupt
// mutation point (Fig. 8), in the Mul-Exp scenario.
type Fig8Result struct {
	// MutationAt is the sample index of the step change within the test
	// segment (the paper's plot shows it near sample 350).
	MutationAt int
	Truth      []float64
	Preds      map[ModelName][]float64
	Reports    map[ModelName]metrics.Report
	// PostMutationMAE measures tracking accuracy in the window right after
	// the step, where the paper observes baselines fail to correct.
	PostMutationMAE map[ModelName]float64
}

// RunFig8 regenerates Fig. 8: a machine whose CPU steps up abruptly inside
// the test segment; every model trains on the pre-mutation regime and is
// judged on how it tracks the new one.
func RunFig8(o Options) (*Fig8Result, error) {
	o = o.withDefaults()
	// Place the mutation 350 test samples after the test segment starts
	// (clamped for fast configurations).
	nWindows := o.Samples - (o.ExpandFactor - 1) - o.Window - o.Horizon + 1
	testStartWindow := int(float64(nWindows)*0.8) + 1
	offset := 350
	if offset > (nWindows-testStartWindow)/2 {
		offset = (nWindows - testStartWindow) / 2
	}
	// Window i's first-step target sits at raw index i+Window (within the
	// expanded/trimmed series), i.e. i+Window+(factor−1) in the raw series.
	mutationRaw := testStartWindow + offset + o.Window + (o.ExpandFactor - 1)
	e := trace.GenerateWithMutation(o.Samples, mutationRaw, o.Seed+44)

	p, err := prepareScenario(e, core.MulExp, o)
	if err != nil {
		return nil, err
	}
	res := &Fig8Result{
		MutationAt:      offset,
		Truth:           p.testTruth,
		Preds:           map[ModelName][]float64{},
		Reports:         map[ModelName]metrics.Report{},
		PostMutationMAE: map[ModelName]float64{},
	}
	for mi, name := range []ModelName{ModelARIMA, ModelLSTM, ModelCNNLSTM, ModelXGBoost, ModelRPTCN} {
		r := runModel(name, p, o, o.Seed+uint64(mi)*104729)
		res.Preds[name] = r.Preds
		res.Reports[name] = r.Report
		lo := offset
		hi := offset + 100
		if hi > len(p.testTruth) {
			hi = len(p.testTruth)
		}
		if lo < hi && lo < len(r.Preds) {
			res.PostMutationMAE[name] = metrics.MAE(p.testTruth[lo:hi], r.Preds[lo:hi])
		}
	}
	return res, nil
}

// StepSize returns the truth's mean level change across the mutation.
func (f *Fig8Result) StepSize() float64 {
	if f.MutationAt <= 0 || f.MutationAt >= len(f.Truth) {
		return 0
	}
	pre := f.Truth[:f.MutationAt]
	post := f.Truth[f.MutationAt:]
	return stats.Mean(post) - stats.Mean(pre)
}

// Format renders the per-model accuracy around the mutation.
func (f *Fig8Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 8: mutation tracking (step of %+.3f normalized CPU at test sample %d)\n",
		f.StepSize(), f.MutationAt)
	fmt.Fprintf(&b, "%-9s %12s %12s %16s\n", "Model", "test MSE", "test MAE", "post-step MAE")
	for _, name := range []ModelName{ModelARIMA, ModelLSTM, ModelCNNLSTM, ModelXGBoost, ModelRPTCN} {
		r := f.Reports[name]
		fmt.Fprintf(&b, "%-9s %12.5f %12.5f %16.5f\n", name, r.MSE, r.MAE, f.PostMutationMAE[name])
	}
	return b.String()
}

// Fig9Result carries the training-loss convergence curves on containers
// (Fig. 9); Fig10Result the validation-loss curves on machines (Fig. 10).
type Fig9Result struct {
	Curves map[ModelName][]float64
}

// Fig10Result is the Fig. 10 counterpart (validation loss on machines).
type Fig10Result struct {
	Curves map[ModelName][]float64
}

// convergenceModels are the models whose loss curves the figures compare.
var convergenceModels = []ModelName{ModelLSTM, ModelCNNLSTM, ModelXGBoost, ModelRPTCN}

// RunFig9 regenerates Fig. 9: per-epoch TRAINING loss of each deep model
// (and per-round training loss for XGBoost) on a container workload,
// Mul-Exp scenario.
func RunFig9(o Options) (*Fig9Result, error) {
	o = o.withDefaults()
	curves, err := convergenceCurves(trace.Container, o, false)
	if err != nil {
		return nil, err
	}
	return &Fig9Result{Curves: curves}, nil
}

// RunFig10 regenerates Fig. 10: per-epoch VALIDATION loss on a machine
// workload, Mul-Exp scenario.
func RunFig10(o Options) (*Fig10Result, error) {
	o = o.withDefaults()
	curves, err := convergenceCurves(trace.Machine, o, true)
	if err != nil {
		return nil, err
	}
	return &Fig10Result{Curves: curves}, nil
}

func convergenceCurves(kind trace.EntityKind, o Options, valid bool) (map[ModelName][]float64, error) {
	entity := Generate1(kind, o)
	p, err := prepareScenario(entity, core.MulExp, o)
	if err != nil {
		return nil, err
	}
	out := map[ModelName][]float64{}
	for mi, name := range convergenceModels {
		r := runModel(name, p, o, o.Seed+uint64(mi)*31337)
		if valid {
			out[name] = r.ValidLoss
		} else {
			out[name] = r.TrainLoss
		}
	}
	return out, nil
}

func formatCurves(title string, curves map[ModelName][]float64) string {
	var b strings.Builder
	b.WriteString(title + "\n")
	maxLen := 0
	for _, c := range curves {
		if len(c) > maxLen {
			maxLen = len(c)
		}
	}
	fmt.Fprintf(&b, "%-6s", "epoch")
	for _, name := range convergenceModels {
		fmt.Fprintf(&b, "%12s", name)
	}
	b.WriteString("\n")
	for i := 0; i < maxLen; i++ {
		fmt.Fprintf(&b, "%-6d", i)
		for _, name := range convergenceModels {
			c := curves[name]
			if i < len(c) {
				fmt.Fprintf(&b, "%12.6f", c[i])
			} else {
				fmt.Fprintf(&b, "%12s", "-")
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Format renders the Fig. 9 curves.
func (f *Fig9Result) Format() string {
	return formatCurves("Fig. 9: training-loss convergence on containers (Mul-Exp)", f.Curves)
}

// Format renders the Fig. 10 curves.
func (f *Fig10Result) Format() string {
	return formatCurves("Fig. 10: validation loss on machines (Mul-Exp)", f.Curves)
}
