package experiments

import (
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/trace"
)

func TestFastOptionsFillDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Samples == 0 || o.Window == 0 || o.Epochs == 0 || o.Horizon != 1 {
		t.Fatalf("defaults not filled: %+v", o)
	}
	f := Fast(1)
	if f.Samples >= o.Samples {
		t.Fatal("Fast should reduce sample count")
	}
}

func TestRunFig1SeriesPresent(t *testing.T) {
	r := RunFig1(Fast(1))
	if len(r.CPU) == 0 || len(r.CPU) != len(r.Mem) || len(r.CPU) != len(r.Disk) {
		t.Fatalf("Fig1 series lengths: %d/%d/%d", len(r.CPU), len(r.Mem), len(r.Disk))
	}
	if !strings.Contains(r.Format(), "Fig. 1") {
		t.Fatal("Format missing title")
	}
}

func TestRunFig2BoxesOrdered(t *testing.T) {
	r := RunFig2(Fast(2))
	if len(r.Boxes) < 4 {
		t.Fatalf("Fig2 windows = %d, want several", len(r.Boxes))
	}
	for _, bx := range r.Boxes {
		if !(bx.Q1 <= bx.Median && bx.Median <= bx.Q3) {
			t.Fatalf("quartiles out of order: %+v", bx)
		}
		if bx.Mean < 0 || bx.Mean > 1 {
			t.Fatalf("normalized mean out of [0,1]: %g", bx.Mean)
		}
	}
	// Fig. 2 claim: upper quartile mostly below 0.6.
	below := 0
	for _, bx := range r.Boxes {
		if bx.Q3 < 0.6 {
			below++
		}
	}
	if below*2 < len(r.Boxes) {
		t.Fatalf("only %d/%d windows with Q3 < 0.6", below, len(r.Boxes))
	}
}

func TestRunFig3MajorityUnderHalf(t *testing.T) {
	r := RunFig3(Fast(3))
	if len(r.FractionUnder) == 0 {
		t.Fatal("no windows")
	}
	if r.OverallAverage < 0.7 {
		t.Fatalf("average fraction under 50%% CPU = %g, want >= 0.7 (Fig. 3 shape)", r.OverallAverage)
	}
	if !strings.Contains(r.Format(), "Fig. 3") {
		t.Fatal("Format missing title")
	}
}

func TestRunFig7TopFourMatchesPaper(t *testing.T) {
	o := Fast(4)
	o.Samples = 2000 // enough for stable correlations
	r := RunFig7(o)
	if len(r.Matrix) != trace.NumIndicators {
		t.Fatalf("matrix size %d", len(r.Matrix))
	}
	// Diagonal must be 1.
	for i := range r.Matrix {
		if math.Abs(r.Matrix[i][i]-1) > 1e-9 {
			t.Fatalf("diagonal[%d] = %g", i, r.Matrix[i][i])
		}
	}
	// Paper's finding: top four are cpu, mpki, cpi, mem_gps.
	want := map[string]bool{"cpu_util_percent": true, "mpki": true, "cpi": true, "mem_gps": true}
	if len(r.TopFour) != 4 {
		t.Fatalf("top four = %v", r.TopFour)
	}
	for _, n := range r.TopFour {
		if !want[n] {
			t.Fatalf("top four %v does not match the paper's {cpu, mpki, cpi, mem_gps}", r.TopFour)
		}
	}
}

func TestPrepareScenarioChannelCounts(t *testing.T) {
	o := Fast(5).withDefaults()
	e := Generate1(trace.Container, o)
	uni, err := prepareScenario(e, core.Uni, o)
	if err != nil {
		t.Fatal(err)
	}
	if uni.channels != 1 {
		t.Fatalf("Uni channels = %d", uni.channels)
	}
	mul, err := prepareScenario(e, core.Mul, o)
	if err != nil {
		t.Fatal(err)
	}
	if mul.channels != trace.NumIndicators/2 {
		t.Fatalf("Mul channels = %d", mul.channels)
	}
	exp, err := prepareScenario(e, core.MulExp, o)
	if err != nil {
		t.Fatal(err)
	}
	if exp.channels != mul.channels*o.ExpandFactor {
		t.Fatalf("Mul-Exp channels = %d, want %d", exp.channels, mul.channels*o.ExpandFactor)
	}
	// Split proportions: train ≈ 3× test.
	if uni.tr.Len() < uni.te.Len()*2 {
		t.Fatal("train/test proportions wrong")
	}
}

func TestRunModelAllNamesProduceFiniteMetrics(t *testing.T) {
	o := Fast(6).withDefaults()
	e := Generate1(trace.Container, o)
	p, err := prepareScenario(e, core.Uni, o)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []ModelName{ModelARIMA, ModelLSTM, ModelCNNLSTM, ModelXGBoost, ModelRPTCN} {
		r := runModel(name, p, o, 7)
		if math.IsNaN(r.Report.MSE) || math.IsInf(r.Report.MSE, 0) || r.Report.MSE < 0 {
			t.Fatalf("%s MSE = %g", name, r.Report.MSE)
		}
		if len(r.Preds) != len(p.testTruth) {
			t.Fatalf("%s predictions = %d, want %d", name, len(r.Preds), len(p.testTruth))
		}
	}
}

func TestRunTableIIStructureAndSanity(t *testing.T) {
	if testing.Short() {
		t.Skip("table II is expensive")
	}
	res, err := RunTableII(Fast(7))
	if err != nil {
		t.Fatal(err)
	}
	// Every expected cell must exist with finite values.
	for _, sc := range []core.Scenario{core.Uni, core.Mul, core.MulExp} {
		for _, name := range tableIIModels(sc) {
			for _, kind := range []trace.EntityKind{trace.Container, trace.Machine} {
				c, ok := res.Results[sc][name][kind]
				if !ok {
					t.Fatalf("missing cell %s/%s/%s", sc, name, kind)
				}
				if math.IsNaN(c.MSE) || c.MSE <= 0 || c.MSE > 1 {
					t.Fatalf("cell %s/%s/%s MSE = %g", sc, name, kind, c.MSE)
				}
				if c.MAE*c.MAE > c.MSE+1e-9 {
					t.Fatalf("cell %s/%s/%s violates MAE² <= MSE", sc, name, kind)
				}
			}
		}
	}
	txt := res.Format()
	if !strings.Contains(txt, "RPTCN") || !strings.Contains(txt, "Mul-Exp") {
		t.Fatal("Format missing expected rows")
	}
	csv := res.CSV()
	if !strings.Contains(csv, "scenario,model,kind,mse,mae") {
		t.Fatal("CSV header missing")
	}
	if got := strings.Count(csv, "\n"); got != 1+2*(5+4+4) {
		t.Fatalf("CSV rows = %d", got)
	}
	name, best := res.Best(core.MulExp, trace.Machine)
	if name == "" || best.MSE <= 0 {
		t.Fatal("Best returned nothing")
	}
}

func TestRunFig8MutationTracked(t *testing.T) {
	if testing.Short() {
		t.Skip("fig 8 is expensive")
	}
	o := Fast(8)
	o.Samples = 1200
	o.Epochs = 8
	res, err := RunFig8(o)
	if err != nil {
		t.Fatal(err)
	}
	if res.StepSize() < 0.15 {
		t.Fatalf("mutation step = %g normalized, want a visible step", res.StepSize())
	}
	for _, name := range []ModelName{ModelARIMA, ModelRPTCN} {
		if len(res.Preds[name]) != len(res.Truth) {
			t.Fatalf("%s preds length mismatch", name)
		}
	}
	if !strings.Contains(res.Format(), "post-step MAE") {
		t.Fatal("Format missing post-step column")
	}
}

func TestRunFig9And10CurvesPresent(t *testing.T) {
	if testing.Short() {
		t.Skip("convergence figs are expensive")
	}
	o := Fast(9)
	f9, err := RunFig9(o)
	if err != nil {
		t.Fatal(err)
	}
	f10, err := RunFig10(o)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range convergenceModels {
		if len(f9.Curves[name]) == 0 || len(f10.Curves[name]) == 0 {
			t.Fatalf("missing curve for %s", name)
		}
		for _, v := range f9.Curves[name] {
			if math.IsNaN(v) || v < 0 {
				t.Fatalf("%s train loss %g", name, v)
			}
		}
	}
	if !strings.Contains(f9.Format(), "Fig. 9") || !strings.Contains(f10.Format(), "Fig. 10") {
		t.Fatal("Format titles wrong")
	}
}

func TestAblationsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations are expensive")
	}
	o := Fast(10)
	for _, run := range []func(Options) (*AblationResult, error){
		RunAblationHeads, RunAblationExpansion, RunAblationDilations,
		RunAblationWeightNorm, RunAblationScreening, RunAblationFutureWork,
	} {
		res, err := run(o)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Order) < 2 {
			t.Fatalf("%s: too few variants", res.Title)
		}
		for _, k := range res.Order {
			r := res.Results[k]
			if math.IsNaN(r.MSE) || r.MSE <= 0 {
				t.Fatalf("%s / %s: MSE = %g", res.Title, k, r.MSE)
			}
		}
		if !strings.Contains(res.Format(), "variant") {
			t.Fatal("ablation format broken")
		}
	}
}

func TestGeneralizationTransfers(t *testing.T) {
	if testing.Short() {
		t.Skip("generalization is expensive")
	}
	res, err := RunGeneralization(Fast(12), 1)
	if err != nil {
		t.Fatal(err)
	}
	// 2 containers + 2 machines.
	if len(res.PerEntity) != 4 {
		t.Fatalf("entities = %d", len(res.PerEntity))
	}
	for _, r := range res.PerEntity {
		if math.IsNaN(r.Report.MSE) || r.Report.MSE <= 0 {
			t.Fatalf("%s MSE = %g", r.EntityID, r.Report.MSE)
		}
	}
	// A consistent configuration should keep per-kind MSE within a modest
	// factor across entities (generous bound for the fast config).
	if res.ContainerSpread > 50 || res.MachineSpread > 50 {
		t.Fatalf("spreads = %g / %g — configuration does not generalize",
			res.ContainerSpread, res.MachineSpread)
	}
	if !strings.Contains(res.Format(), "Generalization") {
		t.Fatal("Format missing title")
	}
}

func TestNaiveComparisonRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("naive comparison trains RPTCN")
	}
	res, err := RunNaiveComparison(Fast(14), trace.Container)
	if err != nil {
		t.Fatal(err)
	}
	// 5 naive + ARIMA + RPTCN.
	if len(res.Order) != 7 {
		t.Fatalf("models = %v", res.Order)
	}
	for _, k := range res.Order {
		r := res.Results[k]
		if math.IsNaN(r.MSE) || r.MSE <= 0 {
			t.Fatalf("%s MSE = %g", k, r.MSE)
		}
	}
	// Persistence must be a serious baseline on 10s-resolution data: its
	// MSE should be within 10x of the best model's.
	best := math.Inf(1)
	for _, k := range res.Order {
		if r := res.Results[k].MSE; r < best {
			best = r
		}
	}
	if res.Results["persistence"].MSE > best*10 {
		t.Fatalf("persistence implausibly bad: %g vs best %g", res.Results["persistence"].MSE, best)
	}
	if !strings.Contains(res.Format(), "Reference forecasters") {
		t.Fatal("Format missing title")
	}
}

func TestTimingStudyRows(t *testing.T) {
	if testing.Short() {
		t.Skip("timing study is expensive")
	}
	res, err := RunTimingStudy(Fast(13))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) < 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.Params <= 0 || r.ReceptiveField <= 0 || r.EpochTime <= 0 || r.InferLatency <= 0 {
			t.Fatalf("bad timing row: %+v", r)
		}
	}
	// Larger kernels widen the receptive field.
	if res.Rows[2].ReceptiveField <= res.Rows[0].ReceptiveField {
		t.Fatal("k=5 receptive field should exceed k=2")
	}
	if len(res.Profiles) != 2 {
		t.Fatalf("profiles = %d, want RPTCN + LSTM", len(res.Profiles))
	}
	for _, prof := range res.Profiles {
		if len(prof.Layers) == 0 {
			t.Fatalf("%s: empty layer breakdown", prof.Label)
		}
		for _, l := range prof.Layers {
			if l.FwdCalls == 0 || l.BwdCalls == 0 {
				t.Fatalf("%s: layer %q never trained: %+v", prof.Label, l.Name, l)
			}
		}
	}
	out := res.Format()
	for _, want := range []string{"Timing study", "Per-layer breakdown", "tcn[0]", "attention", "0:lstm"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Format missing %q:\n%s", want, out)
		}
	}
}

func TestHorizonSweepDegradesGracefully(t *testing.T) {
	if testing.Short() {
		t.Skip("horizon sweep is expensive")
	}
	res, err := RunHorizonSweep(Fast(11), []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Order) != 2 {
		t.Fatalf("variants = %v", res.Order)
	}
	for _, k := range res.Order {
		if math.IsNaN(res.Results[k].MSE) {
			t.Fatalf("%s NaN", k)
		}
	}
}
