package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/tensor"
	"repro/internal/trace"
	"repro/internal/train"
)

// TimingRow reports the cost of one RPTCN configuration: parameter count,
// time per training epoch, and per-window inference latency — the study
// the paper's Sec. V-C proposes as future work ("explore the influence of
// TCNs parameters on the running time of this model ... apply the model to
// the real-time resource usage prediction").
//
// InferLatency is the mean; InferP50/InferP99 come from an obs.Histogram
// over the individual repetitions, because real-time serving cares about
// the tail, not the mean.
type TimingRow struct {
	Label          string
	Params         int
	ReceptiveField int
	EpochTime      time.Duration
	InferLatency   time.Duration
	InferP50       time.Duration
	InferP99       time.Duration
}

// LayerProfile is the per-layer forward/backward cost breakdown of one
// model over a training epoch, captured through nn.Profiler.
type LayerProfile struct {
	Label  string
	Layers []nn.LayerStats
	Table  string // rendered nn.Profiler table
}

// TimingStudy is the collection of measured configurations.
type TimingStudy struct {
	Rows []TimingRow
	// Profiles breaks one training epoch down by layer for the paper's
	// architecture and the LSTM baseline, locating where the per-epoch
	// budget actually goes (conv stack vs heads vs recurrent cell).
	Profiles []LayerProfile
}

// RunTimingStudy measures training and inference cost across kernel sizes,
// dilation depths, and channel widths on a fixed synthetic workload.
func RunTimingStudy(o Options) (*TimingStudy, error) {
	o = o.withDefaults()
	e := Generate1(trace.Container, o)
	p, err := prepareScenario(e, core.MulExp, o)
	if err != nil {
		return nil, err
	}
	study := &TimingStudy{}
	type variant struct {
		label    string
		channels []int
		kernel   int
	}
	variants := []variant{
		{"k=2, 3 blocks x16", []int{16, 16, 16}, 2},
		{"k=3, 3 blocks x16", []int{16, 16, 16}, 3},
		{"k=5, 3 blocks x16", []int{16, 16, 16}, 5},
		{"k=3, 1 block  x16", []int{16}, 3},
		{"k=3, 4 blocks x16", []int{16, 16, 16, 16}, 3},
		{"k=3, 3 blocks x32", []int{32, 32, 32}, 3},
	}
	for vi, v := range variants {
		m := core.NewModel(tensor.NewRNG(o.Seed+uint64(vi)), core.Config{
			InChannels: p.channels,
			Channels:   v.channels,
			KernelSize: v.kernel,
			Dropout:    0.1,
			WeightNorm: true,
			FCWidth:    32,
			Horizon:    o.Horizon,
		})
		row := TimingRow{
			Label:          v.label,
			Params:         nn.ParamCount(m),
			ReceptiveField: m.ReceptiveField(),
		}
		// One timed training epoch.
		cfg := deepTrainConfig(o, o.Seed)
		cfg.Epochs = 1
		cfg.Patience = 0
		start := time.Now()
		train.Fit(m, p.tr, p.va, cfg)
		row.EpochTime = time.Since(start)
		// Inference latency on a single window: per-rep observations into
		// a histogram so the table can report the distribution, not just
		// the mean (tail latency is what real-time serving budgets for).
		x := p.te.Subset(0, 1)
		const reps = 50
		hist := obs.NewHistogram(obs.ExponentialBuckets(1e-6, 2, 26)) // 1 µs .. ~33 s
		for i := 0; i < reps; i++ {
			t0 := time.Now()
			m.Forward(x.X, false)
			hist.Observe(time.Since(t0).Seconds())
		}
		row.InferLatency = secondsToDuration(hist.Mean())
		row.InferP50 = secondsToDuration(hist.Quantile(0.5))
		row.InferP99 = secondsToDuration(hist.Quantile(0.99))
		study.Rows = append(study.Rows, row)
	}

	// Per-layer breakdown of one training epoch: the paper's reference
	// RPTCN against the LSTM baseline.
	rptcnProf := nn.NewProfiler()
	rptcn := core.NewModel(tensor.NewRNG(o.Seed), core.Config{
		InChannels: p.channels,
		KernelSize: 3,
		Dropout:    0.1,
		WeightNorm: true,
		FCWidth:    32,
		Horizon:    o.Horizon,
	})
	rptcn.Profile(rptcnProf)
	study.Profiles = append(study.Profiles,
		profileEpoch("RPTCN (k=3, 3 blocks x16)", rptcn, rptcnProf, p, o))

	lstmProf := nn.NewProfiler()
	lstm := models.NewLSTM(tensor.NewRNG(o.Seed), models.LSTMConfig{
		InChannels: p.channels,
		Horizon:    o.Horizon,
	})
	if seq, ok := lstm.(*nn.Sequential); ok {
		lstmProf.WrapSequential(seq)
	}
	study.Profiles = append(study.Profiles,
		profileEpoch("LSTM baseline", lstm, lstmProf, p, o))
	return study, nil
}

// profileEpoch trains model for one epoch with prof's wrappers in place
// and returns the captured per-layer breakdown.
func profileEpoch(label string, model nn.Layer, prof *nn.Profiler, p *preparedData, o Options) LayerProfile {
	cfg := deepTrainConfig(o, o.Seed)
	cfg.Epochs = 1
	cfg.Patience = 0
	train.Fit(model, p.tr, p.va, cfg)
	return LayerProfile{Label: label, Layers: prof.Stats(), Table: prof.Table()}
}

func secondsToDuration(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}

// Format renders the timing table.
func (s *TimingStudy) Format() string {
	var b strings.Builder
	b.WriteString("Timing study: RPTCN parameters vs training/inference cost (future work, Sec. V-C)\n")
	fmt.Fprintf(&b, "%-20s %10s %6s %14s %14s %12s %12s\n",
		"variant", "params", "rf", "epoch time", "infer mean", "infer p50", "infer p99")
	for _, r := range s.Rows {
		fmt.Fprintf(&b, "%-20s %10d %6d %14s %14s %12s %12s\n",
			r.Label, r.Params, r.ReceptiveField,
			r.EpochTime.Round(time.Millisecond), r.InferLatency.Round(time.Microsecond),
			r.InferP50.Round(time.Microsecond), r.InferP99.Round(time.Microsecond))
	}
	for _, p := range s.Profiles {
		fmt.Fprintf(&b, "\nPer-layer breakdown, one training epoch: %s\n%s", p.Label, p.Table)
	}
	return b.String()
}
