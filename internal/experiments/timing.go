package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/tensor"
	"repro/internal/trace"
	"repro/internal/train"
)

// TimingRow reports the cost of one RPTCN configuration: parameter count,
// time per training epoch, and per-window inference latency — the study
// the paper's Sec. V-C proposes as future work ("explore the influence of
// TCNs parameters on the running time of this model ... apply the model to
// the real-time resource usage prediction").
//
// InferLatency is the mean; InferP50/InferP99 come from an obs.Histogram
// over the individual repetitions, because real-time serving cares about
// the tail, not the mean.
type TimingRow struct {
	Label          string
	Params         int
	ReceptiveField int
	EpochTime      time.Duration
	InferLatency   time.Duration
	InferP50       time.Duration
	InferP99       time.Duration
}

// TimingStudy is the collection of measured configurations.
type TimingStudy struct {
	Rows []TimingRow
}

// RunTimingStudy measures training and inference cost across kernel sizes,
// dilation depths, and channel widths on a fixed synthetic workload.
func RunTimingStudy(o Options) (*TimingStudy, error) {
	o = o.withDefaults()
	e := Generate1(trace.Container, o)
	p, err := prepareScenario(e, core.MulExp, o)
	if err != nil {
		return nil, err
	}
	study := &TimingStudy{}
	type variant struct {
		label    string
		channels []int
		kernel   int
	}
	variants := []variant{
		{"k=2, 3 blocks x16", []int{16, 16, 16}, 2},
		{"k=3, 3 blocks x16", []int{16, 16, 16}, 3},
		{"k=5, 3 blocks x16", []int{16, 16, 16}, 5},
		{"k=3, 1 block  x16", []int{16}, 3},
		{"k=3, 4 blocks x16", []int{16, 16, 16, 16}, 3},
		{"k=3, 3 blocks x32", []int{32, 32, 32}, 3},
	}
	for vi, v := range variants {
		m := core.NewModel(tensor.NewRNG(o.Seed+uint64(vi)), core.Config{
			InChannels: p.channels,
			Channels:   v.channels,
			KernelSize: v.kernel,
			Dropout:    0.1,
			WeightNorm: true,
			FCWidth:    32,
			Horizon:    o.Horizon,
		})
		row := TimingRow{
			Label:          v.label,
			Params:         nn.ParamCount(m),
			ReceptiveField: m.ReceptiveField(),
		}
		// One timed training epoch.
		cfg := deepTrainConfig(o, o.Seed)
		cfg.Epochs = 1
		cfg.Patience = 0
		start := time.Now()
		train.Fit(m, p.tr, p.va, cfg)
		row.EpochTime = time.Since(start)
		// Inference latency on a single window: per-rep observations into
		// a histogram so the table can report the distribution, not just
		// the mean (tail latency is what real-time serving budgets for).
		x := p.te.Subset(0, 1)
		const reps = 50
		hist := obs.NewHistogram(obs.ExponentialBuckets(1e-6, 2, 26)) // 1 µs .. ~33 s
		for i := 0; i < reps; i++ {
			t0 := time.Now()
			m.Forward(x.X, false)
			hist.Observe(time.Since(t0).Seconds())
		}
		row.InferLatency = secondsToDuration(hist.Mean())
		row.InferP50 = secondsToDuration(hist.Quantile(0.5))
		row.InferP99 = secondsToDuration(hist.Quantile(0.99))
		study.Rows = append(study.Rows, row)
	}
	return study, nil
}

func secondsToDuration(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}

// Format renders the timing table.
func (s *TimingStudy) Format() string {
	var b strings.Builder
	b.WriteString("Timing study: RPTCN parameters vs training/inference cost (future work, Sec. V-C)\n")
	fmt.Fprintf(&b, "%-20s %10s %6s %14s %14s %12s %12s\n",
		"variant", "params", "rf", "epoch time", "infer mean", "infer p50", "infer p99")
	for _, r := range s.Rows {
		fmt.Fprintf(&b, "%-20s %10d %6d %14s %14s %12s %12s\n",
			r.Label, r.Params, r.ReceptiveField,
			r.EpochTime.Round(time.Millisecond), r.InferLatency.Round(time.Microsecond),
			r.InferP50.Round(time.Microsecond), r.InferP99.Round(time.Microsecond))
	}
	return b.String()
}
