package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// GeneralizationResult measures the paper's Sec. V-C generalization claim:
// the same RPTCN configuration (architecture + hyperparameters, no
// per-entity tuning) is trained on several different entities of both
// kinds and must deliver consistent accuracy on each — "the model has good
// generalization and can be widely used in similar resource prediction
// scenarios".
type GeneralizationResult struct {
	PerEntity []EntityReport
	// Spread is max(MSE)/min(MSE) across entities of the same kind; a
	// small spread indicates the configuration transfers without tuning.
	ContainerSpread float64
	MachineSpread   float64
}

// EntityReport pairs an entity with its held-out test accuracy.
type EntityReport struct {
	EntityID string
	Kind     trace.EntityKind
	Report   metrics.Report
}

// RunGeneralization trains one RPTCN (Mul-Exp, fixed configuration) per
// entity on `others`+1 containers and the same number of machines, and
// reports per-entity held-out accuracy.
func RunGeneralization(o Options, others int) (*GeneralizationResult, error) {
	o = o.withDefaults()
	if others < 1 {
		others = 3
	}
	res := &GeneralizationResult{}
	for _, kind := range []trace.EntityKind{trace.Container, trace.Machine} {
		fleet := trace.Generate(trace.GeneratorConfig{
			Entities: others + 1, Kind: kind, Samples: o.Samples, Seed: o.Seed + 45 + uint64(kind),
		})
		lo, hi := 0.0, 0.0
		for i, e := range fleet {
			p := core.NewPredictor(core.PredictorConfig{
				Scenario:     core.MulExp,
				Window:       o.Window,
				Horizon:      o.Horizon,
				ExpandFactor: o.ExpandFactor,
				Epochs:       o.Epochs,
				LearningRate: 2e-3,
				Seed:         o.Seed + uint64(i)*17,
				Model:        baseRPTCNConfig(),
			})
			if err := p.Fit(e.Matrix(), int(trace.CPUUtilPercent)); err != nil {
				return nil, fmt.Errorf("generalization on %s: %w", e.ID, err)
			}
			rep, err := p.TestMetrics()
			if err != nil {
				return nil, err
			}
			res.PerEntity = append(res.PerEntity, EntityReport{EntityID: e.ID, Kind: kind, Report: rep})
			if i == 0 || rep.MSE < lo {
				lo = rep.MSE
			}
			if i == 0 || rep.MSE > hi {
				hi = rep.MSE
			}
		}
		spread := 0.0
		if lo > 0 {
			spread = hi / lo
		}
		if kind == trace.Container {
			res.ContainerSpread = spread
		} else {
			res.MachineSpread = spread
		}
	}
	return res, nil
}

// Format renders per-entity accuracy and the spread summary.
func (g *GeneralizationResult) Format() string {
	var b strings.Builder
	b.WriteString("Generalization: one fixed RPTCN configuration trained per entity (Mul-Exp)\n")
	fmt.Fprintf(&b, "%-10s %-14s %12s %12s\n", "kind", "entity", "MSE", "MAE")
	for _, r := range g.PerEntity {
		fmt.Fprintf(&b, "%-10s %-14s %12.5f %12.5f\n", r.Kind, r.EntityID, r.Report.MSE, r.Report.MAE)
	}
	fmt.Fprintf(&b, "MSE spread (max/min): containers %.2fx, machines %.2fx\n",
		g.ContainerSpread, g.MachineSpread)
	return b.String()
}
