package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/naive"
	"repro/internal/trace"
)

// NaiveComparison pits RPTCN against the classical reference forecasters
// every prediction study should be measured against (persistence, drift,
// moving average, EWMA, Holt) plus ARIMA, all under the same one-step
// rolling evaluation on the same held-out segment. The paper omits these
// baselines; a persistence-competitive model on 10-second resource data is
// a meaningful bar.
type NaiveComparison struct {
	Kind    trace.EntityKind
	Order   []string
	Results map[string]metrics.Report
}

// RunNaiveComparison evaluates the reference forecasters and RPTCN
// (Mul-Exp) on one entity of the given kind.
func RunNaiveComparison(o Options, kind trace.EntityKind) (*NaiveComparison, error) {
	o = o.withDefaults()
	entity := Generate1(kind, o)
	p, err := prepareScenario(entity, core.MulExp, o)
	if err != nil {
		return nil, err
	}
	out := &NaiveComparison{Kind: kind, Results: map[string]metrics.Report{}}

	// The normalized target series aligned with the test truth.
	firstTarget := p.tr.Len() + p.va.Len() + o.Window
	history := p.targetSeries[:firstTarget]
	actuals := p.targetSeries[firstTarget : firstTarget+len(p.testTruth)]

	forecasters := []struct {
		name string
		f    naive.Forecaster
	}{
		{"persistence", &naive.Persistence{}},
		{"drift", &naive.Drift{}},
		{"moving-avg(6)", &naive.MovingAverage{Window: 6}},
		{"ewma(0.5)", &naive.EWMA{Alpha: 0.5}},
		{"holt", &naive.Holt{Alpha: 0.7, Beta: 0.1}},
	}
	for _, fc := range forecasters {
		if err := fc.f.Fit(history); err != nil {
			return nil, fmt.Errorf("naive %s: %w", fc.name, err)
		}
		preds := naive.RollingForecast(fc.f, actuals)
		out.Order = append(out.Order, fc.name)
		out.Results[fc.name] = metrics.Evaluate(p.testTruth, preds)
	}

	arimaRes := runARIMA(p, o)
	out.Order = append(out.Order, "ARIMA(2,0,1)")
	out.Results["ARIMA(2,0,1)"] = arimaRes.Report

	rptcn := runDeep(ModelRPTCN, p, o, o.Seed+991)
	out.Order = append(out.Order, "RPTCN")
	out.Results["RPTCN"] = rptcn.Report
	return out, nil
}

// Format renders the comparison.
func (n *NaiveComparison) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Reference forecasters vs RPTCN (%ss, one-step, normalized scale)\n", n.Kind)
	fmt.Fprintf(&b, "%-14s %12s %12s\n", "model", "MSE", "MAE")
	for _, k := range n.Order {
		r := n.Results[k]
		fmt.Fprintf(&b, "%-14s %12.5f %12.5f\n", k, r.MSE, r.MAE)
	}
	return b.String()
}
