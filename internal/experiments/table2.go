package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/arima"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// Cell is one Table II entry: MSE and MAE on the normalized scale
// (the paper reports both ×10⁻²).
type Cell struct {
	MSE, MAE float64
}

// TableII holds the full accuracy comparison:
// Results[scenario][model][kind] → Cell.
type TableII struct {
	Options Options
	Results map[core.Scenario]map[ModelName]map[trace.EntityKind]Cell
}

// tableIIModels lists which models run in each scenario, mirroring the
// paper's rows (ARIMA appears only in the univariate block).
func tableIIModels(sc core.Scenario) []ModelName {
	if sc == core.Uni {
		return []ModelName{ModelARIMA, ModelLSTM, ModelCNNLSTM, ModelXGBoost, ModelRPTCN}
	}
	return []ModelName{ModelLSTM, ModelXGBoost, ModelCNNLSTM, ModelRPTCN}
}

// TableIIModels exposes the per-scenario model list (for the benchmark
// harness).
func TableIIModels(sc core.Scenario) []ModelName { return tableIIModels(sc) }

// RunTableIICell trains and evaluates a single Table II cell.
func RunTableIICell(o Options, sc core.Scenario, model ModelName, kind trace.EntityKind) (Cell, error) {
	o = o.withDefaults()
	entity := Generate1(kind, o)
	p, err := prepareScenario(entity, sc, o)
	if err != nil {
		return Cell{}, err
	}
	res := runModel(model, p, o, o.Seed)
	return Cell{MSE: res.Report.MSE, MAE: res.Report.MAE}, nil
}

// runARIMA fits ARIMA(2,0,1) on the training+validation prefix of the
// normalized target series and rolls one-step forecasts across the test
// targets, matching the deep models' evaluation protocol.
func runARIMA(p *preparedData, o Options) runResult {
	firstTarget := p.tr.Len() + p.va.Len() + o.Window
	history := p.targetSeries[:firstTarget]
	actuals := p.targetSeries[firstTarget : firstTarget+len(p.testTruth)]
	m, err := arima.Fit(history, arima.Config{P: 2, D: 0, Q: 1})
	if err != nil {
		panic(fmt.Sprintf("experiments: arima fit: %v", err))
	}
	preds := m.RollingForecast(actuals)
	return runResult{Report: metrics.Evaluate(p.testTruth, preds), Preds: preds}
}

// runModel dispatches one (model, prepared data) evaluation.
func runModel(name ModelName, p *preparedData, o Options, seed uint64) runResult {
	switch name {
	case ModelARIMA:
		return runARIMA(p, o)
	case ModelXGBoost:
		return runXGBoost(p, o, seed)
	default:
		return runDeep(name, p, o, seed)
	}
}

// RunTableII regenerates the paper's Table II: every model × scenario ×
// entity kind, reporting test MSE/MAE at the normalized scale.
func RunTableII(o Options) (*TableII, error) {
	o = o.withDefaults()
	t := &TableII{
		Options: o,
		Results: map[core.Scenario]map[ModelName]map[trace.EntityKind]Cell{},
	}
	for _, kind := range []trace.EntityKind{trace.Container, trace.Machine} {
		entity := Generate1(kind, o)
		for _, sc := range []core.Scenario{core.Uni, core.Mul, core.MulExp} {
			p, err := prepareScenario(entity, sc, o)
			if err != nil {
				return nil, fmt.Errorf("preparing %s/%s: %w", kind, sc, err)
			}
			if t.Results[sc] == nil {
				t.Results[sc] = map[ModelName]map[trace.EntityKind]Cell{}
			}
			for mi, name := range tableIIModels(sc) {
				res := runModel(name, p, o, o.Seed+uint64(mi)*7919)
				if t.Results[sc][name] == nil {
					t.Results[sc][name] = map[trace.EntityKind]Cell{}
				}
				t.Results[sc][name][kind] = Cell{MSE: res.Report.MSE, MAE: res.Report.MAE}
			}
		}
	}
	return t, nil
}

// Generate1 produces the representative entity of a kind used across the
// prediction experiments (deterministic in Options.Seed).
func Generate1(kind trace.EntityKind, o Options) *trace.EntitySeries {
	o = o.withDefaults()
	seed := o.Seed*2 + 17
	if kind == trace.Machine {
		seed = o.Seed*2 + 18
	}
	return trace.Generate(trace.GeneratorConfig{
		Entities: 1, Kind: kind, Samples: o.Samples, Seed: seed,
	})[0]
}

// Format renders the table in the paper's layout (values ×10⁻²).
func (t *TableII) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table II: accuracy on the synthetic Alibaba-like trace (values ×10⁻²)\n")
	fmt.Fprintf(&b, "%-8s %-9s | %10s %10s | %10s %10s\n", "Scenario", "Model", "Cont.MSE", "Cont.MAE", "Mach.MSE", "Mach.MAE")
	b.WriteString(strings.Repeat("-", 72) + "\n")
	for _, sc := range []core.Scenario{core.Uni, core.Mul, core.MulExp} {
		for _, name := range tableIIModels(sc) {
			cells := t.Results[sc][name]
			c := cells[trace.Container]
			m := cells[trace.Machine]
			fmt.Fprintf(&b, "%-8s %-9s | %10.4f %10.4f | %10.4f %10.4f\n",
				sc, name, c.MSE*100, c.MAE*100, m.MSE*100, m.MAE*100)
		}
	}
	return b.String()
}

// CSV renders machine-readable rows: scenario,model,kind,mse,mae.
func (t *TableII) CSV() string {
	var b strings.Builder
	b.WriteString("scenario,model,kind,mse,mae\n")
	for _, sc := range []core.Scenario{core.Uni, core.Mul, core.MulExp} {
		for _, name := range tableIIModels(sc) {
			kinds := make([]trace.EntityKind, 0, 2)
			for k := range t.Results[sc][name] {
				kinds = append(kinds, k)
			}
			sort.Slice(kinds, func(a, b int) bool { return kinds[a] < kinds[b] })
			for _, k := range kinds {
				c := t.Results[sc][name][k]
				fmt.Fprintf(&b, "%s,%s,%s,%.6f,%.6f\n", sc, name, k, c.MSE, c.MAE)
			}
		}
	}
	return b.String()
}

// Best returns the model with the lowest MSE for a scenario and kind.
func (t *TableII) Best(sc core.Scenario, kind trace.EntityKind) (ModelName, Cell) {
	var bestName ModelName
	var best Cell
	first := true
	for _, name := range tableIIModels(sc) {
		c := t.Results[sc][name][kind]
		if first || c.MSE < best.MSE {
			first = false
			best = c
			bestName = name
		}
	}
	return bestName, best
}
