package shard

import (
	"sort"
	"sync"

	"repro/internal/obs"
	"repro/internal/obs/sketch"
	"repro/internal/trace"
)

// Router fans a fleet of entities out across its shards. It implements
// trace.RingSource (plus the ingest surface of trace.RingStore) by
// delegating to the per-shard stores, so it drops into the server and
// the adaptation supervisor wherever a single RingStore used to sit.
type Router struct {
	shards []*shard
	closed chan struct{}
	once   sync.Once
}

// New builds the router and starts one worker goroutine per shard.
func New(cfg Config) (*Router, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	depth := make([]*obs.Gauge, cfg.Shards)
	latency := make([]*obs.Histogram, cfg.Shards)
	served := make([]*obs.Counter, cfg.Shards)
	for i := 0; i < cfg.Shards; i++ {
		depth[i] = cfg.Registry.Gauge("rptcn_shard_queue_depth",
			"Forecast requests pending in this shard's queue.", shardLabel(i))
		latency[i] = cfg.Registry.Histogram("rptcn_shard_latency_seconds",
			"Shard-local forecast latency, enqueue to answer.", nil, shardLabel(i))
		served[i] = cfg.Registry.Counter("rptcn_shard_requests_total",
			"Forecast requests answered by this shard.", shardLabel(i))
	}
	// Split the fleet-wide entity cap across shards. Ceil division so
	// the aggregate cap is never below the configured one; a shard can
	// hold at most its slice, keeping memory bounded per shard even when
	// hashing is briefly uneven.
	perShardMax := 0
	if cfg.MaxEntities > 0 {
		perShardMax = (cfg.MaxEntities + cfg.Shards - 1) / cfg.Shards
	}
	r := &Router{shards: make([]*shard, cfg.Shards), closed: make(chan struct{})}
	for i := 0; i < cfg.Shards; i++ {
		sh := &shard{
			id:       i,
			engine:   cfg.Engines[i],
			resolve:  cfg.Resolve,
			rings:    trace.NewBoundedRingStore(cfg.RingCapacity, perShardMax),
			log:      cfg.Log,
			queue:    make(chan *request, cfg.QueueCap),
			stop:     make(chan struct{}),
			stopped:  make(chan struct{}),
			maxBatch: cfg.MaxBatch,
			maxDelay: cfg.MaxDelay,
			depth:    depth[i],
			latency:  latency[i],
			served:   served[i],
			digest:   sketch.NewTDigest(64),
		}
		r.shards[i] = sh
		go sh.run()
	}
	return r, nil
}

// Shards returns the shard count.
func (r *Router) Shards() int { return len(r.shards) }

// shardOf hashes an entity to its fixed shard: FNV-1a over the raw ID
// bytes, modulo the shard count. No allocation for either key form.
func (r *Router) shardOf(entity string) *shard {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(entity); i++ {
		h ^= uint64(entity[i])
		h *= prime64
	}
	return r.shards[h%uint64(len(r.shards))]
}

func (r *Router) shardOfBytes(entity []byte) *shard {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(entity); i++ {
		h ^= uint64(entity[i])
		h *= prime64
	}
	return r.shards[h%uint64(len(r.shards))]
}

// Forecast serves one entity's forecast through its shard's
// micro-batcher, blocking until it is answered. model == "" uses the
// shard's default engine; a named model goes through the Resolver.
func (r *Router) Forecast(entity, model string) Result {
	select {
	case <-r.closed:
		return Result{Err: ErrClosed}
	default:
	}
	return r.shardOf(entity).forecast(entity, model)
}

// Ingest routes one sample to the owning shard's ring store. Same
// contract as trace.RingStore.Ingest: zero allocations for a known
// entity, false when the sample's timestamp does not advance.
func (r *Router) Ingest(entity []byte, ts int, vals *[trace.NumIndicators]float64) bool {
	return r.shardOfBytes(entity).rings.Ingest(entity, ts, vals)
}

// IngestString is Ingest for callers already holding a string ID.
func (r *Router) IngestString(entity string, ts int, vals *[trace.NumIndicators]float64) bool {
	return r.shardOf(entity).rings.IngestString(entity, ts, vals)
}

// WithWindow implements trace.RingSource.
func (r *Router) WithWindow(entity string, n int, fn func(win [][]float64, interval, lastTS int)) bool {
	return r.shardOf(entity).rings.WithWindow(entity, n, fn)
}

// SampleCount implements trace.RingSource.
func (r *Router) SampleCount(entity string) int {
	return r.shardOf(entity).rings.SampleCount(entity)
}

// Entities implements trace.RingSource: the union of every shard's
// entities, sorted so the result is deterministic regardless of shard
// count or arrival order.
func (r *Router) Entities() []string {
	var out []string
	for _, sh := range r.shards {
		out = append(out, sh.rings.Entities()...)
	}
	sort.Strings(out)
	return out
}

// Len returns the fleet-wide entity count.
func (r *Router) Len() int {
	n := 0
	for _, sh := range r.shards {
		n += sh.rings.Len()
	}
	return n
}

// Evicted returns the fleet-wide LRU eviction count.
func (r *Router) Evicted() uint64 {
	var n uint64
	for _, sh := range r.shards {
		n += sh.rings.Evicted()
	}
	return n
}

// Status returns every shard's point-in-time accounting, shard order.
func (r *Router) Status() []Status {
	out := make([]Status, len(r.shards))
	for i, sh := range r.shards {
		out[i] = sh.status()
	}
	return out
}

// Close stops the workers and waits for them to drain. Requests in
// flight or still queued are answered with ErrClosed; Close is
// idempotent and later Forecast calls fail fast.
func (r *Router) Close() {
	r.once.Do(func() {
		close(r.closed)
		for _, sh := range r.shards {
			close(sh.stop)
		}
		for _, sh := range r.shards {
			<-sh.stopped
		}
	})
}
