// Package shard routes a fleet of entities across N single-owner
// serving workers. Every entity hashes to a fixed shard; the shard owns
// that entity's ingestion ring, pending-forecast queue, and a private
// micro-batcher, so the hot path — ingest a sample, serve a forecast —
// touches only shard-local state and the per-entity ring locks, never a
// cross-shard lock. With per-shard model replicas
// (core.ShardInferencer) the N workers also run N forwards truly in
// parallel, instead of convoying on the shared predictor's global
// inference lock.
//
// The degenerate 1-shard router with the shared *core.Predictor as its
// engine is exactly today's serving path — same rings, same batch
// fusion, same f32 tier, bitwise-identical forecasts — which is what
// keeps the single-model deployment a configuration, not a code path.
// (The gather policy differs: shard workers batch greedily by default
// instead of idle-waiting MaxDelay for stragglers, which changes
// latency, never values.)
package shard

import (
	"errors"
	"fmt"
	"log/slog"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/obs/sketch"
	"repro/internal/trace"
)

// Engine is the inference surface one shard serves with. Satisfied by
// *core.Predictor (shared, globally locked — the degenerate case) and
// *core.ShardInferencer (per-shard replica, lock-free forwards).
type Engine interface {
	MinHistory() int
	PrepareInput(series [][]float64) (*core.PreparedInput, error)
	ForecastBatchGen(inputs []*core.PreparedInput) ([][]float64, int64, error)
}

// Resolver maps a request's model name to a serving engine — the
// multi-model hook, backed by internal/registry in the server. The
// returned release func is called when the batch that used the engine
// is done; it may be nil. Resolvers must be safe for concurrent use
// (each shard worker resolves independently).
type Resolver func(model string) (Engine, func(), error)

// Errors surfaced on Result.Err. The server maps both to 404.
var (
	ErrUnknownEntity = errors.New("shard: unknown entity")
	ErrClosed        = errors.New("shard: router closed")
)

// Config configures a Router.
type Config struct {
	// Shards is the worker count; every entity hashes to one fixed
	// shard (default 1 — the degenerate single-model path).
	Shards int
	// QueueCap bounds each shard's pending-forecast queue (default 64).
	// Producers block when a shard's queue is full, which bounds memory
	// under overload; the server's admission limiter should keep total
	// in-flight below Shards×QueueCap.
	QueueCap int
	// MaxBatch caps how many pending forecasts fuse into one forward
	// (default 32).
	MaxBatch int
	// MaxDelay selects the gather policy. The default (0) is greedy:
	// the worker serves whatever is queued the moment it picks up the
	// first request — under load the queue backlog IS the batch, and
	// idle-waiting for stragglers only burns serving capacity (at the
	// fleet operating point the old 2ms delay-gather measured at less
	// than half the greedy throughput; see BenchmarkFleetDelay8).
	// A positive MaxDelay restores the JSON-path batcher's contract:
	// the first request of a partial batch waits up to MaxDelay for
	// company — a latency-for-fusion trade that only pays off when
	// arrival concurrency is far below MaxBatch.
	MaxDelay time.Duration
	// RingCapacity is samples retained per entity ring (required > 0).
	RingCapacity int
	// MaxEntities caps ring-holding entities fleet-wide; the cap is
	// split evenly across shards (each shard LRU-evicts independently).
	// 0 = unbounded.
	MaxEntities int
	// Engines holds one serving engine per shard (len must equal
	// Shards). With Shards == 1 pass the shared *core.Predictor to keep
	// today's exact serving semantics; with more shards pass per-shard
	// core.ShardInferencer replicas.
	Engines []Engine
	// Resolve, when set, serves requests that name a model (the
	// multi-model path). An empty model name always uses the shard's
	// own engine.
	Resolve Resolver
	// Registry receives the per-shard metrics (default obs.Default()).
	Registry *obs.Registry
	// Log receives worker lifecycle and panic reports.
	Log *slog.Logger
}

func (c *Config) fillDefaults() error {
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 64
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 32
	}
	if c.MaxDelay < 0 {
		c.MaxDelay = 0
	}
	if c.RingCapacity <= 0 {
		return errors.New("shard: Config.RingCapacity is required")
	}
	if len(c.Engines) != c.Shards {
		return fmt.Errorf("shard: %d engines for %d shards", len(c.Engines), c.Shards)
	}
	for i, e := range c.Engines {
		if e == nil {
			return fmt.Errorf("shard: nil engine for shard %d", i)
		}
	}
	if c.Registry == nil {
		c.Registry = obs.Default()
	}
	if c.Log == nil {
		c.Log = obs.Logger("shard")
	}
	return nil
}

// Result is one forecast's outcome.
type Result struct {
	Forecast []float64
	Gen      int64
	Err      error
	Panicked bool
}

// request is one pending forecast in a shard's queue.
type request struct {
	entity   string
	model    string
	done     chan Result // buffered 1: the worker never blocks on a gone waiter
	enqueued time.Time
}

// shard is one worker: its entities' rings, its pending-forecast queue,
// and the batcher loop that drains it. Single consumer — the worker
// goroutine owns the engine, so engines need no synchronization.
type shard struct {
	id      int
	engine  Engine
	resolve Resolver
	rings   *trace.RingStore
	log     *slog.Logger

	queue    chan *request
	stop     chan struct{}
	stopped  chan struct{}
	maxBatch int
	maxDelay time.Duration

	// Accounting. requests/batches are atomics because Status() reads
	// them from other goroutines; the digest needs a lock for the same
	// reason.
	depth    *obs.Gauge
	latency  *obs.Histogram
	served   *obs.Counter
	requests atomic.Uint64
	batches  atomic.Uint64
	digestMu sync.Mutex
	digest   *sketch.TDigest
}

// forecast enqueues one request and blocks for its result.
func (sh *shard) forecast(entity, model string) Result {
	r := &request{entity: entity, model: model, done: make(chan Result, 1), enqueued: time.Now()}
	sh.depth.Inc()
	select {
	case sh.queue <- r:
	case <-sh.stopped:
		sh.depth.Dec()
		return Result{Err: ErrClosed}
	}
	select {
	case res := <-r.done:
		return res
	case <-sh.stopped:
		// The worker may have answered in the same instant it shut
		// down; prefer a real answer over the shutdown error.
		select {
		case res := <-r.done:
			return res
		default:
			return Result{Err: ErrClosed}
		}
	}
}

// run is the worker loop: block for the first pending forecast, gather
// batch-mates, serve the fused batch, repeat. The default gather is
// greedy — take everything already queued (up to maxBatch) and go;
// clients blocked on earlier batches re-enqueue while a batch computes,
// so the backlog the worker finds on its next pass is the natural batch
// and the worker never parks with work pending. With maxDelay > 0 a
// partial batch instead waits out the delay for company (the JSON-path
// batcher's contract).
func (sh *shard) run() {
	defer close(sh.stopped)
	batch := make([]*request, 0, sh.maxBatch)
	for {
		var first *request
		select {
		case first = <-sh.queue:
		case <-sh.stop:
			sh.drain()
			return
		}
		batch = append(batch[:0], first)
		if sh.maxDelay > 0 {
			batch = sh.gatherDelay(batch)
		} else {
			batch = sh.gatherGreedy(batch)
		}
		sh.runBatch(batch)
		select {
		case <-sh.stop:
			sh.drain()
			return
		default:
		}
	}
}

// gatherGreedy drains the queue non-blocking up to maxBatch.
func (sh *shard) gatherGreedy(batch []*request) []*request {
	for len(batch) < sh.maxBatch {
		select {
		case r := <-sh.queue:
			batch = append(batch, r)
		default:
			return batch
		}
	}
	return batch
}

// gatherDelay waits up to maxDelay for the batch to fill.
func (sh *shard) gatherDelay(batch []*request) []*request {
	timer := time.NewTimer(sh.maxDelay)
	defer timer.Stop()
	for len(batch) < sh.maxBatch {
		select {
		case r := <-sh.queue:
			batch = append(batch, r)
			continue
		case <-timer.C:
		case <-sh.stop:
		}
		break
	}
	return batch
}

// drain answers everything still queued with ErrClosed (worker
// goroutine only, after stop).
func (sh *shard) drain() {
	for {
		select {
		case r := <-sh.queue:
			sh.depth.Dec()
			r.done <- Result{Err: ErrClosed}
		default:
			return
		}
	}
}

// engineGroup collects the batch members served by one engine, in
// arrival order.
type engineGroup struct {
	engine  Engine
	release func()
	reqs    []*request
	inputs  []*core.PreparedInput
}

// runBatch serves one fused batch: read each entity's ring window,
// prepare it, group by engine (the default engine plus any resolved
// models), run one forward per group, and fan results back out. Client
// errors (unknown entity, short history, unknown model) are answered
// individually and never poison batch-mates; an engine panic poisons
// only that engine's group.
func (sh *shard) runBatch(reqs []*request) {
	sh.depth.Add(-float64(len(reqs)))
	sh.batches.Add(1)
	sh.requests.Add(uint64(len(reqs)))

	groups := make([]*engineGroup, 0, 2)
	groupOf := func(model string) (*engineGroup, error) {
		var eng Engine
		var release func()
		if model == "" || sh.resolve == nil {
			eng = sh.engine
		} else {
			var err error
			eng, release, err = sh.resolve(model)
			if err != nil {
				return nil, err
			}
		}
		for _, g := range groups {
			if g.engine == eng {
				if release != nil {
					release() // group already holds a reference
				}
				return g, nil
			}
		}
		g := &engineGroup{engine: eng, release: release}
		groups = append(groups, g)
		return g, nil
	}

	for _, r := range reqs {
		g, err := groupOf(r.model)
		if err != nil {
			sh.answer(r, Result{Err: err})
			continue
		}
		var in *core.PreparedInput
		var perr error
		found := sh.rings.WithWindow(r.entity, g.engine.MinHistory(), func(win [][]float64, _, _ int) {
			in, perr = g.engine.PrepareInput(win)
		})
		switch {
		case !found:
			sh.answer(r, Result{Err: fmt.Errorf("%w: %q", ErrUnknownEntity, r.entity)})
		case perr != nil:
			sh.answer(r, Result{Err: perr})
		default:
			g.reqs = append(g.reqs, r)
			g.inputs = append(g.inputs, in)
		}
	}

	for _, g := range groups {
		sh.runGroup(g)
		if g.release != nil {
			g.release()
		}
	}
}

// runGroup runs one engine's share of the batch with panic isolation.
func (sh *shard) runGroup(g *engineGroup) {
	if len(g.reqs) == 0 {
		return
	}
	var (
		out      [][]float64
		gen      int64
		err      error
		panicked bool
	)
	func() {
		defer func() {
			if p := recover(); p != nil {
				panicked = true
				sh.log.Error("panic recovered in shard inference",
					"shard", sh.id, "batch", len(g.reqs), "panic", p, "stack", string(debug.Stack()))
			}
		}()
		out, gen, err = g.engine.ForecastBatchGen(g.inputs)
	}()
	for i, r := range g.reqs {
		res := Result{Gen: gen, Err: err, Panicked: panicked}
		if !panicked && err == nil {
			res.Forecast = out[i]
		}
		sh.answer(r, res)
	}
}

// answer completes one request and records its end-to-end shard latency
// (enqueue → answered).
func (sh *shard) answer(r *request, res Result) {
	lat := time.Since(r.enqueued)
	sh.latency.Observe(lat.Seconds())
	sh.served.Inc()
	sh.digestMu.Lock()
	sh.digest.Add(float64(lat.Nanoseconds()))
	sh.digestMu.Unlock()
	r.done <- res
}

// Status is one shard's point-in-time accounting, surfaced on
// /debug/shards and asserted by the fleetreplay drill.
type Status struct {
	Shard      int     `json:"shard"`
	Entities   int     `json:"entities"`
	QueueDepth int     `json:"queue_depth"`
	Requests   uint64  `json:"requests"`
	Batches    uint64  `json:"batches"`
	Evicted    uint64  `json:"evicted"`
	P50Micros  float64 `json:"p50_us"`
	P99Micros  float64 `json:"p99_us"`
	MaxMicros  float64 `json:"max_us"`
}

func (sh *shard) status() Status {
	st := Status{
		Shard:      sh.id,
		Entities:   sh.rings.Len(),
		QueueDepth: len(sh.queue),
		Evicted:    sh.rings.Evicted(),
		Requests:   sh.requests.Load(),
		Batches:    sh.batches.Load(),
	}
	sh.digestMu.Lock()
	if sh.digest.Count() > 0 {
		st.P50Micros = sh.digest.Quantile(0.50) / 1e3
		st.P99Micros = sh.digest.Quantile(0.99) / 1e3
		st.MaxMicros = sh.digest.Max() / 1e3
	}
	sh.digestMu.Unlock()
	return st
}

func shardLabel(i int) obs.Label { return obs.L("shard", strconv.Itoa(i)) }
