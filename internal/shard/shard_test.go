package shard

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/trace"
)

var fixture struct {
	once   sync.Once
	p      *core.Predictor
	alt    *core.Predictor
	entity *trace.EntitySeries
	err    error
}

// fitted returns a shared fitted predictor (plus a second, differently
// seeded one for multi-model tests) and the entity it trained on.
func fitted(t testing.TB) (*core.Predictor, *core.Predictor, *trace.EntitySeries) {
	t.Helper()
	fixture.once.Do(func() {
		e := trace.Generate(trace.GeneratorConfig{
			Entities: 1, Kind: trace.Container, Samples: 500, Seed: 1,
		})[0]
		mk := func(seed uint64) (*core.Predictor, error) {
			p := core.NewPredictor(core.PredictorConfig{
				Scenario: core.MulExp, Window: 12, Horizon: 3, Epochs: 2, Seed: seed,
				Model: core.Config{Channels: []int{6, 6}, KernelSize: 3, WeightNorm: true, FCWidth: 8},
			})
			if err := p.Fit(e.Matrix(), int(trace.CPUUtilPercent)); err != nil {
				return nil, err
			}
			return p, nil
		}
		fixture.entity = e
		if fixture.p, fixture.err = mk(2); fixture.err != nil {
			return
		}
		fixture.alt, fixture.err = mk(77)
	})
	if fixture.err != nil {
		t.Fatal(fixture.err)
	}
	return fixture.p, fixture.alt, fixture.entity
}

// feed streams the last `samples` samples of the fixture entity into the
// router under the given ID.
func feed(r *Router, e *trace.EntitySeries, id string, samples int) {
	n := len(e.Metrics[0])
	if samples > n {
		samples = n
	}
	for i := n - samples; i < n; i++ {
		var vals [trace.NumIndicators]float64
		for c := 0; c < trace.NumIndicators; c++ {
			vals[c] = e.Metrics[c][i]
		}
		r.IngestString(id, (i+1)*10, &vals)
	}
}

// directForecast computes the forecast the predictor itself would serve
// for the entity's trailing window (the reference the router must match
// bitwise).
func directForecast(t *testing.T, p *core.Predictor, e *trace.EntitySeries) []float64 {
	t.Helper()
	need := p.MinHistory()
	tail := make([][]float64, trace.NumIndicators)
	for i := range tail {
		s := e.Metrics[i]
		tail[i] = s[len(s)-need:]
	}
	in, err := p.PrepareInput(tail)
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := p.ForecastBatchGen([]*core.PreparedInput{in})
	if err != nil {
		t.Fatal(err)
	}
	return out[0]
}

func newRouter(t *testing.T, p *core.Predictor, shards int, opts ...func(*Config)) *Router {
	t.Helper()
	engines := make([]Engine, shards)
	if shards == 1 {
		engines[0] = p
	} else {
		for i := range engines {
			engines[i] = p.NewShardInferencer()
		}
	}
	cfg := Config{
		Shards:       shards,
		RingCapacity: 2 * p.MinHistory(),
		Engines:      engines,
		Registry:     obs.NewRegistry(),
	}
	for _, o := range opts {
		o(&cfg)
	}
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	return r
}

func requireBitwise(t *testing.T, name string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", name, len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s[%d]: %g vs %g", name, i, got[i], want[i])
		}
	}
}

// TestOneShardMatchesPredictor pins the degenerate case: a 1-shard
// router serving on the shared predictor answers bitwise identically to
// calling the predictor directly — sharding changes routing, never
// values.
func TestOneShardMatchesPredictor(t *testing.T) {
	p, _, e := fitted(t)
	r := newRouter(t, p, 1)
	feed(r, e, e.ID, 2*p.MinHistory())
	res := r.Forecast(e.ID, "")
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Gen != 1 {
		t.Fatalf("generation = %d, want 1", res.Gen)
	}
	requireBitwise(t, "1-shard vs direct", res.Forecast, directForecast(t, p, e))
}

// TestShardedMatchesOneShard pins replica equivalence at the router
// level: the same fleet served by 8 replica shards answers bitwise
// identically to the 1-shard shared-predictor path, entity by entity.
func TestShardedMatchesOneShard(t *testing.T) {
	p, _, e := fitted(t)
	one := newRouter(t, p, 1)
	many := newRouter(t, p, 8)
	const entities = 24
	for i := 0; i < entities; i++ {
		id := fmt.Sprintf("m_%d", i)
		feed(one, e, id, 2*p.MinHistory())
		feed(many, e, id, 2*p.MinHistory())
	}
	for i := 0; i < entities; i++ {
		id := fmt.Sprintf("m_%d", i)
		a := one.Forecast(id, "")
		b := many.Forecast(id, "")
		if a.Err != nil || b.Err != nil {
			t.Fatalf("entity %s: errs %v / %v", id, a.Err, b.Err)
		}
		requireBitwise(t, "8-shard vs 1-shard "+id, b.Forecast, a.Forecast)
	}
	// The fleet actually spread: every shard owns some entities.
	sts := many.Status()
	total := 0
	for _, st := range sts {
		total += st.Entities
	}
	if total != entities {
		t.Fatalf("shard entity total = %d, want %d", total, entities)
	}
}

// TestRoutingIsStableAndBalanced pins the entity→shard map: the same ID
// always lands on the same shard (string and byte keys agree), and FNV
// spreads a large fleet roughly evenly.
func TestRoutingIsStableAndBalanced(t *testing.T) {
	p, _, _ := fitted(t)
	r := newRouter(t, p, 8)
	var vals [trace.NumIndicators]float64
	const entities = 4096
	for i := 0; i < entities; i++ {
		id := fmt.Sprintf("m_%d", i)
		if r.shardOf(id) != r.shardOfBytes([]byte(id)) {
			t.Fatalf("string and byte hashing disagree for %q", id)
		}
		r.IngestString(id, 10, &vals)
	}
	want := entities / r.Shards()
	for _, st := range r.Status() {
		if st.Entities < want/2 || st.Entities > want*2 {
			t.Fatalf("shard %d holds %d entities, want ~%d (hash imbalance)", st.Shard, st.Entities, want)
		}
	}
}

// TestBoundedEntities pins fleet-wide memory bounding: with a
// MaxEntities cap the router never holds more rings than the per-shard
// split allows, and evictions are counted.
func TestBoundedEntities(t *testing.T) {
	p, _, _ := fitted(t)
	r := newRouter(t, p, 4, func(c *Config) { c.MaxEntities = 64 })
	var vals [trace.NumIndicators]float64
	const entities = 256
	for i := 0; i < entities; i++ {
		r.IngestString(fmt.Sprintf("m_%d", i), 10, &vals)
	}
	if n := r.Len(); n > 64 {
		t.Fatalf("router holds %d entities, cap is 64", n)
	}
	if ev := r.Evicted(); ev < entities-64 {
		t.Fatalf("evicted = %d, want ≥ %d", ev, entities-64)
	}
}

// TestResolverServesNamedModels pins the multi-model path: a request
// naming a model serves through the resolved engine (bitwise matching
// that model served directly), releases every acquired handle, and an
// unknown name surfaces the resolver's error without disturbing
// batch-mates.
func TestResolverServesNamedModels(t *testing.T) {
	p, alt, e := fitted(t)
	errUnknown := errors.New("no such model")
	var mu sync.Mutex
	acquired, released := 0, 0
	resolve := func(model string) (Engine, func(), error) {
		if model != "alt" {
			return nil, nil, errUnknown
		}
		mu.Lock()
		acquired++
		mu.Unlock()
		return alt, func() { mu.Lock(); released++; mu.Unlock() }, nil
	}
	r := newRouter(t, p, 2, func(c *Config) { c.Resolve = resolve })
	feed(r, e, e.ID, 2*p.MinHistory())

	res := r.Forecast(e.ID, "alt")
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	requireBitwise(t, "named model", res.Forecast, directForecast(t, alt, e))
	def := r.Forecast(e.ID, "")
	if def.Err != nil {
		t.Fatal(def.Err)
	}
	requireBitwise(t, "default engine untouched", def.Forecast, directForecast(t, p, e))

	if res := r.Forecast(e.ID, "ghost"); !errors.Is(res.Err, errUnknown) {
		t.Fatalf("unknown model error = %v", res.Err)
	}
	mu.Lock()
	defer mu.Unlock()
	if acquired == 0 || acquired != released {
		t.Fatalf("handle leak: %d acquired, %d released", acquired, released)
	}
}

// TestUnknownEntity pins the routing of a miss: an entity with no ring
// state answers ErrUnknownEntity, not a panic or a zero forecast.
func TestUnknownEntity(t *testing.T) {
	p, _, _ := fitted(t)
	r := newRouter(t, p, 2)
	if res := r.Forecast("ghost", ""); !errors.Is(res.Err, ErrUnknownEntity) {
		t.Fatalf("unknown entity error = %v", res.Err)
	}
}

// panicEngine serves MinHistory/PrepareInput through a real predictor
// but panics on every forward.
type panicEngine struct{ *core.Predictor }

func (pe panicEngine) ForecastBatchGen([]*core.PreparedInput) ([][]float64, int64, error) {
	panic("injected engine fault")
}

// TestEnginePanicIsIsolated pins fault isolation: a panicking resolved
// engine poisons only its own group — the same batch's default-engine
// requests still answer normally, and the worker survives.
func TestEnginePanicIsIsolated(t *testing.T) {
	p, _, e := fitted(t)
	resolve := func(string) (Engine, func(), error) { return panicEngine{p}, nil, nil }
	r := newRouter(t, p, 1, func(c *Config) { c.Resolve = resolve })
	feed(r, e, e.ID, 2*p.MinHistory())

	if res := r.Forecast(e.ID, "boom"); !res.Panicked {
		t.Fatalf("panicking engine result = %+v, want Panicked", res)
	}
	// The worker is still alive and the default engine unaffected.
	res := r.Forecast(e.ID, "")
	if res.Err != nil || res.Panicked {
		t.Fatalf("post-panic default forecast = %+v", res)
	}
	requireBitwise(t, "post-panic", res.Forecast, directForecast(t, p, e))
}

// TestCloseDrains pins shutdown: Close answers queued requests with
// ErrClosed, later Forecasts fail fast, and Close is idempotent.
func TestCloseDrains(t *testing.T) {
	p, _, e := fitted(t)
	r := newRouter(t, p, 2)
	feed(r, e, e.ID, 2*p.MinHistory())
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res := r.Forecast(e.ID, "")
			if res.Err != nil && !errors.Is(res.Err, ErrClosed) {
				t.Errorf("in-flight request got %v", res.Err)
			}
		}()
	}
	r.Close()
	wg.Wait()
	r.Close() // idempotent
	if res := r.Forecast(e.ID, ""); !errors.Is(res.Err, ErrClosed) {
		t.Fatalf("post-close forecast error = %v", res.Err)
	}
}

// TestConcurrentFleetServing hammers a sharded router with concurrent
// ingest and forecasts across many entities; under -race this pins the
// single-owner discipline (engines, rings, accounting).
func TestConcurrentFleetServing(t *testing.T) {
	p, _, e := fitted(t)
	r := newRouter(t, p, 4)
	const entities = 32
	for i := 0; i < entities; i++ {
		feed(r, e, fmt.Sprintf("m_%d", i), 2*p.MinHistory())
	}
	want := directForecast(t, p, e)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < 16; it++ {
				id := fmt.Sprintf("m_%d", (g*16+it)%entities)
				res := r.Forecast(id, "")
				if res.Err != nil {
					t.Errorf("forecast %s: %v", id, res.Err)
					return
				}
				for k := range want {
					if res.Forecast[k] != want[k] {
						t.Errorf("forecast %s drifted at step %d", id, k)
						return
					}
				}
			}
		}(g)
	}
	// Concurrent ingest of fresh entities while forecasts run.
	var vals [trace.NumIndicators]float64
	for i := 0; i < 200; i++ {
		r.IngestString(fmt.Sprintf("fresh_%d", i), 10, &vals)
	}
	wg.Wait()
	sts := r.Status()
	var served uint64
	for _, st := range sts {
		served += st.Requests
	}
	if served != 8*16 {
		t.Fatalf("shards served %d requests, want %d", served, 8*16)
	}
}
