package shard

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// fleetOpts parameterizes benchFleet.
type fleetOpts struct {
	shards   int
	entities int
	// delay > 0 runs the old delay-gather batcher instead of the greedy
	// default — the "before" configuration for the gather-policy pair.
	delay time.Duration
	// churn > 0 hot-swaps the shared predictor continuously at that
	// cadence, with f32 revalidation inside every swap's critical
	// section — the convoy scenario the per-shard replicas exist for.
	churn time.Duration
}

// benchFleet is the shared harness for the fleet benchmarks: a router
// over nShards serving 4096 distinct synthetic entities at 64
// concurrent clients (the acceptance load point). Reported metrics:
// req/s (aggregate throughput) and p99-ns (the worst shard's
// per-request p99 from its t-digest).
//
// Read the numbers with the host's core count in mind. The 1-shard
// path serializes every forward on the predictor's inference lock, so
// it is structurally capped at one core of forwards no matter how many
// cores exist; each shard replica adds an independently lockable
// engine, so the sharded configurations scale with cores. On a
// single-core host (where the committed BENCH_compute.json numbers
// come from) sharding therefore cannot beat the baseline on raw req/s
// — every configuration competes for the same core, and the 8-shard
// fleet pays smaller average batches (~4 vs 32) for its isolation. The
// single-core win that IS visible is the gather policy: Delay8 vs
// Steady8 isolates what greedy batching buys at the fleet operating
// point (~3x), because idle-waiting for batch-mates burns the only
// core. See EXPERIMENTS.md ("Fleet sharding on one core") for the full
// study.
func benchFleet(b *testing.B, o fleetOpts) {
	p, _, e := fitted(b)
	engines := make([]Engine, o.shards)
	if o.shards == 1 {
		engines[0] = p
	} else {
		for i := range engines {
			engines[i] = p.NewShardInferencer()
		}
	}
	r, err := New(Config{
		Shards:       o.shards,
		MaxDelay:     o.delay,
		RingCapacity: 2 * p.MinHistory(),
		// The entity cap splits evenly across shards but FNV routing does
		// not: leave 2x headroom so no shard evicts below the fleet size.
		MaxEntities: 2 * o.entities,
		Engines:     engines,
		Registry:    obs.NewRegistry(),
	})
	if err != nil {
		b.Fatal(err)
	}
	defer r.Close()

	ids := make([]string, o.entities)
	for i := range ids {
		ids[i] = fmt.Sprintf("e%04d", i)
		feed(r, e, ids[i], p.MinHistory()+2)
	}

	stop := make(chan struct{})
	var swaps atomic.Int64
	if o.churn > 0 {
		// Every swap logs its f32 revalidation verdict; at hundreds of
		// swaps per second that would drown the benchmark output.
		obs.SetLogger(obs.NopLogger())
		defer obs.SetLogger(nil)
		cand, eval, _, err := p.FineTune(e.Matrix(), core.FineTuneConfig{Epochs: 1, Seed: 31})
		if err != nil {
			b.Fatal(err)
		}
		// Force the f32 revalidation backtest inside every swap's critical
		// section — the realistic long hold (quantize + full held-out
		// backtest) a promotion pays when the f32 tier is configured.
		p.Cfg.Float32 = true
		defer func() {
			p.Cfg.Float32 = false
			p.DisableFloat32()
		}()
		other := cand.Clone()
		done := make(chan struct{})
		defer func() { close(stop); <-done }()
		go func() {
			defer close(done)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				case <-time.After(o.churn):
				}
				m := cand
				if i%2 == 1 {
					m = other
				}
				if _, _, _, err := p.SwapModel(m, eval); err != nil {
					b.Error(err)
					return
				}
				swaps.Add(1)
			}
		}()
	}

	// 64 concurrent clients regardless of GOMAXPROCS: the acceptance
	// load point, and the regime where lock convoys actually bite.
	procs := runtime.GOMAXPROCS(0)
	b.SetParallelism((63 + procs) / procs)
	var next atomic.Int64
	b.ResetTimer()
	start := time.Now()
	b.RunParallel(func(pb *testing.PB) {
		// Stride the fleet so concurrent clients hit disjoint entities.
		i := next.Add(7919)
		for pb.Next() {
			res := r.Forecast(ids[int(uint64(i)%uint64(len(ids)))], "")
			if res.Err != nil {
				b.Error(res.Err)
				return
			}
			i++
		}
	})
	elapsed := time.Since(start)
	b.StopTimer()

	b.ReportMetric(float64(b.N)/elapsed.Seconds(), "req/s")
	var p99 float64
	for _, st := range r.Status() {
		if st.P99Micros > p99 {
			p99 = st.P99Micros
		}
	}
	b.ReportMetric(p99*1e3, "p99-ns")
	if o.churn > 0 {
		b.ReportMetric(float64(swaps.Load())/elapsed.Seconds(), "swaps/s")
	}
}

// BenchmarkFleetSteady1 is the single-shard baseline: 4096 entities on
// the shared-predictor path (inferMu-serialized forwards, full batch
// fusion) at concurrency 64, no churn.
func BenchmarkFleetSteady1(b *testing.B) {
	benchFleet(b, fleetOpts{shards: 1, entities: 4096})
}

// BenchmarkFleetSteady8 is the same fleet across 8 shard replicas with
// the greedy gather. Forwards here take no shared lock, so this
// configuration scales with cores where the baseline cannot; on a
// single core it trades batch-32 fusion for isolation and lands near
// ~0.85x the baseline.
func BenchmarkFleetSteady8(b *testing.B) {
	benchFleet(b, fleetOpts{shards: 8, entities: 4096})
}

// BenchmarkFleetDelay8 is BenchmarkFleetSteady8 with the old 2ms
// delay-gather instead of greedy batching — the before/after pair that
// motivated the gather-policy change: with 64 clients spread over 8
// queues a partial batch idle-waits the full delay for stragglers, and
// on one core those waits are serving capacity burned (~2.3x).
func BenchmarkFleetDelay8(b *testing.B) {
	benchFleet(b, fleetOpts{shards: 8, entities: 4096, delay: 2 * time.Millisecond})
}

// BenchmarkFleetChurn1 measures the baseline under aggressive
// hot-swapping (one promotion with f32 revalidation every 5ms): every
// request convoys behind the swap's backtest on the shared inference
// lock.
func BenchmarkFleetChurn1(b *testing.B) {
	benchFleet(b, fleetOpts{shards: 1, entities: 4096, churn: 5 * time.Millisecond})
}

// BenchmarkFleetChurn8 is the same churn against 8 replicas: serving
// never takes the shared lock (one atomic genSeq load per batch), so
// requests ride straight through the revalidation holds instead of
// convoying. On one core the swap work still steals cycles from
// everyone; with cores to spare the replicas keep serving at full rate
// through the hold.
func BenchmarkFleetChurn8(b *testing.B) {
	benchFleet(b, fleetOpts{shards: 8, entities: 4096, churn: 5 * time.Millisecond})
}
