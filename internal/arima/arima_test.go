package arima

import (
	"math"
	"testing"

	"repro/internal/metrics"
)

// xorshift noise for reproducible synthetic series.
type rng struct{ s uint64 }

func (r *rng) norm() float64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	u1 := float64((r.s*0x2545f4914f6cdd1d)>>11)/(1<<53) + 1e-12
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	u2 := float64((r.s*0x2545f4914f6cdd1d)>>11) / (1 << 53)
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

func genAR1(n int, phi, c, sigma float64, seed uint64) []float64 {
	r := &rng{s: seed}
	xs := make([]float64, n)
	for t := 1; t < n; t++ {
		xs[t] = c + phi*xs[t-1] + sigma*r.norm()
	}
	return xs
}

func TestFitRecoversAR1Coefficient(t *testing.T) {
	xs := genAR1(4000, 0.7, 0, 1, 1)
	m, err := Fit(xs, Config{P: 1, D: 0, Q: 0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.AR[0]-0.7) > 0.05 {
		t.Fatalf("AR coefficient = %g, want ≈ 0.7", m.AR[0])
	}
}

func TestFitRecoversMA1Coefficient(t *testing.T) {
	// x_t = e_t + 0.5 e_{t-1}
	r := &rng{s: 2}
	n := 4000
	e := make([]float64, n)
	xs := make([]float64, n)
	for t := 0; t < n; t++ {
		e[t] = r.norm()
		xs[t] = e[t]
		if t > 0 {
			xs[t] += 0.5 * e[t-1]
		}
	}
	m, err := Fit(xs, Config{P: 0, D: 0, Q: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.MA[0]-0.5) > 0.08 {
		t.Fatalf("MA coefficient = %g, want ≈ 0.5", m.MA[0])
	}
}

func TestFitRejectsBadConfig(t *testing.T) {
	xs := genAR1(100, 0.5, 0, 1, 3)
	if _, err := Fit(xs, Config{P: 0, D: 0, Q: 0}); err == nil {
		t.Fatal("expected error for p=q=0")
	}
	if _, err := Fit(xs, Config{P: -1, D: 0, Q: 0}); err == nil {
		t.Fatal("expected error for negative order")
	}
	if _, err := Fit(xs[:5], Config{P: 3, D: 0, Q: 3}); err == nil {
		t.Fatal("expected error for short series")
	}
}

func TestForecastConvergesToUnconditionalMean(t *testing.T) {
	// AR(1) with intercept c has mean c/(1−φ); long-horizon forecasts must
	// approach it.
	xs := genAR1(3000, 0.6, 1.0, 0.5, 4) // mean = 2.5
	m, err := Fit(xs, Config{P: 1, D: 0, Q: 0})
	if err != nil {
		t.Fatal(err)
	}
	f := m.Forecast(200)
	if math.Abs(f[199]-2.5) > 0.3 {
		t.Fatalf("long-horizon forecast = %g, want ≈ 2.5", f[199])
	}
}

func TestForecastLengthAndNonNegativeHorizon(t *testing.T) {
	xs := genAR1(300, 0.5, 0, 1, 5)
	m, _ := Fit(xs, Config{P: 1, D: 0, Q: 0})
	if got := m.Forecast(7); len(got) != 7 {
		t.Fatalf("Forecast length = %d", len(got))
	}
	if m.Forecast(0) != nil || m.Forecast(-1) != nil {
		t.Fatal("non-positive horizon must return nil")
	}
}

func TestDifferencingHandlesLinearTrend(t *testing.T) {
	// A deterministic trend plus AR noise: d=1 should track the trend.
	r := &rng{s: 6}
	n := 1000
	xs := make([]float64, n)
	for t := 0; t < n; t++ {
		xs[t] = 0.05*float64(t) + 0.3*r.norm()
	}
	m, err := Fit(xs, Config{P: 1, D: 1, Q: 0})
	if err != nil {
		t.Fatal(err)
	}
	f := m.Forecast(10)
	// Ten steps ahead should be ≈ 0.05·(n+9).
	want := 0.05 * float64(n+9)
	if math.Abs(f[9]-want) > 1.0 {
		t.Fatalf("trend forecast = %g, want ≈ %g", f[9], want)
	}
}

func TestRollingForecastBeatsMeanOnAR(t *testing.T) {
	xs := genAR1(2000, 0.85, 0, 1, 7)
	trainN := 1600
	m, err := Fit(xs[:trainN], Config{P: 2, D: 0, Q: 1})
	if err != nil {
		t.Fatal(err)
	}
	preds := m.RollingForecast(xs[trainN:])
	mseModel := metrics.MSE(xs[trainN:], preds)
	meanPred := make([]float64, len(xs)-trainN)
	mseMean := metrics.MSE(xs[trainN:], meanPred) // mean of the process is 0
	if mseModel >= mseMean {
		t.Fatalf("ARIMA rolling MSE %g not better than mean baseline %g", mseModel, mseMean)
	}
	// Theoretical one-step MSE is σ²=1; allow generous slack.
	if mseModel > 1.4 {
		t.Fatalf("rolling MSE %g too large for AR(1) with σ=1", mseModel)
	}
}

func TestOneStepThenUpdateConsistency(t *testing.T) {
	xs := genAR1(500, 0.5, 0, 1, 8)
	m, _ := Fit(xs[:400], Config{P: 1, D: 0, Q: 1})
	p1 := m.OneStep()
	p2 := m.OneStep() // repeated call without Update must not advance state
	if p1 != p2 {
		t.Fatal("OneStep must be idempotent until Update")
	}
	m.Update(xs[400])
	p3 := m.OneStep()
	if p3 == p1 && xs[400] != p1 {
		t.Fatal("Update did not advance the model state")
	}
}

func TestUpdateWithoutOneStepIsSafe(t *testing.T) {
	xs := genAR1(500, 0.5, 0, 1, 9)
	m, _ := Fit(xs[:400], Config{P: 1, D: 0, Q: 0})
	m.Update(xs[400]) // must implicitly compute the prediction
	f := m.Forecast(1)
	if math.IsNaN(f[0]) {
		t.Fatal("NaN after Update without OneStep")
	}
}

func TestRollingForecastWithDifferencing(t *testing.T) {
	// Random walk with drift: ARIMA(0,1,1)/(1,1,0) style models should
	// produce finite, tracking forecasts.
	r := &rng{s: 10}
	n := 1200
	xs := make([]float64, n)
	for t := 1; t < n; t++ {
		xs[t] = xs[t-1] + 0.1 + 0.5*r.norm()
	}
	m, err := Fit(xs[:1000], Config{P: 1, D: 1, Q: 0})
	if err != nil {
		t.Fatal(err)
	}
	preds := m.RollingForecast(xs[1000:])
	mae := metrics.MAE(xs[1000:], preds)
	if math.IsNaN(mae) || mae > 1.5 {
		t.Fatalf("rolling MAE on random walk = %g", mae)
	}
}

func TestSelectOrderPrefersTrueAR(t *testing.T) {
	xs := genAR1(3000, 0.8, 0, 1, 11)
	cfg := SelectOrder(xs, 0, 3, 1)
	if cfg.P < 1 {
		t.Fatalf("SelectOrder chose %+v, want p >= 1", cfg)
	}
	// Over-ordering is possible but the selected model must fit better than
	// white noise: check via a quick rolling evaluation.
	m, err := Fit(xs[:2500], cfg)
	if err != nil {
		t.Fatal(err)
	}
	preds := m.RollingForecast(xs[2500:])
	if metrics.MSE(xs[2500:], preds) > 1.5 {
		t.Fatalf("selected order %+v fits poorly", cfg)
	}
}
