// Package arima implements the ARIMA(p,d,q) forecasting baseline of the
// paper. Estimation uses conditional sum of squares (CSS): AR start values
// come from the Yule–Walker equations, and the full (intercept, AR, MA)
// parameter vector is refined with Nelder–Mead. Forecasting follows the
// standard ARMA recursion with future innovations set to zero, integrated
// back through the differencing.
package arima

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/linalg"
	"repro/internal/optim"
	"repro/internal/stats"
)

// Config selects the ARIMA order.
type Config struct {
	P int // autoregressive order
	D int // differencing order
	Q int // moving-average order
}

// Model is a fitted ARIMA model. It keeps enough trailing state to produce
// one-step rolling forecasts as new observations arrive.
type Model struct {
	Cfg       Config
	Intercept float64
	AR        []float64 // φ_1..φ_p
	MA        []float64 // θ_1..θ_q

	w     []float64 // differenced series (training, then appended updates)
	e     []float64 // residuals aligned with w
	level []float64 // last value of each differencing level 0..d-1

	lastPredW float64 // most recent one-step prediction at the differenced level
	predValid bool
}

// Fit estimates an ARIMA model on series. The series must contain at
// least max(3(p+q+1), p+q+d+2) observations.
func Fit(series []float64, cfg Config) (*Model, error) {
	if cfg.P < 0 || cfg.D < 0 || cfg.Q < 0 {
		return nil, fmt.Errorf("arima: negative order %+v", cfg)
	}
	if cfg.P == 0 && cfg.Q == 0 {
		return nil, errors.New("arima: p and q cannot both be zero")
	}
	minN := 3 * (cfg.P + cfg.Q + 1)
	if m := cfg.P + cfg.Q + cfg.D + 2; m > minN {
		minN = m
	}
	if len(series) < minN {
		return nil, fmt.Errorf("arima: need at least %d observations, have %d", minN, len(series))
	}
	m := &Model{Cfg: cfg}
	w := stats.Diff(series, cfg.D)
	m.w = append([]float64(nil), w...)
	m.level = lastLevels(series, cfg.D)

	// Start values: intercept = mean, AR via Yule–Walker, MA at zero.
	x0 := make([]float64, 1+cfg.P+cfg.Q)
	x0[0] = stats.Mean(w)
	if cfg.P > 0 {
		phi, err := yuleWalker(w, cfg.P)
		if err == nil {
			copy(x0[1:1+cfg.P], phi)
		}
	}

	objective := func(params []float64) float64 {
		return css(w, cfg, params)
	}
	best := x0
	if cfg.Q > 0 || cfg.P > 0 {
		best, _ = optim.NelderMead(objective, x0, optim.NelderMeadConfig{MaxIter: 300 * len(x0)})
	}
	m.Intercept = best[0]
	m.AR = append([]float64(nil), best[1:1+cfg.P]...)
	m.MA = append([]float64(nil), best[1+cfg.P:]...)
	m.e = residuals(w, cfg, m.Intercept, m.AR, m.MA)
	return m, nil
}

// lastLevels returns the final value of each differencing level 0..d-1 of
// series (level 0 is the raw series).
func lastLevels(series []float64, d int) []float64 {
	levels := make([]float64, d)
	cur := series
	for k := 0; k < d; k++ {
		levels[k] = cur[len(cur)-1]
		cur = stats.Diff(cur, 1)
	}
	return levels
}

// yuleWalker solves the Yule–Walker equations for AR(p) coefficients.
func yuleWalker(w []float64, p int) ([]float64, error) {
	acf := stats.ACF(w, p)
	b := make([]float64, p)
	copy(b, acf[1:])
	return linalg.SolveToeplitz(acf[:p], b)
}

// css computes the conditional sum of squares for the parameter vector
// (intercept, AR..., MA...). Pre-sample residuals are zero.
func css(w []float64, cfg Config, params []float64) float64 {
	c := params[0]
	ar := params[1 : 1+cfg.P]
	ma := params[1+cfg.P:]
	s := 0.0
	e := make([]float64, len(w))
	for t := cfg.P; t < len(w); t++ {
		pred := c
		for i, phi := range ar {
			pred += phi * w[t-1-i]
		}
		for j, theta := range ma {
			if t-1-j >= 0 {
				pred += theta * e[t-1-j]
			}
		}
		e[t] = w[t] - pred
		s += e[t] * e[t]
	}
	return s
}

// residuals replays the CSS recursion to produce the residual sequence.
func residuals(w []float64, cfg Config, c float64, ar, ma []float64) []float64 {
	e := make([]float64, len(w))
	for t := cfg.P; t < len(w); t++ {
		pred := c
		for i, phi := range ar {
			pred += phi * w[t-1-i]
		}
		for j, theta := range ma {
			if t-1-j >= 0 {
				pred += theta * e[t-1-j]
			}
		}
		e[t] = w[t] - pred
	}
	return e
}

// predictW returns the one-step prediction at the differenced level given
// the current w/e history.
func (m *Model) predictW() float64 {
	pred := m.Intercept
	n := len(m.w)
	for i, phi := range m.AR {
		if n-1-i >= 0 {
			pred += phi * m.w[n-1-i]
		}
	}
	ne := len(m.e)
	for j, theta := range m.MA {
		if ne-1-j >= 0 {
			pred += theta * m.e[ne-1-j]
		}
	}
	return pred
}

// integrate converts a predicted value at the differenced level into the
// original scale using the stored level state.
func (m *Model) integrate(pd float64, levels []float64) float64 {
	v := pd
	for k := len(levels) - 1; k >= 0; k-- {
		v += levels[k]
	}
	return v
}

// OneStep returns the one-step-ahead forecast on the original scale
// without consuming an observation. Call Update with the realized value to
// advance the model.
func (m *Model) OneStep() float64 {
	m.lastPredW = m.predictW()
	m.predValid = true
	return m.integrate(m.lastPredW, m.level)
}

// Update absorbs the realized observation, computing the residual against
// the latest one-step prediction and advancing the differencing state.
func (m *Model) Update(actual float64) {
	if !m.predValid {
		m.OneStep()
	}
	// New differenced value: difference the actual against the stored levels.
	newLevels := make([]float64, len(m.level))
	v := actual
	for k := 0; k < len(m.level); k++ {
		newLevels[k] = v
		v -= m.level[k]
	}
	wNew := v // the d-th difference
	m.w = append(m.w, wNew)
	m.e = append(m.e, wNew-m.lastPredW)
	m.level = newLevels
	m.predValid = false
}

// Forecast produces an h-step-ahead forecast from the current state, with
// future innovations set to zero, integrated to the original scale.
func (m *Model) Forecast(h int) []float64 {
	if h <= 0 {
		return nil
	}
	w := append([]float64(nil), m.w...)
	e := append([]float64(nil), m.e...)
	levels := append([]float64(nil), m.level...)
	out := make([]float64, h)
	for s := 0; s < h; s++ {
		pred := m.Intercept
		for i, phi := range m.AR {
			if len(w)-1-i >= 0 {
				pred += phi * w[len(w)-1-i]
			}
		}
		for j, theta := range m.MA {
			if len(e)-1-j >= 0 {
				pred += theta * e[len(e)-1-j]
			}
		}
		// Integrate and update the levels as if pred were observed.
		v := pred
		for k := len(levels) - 1; k >= 0; k-- {
			v += levels[k]
		}
		out[s] = v
		// Advance levels.
		x := v
		for k := 0; k < len(levels); k++ {
			nk := x
			x -= levels[k]
			levels[k] = nk
		}
		w = append(w, pred)
		e = append(e, 0)
	}
	return out
}

// RollingForecast produces one-step-ahead forecasts for each element of
// actuals, updating the model with the true value after each prediction.
// This is the standard evaluation protocol for ARIMA on a held-out test
// segment. The model state is advanced; fit a fresh model to reuse it.
func (m *Model) RollingForecast(actuals []float64) []float64 {
	out := make([]float64, len(actuals))
	for i, a := range actuals {
		out[i] = m.OneStep()
		m.Update(a)
	}
	return out
}

// SelectOrder picks (p,q) ∈ [1,maxP]×[0,maxQ] minimizing AIC-like
// CSS·n + 2k on the d-differenced series. It is a light-weight stand-in
// for auto-ARIMA order selection.
func SelectOrder(series []float64, d, maxP, maxQ int) Config {
	best := Config{P: 1, D: d, Q: 0}
	bestScore := 0.0
	first := true
	w := stats.Diff(series, d)
	n := float64(len(w))
	for p := 1; p <= maxP; p++ {
		for q := 0; q <= maxQ; q++ {
			cfg := Config{P: p, D: d, Q: q}
			m, err := Fit(series, cfg)
			if err != nil {
				continue
			}
			rss := 0.0
			for _, e := range m.e {
				rss += e * e
			}
			if rss <= 0 {
				rss = 1e-12
			}
			score := n*math.Log(rss/n) + 2*float64(p+q+1)
			if first || score < bestScore {
				first = false
				bestScore = score
				best = cfg
			}
		}
	}
	return best
}
