package train

import (
	"math"
	"testing"

	"repro/internal/nn"
	"repro/internal/opt"
	"repro/internal/tensor"
)

// sineDataset builds a toy regression problem y = sin(3x).
func sineDataset(n int) Dataset {
	x := tensor.New(n, 1)
	y := tensor.New(n, 1)
	for i := 0; i < n; i++ {
		v := float64(i)/float64(n)*2 - 1
		x.Data[i] = v
		y.Data[i] = math.Sin(3 * v)
	}
	return Dataset{X: x, Y: y}
}

func TestSplitProportionsAndOrder(t *testing.T) {
	d := sineDataset(100)
	tr, va, te, err := Split(d, 0.6, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 60 || va.Len() != 20 || te.Len() != 20 {
		t.Fatalf("split sizes = %d/%d/%d", tr.Len(), va.Len(), te.Len())
	}
	// Chronological: first train sample is the first overall, first test
	// sample is number 80.
	if tr.X.Data[0] != d.X.Data[0] || te.X.Data[0] != d.X.Data[80] {
		t.Fatal("split must be chronological")
	}
}

func TestSplitRejectsBadFractions(t *testing.T) {
	d := sineDataset(10)
	if _, _, _, err := Split(d, 0.9, 0.2); err == nil {
		t.Fatal("expected error when fractions exceed 1")
	}
	if _, _, _, err := Split(d, 0, 0.2); err == nil {
		t.Fatal("expected error for zero train fraction")
	}
	if _, _, _, err := Split(sineDataset(2), 0.6, 0.2); err == nil {
		t.Fatal("expected error for too-small dataset")
	}
}

func TestSubsetAndGatherCopy(t *testing.T) {
	d := sineDataset(10)
	s := d.Subset(2, 5)
	if s.Len() != 3 || s.X.Data[0] != d.X.Data[2] {
		t.Fatalf("Subset wrong: %v", s.X.Data)
	}
	s.X.Data[0] = 999
	if d.X.Data[2] == 999 {
		t.Fatal("Subset must copy")
	}
	g := d.Gather([]int{7, 1})
	if g.X.Data[0] != d.X.Data[7] || g.X.Data[1] != d.X.Data[1] {
		t.Fatalf("Gather wrong: %v", g.X.Data)
	}
}

func TestFitReducesLoss(t *testing.T) {
	r := tensor.NewRNG(1)
	model := nn.NewSequential(nn.NewDense(r, 1, 16), &nn.Tanh{}, nn.NewDense(r, 16, 1))
	d := sineDataset(200)
	tr, va, _, err := Split(d, 0.6, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	hist := Fit(model, tr, va, Config{
		Epochs: 100, BatchSize: 16, Optimizer: opt.NewAdam(0.01), Shuffle: true, Seed: 2,
	})
	first, last := hist.TrainLoss[0], hist.TrainLoss[len(hist.TrainLoss)-1]
	if last >= first/5 {
		t.Fatalf("training did not reduce loss: %g -> %g", first, last)
	}
}

func TestEarlyStoppingTriggers(t *testing.T) {
	r := tensor.NewRNG(3)
	model := nn.NewSequential(nn.NewDense(r, 1, 4), &nn.Tanh{}, nn.NewDense(r, 4, 1))
	// Unlearnable validation target: pure noise mapped from constant input.
	trX := tensor.Full(0.5, 40, 1)
	trY := tensor.Full(0.5, 40, 1)
	vaX := tensor.Full(0.5, 20, 1)
	vaY := tensor.RandN(r, 20, 1)
	hist := Fit(model, Dataset{trX, trY}, Dataset{vaX, vaY}, Config{
		Epochs: 500, BatchSize: 8, Optimizer: opt.NewAdam(0.05), Patience: 5,
	})
	if !hist.Stopped {
		t.Fatal("early stopping never triggered on unlearnable validation set")
	}
	if len(hist.TrainLoss) >= 500 {
		t.Fatal("ran every epoch despite early stopping")
	}
}

func TestRestoreBestWeights(t *testing.T) {
	r := tensor.NewRNG(4)
	model := nn.NewSequential(nn.NewDense(r, 1, 8), &nn.Tanh{}, nn.NewDense(r, 8, 1))
	d := sineDataset(100)
	tr, va, _, err := Split(d, 0.6, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	hist := Fit(model, tr, va, Config{
		Epochs: 60, BatchSize: 16, Optimizer: opt.NewAdam(0.02),
		Patience: 10, RestoreBest: true, Shuffle: true, Seed: 5,
	})
	got := EvaluateLoss(model, va, &nn.MSELoss{})
	want := hist.ValidLoss[hist.BestEpoch]
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("restored model valid loss %g != best recorded %g", got, want)
	}
}

func TestHistoryLengthsMatch(t *testing.T) {
	r := tensor.NewRNG(6)
	model := nn.NewSequential(nn.NewDense(r, 1, 2), nn.NewDense(r, 2, 1))
	d := sineDataset(50)
	tr, va, _, _ := Split(d, 0.6, 0.2)
	hist := Fit(model, tr, va, Config{Epochs: 7, BatchSize: 10})
	if len(hist.TrainLoss) != 7 || len(hist.ValidLoss) != 7 {
		t.Fatalf("history lengths %d/%d, want 7/7", len(hist.TrainLoss), len(hist.ValidLoss))
	}
	if hist.BestEpoch < 0 || hist.BestEpoch >= 7 {
		t.Fatalf("BestEpoch = %d", hist.BestEpoch)
	}
}

func TestEvaluateLossMatchesDirectComputation(t *testing.T) {
	r := tensor.NewRNG(7)
	model := nn.NewDense(r, 1, 1)
	d := sineDataset(300) // spans multiple eval batches
	loss := &nn.MSELoss{}
	got := EvaluateLoss(model, d, loss)
	pred := model.Forward(d.X, false)
	want := loss.Forward(pred, d.Y)
	if math.Abs(got-want) > 1e-10 {
		t.Fatalf("EvaluateLoss = %g, want %g", got, want)
	}
}

func TestPredictShapeAndValues(t *testing.T) {
	r := tensor.NewRNG(8)
	model := nn.NewDense(r, 1, 1)
	d := sineDataset(10)
	preds := Predict(model, d)
	if len(preds) != 10 {
		t.Fatalf("Predict length = %d", len(preds))
	}
	direct := model.Forward(d.X, false)
	for i := range preds {
		if math.Abs(preds[i]-direct.At(i, 0)) > 1e-12 {
			t.Fatal("Predict disagrees with direct forward")
		}
	}
}

func TestPredictAllMultiOutput(t *testing.T) {
	r := tensor.NewRNG(9)
	model := nn.NewDense(r, 2, 3)
	x := tensor.RandN(r, 4, 2)
	y := tensor.New(4, 3)
	rows := PredictAll(model, Dataset{X: x, Y: y})
	if len(rows) != 4 || len(rows[0]) != 3 {
		t.Fatalf("PredictAll shape = %dx%d", len(rows), len(rows[0]))
	}
}

func TestDeterministicWithSameSeed(t *testing.T) {
	build := func() nn.Layer {
		r := tensor.NewRNG(10)
		return nn.NewSequential(nn.NewDense(r, 1, 4), &nn.Tanh{}, nn.NewDense(r, 4, 1))
	}
	d := sineDataset(80)
	tr, va, _, _ := Split(d, 0.6, 0.2)
	run := func() []float64 {
		m := build()
		h := Fit(m, tr, va, Config{Epochs: 10, BatchSize: 8, Optimizer: opt.NewAdam(0.01), Shuffle: true, Seed: 11})
		return h.TrainLoss
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("training is not reproducible with a fixed seed")
		}
	}
}

func TestFitWithClipNormStable(t *testing.T) {
	r := tensor.NewRNG(12)
	model := nn.NewSequential(nn.NewDense(r, 1, 8), &nn.ReLU{}, nn.NewDense(r, 8, 1))
	d := sineDataset(60)
	tr, va, _, _ := Split(d, 0.6, 0.2)
	hist := Fit(model, tr, va, Config{
		Epochs: 20, BatchSize: 8, Optimizer: opt.NewSGD(0.5, 0.9), ClipNorm: 1.0,
	})
	for _, l := range hist.TrainLoss {
		if math.IsNaN(l) || math.IsInf(l, 0) {
			t.Fatal("training diverged despite gradient clipping")
		}
	}
}
