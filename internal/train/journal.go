package train

import (
	"math"

	"repro/internal/nn"
	"repro/internal/obs/runlog"
)

// finite reports a value JSON can carry.
func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// NewJournalHook returns a hook that streams per-epoch scalars (and the
// early-stop event) into a run journal. Combined with a config event
// before Fit and profile/final events after it, the journal is the
// persistent record of the run that cmd/runlog renders back into
// tables. A nil run yields a hook that does nothing.
func NewJournalHook(r *runlog.Run) Hook {
	return FuncHook{
		EpochEnd: func(s EpochStats) {
			data := map[string]any{
				"epoch":      s.Epoch,
				"lr":         s.LR,
				"dur_ns":     s.Duration.Nanoseconds(),
				"improved":   s.Improved,
				"best_epoch": s.BestEpoch,
			}
			// NaN/Inf are not valid JSON; omit the key instead (a fully
			// skipped epoch or a diverged model can produce either).
			if finite(s.TrainLoss) {
				data["train_loss"] = s.TrainLoss
			}
			if finite(s.ValidLoss) {
				data["valid_loss"] = s.ValidLoss
			}
			if finite(s.GradNorm) {
				data["grad_norm"] = s.GradNorm
			}
			r.Log(runlog.TypeEpoch, data)
			if s.SkippedBatches > 0 || s.RolledBack {
				r.Log(runlog.TypeGuard, map[string]any{
					"epoch":           s.Epoch,
					"skipped_batches": s.SkippedBatches,
					"rolled_back":     s.RolledBack,
				})
			}
		},
		EarlyStop: func(s StopInfo) {
			data := map[string]any{
				"epoch":      s.Epoch,
				"best_epoch": s.BestEpoch,
				"patience":   s.Patience,
			}
			if finite(s.BestValidLoss) {
				data["best_valid_loss"] = s.BestValidLoss
			}
			r.Log(runlog.TypeEarlyStop, data)
		},
		Resume: func(s ResumeInfo) {
			r.Log(runlog.TypeResume, map[string]any{
				"epoch":   s.Epoch,
				"stopped": s.Stopped,
			})
		},
	}
}

// ProfileData converts a profiler's per-layer stats into the payload of
// a runlog profile event ({"layers": [...]}).
func ProfileData(p *nn.Profiler) map[string]any {
	if p == nil {
		return nil
	}
	stats := p.Stats()
	layers := make([]any, 0, len(stats))
	for _, s := range stats {
		layers = append(layers, map[string]any{
			"layer":     s.Name,
			"fwd_calls": s.FwdCalls,
			"bwd_calls": s.BwdCalls,
			"fwd_ns":    s.Fwd.Nanoseconds(),
			"bwd_ns":    s.Bwd.Nanoseconds(),
		})
	}
	return map[string]any{"layers": layers}
}
