package train

import (
	"math"

	"repro/internal/nn"
	"repro/internal/obs/runlog"
)

// NewJournalHook returns a hook that streams per-epoch scalars (and the
// early-stop event) into a run journal. Combined with a config event
// before Fit and profile/final events after it, the journal is the
// persistent record of the run that cmd/runlog renders back into
// tables. A nil run yields a hook that does nothing.
func NewJournalHook(r *runlog.Run) Hook {
	return FuncHook{
		EpochEnd: func(s EpochStats) {
			data := map[string]any{
				"epoch":      s.Epoch,
				"train_loss": s.TrainLoss,
				"valid_loss": s.ValidLoss,
				"lr":         s.LR,
				"dur_ns":     s.Duration.Nanoseconds(),
				"improved":   s.Improved,
				"best_epoch": s.BestEpoch,
			}
			// NaN is not valid JSON; omit the key instead.
			if !math.IsNaN(s.GradNorm) {
				data["grad_norm"] = s.GradNorm
			}
			r.Log(runlog.TypeEpoch, data)
		},
		EarlyStop: func(s StopInfo) {
			r.Log(runlog.TypeEarlyStop, map[string]any{
				"epoch":           s.Epoch,
				"best_epoch":      s.BestEpoch,
				"best_valid_loss": s.BestValidLoss,
				"patience":        s.Patience,
			})
		},
	}
}

// ProfileData converts a profiler's per-layer stats into the payload of
// a runlog profile event ({"layers": [...]}).
func ProfileData(p *nn.Profiler) map[string]any {
	if p == nil {
		return nil
	}
	stats := p.Stats()
	layers := make([]any, 0, len(stats))
	for _, s := range stats {
		layers = append(layers, map[string]any{
			"layer":     s.Name,
			"fwd_calls": s.FwdCalls,
			"bwd_calls": s.BwdCalls,
			"fwd_ns":    s.Fwd.Nanoseconds(),
			"bwd_ns":    s.Bwd.Nanoseconds(),
		})
	}
	return map[string]any{"layers": layers}
}
