package train

import (
	"math"
	"strings"
	"testing"

	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/opt"
	"repro/internal/tensor"
)

// recordingHook captures the event stream with a shared order log.
type recordingHook struct {
	name   string
	log    *[]string
	epochs []EpochStats
	stops  []StopInfo
}

func (r *recordingHook) OnBatchEnd(BatchStats) {}
func (r *recordingHook) OnEpochEnd(s EpochStats) {
	*r.log = append(*r.log, r.name+":epoch")
	r.epochs = append(r.epochs, s)
}
func (r *recordingHook) OnEarlyStop(s StopInfo) {
	*r.log = append(*r.log, r.name+":stop")
	r.stops = append(r.stops, s)
}

func TestHooksFireInRegistrationOrder(t *testing.T) {
	r := tensor.NewRNG(1)
	model := nn.NewSequential(nn.NewDense(r, 1, 4), &nn.Tanh{}, nn.NewDense(r, 4, 1))
	d := sineDataset(50)
	tr, va, _, _ := Split(d, 0.6, 0.2)
	var log []string
	a := &recordingHook{name: "a", log: &log}
	b := &recordingHook{name: "b", log: &log}
	Fit(model, tr, va, Config{Epochs: 3, BatchSize: 10, Hooks: []Hook{a, b}})
	want := []string{"a:epoch", "b:epoch", "a:epoch", "b:epoch", "a:epoch", "b:epoch"}
	if len(log) != len(want) {
		t.Fatalf("event log = %v", log)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("event log = %v, want %v", log, want)
		}
	}
	// Hooks run after the built-in History hook: the epoch count History
	// has recorded must already include the current epoch.
	for i, s := range a.epochs {
		if s.Epoch != i {
			t.Fatalf("epoch %d delivered as %d", i, s.Epoch)
		}
	}
}

func TestHistoryAsUserHookMatchesBuiltin(t *testing.T) {
	r := tensor.NewRNG(2)
	model := nn.NewSequential(nn.NewDense(r, 1, 4), &nn.Tanh{}, nn.NewDense(r, 4, 1))
	d := sineDataset(50)
	tr, va, _, _ := Split(d, 0.6, 0.2)
	// History is just another Hook: registering a second one must record
	// the same curves as the built-in, and an adjacent hook placed after
	// it must see it already extended for the current epoch.
	extra := &History{BestEpoch: -1}
	var lens []int
	after := FuncHook{EpochEnd: func(EpochStats) { lens = append(lens, len(extra.TrainLoss)) }}
	hist := Fit(model, tr, va, Config{Epochs: 3, BatchSize: 10, Hooks: []Hook{extra, after}})
	if len(extra.TrainLoss) != len(hist.TrainLoss) || extra.BestEpoch != hist.BestEpoch {
		t.Fatalf("user-hook History %+v != built-in %+v", extra, hist)
	}
	for i := range hist.TrainLoss {
		if extra.TrainLoss[i] != hist.TrainLoss[i] || extra.ValidLoss[i] != hist.ValidLoss[i] {
			t.Fatal("user-hook History diverged from built-in")
		}
	}
	for i, l := range lens {
		if l != i+1 {
			t.Fatalf("at epoch %d the earlier hook had %d entries (hooks must fire in order)", i, l)
		}
	}
}

func TestEarlyStopHookSeesBestBeforeRestore(t *testing.T) {
	r := tensor.NewRNG(3)
	model := nn.NewSequential(nn.NewDense(r, 1, 4), &nn.Tanh{}, nn.NewDense(r, 4, 1))
	// Unlearnable validation target: training keeps moving the weights
	// while validation loss never improves, forcing an early stop.
	trX := tensor.Full(0.5, 40, 1)
	trY := tensor.Full(0.5, 40, 1)
	vaX := tensor.Full(0.5, 20, 1)
	vaY := tensor.RandN(r, 20, 1)
	va := Dataset{vaX, vaY}

	var atStop struct {
		info      StopInfo
		validLoss float64
		fired     bool
	}
	loss := &nn.MSELoss{}
	hook := FuncHook{EarlyStop: func(s StopInfo) {
		atStop.info = s
		// Evaluated inside the hook: the model must still carry its
		// last-epoch weights, not the restored best.
		atStop.validLoss = EvaluateLoss(model, va, loss)
		atStop.fired = true
	}}
	hist := Fit(model, Dataset{trX, trY}, va, Config{
		Epochs: 500, BatchSize: 8, Optimizer: opt.NewAdam(0.05),
		Patience: 5, RestoreBest: true, Hooks: []Hook{hook},
	})
	if !hist.Stopped || !atStop.fired {
		t.Fatal("early stop did not fire")
	}
	if atStop.info.BestEpoch != hist.BestEpoch {
		t.Fatalf("StopInfo.BestEpoch = %d, History.BestEpoch = %d", atStop.info.BestEpoch, hist.BestEpoch)
	}
	if atStop.info.Epoch != len(hist.TrainLoss)-1 {
		t.Fatalf("StopInfo.Epoch = %d, epochs run = %d", atStop.info.Epoch, len(hist.TrainLoss))
	}
	best := hist.ValidLoss[hist.BestEpoch]
	if atStop.info.BestValidLoss != best {
		t.Fatalf("StopInfo.BestValidLoss = %g, want %g", atStop.info.BestValidLoss, best)
	}
	// The hook ran pre-restore: its measured loss is the last epoch's, not
	// the best. After Fit returns, restoration must have happened.
	lastRecorded := hist.ValidLoss[len(hist.ValidLoss)-1]
	if math.Abs(atStop.validLoss-lastRecorded) > 1e-9 {
		t.Fatalf("loss inside hook = %g, want last-epoch %g (restore must happen after hooks)",
			atStop.validLoss, lastRecorded)
	}
	after := EvaluateLoss(model, va, loss)
	if math.Abs(after-best) > 1e-9 {
		t.Fatalf("post-Fit loss = %g, want restored best %g", after, best)
	}
	if atStop.validLoss <= best {
		t.Skip("last epoch happened to equal best; pre/post distinction unverifiable this seed")
	}
}

func TestEpochStatsFields(t *testing.T) {
	r := tensor.NewRNG(5)
	model := nn.NewSequential(nn.NewDense(r, 1, 8), &nn.Tanh{}, nn.NewDense(r, 8, 1))
	d := sineDataset(100)
	tr, va, _, _ := Split(d, 0.6, 0.2)
	var stats []EpochStats
	var batches []BatchStats
	Fit(model, tr, va, Config{
		Epochs: 4, BatchSize: 16, Optimizer: opt.NewAdam(0.01), Shuffle: true, Seed: 6,
		Hooks: []Hook{FuncHook{
			EpochEnd: func(s EpochStats) { stats = append(stats, s) },
			BatchEnd: func(s BatchStats) { batches = append(batches, s) },
		}},
	})
	if len(stats) != 4 {
		t.Fatalf("epochs seen = %d", len(stats))
	}
	for i, s := range stats {
		if s.Epoch != i || s.Duration <= 0 || s.LR != 0.01 {
			t.Fatalf("bad epoch stats: %+v", s)
		}
		if math.IsNaN(s.GradNorm) || s.GradNorm <= 0 {
			t.Fatalf("grad norm not computed with hooks attached: %+v", s)
		}
		if math.IsNaN(s.TrainLoss) || math.IsNaN(s.ValidLoss) {
			t.Fatalf("NaN losses: %+v", s)
		}
	}
	// First epoch must improve over -1 sentinel.
	if !stats[0].Improved || stats[0].BestEpoch != 0 {
		t.Fatalf("first epoch should set the best: %+v", stats[0])
	}
	// 60 samples / batch 16 → 4 batches per epoch.
	if len(batches) != 16 {
		t.Fatalf("batch events = %d, want 16", len(batches))
	}
	if batches[0].Size != 16 || batches[3].Size != 12 {
		t.Fatalf("batch sizes = %d, %d", batches[0].Size, batches[3].Size)
	}
}

func TestMetricsHookPopulatesRegistry(t *testing.T) {
	reg := obs.NewRegistry()
	r := tensor.NewRNG(7)
	model := nn.NewSequential(nn.NewDense(r, 1, 4), &nn.Tanh{}, nn.NewDense(r, 4, 1))
	trX := tensor.Full(0.5, 40, 1)
	trY := tensor.Full(0.5, 40, 1)
	vaX := tensor.Full(0.5, 20, 1)
	vaY := tensor.RandN(r, 20, 1)
	hist := Fit(model, Dataset{trX, trY}, Dataset{vaX, vaY}, Config{
		Epochs: 200, BatchSize: 8, Optimizer: opt.NewAdam(0.05), Patience: 3,
		Hooks: []Hook{NewMetricsHook(reg)},
	})
	if got := reg.Counter("rptcn_train_epochs_total", "").Value(); got != float64(len(hist.TrainLoss)) {
		t.Fatalf("epochs counter = %g, epochs run = %d", got, len(hist.TrainLoss))
	}
	if !hist.Stopped {
		t.Fatal("expected early stop")
	}
	if got := reg.Counter("rptcn_train_early_stops_total", "").Value(); got != 1 {
		t.Fatalf("early stop counter = %g", got)
	}
	var sb strings.Builder
	if _, err := reg.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"rptcn_train_epochs_total", "rptcn_train_epoch_seconds_bucket", "rptcn_train_valid_loss"} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("exposition missing %s", want)
		}
	}
}

func TestLogHookEmitsEpochLines(t *testing.T) {
	var sb strings.Builder
	logger := obs.NewLogger(&sb, 0)
	r := tensor.NewRNG(8)
	model := nn.NewDense(r, 1, 1)
	d := sineDataset(40)
	tr, va, _, _ := Split(d, 0.6, 0.2)
	Fit(model, tr, va, Config{Epochs: 2, BatchSize: 8, Hooks: []Hook{NewLogHook(logger)}})
	out := sb.String()
	if strings.Count(out, "msg=epoch") != 2 {
		t.Fatalf("expected 2 epoch log lines, got:\n%s", out)
	}
	if !strings.Contains(out, "valid_loss=") {
		t.Fatalf("epoch line missing fields:\n%s", out)
	}
}

func TestNoHooksSkipsGradNormButClipStillReports(t *testing.T) {
	// With ClipNorm set, the norm comes free from ClipGradNorm and must
	// reach EpochStats; without either, History alone runs and Fit must
	// not pay for the extra pass (observable only via the NaN sentinel).
	r := tensor.NewRNG(9)
	model := nn.NewDense(r, 1, 1)
	d := sineDataset(40)
	tr, va, _, _ := Split(d, 0.6, 0.2)
	var s EpochStats
	Fit(model, tr, va, Config{Epochs: 1, BatchSize: 8, ClipNorm: 1,
		Hooks: []Hook{FuncHook{EpochEnd: func(e EpochStats) { s = e }}}})
	if math.IsNaN(s.GradNorm) || s.GradNorm <= 0 {
		t.Fatalf("grad norm with ClipNorm = %g", s.GradNorm)
	}
}
