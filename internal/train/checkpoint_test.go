package train

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/fault"
	"repro/internal/nn"
	"repro/internal/opt"
	"repro/internal/tensor"
)

// ckptModel builds a small model with a dropout layer, so resume has a
// layer-internal RNG stream to get right, not just the shuffle RNG.
func ckptModel(seed uint64) nn.Layer {
	r := tensor.NewRNG(seed)
	return nn.NewSequential(
		nn.NewDense(r, 1, 8), &nn.Tanh{},
		nn.NewDropout(r, 0.2),
		nn.NewDense(r, 8, 1),
	)
}

func ckptConfig(dir string) Config {
	return Config{
		Epochs: 8, BatchSize: 8, Optimizer: opt.NewAdam(0.01),
		Shuffle: true, Seed: 17, RestoreBest: true, ClipNorm: 5,
		Checkpoint: CheckpointConfig{Dir: dir},
	}
}

func requireSameHistory(t *testing.T, want, got *History) {
	t.Helper()
	if len(got.TrainLoss) != len(want.TrainLoss) || len(got.ValidLoss) != len(want.ValidLoss) {
		t.Fatalf("history lengths %d/%d, want %d/%d",
			len(got.TrainLoss), len(got.ValidLoss), len(want.TrainLoss), len(want.ValidLoss))
	}
	for i := range want.TrainLoss {
		if math.Float64bits(got.TrainLoss[i]) != math.Float64bits(want.TrainLoss[i]) {
			t.Fatalf("train loss diverges at epoch %d: %x vs %x",
				i, got.TrainLoss[i], want.TrainLoss[i])
		}
		if math.Float64bits(got.ValidLoss[i]) != math.Float64bits(want.ValidLoss[i]) {
			t.Fatalf("valid loss diverges at epoch %d: %x vs %x",
				i, got.ValidLoss[i], want.ValidLoss[i])
		}
	}
	if got.BestEpoch != want.BestEpoch || got.Stopped != want.Stopped {
		t.Fatalf("bookkeeping differs: best %d/%d stopped %v/%v",
			got.BestEpoch, want.BestEpoch, got.Stopped, want.Stopped)
	}
}

func requireSameWeights(t *testing.T, want, got nn.Layer) {
	t.Helper()
	wp, gp := want.Params(), got.Params()
	if len(wp) != len(gp) {
		t.Fatalf("param counts %d vs %d", len(gp), len(wp))
	}
	for i := range wp {
		for j := range wp[i].Value.Data {
			if math.Float64bits(gp[i].Value.Data[j]) != math.Float64bits(wp[i].Value.Data[j]) {
				t.Fatalf("param %d[%d] differs: %x vs %x",
					i, j, gp[i].Value.Data[j], wp[i].Value.Data[j])
			}
		}
	}
}

// TestCheckpointResumeBitwise is the core resume contract: a run killed
// mid-epoch (a panicking hook stands in for SIGKILL) and resumed from
// its newest checkpoint must reproduce the uninterrupted run's loss
// history and final weights bit for bit.
func TestCheckpointResumeBitwise(t *testing.T) {
	d := sineDataset(120)
	tr, va, _, err := Split(d, 0.6, 0.2)
	if err != nil {
		t.Fatal(err)
	}

	// Uninterrupted baseline, no checkpointing at all.
	baseline := ckptModel(9)
	cfgBase := ckptConfig("")
	baseHist := Fit(baseline, tr, va, cfgBase)

	// Interrupted run: die in the middle of epoch 4's batch loop.
	dir := t.TempDir()
	killed := ckptModel(9)
	cfgKill := ckptConfig(dir)
	cfgKill.Hooks = []Hook{FuncHook{BatchEnd: func(s BatchStats) {
		if s.Epoch == 4 && s.Batch == 2 {
			panic("simulated crash")
		}
	}}}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("crash hook never fired")
			}
		}()
		Fit(killed, tr, va, cfgKill)
	}()
	if ep, ok := LatestCheckpointEpoch(dir); !ok || ep == 0 || ep > 4 {
		t.Fatalf("unexpected checkpoint state after crash: epoch %d ok=%v", ep, ok)
	}

	// Resume in a fresh process: fresh model, same config, Resume on.
	resumed := ckptModel(9)
	cfgResume := ckptConfig(dir)
	cfgResume.Checkpoint.Resume = true
	resHist := Fit(resumed, tr, va, cfgResume)

	requireSameHistory(t, baseHist, resHist)
	requireSameWeights(t, baseline, resumed)
}

// TestCheckpointResumeAcrossEarlyStop: a run that early-stops writes a
// final Stopped checkpoint; resuming from it must return immediately
// with the same history instead of training past the stop.
func TestCheckpointResumeAcrossEarlyStop(t *testing.T) {
	r := tensor.NewRNG(3)
	trD := Dataset{X: tensor.Full(0.5, 40, 1), Y: tensor.Full(0.5, 40, 1)}
	vaD := Dataset{X: tensor.Full(0.5, 20, 1), Y: tensor.RandN(r, 20, 1)}
	dir := t.TempDir()
	cfg := Config{
		Epochs: 300, BatchSize: 8, Optimizer: opt.NewAdam(0.05),
		Patience: 4, RestoreBest: true,
		Checkpoint: CheckpointConfig{Dir: dir},
	}
	first := ckptModel(21)
	firstHist := Fit(first, trD, vaD, cfg)
	if !firstHist.Stopped {
		t.Fatal("run never early-stopped")
	}

	cfg.Checkpoint.Resume = true
	cfg.Optimizer = opt.NewAdam(0.05)
	resumed := ckptModel(21)
	resHist := Fit(resumed, trD, vaD, cfg)
	requireSameHistory(t, firstHist, resHist)
	requireSameWeights(t, first, resumed)
}

// TestResumeSkipsCorruptNewestCheckpoint: when a crash truncates the
// newest checkpoint file, resume falls back to the previous one — and
// determinism still reproduces the baseline bitwise.
func TestResumeSkipsCorruptNewestCheckpoint(t *testing.T) {
	d := sineDataset(120)
	tr, va, _, err := Split(d, 0.6, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	baseline := ckptModel(13)
	baseHist := Fit(baseline, tr, va, ckptConfig(""))

	dir := t.TempDir()
	cfgKill := ckptConfig(dir)
	cfgKill.Checkpoint.Keep = 3
	cfgKill.Epochs = 5 // stand-in for a kill at the epoch-5 boundary
	Fit(ckptModel(13), tr, va, cfgKill)

	files := listCheckpoints(dir)
	if len(files) < 2 {
		t.Fatalf("want >=2 checkpoints, have %v", files)
	}
	newest := files[len(files)-1]
	raw, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(newest, raw[:len(raw)/3], 0o644); err != nil {
		t.Fatal(err)
	}

	cfgResume := ckptConfig(dir)
	cfgResume.Checkpoint.Keep = 3
	cfgResume.Checkpoint.Resume = true
	resumed := ckptModel(13)
	resHist := Fit(resumed, tr, va, cfgResume)
	requireSameHistory(t, baseHist, resHist)
	requireSameWeights(t, baseline, resumed)
}

// TestCheckpointKeepPrunes: only the Keep newest checkpoint files
// survive a long run.
func TestCheckpointKeepPrunes(t *testing.T) {
	d := sineDataset(80)
	tr, va, _, _ := Split(d, 0.6, 0.2)
	dir := t.TempDir()
	cfg := ckptConfig(dir)
	cfg.Epochs = 6
	cfg.Checkpoint.Keep = 2
	Fit(ckptModel(1), tr, va, cfg)
	files := listCheckpoints(dir)
	if len(files) != 2 {
		t.Fatalf("want 2 checkpoints after pruning, have %v", files)
	}
	if filepath.Base(files[1]) != "ckpt-000006.json" {
		t.Fatalf("newest checkpoint is %s, want ckpt-000006.json", files[1])
	}
}

// TestPruneCheckpoints: the exported pruner removes oldest-first down
// to keep, clears everything at keep 0, and no-ops on a missing dir —
// the contract the adaptation supervisor relies on to sweep candidate
// artifacts at startup.
func TestPruneCheckpoints(t *testing.T) {
	d := sineDataset(80)
	tr, va, _, _ := Split(d, 0.6, 0.2)
	dir := t.TempDir()
	cfg := ckptConfig(dir)
	cfg.Epochs = 5
	cfg.Checkpoint.Keep = 5
	Fit(ckptModel(1), tr, va, cfg)
	if n := len(listCheckpoints(dir)); n != 5 {
		t.Fatalf("setup: %d checkpoints, want 5", n)
	}
	if removed := PruneCheckpoints(dir, 2); removed != 3 {
		t.Fatalf("removed %d, want 3", removed)
	}
	files := listCheckpoints(dir)
	if len(files) != 2 || filepath.Base(files[1]) != "ckpt-000005.json" {
		t.Fatalf("after prune: %v, want the 2 newest", files)
	}
	if removed := PruneCheckpoints(dir, 0); removed != 2 {
		t.Fatalf("keep=0 removed %d, want 2", removed)
	}
	if n := len(listCheckpoints(dir)); n != 0 {
		t.Fatalf("%d checkpoints survive keep=0", n)
	}
	if removed := PruneCheckpoints(filepath.Join(dir, "nope"), 0); removed != 0 {
		t.Fatalf("missing dir removed %d", removed)
	}
}

// TestCheckpointWriteFailureNonFatal: an injected checkpoint I/O error
// must not perturb training — the history stays bitwise identical to a
// run without checkpointing.
func TestCheckpointWriteFailureNonFatal(t *testing.T) {
	d := sineDataset(80)
	tr, va, _, _ := Split(d, 0.6, 0.2)
	clean := Fit(ckptModel(7), tr, va, ckptConfig(""))

	inj := fault.NewInjector(fault.Rule{Scope: "train.checkpoint", Kind: fault.KindError})
	defer fault.Activate(inj)()
	dir := t.TempDir()
	broken := Fit(ckptModel(7), tr, va, ckptConfig(dir))
	requireSameHistory(t, clean, broken)
	if files := listCheckpoints(dir); len(files) != 0 {
		t.Fatalf("checkpoints written despite injected failure: %v", files)
	}
	if inj.Fired("train.checkpoint") == 0 {
		t.Fatal("fault point never fired")
	}
}

// nanToggle passes its input through until poisoned, then emits NaN —
// a stand-in for a layer whose activations diverge mid-run.
type nanToggle struct{ poisoned bool }

func (n *nanToggle) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	if !n.poisoned {
		return x
	}
	out := tensor.New(x.Shape()...)
	for i := range out.Data {
		out.Data[i] = math.NaN()
	}
	return out
}
func (n *nanToggle) Backward(g *tensor.Tensor) *tensor.Tensor { return g }
func (n *nanToggle) Params() []*nn.Param                      { return nil }

// TestGuardSkipsInjectedNaNBatches: with the guard on, batches whose
// loss is poisoned by the train.batch.loss fault point are skipped and
// the recorded history stays finite; with the guard off, the poison
// reaches the history.
func TestGuardSkipsInjectedNaNBatches(t *testing.T) {
	d := sineDataset(120)
	tr, va, _, _ := Split(d, 0.6, 0.2)
	run := func(guard bool) (*History, int) {
		inj := fault.NewInjector(fault.Rule{
			Scope: "train.batch.loss", Kind: fault.KindNaN, After: 3, Every: 4,
		})
		defer fault.Activate(inj)()
		skipped := 0
		cfg := Config{
			Epochs: 5, BatchSize: 8, Optimizer: opt.NewAdam(0.01),
			Shuffle: true, Seed: 23,
			Guard: GuardConfig{Enabled: guard},
			Hooks: []Hook{FuncHook{EpochEnd: func(s EpochStats) {
				skipped += s.SkippedBatches
			}}},
		}
		return Fit(ckptModel(5), tr, va, cfg), skipped
	}

	guarded, skipped := run(true)
	if skipped == 0 {
		t.Fatal("guard never skipped an injected-NaN batch")
	}
	for i, l := range guarded.TrainLoss {
		if math.IsNaN(l) || math.IsInf(l, 0) {
			t.Fatalf("guarded history has non-finite train loss at epoch %d", i)
		}
	}

	unguarded, _ := run(false)
	sawNaN := false
	for _, l := range unguarded.TrainLoss {
		if math.IsNaN(l) {
			sawNaN = true
		}
	}
	if !sawNaN {
		t.Fatal("injection had no effect with the guard off — the guard test proves nothing")
	}
}

// TestGuardExplodingLossThreshold: MaxLoss treats a finite but explosive
// batch loss as divergent.
func TestGuardExplodingLossThreshold(t *testing.T) {
	d := sineDataset(80)
	tr, va, _, _ := Split(d, 0.6, 0.2)
	inj := fault.NewInjector(fault.Rule{
		Scope: "train.batch.loss", Kind: fault.KindNaN, Value: 1e12, After: 2, Every: 3,
	})
	defer fault.Activate(inj)()
	skipped := 0
	Fit(ckptModel(5), tr, va, Config{
		Epochs: 3, BatchSize: 8, Optimizer: opt.NewAdam(0.01),
		Guard: GuardConfig{Enabled: true, MaxLoss: 1e6},
		Hooks: []Hook{FuncHook{EpochEnd: func(s EpochStats) { skipped += s.SkippedBatches }}},
	})
	if int64(skipped) != inj.Fired("train.batch.loss") {
		t.Fatalf("skipped %d batches, injector fired %d times",
			skipped, inj.Fired("train.batch.loss"))
	}
}

// TestGuardRollsBackOnNaNValidation: when the model itself diverges
// (validation loss NaN), the guard restores the best weights and
// training recovers.
func TestGuardRollsBackOnNaNValidation(t *testing.T) {
	d := sineDataset(120)
	tr, va, _, _ := Split(d, 0.6, 0.2)
	r := tensor.NewRNG(31)
	toggle := &nanToggle{}
	model := nn.NewSequential(
		nn.NewDense(r, 1, 8), &nn.Tanh{}, nn.NewDense(r, 8, 1), toggle,
	)
	var rolledBackAt []int
	hist := Fit(model, tr, va, Config{
		Epochs: 5, BatchSize: 8, Optimizer: opt.NewAdam(0.01),
		Guard: GuardConfig{Enabled: true},
		Hooks: []Hook{FuncHook{EpochEnd: func(s EpochStats) {
			if s.RolledBack {
				rolledBackAt = append(rolledBackAt, s.Epoch)
			}
			switch s.Epoch {
			case 1:
				toggle.poisoned = true // epoch 2 diverges completely
			case 2:
				toggle.poisoned = false // and then heals
			}
		}}},
	})
	if len(rolledBackAt) != 1 || rolledBackAt[0] != 2 {
		t.Fatalf("rollbacks at %v, want exactly epoch 2", rolledBackAt)
	}
	if !math.IsNaN(hist.ValidLoss[2]) {
		t.Fatal("poisoned epoch should have recorded a NaN validation loss")
	}
	if hist.BestEpoch == 2 {
		t.Fatal("diverged epoch became best")
	}
	// Post-rollback epochs train on restored weights: finite again.
	for _, i := range []int{3, 4} {
		if math.IsNaN(hist.ValidLoss[i]) || math.IsInf(hist.ValidLoss[i], 0) {
			t.Fatalf("epoch %d still non-finite after rollback", i)
		}
	}
	// The final model (best weights restored off by default here) must
	// be finite and serve.
	for _, p := range model.Params() {
		for _, v := range p.Value.Data {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatal("model carries non-finite weights after guarded run")
			}
		}
	}
}

// TestNaNValidationNeverBecomesBest pins the best-weight rule: even
// with every guard disabled, a NaN validation loss must never register
// as an improvement, so RestoreBest always lands on finite weights.
func TestNaNValidationNeverBecomesBest(t *testing.T) {
	d := sineDataset(120)
	tr, va, _, _ := Split(d, 0.6, 0.2)
	r := tensor.NewRNG(37)
	toggle := &nanToggle{}
	model := nn.NewSequential(
		nn.NewDense(r, 1, 8), &nn.Tanh{}, nn.NewDense(r, 8, 1), toggle,
	)
	hist := Fit(model, tr, va, Config{
		Epochs: 4, BatchSize: 8, Optimizer: opt.NewAdam(0.01),
		RestoreBest: true,
		Hooks: []Hook{FuncHook{EpochEnd: func(s EpochStats) {
			if s.Epoch == 0 {
				toggle.poisoned = true // every later epoch is NaN
			}
			if s.Epoch > 0 && s.Improved {
				t.Errorf("epoch %d with NaN validation loss marked improved", s.Epoch)
			}
			if math.IsNaN(s.BestValidLoss) {
				t.Errorf("epoch %d: BestValidLoss became NaN", s.Epoch)
			}
		}}},
	})
	if hist.BestEpoch != 0 {
		t.Fatalf("BestEpoch = %d, want 0 (the only finite epoch)", hist.BestEpoch)
	}
	toggle.poisoned = false
	got := EvaluateLoss(model, va, &nn.MSELoss{})
	if math.IsNaN(got) || math.IsInf(got, 0) {
		t.Fatal("RestoreBest landed on non-finite weights")
	}
	if math.Float64bits(got) != math.Float64bits(hist.ValidLoss[0]) {
		t.Fatalf("restored weights evaluate to %g, want epoch-0 loss %g", got, hist.ValidLoss[0])
	}
}
