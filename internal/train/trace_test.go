package train

import (
	"testing"

	"repro/internal/nn"
	obstrace "repro/internal/obs/trace"
	"repro/internal/tensor"
)

func tinyDataset(n, in int) Dataset {
	r := tensor.NewRNG(9)
	x := tensor.New(n, in)
	y := tensor.New(n, 1)
	for i := range x.Data {
		x.Data[i] = r.Float64()
	}
	for i := range y.Data {
		y.Data[i] = r.Float64()
	}
	return Dataset{X: x, Y: y}
}

func TestFitRecordsSpanTree(t *testing.T) {
	tracer := obstrace.New(4)
	tracer.SetEnabled(true)
	ds := tinyDataset(40, 4)
	model := nn.NewSequential(nn.NewDense(tensor.NewRNG(1), 4, 1))
	Fit(model, ds, ds.Subset(0, 8), Config{Epochs: 2, BatchSize: 16, Tracer: tracer})

	traces := tracer.Traces()
	if len(traces) != 1 {
		t.Fatalf("got %d traces, want 1", len(traces))
	}
	root := traces[0].Export()
	if root.Name != "train.fit" || root.DurNS <= 0 {
		t.Fatalf("bad root: %+v", root)
	}
	if root.Attrs["train_samples"] != int64(40) {
		t.Fatalf("root attrs: %+v", root.Attrs)
	}
	if len(root.Spans) != 2 {
		t.Fatalf("got %d epoch spans, want 2", len(root.Spans))
	}
	epoch := root.Spans[0]
	if epoch.Name != "epoch" {
		t.Fatalf("child name %q", epoch.Name)
	}
	// 3 batches of 16/16/8 plus the validation pass.
	if len(epoch.Spans) != 4 {
		t.Fatalf("epoch has %d children, want 4 (3 batches + validate)", len(epoch.Spans))
	}
	if epoch.Spans[3].Name != "validate" {
		t.Fatalf("last epoch child = %q, want validate", epoch.Spans[3].Name)
	}
	if _, ok := epoch.Attrs["train_loss"]; !ok {
		t.Fatalf("epoch span missing train_loss attr: %+v", epoch.Attrs)
	}
}

func TestFitWithoutTracerRecordsNothing(t *testing.T) {
	tracer := obstrace.New(4) // stays disabled
	ds := tinyDataset(20, 3)
	model := nn.NewSequential(nn.NewDense(tensor.NewRNG(1), 3, 1))
	Fit(model, ds, ds.Subset(0, 4), Config{Epochs: 1, BatchSize: 8, Tracer: tracer})
	if got := len(tracer.Traces()); got != 0 {
		t.Fatalf("disabled tracer recorded %d traces", got)
	}
}
