package train

import (
	"math"
	"testing"

	"repro/internal/nn"
	"repro/internal/opt"
	"repro/internal/tensor"
)

func TestCrossValidateFoldCountAndStats(t *testing.T) {
	d := sineDataset(240)
	build := func() nn.Layer {
		r := tensor.NewRNG(1)
		return nn.NewSequential(nn.NewDense(r, 1, 8), &nn.Tanh{}, nn.NewDense(r, 8, 1))
	}
	newOpt := func() opt.Optimizer { return opt.NewAdam(0.01) }
	res, err := CrossValidate(build, newOpt, d, 3, Config{Epochs: 30, BatchSize: 16, Shuffle: true, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FoldLosses) != 3 {
		t.Fatalf("folds = %d", len(res.FoldLosses))
	}
	sum := 0.0
	for _, l := range res.FoldLosses {
		if math.IsNaN(l) || l < 0 {
			t.Fatalf("bad fold loss %g", l)
		}
		sum += l
	}
	if math.Abs(res.Mean-sum/3) > 1e-12 {
		t.Fatalf("Mean = %g, want %g", res.Mean, sum/3)
	}
	if res.Std < 0 {
		t.Fatalf("Std = %g", res.Std)
	}
}

func TestCrossValidateLearnsAcrossFolds(t *testing.T) {
	// On a learnable problem, CV loss should be far below the target
	// variance (~0.5 for sin over [-1,1] scaled by 3).
	d := sineDataset(300)
	build := func() nn.Layer {
		r := tensor.NewRNG(3)
		return nn.NewSequential(nn.NewDense(r, 1, 16), &nn.Tanh{}, nn.NewDense(r, 16, 1))
	}
	newOpt := func() opt.Optimizer { return opt.NewAdam(0.02) }
	res, err := CrossValidate(build, newOpt, d, 4, Config{Epochs: 60, BatchSize: 16, Shuffle: true, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	// The last fold has the most training data and should be decent.
	last := res.FoldLosses[len(res.FoldLosses)-1]
	if last > 0.05 {
		t.Fatalf("last-fold loss %g, want < 0.05", last)
	}
}

func TestCrossValidateRejectsBadInput(t *testing.T) {
	d := sineDataset(10)
	build := func() nn.Layer { return nn.NewDense(tensor.NewRNG(1), 1, 1) }
	newOpt := func() opt.Optimizer { return opt.NewSGD(0.1, 0) }
	if _, err := CrossValidate(build, newOpt, d, 1, Config{}); err == nil {
		t.Fatal("expected error for folds < 2")
	}
	tiny := sineDataset(2)
	if _, err := CrossValidate(build, newOpt, tiny, 5, Config{}); err == nil {
		t.Fatal("expected error for too-small dataset")
	}
}

func TestCrossValidateFreshModelPerFold(t *testing.T) {
	d := sineDataset(120)
	count := 0
	build := func() nn.Layer {
		count++
		return nn.NewDense(tensor.NewRNG(uint64(count)), 1, 1)
	}
	newOpt := func() opt.Optimizer { return opt.NewSGD(0.1, 0) }
	if _, err := CrossValidate(build, newOpt, d, 3, Config{Epochs: 2, BatchSize: 16}); err != nil {
		t.Fatal(err)
	}
	if count != 3 {
		t.Fatalf("build called %d times, want 3", count)
	}
}
