package train

import (
	"testing"

	"repro/internal/nn"
	obstrace "repro/internal/obs/trace"
	"repro/internal/opt"
	"repro/internal/tensor"
)

// benchFit trains a small MLP for a fixed number of epochs; the three
// benchmark variants differ only in tracing wiring, so comparing them
// measures the instrumentation overhead (acceptance: a disabled tracer
// must stay within noise of no tracer at all).
func benchFit(b *testing.B, tracer *obstrace.Tracer) {
	r := tensor.NewRNG(1)
	n, in := 256, 8
	x := tensor.New(n, in)
	y := tensor.New(n, 1)
	for i := 0; i < n; i++ {
		s := 0.0
		for j := 0; j < in; j++ {
			v := r.Float64()
			x.Data[i*in+j] = v
			s += v
		}
		y.Data[i] = s / float64(in)
	}
	tr := Dataset{X: x, Y: y}
	va := tr.Subset(0, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model := nn.NewSequential(nn.NewDense(tensor.NewRNG(2), in, 16), &nn.ReLU{}, nn.NewDense(tensor.NewRNG(3), 16, 1))
		Fit(model, tr, va, Config{
			Epochs:    4,
			BatchSize: 32,
			Optimizer: opt.NewAdam(1e-3),
			Tracer:    tracer,
		})
	}
}

func BenchmarkFit(b *testing.B)          { benchFit(b, nil) }
func BenchmarkFitTracerOff(b *testing.B) { benchFit(b, obstrace.New(8)) }

func BenchmarkFitTracerOn(b *testing.B) {
	t := obstrace.New(8)
	t.SetEnabled(true)
	benchFit(b, t)
}
