package train

import (
	"log/slog"
	"math"
	"time"

	"repro/internal/obs"
)

// BatchStats describes one completed optimizer step.
type BatchStats struct {
	Epoch int // 0-based epoch index
	Batch int // 0-based batch index within the epoch
	Size  int // samples in the batch
	Loss  float64
	// GradNorm is the pre-clip global L2 gradient norm. It is computed
	// only when the run has user hooks (History alone never pays for it);
	// otherwise it is NaN.
	GradNorm float64
	// Skipped reports that the divergence guard rejected this batch (its
	// loss or gradient norm was non-finite or explosive) and the
	// optimizer did not step.
	Skipped bool
}

// EpochStats describes one completed epoch, delivered after the
// validation pass and best-epoch bookkeeping but before any weight
// restoration, so hooks observe the model exactly as it finished the
// epoch.
type EpochStats struct {
	Epoch     int
	TrainLoss float64
	ValidLoss float64
	// GradNorm is the mean pre-clip global gradient norm over the epoch's
	// batches (NaN when not computed; see BatchStats.GradNorm).
	GradNorm float64
	LR       float64
	Duration time.Duration
	// Improved reports whether this epoch set a new best validation loss.
	Improved bool
	// BestEpoch and BestValidLoss track the running best (BestEpoch is
	// -1 until a finite validation loss is seen).
	BestEpoch     int
	BestValidLoss float64
	// SkippedBatches counts batches the divergence guard rejected this
	// epoch; RolledBack reports that a non-finite validation loss made
	// the guard restore the best weights before the next epoch.
	SkippedBatches int
	RolledBack     bool
}

// StopInfo describes an early stop, delivered before best-weight
// restoration — hooks see the best epoch already recorded but the model
// still carrying its last-epoch weights.
type StopInfo struct {
	Epoch         int // epoch at which training stopped (0-based)
	BestEpoch     int
	BestValidLoss float64
	Patience      int
}

// Hook observes a training run. Fit invokes hooks in registration order;
// the History returned by Fit is itself the first hook, so user hooks
// always see History already updated for the current epoch.
type Hook interface {
	OnBatchEnd(BatchStats)
	OnEpochEnd(EpochStats)
	OnEarlyStop(StopInfo)
}

// ResumeInfo describes a successful checkpoint resume, delivered before
// the first resumed epoch runs.
type ResumeInfo struct {
	Epoch   int  // first epoch the resumed run will execute
	Stopped bool // the checkpointed run had already early-stopped
}

// ResumeObserver is implemented by hooks that want to hear about
// checkpoint resumes (an optional extension of Hook).
type ResumeObserver interface {
	OnResume(ResumeInfo)
}

// FuncHook adapts optional funcs into a Hook, so callers implement only
// the events they care about.
type FuncHook struct {
	BatchEnd  func(BatchStats)
	EpochEnd  func(EpochStats)
	EarlyStop func(StopInfo)
	Resume    func(ResumeInfo)
}

// OnBatchEnd implements Hook.
func (f FuncHook) OnBatchEnd(s BatchStats) {
	if f.BatchEnd != nil {
		f.BatchEnd(s)
	}
}

// OnEpochEnd implements Hook.
func (f FuncHook) OnEpochEnd(s EpochStats) {
	if f.EpochEnd != nil {
		f.EpochEnd(s)
	}
}

// OnEarlyStop implements Hook.
func (f FuncHook) OnEarlyStop(s StopInfo) {
	if f.EarlyStop != nil {
		f.EarlyStop(s)
	}
}

// OnResume implements ResumeObserver.
func (f FuncHook) OnResume(s ResumeInfo) {
	if f.Resume != nil {
		f.Resume(s)
	}
}

// OnBatchEnd implements Hook; History ignores batch events.
func (h *History) OnBatchEnd(BatchStats) {}

// OnEpochEnd implements Hook: History is the built-in hook that records
// the loss curves backing the convergence figures.
func (h *History) OnEpochEnd(s EpochStats) {
	h.TrainLoss = append(h.TrainLoss, s.TrainLoss)
	h.ValidLoss = append(h.ValidLoss, s.ValidLoss)
	h.BestEpoch = s.BestEpoch
}

// OnEarlyStop implements Hook.
func (h *History) OnEarlyStop(StopInfo) { h.Stopped = true }

// NewLogHook returns a hook that logs per-epoch progress and early stops
// through the given structured logger (obs.Logger("train") when nil).
func NewLogHook(l *slog.Logger) Hook {
	if l == nil {
		l = obs.Logger("train")
	}
	return FuncHook{
		EpochEnd: func(s EpochStats) {
			l.Info("epoch",
				"epoch", s.Epoch,
				"train_loss", s.TrainLoss,
				"valid_loss", s.ValidLoss,
				"grad_norm", s.GradNorm,
				"lr", s.LR,
				"dur", s.Duration.Round(time.Millisecond),
				"best_epoch", s.BestEpoch,
			)
			if s.SkippedBatches > 0 || s.RolledBack {
				l.Warn("divergence guard intervened",
					"epoch", s.Epoch,
					"skipped_batches", s.SkippedBatches,
					"rolled_back", s.RolledBack,
				)
			}
		},
		EarlyStop: func(s StopInfo) {
			l.Info("early stop",
				"epoch", s.Epoch,
				"best_epoch", s.BestEpoch,
				"best_valid_loss", s.BestValidLoss,
				"patience", s.Patience,
			)
		},
	}
}

// NewMetricsHook returns a hook that streams training progress into a
// metrics registry (obs.Default() when nil):
//
//	rptcn_train_epochs_total        counter
//	rptcn_train_early_stops_total   counter
//	rptcn_train_epoch_seconds       histogram
//	rptcn_train_loss                gauge (last epoch train loss)
//	rptcn_train_valid_loss          gauge (last epoch validation loss)
//	rptcn_train_grad_norm           gauge (mean pre-clip grad norm)
//	rptcn_train_skipped_batches_total  counter (divergence-guard skips)
//	rptcn_train_rollbacks_total        counter (best-weight rollbacks)
//
// The families are registered eagerly so they appear on /metrics (at
// zero) even before the first epoch completes.
func NewMetricsHook(r *obs.Registry) Hook {
	if r == nil {
		r = obs.Default()
	}
	epochs := r.Counter("rptcn_train_epochs_total", "Completed training epochs.")
	stops := r.Counter("rptcn_train_early_stops_total", "Training runs ended by early stopping.")
	epochTime := r.Histogram("rptcn_train_epoch_seconds", "Wall time per training epoch.",
		obs.ExponentialBuckets(0.01, 2, 14))
	trainLoss := r.Gauge("rptcn_train_loss", "Training loss of the most recent epoch.")
	validLoss := r.Gauge("rptcn_train_valid_loss", "Validation loss of the most recent epoch.")
	gradNorm := r.Gauge("rptcn_train_grad_norm", "Mean pre-clip global gradient norm of the most recent epoch.")
	skipped := r.Counter("rptcn_train_skipped_batches_total", "Batches rejected by the divergence guard.")
	rollbacks := r.Counter("rptcn_train_rollbacks_total", "Best-weight rollbacks after a non-finite validation loss.")
	return FuncHook{
		EpochEnd: func(s EpochStats) {
			epochs.Inc()
			epochTime.Observe(s.Duration.Seconds())
			trainLoss.Set(s.TrainLoss)
			validLoss.Set(s.ValidLoss)
			if !math.IsNaN(s.GradNorm) {
				gradNorm.Set(s.GradNorm)
			}
			if s.SkippedBatches > 0 {
				skipped.Add(float64(s.SkippedBatches))
			}
			if s.RolledBack {
				rollbacks.Inc()
			}
		},
		EarlyStop: func(StopInfo) { stops.Inc() },
	}
}
