package train

import (
	"fmt"
	"math"

	"repro/internal/nn"
	"repro/internal/opt"
)

// CVResult summarizes a rolling-origin cross-validation run.
type CVResult struct {
	// FoldLosses[i] is the evaluation loss of fold i.
	FoldLosses []float64
	Mean       float64
	Std        float64
}

// CrossValidate performs rolling-origin (expanding-window) cross-validation,
// the correct CV scheme for time series: fold i trains on the first
// block·(i+1) samples and evaluates on the next block, so evaluation data
// always lies in the future of its training data.
//
// build must return a freshly initialized model on each call and newOpt a
// fresh optimizer (folds must not share weights or momentum state); the
// Optimizer field of cfg is ignored. folds must be >= 2.
func CrossValidate(build func() nn.Layer, newOpt func() opt.Optimizer, d Dataset, folds int, cfg Config) (CVResult, error) {
	if folds < 2 {
		return CVResult{}, fmt.Errorf("train: need >= 2 folds, got %d", folds)
	}
	n := d.Len()
	block := n / (folds + 1)
	if block < 1 {
		return CVResult{}, fmt.Errorf("train: dataset of %d samples too small for %d folds", n, folds)
	}
	cfg.fillDefaults()
	var res CVResult
	for i := 0; i < folds; i++ {
		cut := block * (i + 1)
		end := cut + block
		if i == folds-1 {
			end = n
		}
		tr := d.Subset(0, cut)
		ev := d.Subset(cut, end)
		model := build()
		// The evaluation block also drives early stopping: rolling-origin
		// CV measures the full training protocol, not just the final fit.
		foldCfg := cfg
		foldCfg.Optimizer = newOpt()
		Fit(model, tr, ev, foldCfg)
		res.FoldLosses = append(res.FoldLosses, EvaluateLoss(model, ev, foldCfg.Loss))
	}
	for _, l := range res.FoldLosses {
		res.Mean += l
	}
	res.Mean /= float64(len(res.FoldLosses))
	for _, l := range res.FoldLosses {
		res.Std += (l - res.Mean) * (l - res.Mean)
	}
	res.Std = math.Sqrt(res.Std / float64(len(res.FoldLosses)))
	return res, nil
}
