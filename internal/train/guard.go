package train

import "math"

// GuardConfig controls the divergence guards. The zero value disables
// them entirely, leaving Fit's numerical behavior untouched.
type GuardConfig struct {
	// Enabled turns the guards on: batches whose loss is NaN/Inf (or
	// exceeds MaxLoss) do not step the optimizer and are excluded from
	// the epoch's mean train loss, and an epoch whose validation loss
	// comes back non-finite restores the best weights seen so far before
	// training continues.
	Enabled bool
	// MaxLoss, when positive, additionally treats any batch loss above
	// it as divergent ("exploding loss"), not just non-finite values.
	MaxLoss float64
}

// badLoss reports whether a batch loss should be skipped under g.
func (g GuardConfig) badLoss(l float64) bool {
	if !g.Enabled {
		return false
	}
	if math.IsNaN(l) || math.IsInf(l, 0) {
		return true
	}
	return g.MaxLoss > 0 && l > g.MaxLoss
}

// badNorm reports whether a gradient norm indicates a divergent step.
func (g GuardConfig) badNorm(gnorm float64) bool {
	return g.Enabled && (math.IsNaN(gnorm) || math.IsInf(gnorm, 0))
}
