// Package train provides the supervised-learning harness used by every
// deep model in the experiments: mini-batch training with Adam, the
// paper's chronological 6:2:2 train/validation/test split, early stopping
// with patience (the Keras EarlyStopping callback the paper configures
// with patience=10), and per-epoch loss history for the convergence
// figures (Figs. 9–10).
package train

import (
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/fault"
	"repro/internal/nn"
	"repro/internal/obs"
	obstrace "repro/internal/obs/trace"
	"repro/internal/opt"
	"repro/internal/tensor"
)

// Dataset is a supervised dataset: X has the sample dimension first
// ([N, features] or [N, channels, time]) and Y is [N, outputs].
type Dataset struct {
	X *tensor.Tensor
	Y *tensor.Tensor
}

// Len returns the number of samples.
func (d Dataset) Len() int {
	if d.X == nil {
		return 0
	}
	return d.X.Dim(0)
}

// Subset returns the sample range [lo, hi) as a new dataset (copied).
func (d Dataset) Subset(lo, hi int) Dataset {
	return Dataset{X: sliceSamples(d.X, lo, hi), Y: sliceSamples(d.Y, lo, hi)}
}

// Gather returns the samples at the given indices as a new dataset.
func (d Dataset) Gather(idx []int) Dataset {
	return Dataset{X: gatherSamples(d.X, idx), Y: gatherSamples(d.Y, idx)}
}

// GatherInto is Gather with buffer reuse: dst's tensors are overwritten
// when their shapes already match and reallocated otherwise. The (possibly
// updated) dataset is returned; d is never aliased.
func (d Dataset) GatherInto(idx []int, dst Dataset) Dataset {
	dst.X = gatherSamplesInto(d.X, idx, dst.X)
	dst.Y = gatherSamplesInto(d.Y, idx, dst.Y)
	return dst
}

// SubsetInto is Subset with the same buffer-reuse contract as GatherInto.
func (d Dataset) SubsetInto(lo, hi int, dst Dataset) Dataset {
	dst.X = sliceSamplesInto(d.X, lo, hi, dst.X)
	dst.Y = sliceSamplesInto(d.Y, lo, hi, dst.Y)
	return dst
}

func sampleSize(t *tensor.Tensor) int {
	s := 1
	for _, dim := range t.Shape()[1:] {
		s *= dim
	}
	return s
}

func sliceSamples(t *tensor.Tensor, lo, hi int) *tensor.Tensor {
	per := sampleSize(t)
	shape := t.Shape()
	shape[0] = hi - lo
	out := tensor.New(shape...)
	copy(out.Data, t.Data[lo*per:hi*per])
	return out
}

func gatherSamples(t *tensor.Tensor, idx []int) *tensor.Tensor {
	return gatherSamplesInto(t, idx, nil)
}

func gatherSamplesInto(t *tensor.Tensor, idx []int, dst *tensor.Tensor) *tensor.Tensor {
	per := sampleSize(t)
	shape := t.Shape()
	shape[0] = len(idx)
	dst = ensureShape(dst, shape)
	for i, j := range idx {
		copy(dst.Data[i*per:(i+1)*per], t.Data[j*per:(j+1)*per])
	}
	return dst
}

func sliceSamplesInto(t *tensor.Tensor, lo, hi int, dst *tensor.Tensor) *tensor.Tensor {
	per := sampleSize(t)
	shape := t.Shape()
	shape[0] = hi - lo
	dst = ensureShape(dst, shape)
	copy(dst.Data, t.Data[lo*per:hi*per])
	return dst
}

// ensureShape returns dst when it already has the wanted shape, or a fresh
// tensor otherwise.
func ensureShape(dst *tensor.Tensor, shape []int) *tensor.Tensor {
	if dst != nil && dst.Dims() == len(shape) {
		ok := true
		for i, s := range shape {
			if dst.Dim(i) != s {
				ok = false
				break
			}
		}
		if ok {
			return dst
		}
	}
	return tensor.New(shape...)
}

// Split divides a dataset chronologically into train/validation/test
// fractions (the paper uses 6:2:2). Fractions must be positive and sum to
// at most 1; the test set receives the remainder.
func Split(d Dataset, trainFrac, validFrac float64) (tr, va, te Dataset, err error) {
	if trainFrac <= 0 || validFrac <= 0 || trainFrac+validFrac >= 1 {
		return tr, va, te, fmt.Errorf("train: invalid split fractions %g/%g", trainFrac, validFrac)
	}
	n := d.Len()
	nTrain := int(float64(n) * trainFrac)
	nValid := int(float64(n) * validFrac)
	if nTrain == 0 || nValid == 0 || nTrain+nValid >= n {
		return tr, va, te, errors.New("train: dataset too small to split")
	}
	return d.Subset(0, nTrain), d.Subset(nTrain, nTrain+nValid), d.Subset(nTrain+nValid, n), nil
}

// History records per-epoch losses; it backs the convergence figures.
type History struct {
	TrainLoss []float64
	ValidLoss []float64
	BestEpoch int // epoch index of the best validation loss
	Stopped   bool
}

// Config controls a training run.
type Config struct {
	Epochs    int
	BatchSize int
	Optimizer opt.Optimizer
	Loss      nn.Loss
	// Patience is the early-stopping patience in epochs; 0 disables early
	// stopping. The paper uses 10.
	Patience int
	// ClipNorm, when positive, clips the global gradient norm each step.
	ClipNorm float64
	// Shuffle controls whether training batches are re-shuffled per epoch.
	Shuffle bool
	// Seed seeds the shuffling RNG.
	Seed uint64
	// Schedule optionally adjusts the learning rate per epoch.
	Schedule opt.Schedule
	// RestoreBest restores the parameter values from the best validation
	// epoch after training (like Keras restore_best_weights).
	RestoreBest bool
	// Checkpoint enables periodic crash-safe checkpoints (and resume)
	// when its Dir is set. A run interrupted at any point and resumed
	// from its newest checkpoint produces a loss history and final
	// weights bitwise identical to the uninterrupted run.
	Checkpoint CheckpointConfig
	// Guard enables divergence guards: batches with non-finite (or
	// explosive) loss are skipped instead of stepping the optimizer, and
	// a non-finite validation loss rolls the weights back to the best
	// epoch. With Guard zero-valued, Fit behaves exactly as before.
	Guard GuardConfig
	// Hooks observe the run (per-batch, per-epoch, early-stop events).
	// They fire in slice order, after the built-in History hook, and
	// always before best-weight restoration.
	Hooks []Hook
	// Tracer records a hierarchical "train.fit" → "epoch" → "batch" span
	// tree for the run. Nil (or a disabled tracer) costs only nil checks.
	Tracer *obstrace.Tracer
	// TraceParent, when set, nests the run's spans under an existing span
	// (e.g. a predictor.fit trace) instead of starting a new root.
	TraceParent *obstrace.Span
}

func (c *Config) fillDefaults() {
	if c.Epochs == 0 {
		c.Epochs = 50
	}
	if c.BatchSize == 0 {
		c.BatchSize = 32
	}
	if c.Optimizer == nil {
		c.Optimizer = opt.NewAdam(1e-3)
	}
	if c.Loss == nil {
		c.Loss = &nn.MSELoss{}
	}
	if c.Schedule == nil {
		c.Schedule = opt.ConstantSchedule{}
	}
}

// FineTune continues training model from its current weights — the
// warm-start entrypoint for online adaptation: the supervisor clones
// the serving model and fine-tunes the clone on recently ingested
// windows. Fit never re-initializes weights, so this is Fit by another
// name; the separate entrypoint pins warm-starting as a supported
// contract and marks the intended configuration (few epochs, Guard
// enabled so a diverging fine-tune restores the best epoch, Checkpoint
// pointed at a candidate dir so a crash mid-retrain is recoverable).
func FineTune(model nn.Layer, tr, va Dataset, cfg Config) *History {
	return Fit(model, tr, va, cfg)
}

// Fit trains the model on tr, monitoring va for early stopping, and
// returns the loss history. The returned History is itself the first
// training Hook; cfg.Hooks fire after it, in order, so a user hook
// observing OnEpochEnd sees History already extended for that epoch, and
// OnEarlyStop fires before any best-weight restoration.
func Fit(model nn.Layer, tr, va Dataset, cfg Config) *History {
	cfg.fillDefaults()
	fitSpan := startFitSpan(cfg, tr, va)
	defer fitSpan.End()
	rng := tensor.NewRNG(cfg.Seed)
	hist := &History{BestEpoch: -1}
	hooks := make([]Hook, 0, 1+len(cfg.Hooks))
	hooks = append(hooks, hist)
	hooks = append(hooks, cfg.Hooks...)
	// The pre-clip gradient norm costs a full pass over the parameters,
	// so it is computed only when someone beyond History is listening.
	wantGradNorm := len(cfg.Hooks) > 0
	best := math.Inf(1)
	var bestParams []*tensor.Tensor
	baseLR := cfg.Optimizer.LR()
	wait := 0
	// The guard's rollback needs best weights even when the caller did
	// not ask for final restoration.
	keepBest := cfg.RestoreBest || cfg.Guard.Enabled

	ckpt := cfg.Checkpoint
	ckpt.fillDefaults()
	startEpoch := 0
	if ckpt.enabled() && ckpt.Resume {
		dump, err := latestLoadableCheckpoint(ckpt.Dir)
		switch {
		case err != nil:
			obs.Logger("train").Warn("checkpoint resume failed; starting fresh",
				"dir", ckpt.Dir, "err", err)
		case dump != nil:
			b, w, bp, rerr := restoreCheckpoint(dump, model, cfg.Optimizer, rng, hist)
			if rerr != nil {
				obs.Logger("train").Error("checkpoint restore failed; training from current state",
					"dir", ckpt.Dir, "err", rerr)
				break
			}
			best, wait, startEpoch = b, w, dump.Epoch
			if bp != nil {
				bestParams = bp
			}
			obs.Logger("train").Info("resumed from checkpoint",
				"dir", ckpt.Dir, "epoch", dump.Epoch, "stopped", dump.Stopped)
			for _, h := range hooks {
				if ro, ok := h.(ResumeObserver); ok {
					ro.OnResume(ResumeInfo{Epoch: startEpoch, Stopped: dump.Stopped})
				}
			}
			if dump.Stopped || startEpoch >= cfg.Epochs {
				// The checkpointed run had already finished (early stop
				// or full epoch budget); don't train past it.
				if cfg.RestoreBest && bestParams != nil {
					restore(model, bestParams)
				}
				return hist
			}
		}
	}

	n := tr.Len()
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	// Per-batch gather buffers and validation scratch are reused across
	// the whole run; only the last (short) batch forces a reallocation.
	var batchScratch, evalScratch Dataset

	for epoch := startEpoch; epoch < cfg.Epochs; epoch++ {
		epochSpan := fitSpan.Start("epoch", obstrace.Int("epoch", epoch))
		lr := cfg.Schedule.Rate(epoch, baseLR)
		cfg.Optimizer.SetLR(lr)
		if cfg.Shuffle {
			rng.PermInto(order)
		}
		epochStart := time.Now()
		epochLoss := 0.0
		normSum := 0.0
		batches := 0
		applied := 0
		skippedBatches := 0
		for lo := 0; lo < n; lo += cfg.BatchSize {
			hi := lo + cfg.BatchSize
			if hi > n {
				hi = n
			}
			batchSpan := epochSpan.Start("batch", obstrace.Int("batch", batches))
			batchScratch = tr.GatherInto(order[lo:hi], batchScratch)
			batch := batchScratch
			nn.ZeroGrad(model)
			pred := model.Forward(batch.X, true)
			l := cfg.Loss.Forward(pred, batch.Y)
			l = fault.NaN("train.batch.loss", l)
			// Divergence guard: a non-finite (or explosive) batch loss
			// skips backward+step entirely — the weights, the optimizer
			// slots, and (critically for resume determinism) every RNG
			// stream are left exactly as if the batch had not happened.
			skipped := cfg.Guard.badLoss(l)
			gnorm := math.NaN()
			if !skipped {
				model.Backward(cfg.Loss.Backward())
				switch {
				case cfg.ClipNorm > 0:
					gnorm = opt.ClipGradNorm(model.Params(), cfg.ClipNorm)
				case wantGradNorm:
					gnorm = gradNorm(model.Params())
				}
				if cfg.ClipNorm > 0 && cfg.Guard.badNorm(gnorm) {
					// Finite loss but NaN/Inf gradients: still divergent.
					skipped = true
				}
			}
			if skipped {
				skippedBatches++
			} else {
				cfg.Optimizer.Step(model.Params())
				epochLoss += l
				applied++
			}
			if !math.IsNaN(gnorm) && !skipped {
				normSum += gnorm
			}
			batchSpan.SetAttr(obstrace.Float("loss", l), obstrace.Bool("skipped", skipped))
			batchSpan.End()
			for _, h := range hooks {
				h.OnBatchEnd(BatchStats{
					Epoch: epoch, Batch: batches, Size: hi - lo, Loss: l, GradNorm: gnorm,
					Skipped: skipped,
				})
			}
			batches++
		}

		validSpan := epochSpan.Start("validate")
		vl, evalScratchOut := evaluateLossInto(model, va, cfg.Loss, evalScratch)
		evalScratch = evalScratchOut
		validSpan.End()
		// NaN compares false, so a NaN validation loss can never become
		// the best — and NaN weights can never be snapshotted as "best".
		improved := vl < best
		if improved {
			best = vl
			wait = 0
			if keepBest {
				bestParams = snapshotInto(model, bestParams)
			}
		}
		rolledBack := false
		if !improved && cfg.Guard.Enabled && (math.IsNaN(vl) || math.IsInf(vl, 0)) && bestParams != nil {
			// The model itself has diverged (validation consumes no RNG,
			// so this is the weights, not bad luck): roll back to the
			// best weights and let training continue from there.
			restore(model, bestParams)
			rolledBack = true
		}
		stats := EpochStats{
			Epoch:          epoch,
			TrainLoss:      epochLoss / float64(batches),
			ValidLoss:      vl,
			GradNorm:       math.NaN(),
			LR:             lr,
			Duration:       time.Since(epochStart),
			Improved:       improved,
			BestEpoch:      hist.BestEpoch,
			SkippedBatches: skippedBatches,
			RolledBack:     rolledBack,
		}
		if skippedBatches > 0 {
			// Skipped batches contribute no loss; average the applied
			// ones (NaN when the whole epoch was skipped).
			stats.TrainLoss = epochLoss / float64(applied)
		}
		if improved {
			stats.BestEpoch = epoch
		}
		stats.BestValidLoss = best
		if wantGradNorm || cfg.ClipNorm > 0 {
			stats.GradNorm = normSum / float64(batches)
		}
		for _, h := range hooks {
			h.OnEpochEnd(stats)
		}
		epochSpan.SetAttr(
			obstrace.Float("train_loss", stats.TrainLoss),
			obstrace.Float("valid_loss", vl),
			obstrace.Bool("improved", improved),
		)
		epochSpan.End()
		stopping := false
		if !improved && cfg.Patience > 0 {
			wait++
			if wait >= cfg.Patience {
				stopping = true
				stop := StopInfo{
					Epoch: epoch, BestEpoch: hist.BestEpoch,
					BestValidLoss: best, Patience: cfg.Patience,
				}
				for _, h := range hooks {
					h.OnEarlyStop(stop)
				}
			}
		}
		if ckpt.enabled() && (stopping || epoch == cfg.Epochs-1 || (epoch+1)%ckpt.Every == 0) {
			dump, err := captureCheckpoint(model, cfg.Optimizer, rng, hist,
				best, wait, bestParams, epoch+1, stopping)
			if err == nil {
				err = saveCheckpoint(ckpt.Dir, ckpt.Keep, dump)
			}
			if err != nil {
				// Checkpointing is best-effort: a failed write must never
				// kill a training run that is otherwise healthy.
				obs.Logger("train").Warn("checkpoint write failed; training continues",
					"dir", ckpt.Dir, "epoch", epoch, "err", err)
			}
		}
		if stopping {
			break
		}
	}
	cfg.Optimizer.SetLR(baseLR)
	if cfg.RestoreBest && bestParams != nil {
		restore(model, bestParams)
	}
	return hist
}

// startFitSpan opens the run's "train.fit" span — nested under
// cfg.TraceParent when set, a new root on cfg.Tracer otherwise, nil
// (a no-op span) when tracing is off.
func startFitSpan(cfg Config, tr, va Dataset) *obstrace.Span {
	attrs := []obstrace.Attr{
		obstrace.Int("train_samples", tr.Len()),
		obstrace.Int("valid_samples", va.Len()),
		obstrace.Int("batch_size", cfg.BatchSize),
		obstrace.Int("epochs", cfg.Epochs),
	}
	if cfg.TraceParent != nil {
		return cfg.TraceParent.Start("train.fit", attrs...)
	}
	if cfg.Tracer != nil {
		return cfg.Tracer.Start("train.fit", attrs...)
	}
	return nil
}

// gradNorm is the global L2 norm of all parameter gradients (the value
// ClipGradNorm computes, without the clipping).
func gradNorm(params []*nn.Param) float64 {
	total := 0.0
	for _, p := range params {
		for _, g := range p.Grad.Data {
			total += g * g
		}
	}
	return math.Sqrt(total)
}

// snapshotInto copies the current parameter values into dst, cloning only
// on the first call (later snapshots reuse the same buffers).
func snapshotInto(model nn.Layer, dst []*tensor.Tensor) []*tensor.Tensor {
	ps := model.Params()
	if dst == nil {
		dst = make([]*tensor.Tensor, len(ps))
	}
	for i, p := range ps {
		if dst[i] == nil {
			dst[i] = p.Value.Clone()
		} else {
			dst[i].CopyFrom(p.Value)
		}
	}
	return dst
}

func restore(model nn.Layer, vals []*tensor.Tensor) {
	for i, p := range model.Params() {
		p.Value.CopyFrom(vals[i])
	}
}

// EvaluateLoss computes the mean loss of the model over a dataset in
// evaluation mode (dropout off), batching to bound memory.
func EvaluateLoss(model nn.Layer, d Dataset, loss nn.Loss) float64 {
	l, _ := evaluateLossInto(model, d, loss, Dataset{})
	return l
}

// evaluateLossInto is EvaluateLoss with a reusable batch scratch, so a
// caller evaluating every epoch (Fit) pays for the buffers once.
func evaluateLossInto(model nn.Layer, d Dataset, loss nn.Loss, scratch Dataset) (float64, Dataset) {
	if d.Len() == 0 {
		return math.NaN(), scratch
	}
	const batch = 256
	total := 0.0
	count := 0
	for lo := 0; lo < d.Len(); lo += batch {
		hi := lo + batch
		if hi > d.Len() {
			hi = d.Len()
		}
		scratch = d.SubsetInto(lo, hi, scratch)
		pred := model.Forward(scratch.X, false)
		total += loss.Forward(pred, scratch.Y) * float64(hi-lo)
		count += hi - lo
	}
	return total / float64(count), scratch
}

// Predict runs the model over a dataset in evaluation mode and returns the
// flat predictions (first output per sample when the model emits several).
func Predict(model nn.Layer, d Dataset) []float64 {
	if d.Len() == 0 {
		return nil
	}
	out := make([]float64, 0, d.Len())
	const batch = 256
	for lo := 0; lo < d.Len(); lo += batch {
		hi := lo + batch
		if hi > d.Len() {
			hi = d.Len()
		}
		sub := d.Subset(lo, hi)
		pred := model.Forward(sub.X, false)
		per := sampleSize(pred)
		for i := 0; i < pred.Dim(0); i++ {
			out = append(out, pred.Data[i*per])
		}
	}
	return out
}

// PredictAll is Predict but returns every output per sample ([N][K]).
func PredictAll(model nn.Layer, d Dataset) [][]float64 {
	if d.Len() == 0 {
		return nil
	}
	var out [][]float64
	const batch = 256
	for lo := 0; lo < d.Len(); lo += batch {
		hi := lo + batch
		if hi > d.Len() {
			hi = d.Len()
		}
		sub := d.Subset(lo, hi)
		pred := model.Forward(sub.X, false)
		per := sampleSize(pred)
		for i := 0; i < pred.Dim(0); i++ {
			row := make([]float64, per)
			copy(row, pred.Data[i*per:(i+1)*per])
			out = append(out, row)
		}
	}
	return out
}
