// Package train provides the supervised-learning harness used by every
// deep model in the experiments: mini-batch training with Adam, the
// paper's chronological 6:2:2 train/validation/test split, early stopping
// with patience (the Keras EarlyStopping callback the paper configures
// with patience=10), and per-epoch loss history for the convergence
// figures (Figs. 9–10).
package train

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/nn"
	"repro/internal/opt"
	"repro/internal/tensor"
)

// Dataset is a supervised dataset: X has the sample dimension first
// ([N, features] or [N, channels, time]) and Y is [N, outputs].
type Dataset struct {
	X *tensor.Tensor
	Y *tensor.Tensor
}

// Len returns the number of samples.
func (d Dataset) Len() int {
	if d.X == nil {
		return 0
	}
	return d.X.Dim(0)
}

// Subset returns the sample range [lo, hi) as a new dataset (copied).
func (d Dataset) Subset(lo, hi int) Dataset {
	return Dataset{X: sliceSamples(d.X, lo, hi), Y: sliceSamples(d.Y, lo, hi)}
}

// Gather returns the samples at the given indices as a new dataset.
func (d Dataset) Gather(idx []int) Dataset {
	return Dataset{X: gatherSamples(d.X, idx), Y: gatherSamples(d.Y, idx)}
}

func sampleSize(t *tensor.Tensor) int {
	s := 1
	for _, dim := range t.Shape()[1:] {
		s *= dim
	}
	return s
}

func sliceSamples(t *tensor.Tensor, lo, hi int) *tensor.Tensor {
	per := sampleSize(t)
	shape := t.Shape()
	shape[0] = hi - lo
	out := tensor.New(shape...)
	copy(out.Data, t.Data[lo*per:hi*per])
	return out
}

func gatherSamples(t *tensor.Tensor, idx []int) *tensor.Tensor {
	per := sampleSize(t)
	shape := t.Shape()
	shape[0] = len(idx)
	out := tensor.New(shape...)
	for i, j := range idx {
		copy(out.Data[i*per:(i+1)*per], t.Data[j*per:(j+1)*per])
	}
	return out
}

// Split divides a dataset chronologically into train/validation/test
// fractions (the paper uses 6:2:2). Fractions must be positive and sum to
// at most 1; the test set receives the remainder.
func Split(d Dataset, trainFrac, validFrac float64) (tr, va, te Dataset, err error) {
	if trainFrac <= 0 || validFrac <= 0 || trainFrac+validFrac >= 1 {
		return tr, va, te, fmt.Errorf("train: invalid split fractions %g/%g", trainFrac, validFrac)
	}
	n := d.Len()
	nTrain := int(float64(n) * trainFrac)
	nValid := int(float64(n) * validFrac)
	if nTrain == 0 || nValid == 0 || nTrain+nValid >= n {
		return tr, va, te, errors.New("train: dataset too small to split")
	}
	return d.Subset(0, nTrain), d.Subset(nTrain, nTrain+nValid), d.Subset(nTrain+nValid, n), nil
}

// History records per-epoch losses; it backs the convergence figures.
type History struct {
	TrainLoss []float64
	ValidLoss []float64
	BestEpoch int // epoch index of the best validation loss
	Stopped   bool
}

// Config controls a training run.
type Config struct {
	Epochs    int
	BatchSize int
	Optimizer opt.Optimizer
	Loss      nn.Loss
	// Patience is the early-stopping patience in epochs; 0 disables early
	// stopping. The paper uses 10.
	Patience int
	// ClipNorm, when positive, clips the global gradient norm each step.
	ClipNorm float64
	// Shuffle controls whether training batches are re-shuffled per epoch.
	Shuffle bool
	// Seed seeds the shuffling RNG.
	Seed uint64
	// Schedule optionally adjusts the learning rate per epoch.
	Schedule opt.Schedule
	// RestoreBest restores the parameter values from the best validation
	// epoch after training (like Keras restore_best_weights).
	RestoreBest bool
}

func (c *Config) fillDefaults() {
	if c.Epochs == 0 {
		c.Epochs = 50
	}
	if c.BatchSize == 0 {
		c.BatchSize = 32
	}
	if c.Optimizer == nil {
		c.Optimizer = opt.NewAdam(1e-3)
	}
	if c.Loss == nil {
		c.Loss = &nn.MSELoss{}
	}
	if c.Schedule == nil {
		c.Schedule = opt.ConstantSchedule{}
	}
}

// Fit trains the model on tr, monitoring va for early stopping, and
// returns the loss history.
func Fit(model nn.Layer, tr, va Dataset, cfg Config) *History {
	cfg.fillDefaults()
	rng := tensor.NewRNG(cfg.Seed)
	hist := &History{BestEpoch: -1}
	best := math.Inf(1)
	var bestParams []*tensor.Tensor
	baseLR := cfg.Optimizer.LR()
	wait := 0

	n := tr.Len()
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		cfg.Optimizer.SetLR(cfg.Schedule.Rate(epoch, baseLR))
		if cfg.Shuffle {
			order = rng.Perm(n)
		}
		epochLoss := 0.0
		batches := 0
		for lo := 0; lo < n; lo += cfg.BatchSize {
			hi := lo + cfg.BatchSize
			if hi > n {
				hi = n
			}
			batch := tr.Gather(order[lo:hi])
			nn.ZeroGrad(model)
			pred := model.Forward(batch.X, true)
			l := cfg.Loss.Forward(pred, batch.Y)
			model.Backward(cfg.Loss.Backward())
			if cfg.ClipNorm > 0 {
				opt.ClipGradNorm(model.Params(), cfg.ClipNorm)
			}
			cfg.Optimizer.Step(model.Params())
			epochLoss += l
			batches++
		}
		hist.TrainLoss = append(hist.TrainLoss, epochLoss/float64(batches))

		vl := EvaluateLoss(model, va, cfg.Loss)
		hist.ValidLoss = append(hist.ValidLoss, vl)
		if vl < best {
			best = vl
			hist.BestEpoch = epoch
			wait = 0
			if cfg.RestoreBest {
				bestParams = snapshot(model)
			}
		} else if cfg.Patience > 0 {
			wait++
			if wait >= cfg.Patience {
				hist.Stopped = true
				break
			}
		}
	}
	cfg.Optimizer.SetLR(baseLR)
	if cfg.RestoreBest && bestParams != nil {
		restore(model, bestParams)
	}
	return hist
}

func snapshot(model nn.Layer) []*tensor.Tensor {
	ps := model.Params()
	out := make([]*tensor.Tensor, len(ps))
	for i, p := range ps {
		out[i] = p.Value.Clone()
	}
	return out
}

func restore(model nn.Layer, vals []*tensor.Tensor) {
	for i, p := range model.Params() {
		p.Value.CopyFrom(vals[i])
	}
}

// EvaluateLoss computes the mean loss of the model over a dataset in
// evaluation mode (dropout off), batching to bound memory.
func EvaluateLoss(model nn.Layer, d Dataset, loss nn.Loss) float64 {
	if d.Len() == 0 {
		return math.NaN()
	}
	const batch = 256
	total := 0.0
	count := 0
	for lo := 0; lo < d.Len(); lo += batch {
		hi := lo + batch
		if hi > d.Len() {
			hi = d.Len()
		}
		sub := d.Subset(lo, hi)
		pred := model.Forward(sub.X, false)
		total += loss.Forward(pred, sub.Y) * float64(hi-lo)
		count += hi - lo
	}
	return total / float64(count)
}

// Predict runs the model over a dataset in evaluation mode and returns the
// flat predictions (first output per sample when the model emits several).
func Predict(model nn.Layer, d Dataset) []float64 {
	if d.Len() == 0 {
		return nil
	}
	out := make([]float64, 0, d.Len())
	const batch = 256
	for lo := 0; lo < d.Len(); lo += batch {
		hi := lo + batch
		if hi > d.Len() {
			hi = d.Len()
		}
		sub := d.Subset(lo, hi)
		pred := model.Forward(sub.X, false)
		per := sampleSize(pred)
		for i := 0; i < pred.Dim(0); i++ {
			out = append(out, pred.Data[i*per])
		}
	}
	return out
}

// PredictAll is Predict but returns every output per sample ([N][K]).
func PredictAll(model nn.Layer, d Dataset) [][]float64 {
	if d.Len() == 0 {
		return nil
	}
	var out [][]float64
	const batch = 256
	for lo := 0; lo < d.Len(); lo += batch {
		hi := lo + batch
		if hi > d.Len() {
			hi = d.Len()
		}
		sub := d.Subset(lo, hi)
		pred := model.Forward(sub.X, false)
		per := sampleSize(pred)
		for i := 0; i < pred.Dim(0); i++ {
			row := make([]float64, per)
			copy(row, pred.Data[i*per:(i+1)*per])
			out = append(out, row)
		}
	}
	return out
}
