package train

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/fault"
	"repro/internal/fsx"
	"repro/internal/nn"
	"repro/internal/opt"
	"repro/internal/tensor"
)

// CheckpointConfig controls periodic training checkpoints and resume.
// A checkpoint captures everything an interrupted run needs to continue
// bitwise identically to an uninterrupted one: model weights, optimizer
// slots, the shuffle RNG stream, every layer-internal RNG stream
// (dropout masks), the loss history, and the early-stopping bookkeeping.
type CheckpointConfig struct {
	// Dir enables checkpointing when non-empty; checkpoint files are
	// written there as ckpt-<epoch>.json with atomic temp+fsync+rename.
	Dir string
	// Every is the epoch interval between checkpoints (default 1).
	Every int
	// Resume makes Fit restore the newest loadable checkpoint in Dir
	// before training; corrupt or missing checkpoints start fresh.
	Resume bool
	// Keep is how many recent checkpoints to retain (default 2 — the
	// newest may be mid-write during a crash, so always keep a spare).
	Keep int
}

func (c *CheckpointConfig) fillDefaults() {
	if c.Every <= 0 {
		c.Every = 1
	}
	if c.Keep <= 0 {
		c.Keep = 2
	}
}

func (c CheckpointConfig) enabled() bool { return c.Dir != "" }

// checkpointFormat is bumped on incompatible checkpoint changes.
const checkpointFormat = 1

// checkpointDump is the on-disk checkpoint. Loss values are stored as
// IEEE-754 bit patterns: they survive NaN/Inf (invalid in JSON) and are
// exactly round-trippable, which the bitwise resume contract requires.
type checkpointDump struct {
	Format  int  `json:"format"`
	Epoch   int  `json:"epoch"` // completed epochs; resume starts here
	Stopped bool `json:"stopped,omitempty"`

	TrainLossBits []uint64 `json:"train_loss_bits"`
	ValidLossBits []uint64 `json:"valid_loss_bits"`
	BestEpoch     int      `json:"best_epoch"`
	BestBits      uint64   `json:"best_bits"`
	Wait          int      `json:"wait"`

	ShuffleRNG tensor.RNGState   `json:"shuffle_rng"`
	LayerRNGs  []tensor.RNGState `json:"layer_rngs,omitempty"`
	Optimizer  *opt.State        `json:"optimizer,omitempty"`

	Weights     json.RawMessage `json:"weights"`
	BestWeights [][]float64     `json:"best_weights,omitempty"`
}

func floatBits(xs []float64) []uint64 {
	out := make([]uint64, len(xs))
	for i, x := range xs {
		out[i] = math.Float64bits(x)
	}
	return out
}

func bitsFloats(bits []uint64) []float64 {
	out := make([]float64, len(bits))
	for i, b := range bits {
		out[i] = math.Float64frombits(b)
	}
	return out
}

// checkpointPath names the checkpoint file for a completed-epoch count.
func checkpointPath(dir string, epoch int) string {
	return filepath.Join(dir, fmt.Sprintf("ckpt-%06d.json", epoch))
}

// listCheckpoints returns checkpoint files in dir, oldest first.
func listCheckpoints(dir string) []string {
	matches, err := filepath.Glob(filepath.Join(dir, "ckpt-*.json"))
	if err != nil {
		return nil
	}
	sort.Strings(matches)
	return matches
}

// saveCheckpoint writes one checkpoint crash-safely and prunes old
// files down to keep. The "train.checkpoint" fault point can inject an
// I/O error here; Fit treats checkpoint failures as non-fatal.
func saveCheckpoint(dir string, keep int, dump *checkpointDump) error {
	if err := fault.Error("train.checkpoint"); err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("train: checkpoint dir: %w", err)
	}
	path := checkpointPath(dir, dump.Epoch)
	err := fsx.WriteFileAtomic(path, func(w io.Writer) error {
		return json.NewEncoder(w).Encode(dump)
	})
	if err != nil {
		return err
	}
	PruneCheckpoints(dir, keep)
	return nil
}

// PruneCheckpoints removes all but the newest keep checkpoint files
// under dir, returning how many were removed (keep ≤ 0 removes all; a
// missing dir is a no-op). Fit prunes after every save; the adaptation
// supervisor also calls this directly to clear candidate-model
// artifacts left behind by failed or killed retrains, so crash
// leftovers can never accumulate into a full disk.
func PruneCheckpoints(dir string, keep int) int {
	if keep < 0 {
		keep = 0
	}
	files := listCheckpoints(dir)
	removed := 0
	for len(files) > keep {
		if os.Remove(files[0]) == nil {
			removed++
		}
		files = files[1:]
	}
	return removed
}

// loadCheckpoint reads and validates one checkpoint file.
func loadCheckpoint(path string) (*checkpointDump, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("train: %w", err)
	}
	defer f.Close()
	var dump checkpointDump
	if err := json.NewDecoder(f).Decode(&dump); err != nil {
		return nil, fmt.Errorf("train: decoding checkpoint %s: %w", path, err)
	}
	if dump.Format != checkpointFormat {
		return nil, fmt.Errorf("train: unsupported checkpoint format %d (want %d)", dump.Format, checkpointFormat)
	}
	if dump.Epoch <= 0 || len(dump.TrainLossBits) != dump.Epoch || len(dump.ValidLossBits) != dump.Epoch {
		return nil, fmt.Errorf("train: corrupt checkpoint %s: epoch %d with %d/%d loss entries",
			path, dump.Epoch, len(dump.TrainLossBits), len(dump.ValidLossBits))
	}
	if len(dump.Weights) == 0 {
		return nil, fmt.Errorf("train: corrupt checkpoint %s: no weights", path)
	}
	return &dump, nil
}

// latestLoadableCheckpoint walks dir's checkpoints newest-first and
// returns the first that loads cleanly — a crash can leave the newest
// file truncated, in which case the previous one is the resume point.
// It returns (nil, nil) when the directory holds no checkpoints at all.
func latestLoadableCheckpoint(dir string) (*checkpointDump, error) {
	files := listCheckpoints(dir)
	var firstErr error
	for i := len(files) - 1; i >= 0; i-- {
		dump, err := loadCheckpoint(files[i])
		if err == nil {
			return dump, nil
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return nil, nil
}

// LatestCheckpointEpoch reports the completed-epoch count of the newest
// loadable checkpoint under dir (0, false when none exists) — used by
// commands to log what a resumed run will skip.
func LatestCheckpointEpoch(dir string) (int, bool) {
	dump, err := latestLoadableCheckpoint(dir)
	if err != nil || dump == nil {
		return 0, false
	}
	return dump.Epoch, true
}

// captureCheckpoint snapshots the full training state after `epoch`
// completed epochs.
func captureCheckpoint(model nn.Layer, optimizer opt.Optimizer, rng *tensor.RNG,
	hist *History, best float64, wait int, bestParams []*tensor.Tensor,
	epoch int, stopped bool) (*checkpointDump, error) {

	var weights bytes.Buffer
	if err := nn.SaveParams(&weights, model); err != nil {
		return nil, err
	}
	dump := &checkpointDump{
		Format:        checkpointFormat,
		Epoch:         epoch,
		Stopped:       stopped,
		TrainLossBits: floatBits(hist.TrainLoss),
		ValidLossBits: floatBits(hist.ValidLoss),
		BestEpoch:     hist.BestEpoch,
		BestBits:      math.Float64bits(best),
		Wait:          wait,
		ShuffleRNG:    rng.State(),
		LayerRNGs:     nn.RNGStates(model),
		Weights:       json.RawMessage(weights.Bytes()),
	}
	if st, ok := optimizer.(opt.Stateful); ok {
		s := st.CaptureState(model.Params())
		dump.Optimizer = &s
	}
	if bestParams != nil {
		dump.BestWeights = make([][]float64, len(bestParams))
		for i, t := range bestParams {
			dump.BestWeights[i] = append([]float64(nil), t.Data...)
		}
	}
	return dump, nil
}

// restoreCheckpoint reinstalls a checkpoint into a freshly built model
// and optimizer, returning the early-stopping bookkeeping Fit needs.
// The model must have the architecture the checkpoint was captured
// from; mismatches are errors.
func restoreCheckpoint(dump *checkpointDump, model nn.Layer, optimizer opt.Optimizer,
	rng *tensor.RNG, hist *History) (best float64, wait int, bestParams []*tensor.Tensor, err error) {

	if err = nn.LoadParams(bytes.NewReader(dump.Weights), model); err != nil {
		return 0, 0, nil, err
	}
	if err = nn.SetRNGStates(model, dump.LayerRNGs); err != nil {
		return 0, 0, nil, err
	}
	if dump.Optimizer != nil {
		st, ok := optimizer.(opt.Stateful)
		if !ok {
			return 0, 0, nil, fmt.Errorf("train: checkpoint has optimizer state but %T cannot restore it", optimizer)
		}
		if err = st.RestoreState(model.Params(), *dump.Optimizer); err != nil {
			return 0, 0, nil, err
		}
	}
	rng.SetState(dump.ShuffleRNG)
	hist.TrainLoss = bitsFloats(dump.TrainLossBits)
	hist.ValidLoss = bitsFloats(dump.ValidLossBits)
	hist.BestEpoch = dump.BestEpoch
	hist.Stopped = dump.Stopped

	if dump.BestWeights != nil {
		ps := model.Params()
		if len(dump.BestWeights) != len(ps) {
			return 0, 0, nil, fmt.Errorf("train: checkpoint best weights cover %d params, model has %d",
				len(dump.BestWeights), len(ps))
		}
		bestParams = make([]*tensor.Tensor, len(ps))
		for i, p := range ps {
			if len(dump.BestWeights[i]) != p.Value.Size() {
				return 0, 0, nil, fmt.Errorf("train: checkpoint best weights param %d length %d, want %d",
					i, len(dump.BestWeights[i]), p.Value.Size())
			}
			bestParams[i] = tensor.New(p.Value.Shape()...)
			copy(bestParams[i].Data, dump.BestWeights[i])
		}
	}
	return math.Float64frombits(dump.BestBits), dump.Wait, bestParams, nil
}
