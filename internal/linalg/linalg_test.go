package linalg

import (
	"math"
	"testing"
	"testing/quick"
)

func approxEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(1, 2, 5)
	if m.At(1, 2) != 5 || m.Data[5] != 5 {
		t.Fatal("row-major Set/At broken")
	}
	r := m.Row(1)
	r[0] = 7
	if m.At(1, 0) != 7 {
		t.Fatal("Row must be a view")
	}
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) == 9 {
		t.Fatal("Clone must copy")
	}
}

func TestMatrixFromSliceMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MatrixFromSlice([]float64{1, 2, 3}, 2, 2)
}

func TestMulKnown(t *testing.T) {
	a := MatrixFromSlice([]float64{1, 2, 3, 4}, 2, 2)
	b := MatrixFromSlice([]float64{5, 6, 7, 8}, 2, 2)
	c := a.Mul(b)
	want := []float64{19, 22, 43, 50}
	for i, v := range want {
		if c.Data[i] != v {
			t.Fatalf("Mul = %v, want %v", c.Data, want)
		}
	}
}

func TestMulVec(t *testing.T) {
	a := MatrixFromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	got := a.MulVec([]float64{1, 0, -1})
	if got[0] != -2 || got[1] != -2 {
		t.Fatalf("MulVec = %v", got)
	}
}

func TestTranspose(t *testing.T) {
	a := MatrixFromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	at := a.T()
	if at.Rows != 3 || at.Cols != 2 || at.At(2, 0) != 3 || at.At(1, 1) != 5 {
		t.Fatalf("T = %v", at.Data)
	}
}

func TestIdentityMul(t *testing.T) {
	a := MatrixFromSlice([]float64{2, -1, 0, 3}, 2, 2)
	if got := Identity(2).Mul(a); !slicesApproxEq(got.Data, a.Data, 0) {
		t.Fatalf("I·A = %v", got.Data)
	}
}

func slicesApproxEq(a, b []float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !approxEq(a[i], b[i], tol) {
			return false
		}
	}
	return true
}

func TestCholeskyReconstruct(t *testing.T) {
	// A symmetric positive-definite matrix.
	a := MatrixFromSlice([]float64{
		4, 12, -16,
		12, 37, -43,
		-16, -43, 98,
	}, 3, 3)
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	recon := l.Mul(l.T())
	if !slicesApproxEq(recon.Data, a.Data, 1e-9) {
		t.Fatalf("L·Lᵀ = %v, want %v", recon.Data, a.Data)
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := MatrixFromSlice([]float64{1, 2, 2, 1}, 2, 2) // eigenvalues 3, -1
	if _, err := Cholesky(a); err == nil {
		t.Fatal("expected error for indefinite matrix")
	}
}

func TestSolveCholesky(t *testing.T) {
	a := MatrixFromSlice([]float64{4, 2, 2, 3}, 2, 2)
	b := []float64{10, 9}
	x, err := SolveCholesky(a, b)
	if err != nil {
		t.Fatal(err)
	}
	got := a.MulVec(x)
	if !slicesApproxEq(got, b, 1e-10) {
		t.Fatalf("A·x = %v, want %v", got, b)
	}
}

func TestQROrthonormalAndReconstruct(t *testing.T) {
	a := MatrixFromSlice([]float64{
		1, 2,
		3, 4,
		5, 6,
		7, 9,
	}, 4, 2)
	q, r, err := QR(a)
	if err != nil {
		t.Fatal(err)
	}
	// QᵀQ = I.
	qtq := q.T().Mul(q)
	if !slicesApproxEq(qtq.Data, Identity(2).Data, 1e-10) {
		t.Fatalf("QᵀQ = %v", qtq.Data)
	}
	// Q·R = A.
	recon := q.Mul(r)
	if !slicesApproxEq(recon.Data, a.Data, 1e-10) {
		t.Fatalf("QR = %v, want %v", recon.Data, a.Data)
	}
	// R upper triangular.
	if r.At(1, 0) != 0 {
		t.Fatalf("R not upper triangular: %v", r.Data)
	}
}

func TestSolveLeastSquaresExact(t *testing.T) {
	// Square nonsingular system: least squares equals the exact solution.
	a := MatrixFromSlice([]float64{2, 1, 1, 3}, 2, 2)
	b := []float64{5, 10}
	x, err := SolveLeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !slicesApproxEq(a.MulVec(x), b, 1e-10) {
		t.Fatalf("x = %v", x)
	}
}

func TestSolveLeastSquaresOverdetermined(t *testing.T) {
	// Fit y = 2x + 1 with noise-free data; the LS solution must recover it.
	xs := []float64{0, 1, 2, 3, 4}
	a := NewMatrix(len(xs), 2)
	b := make([]float64, len(xs))
	for i, x := range xs {
		a.Set(i, 0, x)
		a.Set(i, 1, 1)
		b[i] = 2*x + 1
	}
	coef, err := SolveLeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !approxEq(coef[0], 2, 1e-10) || !approxEq(coef[1], 1, 1e-10) {
		t.Fatalf("coef = %v, want [2 1]", coef)
	}
}

func TestSolveLeastSquaresResidualOrthogonal(t *testing.T) {
	// Property of LS: the residual is orthogonal to the column space.
	a := MatrixFromSlice([]float64{
		1, 0,
		1, 1,
		1, 2,
		1, 3,
	}, 4, 2)
	b := []float64{1, 3, 2, 5}
	x, err := SolveLeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	fit := a.MulVec(x)
	res := make([]float64, len(b))
	for i := range b {
		res[i] = b[i] - fit[i]
	}
	proj := a.T().MulVec(res)
	for _, v := range proj {
		if math.Abs(v) > 1e-10 {
			t.Fatalf("Aᵀr = %v, want ~0", proj)
		}
	}
}

func TestSolveToeplitzAgainstCholesky(t *testing.T) {
	// Build a symmetric positive-definite Toeplitz system and compare
	// Levinson–Durbin with a dense Cholesky solve.
	r := []float64{1, 0.6, 0.3, 0.1}
	b := []float64{1, 2, 3, 4}
	n := len(b)
	dense := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			d := i - j
			if d < 0 {
				d = -d
			}
			dense.Set(i, j, r[d])
		}
	}
	want, err := SolveCholesky(dense, b)
	if err != nil {
		t.Fatal(err)
	}
	got, err := SolveToeplitz(r, b)
	if err != nil {
		t.Fatal(err)
	}
	if !slicesApproxEq(got, want, 1e-8) {
		t.Fatalf("Toeplitz solve = %v, want %v", got, want)
	}
}

func TestSolveToeplitzSingular(t *testing.T) {
	if _, err := SolveToeplitz([]float64{0, 0}, []float64{1, 1}); err == nil {
		t.Fatal("expected error for zero diagonal")
	}
}

// Property: for random SPD systems, SolveCholesky returns x with A·x ≈ b.
func TestPropertySolveCholeskyResidual(t *testing.T) {
	f := func(seed int64) bool {
		rng := newTestRNG(uint64(seed))
		n := 3 + int(rng.next()%4)
		// A = MᵀM + I is SPD.
		m := NewMatrix(n, n)
		for i := range m.Data {
			m.Data[i] = rng.norm()
		}
		a := m.T().Mul(m)
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+1)
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.norm()
		}
		x, err := SolveCholesky(a, b)
		if err != nil {
			return false
		}
		got := a.MulVec(x)
		return slicesApproxEq(got, b, 1e-7)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Minimal local RNG so this package does not depend on internal/tensor.
type testRNG struct{ s uint64 }

func newTestRNG(seed uint64) *testRNG {
	if seed == 0 {
		seed = 1
	}
	return &testRNG{s: seed}
}

func (r *testRNG) next() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545f4914f6cdd1d
}

func (r *testRNG) uniform() float64 { return float64(r.next()>>11) / (1 << 53) }

func (r *testRNG) norm() float64 {
	u1 := r.uniform()
	if u1 < 1e-12 {
		u1 = 1e-12
	}
	u2 := r.uniform()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}
