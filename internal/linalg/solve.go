package linalg

import (
	"errors"
	"math"
)

// ErrSingular is returned when a system is singular or numerically
// unsolvable at working precision.
var ErrSingular = errors.New("linalg: matrix is singular to working precision")

// Cholesky computes the lower-triangular factor L with A = L·Lᵀ for a
// symmetric positive-definite matrix. It returns ErrSingular if A is not
// positive definite.
func Cholesky(a *Matrix) (*Matrix, error) {
	if a.Rows != a.Cols {
		return nil, errors.New("linalg: Cholesky requires a square matrix")
	}
	n := a.Rows
	l := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a.At(i, j)
			for k := 0; k < j; k++ {
				sum -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if sum <= 0 {
					return nil, ErrSingular
				}
				l.Set(i, j, math.Sqrt(sum))
			} else {
				l.Set(i, j, sum/l.At(j, j))
			}
		}
	}
	return l, nil
}

// SolveCholesky solves A·x = b for symmetric positive-definite A using the
// Cholesky factorization.
func SolveCholesky(a *Matrix, b []float64) ([]float64, error) {
	l, err := Cholesky(a)
	if err != nil {
		return nil, err
	}
	n := a.Rows
	if len(b) != n {
		return nil, errors.New("linalg: SolveCholesky length mismatch")
	}
	// Forward substitution: L·y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= l.At(i, k) * y[k]
		}
		y[i] = s / l.At(i, i)
	}
	// Back substitution: Lᵀ·x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * x[k]
		}
		x[i] = s / l.At(i, i)
	}
	return x, nil
}

// QR computes the thin QR decomposition of an m×n matrix (m ≥ n) using
// Householder reflections: A = Q·R with Q m×n orthonormal and R n×n upper
// triangular.
func QR(a *Matrix) (q, r *Matrix, err error) {
	m, n := a.Rows, a.Cols
	if m < n {
		return nil, nil, errors.New("linalg: QR requires rows >= cols")
	}
	// Work on a copy; accumulate Householder vectors in-place.
	work := a.Clone()
	vs := make([][]float64, n) // Householder vectors
	for k := 0; k < n; k++ {
		// Compute the norm of the k-th column below the diagonal.
		norm := 0.0
		for i := k; i < m; i++ {
			norm += work.At(i, k) * work.At(i, k)
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			return nil, nil, ErrSingular
		}
		alpha := -math.Copysign(norm, work.At(k, k))
		v := make([]float64, m)
		v[k] = work.At(k, k) - alpha
		for i := k + 1; i < m; i++ {
			v[i] = work.At(i, k)
		}
		vnorm2 := 0.0
		for i := k; i < m; i++ {
			vnorm2 += v[i] * v[i]
		}
		if vnorm2 == 0 {
			return nil, nil, ErrSingular
		}
		vs[k] = v
		// Apply reflector to remaining columns.
		for j := k; j < n; j++ {
			dot := 0.0
			for i := k; i < m; i++ {
				dot += v[i] * work.At(i, j)
			}
			c := 2 * dot / vnorm2
			for i := k; i < m; i++ {
				work.Set(i, j, work.At(i, j)-c*v[i])
			}
		}
	}
	r = NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			r.Set(i, j, work.At(i, j))
		}
	}
	// Build thin Q by applying the reflectors to the first n columns of I.
	q = NewMatrix(m, n)
	for j := 0; j < n; j++ {
		col := make([]float64, m)
		col[j] = 1
		for k := n - 1; k >= 0; k-- {
			v := vs[k]
			vnorm2 := 0.0
			dot := 0.0
			for i := k; i < m; i++ {
				vnorm2 += v[i] * v[i]
				dot += v[i] * col[i]
			}
			c := 2 * dot / vnorm2
			for i := k; i < m; i++ {
				col[i] -= c * v[i]
			}
		}
		for i := 0; i < m; i++ {
			q.Set(i, j, col[i])
		}
	}
	return q, r, nil
}

// SolveLeastSquares returns x minimizing ‖A·x − b‖₂ via QR decomposition.
func SolveLeastSquares(a *Matrix, b []float64) ([]float64, error) {
	if len(b) != a.Rows {
		return nil, errors.New("linalg: SolveLeastSquares length mismatch")
	}
	q, r, err := QR(a)
	if err != nil {
		return nil, err
	}
	n := a.Cols
	// y = Qᵀ b.
	y := make([]float64, n)
	for j := 0; j < n; j++ {
		s := 0.0
		for i := 0; i < a.Rows; i++ {
			s += q.At(i, j) * b[i]
		}
		y[j] = s
	}
	// Back substitution on R x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= r.At(i, k) * x[k]
		}
		d := r.At(i, i)
		if math.Abs(d) < 1e-12 {
			return nil, ErrSingular
		}
		x[i] = s / d
	}
	return x, nil
}

// SolveToeplitz solves the symmetric Toeplitz system T·x = b where T is
// defined by its first row r (the Levinson–Durbin recursion). It is used by
// the Yule–Walker equations for AR start values.
func SolveToeplitz(r, b []float64) ([]float64, error) {
	n := len(b)
	if len(r) < n {
		return nil, errors.New("linalg: SolveToeplitz needs len(r) >= len(b)")
	}
	if r[0] == 0 {
		return nil, ErrSingular
	}
	x := make([]float64, n)
	// Forward vector for the Levinson recursion.
	f := make([]float64, n)
	f[0] = 1 / r[0]
	x[0] = b[0] / r[0]
	for k := 1; k < n; k++ {
		// epsilon_f = sum r[k-i]*f[i] over i in [0,k)
		ef := 0.0
		for i := 0; i < k; i++ {
			ef += r[k-i] * f[i]
		}
		denom := 1 - ef*ef
		if denom == 0 {
			return nil, ErrSingular
		}
		// Update forward vector (symmetric Toeplitz: backward = reversed forward).
		newF := make([]float64, k+1)
		for i := 0; i <= k; i++ {
			var fi, bi float64
			if i < k {
				fi = f[i]
			}
			if i > 0 {
				bi = f[k-i] // backward vector entry
			}
			newF[i] = (fi - ef*bi) / denom
		}
		f = newF
		// epsilon_x = sum r[k-i]*x[i]
		ex := 0.0
		for i := 0; i < k; i++ {
			ex += r[k-i] * x[i]
		}
		// x update with backward vector (reverse of f).
		for i := 0; i <= k; i++ {
			x[i] += (b[k] - ex) * f[k-i]
		}
	}
	return x, nil
}
