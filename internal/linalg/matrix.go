// Package linalg provides the dense linear-algebra routines used by the
// statistical baselines (ARIMA, Yule–Walker, ordinary least squares).
// It is independent of the tensor package so that statistical code does not
// pull in the neural-network stack.
package linalg

import "fmt"

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix returns a zero r×c matrix.
func NewMatrix(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("linalg: negative matrix dimensions %d×%d", r, c))
	}
	return &Matrix{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// MatrixFromSlice wraps data (not copied) as an r×c matrix.
func MatrixFromSlice(data []float64, r, c int) *Matrix {
	if len(data) != r*c {
		panic(fmt.Sprintf("linalg: data length %d != %d×%d", len(data), r, c))
	}
	return &Matrix{Rows: r, Cols: c, Data: data}
}

// At returns element (i,j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set writes element (i,j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view (not a copy) of row i.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// T returns the transpose as a new matrix.
func (m *Matrix) T() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Data[j*m.Rows+i] = m.Data[i*m.Cols+j]
		}
	}
	return t
}

// Mul returns m × b.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: Mul dimension mismatch %d×%d by %d×%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		arow := m.Row(i)
		orow := out.Row(i)
		for p, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Row(p)
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// MulVec returns m × v for a vector v of length m.Cols.
func (m *Matrix) MulVec(v []float64) []float64 {
	if len(v) != m.Cols {
		panic(fmt.Sprintf("linalg: MulVec length %d != cols %d", len(v), m.Cols))
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		s := 0.0
		for j, rv := range row {
			s += rv * v[j]
		}
		out[i] = s
	}
	return out
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}
