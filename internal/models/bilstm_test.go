package models

import (
	"testing"

	"repro/internal/nn"
	"repro/internal/tensor"
)

func TestBiLSTMShapes(t *testing.T) {
	r := tensor.NewRNG(1)
	m := NewBiLSTM(r, BiLSTMConfig{InChannels: 3, Hidden: 4, Horizon: 2})
	shapesOK(t, m, tensor.RandN(r, 5, 3, 8), 2)
}

func TestBiLSTMGradients(t *testing.T) {
	r := tensor.NewRNG(2)
	m := NewBiLSTM(r, BiLSTMConfig{InChannels: 2, Hidden: 3, Horizon: 1})
	x := tensor.RandN(r, 2, 2, 6)
	err, detail := nn.GradCheck(m, x, 3, 1e-6)
	if err > 1e-5 {
		t.Fatalf("BiLSTM gradient check failed: relerr=%g at %s", err, detail)
	}
}

func TestBiLSTMParamCount(t *testing.T) {
	r := tensor.NewRNG(3)
	m := NewBiLSTM(r, BiLSTMConfig{InChannels: 2, Hidden: 4, Horizon: 1})
	// Two LSTMs (Wx [16,2] + Wh [16,4] + B [16]) + Dense (8→1 + 1 bias).
	want := 2*(16*2+16*4+16) + 8 + 1
	if got := nn.ParamCount(m); got != want {
		t.Fatalf("ParamCount = %d, want %d", got, want)
	}
}

func TestGRUModelShapesAndGradients(t *testing.T) {
	r := tensor.NewRNG(4)
	m := NewGRU(r, GRUConfig{InChannels: 2, Hidden: 4, Horizon: 2})
	shapesOK(t, m, tensor.RandN(r, 3, 2, 7), 2)
	err, detail := nn.GradCheck(m, tensor.RandN(r, 2, 2, 5), 5, 1e-6)
	if err > 1e-5 {
		t.Fatalf("GRU model gradient check failed: relerr=%g at %s", err, detail)
	}
}

func TestBiLSTMUsesBothDirections(t *testing.T) {
	// Perturbing the FIRST time step must change the output (the backward
	// direction sees it last, the forward direction first — either way the
	// model must be sensitive to it).
	r := tensor.NewRNG(5)
	m := NewBiLSTM(r, BiLSTMConfig{InChannels: 1, Hidden: 3, Horizon: 1})
	x := tensor.RandN(r, 1, 1, 6)
	y1 := m.Forward(x, false).At(0, 0)
	x.Set(x.At(0, 0, 0)+5, 0, 0, 0)
	y2 := m.Forward(x, false).At(0, 0)
	if y1 == y2 {
		t.Fatal("BiLSTM insensitive to first time step")
	}
}
