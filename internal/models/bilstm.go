package models

import (
	"repro/internal/nn"
	"repro/internal/tensor"
)

// BiLSTM runs one LSTM forward in time and one backward, concatenates the
// two final hidden states, and projects them to the horizon — the
// bidirectional baseline of Gupta & Dinesh (the paper's reference [41]).
// Over a fully observed input window this is causal: both directions only
// see past samples relative to the prediction time.
type BiLSTM struct {
	fwd *nn.LSTM
	bwd *nn.LSTM
	rev nn.ReverseTime
	out *nn.Dense

	hidden int
}

// BiLSTMConfig configures the bidirectional baseline.
type BiLSTMConfig struct {
	InChannels int
	Hidden     int // per direction
	Horizon    int
}

// NewBiLSTM builds the model.
func NewBiLSTM(r *tensor.RNG, cfg BiLSTMConfig) *BiLSTM {
	if cfg.Hidden == 0 {
		cfg.Hidden = 32
	}
	return &BiLSTM{
		fwd:    nn.NewLSTM(r, cfg.InChannels, cfg.Hidden, false),
		bwd:    nn.NewLSTM(r, cfg.InChannels, cfg.Hidden, false),
		out:    nn.NewDense(r, 2*cfg.Hidden, cfg.Horizon),
		hidden: cfg.Hidden,
	}
}

// Forward implements nn.Layer.
func (m *BiLSTM) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	hf := m.fwd.Forward(x, train)
	hb := m.bwd.Forward(m.rev.Forward(x, train), train)
	return m.out.Forward(nn.Concat2D(hf, hb), train)
}

// Backward implements nn.Layer.
func (m *BiLSTM) Backward(grad *tensor.Tensor) *tensor.Tensor {
	g := m.out.Backward(grad)
	gf, gb := nn.SplitGrad2D(g, m.hidden)
	dx := m.fwd.Backward(gf)
	dxRev := m.bwd.Backward(gb)
	return dx.AddInPlace(m.rev.Backward(dxRev))
}

// Params implements nn.Layer.
func (m *BiLSTM) Params() []*nn.Param {
	ps := append(m.fwd.Params(), m.bwd.Params()...)
	return append(ps, m.out.Params()...)
}

// Children implements nn.ChildLayers.
func (m *BiLSTM) Children() []nn.Layer {
	return []nn.Layer{m.fwd, &m.rev, m.bwd, m.out}
}

// GRUConfig configures the GRU baseline (architecture exploration beyond
// the paper).
type GRUConfig struct {
	InChannels int
	Hidden     int
	Horizon    int
}

// NewGRU builds GRU → Dense(horizon).
func NewGRU(r *tensor.RNG, cfg GRUConfig) nn.Layer {
	if cfg.Hidden == 0 {
		cfg.Hidden = 32
	}
	return nn.NewSequential(
		nn.NewGRU(r, cfg.InChannels, cfg.Hidden, false),
		nn.NewDense(r, cfg.Hidden, cfg.Horizon),
	)
}
