// Package models assembles the deep baseline architectures of the paper's
// Table II — LSTM and CNN-LSTM — plus a plain TCN (no fully connected
// layer, no attention) used for the ablation benchmarks. All builders
// return nn.Layer models that consume [batch, channels, window] inputs and
// emit [batch, horizon] forecasts.
package models

import (
	"repro/internal/nn"
	"repro/internal/tensor"
)

// LSTMConfig configures the LSTM baseline.
type LSTMConfig struct {
	InChannels int
	Hidden     int
	Horizon    int
}

// NewLSTM builds the LSTM baseline: LSTM → Dense(horizon).
func NewLSTM(r *tensor.RNG, cfg LSTMConfig) nn.Layer {
	if cfg.Hidden == 0 {
		cfg.Hidden = 32
	}
	return nn.NewSequential(
		nn.NewLSTM(r, cfg.InChannels, cfg.Hidden, false),
		nn.NewDense(r, cfg.Hidden, cfg.Horizon),
	)
}

// CNNLSTMConfig configures the CNN-LSTM baseline (Ouhame et al. 2021, the
// paper's reference [29]): a 1-D convolution extracts local features and
// an LSTM models their temporal evolution.
type CNNLSTMConfig struct {
	InChannels   int
	ConvChannels int
	KernelSize   int
	Hidden       int
	Horizon      int
	Dropout      float64
}

// NewCNNLSTM builds Conv1D → ReLU → Dropout → LSTM → Dense(horizon).
func NewCNNLSTM(r *tensor.RNG, cfg CNNLSTMConfig) nn.Layer {
	if cfg.ConvChannels == 0 {
		cfg.ConvChannels = 16
	}
	if cfg.KernelSize == 0 {
		cfg.KernelSize = 3
	}
	if cfg.Hidden == 0 {
		cfg.Hidden = 32
	}
	layers := []nn.Layer{
		nn.NewCausalConv1D(r, cfg.InChannels, cfg.ConvChannels, cfg.KernelSize, 1, false),
		&nn.ReLU{},
	}
	if cfg.Dropout > 0 {
		layers = append(layers, nn.NewSpatialDropout1D(r, cfg.Dropout))
	}
	layers = append(layers,
		nn.NewLSTM(r, cfg.ConvChannels, cfg.Hidden, false),
		nn.NewDense(r, cfg.Hidden, cfg.Horizon),
	)
	return nn.NewSequential(layers...)
}

// TCNConfig configures the plain TCN ablation model.
type TCNConfig struct {
	InChannels int
	Channels   []int
	KernelSize int
	Dilations  []int
	Dropout    float64
	WeightNorm bool
	Horizon    int
}

// NewPlainTCN builds TCN → LastStep → Dense(horizon): the architecture of
// Bai et al. without RPTCN's fully connected layer and attention head.
func NewPlainTCN(r *tensor.RNG, cfg TCNConfig) nn.Layer {
	if len(cfg.Channels) == 0 {
		cfg.Channels = []int{16, 16, 16}
	}
	if cfg.KernelSize == 0 {
		cfg.KernelSize = 3
	}
	tcn := nn.NewTCN(r, nn.TCNConfig{
		InChannels: cfg.InChannels,
		Channels:   cfg.Channels,
		KernelSize: cfg.KernelSize,
		Dilations:  cfg.Dilations,
		Dropout:    cfg.Dropout,
		WeightNorm: cfg.WeightNorm,
	})
	last := cfg.Channels[len(cfg.Channels)-1]
	return nn.NewSequential(tcn, &nn.LastStep{}, nn.NewDense(r, last, cfg.Horizon))
}
