package models

import (
	"math"
	"testing"

	"repro/internal/nn"
	"repro/internal/opt"
	"repro/internal/tensor"
	"repro/internal/train"
)

// arDataset builds a sequence-to-one problem: predict the next value of an
// AR(1)-like signal from a window of its history.
func arDataset(n, window int, seed uint64) train.Dataset {
	r := tensor.NewRNG(seed)
	series := make([]float64, n+window+1)
	for t := 1; t < len(series); t++ {
		series[t] = 0.9*series[t-1] + 0.1*r.NormFloat64()
	}
	x := tensor.New(n, 1, window)
	y := tensor.New(n, 1)
	for i := 0; i < n; i++ {
		copy(x.Data[i*window:(i+1)*window], series[i:i+window])
		y.Data[i] = series[i+window]
	}
	return train.Dataset{X: x, Y: y}
}

func shapesOK(t *testing.T, m nn.Layer, in *tensor.Tensor, horizon int) {
	t.Helper()
	out := m.Forward(in, false)
	if out.Dim(0) != in.Dim(0) || out.Dim(1) != horizon {
		t.Fatalf("output shape = %v, want [%d %d]", out.Shape(), in.Dim(0), horizon)
	}
}

func TestLSTMModelShapes(t *testing.T) {
	r := tensor.NewRNG(1)
	m := NewLSTM(r, LSTMConfig{InChannels: 3, Hidden: 8, Horizon: 2})
	shapesOK(t, m, tensor.RandN(r, 4, 3, 10), 2)
}

func TestCNNLSTMModelShapes(t *testing.T) {
	r := tensor.NewRNG(2)
	m := NewCNNLSTM(r, CNNLSTMConfig{InChannels: 3, ConvChannels: 8, KernelSize: 3, Hidden: 8, Horizon: 3, Dropout: 0.1})
	shapesOK(t, m, tensor.RandN(r, 4, 3, 12), 3)
}

func TestPlainTCNShapes(t *testing.T) {
	r := tensor.NewRNG(3)
	m := NewPlainTCN(r, TCNConfig{InChannels: 2, Channels: []int{4, 4}, KernelSize: 3, Horizon: 1, WeightNorm: true})
	shapesOK(t, m, tensor.RandN(r, 5, 2, 16), 1)
}

func TestDefaultsApplied(t *testing.T) {
	r := tensor.NewRNG(4)
	// Zero-valued configs must still build usable models.
	m1 := NewLSTM(r, LSTMConfig{InChannels: 1, Horizon: 1})
	m2 := NewCNNLSTM(r, CNNLSTMConfig{InChannels: 1, Horizon: 1})
	m3 := NewPlainTCN(r, TCNConfig{InChannels: 1, Horizon: 1})
	x := tensor.RandN(r, 2, 1, 8)
	for _, m := range []nn.Layer{m1, m2, m3} {
		shapesOK(t, m, x, 1)
	}
}

func TestModelsGradientsFlow(t *testing.T) {
	r := tensor.NewRNG(5)
	builders := map[string]nn.Layer{
		"lstm":    NewLSTM(r, LSTMConfig{InChannels: 2, Hidden: 4, Horizon: 1}),
		"cnnlstm": NewCNNLSTM(r, CNNLSTMConfig{InChannels: 2, ConvChannels: 4, Hidden: 4, Horizon: 1}),
		"tcn":     NewPlainTCN(r, TCNConfig{InChannels: 2, Channels: []int{4}, Horizon: 1}),
	}
	for name, m := range builders {
		err, detail := nn.GradCheck(m, tensor.RandN(r, 2, 2, 8), 6, 1e-6)
		if err > 1e-4 {
			t.Fatalf("%s gradient check failed: relerr=%g at %s", name, err, detail)
		}
	}
}

// Each baseline must learn a strongly autocorrelated signal clearly better
// than predicting the mean.
func TestBaselinesLearnARSignal(t *testing.T) {
	ds := arDataset(400, 8, 7)
	tr, va, te, err := train.Split(ds, 0.6, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	// Variance of the test targets = loss of the mean predictor.
	meanY := te.Y.Mean()
	varY := 0.0
	for _, v := range te.Y.Data {
		varY += (v - meanY) * (v - meanY)
	}
	varY /= float64(te.Y.Size())

	r := tensor.NewRNG(8)
	cases := map[string]nn.Layer{
		"lstm":    NewLSTM(r, LSTMConfig{InChannels: 1, Hidden: 16, Horizon: 1}),
		"cnnlstm": NewCNNLSTM(r, CNNLSTMConfig{InChannels: 1, ConvChannels: 8, Hidden: 16, Horizon: 1}),
		"tcn":     NewPlainTCN(r, TCNConfig{InChannels: 1, Channels: []int{8, 8}, Horizon: 1, WeightNorm: true}),
	}
	for name, m := range cases {
		train.Fit(m, tr, va, train.Config{
			Epochs: 30, BatchSize: 32, Optimizer: opt.NewAdam(0.005),
			Patience: 10, Shuffle: true, Seed: 9, RestoreBest: true, ClipNorm: 5,
		})
		mse := train.EvaluateLoss(m, te, &nn.MSELoss{})
		if math.IsNaN(mse) || mse > varY*0.6 {
			t.Fatalf("%s test MSE %g not clearly better than variance %g", name, mse, varY)
		}
	}
}
