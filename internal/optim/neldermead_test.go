package optim

import (
	"math"
	"testing"
)

func TestNelderMeadQuadratic(t *testing.T) {
	f := func(x []float64) float64 {
		return (x[0]-3)*(x[0]-3) + (x[1]+1)*(x[1]+1)
	}
	x, fv := NelderMead(f, []float64{0, 0}, NelderMeadConfig{})
	if math.Abs(x[0]-3) > 1e-4 || math.Abs(x[1]+1) > 1e-4 {
		t.Fatalf("minimum at %v, want [3 -1]", x)
	}
	if fv > 1e-7 {
		t.Fatalf("f at minimum = %g", fv)
	}
}

func TestNelderMeadRosenbrock(t *testing.T) {
	f := func(x []float64) float64 {
		a := 1 - x[0]
		b := x[1] - x[0]*x[0]
		return a*a + 100*b*b
	}
	x, _ := NelderMead(f, []float64{-1.2, 1}, NelderMeadConfig{MaxIter: 5000})
	if math.Abs(x[0]-1) > 1e-3 || math.Abs(x[1]-1) > 1e-3 {
		t.Fatalf("Rosenbrock minimum at %v, want [1 1]", x)
	}
}

func TestNelderMeadOneDimensional(t *testing.T) {
	f := func(x []float64) float64 { return math.Abs(x[0] - 2.5) }
	x, _ := NelderMead(f, []float64{0}, NelderMeadConfig{})
	if math.Abs(x[0]-2.5) > 1e-4 {
		t.Fatalf("1-D minimum at %v, want 2.5", x)
	}
}

func TestNelderMeadEmptyInput(t *testing.T) {
	called := false
	_, fv := NelderMead(func(x []float64) float64 { called = true; return 7 }, nil, NelderMeadConfig{})
	if !called || fv != 7 {
		t.Fatal("empty input should evaluate f once and return it")
	}
}

func TestNelderMeadZeroStartingPoint(t *testing.T) {
	// The simplex construction must handle zero coordinates (special-cased
	// to an absolute step).
	f := func(x []float64) float64 { return x[0]*x[0] + (x[1]-1)*(x[1]-1) }
	x, _ := NelderMead(f, []float64{0, 0}, NelderMeadConfig{})
	if math.Abs(x[0]) > 1e-4 || math.Abs(x[1]-1) > 1e-4 {
		t.Fatalf("minimum at %v, want [0 1]", x)
	}
}

func TestNelderMeadRespectsMaxIter(t *testing.T) {
	count := 0
	f := func(x []float64) float64 {
		count++
		return x[0] * x[0]
	}
	NelderMead(f, []float64{100}, NelderMeadConfig{MaxIter: 5})
	// Initial simplex: 2 evals; each iteration at most ~4 evals (shrink).
	if count > 2+5*5 {
		t.Fatalf("too many evaluations: %d", count)
	}
}
