// Package optim provides derivative-free minimization (Nelder–Mead),
// used to fit the ARIMA baseline's conditional sum of squares.
package optim

import (
	"math"
)

// NelderMeadConfig tunes the simplex search.
type NelderMeadConfig struct {
	MaxIter int     // maximum iterations (default 400·dim)
	TolF    float64 // stop when the simplex function spread < TolF (default 1e-10)
	TolX    float64 // stop when the simplex size < TolX (default 1e-8)
	Step    float64 // initial simplex step per coordinate (default 0.1)
}

// NelderMead minimizes f starting from x0 using the Nelder–Mead simplex
// algorithm with standard coefficients (reflection 1, expansion 2,
// contraction 0.5, shrink 0.5). It returns the best point found and its
// function value.
func NelderMead(f func([]float64) float64, x0 []float64, cfg NelderMeadConfig) ([]float64, float64) {
	n := len(x0)
	if n == 0 {
		return nil, f(nil)
	}
	if cfg.MaxIter == 0 {
		cfg.MaxIter = 400 * n
	}
	if cfg.TolF == 0 {
		cfg.TolF = 1e-10
	}
	if cfg.TolX == 0 {
		cfg.TolX = 1e-8
	}
	if cfg.Step == 0 {
		cfg.Step = 0.1
	}

	// Build the initial simplex: x0 plus one perturbed vertex per axis.
	verts := make([][]float64, n+1)
	vals := make([]float64, n+1)
	verts[0] = append([]float64(nil), x0...)
	vals[0] = f(verts[0])
	for i := 0; i < n; i++ {
		v := append([]float64(nil), x0...)
		if v[i] != 0 {
			v[i] *= 1 + cfg.Step
		} else {
			v[i] = cfg.Step
		}
		verts[i+1] = v
		vals[i+1] = f(v)
	}

	order := func() {
		// Insertion sort keeps the simplex ordered by value (n is small).
		for i := 1; i <= n; i++ {
			v, fv := verts[i], vals[i]
			j := i - 1
			for j >= 0 && vals[j] > fv {
				verts[j+1], vals[j+1] = verts[j], vals[j]
				j--
			}
			verts[j+1], vals[j+1] = v, fv
		}
	}

	centroid := make([]float64, n)
	point := func(coef float64) []float64 {
		// x = centroid + coef·(centroid − worst)
		p := make([]float64, n)
		worst := verts[n]
		for i := 0; i < n; i++ {
			p[i] = centroid[i] + coef*(centroid[i]-worst[i])
		}
		return p
	}

	for iter := 0; iter < cfg.MaxIter; iter++ {
		order()
		// Convergence checks.
		if math.Abs(vals[n]-vals[0]) < cfg.TolF {
			break
		}
		size := 0.0
		for i := 1; i <= n; i++ {
			for j := 0; j < n; j++ {
				size = math.Max(size, math.Abs(verts[i][j]-verts[0][j]))
			}
		}
		if size < cfg.TolX {
			break
		}
		// Centroid of all but the worst vertex.
		for j := 0; j < n; j++ {
			s := 0.0
			for i := 0; i < n; i++ {
				s += verts[i][j]
			}
			centroid[j] = s / float64(n)
		}
		// Reflection.
		xr := point(1)
		fr := f(xr)
		switch {
		case fr < vals[0]:
			// Expansion.
			xe := point(2)
			fe := f(xe)
			if fe < fr {
				verts[n], vals[n] = xe, fe
			} else {
				verts[n], vals[n] = xr, fr
			}
		case fr < vals[n-1]:
			verts[n], vals[n] = xr, fr
		default:
			// Contraction.
			xc := point(-0.5)
			fc := f(xc)
			if fc < vals[n] {
				verts[n], vals[n] = xc, fc
			} else {
				// Shrink toward the best vertex.
				for i := 1; i <= n; i++ {
					for j := 0; j < n; j++ {
						verts[i][j] = verts[0][j] + 0.5*(verts[i][j]-verts[0][j])
					}
					vals[i] = f(verts[i])
				}
			}
		}
	}
	order()
	return verts[0], vals[0]
}
