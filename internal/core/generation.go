package core

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/dataprep"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/opt"
	"repro/internal/tensor"
	"repro/internal/train"
)

// This file is the online-adaptation surface of the predictor: model
// generations and the atomic hot-swap. A fitted predictor serves
// generation 1; the adaptation supervisor (internal/adapt) fine-tunes a
// *clone* of the serving model off the request path (FineTune), shadow-
// scores it via a private Inferencer, and promotes it with SwapModel —
// one short critical section on the same inferMu that serializes
// ForecastBatch, so a forecast is computed entirely by one generation:
// torn reads are structurally impossible. The data pipeline (normalizer,
// screening, expansion layout) is frozen at the original Fit, so
// PreparedInputs built before a swap stay valid after it and the lock-
// free PrepareInput path never needs to know a swap happened.

// Generation returns the serving model's generation: 0 before Fit,
// 1 after Fit or load, +1 per SwapModel (including rollbacks — a
// rollback is a new generation serving old weights, so response
// attribution stays unambiguous).
func (p *Predictor) Generation() int64 {
	p.inferMu.Lock()
	defer p.inferMu.Unlock()
	return p.generation
}

// ModelGen returns the serving model pointer and its generation as one
// atomic snapshot — both read under a single inferMu hold, so a replica
// holder (ShardInferencer) can never observe a torn pair across a
// concurrent SwapModel.
func (p *Predictor) ModelGen() (*Model, int64) {
	p.inferMu.Lock()
	defer p.inferMu.Unlock()
	return p.model, p.generation
}

// Clone returns a deep copy of the model: same architecture, weights
// copied, fresh layer-RNG streams (seeded deterministically), no shared
// tensors. The clone is what fine-tuning mutates while the original
// keeps serving.
func (m *Model) Clone() *Model {
	c := NewModel(tensor.NewRNG(0), m.Cfg)
	src, dst := m.Params(), c.Params()
	for i, p := range src {
		dst[i].Value.CopyFrom(p.Value)
	}
	return c
}

// SwapModel atomically replaces the serving model with m and bumps the
// generation, returning the previous model and held-out split so the
// caller can roll back by swapping them in again. eval, when non-empty,
// becomes the new held-out split (used by the f32 re-validation backtest
// and any later swap's rollback capture). The swap holds inferMu — the
// same lock every ForecastBatch holds for its whole forward — so no
// in-flight forecast ever mixes generations. If the float32 tier was
// active (or configured), it is re-validated against the new model via
// the EnableFloat32 backtest; a refusal logs and serves f64 — a swap
// never fails because of the f32 tier.
func (p *Predictor) SwapModel(m *Model, eval train.Dataset) (prev *Model, prevEval train.Dataset, gen int64, err error) {
	if m == nil {
		return nil, train.Dataset{}, 0, errors.New("core: cannot swap in a nil model")
	}
	p.inferMu.Lock()
	defer p.inferMu.Unlock()
	if p.model == nil {
		return nil, train.Dataset{}, 0, errors.New("core: predictor not fitted")
	}
	if m.Cfg.InChannels != p.model.Cfg.InChannels || m.Cfg.Horizon != p.model.Cfg.Horizon {
		return nil, train.Dataset{}, 0, fmt.Errorf(
			"core: swap model shape (in=%d, horizon=%d) does not match serving (in=%d, horizon=%d)",
			m.Cfg.InChannels, m.Cfg.Horizon, p.model.Cfg.InChannels, p.model.Cfg.Horizon)
	}
	prev, prevEval = p.model, p.test
	p.model = m
	p.model.Profile(p.Cfg.Profiler)
	if eval.X != nil {
		p.test = eval
	}
	// The f64 buffer pool survives the swap: the shape check above only
	// admits identical serving shapes, arena slots are shape-checked per
	// Get, and the kernels carry no per-model state — so the new
	// generation replays the warm arenas with zero re-recording (pinned
	// by TestInferBufPoolSurvivesSwap). The f32 pool cannot survive:
	// enableFloat32Locked re-quantizes the NEW model's weight mirrors,
	// so its buffers are rebuilt against fresh quantization anyway.
	p.inferBufs32 = nil
	p.generation++

	wantF32 := p.f32Active || p.Cfg.Float32
	p.f32Active = false
	if wantF32 {
		if _, ferr := p.enableFloat32Locked(); ferr != nil {
			obs.Logger("core").Warn("float32 tier not re-enabled after model swap; serving float64",
				"generation", p.generation, "err", ferr)
		}
	}
	// Publish the new generation to the lock-free mirror LAST, after the
	// f32 revalidation: shard replicas polling genSeq keep serving the
	// previous generation through the whole hold and only pay the ModelGen
	// lock (which waits out the tail of this critical section) once the
	// swap is genuinely done.
	p.genSeq.Store(p.generation)
	return prev, prevEval, p.generation, nil
}

// ForecastBatchGen is ForecastBatch plus attribution: the generation
// returned is the one that computed every forecast in the batch —
// reading it under the same inferMu hold as the forward is what makes
// the pairing tear-free.
func (p *Predictor) ForecastBatchGen(inputs []*PreparedInput) ([][]float64, int64, error) {
	return p.forecastBatch(inputs)
}

// FineTuneConfig tunes a FineTune run. Zero values inherit the
// predictor's original training hyperparameters, except Epochs which
// defaults to a quarter of the original budget — adaptation warm-starts
// from serving weights and converges in far fewer epochs.
type FineTuneConfig struct {
	Epochs       int
	BatchSize    int
	LearningRate float64
	Patience     int
	// Seed drives the shuffle and any layer RNG streams; same seed +
	// same windows ⇒ bitwise identical candidate.
	Seed uint64
	// TrainFrac/ValidFrac split the supervised windows chronologically;
	// the remainder is returned as the candidate's held-out split.
	TrainFrac, ValidFrac float64
	// Checkpoint, when its Dir is set, checkpoints the fine-tune
	// crash-safely (candidate artifacts; prune with train.PruneCheckpoints).
	Checkpoint train.CheckpointConfig
	// Guard defaults to enabled: a diverging fine-tune must roll back
	// to its best epoch, never hand back NaN weights.
	Guard train.GuardConfig
	// Hooks observe the fine-tune (per-epoch metrics/logging).
	Hooks []train.Hook
}

// FineTune trains a candidate model on fresh raw history (same
// indicator layout as Fit) without touching the serving model: the
// stored pipeline prepares the series, the serving model is cloned, and
// the clone is fine-tuned from its current weights. Returns the
// candidate, its held-out split (pass to SwapModel on promotion), and
// the training history. The serving path is only blocked for the
// instant it takes to read the current model pointer.
func (p *Predictor) FineTune(series [][]float64, cfg FineTuneConfig) (*Model, train.Dataset, *train.History, error) {
	if cfg.Epochs <= 0 {
		if cfg.Epochs = p.Cfg.Epochs / 4; cfg.Epochs < 1 {
			cfg.Epochs = 1
		}
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = p.Cfg.BatchSize
	}
	if cfg.LearningRate == 0 {
		cfg.LearningRate = p.Cfg.LearningRate
	}
	if cfg.Patience <= 0 {
		cfg.Patience = p.Cfg.Patience
	}
	if cfg.TrainFrac == 0 {
		cfg.TrainFrac = p.Cfg.TrainFrac
	}
	if cfg.ValidFrac == 0 {
		cfg.ValidFrac = p.Cfg.ValidFrac
	}
	sel, _, err := p.prepareServe(series)
	if err != nil {
		return nil, train.Dataset{}, nil, err
	}
	ds, err := dataprep.BuildSupervised(sel, dataprep.WindowConfig{
		Window:  p.Cfg.Window,
		Horizon: p.Cfg.Horizon,
		Target:  0, // the pipeline puts the target channel first
	})
	if err != nil {
		return nil, train.Dataset{}, nil, err
	}
	tr, va, te, err := train.Split(ds, cfg.TrainFrac, cfg.ValidFrac)
	if err != nil {
		return nil, train.Dataset{}, nil, err
	}

	p.inferMu.Lock()
	serving := p.model
	p.inferMu.Unlock()
	if serving == nil {
		return nil, train.Dataset{}, nil, errors.New("core: predictor not fitted")
	}
	candidate := serving.Clone()
	hist := train.FineTune(candidate, tr, va, train.Config{
		Epochs:      cfg.Epochs,
		BatchSize:   cfg.BatchSize,
		Optimizer:   opt.NewAdam(cfg.LearningRate),
		Loss:        &nn.MSELoss{},
		Patience:    cfg.Patience,
		Shuffle:     true,
		Seed:        cfg.Seed + 1,
		RestoreBest: true,
		ClipNorm:    5,
		Checkpoint:  cfg.Checkpoint,
		Guard:       cfg.Guard,
		Hooks:       cfg.Hooks,
	})
	for _, prm := range candidate.Params() {
		for _, v := range prm.Value.Data {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, train.Dataset{}, hist, errors.New("core: fine-tuned candidate has non-finite weights")
			}
		}
	}
	return candidate, te, hist, nil
}

// Inferencer runs forecasts against a specific model through the
// predictor's frozen data pipeline, entirely outside the serving lock —
// the shadow-evaluation path: the supervisor scores a candidate on
// mirrored live inputs without ever touching ForecastBatch's arenas or
// blocking a request. Not synchronized; use from one goroutine.
type Inferencer struct {
	p     *Predictor
	m     *Model
	arena *nn.InferArena
	x     *tensor.Tensor
}

// NewInferencer returns an Inferencer serving m through p's pipeline.
func (p *Predictor) NewInferencer(m *Model) *Inferencer {
	return &Inferencer{p: p, m: m, arena: nn.NewInferArena()}
}

// Forecast runs one prepared window through the inferencer's model and
// returns the denormalized Horizon-step forecast — bitwise identical to
// what ForecastBatch would return were this model serving.
func (inf *Inferencer) Forecast(in *PreparedInput) ([]float64, error) {
	if in == nil {
		return nil, errors.New("core: nil prepared input")
	}
	c, w := in.channels, inf.p.Cfg.Window
	if c != inf.m.Cfg.InChannels || len(in.data) != c*w {
		return nil, fmt.Errorf("core: prepared input shape (%d×%d) does not match model (in=%d)",
			c, len(in.data)/max(c, 1), inf.m.Cfg.InChannels)
	}
	if inf.x == nil {
		inf.x = tensor.New(1, c, w)
	}
	copy(inf.x.Data, in.data)
	inf.arena.Reset()
	out := inf.m.InferForward(inf.arena, inf.x)
	return inf.p.norm.Inverse(inf.p.target, out.Data[:inf.p.Cfg.Horizon]), nil
}
