package core

import (
	"math"
	"testing"

	"repro/internal/stats"
	"repro/internal/trace"
)

func fleetEntities(n, samples int, seed uint64) [][][]float64 {
	es := trace.Generate(trace.GeneratorConfig{
		Entities: n, Kind: trace.Container, Samples: samples, Seed: seed,
	})
	out := make([][][]float64, n)
	for i, e := range es {
		out[i] = e.Matrix()
	}
	return out
}

func TestFitFleetPoolsEntities(t *testing.T) {
	ents := fleetEntities(3, 600, 61)
	p := NewPredictor(PredictorConfig{
		Scenario: MulExp, Window: 16, Horizon: 1, Epochs: 5, Seed: 1,
		Model: Config{Channels: []int{8, 8}, KernelSize: 3, WeightNorm: true, FCWidth: 16},
	})
	if err := p.FitFleet(ents, int(trace.CPUUtilPercent)); err != nil {
		t.Fatal(err)
	}
	rep, err := p.TestMetrics()
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(rep.MSE) || rep.MSE <= 0 {
		t.Fatalf("fleet MSE = %g", rep.MSE)
	}
	// Pooled test set must cover all three entities' test windows: at
	// least 3× a single entity's test size minus slack.
	truth, _, err := p.TestSeries()
	if err != nil {
		t.Fatal(err)
	}
	if len(truth) < 250 {
		t.Fatalf("pooled test windows = %d, want ~3 entities' worth", len(truth))
	}
	if rep.MSE >= stats.Variance(truth) {
		t.Fatalf("fleet model no better than mean: %g vs %g", rep.MSE, stats.Variance(truth))
	}
}

func TestFitFleetServesAnyEntity(t *testing.T) {
	ents := fleetEntities(2, 600, 62)
	p := NewPredictor(PredictorConfig{
		Scenario: MulExp, Window: 16, Horizon: 2, Epochs: 3, Seed: 2,
		Model: Config{Channels: []int{8}, KernelSize: 3, WeightNorm: true, FCWidth: 8},
	})
	if err := p.FitFleet(ents, int(trace.CPUUtilPercent)); err != nil {
		t.Fatal(err)
	}
	// A fresh, unseen entity must be servable.
	fresh := trace.Generate(trace.GeneratorConfig{
		Entities: 1, Kind: trace.Container, Samples: 120, Seed: 63,
	})[0]
	f, err := p.ForecastFrom(fresh.Matrix())
	if err != nil {
		t.Fatal(err)
	}
	if len(f) != 2 {
		t.Fatalf("forecast = %v", f)
	}
	// Forecast() must also work (uses the last entity's tail).
	if _, err := p.Forecast(); err != nil {
		t.Fatal(err)
	}
}

func TestFitFleetValidation(t *testing.T) {
	p := NewPredictor(PredictorConfig{Window: 16, Epochs: 1})
	if err := p.FitFleet(nil, 0); err == nil {
		t.Fatal("expected error for no entities")
	}
	ents := fleetEntities(2, 600, 64)
	if err := p.FitFleet(ents, 99); err == nil {
		t.Fatal("expected error for bad target")
	}
	ragged := [][][]float64{ents[0], {{1, 2, 3}}}
	if err := p.FitFleet(ragged, 0); err == nil {
		t.Fatal("expected error for mismatched indicator counts")
	}
	tiny := [][][]float64{{{1, 2}, {3, 4}}}
	p2 := NewPredictor(PredictorConfig{Window: 16, Epochs: 1})
	if err := p2.FitFleet(tiny, 0); err == nil {
		t.Fatal("expected error for too-short entity")
	}
}

func TestFitFleetSingleEntityMatchesFitShape(t *testing.T) {
	ents := fleetEntities(1, 600, 65)
	pf := NewPredictor(PredictorConfig{
		Scenario: Mul, Window: 16, Horizon: 1, Epochs: 2, Seed: 3,
		Model: Config{Channels: []int{8}, KernelSize: 3, FCWidth: 8},
	})
	if err := pf.FitFleet(ents, int(trace.CPUUtilPercent)); err != nil {
		t.Fatal(err)
	}
	ps := NewPredictor(PredictorConfig{
		Scenario: Mul, Window: 16, Horizon: 1, Epochs: 2, Seed: 3,
		Model: Config{Channels: []int{8}, KernelSize: 3, FCWidth: 8},
	})
	if err := ps.Fit(ents[0], int(trace.CPUUtilPercent)); err != nil {
		t.Fatal(err)
	}
	// Same data through both paths: identical screening and channel count.
	if len(pf.SelectedIndicators()) != len(ps.SelectedIndicators()) {
		t.Fatal("fleet screening differs from single-entity screening")
	}
	if pf.Model().Cfg.InChannels != ps.Model().Cfg.InChannels {
		t.Fatal("fleet channels differ from single-entity channels")
	}
}
