package core

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"repro/internal/train"
)

// swapCandidate fine-tunes a candidate off p so the suite has a second
// generation with genuinely different weights to swap in.
func swapCandidate(t *testing.T, p *Predictor, series [][]float64) (*Model, train.Dataset) {
	t.Helper()
	cand, eval, _, err := p.FineTune(shifted(series, 0.15), FineTuneConfig{Epochs: 1, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	return cand, eval
}

// mallocsAround measures the exact heap allocation count of one call —
// unlike testing.AllocsPerRun it does no warmup call, so a re-recorded
// arena (which allocates on its first post-swap use and then never
// again) cannot hide.
func mallocsAround(fn func()) uint64 {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	fn()
	runtime.ReadMemStats(&after)
	return after.Mallocs - before.Mallocs
}

// TestInferBufPoolSurvivesSwap pins the arena-pool retention contract:
// after SwapModel the predictor serves the new generation through the
// SAME pooled inferBuf (pointer-identical arena and input tensor), and
// the first post-swap batched forward allocates no more than a warm
// steady-state forward — i.e. the swap re-recorded nothing.
func TestInferBufPoolSurvivesSwap(t *testing.T) {
	p, series := genPredictor(t, false)
	wins := servingWindows(p, len(series), 7)
	inputs := make([]*PreparedInput, len(wins))
	for i, w := range wins {
		in, err := p.PrepareInput(w)
		if err != nil {
			t.Fatal(err)
		}
		inputs[i] = in
	}
	// Cold first forward: pool creation + arena recording. Its cost is
	// the self-calibrated yardstick for "the swap re-recorded".
	cold := mallocsAround(func() {
		if _, err := p.ForecastBatch(inputs); err != nil {
			t.Fatal(err)
		}
	})
	// Warm the pool for this padded batch size, then capture steady state.
	for i := 0; i < 3; i++ {
		if _, err := p.ForecastBatch(inputs); err != nil {
			t.Fatal(err)
		}
	}
	padded := ceilPow2(len(inputs))
	bufBefore := p.inferBufs[padded]
	if bufBefore == nil {
		t.Fatalf("no pooled buffer for padded size %d after warmup", padded)
	}
	arenaBefore, xBefore := bufBefore.arena, bufBefore.x
	steady := mallocsAround(func() {
		if _, err := p.ForecastBatch(inputs); err != nil {
			t.Fatal(err)
		}
	})
	if cold <= steady {
		t.Fatalf("cold forward allocated %d vs steady %d: yardstick broken", cold, steady)
	}

	cand, eval := swapCandidate(t, p, series)
	if _, _, _, err := p.SwapModel(cand, eval); err != nil {
		t.Fatal(err)
	}

	// First post-swap forward: same buffer, same arena, same tensor, and
	// no allocation spike near the cold re-record cost. The threshold is
	// half the measured cold−steady gap, so incidental runtime noise
	// (GC bookkeeping, race-detector shadow allocations) cannot trip it
	// while an actual re-record — which re-pays the cold cost — always does.
	postSwap := mallocsAround(func() {
		if _, err := p.ForecastBatch(inputs); err != nil {
			t.Fatal(err)
		}
	})
	buf := p.inferBufs[padded]
	if buf != bufBefore {
		t.Error("pooled inferBuf was replaced across SwapModel")
	}
	if buf.arena != arenaBefore {
		t.Error("pooled arena was replaced across SwapModel")
	}
	if buf.x != xBefore {
		t.Error("pooled input tensor was replaced across SwapModel")
	}
	if postSwap > steady+(cold-steady)/2 {
		t.Errorf("first post-swap forward allocated %d objects (steady %d, cold %d): arena was re-recorded",
			postSwap, steady, cold)
	}

	// Shape changes still get their own pool entry without disturbing
	// the warmed one.
	if _, err := p.ForecastBatch(inputs[:3]); err != nil {
		t.Fatal(err)
	}
	if p.inferBufs[padded] != bufBefore {
		t.Error("serving a different batch size evicted the warmed buffer")
	}
	if p.inferBufs[ceilPow2(3)] == nil {
		t.Error("new padded size did not get its own pooled buffer")
	}
}

// TestShardInferencerMatchesPredictor pins the replica-equivalence
// contract fleet sharding rests on: a ShardInferencer's forecasts are
// bitwise identical to the shared predictor's for the same generation,
// across batch sizes, and the replica follows a hot-swap to the next
// generation on its next batch.
func TestShardInferencerMatchesPredictor(t *testing.T) {
	p, series := genPredictor(t, false)
	wins := servingWindows(p, len(series), 16)
	inputs := make([]*PreparedInput, len(wins))
	for i, w := range wins {
		in, err := p.PrepareInput(w)
		if err != nil {
			t.Fatal(err)
		}
		inputs[i] = in
	}
	si := p.NewShardInferencer()
	for _, batch := range []int{1, 5, 16} {
		want, wantGen, err := p.ForecastBatchGen(inputs[:batch])
		if err != nil {
			t.Fatal(err)
		}
		got, gotGen, err := si.ForecastBatchGen(inputs[:batch])
		if err != nil {
			t.Fatal(err)
		}
		if gotGen != wantGen {
			t.Fatalf("batch=%d replica generation %d vs predictor %d", batch, gotGen, wantGen)
		}
		for i := range want {
			requireBitwiseEqual(t, fmt.Sprintf("batch=%d row=%d", batch, i), got[i], want[i])
		}
	}

	// Hot-swap: the replica re-clones on its next batch and matches the
	// new generation bitwise.
	cand, eval := swapCandidate(t, p, series)
	if _, _, gen, err := p.SwapModel(cand, eval); err != nil {
		t.Fatal(err)
	} else if gen != 2 {
		t.Fatalf("generation after swap = %d, want 2", gen)
	}
	want, wantGen, err := p.ForecastBatchGen(inputs)
	if err != nil {
		t.Fatal(err)
	}
	got, gotGen, err := si.ForecastBatchGen(inputs)
	if err != nil {
		t.Fatal(err)
	}
	if gotGen != 2 || wantGen != 2 {
		t.Fatalf("post-swap generations = replica %d, predictor %d, want 2", gotGen, wantGen)
	}
	for i := range want {
		requireBitwiseEqual(t, fmt.Sprintf("post-swap row=%d", i), got[i], want[i])
	}
}

// TestShardInferencersRunConcurrently pins the whole point of replicas:
// N inferencers forward in parallel (no shared inferMu, no shared
// arenas) while the shared predictor serves and swaps underneath them —
// run under -race this would catch any state leak between replicas.
func TestShardInferencersRunConcurrently(t *testing.T) {
	p, series := genPredictor(t, false)
	wins := servingWindows(p, len(series), 8)
	inputs := make([]*PreparedInput, len(wins))
	for i, w := range wins {
		in, err := p.PrepareInput(w)
		if err != nil {
			t.Fatal(err)
		}
		inputs[i] = in
	}
	want, _, err := p.ForecastBatchGen(inputs)
	if err != nil {
		t.Fatal(err)
	}
	const workers = 4
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			si := p.NewShardInferencer()
			for it := 0; it < 8; it++ {
				got, gen, err := si.ForecastBatchGen(inputs)
				if err != nil {
					errs <- err
					return
				}
				if gen != 1 {
					continue // a swap landed mid-run; gen-2 rows differ by design
				}
				for i := range want {
					for j := range want[i] {
						if got[i][j] != want[i][j] {
							errs <- fmt.Errorf("replica drifted at row %d", i)
							return
						}
					}
				}
			}
		}()
	}
	// Concurrent churn on the shared predictor: forwards and a hot-swap.
	cand, eval := swapCandidate(t, p, series)
	if _, err := p.ForecastBatch(inputs); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := p.SwapModel(cand, eval); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
