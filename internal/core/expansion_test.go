package core

import (
	"math"
	"testing"

	"repro/internal/trace"
)

func TestExpansionModeString(t *testing.T) {
	if ExpandLags.String() != "lags" || ExpandLagsDiff.String() != "lags+diff" || ExpandWeighted.String() != "weighted" {
		t.Fatal("expansion mode names wrong")
	}
	if ExpansionMode(9).String() != "unknown" {
		t.Fatal("unknown mode name wrong")
	}
}

func fitWithMode(t *testing.T, mode ExpansionMode) *Predictor {
	t.Helper()
	e := trace.Generate(trace.GeneratorConfig{
		Entities: 1, Kind: trace.Container, Samples: 800, Seed: 31,
	})[0]
	p := NewPredictor(PredictorConfig{
		Scenario: MulExp, Expansion: mode,
		Window: 16, Horizon: 1, Epochs: 4, Seed: 1,
		Model: Config{Channels: []int{8, 8}, KernelSize: 3, WeightNorm: true, FCWidth: 16},
	})
	if err := p.Fit(e.Matrix(), int(trace.CPUUtilPercent)); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestExpandLagsDiffChannelCount(t *testing.T) {
	p := fitWithMode(t, ExpandLagsDiff)
	// 4 screened indicators × (3 lags + 1 diff) = 16 channels.
	if got := p.Model().Cfg.InChannels; got != 16 {
		t.Fatalf("lags+diff channels = %d, want 16", got)
	}
	rep, err := p.TestMetrics()
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(rep.MSE) || rep.MSE <= 0 {
		t.Fatalf("MSE = %g", rep.MSE)
	}
}

func TestExpandWeightedChannelCountAndServing(t *testing.T) {
	p := fitWithMode(t, ExpandWeighted)
	ch := p.Model().Cfg.InChannels
	// Between 4 (all weak) and 12 (all strong); the generator's coupled
	// indicators guarantee more than the minimum.
	if ch < 5 || ch > 12 {
		t.Fatalf("weighted channels = %d, want in (4, 12]", ch)
	}
	// Serving must replay the SAME factors: ForecastFrom on a fresh window
	// must not error with a channel mismatch.
	e := trace.Generate(trace.GeneratorConfig{
		Entities: 1, Kind: trace.Container, Samples: 100, Seed: 32,
	})[0]
	f, err := p.ForecastFrom(e.Matrix())
	if err != nil {
		t.Fatal(err)
	}
	if len(f) != 1 || math.IsNaN(f[0]) {
		t.Fatalf("forecast = %v", f)
	}
}

func TestRefitResetsWeightedFactors(t *testing.T) {
	p := fitWithMode(t, ExpandWeighted)
	first := p.Model().Cfg.InChannels
	// Refit on a different entity; factors must be recomputed, not reused.
	e2 := trace.Generate(trace.GeneratorConfig{
		Entities: 1, Kind: trace.Machine, Samples: 800, Seed: 33,
	})[0]
	if err := p.Fit(e2.Matrix(), int(trace.CPUUtilPercent)); err != nil {
		t.Fatal(err)
	}
	second := p.Model().Cfg.InChannels
	if second < 4 {
		t.Fatalf("refit channels = %d", second)
	}
	_ = first // counts may or may not differ; the point is no panic/mismatch
	if _, err := p.TestMetrics(); err != nil {
		t.Fatal(err)
	}
}

func TestForecastFromMatchesTailForecast(t *testing.T) {
	// ForecastFrom on the exact training series must agree with Forecast().
	e := trace.Generate(trace.GeneratorConfig{
		Entities: 1, Kind: trace.Container, Samples: 800, Seed: 34,
	})[0]
	p := NewPredictor(PredictorConfig{
		Scenario: MulExp, Window: 16, Horizon: 2, Epochs: 3, Seed: 2,
		Model: Config{Channels: []int{8}, KernelSize: 3, WeightNorm: true, FCWidth: 8},
	})
	if err := p.Fit(e.Matrix(), int(trace.CPUUtilPercent)); err != nil {
		t.Fatal(err)
	}
	a, err := p.Forecast()
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.ForecastFrom(e.Matrix())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-9 {
			t.Fatalf("Forecast %v != ForecastFrom %v", a, b)
		}
	}
}

func TestForecastFromErrors(t *testing.T) {
	p := fitWithMode(t, ExpandLags)
	if _, err := p.ForecastFrom([][]float64{{1, 2, 3}}); err == nil {
		t.Fatal("expected error for wrong indicator count")
	}
	short := make([][]float64, trace.NumIndicators)
	for i := range short {
		short[i] = []float64{1, 2, 3}
	}
	if _, err := p.ForecastFrom(short); err == nil {
		t.Fatal("expected error for too-short history")
	}
	nan := make([][]float64, trace.NumIndicators)
	for i := range nan {
		nan[i] = []float64{math.NaN(), math.NaN()}
	}
	if _, err := p.ForecastFrom(nan); err == nil {
		t.Fatal("expected error for all-NaN history")
	}
	unfitted := NewPredictor(PredictorConfig{})
	if _, err := unfitted.ForecastFrom(nan); err == nil {
		t.Fatal("expected error before Fit")
	}
}
