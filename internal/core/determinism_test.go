package core

import (
	"math"
	"testing"

	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/opt"
	"repro/internal/par"
	"repro/internal/tensor"
	"repro/internal/train"
)

// synthDataset builds a deterministic synthetic supervised dataset with
// [n, channels, window] inputs.
func synthDataset(seed uint64, n, channels, window int) train.Dataset {
	r := tensor.NewRNG(seed)
	x := tensor.New(n, channels, window)
	y := tensor.New(n, 1)
	for i := range x.Data {
		x.Data[i] = r.Float64()*2 - 1
	}
	for i := 0; i < n; i++ {
		s := 0.0
		for j := 0; j < window; j++ {
			s += x.Data[i*channels*window+j]
		}
		y.Data[i] = s / float64(window)
	}
	return train.Dataset{X: x, Y: y}
}

// fitHistory trains a freshly built model with the given worker count and
// returns the raw loss histories.
func fitHistory(t *testing.T, workers int, build func(r *tensor.RNG) nn.Layer) (trainLoss, validLoss []float64) {
	t.Helper()
	prev := par.SetWorkers(workers)
	defer par.SetWorkers(prev)

	ds := synthDataset(11, 48, 3, 16)
	tr := ds.Subset(0, 32)
	va := ds.Subset(32, 48)
	model := build(tensor.NewRNG(7))
	hist := train.Fit(model, tr, va, train.Config{
		Epochs:    3,
		BatchSize: 12, // deliberately not a divisor of 32: exercises the short tail batch
		Optimizer: opt.NewAdam(1e-2),
		Shuffle:   true,
		Seed:      5,
	})
	return hist.TrainLoss, hist.ValidLoss
}

// requireBitwiseEqual fails unless a and b are identical float64 sequences
// down to the last bit.
func requireBitwiseEqual(t *testing.T, name string, a, b []float64) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: length %d vs %d", name, len(a), len(b))
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			t.Errorf("%s[%d]: %x (%.17g) vs %x (%.17g)",
				name, i, math.Float64bits(a[i]), a[i], math.Float64bits(b[i]), b[i])
		}
	}
}

// TestFitDeterministicAcrossWorkerCounts verifies the internal/par
// determinism contract end to end: a full training run produces
// bitwise-identical loss histories no matter how many workers execute the
// parallel kernels. Chunk boundaries and reduction order depend only on
// the problem shape, never on the worker count.
func TestFitDeterministicAcrossWorkerCounts(t *testing.T) {
	builders := map[string]func(r *tensor.RNG) nn.Layer{
		"RPTCN": func(r *tensor.RNG) nn.Layer {
			return NewModel(r, Config{
				InChannels: 3,
				Channels:   []int{8, 8},
				KernelSize: 3,
				Dropout:    0.1,
				WeightNorm: true,
				FCWidth:    16,
				Horizon:    1,
			})
		},
		"LSTM": func(r *tensor.RNG) nn.Layer {
			return models.NewLSTM(r, models.LSTMConfig{InChannels: 3, Hidden: 12, Horizon: 1})
		},
	}
	for name, build := range builders {
		t.Run(name, func(t *testing.T) {
			refTrain, refValid := fitHistory(t, 1, build)
			if len(refTrain) == 0 {
				t.Fatal("empty training history")
			}
			for _, workers := range []int{2, 4} {
				gotTrain, gotValid := fitHistory(t, workers, build)
				requireBitwiseEqual(t, "TrainLoss", refTrain, gotTrain)
				requireBitwiseEqual(t, "ValidLoss", refValid, gotValid)
			}
		})
	}
}
