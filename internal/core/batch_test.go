package core

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/par"
	"repro/internal/tensor"
)

// batchModels builds the three Table II architectures for the batching
// equivalence suite.
func batchModels(channels, window int) map[string]nn.Layer {
	r := tensor.NewRNG(17)
	return map[string]nn.Layer{
		"RPTCN": NewModel(r, Config{
			InChannels: channels,
			Channels:   []int{8, 8},
			KernelSize: 3,
			Dropout:    0.1,
			WeightNorm: true,
			FCWidth:    12,
			Horizon:    2,
		}),
		"LSTM": models.NewLSTM(r, models.LSTMConfig{
			InChannels: channels, Hidden: 10, Horizon: 2,
		}),
		"CNN-LSTM": models.NewCNNLSTM(r, models.CNNLSTMConfig{
			InChannels: channels, ConvChannels: 8, KernelSize: 3,
			Hidden: 9, Horizon: 2, Dropout: 0.1,
		}),
	}
}

// TestBatchedArenaMatchesPerRequestForward is the serving-correctness
// keystone: every row of a micro-batched arena forward must be bitwise
// identical to running that request alone through the training-path
// Forward — for RPTCN, LSTM and CNN-LSTM, at batch sizes 1/7/32, under
// worker counts 1/2/4.
func TestBatchedArenaMatchesPerRequestForward(t *testing.T) {
	const channels, window = 3, 16
	for name, model := range batchModels(channels, window) {
		t.Run(name, func(t *testing.T) {
			for _, workers := range []int{1, 2, 4} {
				prev := par.SetWorkers(workers)
				arena := nn.NewInferArena()
				for _, batch := range []int{1, 7, 32} {
					r := tensor.NewRNG(uint64(900 + batch))
					x := tensor.RandN(r, batch, channels, window)
					arena.Reset()
					got := nn.Infer(model, arena, x)
					h := got.Dim(1)
					for i := 0; i < batch; i++ {
						single := tensor.New(1, channels, window)
						copy(single.Data, x.Data[i*channels*window:(i+1)*channels*window])
						want := model.Forward(single, false)
						requireBitwiseEqual(t,
							fmt.Sprintf("%s workers=%d batch=%d row=%d", name, workers, batch, i),
							got.Data[i*h:(i+1)*h], want.Data)
					}
				}
				par.SetWorkers(prev)
			}
		})
	}
}

// servingWindows builds k raw request histories compatible with a fitted
// predictor: same indicator count, enough samples for MinHistory.
func servingWindows(p *Predictor, indicators, k int) [][][]float64 {
	r := tensor.NewRNG(71)
	n := p.MinHistory() + 4
	wins := make([][][]float64, k)
	for i := range wins {
		w := make([][]float64, indicators)
		for c := range w {
			row := make([]float64, n)
			for j := range row {
				row[j] = r.Float64()
			}
			w[c] = row
		}
		wins[i] = w
	}
	return wins
}

// TestForecastBatchMatchesTrainingPath fits a real predictor, then
// checks ForecastBatch against a hand-rolled per-request forward through
// the training path (Model.Forward at batch 1), bitwise, at batch sizes
// 1/7/32.
func TestForecastBatchMatchesTrainingPath(t *testing.T) {
	const indicators = 4
	series := syntheticSeries(160)
	p := NewPredictor(PredictorConfig{
		Scenario:     MulExp,
		Window:       12,
		Horizon:      2,
		ExpandFactor: 2,
		Epochs:       2,
		BatchSize:    8,
		Seed:         9,
		Model:        Config{Channels: []int{6, 6}, KernelSize: 3, WeightNorm: true, FCWidth: 8},
	})
	if err := p.Fit(series, 0); err != nil {
		t.Fatal(err)
	}
	wins := servingWindows(p, len(series), 32)
	inputs := make([]*PreparedInput, len(wins))
	for i, w := range wins {
		in, err := p.PrepareInput(w)
		if err != nil {
			t.Fatal(err)
		}
		inputs[i] = in
	}
	for _, batch := range []int{1, 7, 32} {
		got, err := p.ForecastBatch(inputs[:batch])
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < batch; i++ {
			in := inputs[i]
			x := tensor.New(1, in.channels, p.Cfg.Window)
			copy(x.Data, in.data)
			out := p.model.Forward(x, false)
			want := p.norm.Inverse(p.target, out.Data)
			requireBitwiseEqual(t, fmt.Sprintf("batch=%d req=%d", batch, i), got[i], want)
		}
	}
}

// TestForecastFromConcurrentRequests hammers the serving path from many
// goroutines; run under -race this pins the inferMu serialization of the
// shared arena and layer kernel state.
func TestForecastFromConcurrentRequests(t *testing.T) {
	series := syntheticSeries(140)
	p := NewPredictor(PredictorConfig{
		Scenario:  Mul,
		Window:    10,
		Horizon:   1,
		Epochs:    1,
		BatchSize: 8,
		Seed:      3,
		Model:     Config{Channels: []int{4}, KernelSize: 2},
	})
	if err := p.Fit(series, 0); err != nil {
		t.Fatal(err)
	}
	wins := servingWindows(p, len(series), 8)
	want, err := p.ForecastFrom(wins[0])
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < 4; it++ {
				got, err := p.ForecastFrom(wins[g])
				if err != nil {
					errs <- err
					return
				}
				if g == 0 {
					for i := range got {
						if got[i] != want[i] {
							errs <- fmt.Errorf("concurrent forecast drifted: %g vs %g", got[i], want[i])
							return
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// BenchmarkForecastBatch32 measures one micro-batched arena forward of
// 32 prepared requests through a fitted RPTCN predictor.
func BenchmarkForecastBatch32(b *testing.B) {
	series := syntheticSeries(200)
	p := NewPredictor(PredictorConfig{
		Scenario:  Mul,
		Window:    32,
		Horizon:   1,
		Epochs:    1,
		BatchSize: 16,
		Seed:      4,
		Model:     Config{Channels: []int{16, 16, 16}, KernelSize: 3, WeightNorm: true},
	})
	if err := p.Fit(series, 0); err != nil {
		b.Fatal(err)
	}
	wins := servingWindows(p, len(series), 32)
	inputs := make([]*PreparedInput, len(wins))
	for i, w := range wins {
		in, err := p.PrepareInput(w)
		if err != nil {
			b.Fatal(err)
		}
		inputs[i] = in
	}
	if _, err := p.ForecastBatch(inputs); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.ForecastBatch(inputs); err != nil {
			b.Fatal(err)
		}
	}
}
