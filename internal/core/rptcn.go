// Package core implements the paper's primary contribution: RPTCN, a
// temporal convolutional network extended with a fully connected layer and
// an attention mechanism for resource-usage prediction in clouds (Fig. 5),
// plus a Predictor that runs Algorithm 1 end to end (clean → normalize →
// PCC screening → horizontal expansion → train → k-step forecast).
package core

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// Config holds the RPTCN hyperparameters. The paper's reference
// architecture uses kernel size 3 with dilations [1, 2, 4] (Fig. 5),
// weight-normalized residual blocks with spatial dropout (Fig. 6), a fully
// connected layer, and the attention head of eq. 7–8.
type Config struct {
	// InChannels is the number of input feature channels (after screening
	// and expansion).
	InChannels int
	// Channels lists the output channel count of each temporal block.
	Channels []int
	// KernelSize is the convolution kernel size K (paper: 3).
	KernelSize int
	// Dilations per block; nil means 1, 2, 4, ... (paper: [1,2,4]).
	Dilations []int
	// Dropout is the spatial dropout probability inside blocks.
	Dropout float64
	// WeightNorm toggles weight normalization in the blocks (paper: on).
	WeightNorm bool
	// FCWidth is the width of the fully connected layer (default 64).
	FCWidth int
	// Horizon is the number of future steps k to predict.
	Horizon int
	// DisableFC / DisableAttention ablate the two heads RPTCN adds to the
	// plain TCN (for the ablation benchmarks); both off by default, i.e.
	// the zero value is the paper's full architecture.
	DisableFC        bool
	DisableAttention bool
}

func (c *Config) fillDefaults() {
	if len(c.Channels) == 0 {
		c.Channels = []int{16, 16, 16}
	}
	if c.KernelSize == 0 {
		c.KernelSize = 3
	}
	if c.FCWidth == 0 {
		c.FCWidth = 64
	}
	if c.Horizon == 0 {
		c.Horizon = 1
	}
}

// Model is the RPTCN network. The data path follows Fig. 5:
//
//	input [batch, channels, window]
//	  → stacked temporal blocks (dilated causal conv, weight norm,
//	    ReLU, spatial dropout, residual)        — the TCN
//	  → last time step                          — sequence-to-vector
//	  → fully connected layer (eq. 6)           — feature synthesis
//	  → attention (eq. 7–8)                     — feature re-weighting
//	  → linear output projection [batch, horizon]
type Model struct {
	Cfg Config

	tcn  *nn.TCN
	last *nn.LastStep
	fc   *nn.Dense
	attn *nn.FeatureAttention
	out  *nn.Dense

	// stages is the Fig. 5 data path as an ordered pipeline — each TCN
	// block its own stage, then last/fc/attention/out. Forward and
	// Backward run through it, so Profile can splice timing wrappers in
	// without touching the concrete fields that back serialization.
	stages []modelStage
}

// modelStage is one named step of the model's data path.
type modelStage struct {
	name  string
	layer nn.Layer
}

// NewModel builds an RPTCN model. The zero-value ablation flags yield the
// paper's full architecture (FC layer + attention head).
func NewModel(r *tensor.RNG, cfg Config) *Model {
	cfg.fillDefaults()
	if cfg.InChannels < 1 {
		panic(fmt.Sprintf("core: InChannels = %d", cfg.InChannels))
	}
	m := &Model{Cfg: cfg, last: &nn.LastStep{}}
	m.tcn = nn.NewTCN(r, nn.TCNConfig{
		InChannels: cfg.InChannels,
		Channels:   cfg.Channels,
		KernelSize: cfg.KernelSize,
		Dilations:  cfg.Dilations,
		Dropout:    cfg.Dropout,
		WeightNorm: cfg.WeightNorm,
	})
	width := cfg.Channels[len(cfg.Channels)-1]
	if !cfg.DisableFC {
		m.fc = nn.NewDense(r, width, cfg.FCWidth)
		width = cfg.FCWidth
	}
	if !cfg.DisableAttention {
		m.attn = nn.NewFeatureAttention(r, width)
	}
	m.out = nn.NewDense(r, width, cfg.Horizon)

	for i, b := range m.tcn.Blocks {
		m.stages = append(m.stages, modelStage{fmt.Sprintf("tcn[%d]", i), b})
	}
	m.stages = append(m.stages, modelStage{"last", m.last})
	if m.fc != nil {
		m.stages = append(m.stages, modelStage{"fc", m.fc})
	}
	if m.attn != nil {
		m.stages = append(m.stages, modelStage{"attention", m.attn})
	}
	m.stages = append(m.stages, modelStage{"out", m.out})
	return m
}

// Forward implements nn.Layer. Two fault points cover the chaos suite:
// "model.forward" can inject a layer panic or latency, and
// "model.forward.out" can corrupt the output activations with NaN/Inf —
// both one atomic load when no injector is active.
func (m *Model) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	fault.Disrupt("model.forward")
	for _, s := range m.stages {
		x = s.layer.Forward(x, train)
	}
	fault.Corrupt("model.forward.out", x.Data)
	return x
}

// InferForward implements nn.InferLayer: the grad-free arena forward
// used by batched serving. It visits the same fault points as Forward
// ("model.forward" disruption, "model.forward.out" corruption) and
// produces output bitwise identical to Forward(x, false), drawing every
// intermediate from the arena so a warmed-up pass allocates nothing.
func (m *Model) InferForward(a *nn.InferArena, x *tensor.Tensor) *tensor.Tensor {
	fault.Disrupt("model.forward")
	for _, s := range m.stages {
		x = nn.Infer(s.layer, a, x)
	}
	fault.Corrupt("model.forward.out", x.Data)
	return x
}

// Children implements nn.ChildLayers, exposing the stage pipeline (the
// profiled wrappers when Profile was called) so generic traversals reach
// the dropout layers' random streams for checkpointing.
func (m *Model) Children() []nn.Layer {
	out := make([]nn.Layer, len(m.stages))
	for i, s := range m.stages {
		out[i] = s.layer
	}
	return out
}

// Backward implements nn.Layer.
func (m *Model) Backward(grad *tensor.Tensor) *tensor.Tensor {
	for i := len(m.stages) - 1; i >= 0; i-- {
		grad = m.stages[i].layer.Backward(grad)
	}
	return grad
}

// Profile wraps every stage of the data path with p's timing wrappers,
// yielding a per-stage cost breakdown (tcn[0..n], last, fc, attention,
// out) after the next forward/backward passes. Weights, Params order and
// serialization are unaffected: the wrappers delegate Params and the
// concrete fields stay unwrapped. A nil profiler is a no-op.
func (m *Model) Profile(p *nn.Profiler) {
	if p == nil {
		return
	}
	for i, s := range m.stages {
		m.stages[i].layer = p.Wrap(s.name, s.layer)
	}
}

// Params implements nn.Layer.
func (m *Model) Params() []*nn.Param {
	ps := m.tcn.Params()
	if m.fc != nil {
		ps = append(ps, m.fc.Params()...)
	}
	if m.attn != nil {
		ps = append(ps, m.attn.Params()...)
	}
	return append(ps, m.out.Params()...)
}

// ReceptiveField returns the past horizon (in samples) the TCN stack sees.
func (m *Model) ReceptiveField() int { return m.tcn.ReceptiveField() }

// AttentionWeights exposes the most recent attention vector for
// interpretation, or nil when attention is ablated or not yet run.
func (m *Model) AttentionWeights() *tensor.Tensor {
	if m.attn == nil {
		return nil
	}
	return m.attn.Weights()
}
