package core

import (
	"errors"
	"fmt"

	"repro/internal/dataprep"
	"repro/internal/nn"
	"repro/internal/opt"
	"repro/internal/tensor"
	"repro/internal/train"
)

// FitFleet trains ONE model on windows pooled from several entities'
// series (each entity is [indicator][time] with the same indicator
// layout). Screening and normalization are fitted on the concatenation of
// all entities, so the resulting predictor serves any workload with
// similar dynamics — the "one model per cluster" deployment a resource
// manager actually wants, rather than one model per container.
//
// Windows never span entity boundaries. The chronological 6:2:2 split is
// applied per entity and the per-entity splits are concatenated, so test
// windows still lie in each entity's future.
func (p *Predictor) FitFleet(entities [][][]float64, target int) error {
	if len(entities) == 0 {
		return errors.New("core: no entities")
	}
	p.target = target
	p.weightedFactors = nil

	// Fit normalization and screening on the pooled cleaned series.
	nIndicators := len(entities[0])
	if target < 0 || target >= nIndicators {
		return fmt.Errorf("core: target index %d out of range (have %d indicators)", target, nIndicators)
	}
	pooled := make([][]float64, nIndicators)
	cleanedPer := make([][][]float64, len(entities))
	for ei, series := range entities {
		if len(series) != nIndicators {
			return fmt.Errorf("core: entity %d has %d indicators, want %d", ei, len(series), nIndicators)
		}
		cleaned := dataprep.Clean(series)
		if len(cleaned) == 0 || len(cleaned[0]) == 0 {
			return fmt.Errorf("core: entity %d empty after cleaning", ei)
		}
		cleanedPer[ei] = cleaned
		for i := range pooled {
			pooled[i] = append(pooled[i], cleaned[i]...)
		}
	}
	p.norm = dataprep.FitNormalizer(pooled)
	normPooled := p.norm.Transform(pooled)
	switch p.Cfg.Scenario {
	case Uni:
		p.selected = []int{target}
	default:
		p.selected = dataprep.ScreenTopHalf(normPooled, target)
	}

	// Build per-entity datasets with the shared normalizer/screening.
	var trs, vas, tes []train.Dataset
	for ei, cleaned := range cleanedPer {
		normed := p.norm.Transform(cleaned)
		sel := dataprep.Select(normed, p.selected)
		if p.Cfg.Scenario == MulExp {
			sel = p.expand(sel)
		}
		if ei == len(cleanedPer)-1 {
			// Retain the last entity's prepared channels for Forecast().
			p.prepared = sel
			p.targetRow = 0
		}
		ds, err := dataprep.BuildSupervised(sel, dataprep.WindowConfig{
			Window: p.Cfg.Window, Horizon: p.Cfg.Horizon, Target: 0,
		})
		if err != nil {
			return fmt.Errorf("core: entity %d: %w", ei, err)
		}
		tr, va, te, err := train.Split(ds, p.Cfg.TrainFrac, p.Cfg.ValidFrac)
		if err != nil {
			return fmt.Errorf("core: entity %d: %w", ei, err)
		}
		trs = append(trs, tr)
		vas = append(vas, va)
		tes = append(tes, te)
	}
	trAll := concatDatasets(trs)
	vaAll := concatDatasets(vas)
	p.test = concatDatasets(tes)

	mcfg := p.Cfg.Model
	mcfg.InChannels = trAll.X.Dim(1)
	mcfg.Horizon = p.Cfg.Horizon
	p.model = NewModel(tensor.NewRNG(p.Cfg.Seed), mcfg)
	p.history = train.Fit(p.model, trAll, vaAll, train.Config{
		Epochs:      p.Cfg.Epochs,
		BatchSize:   p.Cfg.BatchSize,
		Optimizer:   opt.NewAdam(p.Cfg.LearningRate),
		Loss:        &nn.MSELoss{},
		Patience:    p.Cfg.Patience,
		Shuffle:     true,
		Seed:        p.Cfg.Seed + 1,
		RestoreBest: true,
		ClipNorm:    5,
		Hooks:       p.Cfg.Hooks,
	})
	return nil
}

// concatDatasets stacks datasets along the sample dimension. All datasets
// must share per-sample shapes.
func concatDatasets(ds []train.Dataset) train.Dataset {
	if len(ds) == 1 {
		return ds[0]
	}
	total := 0
	for _, d := range ds {
		total += d.Len()
	}
	xShape := ds[0].X.Shape()
	yShape := ds[0].Y.Shape()
	xShape[0] = total
	yShape[0] = total
	x := tensor.New(xShape...)
	y := tensor.New(yShape...)
	xo, yo := 0, 0
	for _, d := range ds {
		copy(x.Data[xo:], d.X.Data)
		copy(y.Data[yo:], d.Y.Data)
		xo += d.X.Size()
		yo += d.Y.Size()
	}
	return train.Dataset{X: x, Y: y}
}
