package core

import (
	"bytes"
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/trace"
)

func TestPredictorSaveLoadRoundTrip(t *testing.T) {
	e := trace.Generate(trace.GeneratorConfig{
		Entities: 1, Kind: trace.Container, Samples: 800, Seed: 51,
	})[0]
	src := NewPredictor(PredictorConfig{
		Scenario: MulExp, Window: 16, Horizon: 2, Epochs: 4, Seed: 1,
		Model: Config{Channels: []int{8, 8}, KernelSize: 3, WeightNorm: true, FCWidth: 16},
	})
	if err := src.Fit(e.Matrix(), int(trace.CPUUtilPercent)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}
	dst, err := LoadPredictor(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Both must produce identical forecasts from the same fresh window.
	fresh := trace.Generate(trace.GeneratorConfig{
		Entities: 1, Kind: trace.Container, Samples: 120, Seed: 52,
	})[0]
	want, err := src.ForecastFrom(fresh.Matrix())
	if err != nil {
		t.Fatal(err)
	}
	got, err := dst.ForecastFrom(fresh.Matrix())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("lengths %d vs %d", len(got), len(want))
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("forecast mismatch: %v vs %v", got, want)
		}
	}
	// Metadata round trip.
	if len(dst.SelectedIndicators()) != len(src.SelectedIndicators()) {
		t.Fatal("selected indicators lost")
	}
	if dst.Cfg.Scenario != MulExp || dst.Cfg.Horizon != 2 {
		t.Fatalf("config lost: %+v", dst.Cfg)
	}
}

func TestPredictorSaveLoadWeightedFactors(t *testing.T) {
	e := trace.Generate(trace.GeneratorConfig{
		Entities: 1, Kind: trace.Container, Samples: 800, Seed: 53,
	})[0]
	src := NewPredictor(PredictorConfig{
		Scenario: MulExp, Expansion: ExpandWeighted,
		Window: 16, Horizon: 1, Epochs: 3, Seed: 1,
		Model: Config{Channels: []int{8}, KernelSize: 3, WeightNorm: true, FCWidth: 8},
	})
	if err := src.Fit(e.Matrix(), int(trace.CPUUtilPercent)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}
	dst, err := LoadPredictor(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Weighted factors must replay identically; a mismatch would change
	// the channel count and fail the forward pass.
	if _, err := dst.ForecastFrom(e.Matrix()); err != nil {
		t.Fatalf("restored weighted predictor cannot serve: %v", err)
	}
}

func TestSaveUnfittedFails(t *testing.T) {
	p := NewPredictor(PredictorConfig{})
	var buf bytes.Buffer
	if err := p.Save(&buf); err == nil {
		t.Fatal("expected error saving unfitted predictor")
	}
}

func TestLoadPredictorRejectsCorruptInput(t *testing.T) {
	if _, err := LoadPredictor(strings.NewReader("junk")); err == nil {
		t.Fatal("expected error for junk")
	}
	if _, err := LoadPredictor(strings.NewReader(`{"format":99}`)); err == nil {
		t.Fatal("expected error for bad format")
	}
	if _, err := LoadPredictor(strings.NewReader(
		`{"format":1,"norm_min":[0],"norm_max":[1],"selected":[5],"weights":{}}`)); err == nil {
		t.Fatal("expected error for out-of-range selected indicator")
	}
	if _, err := LoadPredictor(strings.NewReader(
		`{"format":1,"norm_min":[0],"norm_max":[1],"selected":[],"weights":{}}`)); err == nil {
		t.Fatal("expected error for empty selection")
	}
	if _, err := LoadPredictor(strings.NewReader(
		`{"format":1,"norm_min":[0,1],"norm_max":[1],"selected":[0],"weights":{}}`)); err == nil {
		t.Fatal("expected error for mismatched extrema")
	}
}

// TestSaveFileCrashSafety exercises the atomic write path: a round trip
// through SaveFile/LoadPredictorFile works, a truncated snapshot yields
// a clean decode error (never a partial model), and a save that fails
// mid-write (injected via the fsx.write fault point) leaves the
// previous good snapshot untouched.
func TestSaveFileCrashSafety(t *testing.T) {
	e := trace.Generate(trace.GeneratorConfig{
		Entities: 1, Kind: trace.Container, Samples: 800, Seed: 55,
	})[0]
	p := NewPredictor(PredictorConfig{
		Scenario: Uni, Window: 16, Horizon: 1, Epochs: 3, Seed: 1,
		Model: Config{Channels: []int{8}, KernelSize: 3, FCWidth: 8},
	})
	if err := p.Fit(e.Matrix(), int(trace.CPUUtilPercent)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.json")
	if err := p.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadPredictorFile(path); err != nil {
		t.Fatalf("round trip failed: %v", err)
	}

	// Truncate the snapshot: loading must fail cleanly.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	truncated := filepath.Join(t.TempDir(), "truncated.json")
	if err := os.WriteFile(truncated, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadPredictorFile(truncated); err == nil {
		t.Fatal("expected error loading truncated snapshot")
	}

	// A save interrupted mid-write must not clobber the good snapshot.
	inj := fault.NewInjector(fault.Rule{Scope: "fsx.write", Kind: fault.KindError})
	off := fault.Activate(inj)
	err = p.SaveFile(path)
	off()
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("SaveFile error = %v, want injected", err)
	}
	if _, err := LoadPredictorFile(path); err != nil {
		t.Fatalf("previous snapshot corrupted by failed save: %v", err)
	}
}

func TestLoadedPredictorRefusesTrainingOnlyAPIs(t *testing.T) {
	e := trace.Generate(trace.GeneratorConfig{
		Entities: 1, Kind: trace.Container, Samples: 800, Seed: 54,
	})[0]
	src := NewPredictor(PredictorConfig{
		Scenario: Uni, Window: 16, Horizon: 1, Epochs: 3, Seed: 1,
		Model: Config{Channels: []int{8}, KernelSize: 3, FCWidth: 8},
	})
	if err := src.Fit(e.Matrix(), int(trace.CPUUtilPercent)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}
	dst, err := LoadPredictor(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dst.TestMetrics(); err == nil {
		t.Fatal("TestMetrics should fail on a loaded predictor (no test data)")
	}
	if _, err := dst.Forecast(); err == nil {
		t.Fatal("Forecast should fail on a loaded predictor (no retained series)")
	}
}
