package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/dataprep"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/obs"
	obstrace "repro/internal/obs/trace"
	"repro/internal/opt"
	"repro/internal/tensor"
	"repro/internal/train"
)

// Scenario selects the input-feature regime of Table II.
type Scenario int

// The three experimental scenarios of the paper.
const (
	// Uni feeds only the target indicator's own history.
	Uni Scenario = iota
	// Mul feeds the top half of all indicators by |PCC| with the target.
	Mul
	// MulExp is Mul plus horizontal expansion in the time dimension
	// (Fig. 4b) — the paper's full method.
	MulExp
)

// String returns the scenario name as used in Table II.
func (s Scenario) String() string {
	switch s {
	case Uni:
		return "Uni"
	case Mul:
		return "Mul"
	case MulExp:
		return "Mul-Exp"
	}
	return "unknown"
}

// ExpansionMode selects how Mul-Exp expands features in the time
// dimension.
type ExpansionMode int

// The expansion modes. ExpandLags is the paper's published method
// (Fig. 4b); the other two implement the improvements its discussion
// (Sec. V-C) leaves as future work.
const (
	// ExpandLags replicates each indicator into lagged copies (Fig. 4b).
	ExpandLags ExpansionMode = iota
	// ExpandLagsDiff additionally appends a first-order difference channel
	// per indicator.
	ExpandLagsDiff
	// ExpandWeighted gives each indicator an expansion factor proportional
	// to its |PCC| with the target.
	ExpandWeighted
)

// String returns the mode name.
func (m ExpansionMode) String() string {
	switch m {
	case ExpandLags:
		return "lags"
	case ExpandLagsDiff:
		return "lags+diff"
	case ExpandWeighted:
		return "weighted"
	}
	return "unknown"
}

// PredictorConfig configures the end-to-end Algorithm 1 pipeline.
type PredictorConfig struct {
	Scenario Scenario
	// Expansion selects the Mul-Exp expansion strategy (default: the
	// paper's Fig. 4b lagged copies). Ignored in Uni/Mul scenarios.
	Expansion ExpansionMode
	// Window is the input sequence length L (default 32).
	Window int
	// Horizon is the number of future steps k to predict (default 1).
	Horizon int
	// ExpandFactor is the horizontal expansion factor (default 3, the
	// paper's Fig. 4b example: r_{t−2}, r_{t−1}, r_t).
	ExpandFactor int

	// Model configures the RPTCN network. InChannels and Horizon are
	// filled in by the predictor.
	Model Config

	// Float32 opts serving into the float32 SIMD inference tier: after a
	// successful Fit the model is quantized and validated against the f64
	// oracle on the held-out split (see EnableFloat32), and ForecastBatch
	// switches to the f32 path only when both bounds below hold. Training
	// always runs in float64.
	Float32 bool
	// Float32MaxRelErr bounds the per-element relative deviation of the
	// f32 forecasts from the f64 oracle at enable time (default 5e-3).
	Float32MaxRelErr float64
	// Float32MaxMAEDelta bounds the relative backtest-MAE degradation of
	// the f32 tier vs f64 on the held-out split (default 0.01, i.e. 1%).
	Float32MaxMAEDelta float64

	// Training hyperparameters. Defaults: 60 epochs, batch 32, Adam 1e-3,
	// early-stopping patience 10 (the paper's Keras callback setting).
	Epochs       int
	BatchSize    int
	LearningRate float64
	Patience     int
	Seed         uint64
	// TrainFrac/ValidFrac default to the paper's 6:2:2 split.
	TrainFrac, ValidFrac float64
	// Checkpoint enables periodic crash-safe training checkpoints (and
	// resume) when its Dir is set; see train.CheckpointConfig. Runtime
	// wiring, excluded from model serialization.
	Checkpoint train.CheckpointConfig `json:"-"`
	// Guard enables the training divergence guards (skip NaN/exploding
	// batches, roll back on NaN validation loss); see train.GuardConfig.
	Guard train.GuardConfig `json:"-"`
	// Hooks observe training (per-epoch metrics/logging); see train.Hook.
	// Excluded from model serialization: hooks are runtime wiring.
	Hooks []train.Hook `json:"-"`
	// Tracer records a span tree of the whole pipeline: a "predictor.fit"
	// root with dataprep.* stage children and the nested train.fit run.
	// Runtime wiring like Hooks; nil (or disabled) is free.
	Tracer *obstrace.Tracer `json:"-"`
	// Profiler, when set, wraps every model stage with per-layer timing
	// (see Model.Profile); read the breakdown with Profiler.Table().
	Profiler *nn.Profiler `json:"-"`
}

func (c *PredictorConfig) fillDefaults() {
	if c.Window == 0 {
		c.Window = 32
	}
	if c.Horizon == 0 {
		c.Horizon = 1
	}
	if c.ExpandFactor == 0 {
		c.ExpandFactor = 3
	}
	if c.Epochs == 0 {
		c.Epochs = 60
	}
	if c.BatchSize == 0 {
		c.BatchSize = 32
	}
	if c.LearningRate == 0 {
		c.LearningRate = 1e-3
	}
	if c.Patience == 0 {
		c.Patience = 10
	}
	if c.TrainFrac == 0 {
		c.TrainFrac = 0.6
	}
	if c.ValidFrac == 0 {
		c.ValidFrac = 0.2
	}
	if c.Float32MaxRelErr == 0 {
		c.Float32MaxRelErr = 5e-3
	}
	if c.Float32MaxMAEDelta == 0 {
		c.Float32MaxMAEDelta = 0.01
	}
}

// Predictor runs Algorithm 1 with an RPTCN model: data cleaning,
// normalization, correlation screening, horizontal expansion, supervised
// windowing, training with early stopping, and k-step forecasting.
type Predictor struct {
	Cfg PredictorConfig

	model    *Model
	norm     *dataprep.Normalizer
	selected []int // screened indicator indices into the original series
	target   int
	history  *train.History
	// weightedFactors caches the per-indicator expansion factors of the
	// ExpandWeighted mode, fixed at fit time.
	weightedFactors []int

	// Held-out data retained for evaluation.
	test      train.Dataset
	prepared  [][]float64 // fully prepared channel series (post expansion)
	targetRow int         // row of the target within prepared

	// Batched-serving state (see batch.go): one reusable input tensor +
	// arena per padded batch size, serialized by inferMu; wfMu guards the
	// lazy weighted-factor fix-up on loaded predictors.
	inferMu   sync.Mutex
	inferBufs map[int]*inferBuf
	wfMu      sync.Mutex

	// Float32 serving tier (see float32.go), guarded by inferMu.
	f32Active   bool
	f32Report   Float32Report
	inferBufs32 map[int]*inferBuf32

	// generation counts serving models: 1 at Fit/load, +1 per SwapModel
	// (see generation.go). Guarded by inferMu.
	generation int64
	// genSeq mirrors generation lock-free, published at the END of
	// SwapModel's critical section: a ShardInferencer polls it per batch
	// and only pays an inferMu acquisition when it actually moved, so
	// replicas keep serving the previous generation straight through a
	// long swap hold (f32 revalidation) instead of convoying on the lock.
	genSeq atomic.Int64
}

// NewPredictor returns an unfitted predictor.
func NewPredictor(cfg PredictorConfig) *Predictor {
	cfg.fillDefaults()
	return &Predictor{Cfg: cfg}
}

// prepare runs the data pipeline of Algorithm 1 lines 1–5 and returns the
// prepared channel matrix plus the row index of the target channel.
// Stage spans are recorded as children of parent (nil-safe).
func (p *Predictor) prepare(series [][]float64, target int, parent *obstrace.Span) ([][]float64, int, error) {
	if target < 0 || target >= len(series) {
		return nil, 0, fmt.Errorf("core: target index %d out of range (have %d indicators)", target, len(series))
	}
	sp := parent.Start("dataprep." + dataprep.StageClean)
	cleaned := dataprep.Clean(series)
	sp.End()
	if len(cleaned) == 0 || len(cleaned[0]) == 0 {
		return nil, 0, errors.New("core: no complete records after cleaning")
	}
	// The paper normalizes the full series before splitting (Algorithm 1
	// line 2); we keep that order for fidelity.
	sp = parent.Start("dataprep." + dataprep.StageNormalize)
	p.norm = dataprep.FitNormalizer(cleaned)
	normed := p.norm.Transform(cleaned)
	sp.End()

	sp = parent.Start("dataprep." + dataprep.StageScreen)
	switch p.Cfg.Scenario {
	case Uni:
		p.selected = []int{target}
	default:
		p.selected = dataprep.ScreenTopHalf(normed, target)
	}
	sel := dataprep.Select(normed, p.selected)
	sp.SetAttr(obstrace.Int("selected", len(p.selected)))
	sp.End()
	// ScreenTopHalf puts the target first, and every expansion mode emits
	// the target's lag-0 copy as its first channel.
	if p.Cfg.Scenario == MulExp {
		sp = parent.Start("dataprep."+dataprep.StageExpand,
			obstrace.String("mode", p.Cfg.Expansion.String()))
		sel = p.expand(sel)
		sp.End()
	}
	return sel, 0, nil
}

// expand applies the configured Mul-Exp expansion to the screened,
// normalized channels (target first). Weighted expansion factors are
// computed once at fit time and replayed afterwards so the channel layout
// stays fixed for serving.
func (p *Predictor) expand(sel [][]float64) [][]float64 {
	switch p.Cfg.Expansion {
	case ExpandLagsDiff:
		return dataprep.ExpandWithDifference(sel, p.Cfg.ExpandFactor)
	case ExpandWeighted:
		if p.weightedFactors == nil {
			corr := dataprep.Correlations(sel, 0)
			p.weightedFactors = dataprep.WeightedFactors(corr, p.Cfg.ExpandFactor)
		}
		return dataprep.ExpandWithFactors(sel, p.weightedFactors, p.Cfg.ExpandFactor)
	default:
		return dataprep.ExpandHorizontal(sel, p.Cfg.ExpandFactor)
	}
}

// Fit runs the full pipeline on series ([indicator][time]) predicting the
// indicator at index target.
func (p *Predictor) Fit(series [][]float64, target int) error {
	var fitSpan *obstrace.Span
	if p.Cfg.Tracer != nil {
		fitSpan = p.Cfg.Tracer.Start("predictor.fit",
			obstrace.String("scenario", p.Cfg.Scenario.String()),
			obstrace.Int("indicators", len(series)),
			obstrace.Int("target", target),
			obstrace.Int("window", p.Cfg.Window),
			obstrace.Int("horizon", p.Cfg.Horizon))
		defer fitSpan.End()
	}
	p.target = target
	p.weightedFactors = nil // recomputed per fit
	prepared, targetRow, err := p.prepare(series, target, fitSpan)
	if err != nil {
		return err
	}
	p.prepared = prepared
	p.targetRow = targetRow

	windowSpan := fitSpan.Start("dataprep." + dataprep.StageWindow)
	ds, err := dataprep.BuildSupervised(prepared, dataprep.WindowConfig{
		Window:  p.Cfg.Window,
		Horizon: p.Cfg.Horizon,
		Target:  targetRow,
	})
	windowSpan.End()
	if err != nil {
		return err
	}
	tr, va, te, err := train.Split(ds, p.Cfg.TrainFrac, p.Cfg.ValidFrac)
	if err != nil {
		return err
	}
	p.test = te

	mcfg := p.Cfg.Model
	mcfg.InChannels = len(prepared)
	mcfg.Horizon = p.Cfg.Horizon
	r := tensor.NewRNG(p.Cfg.Seed)
	p.model = NewModel(r, mcfg)
	p.model.Profile(p.Cfg.Profiler)

	p.history = train.Fit(p.model, tr, va, train.Config{
		Epochs:      p.Cfg.Epochs,
		BatchSize:   p.Cfg.BatchSize,
		Optimizer:   opt.NewAdam(p.Cfg.LearningRate),
		Loss:        &nn.MSELoss{},
		Patience:    p.Cfg.Patience,
		Shuffle:     true,
		Seed:        p.Cfg.Seed + 1,
		RestoreBest: true,
		ClipNorm:    5,
		Checkpoint:  p.Cfg.Checkpoint,
		Guard:       p.Cfg.Guard,
		Hooks:       p.Cfg.Hooks,
		TraceParent: fitSpan,
		Tracer:      p.Cfg.Tracer,
	})
	p.inferMu.Lock()
	p.generation = 1
	p.genSeq.Store(1)
	p.inferMu.Unlock()
	// The f32 tier is opportunistic: a refusal (error bound or MAE
	// degradation exceeded) is logged and serving stays on the validated
	// f64 path — quality gates must never fail a successful fit.
	if p.Cfg.Float32 {
		if _, err := p.EnableFloat32(); err != nil {
			obs.Logger("core").Warn("float32 serving tier not enabled", "err", err)
		}
	}
	return nil
}

// TestMetrics evaluates the fitted model on the held-out test segment at
// the normalized scale — the scale of the paper's Table II (values ×10⁻²).
func (p *Predictor) TestMetrics() (metrics.Report, error) {
	if p.model == nil {
		return metrics.Report{}, errors.New("core: predictor not fitted")
	}
	if p.test.X == nil {
		return metrics.Report{}, errors.New("core: no held-out test data (loaded predictors serve only)")
	}
	preds := train.Predict(p.model, p.test)
	truth := make([]float64, p.test.Len())
	h := p.Cfg.Horizon
	for i := range truth {
		truth[i] = p.test.Y.Data[i*h]
	}
	return metrics.Evaluate(truth, preds), nil
}

// TestSeries returns the held-out truth and predictions (first-step, at
// the normalized scale) for plotting (Fig. 8).
func (p *Predictor) TestSeries() (truth, preds []float64, err error) {
	if p.model == nil {
		return nil, nil, errors.New("core: predictor not fitted")
	}
	if p.test.X == nil {
		return nil, nil, errors.New("core: no held-out test data (loaded predictors serve only)")
	}
	preds = train.Predict(p.model, p.test)
	truth = make([]float64, p.test.Len())
	h := p.Cfg.Horizon
	for i := range truth {
		truth[i] = p.test.Y.Data[i*h]
	}
	return truth, preds, nil
}

// Forecast predicts the next Horizon values of the target indicator from
// the end of the training series, returned on the ORIGINAL (denormalized)
// scale — Algorithm 1's output cpu_{m+1..m+k}.
func (p *Predictor) Forecast() ([]float64, error) {
	if p.model == nil {
		return nil, errors.New("core: predictor not fitted")
	}
	if len(p.prepared) == 0 {
		return nil, errors.New("core: no retained series (loaded predictors use ForecastFrom)")
	}
	n := len(p.prepared[0])
	if n < p.Cfg.Window {
		return nil, errors.New("core: series shorter than window")
	}
	c := len(p.prepared)
	x := tensor.New(1, c, p.Cfg.Window)
	for ci := 0; ci < c; ci++ {
		copy(x.Data[ci*p.Cfg.Window:(ci+1)*p.Cfg.Window], p.prepared[ci][n-p.Cfg.Window:])
	}
	out := p.model.Forward(x, false)
	normPreds := append([]float64(nil), out.Data...)
	// Denormalize against the original target indicator's extrema.
	return p.norm.Inverse(p.target, normPreds), nil
}

// ForecastFrom predicts the next Horizon values of the target indicator
// from fresh raw history (same indicator layout as the series passed to
// Fit). The stored normalizer and screening are applied — nothing is
// refit — so this is the online serving path: feed the latest monitoring
// window, get a denormalized forecast. It runs as a batch of one through
// the grad-free arena path (see batch.go), bitwise identical to the
// training-path forward.
func (p *Predictor) ForecastFrom(series [][]float64) ([]float64, error) {
	in, err := p.PrepareInput(series)
	if err != nil {
		return nil, err
	}
	res, err := p.ForecastBatch([]*PreparedInput{in})
	if err != nil {
		return nil, err
	}
	return res[0], nil
}

// DenormalizeTarget maps values of the target indicator from the
// normalized scale back to the raw scale (e.g. test predictions from
// TestSeries).
func (p *Predictor) DenormalizeTarget(xs []float64) []float64 {
	if p.norm == nil {
		return append([]float64(nil), xs...)
	}
	return p.norm.Inverse(p.target, xs)
}

// History returns the training history (loss curves for Figs. 9–10).
func (p *Predictor) History() *train.History { return p.history }

// SelectedIndicators returns the indices (into the original series) chosen
// by the correlation screening, target first.
func (p *Predictor) SelectedIndicators() []int { return p.selected }

// Model exposes the underlying network (e.g. for attention inspection).
// Once hot-swapping is in play the pointer is only a snapshot: the
// serving model may change right after this returns.
func (p *Predictor) Model() *Model {
	p.inferMu.Lock()
	defer p.inferMu.Unlock()
	return p.model
}

// NormBounds returns the per-indicator min/max the normalizer was fitted
// with (copies; nil before Fit). Serving uses them to flag inputs that
// drift outside the training distribution.
func (p *Predictor) NormBounds() (min, max []float64) {
	if p.norm == nil {
		return nil, nil
	}
	return append([]float64(nil), p.norm.Min...), append([]float64(nil), p.norm.Max...)
}

// MinHistory returns the number of complete (clean) samples ForecastFrom
// needs to fill one input window, accounting for the samples horizontal
// expansion trims.
func (p *Predictor) MinHistory() int {
	if p.Cfg.Scenario == MulExp {
		return p.Cfg.Window + p.Cfg.ExpandFactor - 1
	}
	return p.Cfg.Window
}
