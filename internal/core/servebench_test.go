package core

import (
	"sync"
	"testing"

	"repro/internal/tensor"
)

// servingPredictor is the shared fixture for the serving-path benchmarks:
// a fitted RPTCN predictor plus 32 prepared request windows.
func servingPredictor(b *testing.B) (*Predictor, []*PreparedInput) {
	series := syntheticSeries(200)
	p := NewPredictor(PredictorConfig{
		Scenario:  Mul,
		Window:    32,
		Horizon:   1,
		Epochs:    1,
		BatchSize: 16,
		Seed:      4,
		Model:     Config{Channels: []int{16, 16, 16}, KernelSize: 3, WeightNorm: true},
	})
	if err := p.Fit(series, 0); err != nil {
		b.Fatal(err)
	}
	wins := servingWindows(p, len(series), 32)
	inputs := make([]*PreparedInput, len(wins))
	for i, w := range wins {
		in, err := p.PrepareInput(w)
		if err != nil {
			b.Fatal(err)
		}
		inputs[i] = in
	}
	return p, inputs
}

// BenchmarkServingSerialTrainingPath32 reproduces the pre-arena serving
// cost: 32 requests answered one at a time, each paying a full
// training-capable Forward (allocating every intermediate) under the
// serialization mutex — exactly what ForecastFrom did before the arena
// path existed.
func BenchmarkServingSerialTrainingPath32(b *testing.B) {
	p, inputs := servingPredictor(b)
	var mu sync.Mutex
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, in := range inputs {
			mu.Lock()
			x := tensor.New(1, in.channels, p.Cfg.Window)
			copy(x.Data, in.data)
			out := p.model.Forward(x, false)
			_ = p.norm.Inverse(p.target, out.Data)
			mu.Unlock()
		}
	}
}

// BenchmarkServingBatchedArena32 is the after: the same 32 requests fused
// into one grad-free arena forward.
func BenchmarkServingBatchedArena32(b *testing.B) {
	p, inputs := servingPredictor(b)
	if _, err := p.ForecastBatch(inputs); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.ForecastBatch(inputs); err != nil {
			b.Fatal(err)
		}
	}
}
