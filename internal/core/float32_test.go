package core

import (
	"math"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/par"
)

// fitF32Predictor fits a small predictor suitable for the f32 tier
// tests (Float32 off; tests enable explicitly to inspect the report).
func fitF32Predictor(t testing.TB, cfg func(*PredictorConfig)) *Predictor {
	series := syntheticSeries(200)
	pc := PredictorConfig{
		Scenario:  Mul,
		Window:    16,
		Horizon:   2,
		Epochs:    2,
		BatchSize: 16,
		Seed:      4,
		Model:     Config{Channels: []int{8, 8}, KernelSize: 3, WeightNorm: true, FCWidth: 8},
	}
	if cfg != nil {
		cfg(&pc)
	}
	p := NewPredictor(pc)
	if err := p.Fit(series, 0); err != nil {
		t.Fatal(err)
	}
	return p
}

// TestEnableFloat32ValidatesAndServes enables the tier, checks the
// validation report is inside the configured bounds, and demands the f32
// forecasts stay within the relative error bound of the f64 oracle —
// and that batching on the f32 tier is bitwise self-consistent across
// batch sizes and worker counts, like the f64 path.
func TestEnableFloat32ValidatesAndServes(t *testing.T) {
	p := fitF32Predictor(t, nil)
	rep, err := p.EnableFloat32()
	if err != nil {
		t.Fatalf("EnableFloat32: %v (report %+v)", err, rep)
	}
	if !p.Float32Active() {
		t.Fatal("tier not active after successful enable")
	}
	if rep.Samples == 0 || rep.MaxRelErr <= 0 {
		t.Fatalf("degenerate report: %+v", rep)
	}
	if rep.MaxRelErr > p.Cfg.Float32MaxRelErr || rep.MAEDelta > p.Cfg.Float32MaxMAEDelta {
		t.Fatalf("enable accepted out-of-bound report: %+v", rep)
	}
	if got, ok := p.Float32Stats(); !ok || got != rep {
		t.Fatalf("Float32Stats = %+v, %v", got, ok)
	}

	wins := servingWindows(p, 4, 8)
	inputs := make([]*PreparedInput, len(wins))
	for i, w := range wins {
		in, err := p.PrepareInput(w)
		if err != nil {
			t.Fatal(err)
		}
		inputs[i] = in
	}
	got32, err := p.ForecastBatch(inputs)
	if err != nil {
		t.Fatal(err)
	}
	// f64 oracle for the same requests.
	p.DisableFloat32()
	want64, err := p.ForecastBatch(inputs)
	if err != nil {
		t.Fatal(err)
	}
	p.f32Active = true
	for i := range want64 {
		for k := range want64[i] {
			w, g := want64[i][k], got32[i][k]
			if math.Abs(g-w) > 1e-4+5e-3*math.Abs(w) {
				t.Fatalf("request %d step %d: f32 %g vs f64 %g", i, k, g, w)
			}
		}
	}
	// Bitwise self-consistency: each request alone must equal its row in
	// the batch, at any worker count.
	for _, workers := range []int{1, 4} {
		prev := par.SetWorkers(workers)
		for i, in := range inputs {
			single, err := p.ForecastBatch([]*PreparedInput{in})
			if err != nil {
				t.Fatal(err)
			}
			for k := range single[0] {
				if single[0][k] != got32[i][k] {
					t.Fatalf("workers=%d request %d step %d: solo %g != batched %g",
						workers, i, k, single[0][k], got32[i][k])
				}
			}
		}
		par.SetWorkers(prev)
	}
}

// TestFloat32ConfigAutoEnables checks the PredictorConfig opt-in path.
func TestFloat32ConfigAutoEnables(t *testing.T) {
	p := fitF32Predictor(t, func(c *PredictorConfig) { c.Float32 = true })
	if !p.Float32Active() {
		t.Fatal("Cfg.Float32 did not enable the tier after Fit")
	}
}

// TestEnableFloat32RefusesOnTightBound pins the degradation rule: with
// an impossibly tight error bound the tier must refuse and leave f64
// serving untouched.
func TestEnableFloat32RefusesOnTightBound(t *testing.T) {
	p := fitF32Predictor(t, func(c *PredictorConfig) { c.Float32MaxRelErr = 1e-12 })
	rep, err := p.EnableFloat32()
	if err == nil {
		t.Fatalf("enable succeeded under 1e-12 bound (report %+v)", rep)
	}
	if !strings.Contains(err.Error(), "refused") {
		t.Fatalf("unexpected error: %v", err)
	}
	if p.Float32Active() {
		t.Fatal("tier active after refusal")
	}
	// Serving still works (f64 path).
	wins := servingWindows(p, 4, 2)
	in, err := p.PrepareInput(wins[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.ForecastBatch([]*PreparedInput{in}); err != nil {
		t.Fatal(err)
	}
}

// TestFloat32AutoDisableOnOverflow pins the runtime guard: weights that
// overflow float32 (but not float64) produce a non-finite f32 output,
// and ForecastBatch must fall back to f64 and switch the tier off.
func TestFloat32AutoDisableOnOverflow(t *testing.T) {
	p := fitF32Predictor(t, nil)
	if _, err := p.EnableFloat32(); err != nil {
		t.Fatal(err)
	}
	// Out-projection weights beyond float32 range: f64 forward stays
	// finite (~1e200-scale outputs), the f32 mirrors quantize to ±Inf.
	for i := range p.model.out.W.Value.Data {
		p.model.out.W.Value.Data[i] = 1e200
	}
	p.model.Quantize32()

	wins := servingWindows(p, 4, 2)
	in, err := p.PrepareInput(wins[0])
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.ForecastBatch([]*PreparedInput{in})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res[0] {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("fallback forecast non-finite: %v", res[0])
		}
	}
	if p.Float32Active() {
		t.Fatal("tier still active after non-finite f32 output")
	}
}

// BenchmarkServingBatchedArenaF32 is the f32 counterpart of
// BenchmarkServingBatchedArena32 (there, 32 is the batch size): the same
// 32 fused requests served on the float32 tier.
func BenchmarkServingBatchedArenaF32(b *testing.B) {
	// Silence the enable-time INFO line: go test merges stderr into
	// stdout, and a log line between a benchmark's name and its result
	// row breaks benchmark-output parsers (cmd/benchjson).
	obs.SetLogger(obs.NopLogger())
	defer obs.SetLogger(nil)
	p, inputs := servingPredictor(b)
	if _, err := p.EnableFloat32(); err != nil {
		b.Fatal(err)
	}
	if _, err := p.ForecastBatch(inputs); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.ForecastBatch(inputs); err != nil {
			b.Fatal(err)
		}
	}
}
