package core

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/nn"
	obstrace "repro/internal/obs/trace"
)

// syntheticSeries builds a few correlated indicator series long enough
// for a small windowed fit.
func syntheticSeries(n int) [][]float64 {
	base := make([]float64, n)
	for t := range base {
		base[t] = 0.5 + 0.4*math.Sin(float64(t)/7)
	}
	series := make([][]float64, 4)
	series[0] = base
	for i := 1; i < 4; i++ {
		s := make([]float64, n)
		for t := range s {
			s[t] = base[t]*float64(i)*0.3 + 0.1*math.Cos(float64(t)/float64(3+i))
		}
		series[i] = s
	}
	return series
}

func TestPredictorTraceAndProfile(t *testing.T) {
	tracer := obstrace.New(4)
	tracer.SetEnabled(true)
	prof := nn.NewProfiler()
	p := NewPredictor(PredictorConfig{
		Scenario: MulExp,
		Window:   8,
		Epochs:   2,
		Patience: 1,
		Model:    Config{Channels: []int{4, 4}},
		Tracer:   tracer,
		Profiler: prof,
	})
	if err := p.Fit(syntheticSeries(200), 0); err != nil {
		t.Fatal(err)
	}

	traces := tracer.Traces()
	if len(traces) != 1 {
		t.Fatalf("got %d traces, want 1", len(traces))
	}
	root := traces[0].Export()
	if root.Name != "predictor.fit" {
		t.Fatalf("root = %q", root.Name)
	}
	var names []string
	for _, sp := range root.Spans {
		names = append(names, sp.Name)
	}
	joined := strings.Join(names, " ")
	for _, want := range []string{
		"dataprep.clean", "dataprep.normalize", "dataprep.screen",
		"dataprep.expand", "dataprep.window", "train.fit",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("trace missing stage %q (have: %s)", want, joined)
		}
	}

	stats := prof.Stats()
	if len(stats) == 0 {
		t.Fatal("profiler recorded nothing")
	}
	byName := map[string]nn.LayerStats{}
	for _, s := range stats {
		byName[s.Name] = s
	}
	for _, want := range []string{"tcn[0]", "tcn[1]", "last", "fc", "attention", "out"} {
		s, ok := byName[want]
		if !ok {
			t.Fatalf("no profile entry for stage %q (have %v)", want, stats)
		}
		if s.FwdCalls == 0 {
			t.Errorf("stage %q never ran forward", want)
		}
		if s.BwdCalls == 0 {
			t.Errorf("stage %q never ran backward", want)
		}
	}

	// A profiled model must still serialize and round-trip.
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadPredictor(&buf)
	if err != nil {
		t.Fatal(err)
	}
	hist := make([][]float64, 4)
	src := syntheticSeries(200)
	for i := range hist {
		hist[i] = src[i][len(src[i])-40:]
	}
	want, err := p.ForecastFrom(hist)
	if err != nil {
		t.Fatal(err)
	}
	got, err := loaded.ForecastFrom(hist)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(want[i]-got[i]) > 1e-9 {
			t.Fatalf("loaded forecast diverges: %v vs %v", got, want)
		}
	}
}

func TestMinHistoryAndNormBounds(t *testing.T) {
	p := NewPredictor(PredictorConfig{Scenario: MulExp, Window: 8, ExpandFactor: 3})
	if got := p.MinHistory(); got != 10 {
		t.Fatalf("MulExp MinHistory = %d, want 10", got)
	}
	p2 := NewPredictor(PredictorConfig{Scenario: Mul, Window: 8})
	if got := p2.MinHistory(); got != 8 {
		t.Fatalf("Mul MinHistory = %d, want 8", got)
	}
	if mn, mx := p.NormBounds(); mn != nil || mx != nil {
		t.Fatal("NormBounds before Fit must be nil")
	}
	pf := NewPredictor(PredictorConfig{Scenario: Uni, Window: 8, Epochs: 1, Model: Config{Channels: []int{4}}})
	if err := pf.Fit(syntheticSeries(120), 0); err != nil {
		t.Fatal(err)
	}
	mn, mx := pf.NormBounds()
	if len(mn) != 4 || len(mx) != 4 {
		t.Fatalf("bounds lengths %d/%d, want 4", len(mn), len(mx))
	}
	for i := range mn {
		if mn[i] >= mx[i] {
			t.Fatalf("degenerate bounds at %d: [%g, %g]", i, mn[i], mx[i])
		}
	}
}
