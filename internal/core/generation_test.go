package core

import (
	"fmt"
	"testing"

	"repro/internal/par"
	"repro/internal/train"
)

// genPredictor fits a small MulExp predictor for the swap suite.
func genPredictor(t *testing.T, f32 bool) (*Predictor, [][]float64) {
	t.Helper()
	series := syntheticSeries(200)
	p := NewPredictor(PredictorConfig{
		Scenario:     MulExp,
		Window:       12,
		Horizon:      2,
		ExpandFactor: 2,
		Epochs:       3,
		BatchSize:    8,
		Seed:         9,
		Float32:      f32,
		Model:        Config{Channels: []int{6, 6}, KernelSize: 3, WeightNorm: true, FCWidth: 8},
	})
	if err := p.Fit(series, 0); err != nil {
		t.Fatal(err)
	}
	return p, series
}

// shifted returns the series with a level shift on every indicator —
// enough regime change for a fine-tune to move the weights.
func shifted(series [][]float64, delta float64) [][]float64 {
	out := make([][]float64, len(series))
	for i, row := range series {
		s := make([]float64, len(row))
		for j, v := range row {
			s[j] = v + delta
		}
		out[i] = s
	}
	return out
}

// TestCloneIsIndependent: mutating a clone's weights must not perturb
// the original's forecasts by a single bit.
func TestCloneIsIndependent(t *testing.T) {
	p, series := genPredictor(t, false)
	win := servingWindows(p, len(series), 1)[0]
	before, err := p.ForecastFrom(win)
	if err != nil {
		t.Fatal(err)
	}
	clone := p.Model().Clone()
	for _, prm := range clone.Params() {
		for i := range prm.Value.Data {
			prm.Value.Data[i] += 0.5
		}
	}
	after, err := p.ForecastFrom(win)
	if err != nil {
		t.Fatal(err)
	}
	requireBitwiseEqual(t, "forecast after clone mutation", before, after)
}

// TestSwapModelGenerationsAndRollback walks fit→swap→rollback: the
// generation increments on every swap (rollback included), the swapped
// model's forecasts match what FineTune produced, and rolling back the
// returned previous model restores the generation-1 forecasts bitwise.
func TestSwapModelGenerationsAndRollback(t *testing.T) {
	p, series := genPredictor(t, false)
	if g := p.Generation(); g != 1 {
		t.Fatalf("generation after Fit = %d, want 1", g)
	}
	win := servingWindows(p, len(series), 1)[0]
	gen1Forecast, err := p.ForecastFrom(win)
	if err != nil {
		t.Fatal(err)
	}

	cand, eval, hist, err := p.FineTune(shifted(series, 0.2), FineTuneConfig{Epochs: 2, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	if hist == nil || len(hist.TrainLoss) == 0 {
		t.Fatal("fine-tune produced no history")
	}
	in, err := p.PrepareInput(win)
	if err != nil {
		t.Fatal(err)
	}
	shadow, err := p.NewInferencer(cand).Forecast(in)
	if err != nil {
		t.Fatal(err)
	}

	prev, prevEval, gen, err := p.SwapModel(cand, eval)
	if err != nil {
		t.Fatal(err)
	}
	if gen != 2 || p.Generation() != 2 {
		t.Fatalf("generation after swap = %d/%d, want 2", gen, p.Generation())
	}
	gen2Forecast, err := p.ForecastFrom(win)
	if err != nil {
		t.Fatal(err)
	}
	// The shadow inferencer and the serving path must agree bitwise on
	// the promoted model — shadow scores are transferable to serving.
	requireBitwiseEqual(t, "shadow vs serving on candidate", shadow, gen2Forecast)

	// Roll back: the old model serves again, as a NEW generation.
	if _, _, gen, err = p.SwapModel(prev, prevEval); err != nil {
		t.Fatal(err)
	}
	if gen != 3 {
		t.Fatalf("generation after rollback = %d, want 3", gen)
	}
	rolledBack, err := p.ForecastFrom(win)
	if err != nil {
		t.Fatal(err)
	}
	requireBitwiseEqual(t, "rollback restores generation-1 forecasts", gen1Forecast, rolledBack)
}

// TestSwapModelRejectsShapeMismatch: a candidate with a different input
// layout must be refused, leaving serving untouched.
func TestSwapModelRejectsShapeMismatch(t *testing.T) {
	p, series := genPredictor(t, false)
	bad := p.Model().Clone()
	bad.Cfg.InChannels++ // simulate a mismatched architecture
	if _, _, _, err := p.SwapModel(bad, train.Dataset{}); err == nil {
		t.Fatal("shape-mismatched swap accepted")
	}
	if _, _, _, err := p.SwapModel(nil, train.Dataset{}); err == nil {
		t.Fatal("nil swap accepted")
	}
	if p.Generation() != 1 {
		t.Fatalf("failed swaps bumped generation to %d", p.Generation())
	}
	win := servingWindows(p, len(series), 1)[0]
	if _, err := p.ForecastFrom(win); err != nil {
		t.Fatalf("serving broken after refused swap: %v", err)
	}
}

// TestFineTuneDeterministic: same windows + same config ⇒ bitwise
// identical candidate weights and forecasts, run to run.
func TestFineTuneDeterministic(t *testing.T) {
	p, series := genPredictor(t, false)
	fresh := shifted(series, 0.15)
	cfg := FineTuneConfig{Epochs: 2, Seed: 41}
	a, _, _, err := p.FineTune(fresh, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, _, _, err := p.FineTune(fresh, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pa, pb := a.Params(), b.Params()
	for i := range pa {
		requireBitwiseEqual(t, fmt.Sprintf("param %d", i), pa[i].Value.Data, pb[i].Value.Data)
	}
}

// TestPostSwapForecastDeterministicAcrossWorkers pins the acceptance
// criterion: for a fixed generation, forecasts are bitwise identical at
// any worker count (the GOMAXPROCS proxy for the compute kernels).
func TestPostSwapForecastDeterministicAcrossWorkers(t *testing.T) {
	p, series := genPredictor(t, false)
	cand, eval, _, err := p.FineTune(shifted(series, 0.2), FineTuneConfig{Epochs: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := p.SwapModel(cand, eval); err != nil {
		t.Fatal(err)
	}
	win := servingWindows(p, len(series), 1)[0]
	ref, err := p.ForecastFrom(win)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4} {
		prev := par.SetWorkers(workers)
		got, err := p.ForecastFrom(win)
		par.SetWorkers(prev)
		if err != nil {
			t.Fatal(err)
		}
		requireBitwiseEqual(t, fmt.Sprintf("workers=%d", workers), ref, got)
	}
}

// TestSwapRevalidatesFloat32 swaps under an active f32 tier: the tier
// must be re-validated against the new weights (staying active when the
// backtest passes) and serving must keep working either way.
func TestSwapRevalidatesFloat32(t *testing.T) {
	p, series := genPredictor(t, true)
	if !p.Float32Active() {
		t.Skip("f32 tier refused at fit time on this model; nothing to re-validate")
	}
	cand, eval, _, err := p.FineTune(shifted(series, 0.1), FineTuneConfig{Epochs: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := p.SwapModel(cand, eval); err != nil {
		t.Fatal(err)
	}
	if !p.Float32Active() {
		t.Fatal("f32 tier not re-enabled after swap despite passing backtest at fit time")
	}
	rep, _ := p.Float32Stats()
	if rep.Samples != eval.Len() {
		t.Fatalf("f32 report covers %d samples, want the new eval split's %d", rep.Samples, eval.Len())
	}
	win := servingWindows(p, len(series), 1)[0]
	if _, err := p.ForecastFrom(win); err != nil {
		t.Fatal(err)
	}
}
