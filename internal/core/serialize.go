package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/dataprep"
	"repro/internal/fsx"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// predictorDump is the on-disk form of a fitted predictor: everything
// needed to rebuild the serving path (config, screening, normalizer,
// weighted factors, prepared training tail for Forecast, and the model
// weights).
type predictorDump struct {
	Format          int             `json:"format"`
	Cfg             PredictorConfig `json:"config"`
	ModelCfg        Config          `json:"model_config"`
	Target          int             `json:"target"`
	Selected        []int           `json:"selected"`
	NormMin         []float64       `json:"norm_min"`
	NormMax         []float64       `json:"norm_max"`
	WeightedFactors []int           `json:"weighted_factors,omitempty"`
	Weights         json.RawMessage `json:"weights"`
}

// predictorFormat is bumped on incompatible changes.
const predictorFormat = 1

// Save serializes a fitted predictor to w as JSON. Load restores it; the
// restored predictor serves ForecastFrom but carries no training history
// or held-out test data.
func (p *Predictor) Save(w io.Writer) error {
	if p.model == nil {
		return fmt.Errorf("core: cannot save an unfitted predictor")
	}
	var weights bytes.Buffer
	if err := nn.SaveParams(&weights, p.model); err != nil {
		return err
	}
	dump := predictorDump{
		Format:          predictorFormat,
		Cfg:             p.Cfg,
		ModelCfg:        p.model.Cfg,
		Target:          p.target,
		Selected:        p.selected,
		NormMin:         p.norm.Min,
		NormMax:         p.norm.Max,
		WeightedFactors: p.weightedFactors,
		Weights:         json.RawMessage(weights.Bytes()),
	}
	return json.NewEncoder(w).Encode(dump)
}

// SaveFile writes the predictor to path crash-safely: the snapshot is
// staged in a temp file, fsynced, and renamed into place, so a process
// killed mid-save never leaves a truncated model where a good one was.
func (p *Predictor) SaveFile(path string) error {
	return fsx.WriteFileAtomic(path, p.Save)
}

// LoadPredictorFile restores a predictor saved with SaveFile (or any
// file containing a Save snapshot).
func LoadPredictorFile(path string) (*Predictor, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	defer f.Close()
	return LoadPredictor(f)
}

// LoadPredictor restores a predictor saved with Save. The result is ready
// for ForecastFrom/DenormalizeTarget; TestMetrics, History and Forecast
// (which depend on retained training data) return errors.
func LoadPredictor(r io.Reader) (*Predictor, error) {
	var dump predictorDump
	if err := json.NewDecoder(r).Decode(&dump); err != nil {
		return nil, fmt.Errorf("core: decoding predictor: %w", err)
	}
	if dump.Format != predictorFormat {
		return nil, fmt.Errorf("core: unsupported predictor format %d (want %d)", dump.Format, predictorFormat)
	}
	if len(dump.NormMin) == 0 || len(dump.NormMin) != len(dump.NormMax) {
		return nil, fmt.Errorf("core: corrupt normalizer (%d/%d extrema)", len(dump.NormMin), len(dump.NormMax))
	}
	if len(dump.Selected) == 0 {
		return nil, fmt.Errorf("core: no selected indicators")
	}
	for _, s := range dump.Selected {
		if s < 0 || s >= len(dump.NormMin) {
			return nil, fmt.Errorf("core: selected indicator %d out of range", s)
		}
	}
	p := NewPredictor(dump.Cfg)
	p.target = dump.Target
	p.selected = dump.Selected
	p.weightedFactors = dump.WeightedFactors
	p.norm = &dataprep.Normalizer{Min: dump.NormMin, Max: dump.NormMax}
	p.model = NewModel(tensor.NewRNG(0), dump.ModelCfg)
	if err := nn.LoadParams(bytes.NewReader(dump.Weights), p.model); err != nil {
		return nil, err
	}
	p.generation = 1
	p.genSeq.Store(1)
	return p, nil
}
