package core

import (
	"errors"
	"fmt"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// ShardInferencer is a per-shard serving engine: a private deep copy of
// the serving model plus its own warmed arena pool. The shared
// Predictor serializes every ForecastBatch on inferMu — the arena
// kernels keep per-call state, so one model instance can only ever run
// one forward at a time — which caps a fleet of shard workers at one
// core and, worse, convoys every request behind long inferMu holds
// (hot-swaps, f32 revalidation backtests). A replica per shard removes
// both: N workers run N forwards truly in parallel, and a swap on the
// shared predictor never stalls a replica mid-batch.
//
// Replicas follow hot-swaps by generation: each batch snapshots the
// predictor's (model, generation) pair and re-clones when the
// generation moved, so a promotion or rollback propagates to every
// shard within one batch. Because Clone copies weights exactly and the
// kernels are deterministic, a replica's forecasts are bitwise
// identical to the shared predictor's for the same generation (pinned
// by TestShardInferencerMatchesPredictor).
//
// A ShardInferencer is not synchronized: exactly one shard worker owns
// it. It always serves float64 — the f32 tier's quantization is
// per-model state that the shared predictor revalidates on swap, so
// replicas stay on the bitwise-stable tier.
type ShardInferencer struct {
	p     *Predictor
	model *Model
	gen   int64
	bufs  map[int]*inferBuf
}

// NewShardInferencer returns an engine serving p's current (and future)
// generations through a private replica. The replica is materialized
// lazily on the first batch.
func (p *Predictor) NewShardInferencer() *ShardInferencer {
	return &ShardInferencer{p: p, bufs: make(map[int]*inferBuf)}
}

// MinHistory mirrors Predictor.MinHistory.
func (si *ShardInferencer) MinHistory() int { return si.p.MinHistory() }

// PrepareInput mirrors Predictor.PrepareInput (the pipeline is frozen at
// Fit, so prepared inputs are engine-independent).
func (si *ShardInferencer) PrepareInput(series [][]float64) (*PreparedInput, error) {
	return si.p.PrepareInput(series)
}

// Generation returns the generation the replica currently mirrors (0
// before the first batch).
func (si *ShardInferencer) Generation() int64 { return si.gen }

// refresh snapshots the shared predictor's (model, generation) pair and
// re-clones the replica if a hot-swap landed since the last batch. The
// steady-state check is one atomic load of the predictor's published
// generation sequence — no lock — so a long SwapModel hold (f32
// revalidation backtest) never convoys replica serving; the replica
// keeps answering on its previous-generation clone until the swap
// publishes. Only on an actual generation move does it pay the ModelGen
// lock: the snapshot is atomic (one inferMu hold), and Clone only reads
// the source model's weights — which are never mutated in place, only
// replaced by SwapModel — so cloning outside the lock is safe even
// while the shared predictor keeps serving.
func (si *ShardInferencer) refresh() error {
	if si.model != nil && si.p.genSeq.Load() == si.gen {
		return nil
	}
	m, gen := si.p.ModelGen()
	if m == nil {
		return errors.New("core: predictor not fitted")
	}
	if si.model == nil || gen != si.gen {
		si.model = m.Clone()
		si.gen = gen
	}
	return nil
}

// ForecastBatchGen runs one grad-free forward over prepared windows on
// the replica, bitwise identical to Predictor.ForecastBatchGen for the
// same generation, without ever taking the shared inference lock for
// the forward itself.
func (si *ShardInferencer) ForecastBatchGen(inputs []*PreparedInput) ([][]float64, int64, error) {
	p := si.p
	if p.norm == nil {
		return nil, 0, errors.New("core: predictor not fitted")
	}
	if err := si.refresh(); err != nil {
		return nil, 0, err
	}
	if len(inputs) == 0 {
		return nil, si.gen, nil
	}
	c, w := inputs[0].channels, p.Cfg.Window
	for i, in := range inputs {
		if in == nil || in.channels != c || len(in.data) != c*w {
			return nil, 0, fmt.Errorf("core: batch input %d has inconsistent shape", i)
		}
	}
	padded := ceilPow2(len(inputs))
	buf := si.bufs[padded]
	if buf == nil {
		buf = &inferBuf{arena: nn.NewInferArena()}
		si.bufs[padded] = buf
	}
	if buf.x == nil || buf.x.Dim(1) != c || buf.x.Dim(2) != w {
		buf.x = tensor.New(padded, c, w)
	}
	x := buf.x
	for i, in := range inputs {
		copy(x.Data[i*c*w:(i+1)*c*w], in.data)
	}
	for i := len(inputs) * c * w; i < padded*c*w; i++ {
		x.Data[i] = 0
	}
	buf.arena.Reset()
	out := si.model.InferForward(buf.arena, x)

	h := p.Cfg.Horizon
	res := make([][]float64, len(inputs))
	for i := range inputs {
		res[i] = p.norm.Inverse(p.target, out.Data[i*h:(i+1)*h])
	}
	return res, si.gen, nil
}
