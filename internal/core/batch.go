package core

import (
	"errors"
	"fmt"

	"repro/internal/dataprep"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/tensor"
)

// This file is the batched serving path: PrepareInput runs the
// per-request data pipeline (read-only against the fitted predictor, so
// many requests can prepare concurrently), and ForecastBatch stacks
// prepared windows into one grad-free arena forward. Because every
// forward kernel is row-independent (pinned by TestGemmRowIndependence
// and the nn equivalence suite), each row of a batched product is
// bitwise identical to running that request alone — micro-batching and
// power-of-two padding never change a single answer.

// PreparedInput is one request's model-ready window: cleaned,
// normalized, screened and expanded, flattened to [channels × window]
// row-major. Build it with Predictor.PrepareInput.
type PreparedInput struct {
	data     []float64
	channels int
}

// inferBuf is the reusable input tensor + arena for one padded batch
// size. Keeping one per size (instead of resizing a single arena) keeps
// every slot shape-stable, so steady-state forwards allocate nothing.
type inferBuf struct {
	x     *tensor.Tensor
	arena *nn.InferArena
}

// PrepareInput validates raw indicator history (same layout as Fit) and
// runs the stored data pipeline — clean, normalize, screen, expand —
// returning a model-ready window. It only reads the fitted predictor
// state, so it is safe to call from many goroutines at once; errors here
// are client errors (bad shape, too little history), distinct from the
// server-side failures ForecastBatch can hit.
func (p *Predictor) PrepareInput(series [][]float64) (*PreparedInput, error) {
	sel, cleanedLen, err := p.prepareServe(series)
	if err != nil {
		return nil, err
	}
	if len(sel) == 0 || len(sel[0]) < p.Cfg.Window {
		return nil, fmt.Errorf("core: need at least %d complete samples, have %d",
			p.MinHistory(), cleanedLen)
	}
	c, n, w := len(sel), len(sel[0]), p.Cfg.Window
	in := &PreparedInput{data: make([]float64, c*w), channels: c}
	for ci := 0; ci < c; ci++ {
		copy(in.data[ci*w:(ci+1)*w], sel[ci][n-w:])
	}
	return in, nil
}

// prepareServe runs the stored (frozen-at-fit) data pipeline over raw
// indicator history: clean, normalize, screen, expand. Shared by
// PrepareInput (which keeps only the trailing window) and FineTune
// (which windows the whole prepared series into supervised pairs).
// Read-only against the predictor, safe for concurrent callers — the
// fitted check reads p.norm, which is frozen at Fit/load, NOT p.model,
// which SwapModel rewrites under inferMu (a lock this path must never
// take).
func (p *Predictor) prepareServe(series [][]float64) (sel [][]float64, cleanedLen int, err error) {
	if p.norm == nil {
		return nil, 0, errors.New("core: predictor not fitted")
	}
	if len(series) != len(p.norm.Min) {
		return nil, 0, fmt.Errorf("core: expected %d indicator series, got %d", len(p.norm.Min), len(series))
	}
	cleaned := dataprep.Clean(series)
	if len(cleaned) == 0 || len(cleaned[0]) == 0 {
		return nil, 0, errors.New("core: no complete records in input")
	}
	normed := p.norm.Transform(cleaned)
	sel = dataprep.Select(normed, p.selected)
	if p.Cfg.Scenario == MulExp {
		sel = p.expandForServe(sel)
	}
	return sel, len(cleaned[0]), nil
}

// expandForServe is the concurrency-safe wrapper around expand for the
// serving path: the one mutation expand can perform — lazily fixing the
// weighted expansion factors on a loaded predictor that predates their
// serialization — happens under the predictor's mutex.
func (p *Predictor) expandForServe(sel [][]float64) [][]float64 {
	if p.Cfg.Expansion == ExpandWeighted {
		p.wfMu.Lock()
		defer p.wfMu.Unlock()
	}
	return p.expand(sel)
}

// ForecastBatch runs one grad-free forward over a stack of prepared
// windows and returns each request's denormalized Horizon-step forecast,
// in input order. The batch is zero-padded to the next power of two so a
// handful of arenas covers every size; padding rows are discarded and —
// by row independence — never influence real rows. Results are bitwise
// identical to calling ForecastFrom per request at any batch size or
// worker count.
func (p *Predictor) ForecastBatch(inputs []*PreparedInput) ([][]float64, error) {
	res, _, err := p.forecastBatch(inputs)
	return res, err
}

// forecastBatch is the shared body of ForecastBatch and
// ForecastBatchGen: the returned generation is read under the same
// inferMu hold that computed the forwards, so it attributes every
// forecast in the batch exactly.
func (p *Predictor) forecastBatch(inputs []*PreparedInput) ([][]float64, int64, error) {
	// Fitted check via the frozen pipeline, not p.model — this runs
	// before inferMu is taken, and SwapModel rewrites p.model under it.
	if p.norm == nil {
		return nil, 0, errors.New("core: predictor not fitted")
	}
	if len(inputs) == 0 {
		return nil, p.Generation(), nil
	}
	c, w := inputs[0].channels, p.Cfg.Window
	for i, in := range inputs {
		if in == nil || in.channels != c || len(in.data) != c*w {
			return nil, 0, fmt.Errorf("core: batch input %d has inconsistent shape", i)
		}
	}
	padded := ceilPow2(len(inputs))

	p.inferMu.Lock()
	defer p.inferMu.Unlock()
	if p.f32Active {
		if res, ok := p.forecastBatch32Locked(inputs, c, w, padded); ok {
			return res, p.generation, nil
		}
		// Non-finite f32 output (float32 overflow on an extreme input):
		// drop the tier and serve this and future batches in f64 — the
		// runtime counterpart of the enable-time validation gate.
		p.f32Active = false
		obs.Logger("core").Warn("float32 serving tier disabled: non-finite output; falling back to float64")
	}
	buf := p.inferBufLocked(padded, c, w)
	x := buf.x
	for i, in := range inputs {
		copy(x.Data[i*c*w:(i+1)*c*w], in.data)
	}
	for i := len(inputs) * c * w; i < padded*c*w; i++ {
		x.Data[i] = 0
	}
	buf.arena.Reset()
	out := p.model.InferForward(buf.arena, x)

	h := p.Cfg.Horizon
	res := make([][]float64, len(inputs))
	for i := range inputs {
		res[i] = p.norm.Inverse(p.target, out.Data[i*h:(i+1)*h])
	}
	return res, p.generation, nil
}

// inferBufLocked returns the pooled warmed buffer for one padded batch
// size, creating it on first use. Callers hold inferMu. The pool is
// keyed by padded batch size and survives model hot-swaps and input-
// shape changes: every arena slot is shape-checked on Get and self-heals
// if stale, and SwapModel only admits models of identical serving shape,
// so a swapped-in generation replays the warm arenas without
// re-recording a single slot (pinned by TestInferBufPoolSurvivesSwap).
// A shape change — possible only through pipeline changes, never a
// swap — replaces just the input tensor and lets the arena heal the
// slots that moved.
func (p *Predictor) inferBufLocked(padded, c, w int) *inferBuf {
	if p.inferBufs == nil {
		p.inferBufs = make(map[int]*inferBuf)
	}
	buf := p.inferBufs[padded]
	if buf == nil {
		buf = &inferBuf{arena: nn.NewInferArena()}
		p.inferBufs[padded] = buf
	}
	if buf.x == nil || buf.x.Dim(1) != c || buf.x.Dim(2) != w {
		buf.x = tensor.New(padded, c, w)
	}
	return buf
}

// ceilPow2 returns the smallest power of two ≥ n.
func ceilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}
