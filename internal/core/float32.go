package core

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/fault"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/tensor"
)

// The float32 serving tier. Opting a predictor in (PredictorConfig.
// Float32, or EnableFloat32 after Fit) routes ForecastBatch through the
// float32 arena path: weights are mirrored once into f32 (nn.Quantizer32),
// inputs are narrowed per batch, and the forward runs on the packed f32
// GEMM kernel — roughly twice the FLOP throughput and half the memory
// traffic of the f64 path, with identical determinism guarantees.
//
// The tier is gated, never assumed: EnableFloat32 backtests the f32 path
// against the f64 oracle on the retained held-out test split and refuses
// to switch when either the per-element error bound or the MAE
// degradation bound is exceeded. At serve time a non-finite f32 output
// (overflow past float32 range) auto-disables the tier and re-runs the
// batch in f64, so callers never see a degraded answer without the
// fallback having been tried.

// Quantize32 refreshes the float32 weight mirrors of every model stage.
// Call it again after any weight update; InferForward32 panics if it has
// never run.
func (m *Model) Quantize32() {
	for _, s := range m.stages {
		nn.Quantize32(s.layer)
	}
}

// InferForward32 is the float32 counterpart of InferForward: the same
// stage pipeline and fault points, on f32 arena storage.
func (m *Model) InferForward32(a *nn.InferArena32, x *tensor.Tensor32) *tensor.Tensor32 {
	fault.Disrupt("model.forward")
	for _, s := range m.stages {
		x = nn.Infer32(s.layer, a, x)
	}
	fault.Corrupt32("model.forward.out", x.Data)
	return x
}

// Float32Report is the outcome of the enable-time validation of the f32
// tier against the f64 oracle, all at the normalized (training) scale.
type Float32Report struct {
	// Samples is the number of held-out windows both paths predicted.
	Samples int `json:"samples"`
	// MaxRelErr is the worst per-element |f32−f64| / (|f64| + 1e-6)
	// across every forecast step of every sample.
	MaxRelErr float64 `json:"max_rel_err"`
	// MAE64 and MAE32 are each path's mean absolute error against the
	// held-out truth; MAEDelta is (MAE32−MAE64)/MAE64 (0 when MAE64 is 0).
	MAE64    float64 `json:"mae_f64"`
	MAE32    float64 `json:"mae_f32"`
	MAEDelta float64 `json:"mae_delta"`
}

// EnableFloat32 quantizes the model and validates the float32 serving
// tier against the f64 oracle on the retained held-out test split. Both
// bounds must hold — MaxRelErr ≤ Cfg.Float32MaxRelErr and MAEDelta ≤
// Cfg.Float32MaxMAEDelta — or the tier is refused (error returned, f64
// serving untouched). On success ForecastBatch switches to f32. The
// report is returned in either case when validation ran.
func (p *Predictor) EnableFloat32() (Float32Report, error) {
	if p.model == nil {
		return Float32Report{}, errors.New("core: predictor not fitted")
	}
	if p.test.X == nil {
		return Float32Report{}, errors.New("core: no held-out test data to validate the float32 tier against")
	}
	p.inferMu.Lock()
	defer p.inferMu.Unlock()
	return p.enableFloat32Locked()
}

// enableFloat32Locked is EnableFloat32's body under an already-held
// inferMu — SwapModel calls it directly to re-validate the tier against
// a freshly promoted model inside the swap's critical section.
func (p *Predictor) enableFloat32Locked() (Float32Report, error) {
	if p.test.X == nil {
		return Float32Report{}, errors.New("core: no held-out test data to validate the float32 tier against")
	}
	p.model.Quantize32()

	rep, err := p.validateFloat32Locked()
	if err != nil {
		return rep, err
	}
	if rep.MaxRelErr > p.Cfg.Float32MaxRelErr {
		return rep, fmt.Errorf("core: float32 tier refused: max relative error %.3g exceeds bound %.3g",
			rep.MaxRelErr, p.Cfg.Float32MaxRelErr)
	}
	if rep.MAEDelta > p.Cfg.Float32MaxMAEDelta {
		return rep, fmt.Errorf("core: float32 tier refused: backtest MAE degradation %.3g exceeds bound %.3g",
			rep.MAEDelta, p.Cfg.Float32MaxMAEDelta)
	}
	p.f32Report = rep
	p.f32Active = true
	obs.Logger("core").Info("float32 serving tier enabled",
		"samples", rep.Samples, "max_rel_err", rep.MaxRelErr, "mae_delta", rep.MAEDelta)
	return rep, nil
}

// validateFloat32Locked runs the held-out windows through both inference
// paths (batched, mirroring serving) and accumulates the report.
// Caller holds inferMu.
func (p *Predictor) validateFloat32Locked() (Float32Report, error) {
	var rep Float32Report
	n := p.test.Len()
	if n == 0 {
		return rep, errors.New("core: empty held-out test split")
	}
	c, w, h := p.test.X.Dim(1), p.test.X.Dim(2), p.Cfg.Horizon
	const chunk = 64
	arena64 := nn.NewInferArena()
	arena32 := nn.NewInferArena32()
	x64 := tensor.New(chunk, c, w)
	x32 := tensor.New32(chunk, c, w)
	var absErr64, absErr32 float64
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		b := hi - lo
		if b < chunk {
			x64.Zero()
			x32.Zero()
		}
		copy(x64.Data, p.test.X.Data[lo*c*w:hi*c*w])
		for i, v := range x64.Data[:b*c*w] {
			x32.Data[i] = float32(v)
		}
		arena64.Reset()
		out64 := p.model.InferForward(arena64, x64)
		arena32.Reset()
		out32 := p.model.InferForward32(arena32, x32)
		for i := 0; i < b*h; i++ {
			v64, v32 := out64.Data[i], float64(out32.Data[i])
			rel := math.Abs(v32-v64) / (math.Abs(v64) + 1e-6)
			if rel > rep.MaxRelErr {
				rep.MaxRelErr = rel
			}
			truth := p.test.Y.Data[lo*h+i]
			absErr64 += math.Abs(v64 - truth)
			absErr32 += math.Abs(v32 - truth)
		}
		rep.Samples += b
	}
	steps := float64(rep.Samples * h)
	rep.MAE64 = absErr64 / steps
	rep.MAE32 = absErr32 / steps
	if rep.MAE64 > 0 {
		rep.MAEDelta = (rep.MAE32 - rep.MAE64) / rep.MAE64
	}
	return rep, nil
}

// DisableFloat32 switches serving back to the f64 path (idempotent).
func (p *Predictor) DisableFloat32() {
	p.inferMu.Lock()
	p.f32Active = false
	p.inferMu.Unlock()
}

// Float32Active reports whether ForecastBatch currently serves on the
// float32 tier.
func (p *Predictor) Float32Active() bool {
	p.inferMu.Lock()
	defer p.inferMu.Unlock()
	return p.f32Active
}

// Float32Stats returns the enable-time validation report and whether the
// tier is currently active.
func (p *Predictor) Float32Stats() (Float32Report, bool) {
	p.inferMu.Lock()
	defer p.inferMu.Unlock()
	return p.f32Report, p.f32Active
}

// inferBuf32 is the f32 sibling of inferBuf: one reusable narrowed input
// tensor, arena, and denormalization scratch per padded batch size.
type inferBuf32 struct {
	x     *tensor.Tensor32
	arena *nn.InferArena32
	out   []float64 // widened forecast rows before denormalization
}

// forecastBatch32Locked runs one batch on the f32 tier. Caller holds
// inferMu and has validated the inputs. ok=false means the f32 output
// was non-finite (float32 overflow on an extreme input): the caller
// auto-disables the tier and falls back to f64 — the runtime counterpart
// of the enable-time gate.
func (p *Predictor) forecastBatch32Locked(inputs []*PreparedInput, c, w, padded int) (res [][]float64, ok bool) {
	if p.inferBufs32 == nil {
		p.inferBufs32 = make(map[int]*inferBuf32)
	}
	h := p.Cfg.Horizon
	buf := p.inferBufs32[padded]
	if buf == nil || buf.x.Dim(1) != c || buf.x.Dim(2) != w {
		buf = &inferBuf32{
			x:     tensor.New32(padded, c, w),
			arena: nn.NewInferArena32(),
			out:   make([]float64, h),
		}
		p.inferBufs32[padded] = buf
	}
	x := buf.x
	for i, in := range inputs {
		row := x.Data[i*c*w : (i+1)*c*w]
		for j, v := range in.data {
			row[j] = float32(v)
		}
	}
	for i := len(inputs) * c * w; i < padded*c*w; i++ {
		x.Data[i] = 0
	}
	buf.arena.Reset()
	out := p.model.InferForward32(buf.arena, x)

	res = make([][]float64, len(inputs))
	for i := range inputs {
		for k := 0; k < h; k++ {
			v := float64(out.Data[i*h+k])
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, false
			}
			buf.out[k] = v
		}
		res[i] = p.norm.Inverse(p.target, buf.out)
	}
	return res, true
}
