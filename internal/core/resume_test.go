package core

import (
	"math"
	"testing"

	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/opt"
	"repro/internal/tensor"
	"repro/internal/trace"
	"repro/internal/train"
)

// resumeConfig is the shared training config of the kill-and-resume
// tests; each caller passes its own checkpoint directory ("" = none).
func resumeConfig(dir string) train.Config {
	return train.Config{
		Epochs:      6,
		BatchSize:   12,
		Optimizer:   opt.NewAdam(1e-2),
		Loss:        &nn.MSELoss{},
		Shuffle:     true,
		Seed:        5,
		ClipNorm:    5,
		RestoreBest: true,
		Checkpoint:  train.CheckpointConfig{Dir: dir},
	}
}

func paramsBits(m nn.Layer) [][]uint64 {
	var out [][]uint64
	for _, p := range m.Params() {
		row := make([]uint64, len(p.Value.Data))
		for i, v := range p.Value.Data {
			row[i] = math.Float64bits(v)
		}
		out = append(out, row)
	}
	return out
}

// TestKillAndResumeBitwise is the headline resilience contract: for the
// RPTCN model AND the LSTM baseline, a Fit killed mid-epoch and resumed
// from its newest checkpoint reproduces the uninterrupted run's loss
// history and final weights bit for bit.
func TestKillAndResumeBitwise(t *testing.T) {
	builders := map[string]func(r *tensor.RNG) nn.Layer{
		"RPTCN": func(r *tensor.RNG) nn.Layer {
			return NewModel(r, Config{
				InChannels: 3,
				Channels:   []int{8, 8},
				KernelSize: 3,
				Dropout:    0.1, // dropout streams are the hard part of resume
				WeightNorm: true,
				FCWidth:    16,
				Horizon:    1,
			})
		},
		"LSTM": func(r *tensor.RNG) nn.Layer {
			return models.NewLSTM(r, models.LSTMConfig{InChannels: 3, Hidden: 12, Horizon: 1})
		},
	}
	ds := synthDataset(11, 48, 3, 16)
	tr := ds.Subset(0, 32)
	va := ds.Subset(32, 48)

	for name, build := range builders {
		t.Run(name, func(t *testing.T) {
			baseline := build(tensor.NewRNG(7))
			baseHist := train.Fit(baseline, tr, va, resumeConfig(""))

			// Kill the run in the middle of epoch 3's batch loop.
			dir := t.TempDir()
			cfgKill := resumeConfig(dir)
			cfgKill.Hooks = []train.Hook{train.FuncHook{BatchEnd: func(s train.BatchStats) {
				if s.Epoch == 3 && s.Batch == 1 {
					panic("simulated crash")
				}
			}}}
			func() {
				defer func() {
					if recover() == nil {
						t.Fatal("crash hook never fired")
					}
				}()
				train.Fit(build(tensor.NewRNG(7)), tr, va, cfgKill)
			}()

			cfgResume := resumeConfig(dir)
			cfgResume.Checkpoint.Resume = true
			resumed := build(tensor.NewRNG(7))
			resHist := train.Fit(resumed, tr, va, cfgResume)

			requireBitwiseEqual(t, "TrainLoss", baseHist.TrainLoss, resHist.TrainLoss)
			requireBitwiseEqual(t, "ValidLoss", baseHist.ValidLoss, resHist.ValidLoss)
			if baseHist.BestEpoch != resHist.BestEpoch {
				t.Fatalf("BestEpoch %d vs %d", resHist.BestEpoch, baseHist.BestEpoch)
			}
			wantP, gotP := paramsBits(baseline), paramsBits(resumed)
			for i := range wantP {
				for j := range wantP[i] {
					if wantP[i][j] != gotP[i][j] {
						t.Fatalf("final weights differ at param %d[%d]", i, j)
					}
				}
			}
		})
	}
}

// TestPredictorCheckpointResume exercises the checkpoint pass-through at
// the Predictor level: an interrupted Predictor.Fit resumed in a fresh
// predictor yields the same history and bitwise-identical forecasts.
func TestPredictorCheckpointResume(t *testing.T) {
	e := trace.Generate(trace.GeneratorConfig{
		Entities: 1, Kind: trace.Container, Samples: 700, Seed: 61,
	})[0]
	cfg := func(dir string) PredictorConfig {
		return PredictorConfig{
			Scenario: MulExp, Window: 16, Horizon: 2, Epochs: 5, Seed: 3,
			Patience: -1, // disable early stopping: compare full runs
			Model:    Config{Channels: []int{8, 8}, KernelSize: 3, Dropout: 0.1, WeightNorm: true, FCWidth: 16},
			Checkpoint: train.CheckpointConfig{
				Dir: dir, Resume: dir != "",
			},
		}
	}

	baseline := NewPredictor(cfg(""))
	if err := baseline.Fit(e.Matrix(), int(trace.CPUUtilPercent)); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	killCfg := cfg(dir)
	killCfg.Checkpoint.Resume = false
	killCfg.Hooks = []train.Hook{train.FuncHook{EpochEnd: func(s train.EpochStats) {
		if s.Epoch == 2 {
			panic("simulated crash")
		}
	}}}
	killed := NewPredictor(killCfg)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("crash hook never fired")
			}
		}()
		killed.Fit(e.Matrix(), int(trace.CPUUtilPercent)) //nolint:errcheck
	}()

	resumed := NewPredictor(cfg(dir))
	if err := resumed.Fit(e.Matrix(), int(trace.CPUUtilPercent)); err != nil {
		t.Fatal(err)
	}

	bh, rh := baseline.History(), resumed.History()
	requireBitwiseEqual(t, "TrainLoss", bh.TrainLoss, rh.TrainLoss)
	requireBitwiseEqual(t, "ValidLoss", bh.ValidLoss, rh.ValidLoss)
	want, err := baseline.Forecast()
	if err != nil {
		t.Fatal(err)
	}
	got, err := resumed.Forecast()
	if err != nil {
		t.Fatal(err)
	}
	requireBitwiseEqual(t, "Forecast", want, got)
}
