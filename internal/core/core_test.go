package core

import (
	"math"
	"testing"

	"repro/internal/nn"
	"repro/internal/stats"
	"repro/internal/tensor"
	"repro/internal/trace"
)

func TestNewModelShapes(t *testing.T) {
	r := tensor.NewRNG(1)
	m := NewModel(r, Config{InChannels: 4, Channels: []int{8, 8}, KernelSize: 3, WeightNorm: true, FCWidth: 16, Horizon: 3})
	x := tensor.RandN(r, 5, 4, 20)
	y := m.Forward(x, false)
	if y.Dim(0) != 5 || y.Dim(1) != 3 {
		t.Fatalf("output shape = %v", y.Shape())
	}
}

func TestNewModelDefaults(t *testing.T) {
	r := tensor.NewRNG(2)
	m := NewModel(r, Config{InChannels: 1})
	x := tensor.RandN(r, 2, 1, 10)
	y := m.Forward(x, false)
	if y.Dim(1) != 1 {
		t.Fatalf("default horizon output = %v", y.Shape())
	}
	if m.ReceptiveField() < 10 {
		t.Fatalf("default receptive field = %d, want >= 10", m.ReceptiveField())
	}
}

func TestModelGradients(t *testing.T) {
	r := tensor.NewRNG(3)
	m := NewModel(r, Config{InChannels: 2, Channels: []int{4, 4}, KernelSize: 2, WeightNorm: true, FCWidth: 6, Horizon: 2})
	x := tensor.RandN(r, 2, 2, 10)
	err, detail := nn.GradCheck(m, x, 4, 1e-6)
	if err > 1e-4 {
		t.Fatalf("RPTCN gradient check failed: relerr=%g at %s", err, detail)
	}
}

func TestModelAblationGradients(t *testing.T) {
	r := tensor.NewRNG(5)
	for _, cfg := range []Config{
		{InChannels: 2, Channels: []int{4}, DisableFC: true},
		{InChannels: 2, Channels: []int{4}, DisableAttention: true},
		{InChannels: 2, Channels: []int{4}, DisableFC: true, DisableAttention: true},
	} {
		m := NewModel(r, cfg)
		x := tensor.RandN(r, 2, 2, 8)
		err, detail := nn.GradCheck(m, x, 6, 1e-6)
		if err > 1e-4 {
			t.Fatalf("ablation %+v gradient check failed: relerr=%g at %s", cfg, err, detail)
		}
	}
}

func TestAblationChangesParamCount(t *testing.T) {
	r := tensor.NewRNG(6)
	full := NewModel(r, Config{InChannels: 2, Channels: []int{4}})
	noFC := NewModel(r, Config{InChannels: 2, Channels: []int{4}, DisableFC: true})
	noAttn := NewModel(r, Config{InChannels: 2, Channels: []int{4}, DisableAttention: true})
	if nn.ParamCount(noFC) >= nn.ParamCount(full) {
		t.Fatal("removing FC should reduce parameters")
	}
	if nn.ParamCount(noAttn) >= nn.ParamCount(full) {
		t.Fatal("removing attention should reduce parameters")
	}
}

func TestAttentionWeightsExposed(t *testing.T) {
	r := tensor.NewRNG(7)
	m := NewModel(r, Config{InChannels: 1, Channels: []int{4}, FCWidth: 5})
	if m.AttentionWeights() != nil {
		t.Fatal("attention weights should be nil before forward")
	}
	m.Forward(tensor.RandN(r, 3, 1, 8), false)
	w := m.AttentionWeights()
	if w == nil || w.Dim(0) != 3 || w.Dim(1) != 5 {
		t.Fatalf("attention weights shape = %v", w)
	}
	abl := NewModel(r, Config{InChannels: 1, Channels: []int{4}, DisableAttention: true})
	abl.Forward(tensor.RandN(r, 1, 1, 8), false)
	if abl.AttentionWeights() != nil {
		t.Fatal("ablated model must report nil attention")
	}
}

func TestScenarioString(t *testing.T) {
	if Uni.String() != "Uni" || Mul.String() != "Mul" || MulExp.String() != "Mul-Exp" {
		t.Fatal("scenario names wrong")
	}
	if Scenario(9).String() != "unknown" {
		t.Fatal("unknown scenario name wrong")
	}
}

// smallEntity generates a compact synthetic workload for predictor tests.
func smallEntity(samples int, seed uint64) *trace.EntitySeries {
	return trace.Generate(trace.GeneratorConfig{
		Entities: 1, Kind: trace.Container, Samples: samples, Seed: seed,
	})[0]
}

func smallPredictorConfig(s Scenario) PredictorConfig {
	return PredictorConfig{
		Scenario: s,
		Window:   16,
		Horizon:  1,
		Model:    Config{Channels: []int{8, 8}, KernelSize: 3, WeightNorm: true, FCWidth: 16, Dropout: 0.1},
		Epochs:   8, BatchSize: 32, LearningRate: 2e-3, Seed: 1,
	}
}

func TestPredictorFitUniAndEvaluate(t *testing.T) {
	e := smallEntity(900, 1)
	p := NewPredictor(smallPredictorConfig(Uni))
	if err := p.Fit(e.Matrix(), int(trace.CPUUtilPercent)); err != nil {
		t.Fatal(err)
	}
	rep, err := p.TestMetrics()
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(rep.MSE) || rep.MSE <= 0 || rep.MSE > 0.2 {
		t.Fatalf("Uni test MSE = %g (normalized scale)", rep.MSE)
	}
	if len(p.SelectedIndicators()) != 1 || p.SelectedIndicators()[0] != int(trace.CPUUtilPercent) {
		t.Fatalf("Uni selected = %v", p.SelectedIndicators())
	}
}

func TestPredictorScreeningMul(t *testing.T) {
	e := smallEntity(900, 2)
	p := NewPredictor(smallPredictorConfig(Mul))
	if err := p.Fit(e.Matrix(), int(trace.CPUUtilPercent)); err != nil {
		t.Fatal(err)
	}
	sel := p.SelectedIndicators()
	if len(sel) != trace.NumIndicators/2 {
		t.Fatalf("Mul selected %d indicators, want %d", len(sel), trace.NumIndicators/2)
	}
	if sel[0] != int(trace.CPUUtilPercent) {
		t.Fatal("target must be first in the screened set")
	}
	// The strongly coupled indicators should dominate the selection
	// (cpu, mpki, cpi, mem_gps per Fig. 7).
	strong := map[int]bool{
		int(trace.MPKI): true, int(trace.CPI): true, int(trace.MemGPS): true,
	}
	hits := 0
	for _, s := range sel[1:] {
		if strong[s] {
			hits++
		}
	}
	if hits < 2 {
		t.Fatalf("screening picked %v; expected mostly strongly-coupled indicators", sel)
	}
}

func TestPredictorMulExpChannelCount(t *testing.T) {
	e := smallEntity(900, 3)
	cfg := smallPredictorConfig(MulExp)
	cfg.ExpandFactor = 3
	p := NewPredictor(cfg)
	if err := p.Fit(e.Matrix(), int(trace.CPUUtilPercent)); err != nil {
		t.Fatal(err)
	}
	// 4 screened indicators × factor 3 = 12 channels.
	if got := p.Model().Cfg.InChannels; got != 12 {
		t.Fatalf("Mul-Exp channels = %d, want 12", got)
	}
}

func TestPredictorForecastDenormalized(t *testing.T) {
	e := smallEntity(900, 4)
	cfg := smallPredictorConfig(MulExp)
	cfg.Horizon = 5
	p := NewPredictor(cfg)
	if err := p.Fit(e.Matrix(), int(trace.CPUUtilPercent)); err != nil {
		t.Fatal(err)
	}
	f, err := p.Forecast()
	if err != nil {
		t.Fatal(err)
	}
	if len(f) != 5 {
		t.Fatalf("forecast length = %d", len(f))
	}
	// Forecasts must land on the raw CPU scale (roughly within the series'
	// historical band, generously padded).
	cpu := e.Series(trace.CPUUtilPercent)
	lo, hi := cpu[0], cpu[0]
	for _, v := range cpu {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	for _, v := range f {
		if v < lo-30 || v > hi+30 {
			t.Fatalf("forecast %g far outside raw range [%g, %g]", v, lo, hi)
		}
	}
}

func TestPredictorHistoryRecorded(t *testing.T) {
	e := smallEntity(700, 5)
	p := NewPredictor(smallPredictorConfig(Uni))
	if err := p.Fit(e.Matrix(), int(trace.CPUUtilPercent)); err != nil {
		t.Fatal(err)
	}
	h := p.History()
	if h == nil || len(h.TrainLoss) == 0 || len(h.ValidLoss) != len(h.TrainLoss) {
		t.Fatalf("history not recorded: %+v", h)
	}
}

func TestPredictorErrors(t *testing.T) {
	p := NewPredictor(smallPredictorConfig(Uni))
	if _, err := p.TestMetrics(); err == nil {
		t.Fatal("TestMetrics before Fit must error")
	}
	if _, err := p.Forecast(); err == nil {
		t.Fatal("Forecast before Fit must error")
	}
	if err := p.Fit([][]float64{{1, 2, 3}}, 5); err == nil {
		t.Fatal("bad target must error")
	}
	if err := p.Fit([][]float64{{math.NaN(), math.NaN()}}, 0); err == nil {
		t.Fatal("all-NaN series must error")
	}
	short := [][]float64{{1, 2, 3, 4, 5}}
	if err := p.Fit(short, 0); err == nil {
		t.Fatal("too-short series must error")
	}
}

func TestPredictorCleansMissingData(t *testing.T) {
	e := trace.Generate(trace.GeneratorConfig{
		Entities: 1, Kind: trace.Container, Samples: 900, Seed: 6, MissingRate: 0.03,
	})[0]
	p := NewPredictor(smallPredictorConfig(Uni))
	if err := p.Fit(e.Matrix(), int(trace.CPUUtilPercent)); err != nil {
		t.Fatal(err)
	}
	rep, err := p.TestMetrics()
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(rep.MSE) {
		t.Fatal("NaN survived the cleaning stage")
	}
}

// RPTCN must clearly beat the mean predictor on an autocorrelated workload.
func TestPredictorBeatsMeanBaseline(t *testing.T) {
	e := smallEntity(1200, 7)
	cfg := smallPredictorConfig(MulExp)
	cfg.Epochs = 15
	p := NewPredictor(cfg)
	if err := p.Fit(e.Matrix(), int(trace.CPUUtilPercent)); err != nil {
		t.Fatal(err)
	}
	truth, _, err := p.TestSeries()
	if err != nil {
		t.Fatal(err)
	}
	rep, _ := p.TestMetrics()
	if rep.MSE >= stats.Variance(truth) {
		t.Fatalf("RPTCN MSE %g not better than test variance %g", rep.MSE, stats.Variance(truth))
	}
}
