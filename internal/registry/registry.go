// Package registry stores versioned predictor artifacts on disk and
// serves them through a ref-counted LRU cache of warmed predictors —
// the model side of fleet-scale serving. A Store is a directory of
// immutable model files plus a crash-safe manifest; a Cache keeps the
// hottest models resident, each carrying its own pool of warmed
// inference arenas (keyed by padded batch shape inside the predictor),
// so a cache hit serves with zero steady-state allocations while cold
// models cost one lazy load.
//
// Layout under the store directory:
//
//	manifest.json        {"format":1,"models":{"name":[1,2,...]}}
//	<name>/v<N>.model    core.Predictor.SaveFile snapshot, immutable
//
// Publishing never rewrites an existing version: a new version is
// staged crash-safely (internal/fsx atomic write) and then the manifest
// is atomically replaced, so a process killed mid-publish leaves either
// the old manifest (new file orphaned, harmless) or the new one — never
// a manifest pointing at a truncated model.
package registry

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/fsx"
)

// manifestFormat is bumped on incompatible manifest changes.
const manifestFormat = 1

type manifest struct {
	Format int              `json:"format"`
	Models map[string][]int `json:"models"` // name → ascending version list
}

// Store is a directory of versioned predictor artifacts. Safe for
// concurrent use; every mutation lands on disk before it is visible.
type Store struct {
	dir string
	mu  sync.Mutex
	man manifest
}

// ErrUnknownModel marks a lookup for a name (or version) the store does
// not hold.
var ErrUnknownModel = errors.New("registry: unknown model")

// Open opens (or initializes) a store rooted at dir.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, errors.New("registry: empty store directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("registry: %w", err)
	}
	s := &Store{dir: dir, man: manifest{Format: manifestFormat, Models: map[string][]int{}}}
	raw, err := os.ReadFile(s.manifestPath())
	switch {
	case errors.Is(err, os.ErrNotExist):
		return s, nil
	case err != nil:
		return nil, fmt.Errorf("registry: %w", err)
	}
	if err := json.Unmarshal(raw, &s.man); err != nil {
		return nil, fmt.Errorf("registry: corrupt manifest: %w", err)
	}
	if s.man.Format != manifestFormat {
		return nil, fmt.Errorf("registry: manifest format %d, want %d", s.man.Format, manifestFormat)
	}
	if s.man.Models == nil {
		s.man.Models = map[string][]int{}
	}
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) manifestPath() string { return filepath.Join(s.dir, "manifest.json") }

func (s *Store) versionPath(name string, v int) string {
	return filepath.Join(s.dir, name, fmt.Sprintf("v%d.model", v))
}

// validName keeps model names path-safe: one directory component, no
// separators, no dot-prefix tricks.
func validName(name string) error {
	if name == "" {
		return errors.New("registry: empty model name")
	}
	if len(name) > 128 {
		return errors.New("registry: model name too long")
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
		default:
			return fmt.Errorf("registry: model name %q: only [A-Za-z0-9._-] allowed", name)
		}
	}
	if name[0] == '.' {
		return fmt.Errorf("registry: model name %q must not start with a dot", name)
	}
	return nil
}

// Publish writes p as the next version of name and returns that version
// number (1 for a new name). The artifact is written crash-safely first;
// the manifest is replaced only after it is durable.
func (s *Store) Publish(name string, p *core.Predictor) (int, error) {
	if err := validName(name); err != nil {
		return 0, err
	}
	if p == nil {
		return 0, errors.New("registry: nil predictor")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	versions := s.man.Models[name]
	next := 1
	if n := len(versions); n > 0 {
		next = versions[n-1] + 1
	}
	if err := os.MkdirAll(filepath.Join(s.dir, name), 0o755); err != nil {
		return 0, fmt.Errorf("registry: %w", err)
	}
	if err := p.SaveFile(s.versionPath(name, next)); err != nil {
		return 0, fmt.Errorf("registry: publish %s v%d: %w", name, next, err)
	}
	s.man.Models[name] = append(versions, next)
	if err := s.writeManifestLocked(); err != nil {
		// Roll the in-memory view back; the orphaned artifact file is
		// harmless (next publish reuses the version number and replaces
		// it atomically).
		s.man.Models[name] = versions
		return 0, err
	}
	return next, nil
}

func (s *Store) writeManifestLocked() error {
	err := fsx.WriteFileAtomic(s.manifestPath(), func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(s.man)
	})
	if err != nil {
		return fmt.Errorf("registry: write manifest: %w", err)
	}
	return nil
}

// Latest returns the newest published version of name, or ok=false.
func (s *Store) Latest(name string) (v int, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	versions := s.man.Models[name]
	if len(versions) == 0 {
		return 0, false
	}
	return versions[len(versions)-1], true
}

// Names returns the published model names, sorted.
func (s *Store) Names() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.man.Models))
	for name := range s.man.Models {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Versions returns name's published versions in ascending order (copy).
func (s *Store) Versions(name string) []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]int(nil), s.man.Models[name]...)
}

// Load reads one version of name from disk (version ≤ 0 means latest)
// and returns the predictor plus the resolved version. Every call reads
// disk — the Cache is the layer that keeps models warm.
func (s *Store) Load(name string, version int) (*core.Predictor, int, error) {
	if err := validName(name); err != nil {
		return nil, 0, err
	}
	s.mu.Lock()
	versions := s.man.Models[name]
	if len(versions) == 0 {
		s.mu.Unlock()
		return nil, 0, fmt.Errorf("%w: %q", ErrUnknownModel, name)
	}
	if version <= 0 {
		version = versions[len(versions)-1]
	} else {
		found := false
		for _, v := range versions {
			if v == version {
				found = true
				break
			}
		}
		if !found {
			s.mu.Unlock()
			return nil, 0, fmt.Errorf("%w: %q v%d", ErrUnknownModel, name, version)
		}
	}
	path := s.versionPath(name, version)
	s.mu.Unlock()

	p, err := core.LoadPredictorFile(path)
	if err != nil {
		return nil, 0, fmt.Errorf("registry: load %s v%d: %w", name, version, err)
	}
	return p, version, nil
}
