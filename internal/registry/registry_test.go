package registry

import (
	"errors"
	"math"
	"path/filepath"
	"testing"

	"repro/internal/core"
)

// fitted builds a small fitted predictor; seed varies the weights so
// multi-model tests can tell models apart.
func fitted(t testing.TB, seed uint64) *core.Predictor {
	t.Helper()
	n := 160
	series := make([][]float64, 4)
	for c := range series {
		row := make([]float64, n)
		for i := range row {
			row[i] = 0.5 + 0.4*math.Sin(float64(i)/float64(5+c))
		}
		series[c] = row
	}
	p := core.NewPredictor(core.PredictorConfig{
		Scenario:  core.Mul,
		Window:    10,
		Horizon:   2,
		Epochs:    1,
		BatchSize: 8,
		Seed:      seed,
		Model:     core.Config{Channels: []int{4}, KernelSize: 2},
	})
	if err := p.Fit(series, 0); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestStorePublishLoadRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "models")
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	p := fitted(t, 1)
	v, err := st.Publish("cpu", p)
	if err != nil {
		t.Fatal(err)
	}
	if v != 1 {
		t.Fatalf("first publish version = %d, want 1", v)
	}
	if v, err = st.Publish("cpu", p); err != nil || v != 2 {
		t.Fatalf("second publish = (%d, %v), want (2, nil)", v, err)
	}
	got, resolved, err := st.Load("cpu", 0)
	if err != nil {
		t.Fatal(err)
	}
	if resolved != 2 {
		t.Fatalf("latest load resolved v%d, want v2", resolved)
	}
	if got.Cfg.Window != p.Cfg.Window || got.Cfg.Horizon != p.Cfg.Horizon {
		t.Fatalf("round-tripped config %d/%d vs %d/%d",
			got.Cfg.Window, got.Cfg.Horizon, p.Cfg.Window, p.Cfg.Horizon)
	}
	if _, resolved, err = st.Load("cpu", 1); err != nil || resolved != 1 {
		t.Fatalf("pinned load = (v%d, %v), want (v1, nil)", resolved, err)
	}
	if _, _, err = st.Load("cpu", 9); !errors.Is(err, ErrUnknownModel) {
		t.Fatalf("missing version error = %v, want ErrUnknownModel", err)
	}
	if _, _, err = st.Load("ghost", 0); !errors.Is(err, ErrUnknownModel) {
		t.Fatalf("missing model error = %v, want ErrUnknownModel", err)
	}

	// Reopen from disk: the manifest is the source of truth.
	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if names := st2.Names(); len(names) != 1 || names[0] != "cpu" {
		t.Fatalf("reopened names = %v", names)
	}
	if vs := st2.Versions("cpu"); len(vs) != 2 || vs[0] != 1 || vs[1] != 2 {
		t.Fatalf("reopened versions = %v", vs)
	}
	if latest, ok := st2.Latest("cpu"); !ok || latest != 2 {
		t.Fatalf("reopened latest = (%d, %v)", latest, ok)
	}
}

func TestStoreRejectsHostileNames(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	p := fitted(t, 1)
	for _, name := range []string{"", "../escape", "a/b", ".hidden", "a b", string(make([]byte, 200))} {
		if _, err := st.Publish(name, p); err == nil {
			t.Errorf("hostile name %q accepted", name)
		}
	}
}

func TestCacheHitMissEviction(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"a", "b", "c"} {
		if _, err := st.Publish(name, fitted(t, 7)); err != nil {
			t.Fatal(err)
		}
	}
	c := NewCache(st, 2)

	ha, err := c.Acquire("a")
	if err != nil {
		t.Fatal(err)
	}
	hb, err := c.Acquire("b")
	if err != nil {
		t.Fatal(err)
	}
	ha.Release()
	hb.Release()
	// Hit: same handle, no load.
	ha2, err := c.Acquire("a")
	if err != nil {
		t.Fatal(err)
	}
	if ha2 != ha {
		t.Fatal("cache hit returned a different handle")
	}
	ha2.Release()
	st1 := c.Stats()
	if st1.Hits != 1 || st1.Misses != 2 || st1.Resident != 2 {
		t.Fatalf("stats after warm = %+v", st1)
	}

	// Third model evicts the LRU unpinned entry — "b" (its last acquire
	// is older than "a"'s).
	hc, err := c.Acquire("c")
	if err != nil {
		t.Fatal(err)
	}
	hc.Release()
	st2 := c.Stats()
	if st2.Evictions != 1 || st2.Resident != 2 {
		t.Fatalf("stats after eviction = %+v", st2)
	}
	if h, _ := c.Acquire("a"); h != ha {
		t.Fatal("recently-used entry was evicted instead of the LRU one")
	} else {
		h.Release()
	}

	// "b" reloads as a fresh entry (a miss).
	hb2, err := c.Acquire("b")
	if err != nil {
		t.Fatal(err)
	}
	if hb2 == hb {
		t.Fatal("evicted entry resurrected instead of reloaded")
	}
	hb2.Release()
}

func TestCachePinnedEntriesSurviveEviction(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"a", "b", "c"} {
		if _, err := st.Publish(name, fitted(t, 3)); err != nil {
			t.Fatal(err)
		}
	}
	c := NewCache(st, 1)
	ha, err := c.Acquire("a") // pinned: not released
	if err != nil {
		t.Fatal(err)
	}
	hb, err := c.Acquire("b")
	if err != nil {
		t.Fatal(err)
	}
	// "a" is pinned, so it must still be resident (transient overage).
	if got, _ := c.Acquire("a"); got != ha {
		t.Fatal("pinned entry was evicted")
	} else {
		got.Release()
	}
	hb.Release()
	ha.Release()
	// With the pin gone, the next insert converges back under the cap.
	if _, err := c.Acquire("c"); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Resident > 1 {
		t.Fatalf("resident = %d after pins released, want ≤ 1", st.Resident)
	}
}

func TestCachePicksUpNewVersions(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Publish("m", fitted(t, 1)); err != nil {
		t.Fatal(err)
	}
	c := NewCache(st, 4)
	h1, err := c.Acquire("m")
	if err != nil {
		t.Fatal(err)
	}
	if h1.Version() != 1 {
		t.Fatalf("version = %d, want 1", h1.Version())
	}
	if _, err := st.Publish("m", fitted(t, 2)); err != nil {
		t.Fatal(err)
	}
	h2, err := c.Acquire("m")
	if err != nil {
		t.Fatal(err)
	}
	if h2.Version() != 2 {
		t.Fatalf("post-publish acquire served v%d, want v2", h2.Version())
	}
	if h2.Predictor() == h1.Predictor() {
		t.Fatal("stale predictor served for the new version")
	}
	// The stale handle stays valid until released.
	if h1.Predictor() == nil {
		t.Fatal("outstanding stale handle invalidated")
	}
	h1.Release()
	h2.Release()
}

// TestCacheHitZeroAllocs pins the steady-state serving cost of the
// registry: resolving a resident model (Acquire + Release) allocates
// nothing, so multi-model fleet serving adds zero allocations per
// request once warm.
func TestCacheHitZeroAllocs(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Publish("hot", fitted(t, 1)); err != nil {
		t.Fatal(err)
	}
	c := NewCache(st, 2)
	h, err := c.Acquire("hot")
	if err != nil {
		t.Fatal(err)
	}
	h.Release()
	allocs := testing.AllocsPerRun(200, func() {
		h, err := c.Acquire("hot")
		if err != nil {
			t.Fatal(err)
		}
		h.Release()
	})
	if allocs != 0 {
		t.Fatalf("cache hit allocates %.1f objects per Acquire/Release, want 0", allocs)
	}
}
