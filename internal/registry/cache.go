package registry

import (
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/obs"
)

// Cache is a ref-counted LRU over loaded predictors. Each resident
// predictor carries its own warmed inference state — the per-padded-
// batch-size arena pools inside core.Predictor — so the cache is
// effectively an LRU of warmed InferArena sets keyed by model, with the
// batch-shape key nested inside each entry. The hit path is a mutex'd
// map lookup plus a refcount bump: zero heap allocations (pinned by
// TestCacheHitZeroAllocs), which is what lets a fleet request resolve
// its model on every single call without a steady-state cost.
//
// Eviction is capacity-driven and pin-aware: past MaxResident, the
// least-recently-acquired entry with no outstanding handles is dropped.
// Pinned entries (refs > 0) are never evicted — a shard mid-batch on a
// model keeps its arenas alive — so the resident count can transiently
// exceed the cap when everything is pinned; it converges back as
// handles are released and later acquires evict.
type Cache struct {
	store *Store
	max   int

	mu     sync.Mutex
	byName map[string]*Handle
	seq    uint64

	hits, misses, evictions atomic.Uint64
}

// Handle is one acquired reference to a resident predictor. Callers
// must Release it when done with the predictor for this request; the
// predictor stays valid (and its arenas warm) for as long as at least
// one handle is outstanding or the entry remains resident.
type Handle struct {
	cache    *Cache
	name     string
	version  int
	p        *core.Predictor
	refs     int    // guarded by cache.mu
	touch    uint64 // guarded by cache.mu
	resident bool   // still reachable via cache.byName
}

// Predictor returns the loaded predictor.
func (h *Handle) Predictor() *core.Predictor { return h.p }

// Version returns the artifact version this handle serves.
func (h *Handle) Version() int { return h.version }

// Name returns the model name this handle serves.
func (h *Handle) Name() string { return h.name }

// Release drops one reference. Safe to call from any goroutine; must be
// called exactly once per successful Acquire.
func (h *Handle) Release() {
	h.cache.mu.Lock()
	h.refs--
	h.cache.mu.Unlock()
}

// NewCache wraps store with an LRU of at most maxResident warmed models
// (≤ 0 defaults to 8).
func NewCache(store *Store, maxResident int) *Cache {
	if maxResident <= 0 {
		maxResident = 8
	}
	return &Cache{store: store, max: maxResident, byName: make(map[string]*Handle)}
}

// Store returns the backing artifact store.
func (c *Cache) Store() *Store { return c.store }

// Acquire returns a handle on the latest published version of name,
// loading and warming it on a miss. A publish after the entry became
// resident is picked up on the next Acquire: the stale entry is
// unlinked (it lives on until its last holder releases) and the new
// version loads in its place.
func (c *Cache) Acquire(name string) (*Handle, error) {
	c.mu.Lock()
	if h := c.byName[name]; h != nil {
		if v, ok := c.store.Latest(name); ok && v == h.version {
			h.refs++
			c.seq++
			h.touch = c.seq
			c.mu.Unlock()
			c.hits.Add(1)
			return h, nil
		}
		// A newer version exists (or the model vanished): unlink the
		// stale entry and fall through to the miss path.
		h.resident = false
		delete(c.byName, name)
	}
	c.mu.Unlock()

	c.misses.Add(1)
	p, v, err := c.store.Load(name, 0)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	// Another goroutine may have raced the load; prefer the entry that
	// is already resident (its arenas may be warm).
	if cur := c.byName[name]; cur != nil && cur.version == v {
		cur.refs++
		c.seq++
		cur.touch = c.seq
		return cur, nil
	}
	c.seq++
	h := &Handle{cache: c, name: name, version: v, p: p, refs: 1, touch: c.seq, resident: true}
	c.byName[name] = h
	c.evictLocked()
	return h, nil
}

// evictLocked drops least-recently-acquired unpinned entries until the
// resident count fits the cap. Linear scan: it runs only on insert,
// never on the hit path, and MaxResident is small.
func (c *Cache) evictLocked() {
	for len(c.byName) > c.max {
		var victim *Handle
		for _, h := range c.byName {
			if h.refs > 0 {
				continue
			}
			if victim == nil || h.touch < victim.touch {
				victim = h
			}
		}
		if victim == nil {
			return // everything pinned; converge later
		}
		victim.resident = false
		delete(c.byName, victim.name)
		c.evictions.Add(1)
	}
}

// CacheStats is a point-in-time cache accounting snapshot.
type CacheStats struct {
	Resident  int    `json:"resident"`
	MaxValue  int    `json:"max_resident"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
}

// Stats returns the current counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	resident := len(c.byName)
	c.mu.Unlock()
	return CacheStats{
		Resident:  resident,
		MaxValue:  c.max,
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
	}
}

// RegisterMetrics exports the cache counters into reg:
// rptcn_registry_cache_{resident,hits,misses,evictions}.
func (c *Cache) RegisterMetrics(reg *obs.Registry) {
	resident := reg.Gauge("rptcn_registry_cache_resident",
		"Models resident in the registry's warmed-arena LRU cache.")
	hits := reg.Counter("rptcn_registry_cache_hits_total",
		"Model acquisitions served from the warmed cache.")
	misses := reg.Counter("rptcn_registry_cache_misses_total",
		"Model acquisitions that lazily loaded an artifact from disk.")
	evictions := reg.Counter("rptcn_registry_cache_evictions_total",
		"Warmed models LRU-evicted from the registry cache.")
	catchUp := func(ctr *obs.Counter, v uint64) {
		if d := float64(v) - ctr.Value(); d > 0 {
			ctr.Add(d)
		}
	}
	reg.RegisterCollector(func() {
		st := c.Stats()
		resident.Set(float64(st.Resident))
		catchUp(hits, st.Hits)
		catchUp(misses, st.Misses)
		catchUp(evictions, st.Evictions)
	})
}
