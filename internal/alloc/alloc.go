// Package alloc evaluates resource-reservation policies against a demand
// series — the paper's motivating use case (Sec. II): a resource manager
// must reserve capacity ahead of demand, where over-reservation wastes
// resources (the idle clusters of Figs. 2–3) and under-reservation
// violates quality of service.
package alloc

import (
	"errors"
	"fmt"

	"repro/internal/naive"
)

// Outcome summarizes how a reservation trajectory served a demand series.
type Outcome struct {
	// AvgReservation is the mean reserved capacity per step.
	AvgReservation float64
	// AvgDemand is the mean demand per step.
	AvgDemand float64
	// WastePerStep is mean reserved-but-unused capacity (overprovision).
	WastePerStep float64
	// DeficitPerStep is mean unmet demand (underprovision).
	DeficitPerStep float64
	// Violations counts steps where demand exceeded the reservation.
	Violations int
	// SLOAttainment is the fraction of steps without a violation.
	SLOAttainment float64
	// Utilization is AvgDemand / AvgReservation (capped demand).
	Utilization float64
}

// Evaluate scores a reservation trajectory against demand. Both series
// must be non-empty and of equal length.
func Evaluate(demand, reservation []float64) (Outcome, error) {
	if len(demand) == 0 {
		return Outcome{}, errors.New("alloc: empty demand")
	}
	if len(demand) != len(reservation) {
		return Outcome{}, fmt.Errorf("alloc: demand %d vs reservation %d", len(demand), len(reservation))
	}
	var o Outcome
	served := 0.0
	for i, d := range demand {
		r := reservation[i]
		o.AvgDemand += d
		o.AvgReservation += r
		if r >= d {
			o.WastePerStep += r - d
			served += d
		} else {
			o.Violations++
			o.DeficitPerStep += d - r
			served += r
		}
	}
	n := float64(len(demand))
	o.AvgDemand /= n
	o.AvgReservation /= n
	o.WastePerStep /= n
	o.DeficitPerStep /= n
	o.SLOAttainment = 1 - float64(o.Violations)/n
	if o.AvgReservation > 0 {
		o.Utilization = (served / n) / o.AvgReservation
	}
	return o, nil
}

// Static returns a constant reservation trajectory of n steps at level.
func Static(level float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = level
	}
	return out
}

// Reactive reserves the previously observed demand plus headroom (the
// "scale on what you last saw" policy). The first step reserves
// initial+headroom.
func Reactive(demand []float64, headroom, initial float64) []float64 {
	out := make([]float64, len(demand))
	for i := range out {
		prev := initial
		if i > 0 {
			prev = demand[i-1]
		}
		out[i] = prev + headroom
	}
	return out
}

// FromForecasts turns per-step forecasts into reservations with headroom.
func FromForecasts(forecasts []float64, headroom float64) []float64 {
	out := make([]float64, len(forecasts))
	for i, f := range forecasts {
		out[i] = f + headroom
	}
	return out
}

// FromForecaster rolls a naive.Forecaster over the demand series: at each
// step it reserves the forecaster's one-step prediction plus headroom,
// then reveals the true demand.
func FromForecaster(f naive.Forecaster, demand []float64, headroom float64) []float64 {
	preds := naive.RollingForecast(f, demand)
	return FromForecasts(preds, headroom)
}

// Compare evaluates several named reservation trajectories against the
// same demand, preserving input order.
type NamedReservation struct {
	Name        string
	Reservation []float64
}

// ComparisonRow pairs a policy name with its outcome.
type ComparisonRow struct {
	Name string
	Outcome
}

// Compare scores each reservation against demand.
func Compare(demand []float64, policies []NamedReservation) ([]ComparisonRow, error) {
	out := make([]ComparisonRow, 0, len(policies))
	for _, p := range policies {
		o, err := Evaluate(demand, p.Reservation)
		if err != nil {
			return nil, fmt.Errorf("alloc: policy %q: %w", p.Name, err)
		}
		out = append(out, ComparisonRow{Name: p.Name, Outcome: o})
	}
	return out, nil
}
