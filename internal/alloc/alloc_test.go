package alloc

import (
	"math"
	"testing"

	"repro/internal/naive"
)

func TestEvaluateExactReservation(t *testing.T) {
	demand := []float64{10, 20, 30}
	o, err := Evaluate(demand, demand)
	if err != nil {
		t.Fatal(err)
	}
	if o.WastePerStep != 0 || o.DeficitPerStep != 0 || o.Violations != 0 {
		t.Fatalf("exact reservation outcome = %+v", o)
	}
	if o.SLOAttainment != 1 || math.Abs(o.Utilization-1) > 1e-12 {
		t.Fatalf("SLO/utilization = %+v", o)
	}
}

func TestEvaluateOverAndUnder(t *testing.T) {
	demand := []float64{10, 10}
	res := []float64{15, 5}
	o, err := Evaluate(demand, res)
	if err != nil {
		t.Fatal(err)
	}
	if o.WastePerStep != 2.5 { // (5+0)/2
		t.Fatalf("waste = %g", o.WastePerStep)
	}
	if o.DeficitPerStep != 2.5 { // (0+5)/2
		t.Fatalf("deficit = %g", o.DeficitPerStep)
	}
	if o.Violations != 1 || o.SLOAttainment != 0.5 {
		t.Fatalf("violations = %+v", o)
	}
	// Served = 10 + 5 = 15; avg served 7.5; avg reservation 10.
	if math.Abs(o.Utilization-0.75) > 1e-12 {
		t.Fatalf("utilization = %g", o.Utilization)
	}
}

func TestEvaluateErrors(t *testing.T) {
	if _, err := Evaluate(nil, nil); err == nil {
		t.Fatal("expected error for empty demand")
	}
	if _, err := Evaluate([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("expected error for length mismatch")
	}
}

func TestStatic(t *testing.T) {
	s := Static(42, 3)
	if len(s) != 3 || s[0] != 42 || s[2] != 42 {
		t.Fatalf("Static = %v", s)
	}
}

func TestReactiveLagsByOne(t *testing.T) {
	demand := []float64{10, 20, 30}
	r := Reactive(demand, 5, 8)
	want := []float64{13, 15, 25}
	for i := range want {
		if r[i] != want[i] {
			t.Fatalf("Reactive = %v, want %v", r, want)
		}
	}
}

func TestFromForecastsAddsHeadroom(t *testing.T) {
	f := FromForecasts([]float64{1, 2}, 10)
	if f[0] != 11 || f[1] != 12 {
		t.Fatalf("FromForecasts = %v", f)
	}
}

func TestFromForecasterMatchesManualRolling(t *testing.T) {
	demand := []float64{5, 6, 7, 8}
	p := &naive.Persistence{}
	if err := p.Fit([]float64{4}); err != nil {
		t.Fatal(err)
	}
	got := FromForecaster(p, demand, 1)
	// Persistence predicts 4,5,6,7 → +1 headroom.
	want := []float64{5, 6, 7, 8}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("FromForecaster = %v, want %v", got, want)
		}
	}
}

func TestCompareOrderAndErrors(t *testing.T) {
	demand := []float64{10, 10}
	rows, err := Compare(demand, []NamedReservation{
		{Name: "a", Reservation: []float64{20, 20}},
		{Name: "b", Reservation: []float64{10, 10}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Name != "a" || rows[1].Name != "b" {
		t.Fatalf("Compare rows = %+v", rows)
	}
	if rows[0].WastePerStep != 10 || rows[1].WastePerStep != 0 {
		t.Fatalf("waste rows = %+v", rows)
	}
	if _, err := Compare(demand, []NamedReservation{{Name: "bad", Reservation: []float64{1}}}); err == nil {
		t.Fatal("expected error for bad policy length")
	}
}

// Property: a perfect forecaster with positive headroom never violates and
// wastes exactly the headroom.
func TestPerfectForecastWithHeadroom(t *testing.T) {
	demand := []float64{3, 1, 4, 1, 5}
	res := FromForecasts(demand, 2)
	o, err := Evaluate(demand, res)
	if err != nil {
		t.Fatal(err)
	}
	if o.Violations != 0 || math.Abs(o.WastePerStep-2) > 1e-12 {
		t.Fatalf("perfect forecast outcome = %+v", o)
	}
}

// Higher static reservations trade waste for SLO monotonically.
func TestStaticLevelMonotonicity(t *testing.T) {
	demand := []float64{10, 40, 25, 60, 15}
	prevWaste := -1.0
	prevViol := len(demand) + 1
	for _, level := range []float64{20, 40, 60, 80} {
		o, err := Evaluate(demand, Static(level, len(demand)))
		if err != nil {
			t.Fatal(err)
		}
		if o.WastePerStep < prevWaste {
			t.Fatal("waste must not decrease with higher reservations")
		}
		if o.Violations > prevViol {
			t.Fatal("violations must not increase with higher reservations")
		}
		prevWaste = o.WastePerStep
		prevViol = o.Violations
	}
}
