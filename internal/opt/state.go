package opt

import (
	"fmt"

	"repro/internal/nn"
)

// State is a serializable snapshot of an optimizer's internal slots —
// everything beyond the parameter values themselves that a resumed
// training run needs to continue bitwise identically to an
// uninterrupted one. Slot vectors are stored in parameter order, so the
// state is portable across processes as long as the model architecture
// (and therefore Params() order) is unchanged.
type State struct {
	// Step is the global step counter (Adam's bias-correction t).
	Step int `json:"step,omitempty"`
	// Slots maps a slot name ("m", "v", "velocity", ...) to one vector
	// per parameter, in Params() order. Missing slots mean the optimizer
	// had not touched that state yet.
	Slots map[string][][]float64 `json:"slots,omitempty"`
}

// Stateful is implemented by optimizers whose internal state can be
// checkpointed and restored. All optimizers in this package implement
// it; training resume falls back to a cold optimizer (and loses bitwise
// reproducibility) when the configured optimizer does not.
type Stateful interface {
	// CaptureState snapshots the slots for the given parameters.
	CaptureState(params []*nn.Param) State
	// RestoreState reinstalls a snapshot captured with the same
	// architecture. Vectors are copied, never aliased.
	RestoreState(params []*nn.Param, s State) error
}

// captureSlot copies one per-param slot map into params order; nil
// entries mark parameters the optimizer has not initialized yet.
func captureSlot(params []*nn.Param, slot map[*nn.Param][]float64) [][]float64 {
	out := make([][]float64, len(params))
	for i, p := range params {
		if v := slot[p]; v != nil {
			out[i] = append([]float64(nil), v...)
		}
	}
	return out
}

// restoreSlot reinstalls one slot, validating vector lengths.
func restoreSlot(name string, params []*nn.Param, slot map[*nn.Param][]float64, vals [][]float64) error {
	if vals == nil {
		return nil
	}
	if len(vals) != len(params) {
		return fmt.Errorf("opt: slot %q has %d vectors, model has %d params", name, len(vals), len(params))
	}
	for i, p := range params {
		if vals[i] == nil {
			delete(slot, p)
			continue
		}
		if len(vals[i]) != p.Value.Size() {
			return fmt.Errorf("opt: slot %q param %d length %d, want %d", name, i, len(vals[i]), p.Value.Size())
		}
		slot[p] = append([]float64(nil), vals[i]...)
	}
	return nil
}

// CaptureState implements Stateful.
func (a *Adam) CaptureState(params []*nn.Param) State {
	return State{
		Step: a.t,
		Slots: map[string][][]float64{
			"m": captureSlot(params, a.m),
			"v": captureSlot(params, a.v),
		},
	}
}

// RestoreState implements Stateful.
func (a *Adam) RestoreState(params []*nn.Param, s State) error {
	if err := restoreSlot("m", params, a.m, s.Slots["m"]); err != nil {
		return err
	}
	if err := restoreSlot("v", params, a.v, s.Slots["v"]); err != nil {
		return err
	}
	a.t = s.Step
	return nil
}

// CaptureState implements Stateful.
func (s *SGD) CaptureState(params []*nn.Param) State {
	return State{Slots: map[string][][]float64{"velocity": captureSlot(params, s.velocity)}}
}

// RestoreState implements Stateful.
func (s *SGD) RestoreState(params []*nn.Param, st State) error {
	return restoreSlot("velocity", params, s.velocity, st.Slots["velocity"])
}

// CaptureState implements Stateful.
func (r *RMSProp) CaptureState(params []*nn.Param) State {
	return State{Slots: map[string][][]float64{"cache": captureSlot(params, r.cache)}}
}

// RestoreState implements Stateful.
func (r *RMSProp) RestoreState(params []*nn.Param, st State) error {
	return restoreSlot("cache", params, r.cache, st.Slots["cache"])
}
