package opt

import (
	"math"
	"testing"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// stepTwice runs two optimizer steps with fixed gradients.
func stepTwice(o Optimizer, params []*nn.Param) {
	for s := 0; s < 2; s++ {
		for _, p := range params {
			for i := range p.Grad.Data {
				p.Grad.Data[i] = 0.1 * float64(i+1)
			}
		}
		o.Step(params)
	}
}

func newParams() []*nn.Param {
	a := nn.NewParam("a", tensor.RandN(tensor.NewRNG(1), 3, 2))
	b := nn.NewParam("b", tensor.RandN(tensor.NewRNG(2), 4))
	return []*nn.Param{a, b}
}

// TestStateRoundTripBitwise: capture state mid-run, clone into a fresh
// optimizer, and verify further steps are bitwise identical — the
// contract training resume relies on.
func TestStateRoundTripBitwise(t *testing.T) {
	builders := map[string]func() Optimizer{
		"adam":    func() Optimizer { return NewAdam(1e-2) },
		"sgd":     func() Optimizer { return NewSGD(1e-2, 0.9) },
		"rmsprop": func() Optimizer { return NewRMSProp(1e-2) },
	}
	for name, build := range builders {
		t.Run(name, func(t *testing.T) {
			ref := build()
			refParams := newParams()
			stepTwice(ref, refParams)
			st := ref.(Stateful).CaptureState(refParams)

			fresh := build()
			freshParams := newParams()
			// Match parameter values, then install the captured slots.
			for i := range freshParams {
				freshParams[i].Value.CopyFrom(refParams[i].Value)
			}
			if err := fresh.(Stateful).RestoreState(freshParams, st); err != nil {
				t.Fatal(err)
			}

			stepTwice(ref, refParams)
			stepTwice(fresh, freshParams)
			for i := range refParams {
				for j := range refParams[i].Value.Data {
					a, b := refParams[i].Value.Data[j], freshParams[i].Value.Data[j]
					if math.Float64bits(a) != math.Float64bits(b) {
						t.Fatalf("param %d[%d] diverged after restore: %g vs %g", i, j, a, b)
					}
				}
			}
		})
	}
}

func TestRestoreStateRejectsShapeMismatch(t *testing.T) {
	o := NewAdam(1e-2)
	params := newParams()
	stepTwice(o, params)
	st := o.CaptureState(params)
	st.Slots["m"][0] = st.Slots["m"][0][:2]
	if err := NewAdam(1e-2).RestoreState(newParams(), st); err == nil {
		t.Fatal("expected error for slot length mismatch")
	}
}
