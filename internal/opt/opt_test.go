package opt

import (
	"math"
	"testing"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// quadratic builds a single-parameter "model" with loss (x−target)² and
// returns the parameter plus a function that fills its gradient.
func quadratic(start, target float64) (*nn.Param, func()) {
	p := nn.NewParam("x", tensor.FromSlice([]float64{start}, 1))
	fillGrad := func() {
		p.Grad.Data[0] = 2 * (p.Value.Data[0] - target)
	}
	return p, fillGrad
}

func TestSGDConvergesOnQuadratic(t *testing.T) {
	p, grad := quadratic(10, 3)
	o := NewSGD(0.1, 0)
	for i := 0; i < 200; i++ {
		grad()
		o.Step([]*nn.Param{p})
	}
	if math.Abs(p.Value.Data[0]-3) > 1e-6 {
		t.Fatalf("SGD converged to %g, want 3", p.Value.Data[0])
	}
}

func TestSGDMomentumFasterThanPlain(t *testing.T) {
	run := func(mom float64, steps int) float64 {
		p, grad := quadratic(10, 0)
		o := NewSGD(0.01, mom)
		for i := 0; i < steps; i++ {
			grad()
			o.Step([]*nn.Param{p})
		}
		return math.Abs(p.Value.Data[0])
	}
	if run(0.9, 50) >= run(0, 50) {
		t.Fatal("momentum should accelerate convergence on a quadratic")
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	p, grad := quadratic(10, -2)
	o := NewAdam(0.2)
	for i := 0; i < 500; i++ {
		grad()
		o.Step([]*nn.Param{p})
	}
	if math.Abs(p.Value.Data[0]+2) > 1e-3 {
		t.Fatalf("Adam converged to %g, want -2", p.Value.Data[0])
	}
}

func TestAdamFirstStepIsLR(t *testing.T) {
	// With bias correction, the very first Adam step has magnitude ≈ lr.
	p, grad := quadratic(1, 0)
	o := NewAdam(0.1)
	grad()
	o.Step([]*nn.Param{p})
	moved := 1 - p.Value.Data[0]
	if math.Abs(moved-0.1) > 1e-6 {
		t.Fatalf("first Adam step = %g, want ≈ 0.1", moved)
	}
}

func TestRMSPropConvergesOnQuadratic(t *testing.T) {
	p, grad := quadratic(5, 1)
	o := NewRMSProp(0.05)
	for i := 0; i < 1000; i++ {
		grad()
		o.Step([]*nn.Param{p})
	}
	if math.Abs(p.Value.Data[0]-1) > 1e-2 {
		t.Fatalf("RMSProp converged to %g, want 1", p.Value.Data[0])
	}
}

func TestClipGradNorm(t *testing.T) {
	p := nn.NewParam("x", tensor.New(2))
	p.Grad.Data[0] = 3
	p.Grad.Data[1] = 4 // norm 5
	pre := ClipGradNorm([]*nn.Param{p}, 1)
	if math.Abs(pre-5) > 1e-12 {
		t.Fatalf("pre-clip norm = %g, want 5", pre)
	}
	post := math.Hypot(p.Grad.Data[0], p.Grad.Data[1])
	if math.Abs(post-1) > 1e-12 {
		t.Fatalf("post-clip norm = %g, want 1", post)
	}
}

func TestClipGradNormBelowThresholdUntouched(t *testing.T) {
	p := nn.NewParam("x", tensor.New(1))
	p.Grad.Data[0] = 0.5
	ClipGradNorm([]*nn.Param{p}, 1)
	if p.Grad.Data[0] != 0.5 {
		t.Fatal("clip modified a gradient below the threshold")
	}
}

func TestSchedules(t *testing.T) {
	if got := (ConstantSchedule{}).Rate(10, 0.1); got != 0.1 {
		t.Fatalf("constant = %g", got)
	}
	s := StepSchedule{Every: 10, Gamma: 0.5}
	if got := s.Rate(25, 0.4); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("step schedule = %g, want 0.1", got)
	}
	e := ExpSchedule{Gamma: 0.9}
	if got := e.Rate(2, 1); math.Abs(got-0.81) > 1e-12 {
		t.Fatalf("exp schedule = %g, want 0.81", got)
	}
}

func TestSetLR(t *testing.T) {
	for _, o := range []Optimizer{NewSGD(0.1, 0), NewAdam(0.1), NewRMSProp(0.1)} {
		o.SetLR(0.05)
		if o.LR() != 0.05 {
			t.Fatalf("%T SetLR failed", o)
		}
	}
}

// Integration: a small Dense network trained with Adam must fit y = 2x+1.
func TestAdamFitsLinearFunction(t *testing.T) {
	r := tensor.NewRNG(1)
	model := nn.NewSequential(nn.NewDense(r, 1, 8), &nn.Tanh{}, nn.NewDense(r, 8, 1))
	o := NewAdam(0.01)
	loss := &nn.MSELoss{}
	x := tensor.New(32, 1)
	y := tensor.New(32, 1)
	for i := 0; i < 32; i++ {
		v := float64(i)/16 - 1
		x.Data[i] = v
		y.Data[i] = 2*v + 1
	}
	var final float64
	for epoch := 0; epoch < 800; epoch++ {
		nn.ZeroGrad(model)
		pred := model.Forward(x, true)
		final = loss.Forward(pred, y)
		model.Backward(loss.Backward())
		o.Step(model.Params())
	}
	if final > 1e-3 {
		t.Fatalf("final training loss %g, want < 1e-3", final)
	}
}
