// Package opt provides first-order optimizers (SGD, Adam, RMSProp),
// gradient clipping, and learning-rate schedules for the nn package.
package opt

import (
	"math"

	"repro/internal/nn"
)

// Optimizer updates parameters from their accumulated gradients.
type Optimizer interface {
	// Step applies one update to every parameter and advances internal state.
	Step(params []*nn.Param)
	// LR returns the current base learning rate.
	LR() float64
	// SetLR overrides the base learning rate (used by schedulers).
	SetLR(lr float64)
}

// SGD is stochastic gradient descent with optional classical momentum.
type SGD struct {
	Rate     float64
	Momentum float64

	velocity map[*nn.Param][]float64
}

// NewSGD returns an SGD optimizer.
func NewSGD(lr, momentum float64) *SGD {
	return &SGD{Rate: lr, Momentum: momentum, velocity: map[*nn.Param][]float64{}}
}

// Step implements Optimizer.
func (s *SGD) Step(params []*nn.Param) {
	for _, p := range params {
		if s.Momentum == 0 {
			for i, g := range p.Grad.Data {
				p.Value.Data[i] -= s.Rate * g
			}
			continue
		}
		v := s.velocity[p]
		if v == nil {
			v = make([]float64, p.Value.Size())
			s.velocity[p] = v
		}
		for i, g := range p.Grad.Data {
			v[i] = s.Momentum*v[i] - s.Rate*g
			p.Value.Data[i] += v[i]
		}
	}
}

// LR implements Optimizer.
func (s *SGD) LR() float64 { return s.Rate }

// SetLR implements Optimizer.
func (s *SGD) SetLR(lr float64) { s.Rate = lr }

// Adam is the Adam optimizer (Kingma & Ba 2015) with bias correction —
// the optimizer used for all deep models in the experiments, matching the
// Keras default the paper relies on.
type Adam struct {
	Rate    float64
	Beta1   float64
	Beta2   float64
	Epsilon float64

	t int
	m map[*nn.Param][]float64
	v map[*nn.Param][]float64
}

// NewAdam returns Adam with the standard defaults β1=0.9, β2=0.999, ε=1e-8.
func NewAdam(lr float64) *Adam {
	return &Adam{
		Rate: lr, Beta1: 0.9, Beta2: 0.999, Epsilon: 1e-8,
		m: map[*nn.Param][]float64{}, v: map[*nn.Param][]float64{},
	}
}

// Step implements Optimizer.
func (a *Adam) Step(params []*nn.Param) {
	a.t++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for _, p := range params {
		m := a.m[p]
		v := a.v[p]
		if m == nil {
			m = make([]float64, p.Value.Size())
			v = make([]float64, p.Value.Size())
			a.m[p] = m
			a.v[p] = v
		}
		for i, g := range p.Grad.Data {
			m[i] = a.Beta1*m[i] + (1-a.Beta1)*g
			v[i] = a.Beta2*v[i] + (1-a.Beta2)*g*g
			mh := m[i] / bc1
			vh := v[i] / bc2
			p.Value.Data[i] -= a.Rate * mh / (math.Sqrt(vh) + a.Epsilon)
		}
	}
}

// LR implements Optimizer.
func (a *Adam) LR() float64 { return a.Rate }

// SetLR implements Optimizer.
func (a *Adam) SetLR(lr float64) { a.Rate = lr }

// RMSProp keeps a running average of squared gradients and normalizes by
// its square root.
type RMSProp struct {
	Rate    float64
	Decay   float64
	Epsilon float64

	cache map[*nn.Param][]float64
}

// NewRMSProp returns RMSProp with decay 0.9 and ε=1e-8.
func NewRMSProp(lr float64) *RMSProp {
	return &RMSProp{Rate: lr, Decay: 0.9, Epsilon: 1e-8, cache: map[*nn.Param][]float64{}}
}

// Step implements Optimizer.
func (r *RMSProp) Step(params []*nn.Param) {
	for _, p := range params {
		c := r.cache[p]
		if c == nil {
			c = make([]float64, p.Value.Size())
			r.cache[p] = c
		}
		for i, g := range p.Grad.Data {
			c[i] = r.Decay*c[i] + (1-r.Decay)*g*g
			p.Value.Data[i] -= r.Rate * g / (math.Sqrt(c[i]) + r.Epsilon)
		}
	}
}

// LR implements Optimizer.
func (r *RMSProp) LR() float64 { return r.Rate }

// SetLR implements Optimizer.
func (r *RMSProp) SetLR(lr float64) { r.Rate = lr }

// ClipGradNorm rescales all gradients so their global L2 norm does not
// exceed maxNorm; it returns the pre-clip norm. Essential for stable LSTM
// training on high-dynamic series.
func ClipGradNorm(params []*nn.Param, maxNorm float64) float64 {
	total := 0.0
	for _, p := range params {
		for _, g := range p.Grad.Data {
			total += g * g
		}
	}
	norm := math.Sqrt(total)
	if norm > maxNorm && norm > 0 {
		scale := maxNorm / norm
		for _, p := range params {
			for i := range p.Grad.Data {
				p.Grad.Data[i] *= scale
			}
		}
	}
	return norm
}

// Schedule maps an epoch index to a learning rate.
type Schedule interface {
	Rate(epoch int, base float64) float64
}

// ConstantSchedule keeps the base rate.
type ConstantSchedule struct{}

// Rate implements Schedule.
func (ConstantSchedule) Rate(_ int, base float64) float64 { return base }

// StepSchedule multiplies the rate by Gamma every Every epochs.
type StepSchedule struct {
	Every int
	Gamma float64
}

// Rate implements Schedule.
func (s StepSchedule) Rate(epoch int, base float64) float64 {
	if s.Every <= 0 {
		return base
	}
	return base * math.Pow(s.Gamma, float64(epoch/s.Every))
}

// ExpSchedule decays the rate exponentially: base·γ^epoch.
type ExpSchedule struct {
	Gamma float64
}

// Rate implements Schedule.
func (s ExpSchedule) Rate(epoch int, base float64) float64 {
	return base * math.Pow(s.Gamma, float64(epoch))
}
