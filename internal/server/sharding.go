package server

import (
	"fmt"
	"net/http"
	"strconv"

	"repro/internal/registry"
	"repro/internal/shard"
)

// Fleet-scale sharded serving: the per-entity serving path (/v1/ingest,
// GET /v1/forecast/{entity}) runs on an entity→shard router
// (internal/shard) instead of one global ring store + one global
// micro-batcher. Each shard owns its entities' rings and its own
// batcher; with Shards > 1 each also owns a private model replica, so N
// workers run N forwards in parallel and a hot-swap or f32 revalidation
// on the shared predictor never convoys entity traffic. Shards == 1
// with the shared predictor as the engine is exactly the old path —
// same rings, same batch fusion, same f32 tier, bitwise-identical
// responses.

// ShardConfig tunes the sharded entity-serving path.
type ShardConfig struct {
	// Shards is the worker count; entities hash to a fixed shard.
	// Default 1 — the degenerate path, serving on the shared predictor.
	Shards int
	// QueueCap bounds each shard's pending-forecast queue (default 64).
	QueueCap int
}

// WithSharding overrides the sharded-serving parameters.
func WithSharding(cfg ShardConfig) Option {
	return func(s *Server) { s.shardCfg = cfg }
}

// WithModelRegistry serves GET /v1/forecast/{entity}?model=<name> from
// the latest published version of <name> in cache's store, keeping hot
// models resident with warmed inference arenas. Without this option the
// model query parameter is rejected.
func WithModelRegistry(cache *registry.Cache) Option {
	return func(s *Server) { s.modelCache = cache }
}

// buildRouter assembles the shard router for the entity serving path.
// Single shard → the shared predictor (today's semantics, f32 tier and
// all); multiple shards → one private replica per shard.
func (s *Server) buildRouter() (*shard.Router, error) {
	if s.shardCfg.Shards <= 0 {
		s.shardCfg.Shards = 1
	}
	engines := make([]shard.Engine, s.shardCfg.Shards)
	if s.shardCfg.Shards == 1 {
		engines[0] = s.predictor
	} else {
		for i := range engines {
			engines[i] = s.predictor.NewShardInferencer()
		}
	}
	var resolve shard.Resolver
	if s.modelCache != nil {
		cache := s.modelCache
		resolve = func(model string) (shard.Engine, func(), error) {
			h, err := cache.Acquire(model)
			if err != nil {
				return nil, nil, err
			}
			return h.Predictor(), h.Release, nil
		}
	}
	// MaxDelay stays zero: shard workers gather greedily. The JSON-path
	// batcher keeps its delay-gather (POST bodies arrive one forward per
	// connection and fusion is worth a bounded wait there); the entity
	// path's backlog is its batch, and idle-waiting for stragglers costs
	// over 2x throughput at the fleet operating point (BenchmarkFleetDelay8).
	return shard.New(shard.Config{
		Shards:       s.shardCfg.Shards,
		QueueCap:     s.shardCfg.QueueCap,
		MaxBatch:     s.batchCfg.MaxBatch,
		RingCapacity: s.ingestCfg.RingCapacity,
		MaxEntities:  s.ingestCfg.MaxEntities,
		Engines:      engines,
		Resolve:      resolve,
		Registry:     s.reg,
		Log:          s.log,
	})
}

// ShardsStatus is the /debug/shards response body.
type ShardsStatus struct {
	Shards     int                  `json:"shards"`
	Entities   int                  `json:"entities"`
	Evicted    uint64               `json:"evicted"`
	ModelCache *registry.CacheStats `json:"model_cache,omitempty"`
	PerShard   []shard.Status       `json:"per_shard"`
}

// handleShards serves GET /debug/shards: per-shard occupancy, queue
// depth, request totals, and latency quantiles — the balance view the
// fleet drill asserts on.
func (s *Server) handleShards(w http.ResponseWriter, _ *http.Request) {
	st := ShardsStatus{
		Shards:   s.rings.Shards(),
		Entities: s.rings.Len(),
		Evicted:  s.rings.Evicted(),
		PerShard: s.rings.Status(),
	}
	if s.modelCache != nil {
		cs := s.modelCache.Stats()
		st.ModelCache = &cs
	}
	s.writeJSON(w, http.StatusOK, st)
}

// parseListParams reads the ?limit= / ?after= pagination parameters for
// GET /v1/entities. limit ≤ 0 (or absent) means no bound.
func parseListParams(r *http.Request) (limit int, after string, err error) {
	q := r.URL.Query()
	after = q.Get("after")
	if raw := q.Get("limit"); raw != "" {
		limit, err = strconv.Atoi(raw)
		if err != nil || limit < 0 {
			return 0, "", fmt.Errorf("invalid limit %q: must be a non-negative integer", raw)
		}
	}
	return limit, after, nil
}
