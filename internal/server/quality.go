package server

import (
	"sync"

	"repro/internal/core"
	"repro/internal/obs"
)

// qualityWindow is the number of recent observations the rolling serving
// quality gauges average over.
const qualityWindow = 256

// rollingStat is a fixed-size ring of observations with a running mean.
type rollingStat struct {
	buf  [qualityWindow]float64
	next int
	n    int
}

func (r *rollingStat) push(v float64) {
	r.buf[r.next] = v
	r.next = (r.next + 1) % qualityWindow
	if r.n < qualityWindow {
		r.n++
	}
}

func (r *rollingStat) mean() float64 {
	if r.n == 0 {
		return 0
	}
	sum := 0.0
	for i := 0; i < r.n; i++ {
		sum += r.buf[i]
	}
	return sum / float64(r.n)
}

// qualityMonitor watches forecast quality online, without ground-truth
// labels arriving out of band: every request already carries the recent
// actuals, so the monitor backtests — it truncates the submitted history
// by the forecast horizon, predicts the part it hid, and compares against
// the actual trailing values (raw scale). It also tracks how much of the
// input lies outside the normalizer's training-time min–max bounds — the
// leading indicator of distribution shift, where min–max scaling clips
// and prediction quality silently degrades.
//
//	rptcn_serving_backtest_mae          gauge, rolling window
//	rptcn_serving_backtest_mse          gauge, rolling window
//	rptcn_serving_backtest_bias         gauge, rolling signed mean error
//	rptcn_serving_backtest_samples_total counter
//	rptcn_serving_backtest_skipped_total counter (short history / errors)
//	rptcn_serving_input_oor_ratio       gauge, rolling window
type qualityMonitor struct {
	mae       *obs.Gauge
	mse       *obs.Gauge
	bias      *obs.Gauge
	oor       *obs.Gauge
	backtests *obs.Counter
	skipped   *obs.Counter

	normMin, normMax []float64
	targetIdx        int
	minHist          int
	horizon          int

	mu     sync.Mutex
	absErr rollingStat
	sqErr  rollingStat
	sgnErr rollingStat
	oorRat rollingStat
}

// inputSummary is what one request's input told us, handed onward to the
// quality engine's detectors.
type inputSummary struct {
	// OOR is this request's out-of-range fraction (HasOOR false when the
	// predictor has no normalization bounds to compare against).
	OOR    float64
	HasOOR bool
	// Mean is the mean of the trailing input window of the target
	// indicator — the statistic the input mutation detector watches.
	Mean    float64
	HasMean bool
}

func newQualityMonitor(reg *obs.Registry, p *core.Predictor) *qualityMonitor {
	q := &qualityMonitor{
		mae: reg.Gauge("rptcn_serving_backtest_mae",
			"Rolling mean absolute error of backtested forecasts (raw scale)."),
		mse: reg.Gauge("rptcn_serving_backtest_mse",
			"Rolling mean squared error of backtested forecasts (raw scale)."),
		bias: reg.Gauge("rptcn_serving_backtest_bias",
			"Rolling signed mean error (forecast-actual) of backtested forecasts; positive over-predicts."),
		oor: reg.Gauge("rptcn_serving_input_oor_ratio",
			"Rolling fraction of input values outside the training min-max bounds."),
		backtests: reg.Counter("rptcn_serving_backtest_samples_total",
			"Backtested forecast steps accumulated into the rolling error window."),
		skipped: reg.Counter("rptcn_serving_backtest_skipped_total",
			"Forecast requests whose history was too short (or errored) to backtest."),
		minHist: p.MinHistory(),
		horizon: p.Cfg.Horizon,
	}
	q.normMin, q.normMax = p.NormBounds()
	if sel := p.SelectedIndicators(); len(sel) > 0 {
		q.targetIdx = sel[0]
	}
	return q
}

// observe processes one served request's history and returns the input
// summary the quality engine's detectors consume. infer must serialize
// access to the model (the server passes a ForecastFrom closure holding
// its inference mutex).
func (q *qualityMonitor) observe(series [][]float64, infer func([][]float64) ([]float64, error)) inputSummary {
	sum := q.observeShift(series)
	q.backtest(series, infer)
	if q.targetIdx < len(series) && len(series[q.targetIdx]) > 0 {
		tgt := series[q.targetIdx]
		// The trailing window the model actually saw, so requests with
		// different history lengths feed a comparable statistic.
		if q.minHist > 0 && len(tgt) > q.minHist {
			tgt = tgt[len(tgt)-q.minHist:]
		}
		s, n := 0.0, 0
		for _, v := range tgt {
			if v == v { // skip NaN
				s += v
				n++
			}
		}
		if n > 0 {
			sum.Mean, sum.HasMean = s/float64(n), true
		}
	}
	return sum
}

// observeShift updates the out-of-range ratio over every submitted value.
func (q *qualityMonitor) observeShift(series [][]float64) (sum inputSummary) {
	if len(q.normMin) == 0 {
		return sum
	}
	total, out := 0, 0
	for i, s := range series {
		if i >= len(q.normMin) {
			break
		}
		for _, v := range s {
			total++
			if v < q.normMin[i] || v > q.normMax[i] {
				out++
			}
		}
	}
	if total == 0 {
		return sum
	}
	sum.OOR, sum.HasOOR = float64(out)/float64(total), true
	q.mu.Lock()
	q.oorRat.push(sum.OOR)
	q.oor.Set(q.oorRat.mean())
	q.mu.Unlock()
	return sum
}

// backtest hides the last horizon samples, forecasts them, and folds the
// errors into the rolling window.
func (q *qualityMonitor) backtest(series [][]float64, infer func([][]float64) ([]float64, error)) {
	if q.targetIdx >= len(series) {
		q.skipped.Inc()
		return
	}
	n := len(series[q.targetIdx])
	// The truncated history must still fill a full input window; the
	// minimum is approximate when cleaning drops rows, in which case
	// infer fails and the sample is counted as skipped.
	if n-q.horizon < q.minHist {
		q.skipped.Inc()
		return
	}
	truncated := make([][]float64, len(series))
	for i, s := range series {
		cut := len(s) - q.horizon
		if cut < 0 {
			cut = 0
		}
		truncated[i] = s[:cut]
	}
	preds, err := infer(truncated)
	if err != nil {
		q.skipped.Inc()
		return
	}
	actual := series[q.targetIdx][n-q.horizon:]
	q.mu.Lock()
	defer q.mu.Unlock()
	for k := 0; k < len(preds) && k < len(actual); k++ {
		e := preds[k] - actual[k]
		q.sgnErr.push(e)
		if e < 0 {
			e = -e
		}
		q.absErr.push(e)
		q.sqErr.push(e * e)
		q.backtests.Inc()
	}
	q.mae.Set(q.absErr.mean())
	q.mse.Set(q.sqErr.mean())
	q.bias.Set(q.sgnErr.mean())
}
