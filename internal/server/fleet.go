package server

import (
	"context"
	"fmt"
	"html"
	"net/http"
	"strings"
	"sync"

	"repro/internal/obs"
	"repro/internal/obs/sketch"
	obstrace "repro/internal/obs/trace"
)

// Fleet telemetry: the per-entity view of serving traffic. Per-entity
// metric labels would grow /metrics without bound on a real cluster
// (thousands of containers), so the per-entity dimension lives in O(K)
// sketches instead — Space-Saving heavy-hitter tables and t-digest
// latency quantiles (internal/obs/sketch) — surfaced on /debug/fleet
// and consumed by the rptcntop dashboard.

// FleetConfig tunes the serving-path fleet telemetry.
type FleetConfig struct {
	// Disabled turns fleet telemetry off entirely; /debug/fleet then
	// answers 404.
	Disabled bool
	// K is the heavy-hitter capacity per dimension (default 32).
	K int
	// Compression is the t-digest δ for latency quantiles (default 64).
	Compression float64
}

// WithFleetTelemetry tunes (or disables) the fleet sketches. Without
// this option the server runs them with defaults — they are cheap
// (~100 ns per request, O(K) memory) and power /debug/fleet.
func WithFleetTelemetry(cfg FleetConfig) Option {
	return func(s *Server) { s.fleetCfg = cfg }
}

// WithDebugAddr tells the server where the pprof/expvar debug sidecar
// listens so the /debug index can link to it. Purely cosmetic — the
// sidecar is owned by the command, not the Server.
func WithDebugAddr(addr string) Option {
	return func(s *Server) { s.debugAddr = addr }
}

// forecastTelemetry rides the request context from the instrumentation
// middleware into the forecast handler, which fills in what only it
// knows: the entity the forecast is for and whether the response
// degraded to the fallback. The middleware reads it back after the
// handler returns to feed the fleet sketches and exemplars.
type forecastTelemetry struct {
	mu       sync.Mutex
	entity   string
	degraded bool
}

func (ft *forecastTelemetry) set(entity string, degraded bool) {
	if ft == nil {
		return
	}
	ft.mu.Lock()
	ft.entity, ft.degraded = entity, degraded
	ft.mu.Unlock()
}

func (ft *forecastTelemetry) get() (entity string, degraded bool) {
	if ft == nil {
		return "", false
	}
	ft.mu.Lock()
	defer ft.mu.Unlock()
	return ft.entity, ft.degraded
}

type telemetryKey struct{}

// telemetryFrom returns the request's telemetry carrier, or nil for
// routes without one.
func telemetryFrom(ctx context.Context) *forecastTelemetry {
	ft, _ := ctx.Value(telemetryKey{}).(*forecastTelemetry)
	return ft
}

// registerTraceMetrics bridges the tracer's tail-sampling counters into
// the registry as proper counters, delta-fed at scrape time (the trace
// package stays dependency-free, so it cannot register them itself).
func registerTraceMetrics(reg *obs.Registry, tr *obstrace.Tracer) {
	const name, help = "rptcn_trace_decisions_total", "Tail-sampling decisions by outcome."
	kept := map[string]*obs.Counter{
		"kept_marked":  reg.Counter(name, help, obs.L("outcome", "kept_marked")),
		"kept_slow":    reg.Counter(name, help, obs.L("outcome", "kept_slow")),
		"kept_sampled": reg.Counter(name, help, obs.L("outcome", "kept_sampled")),
		"dropped":      reg.Counter(name, help, obs.L("outcome", "dropped")),
	}
	var mu sync.Mutex
	var last obstrace.SampleStats
	reg.RegisterCollector(func() {
		st := tr.SampleStats()
		mu.Lock()
		kept["kept_marked"].Add(float64(st.KeptMarked - last.KeptMarked))
		kept["kept_slow"].Add(float64(st.KeptSlow - last.KeptSlow))
		kept["kept_sampled"].Add(float64(st.KeptSampled - last.KeptSampled))
		kept["dropped"].Add(float64(st.Dropped - last.Dropped))
		last = st
		mu.Unlock()
	})
}

// FleetStatus is the /debug/fleet response body: the sketch report plus
// the operational context an operator triages with — exemplars linking
// latency buckets to traces, tail-sampling accounting, drift state, and
// the breaker.
type FleetStatus struct {
	Fleet sketch.Report `json:"fleet"`
	// Exemplars are the most recent per-bucket exemplars of
	// rptcn_forecast_latency_seconds; each trace_id keys into
	// /debug/traces.
	Exemplars []obs.BucketExemplar `json:"forecast_latency_exemplars,omitempty"`
	// TraceSampling is present when tracing is wired.
	TraceSampling *obstrace.SampleStats `json:"trace_sampling,omitempty"`
	ErrorDrift    string                `json:"error_drift"`
	InputDrift    string                `json:"input_drift"`
	BreakerOpen   bool                  `json:"breaker_open"`
}

func (s *Server) fleetStatus() FleetStatus {
	st := FleetStatus{
		Fleet:       s.fleet.Report(),
		Exemplars:   s.forecastLat.Exemplars(),
		BreakerOpen: s.breaker.open(),
	}
	q := s.engine.Status()
	st.ErrorDrift = q.ErrorDrift.State
	st.InputDrift = q.InputDrift.State
	if s.tracer != nil {
		ts := s.tracer.SampleStats()
		st.TraceSampling = &ts
	}
	return st
}

func (s *Server) handleFleet(w http.ResponseWriter, r *http.Request) {
	if s.fleet == nil {
		s.writeError(w, http.StatusNotFound, "fleet telemetry disabled")
		return
	}
	st := s.fleetStatus()
	if r.URL.Query().Get("format") == "html" ||
		(r.URL.Query().Get("format") == "" && strings.Contains(r.Header.Get("Accept"), "text/html")) {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		writeFleetHTML(w, &st)
		return
	}
	s.writeJSON(w, http.StatusOK, st)
}

// writeFleetHTML renders the fleet status for humans, same endpoint as
// the JSON.
func writeFleetHTML(w http.ResponseWriter, st *FleetStatus) {
	esc := html.EscapeString
	fmt.Fprint(w, `<!DOCTYPE html><html><head><title>fleet</title><style>
body{font-family:monospace;margin:2em}table{border-collapse:collapse;margin:1em 0}
td,th{border:1px solid #999;padding:4px 10px;text-align:right}th{background:#eee}
td:first-child,th:first-child{text-align:left}
.ok{color:#070}.warn{color:#b70}.alarm,.open{color:#b00;font-weight:bold}
</style></head><body><h1>fleet</h1>`)
	breaker := "closed"
	if st.BreakerOpen {
		breaker = `<span class="open">open</span>`
	}
	fmt.Fprintf(w, `<p>requests=%d · errors=%d · k=%d · breaker=%s · drift: error=<span class="%s">%s</span> input=<span class="%s">%s</span></p>`,
		st.Fleet.Requests, st.Fleet.Errors, st.Fleet.K, breaker,
		esc(st.ErrorDrift), esc(st.ErrorDrift), esc(st.InputDrift), esc(st.InputDrift))

	fmt.Fprintf(w, `<h2>global latency</h2><p>count=%d · p50=%.4gs · p90=%.4gs · p99=%.4gs · max=%.4gs</p>`,
		st.Fleet.Global.Count, st.Fleet.Global.P50, st.Fleet.Global.P90, st.Fleet.Global.P99, st.Fleet.Global.Max)

	fmt.Fprint(w, `<h2>entities (by request count)</h2><table><tr><th>entity</th><th>requests≤</th><th>±err</th><th>p50</th><th>p90</th><th>p99</th><th>max</th></tr>`)
	for _, e := range st.Fleet.Entities {
		fmt.Fprintf(w, `<tr><td>%s</td><td>%.0f</td><td>%.0f</td><td>%.4g</td><td>%.4g</td><td>%.4g</td><td>%.4g</td></tr>`,
			esc(e.Entity), e.Requests, e.RequestsErr, e.Latency.P50, e.Latency.P90, e.Latency.P99, e.Latency.Max)
	}
	fmt.Fprint(w, "</table>")

	top := func(title string, items []sketch.Item) {
		if len(items) == 0 {
			return
		}
		fmt.Fprintf(w, `<h2>%s</h2><table><tr><th>entity</th><th>weight≤</th><th>±err</th></tr>`, title)
		for _, it := range items {
			fmt.Fprintf(w, `<tr><td>%s</td><td>%.4g</td><td>%.4g</td></tr>`, esc(it.Key), it.Weight, it.Err)
		}
		fmt.Fprint(w, "</table>")
	}
	top("top by latency sum (s)", st.Fleet.TopByLatency)
	top("top by errors", st.Fleet.TopByErrors)

	if len(st.Exemplars) > 0 {
		fmt.Fprint(w, `<h2>latency exemplars</h2><table><tr><th>le</th><th>value</th><th>entity</th><th>trace</th></tr>`)
		for _, ex := range st.Exemplars {
			fmt.Fprintf(w, `<tr><td>%s</td><td>%.4g</td><td>%s</td><td>%s</td></tr>`,
				esc(ex.Le), ex.Exemplar.Value, esc(ex.Exemplar.Entity), esc(ex.Exemplar.TraceID))
		}
		fmt.Fprint(w, "</table>")
	}
	if st.TraceSampling != nil {
		ts := st.TraceSampling
		fmt.Fprintf(w, `<h2>trace sampling</h2><p>kept: marked=%d slow=%d sampled=%d · dropped=%d</p>`,
			ts.KeptMarked, ts.KeptSlow, ts.KeptSampled, ts.Dropped)
	}
	fmt.Fprint(w, "</body></html>")
}

// handleDebugIndex is the human entry point: one page linking every
// diagnostic surface the process exposes.
func (s *Server) handleDebugIndex(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, `<!DOCTYPE html><html><head><title>rptcnd debug</title><style>
body{font-family:monospace;margin:2em}li{margin:0.4em 0}</style></head>
<body><h1>rptcnd debug</h1><ul>
<li><a href="/metrics">/metrics</a> — Prometheus exposition</li>
<li><a href="/debug/fleet?format=html">/debug/fleet</a> — per-entity sketches, exemplars, trace sampling (<a href="/debug/fleet">json</a>)</li>
<li><a href="/debug/quality?format=html">/debug/quality</a> — forecast accuracy, drift, SLO (<a href="/debug/quality">json</a>)</li>`)
	if s.adapt != nil {
		fmt.Fprint(w, `
<li><a href="/debug/adapt">/debug/adapt</a> — online adaptation: retrain/shadow/swap state (JSON)</li>`)
	}
	if s.rings != nil {
		fmt.Fprint(w, `
<li><a href="/debug/shards">/debug/shards</a> — per-shard occupancy, queues, latency quantiles (JSON)</li>`)
	}
	if s.tracer != nil {
		fmt.Fprint(w, `
<li><a href="/debug/traces">/debug/traces</a> — sampled span journal (JSONL)</li>`)
	}
	fmt.Fprint(w, `
<li><a href="/readyz">/readyz</a> · <a href="/healthz">/healthz</a> — probes</li>
<li><a href="/v1/model">/v1/model</a> — model metadata</li>`)
	if s.debugAddr != "" {
		h := html.EscapeString(s.debugAddr)
		fmt.Fprintf(w, `
<li><a href="http://%s/debug/pprof/">pprof sidecar</a> (%s) · <a href="http://%s/debug/vars">expvar</a></li>`, h, h, h)
	}
	fmt.Fprint(w, `
</ul></body></html>`)
}

// maxUnknownPathsLogged bounds how many distinct unknown paths are ever
// logged, so a port scan cannot flood the log.
const maxUnknownPathsLogged = 16

func (s *Server) handleNotFound(w http.ResponseWriter, r *http.Request) {
	s.unknownPaths.Inc()
	s.unknownMu.Lock()
	if !s.unknownSeen[r.URL.Path] && len(s.unknownSeen) < maxUnknownPathsLogged {
		s.unknownSeen[r.URL.Path] = true
		s.log.Warn("request for unknown path", "path", r.URL.Path, "method", r.Method)
	}
	s.unknownMu.Unlock()
	s.writeError(w, http.StatusNotFound, "not found")
}
