package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/trace"
)

// fitted returns a small fitted predictor plus the entity it trained on.
func fitted(t testing.TB) (*core.Predictor, *trace.EntitySeries) {
	t.Helper()
	e := trace.Generate(trace.GeneratorConfig{
		Entities: 1, Kind: trace.Container, Samples: 700, Seed: 1,
	})[0]
	p := core.NewPredictor(core.PredictorConfig{
		Scenario: core.MulExp, Window: 16, Horizon: 3, Epochs: 4, Seed: 2,
		Model: core.Config{Channels: []int{8, 8}, KernelSize: 3, WeightNorm: true, FCWidth: 16},
	})
	if err := p.Fit(e.Matrix(), int(trace.CPUUtilPercent)); err != nil {
		t.Fatal(err)
	}
	return p, e
}

func TestHealthz(t *testing.T) {
	p, _ := fitted(t)
	ts := httptest.NewServer(New(p))
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d", resp.StatusCode)
	}
}

func TestModelInfo(t *testing.T) {
	p, _ := fitted(t)
	ts := httptest.NewServer(New(p))
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/model")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var info ModelInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	if info.Scenario != "Mul-Exp" || info.Window != 16 || info.Horizon != 3 {
		t.Fatalf("model info = %+v", info)
	}
	if len(info.Selected) != trace.NumIndicators/2 {
		t.Fatalf("selected = %v", info.Selected)
	}
	if info.Selected[0] != "cpu_util_percent" {
		t.Fatalf("target not first: %v", info.Selected)
	}
	if info.ParamCount <= 0 || info.ReceptiveField <= 0 {
		t.Fatalf("sizes = %+v", info)
	}
}

func forecastReq(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/forecast", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestForecastHappyPath(t *testing.T) {
	p, e := fitted(t)
	ts := httptest.NewServer(New(p))
	defer ts.Close()
	// Send the tail of the training series as "fresh" history.
	tail := make([][]float64, trace.NumIndicators)
	for i := range tail {
		s := e.Metrics[i]
		tail[i] = s[len(s)-64:]
	}
	resp := forecastReq(t, ts.URL, ForecastRequest{Indicators: tail})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var out ForecastResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Forecast) != 3 || out.Horizon != 3 {
		t.Fatalf("forecast = %+v", out)
	}
	if out.Target != "cpu_util_percent" {
		t.Fatalf("target = %q", out.Target)
	}
	for _, v := range out.Forecast {
		if v < -50 || v > 150 {
			t.Fatalf("forecast value %g implausible for CPU%%", v)
		}
	}
}

func TestForecastRejectsBadRequests(t *testing.T) {
	p, _ := fitted(t)
	ts := httptest.NewServer(New(p))
	defer ts.Close()

	// Invalid JSON.
	resp, err := http.Post(ts.URL+"/v1/forecast", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON status = %d", resp.StatusCode)
	}

	// Empty indicators.
	resp = forecastReq(t, ts.URL, ForecastRequest{})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty indicators status = %d", resp.StatusCode)
	}

	// Wrong indicator count.
	resp = forecastReq(t, ts.URL, ForecastRequest{Indicators: [][]float64{{1, 2, 3}}})
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("wrong count status = %d", resp.StatusCode)
	}

	// Too-short history.
	short := make([][]float64, trace.NumIndicators)
	for i := range short {
		short[i] = []float64{1, 2}
	}
	resp = forecastReq(t, ts.URL, ForecastRequest{Indicators: short})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("short history status = %d", resp.StatusCode)
	}
	var eb struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil || eb.Error == "" {
		t.Fatalf("error body missing: %v %v", eb, err)
	}
}

func TestForecastMethodNotAllowed(t *testing.T) {
	p, _ := fitted(t)
	ts := httptest.NewServer(New(p))
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/forecast")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET forecast status = %d", resp.StatusCode)
	}
}

func TestConcurrentForecasts(t *testing.T) {
	p, e := fitted(t)
	ts := httptest.NewServer(New(p))
	defer ts.Close()
	tail := make([][]float64, trace.NumIndicators)
	for i := range tail {
		s := e.Metrics[i]
		tail[i] = s[len(s)-40:]
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp := forecastReq(t, ts.URL, ForecastRequest{Indicators: tail})
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- nil
			}
		}()
	}
	wg.Wait()
	close(errs)
	if len(errs) > 0 {
		t.Fatalf("%d concurrent requests failed", len(errs))
	}
}

func TestNewNilPredictorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for nil predictor")
		}
	}()
	New(nil)
}
