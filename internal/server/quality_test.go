package server

import (
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/obs"
	obstrace "repro/internal/obs/trace"
	"repro/internal/trace"
)

func scrape(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

func TestForecastFeedsQualityGauges(t *testing.T) {
	p, e := fitted(t)
	reg := obs.NewRegistry()
	ts := httptest.NewServer(New(p, WithRegistry(reg)))
	defer ts.Close()

	tail := make([][]float64, trace.NumIndicators)
	for i := range tail {
		s := e.Metrics[i]
		tail[i] = s[len(s)-64:]
	}
	resp := forecastReq(t, ts.URL, ForecastRequest{Indicators: tail})
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}

	// 64 samples >> MinHistory+horizon, so the backtest must have run:
	// horizon errors accumulated, gauges set.
	snaps := map[string]float64{}
	for _, s := range reg.Snapshot() {
		snaps[s.Name+s.Labels] = s.Value
	}
	if got := snaps["rptcn_serving_backtest_samples_total"]; got != float64(p.Cfg.Horizon) {
		t.Fatalf("backtest samples = %v, want %d", got, p.Cfg.Horizon)
	}
	if snaps["rptcn_serving_backtest_mae"] <= 0 {
		t.Fatalf("backtest MAE not set: %v", snaps["rptcn_serving_backtest_mae"])
	}
	if snaps["rptcn_serving_backtest_mse"] <= 0 {
		t.Fatalf("backtest MSE not set: %v", snaps["rptcn_serving_backtest_mse"])
	}
	// The signed mean error must be set and bounded by the MAE (|mean e|
	// ≤ mean |e| always).
	bias, ok := snaps["rptcn_serving_backtest_bias"]
	if !ok {
		t.Fatal("rptcn_serving_backtest_bias not registered")
	}
	if math.Abs(bias) > snaps["rptcn_serving_backtest_mae"] {
		t.Fatalf("|bias| %v exceeds MAE %v", bias, snaps["rptcn_serving_backtest_mae"])
	}
	if bias == 0 {
		// A real model backtest never lands on exactly zero signed error.
		t.Fatal("bias gauge still zero after a backtest")
	}
	// The tail comes from the training series, so it lies inside the
	// fitted bounds: the out-of-range ratio must be ~0.
	if oor := snaps["rptcn_serving_input_oor_ratio"]; oor != 0 {
		t.Fatalf("in-distribution input flagged out of range: %v", oor)
	}

	// Shifted input (scaled far beyond the training max) must raise the
	// out-of-range ratio.
	shifted := make([][]float64, len(tail))
	for i, s := range tail {
		o := make([]float64, len(s))
		for j, v := range s {
			o[j] = v*10 + 1000
		}
		shifted[i] = o
	}
	resp = forecastReq(t, ts.URL, ForecastRequest{Indicators: shifted})
	resp.Body.Close()
	for _, s := range reg.Snapshot() {
		if s.Name == "rptcn_serving_input_oor_ratio" && s.Value <= 0 {
			t.Fatalf("shifted input not flagged: %v", s.Value)
		}
	}
}

func TestShortHistorySkipsBacktest(t *testing.T) {
	p, e := fitted(t)
	reg := obs.NewRegistry()
	ts := httptest.NewServer(New(p, WithRegistry(reg)))
	defer ts.Close()

	// Just enough history to forecast (MinHistory) but not enough to
	// hide horizon samples and still fill a window.
	tail := make([][]float64, trace.NumIndicators)
	for i := range tail {
		s := e.Metrics[i]
		tail[i] = s[len(s)-p.MinHistory():]
	}
	resp := forecastReq(t, ts.URL, ForecastRequest{Indicators: tail})
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	out := scrape(t, ts.URL)
	if !strings.Contains(out, "rptcn_serving_backtest_skipped_total 1") {
		t.Fatalf("short history not counted as skipped:\n%s", grepMetric(out, "rptcn_serving_backtest"))
	}
	if !strings.Contains(out, "rptcn_serving_backtest_samples_total 0") {
		t.Fatalf("backtest ran on short history:\n%s", grepMetric(out, "rptcn_serving_backtest"))
	}
}

func grepMetric(exposition, prefix string) string {
	var b strings.Builder
	for _, line := range strings.Split(exposition, "\n") {
		if strings.HasPrefix(line, prefix) {
			b.WriteString(line)
			b.WriteString("\n")
		}
	}
	return b.String()
}

func TestUnknownPathsCollapseToOther(t *testing.T) {
	p, _ := fitted(t)
	reg := obs.NewRegistry()
	ts := httptest.NewServer(New(p, WithRegistry(reg)))
	defer ts.Close()

	for _, path := range []string{"/admin", "/wp-login.php", "/v1/nope", "/probe/9999"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s status = %d, want 404", path, resp.StatusCode)
		}
	}
	out := scrape(t, ts.URL)
	if !strings.Contains(out, `rptcn_http_requests_total{code="404",path="other"} 4`) {
		t.Fatalf("unknown paths not collapsed:\n%s", grepMetric(out, "rptcn_http_requests_total"))
	}
	for _, leaked := range []string{"wp-login", "/admin", "/probe"} {
		if strings.Contains(out, leaked) {
			t.Fatalf("raw path %q leaked into metrics", leaked)
		}
	}
}

func TestRequestSpans(t *testing.T) {
	p, _ := fitted(t)
	tracer := obstrace.New(8)
	tracer.SetEnabled(true)
	ts := httptest.NewServer(New(p, WithRegistry(obs.NewRegistry()), WithTracer(tracer)))
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	resp, err = http.Get(ts.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	traces := tracer.Traces()
	if len(traces) != 2 {
		t.Fatalf("got %d traces, want 2", len(traces))
	}
	// Most recent first.
	got := traces[0].Export()
	if got.Name != "http.request" || got.Attrs["path"] != "other" || got.Attrs["status"] != int64(404) {
		t.Fatalf("unexpected span: %+v", got)
	}
	healthy := traces[1].Export()
	if healthy.Attrs["path"] != "/healthz" || healthy.Attrs["status"] != int64(200) {
		t.Fatalf("unexpected span: %+v", healthy)
	}
}
