package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/trace"
)

// ingestCSV posts the entities' CSV serialization to /v1/ingest and
// returns the decoded response.
func ingestCSV(t *testing.T, url string, entities []*trace.EntitySeries) IngestResponse {
	t.Helper()
	var buf bytes.Buffer
	if err := trace.WriteCSV(&buf, entities); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/ingest", "text/csv", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status = %d", resp.StatusCode)
	}
	var ir IngestResponse
	if err := json.NewDecoder(resp.Body).Decode(&ir); err != nil {
		t.Fatal(err)
	}
	return ir
}

// TestIngestAndEntityForecast pins the streaming path end to end: CSV in
// via /v1/ingest, per-entity ring state visible on /v1/entities, and a
// /v1/forecast/{entity} answer bitwise identical to POSTing the same
// trailing window through the JSON path (both run the same pipeline and
// the same micro-batcher).
func TestIngestAndEntityForecast(t *testing.T) {
	p, e := fitted(t)
	srv := New(p)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	ir := ingestCSV(t, ts.URL, []*trace.EntitySeries{e})
	if ir.Rows != e.Len() || ir.Skipped != 0 || ir.Rejected != 0 || ir.Entities != 1 {
		t.Fatalf("ingest response = %+v (want %d clean rows, 1 entity)", ir, e.Len())
	}

	// Entity listing reflects ring state: the ring keeps the most recent
	// RingCapacity of the e.Len() ingested samples.
	resp, err := http.Get(ts.URL + "/v1/entities")
	if err != nil {
		t.Fatal(err)
	}
	var ents []EntityInfo
	if err := json.NewDecoder(resp.Body).Decode(&ents); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	wantSamples := srv.ingestCfg.RingCapacity
	if e.Len() < wantSamples {
		wantSamples = e.Len()
	}
	if len(ents) != 1 || ents[0].ID != e.ID || ents[0].Samples != wantSamples {
		t.Fatalf("entities = %+v (want %s with %d samples)", ents, e.ID, wantSamples)
	}

	// Entity forecast == JSON forecast over the same trailing window.
	resp, err = http.Get(ts.URL + "/v1/forecast/" + e.ID)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("entity forecast status = %d", resp.StatusCode)
	}
	var got ForecastResponse
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got.Degraded || len(got.Forecast) != p.Cfg.Horizon {
		t.Fatalf("entity forecast = %+v", got)
	}

	need := p.MinHistory()
	tail := make([][]float64, trace.NumIndicators)
	for i := range tail {
		s := e.Metrics[i]
		tail[i] = s[len(s)-need:]
	}
	resp = forecastReq(t, ts.URL, ForecastRequest{Indicators: tail})
	var want ForecastResponse
	if err := json.NewDecoder(resp.Body).Decode(&want); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	for k := range want.Forecast {
		if got.Forecast[k] != want.Forecast[k] {
			t.Fatalf("step %d: ring-backed %g != JSON-path %g", k, got.Forecast[k], want.Forecast[k])
		}
	}
}

// TestIngestRejectsReplays pins the monotonicity gate: re-ingesting the
// same CSV rejects every sample (timestamps do not advance) without
// disturbing ring state.
func TestIngestRejectsReplays(t *testing.T) {
	p, e := fitted(t)
	srv := New(p)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	ingestCSV(t, ts.URL, []*trace.EntitySeries{e})
	ir := ingestCSV(t, ts.URL, []*trace.EntitySeries{e})
	if ir.Rows != e.Len() || ir.Rejected != e.Len() || ir.Entities != 1 {
		t.Fatalf("replay ingest = %+v (want all %d rows rejected)", ir, e.Len())
	}
	if n := srv.rings.SampleCount(e.ID); n != srv.ingestCfg.RingCapacity {
		t.Fatalf("ring disturbed by replay: %d samples", n)
	}
}

// TestEntityForecastErrors pins the client-error surface of the ring
// route: unknown entities are 404, and an entity with too little history
// is a 422 (the pipeline's short-history error through inferBadInput).
func TestEntityForecastErrors(t *testing.T) {
	p, e := fitted(t)
	srv := New(p)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/forecast/no-such-entity")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown entity status = %d", resp.StatusCode)
	}

	// Two samples is far below MinHistory: known entity, unusable window.
	var vals [trace.NumIndicators]float64
	for i := range vals {
		vals[i] = e.Metrics[i][0]
	}
	srv.rings.IngestString(e.ID, 0, &vals)
	srv.rings.IngestString(e.ID, 10, &vals)
	resp, err = http.Get(ts.URL + "/v1/forecast/" + e.ID)
	if err != nil {
		t.Fatal(err)
	}
	var eb errorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("short history status = %d (%s)", resp.StatusCode, eb.Error)
	}
	if !strings.Contains(eb.Error, "samples") {
		t.Fatalf("unexpected error body: %q", eb.Error)
	}
}

// TestIngestDisabled checks WithIngest(Disabled) removes the routes.
func TestIngestDisabled(t *testing.T) {
	p, _ := fitted(t)
	ts := httptest.NewServer(New(p, WithIngest(IngestConfig{Disabled: true})))
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/v1/ingest", "text/csv", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("disabled ingest status = %d", resp.StatusCode)
	}
}

// TestIngestMalformedBody checks a fully unusable body is a 400 with the
// scanner's accounting intact.
func TestIngestMalformedBody(t *testing.T) {
	p, _ := fitted(t)
	ts := httptest.NewServer(New(p))
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/v1/ingest", "text/csv",
		strings.NewReader("not,a,trace\nstill,not,one\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed ingest status = %d", resp.StatusCode)
	}
}
