package server

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/obs"
	"repro/internal/trace"
)

func TestMetricsEndpointExposesServingMetrics(t *testing.T) {
	p, e := fitted(t)
	reg := obs.NewRegistry()
	ts := httptest.NewServer(New(p, WithRegistry(reg), WithLogger(obs.NopLogger())))
	defer ts.Close()

	// Drive every route: two forecasts, one model read, one bad request.
	tail := make([][]float64, trace.NumIndicators)
	for i := range tail {
		s := e.Metrics[i]
		tail[i] = s[len(s)-40:]
	}
	for i := 0; i < 2; i++ {
		resp := forecastReq(t, ts.URL, ForecastRequest{Indicators: tail})
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("forecast status = %d", resp.StatusCode)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/model")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	resp, err = http.Post(ts.URL+"/v1/forecast", "application/json", strings.NewReader("{bad"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		`rptcn_http_requests_total{code="200",path="/v1/forecast"} 2`,
		`rptcn_http_requests_total{code="400",path="/v1/forecast"} 1`,
		`rptcn_http_requests_total{code="200",path="/v1/model"} 1`,
		"# TYPE rptcn_forecast_latency_seconds histogram",
		"rptcn_forecast_latency_seconds_bucket",
		"rptcn_forecast_latency_seconds_count 3",
		"rptcn_http_in_flight 0",
		`rptcn_http_request_seconds_count{path="/v1/forecast"} 3`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}
}

func TestMetricsSchemaVisibleBeforeTraffic(t *testing.T) {
	p, _ := fitted(t)
	reg := obs.NewRegistry()
	srv := New(p, WithRegistry(reg))
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	// Families are pre-registered so dashboards see the schema at zero.
	for _, want := range []string{
		"rptcn_http_requests_total", "rptcn_http_in_flight", "rptcn_forecast_latency_seconds",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("pre-traffic /metrics missing %q:\n%s", want, body)
		}
	}
}

func TestConcurrentForecastsRecordConsistentMetrics(t *testing.T) {
	p, e := fitted(t)
	reg := obs.NewRegistry()
	ts := httptest.NewServer(New(p, WithRegistry(reg), WithLogger(obs.NopLogger())))
	defer ts.Close()
	tail := make([][]float64, trace.NumIndicators)
	for i := range tail {
		s := e.Metrics[i]
		tail[i] = s[len(s)-40:]
	}
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp := forecastReq(t, ts.URL, ForecastRequest{Indicators: tail})
			resp.Body.Close()
		}()
	}
	wg.Wait()
	h := reg.Histogram("rptcn_forecast_latency_seconds", "", nil)
	if h.Count() != workers {
		t.Fatalf("latency observations = %d, want %d", h.Count(), workers)
	}
	if g := reg.Gauge("rptcn_http_in_flight", "").Value(); g != 0 {
		t.Fatalf("in-flight after drain = %g", g)
	}
	if q := h.Quantile(0.99); q <= 0 {
		t.Fatalf("p99 latency = %g", q)
	}
}
