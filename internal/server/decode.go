package server

import (
	"bytes"
	"encoding/json"
	"strconv"
	"unsafe"
)

// Fast path for the /v1/forecast request body. The body is one shape —
// {"indicators": [[...],[...]]} — and decoding it through encoding/json
// reflection costs more than the model forward it feeds, so the hot
// parser below scans the bytes directly and hands each number token to
// strconv.ParseFloat (the same routine encoding/json uses, so values are
// bitwise identical). Anything unexpected — escapes in the key, unknown
// fields, nulls, malformed numbers — falls back to encoding/json, which
// stays the single source of truth for error behavior.

// decodeForecastRequest parses body into req, preferring the scanning
// fast path and falling back to encoding/json when the body is not the
// canonical shape.
func decodeForecastRequest(body []byte, req *ForecastRequest) error {
	if fastParseForecast(body, req) {
		return nil
	}
	req.Indicators = nil
	// Decoder (not Unmarshal) keeps the historical behavior of ignoring
	// trailing data after the top-level object.
	return json.NewDecoder(bytes.NewReader(body)).Decode(req)
}

// fastParseForecast attempts the strict canonical parse. It reports
// false — leaving req in an undefined state — whenever the body deviates
// from {"indicators": [[number...]...]} with plain whitespace.
func fastParseForecast(body []byte, req *ForecastRequest) bool {
	p := &fastParser{buf: body}
	p.ws()
	if !p.lit('{') {
		return false
	}
	p.ws()
	if !p.key("indicators") {
		return false
	}
	p.ws()
	if !p.lit(':') {
		return false
	}
	p.ws()
	rows, ok := p.rows()
	if !ok {
		return false
	}
	p.ws()
	if !p.lit('}') {
		return false
	}
	p.ws()
	if p.pos != len(p.buf) {
		return false // trailing bytes: let encoding/json decide
	}
	req.Indicators = rows
	return true
}

type fastParser struct {
	buf []byte
	pos int
}

func (p *fastParser) ws() {
	for p.pos < len(p.buf) {
		switch p.buf[p.pos] {
		case ' ', '\t', '\r', '\n':
			p.pos++
		default:
			return
		}
	}
}

func (p *fastParser) lit(c byte) bool {
	if p.pos < len(p.buf) && p.buf[p.pos] == c {
		p.pos++
		return true
	}
	return false
}

// key matches a quoted object key with no escape sequences.
func (p *fastParser) key(name string) bool {
	n := len(name)
	if p.pos+n+2 > len(p.buf) || p.buf[p.pos] != '"' || p.buf[p.pos+n+1] != '"' {
		return false
	}
	if string(p.buf[p.pos+1:p.pos+n+1]) != name {
		return false
	}
	p.pos += n + 2
	return true
}

// rows parses the array-of-arrays of numbers.
func (p *fastParser) rows() ([][]float64, bool) {
	if !p.lit('[') {
		return nil, false
	}
	p.ws()
	if p.lit(']') {
		return [][]float64{}, true
	}
	var rows [][]float64
	for {
		row, ok := p.row()
		if !ok {
			return nil, false
		}
		rows = append(rows, row)
		p.ws()
		if p.lit(',') {
			p.ws()
			continue
		}
		if p.lit(']') {
			return rows, true
		}
		return nil, false
	}
}

func (p *fastParser) row() ([]float64, bool) {
	if !p.lit('[') {
		return nil, false
	}
	p.ws()
	if p.lit(']') {
		return []float64{}, true
	}
	var row []float64
	for {
		v, ok := p.number()
		if !ok {
			return nil, false
		}
		row = append(row, v)
		p.ws()
		if p.lit(',') {
			p.ws()
			continue
		}
		if p.lit(']') {
			return row, true
		}
		return nil, false
	}
}

// number scans one token matching the JSON number grammar and converts
// it with strconv.ParseFloat. The grammar check runs first: ParseFloat
// alone is laxer than JSON (it takes "Inf", "NaN", hex floats, a leading
// "+"), and those must keep failing exactly as encoding/json fails them.
func (p *fastParser) number() (float64, bool) {
	start := p.pos
	p.lit('-')
	// Integer part: one 0, or a nonzero digit followed by digits.
	switch {
	case p.lit('0'):
	case p.digit():
		for p.digit() {
		}
	default:
		return 0, false
	}
	if p.lit('.') {
		if !p.digit() {
			return 0, false
		}
		for p.digit() {
		}
	}
	if p.pos < len(p.buf) && (p.buf[p.pos] == 'e' || p.buf[p.pos] == 'E') {
		p.pos++
		if p.pos < len(p.buf) && (p.buf[p.pos] == '+' || p.buf[p.pos] == '-') {
			p.pos++
		}
		if !p.digit() {
			return 0, false
		}
		for p.digit() {
		}
	}
	// Zero-copy string view: ParseFloat does not retain its argument, so
	// aliasing the request buffer is safe and skips one allocation per
	// number — the bulk of the parse cost for long histories.
	tok := p.buf[start:p.pos]
	v, err := strconv.ParseFloat(unsafe.String(&tok[0], len(tok)), 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

func (p *fastParser) digit() bool {
	if p.pos < len(p.buf) && p.buf[p.pos] >= '0' && p.buf[p.pos] <= '9' {
		p.pos++
		return true
	}
	return false
}
