package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/adapt"
	"repro/internal/obs"
	obstrace "repro/internal/obs/trace"
	"repro/internal/quality"
	"repro/internal/trace"
)

// fleetServer builds a fully-wired server — tracer with tail sampling,
// quality engine with an SLO rule, fleet sketches — the configuration
// /debug/fleet is designed around.
func fleetServer(t testing.TB) (*Server, *httptest.Server, [][]float64) {
	t.Helper()
	p, e := fitted(t)
	tr := obstrace.New(64)
	tr.SetEnabled(true)
	tr.SetTailSampling(&obstrace.TailSampleConfig{KeepEvery: 4})
	rules, err := quality.ParseRules("mae<=1000")
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	obs.RegisterRuntimeMetrics(reg)
	s := New(p, WithRegistry(reg), WithTracer(tr),
		WithQualityConfig(quality.Config{Rules: rules}),
		WithFleetTelemetry(FleetConfig{K: 8}),
		// Adaptation on, so the rptcn_adapt_* metric family is covered
		// by the promlint self-check below.
		WithAdaptation(adapt.Config{}),
		WithDebugAddr("127.0.0.1:6060"))
	ts := httptest.NewServer(s)
	t.Cleanup(func() { ts.Close(); s.Close() })
	tail := make([][]float64, trace.NumIndicators)
	for i := range tail {
		m := e.Metrics[i]
		tail[i] = m[len(m)-64:]
	}
	return s, ts, tail
}

func postForecast(t testing.TB, url, entity string, tail [][]float64) {
	t.Helper()
	tt := int64(1000)
	raw, _ := json.Marshal(ForecastRequest{Indicators: tail, Entity: entity, T: &tt})
	resp, err := http.Post(url+"/v1/forecast", "application/json", strings.NewReader(string(raw)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("forecast for %s: status %d", entity, resp.StatusCode)
	}
}

func TestDebugFleetEndpoint(t *testing.T) {
	_, ts, tail := fleetServer(t)
	entities := []string{"m_1", "m_1", "m_1", "m_2", "m_2", "m_3"}
	for _, e := range entities {
		postForecast(t, ts.URL, e, tail)
	}

	resp, err := http.Get(ts.URL + "/debug/fleet")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fleet status = %d", resp.StatusCode)
	}
	var st FleetStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Fleet.Requests != uint64(len(entities)) {
		t.Fatalf("requests = %d, want %d", st.Fleet.Requests, len(entities))
	}
	if len(st.Fleet.TopByCount) == 0 || st.Fleet.TopByCount[0].Key != "m_1" {
		t.Fatalf("top by count = %+v, want m_1 first", st.Fleet.TopByCount)
	}
	if len(st.Fleet.Entities) != 3 {
		t.Fatalf("entities = %+v, want 3", st.Fleet.Entities)
	}
	for _, es := range st.Fleet.Entities {
		q := es.Latency
		if q.Count == 0 || q.P50 <= 0 || q.P50 > q.P99 || q.P99 > q.Max {
			t.Fatalf("entity %s quantiles malformed: %+v", es.Entity, q)
		}
	}
	// Exemplars must link to traces the tracer retained IDs for.
	if len(st.Exemplars) == 0 {
		t.Fatal("no latency exemplars after forecasts")
	}
	for _, ex := range st.Exemplars {
		if !strings.HasPrefix(ex.Exemplar.TraceID, "t") {
			t.Fatalf("exemplar without trace ID: %+v", ex)
		}
		if ex.Exemplar.Entity == "" {
			t.Fatalf("exemplar without entity: %+v", ex)
		}
	}
	if st.TraceSampling == nil {
		t.Fatal("trace sampling stats missing with tracing on")
	}
	total := st.TraceSampling.KeptMarked + st.TraceSampling.KeptSlow +
		st.TraceSampling.KeptSampled + st.TraceSampling.Dropped
	if total < uint64(len(entities)) {
		t.Fatalf("sampling decisions %d < requests %d: traces vanished silently", total, len(entities))
	}

	// HTML rendering of the same endpoint.
	resp, err = http.Get(ts.URL + "/debug/fleet?format=html")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/html") {
		t.Fatalf("content type = %q", ct)
	}
	if !strings.Contains(string(body), "m_1") || !strings.Contains(string(body), "entities") {
		t.Fatalf("fleet HTML missing content:\n%s", body)
	}
}

func TestDebugFleetDisabled(t *testing.T) {
	p, _ := fitted(t)
	s := New(p, WithRegistry(obs.NewRegistry()), WithFleetTelemetry(FleetConfig{Disabled: true}))
	defer s.Close()
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/fleet", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("disabled fleet status = %d, want 404", rec.Code)
	}
}

func TestDebugIndexLinksEverySurface(t *testing.T) {
	_, ts, _ := fleetServer(t)
	for _, path := range []string{"/debug", "/debug/"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d", path, resp.StatusCode)
		}
		for _, want := range []string{"/metrics", "/debug/fleet", "/debug/quality",
			"/debug/traces", "/readyz", "pprof"} {
			if !strings.Contains(string(body), want) {
				t.Fatalf("debug index missing link %q:\n%s", want, body)
			}
		}
	}
}

// TestServerMetricsPromlintClean is the exposition-hygiene self-check:
// every metric a fully-loaded server registers — after traffic on every
// route, including degraded and unknown-path requests — must render a
// promlint-clean /metrics document.
func TestServerMetricsPromlintClean(t *testing.T) {
	s, ts, tail := fleetServer(t)
	postForecast(t, ts.URL, "m_1", tail)
	for _, path := range []string{"/healthz", "/readyz", "/v1/model", "/debug/quality",
		"/debug/fleet", "/debug", "/no/such/path", "/metrics"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	if probs := s.Registry().Lint(); len(probs) != 0 {
		t.Fatalf("exposition not promlint-clean:\n  %s", strings.Join(probs, "\n  "))
	}
}

func TestUnknownPathCounterAndBoundedLog(t *testing.T) {
	s, ts, _ := fleetServer(t)
	const n = maxUnknownPathsLogged + 5
	for i := 0; i < n; i++ {
		resp, err := http.Get(fmt.Sprintf("%s/scan/%d", ts.URL, i))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("unknown path status = %d", resp.StatusCode)
		}
	}
	if got := s.unknownPaths.Value(); got != n {
		t.Fatalf("rptcn_http_unknown_paths_total = %g, want %d", got, n)
	}
	s.unknownMu.Lock()
	logged := len(s.unknownSeen)
	s.unknownMu.Unlock()
	if logged != maxUnknownPathsLogged {
		t.Fatalf("distinct paths logged = %d, want cap %d", logged, maxUnknownPathsLogged)
	}
}

// TestScrapeVsFleetRecordRace runs /metrics scrapes and /debug/fleet
// reads against live forecast traffic. Run under -race: the assertions
// are secondary to the detector.
func TestScrapeVsFleetRecordRace(t *testing.T) {
	_, ts, tail := fleetServer(t)
	const writers, perWriter = 4, 10
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				postForecast(t, ts.URL, fmt.Sprintf("m_%d", w*perWriter+i), tail)
			}
		}(w)
	}
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for _, path := range []string{"/metrics", "/debug/fleet", "/debug/fleet?format=html"} {
		readers.Add(1)
		go func(path string) {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(ts.URL + path)
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(path)
	}
	wg.Wait()
	close(stop)
	readers.Wait()

	resp, err := http.Get(ts.URL + "/debug/fleet")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st FleetStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Fleet.Requests != writers*perWriter {
		t.Fatalf("requests = %d, want %d", st.Fleet.Requests, writers*perWriter)
	}
}
