package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/obs/runlog"
	"repro/internal/quality"
	"repro/internal/trace"
)

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func getQualityStatus(t *testing.T, url string) quality.StatusReport {
	t.Helper()
	resp, err := http.Get(url + "/debug/quality")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/quality status = %d", resp.StatusCode)
	}
	var st quality.StatusReport
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func TestReadyzLifecycle(t *testing.T) {
	p, _ := fitted(t)
	s := New(p, WithRegistry(obs.NewRegistry()))
	ts := httptest.NewServer(s)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz on live server = %d, want 200", resp.StatusCode)
	}
	// Wrong method keeps 405 semantics.
	resp, err = http.Post(ts.URL+"/readyz", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /readyz = %d, want 405", resp.StatusCode)
	}

	s.Close()
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz after Close = %d, want 503", resp.StatusCode)
	}
	// Liveness is about the process, not the model: still 200.
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after Close = %d, want 200", resp.StatusCode)
	}
}

func TestReadyzUnfittedModel(t *testing.T) {
	// A predictor without a loaded model serves probes and metadata but
	// must report unready.
	p := core.NewPredictor(core.PredictorConfig{
		Scenario: core.MulExp, Window: 16, Horizon: 3,
	})
	s := New(p, WithRegistry(obs.NewRegistry()))
	defer s.Close()
	ts := httptest.NewServer(s)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz with no model = %d, want 503", resp.StatusCode)
	}
}

// TestObserveJoinOverHTTP: forecasts tagged with (entity, t) resolve
// against ground truth posted to /v1/observe, and the result shows up on
// /debug/quality.
func TestObserveJoinOverHTTP(t *testing.T) {
	p, e := fitted(t)
	s := New(p, WithRegistry(obs.NewRegistry()))
	defer s.Close()
	ts := httptest.NewServer(s)
	defer ts.Close()

	tail := make([][]float64, trace.NumIndicators)
	for i := range tail {
		srs := e.Metrics[i]
		tail[i] = srs[len(srs)-64:]
	}
	tEnd := int64(e.Len() - 1)
	resp := forecastReq(t, ts.URL, ForecastRequest{Indicators: tail, Entity: "c1", T: &tEnd})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("forecast status = %d", resp.StatusCode)
	}
	var out ForecastResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}

	// No ground truth yet: the horizon's forecasts are pending.
	st := getQualityStatus(t, ts.URL)
	if st.Pending != p.Cfg.Horizon || st.Resolved != 0 {
		t.Fatalf("before observe: pending=%d resolved=%d", st.Pending, st.Resolved)
	}

	// Post actuals for the forecast target times.
	actuals := []float64{30, 40, 50}
	oResp := postJSON(t, ts.URL+"/v1/observe", ObserveRequest{Entity: "c1", T0: tEnd + 1, Values: actuals})
	defer oResp.Body.Close()
	if oResp.StatusCode != http.StatusAccepted {
		t.Fatalf("observe status = %d", oResp.StatusCode)
	}

	st = getQualityStatus(t, ts.URL)
	if st.Resolved != uint64(p.Cfg.Horizon) || st.Pending != 0 {
		t.Fatalf("after observe: %+v", st)
	}
	if len(st.Entities) != 1 || st.Entities[0].Entity != "c1" {
		t.Fatalf("entities = %+v", st.Entities)
	}
	// Per-step windows carry exactly one pair each, with the error the
	// forecast/actual pair implies.
	for k, step := range st.Steps {
		if step.Count != 1 {
			t.Fatalf("step %d count = %d", k+1, step.Count)
		}
		want := out.Forecast[k] - actuals[k]
		if step.Bias != want {
			t.Fatalf("step %d bias = %v, want %v", k+1, step.Bias, want)
		}
	}

	// A second forecast whose history overlaps pending targets self-joins
	// without an explicit observe.
	resp2 := forecastReq(t, ts.URL, ForecastRequest{Indicators: tail, Entity: "c1", T: &tEnd})
	resp2.Body.Close()
	st = getQualityStatus(t, ts.URL)
	if st.Pending != p.Cfg.Horizon {
		t.Fatalf("re-forecast should re-pend the horizon: %+v", st.Pending)
	}
	tEnd3 := tEnd + 3
	hist3 := make([][]float64, len(tail))
	for i := range hist3 {
		hist3[i] = append(append([]float64(nil), tail[i][3:]...), 30, 40, 50)
	}
	resp3 := forecastReq(t, ts.URL, ForecastRequest{Indicators: hist3, Entity: "c1", T: &tEnd3})
	resp3.Body.Close()
	st = getQualityStatus(t, ts.URL)
	if st.Resolved != uint64(2*p.Cfg.Horizon) {
		t.Fatalf("self-join did not resolve: %+v", st)
	}

	// Bad observe payloads are client errors.
	bad := postJSON(t, ts.URL+"/v1/observe", ObserveRequest{Entity: "c1", T0: 0})
	bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty observe = %d, want 400", bad.StatusCode)
	}
}

func TestDebugQualityHTML(t *testing.T) {
	p, _ := fitted(t)
	s := New(p, WithRegistry(obs.NewRegistry()))
	defer s.Close()
	ts := httptest.NewServer(s)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/debug/quality?format=html")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Fatalf("content type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"forecast quality", "drift", "accuracy"} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("HTML missing %q:\n%s", want, body)
		}
	}
}

// TestMetricNameHygiene exercises every endpoint, then asserts the whole
// registry obeys the naming contract and stays within a bounded series
// cardinality per family.
func TestMetricNameHygiene(t *testing.T) {
	p, e := fitted(t)
	reg := obs.NewRegistry()
	obs.RegisterRuntimeMetrics(reg)
	rules, err := quality.ParseRules("mae<=1000, p90_abs_err<=2000@64")
	if err != nil {
		t.Fatal(err)
	}
	s := New(p, WithRegistry(reg), WithQualityConfig(quality.Config{Rules: rules}))
	defer s.Close()
	ts := httptest.NewServer(s)
	defer ts.Close()

	tail := make([][]float64, trace.NumIndicators)
	for i := range tail {
		srs := e.Metrics[i]
		tail[i] = srs[len(srs)-64:]
	}
	tEnd := int64(e.Len() - 1)
	for _, req := range []any{
		ForecastRequest{Indicators: tail, Entity: "m1", T: &tEnd},
		ForecastRequest{Indicators: tail},
	} {
		resp := forecastReq(t, ts.URL, req)
		resp.Body.Close()
	}
	resp := postJSON(t, ts.URL+"/v1/observe", ObserveRequest{Entity: "m1", T0: tEnd + 1, Values: []float64{1, 2, 3}})
	resp.Body.Close()
	for _, path := range []string{"/healthz", "/readyz", "/v1/model", "/debug/quality", "/nope"} {
		r, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
	}
	scrape(t, ts.URL)

	nameRE := regexp.MustCompile(`^rptcn_[a-z0-9_]+$`)
	perFamily := map[string]int{}
	for _, snap := range reg.Snapshot() {
		if !nameRE.MatchString(snap.Name) {
			t.Errorf("metric %q violates ^rptcn_[a-z0-9_]+$", snap.Name)
		}
		perFamily[snap.Name]++
	}
	if len(perFamily) == 0 {
		t.Fatal("no metrics registered")
	}
	// Bounded cardinality: no family may mint unbounded series. The
	// largest legitimate families are per-route HTTP metrics and
	// per-step/per-entity quality gauges, all well under this cap.
	const maxSeries = 40
	for name, n := range perFamily {
		if n > maxSeries {
			t.Errorf("family %s has %d series (cap %d)", name, n, maxSeries)
		}
	}
}

// TestServerCloseShutsDownQuality proves the engine's worker goroutine
// shuts down cleanly (run under -race in CI): double Close, requests
// after Close, and scrapes after Close must all be safe.
func TestServerCloseShutsDownQuality(t *testing.T) {
	p, e := fitted(t)
	reg := obs.NewRegistry()
	s := New(p, WithRegistry(reg))
	ts := httptest.NewServer(s)
	defer ts.Close()

	tail := make([][]float64, trace.NumIndicators)
	for i := range tail {
		srs := e.Metrics[i]
		tail[i] = srs[len(srs)-64:]
	}
	tEnd := int64(e.Len() - 1)
	resp := forecastReq(t, ts.URL, ForecastRequest{Indicators: tail, Entity: "m1", T: &tEnd})
	resp.Body.Close()

	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// The status surface answers (zero report) instead of hanging.
	st := getQualityStatus(t, ts.URL)
	if st.Resolved != 0 {
		t.Fatalf("post-close status = %+v", st)
	}
	// Metric scrapes must not deadlock on the stopped worker.
	scrape(t, ts.URL)
	// Ground truth posted after Close is discarded, not a crash.
	oResp := postJSON(t, ts.URL+"/v1/observe", ObserveRequest{Entity: "m1", T0: tEnd + 1, Values: []float64{1}})
	oResp.Body.Close()
	if oResp.StatusCode != http.StatusAccepted {
		t.Fatalf("observe after close = %d", oResp.StatusCode)
	}
}

// TestQualitySmoke is the end-to-end drill the CI quality-smoke job
// runs: train a tiny model on the pre-mutation segment, serve it, replay
// the mutated trace as tagged forecast requests, and assert the mutation
// detector and the input drift alarm both fire and land in the journal.
func TestQualitySmoke(t *testing.T) {
	const mutationAt = 400
	e := trace.GenerateWithMutation(700, mutationAt, 13)
	train := make([][]float64, trace.NumIndicators)
	for i, srs := range e.Matrix() {
		train[i] = srs[:350]
	}
	p := core.NewPredictor(core.PredictorConfig{
		Scenario: core.MulExp, Window: 16, Horizon: 3, Epochs: 2, Seed: 2,
		Model: core.Config{Channels: []int{8, 8}, KernelSize: 3, WeightNorm: true, FCWidth: 16},
	})
	if err := p.Fit(train, int(trace.CPUUtilPercent)); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	journal := runlog.New(&buf)
	s := New(p,
		WithRegistry(obs.NewRegistry()),
		WithJournal(journal),
		WithQualityConfig(quality.Config{
			// Alpha 0.25 lets the level track the trace's diurnal wander
			// (which the production default 1/32 is too slow for at this
			// compressed replay cadence) while the +35 step still fires.
			Mutation:   quality.MutationConfig{MedianWidth: 5, Warmup: 16, Cooldown: 8, Alpha: 0.25},
			InputDrift: quality.DriftConfig{Baseline: 16, Alpha: 0.5, MinStd: 0.02},
		}),
	)
	ts := httptest.NewServer(s)
	defer ts.Close()

	// Replay: sliding 64-sample windows every 2 samples across the
	// mutation, tagged with entity and sample time so forecasts pend and
	// self-join as the window slides forward.
	for tt := 280; tt <= 520; tt += 2 {
		hist := make([][]float64, trace.NumIndicators)
		for i, srs := range e.Matrix() {
			hist[i] = srs[tt-63 : tt+1]
		}
		tEnd := int64(tt)
		resp := forecastReq(t, ts.URL, ForecastRequest{Indicators: hist, Entity: "m1", T: &tEnd})
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("t=%d status = %d", tt, resp.StatusCode)
		}
	}

	st := getQualityStatus(t, ts.URL)
	if st.Resolved == 0 || st.Aggregate.MAE <= 0 {
		t.Fatalf("no resolved pairs: %+v", st.Aggregate)
	}
	if len(st.Entities) != 1 {
		t.Fatalf("entities = %+v", st.Entities)
	}
	fires := st.Entities[0].InputMutations
	if len(fires) == 0 {
		t.Fatal("input mutation detector never fired")
	}
	for _, f := range fires {
		// Detection must land at/after the injected point, within two
		// detector windows (2·5 requests · 2 samples) plus the input
		// window ramp (the window mean responds over MinHistory samples).
		lo, hi := int64(mutationAt), int64(mutationAt+2*5*2+p.MinHistory())
		if f < lo || f > hi {
			t.Fatalf("mutation fire at t=%d outside [%d,%d]", f, lo, hi)
		}
	}
	if st.InputDrift.State != "alarm" {
		t.Fatalf("input drift state = %q, want alarm (post-mutation inputs leave the training bounds)", st.InputDrift.State)
	}

	s.Close()
	if err := journal.Close(); err != nil {
		t.Fatal(err)
	}
	events, err := runlog.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	sawMutation, sawAlarm := false, false
	for _, ev := range events {
		if ev.Type != runlog.TypeDrift {
			continue
		}
		switch ev.Data["kind"] {
		case "mutation":
			sawMutation = true
		case "level":
			if ev.Data["state"] == "alarm" {
				sawAlarm = true
			}
		}
	}
	if !sawMutation || !sawAlarm {
		t.Fatalf("journal missing drift events (mutation=%v alarm=%v) in %d events",
			sawMutation, sawAlarm, len(events))
	}
}
