package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/obs"
)

// newTestBatcher builds a batcher against its own registry for direct
// (non-HTTP) collector tests.
func newTestBatcher(p *core.Predictor, cfg BatchConfig) (*batcher, *obs.Registry) {
	reg := obs.NewRegistry()
	panics := reg.Counter("rptcn_panics_recovered_total", "")
	return newBatcher(p, cfg, 64, reg, obs.NopLogger(), panics), reg
}

// TestBatcherCoalescesConcurrentRequests submits 8 requests while the
// collector waits out a generous MaxDelay, and demands they fuse into a
// single batch whose per-request answers are bitwise identical to the
// unbatched serving path.
func TestBatcherCoalescesConcurrentRequests(t *testing.T) {
	p, e := fitted(t)
	tail := tailOf(e, 64)
	want, err := p.ForecastFrom(tail)
	if err != nil {
		t.Fatal(err)
	}
	b, reg := newTestBatcher(p, BatchConfig{MaxBatch: 8, MaxDelay: 500 * time.Millisecond})
	defer b.close()

	const n = 8
	resps := make([]batchResp, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			in, err := p.PrepareInput(tail)
			if err != nil {
				resps[i] = batchResp{err: err}
				return
			}
			resps[i] = b.submit(in)
		}(i)
	}
	wg.Wait()

	for i, r := range resps {
		if r.err != nil || r.panicked {
			t.Fatalf("request %d failed: err=%v panicked=%v", i, r.err, r.panicked)
		}
		for j := range want {
			if r.forecast[j] != want[j] {
				t.Fatalf("request %d drifted from solo forecast: %v vs %v", i, r.forecast, want)
			}
		}
	}
	sizes := reg.Histogram("rptcn_batch_size_requests", "", nil)
	if sizes.Count() != 1 || sizes.Sum() != n {
		t.Fatalf("expected one fused batch of %d, got %d batches totalling %g requests",
			n, sizes.Count(), sizes.Sum())
	}
	if d := reg.Gauge("rptcn_batch_queue_depth", "").Value(); d != 0 {
		t.Fatalf("queue depth = %g after all requests answered, want 0", d)
	}
	if c := reg.Histogram("rptcn_batch_delay_seconds", "", nil).Count(); c != n {
		t.Fatalf("batching delay observed for %d requests, want %d", c, n)
	}
}

// TestBatcherPanicPoisonsBatchOnce injects one model panic under a fused
// batch: every member must report it (each request degrades at its own
// call site), but the panic counter ticks exactly once.
func TestBatcherPanicPoisonsBatchOnce(t *testing.T) {
	p, e := fitted(t)
	tail := tailOf(e, 64)
	b, reg := newTestBatcher(p, BatchConfig{MaxBatch: 4, MaxDelay: 500 * time.Millisecond})
	defer b.close()

	inj := fault.NewInjector(fault.Rule{Scope: "model.forward", Kind: fault.KindPanic, Times: 1})
	defer fault.Activate(inj)()

	const n = 4
	resps := make([]batchResp, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			in, err := p.PrepareInput(tail)
			if err != nil {
				resps[i] = batchResp{err: err}
				return
			}
			resps[i] = b.submit(in)
		}(i)
	}
	wg.Wait()

	for i, r := range resps {
		if r.err != nil {
			t.Fatalf("request %d: unexpected error %v", i, r.err)
		}
		if !r.panicked {
			t.Fatalf("request %d not marked panicked after batch-wide model panic", i)
		}
	}
	if got := reg.Counter("rptcn_panics_recovered_total", "").Value(); got != 1 {
		t.Fatalf("panics recovered = %g, want exactly 1 for one fused batch", got)
	}
	if inj.Fired("model.forward") != 1 {
		t.Fatal("injected model panic never fired")
	}
}

// TestBatcherCloseAnswersInFlight: close is idempotent and a submit after
// close gets ErrServerClosed instead of blocking forever.
func TestBatcherCloseAnswersInFlight(t *testing.T) {
	p, e := fitted(t)
	in, err := p.PrepareInput(tailOf(e, 64))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := newTestBatcher(p, BatchConfig{})
	b.close()
	b.close() // idempotent
	if resp := b.submit(in); !errors.Is(resp.err, ErrServerClosed) {
		t.Fatalf("submit after close: err = %v, want ErrServerClosed", resp.err)
	}
	srv := New(p, WithRegistry(obs.NewRegistry()), WithLogger(obs.NopLogger()))
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentForecastsBitwiseEqualUnderBatching drives the full HTTP
// path with many concurrent identical requests and demands every response
// carry the exact same forecast as a solo warm-up request — micro-batching
// must be invisible in the payload.
func TestConcurrentForecastsBitwiseEqualUnderBatching(t *testing.T) {
	p, e := fitted(t)
	ts := httptest.NewServer(New(p, WithRegistry(obs.NewRegistry()), WithLogger(obs.NopLogger())))
	defer ts.Close()
	tail := tailOf(e, 64)

	solo := decodeForecast(t, forecastReq(t, ts.URL, ForecastRequest{Indicators: tail}))
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp := forecastReq(t, ts.URL, ForecastRequest{Indicators: tail})
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("status %d", resp.StatusCode)
				return
			}
			var out ForecastResponse
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				errs <- err
				return
			}
			if out.Degraded {
				errs <- errors.New("healthy request served degraded")
				return
			}
			for i := range solo.Forecast {
				if out.Forecast[i] != solo.Forecast[i] {
					errs <- fmt.Errorf("batched forecast drifted: %v vs %v", out.Forecast, solo.Forecast)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestRaggedIndicatorsRejected400: indicator rows of unequal length are a
// malformed payload — rejected up front as a client error, never reaching
// the model path (no degradation, no breaker charge).
func TestRaggedIndicatorsRejected400(t *testing.T) {
	p, e := fitted(t)
	reg := obs.NewRegistry()
	ts := httptest.NewServer(New(p, WithRegistry(reg), WithLogger(obs.NopLogger())))
	defer ts.Close()

	ragged := tailOf(e, 64)
	ragged[1] = ragged[1][:7] // one series shorter than the rest

	resp := forecastReq(t, ts.URL, ForecastRequest{Indicators: ragged})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("ragged indicators status = %d, want 400", resp.StatusCode)
	}
	var eb struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil || eb.Error == "" {
		t.Fatalf("error body missing: %+v %v", eb, err)
	}
	sum := 0.0
	for _, reason := range degradeReasons {
		sum += counterVal(reg, degradedName, obs.L("reason", reason))
	}
	if sum != 0 {
		t.Fatalf("malformed payload counted as degraded forecast: %v", sum)
	}
	if got := counterVal(reg, "rptcn_panics_recovered_total"); got != 0 {
		t.Fatalf("malformed payload caused a recovered panic: %v", got)
	}
}

// benchServing drives b.N forecast requests through ServeHTTP from 32
// concurrent workers and reports throughput plus p50/p99 request latency.
func benchServing(b *testing.B, opts ...Option) {
	p, e := fitted(b)
	opts = append(opts, WithRegistry(obs.NewRegistry()), WithLogger(obs.NopLogger()))
	srv := New(p, opts...)
	defer srv.Close()
	raw, err := json.Marshal(ForecastRequest{Indicators: tailOf(e, 64)})
	if err != nil {
		b.Fatal(err)
	}

	const workers = 32
	lat := make([]time.Duration, b.N)
	var next atomic.Int64
	b.ResetTimer()
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= b.N {
					return
				}
				req := httptest.NewRequest(http.MethodPost, "/v1/forecast", bytes.NewReader(raw))
				req.Header.Set("Content-Type", "application/json")
				rr := httptest.NewRecorder()
				t0 := time.Now()
				srv.ServeHTTP(rr, req)
				lat[i] = time.Since(t0)
				if rr.Code != http.StatusOK {
					b.Errorf("status %d", rr.Code)
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	b.StopTimer()
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	b.ReportMetric(float64(b.N)/elapsed.Seconds(), "req/s")
	b.ReportMetric(float64(lat[len(lat)/2].Nanoseconds()), "p50-ns")
	b.ReportMetric(float64(lat[len(lat)*99/100].Nanoseconds()), "p99-ns")
}

// BenchmarkForecastServingSerial is the unfused baseline: MaxBatch 1
// forces one forward per request through the same pipeline.
func BenchmarkForecastServingSerial(b *testing.B) {
	benchServing(b, WithBatching(BatchConfig{MaxBatch: 1, MaxDelay: time.Millisecond}))
}

// BenchmarkForecastServingBatched is the default micro-batched path at
// concurrency 32.
func BenchmarkForecastServingBatched(b *testing.B) {
	benchServing(b)
}
