package server

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/trace"
)

// tailOf returns the last n samples of every indicator series — a valid
// forecast request body derived from the entity the predictor trained on.
func tailOf(e *trace.EntitySeries, n int) [][]float64 {
	out := make([][]float64, trace.NumIndicators)
	for i := range out {
		s := e.Metrics[i]
		out[i] = s[len(s)-n:]
	}
	return out
}

// counterVal reads a counter from the registry (the families under test
// are all pre-registered by New, so the help string is irrelevant).
func counterVal(reg *obs.Registry, name string, labels ...obs.Label) float64 {
	return reg.Counter(name, "", labels...).Value()
}

func decodeForecast(t *testing.T, resp *http.Response) ForecastResponse {
	t.Helper()
	defer resp.Body.Close()
	var out ForecastResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode forecast response: %v", err)
	}
	return out
}

// waitFor polls cond until it holds or the deadline passes; counters on
// the 499 path are updated after the client has already gone away, so
// assertions there must tolerate a small scheduling delay.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestPanicDuringInferenceDegrades: an injected panic inside the
// inference goroutine must not crash the process or 500 the request —
// the client gets a 200 with a last-value fallback flagged degraded, and
// the panic and degradation are both accounted for.
func TestPanicDuringInferenceDegrades(t *testing.T) {
	p, e := fitted(t)
	reg := obs.NewRegistry()
	ts := httptest.NewServer(New(p, WithRegistry(reg), WithLogger(obs.NopLogger())))
	defer ts.Close()
	tail := tailOf(e, 64)

	inj := fault.NewInjector(fault.Rule{Scope: "server.forecast", Kind: fault.KindPanic, Times: 1})
	defer fault.Activate(inj)()

	resp := forecastReq(t, ts.URL, ForecastRequest{Indicators: tail})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200 (degraded)", resp.StatusCode)
	}
	out := decodeForecast(t, resp)
	if !out.Degraded {
		t.Fatal("response not flagged degraded after inference panic")
	}
	if len(out.Forecast) != p.Cfg.Horizon || out.Horizon != p.Cfg.Horizon {
		t.Fatalf("degraded forecast shape = %+v", out)
	}
	// The fallback is a persistence forecast from the request's own
	// target history: the last observed value, repeated.
	last := tail[p.SelectedIndicators()[0]]
	want := last[len(last)-1]
	for _, v := range out.Forecast {
		if v != want {
			t.Fatalf("fallback forecast = %v, want repeated last value %g", out.Forecast, want)
		}
	}
	if got := counterVal(reg, degradedName, obs.L("reason", "panic")); got != 1 {
		t.Fatalf("degraded{reason=panic} = %v, want 1", got)
	}
	if got := counterVal(reg, "rptcn_panics_recovered_total"); got != 1 {
		t.Fatalf("panics recovered = %v, want 1", got)
	}
	if inj.Fired("server.forecast") != 1 {
		t.Fatal("injected panic never fired")
	}

	// The injection is exhausted: the next request is served by the model.
	resp = forecastReq(t, ts.URL, ForecastRequest{Indicators: tail})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-fault status = %d", resp.StatusCode)
	}
	if out := decodeForecast(t, resp); out.Degraded {
		t.Fatal("healthy request after exhausted fault still degraded")
	}
	// One failure in a 20-wide window must not trip the breaker.
	if g := reg.Gauge("rptcn_circuit_open", "").Value(); g != 0 {
		t.Fatalf("circuit open after single failure: gauge = %v", g)
	}
}

// TestInvalidModelOutputDegrades: a NaN poisoned into the model's output
// tensor must be caught before it reaches the client — degraded fallback,
// counted under reason="invalid_output".
func TestInvalidModelOutputDegrades(t *testing.T) {
	p, e := fitted(t)
	reg := obs.NewRegistry()
	ts := httptest.NewServer(New(p, WithRegistry(reg), WithLogger(obs.NopLogger())))
	defer ts.Close()

	inj := fault.NewInjector(fault.Rule{Scope: "model.forward.out", Kind: fault.KindNaN, Times: 1})
	defer fault.Activate(inj)()

	resp := forecastReq(t, ts.URL, ForecastRequest{Indicators: tailOf(e, 64)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200 (degraded)", resp.StatusCode)
	}
	out := decodeForecast(t, resp)
	if !out.Degraded {
		t.Fatal("NaN model output not degraded")
	}
	for _, v := range out.Forecast {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("non-finite value leaked to the client: %v", out.Forecast)
		}
	}
	if got := counterVal(reg, degradedName, obs.L("reason", "invalid_output")); got != 1 {
		t.Fatalf("degraded{reason=invalid_output} = %v, want 1", got)
	}
	if inj.Probes("model.forward.out") == 0 {
		t.Fatal("model.forward.out fault point never probed")
	}
}

// TestInferenceTimeoutDegrades: inference slower than the request budget
// degrades to the fallback instead of hanging the caller.
func TestInferenceTimeoutDegrades(t *testing.T) {
	p, e := fitted(t)
	reg := obs.NewRegistry()
	ts := httptest.NewServer(New(p, WithRegistry(reg), WithLogger(obs.NopLogger()),
		WithResilience(ResilienceConfig{RequestTimeout: 20 * time.Millisecond})))
	defer ts.Close()

	inj := fault.NewInjector(fault.Rule{
		Scope: "server.forecast", Kind: fault.KindLatency,
		Latency: 300 * time.Millisecond, Times: 1,
	})
	defer fault.Activate(inj)()

	start := time.Now()
	resp := forecastReq(t, ts.URL, ForecastRequest{Indicators: tailOf(e, 64)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200 (degraded)", resp.StatusCode)
	}
	if elapsed := time.Since(start); elapsed >= 300*time.Millisecond {
		t.Fatalf("request waited out the injected latency (%v); deadline did not cut it short", elapsed)
	}
	if out := decodeForecast(t, resp); !out.Degraded {
		t.Fatal("timed-out inference not degraded")
	}
	if got := counterVal(reg, degradedName, obs.L("reason", "timeout")); got != 1 {
		t.Fatalf("degraded{reason=timeout} = %v, want 1", got)
	}
}

// TestBreakerOpensThenRecovers drives the full breaker cycle: repeated
// model failures open it (requests short-circuit to the fallback without
// touching the model), and after the cooldown a half-open probe that
// succeeds closes it again.
func TestBreakerOpensThenRecovers(t *testing.T) {
	p, e := fitted(t)
	reg := obs.NewRegistry()
	ts := httptest.NewServer(New(p, WithRegistry(reg), WithLogger(obs.NopLogger()),
		WithResilience(ResilienceConfig{
			Breaker: BreakerConfig{Window: 4, FailureThreshold: 0.5, Cooldown: 300 * time.Millisecond},
		})))
	defer ts.Close()
	tail := tailOf(e, 64)
	gauge := reg.Gauge("rptcn_circuit_open", "")

	// Exactly 4 panics: enough to fill the window and trip the breaker.
	inj := fault.NewInjector(fault.Rule{Scope: "server.forecast", Kind: fault.KindPanic, Times: 4})
	defer fault.Activate(inj)()

	for i := 0; i < 4; i++ {
		resp := forecastReq(t, ts.URL, ForecastRequest{Indicators: tail})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d status = %d", i, resp.StatusCode)
		}
		if out := decodeForecast(t, resp); !out.Degraded {
			t.Fatalf("request %d not degraded", i)
		}
	}
	if gauge.Value() != 1 {
		t.Fatalf("breaker not open after %d consecutive failures", 4)
	}

	// While open, requests degrade without probing the model at all.
	probesBefore := inj.Probes("server.forecast")
	resp := forecastReq(t, ts.URL, ForecastRequest{Indicators: tail})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("open-breaker status = %d", resp.StatusCode)
	}
	if out := decodeForecast(t, resp); !out.Degraded {
		t.Fatal("open-breaker request not degraded")
	}
	if got := counterVal(reg, degradedName, obs.L("reason", "breaker_open")); got != 1 {
		t.Fatalf("degraded{reason=breaker_open} = %v, want 1", got)
	}
	if inj.Probes("server.forecast") != probesBefore {
		t.Fatal("open breaker still let a request reach the model")
	}

	// After the cooldown the half-open probe hits the (now healthy) model
	// and closes the breaker.
	time.Sleep(400 * time.Millisecond)
	resp = forecastReq(t, ts.URL, ForecastRequest{Indicators: tail})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-cooldown status = %d", resp.StatusCode)
	}
	if out := decodeForecast(t, resp); out.Degraded {
		t.Fatal("successful half-open probe still served degraded")
	}
	if gauge.Value() != 0 {
		t.Fatal("breaker did not close after a successful probe")
	}
	if got := counterVal(reg, degradedName, obs.L("reason", "panic")); got != 4 {
		t.Fatalf("degraded{reason=panic} = %v, want 4", got)
	}
}

// TestLimiterShedsAndHealthzExempt fills the concurrency limiter to
// capacity and checks overload behavior: forecast/model requests are shed
// with 429 + Retry-After, while /healthz and /metrics keep answering so
// probes and scrapes survive the overload.
func TestLimiterShedsAndHealthzExempt(t *testing.T) {
	p, e := fitted(t)
	reg := obs.NewRegistry()
	srv := New(p, WithRegistry(reg), WithLogger(obs.NopLogger()),
		WithResilience(ResilienceConfig{MaxInFlight: 2}))
	ts := httptest.NewServer(srv)
	defer ts.Close()
	tail := tailOf(e, 64)

	// Occupy both in-flight slots, as two stuck requests would.
	srv.sem <- struct{}{}
	srv.sem <- struct{}{}

	resp := forecastReq(t, ts.URL, ForecastRequest{Indicators: tail})
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overloaded forecast status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without a Retry-After hint")
	}
	mresp, err := http.Get(ts.URL + "/v1/model")
	if err != nil {
		t.Fatal(err)
	}
	mresp.Body.Close()
	if mresp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overloaded model-info status = %d, want 429", mresp.StatusCode)
	}
	if got := counterVal(reg, "rptcn_dropped_requests_total"); got != 2 {
		t.Fatalf("dropped counter = %v, want 2", got)
	}

	// Liveness and metrics bypass the limiter.
	for _, path := range []string{"/healthz", "/metrics"} {
		hresp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		hresp.Body.Close()
		if hresp.StatusCode != http.StatusOK {
			t.Fatalf("%s under overload status = %d, want 200", path, hresp.StatusCode)
		}
	}

	// Capacity freed: service resumes.
	<-srv.sem
	<-srv.sem
	resp = forecastReq(t, ts.URL, ForecastRequest{Indicators: tail})
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-overload status = %d", resp.StatusCode)
	}
}

// TestClientDisconnectIs499NotServerError: a client abandoning a slow
// forecast is recorded as 499 — not a 5xx (the error counter stays at
// zero) and not a breaker failure (the model did nothing wrong).
func TestClientDisconnectIs499NotServerError(t *testing.T) {
	p, e := fitted(t)
	reg := obs.NewRegistry()
	ts := httptest.NewServer(New(p, WithRegistry(reg), WithLogger(obs.NopLogger())))
	defer ts.Close()

	inj := fault.NewInjector(fault.Rule{
		Scope: "server.forecast", Kind: fault.KindLatency,
		Latency: 400 * time.Millisecond, Times: 1,
	})
	defer fault.Activate(inj)()

	raw, err := json.Marshal(ForecastRequest{Indicators: tailOf(e, 64)})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/forecast", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if resp, err := http.DefaultClient.Do(req); err == nil {
		resp.Body.Close()
		t.Fatalf("expected the client to give up, got status %d", resp.StatusCode)
	}

	waitFor(t, "canceled request accounting", func() bool {
		return counterVal(reg, "rptcn_canceled_requests_total") == 1 &&
			counterVal(reg, "rptcn_http_requests_total",
				obs.L("path", "/v1/forecast"), obs.L("code", "499")) == 1
	})
	if got := counterVal(reg, "rptcn_http_errors_total", obs.L("path", "/v1/forecast")); got != 0 {
		t.Fatalf("client disconnect counted as server error: errors_total = %v", got)
	}
	if g := reg.Gauge("rptcn_circuit_open", "").Value(); g != 0 {
		t.Fatal("client disconnect affected the circuit breaker")
	}
	sum := 0.0
	for _, reason := range degradeReasons {
		sum += counterVal(reg, degradedName, obs.L("reason", reason))
	}
	if sum != 0 {
		t.Fatalf("client disconnect counted as degraded forecast: %v", sum)
	}
}

// TestOversizedBodyRejected413: a request body past the cap is refused
// with 413 before it can exhaust memory.
func TestOversizedBodyRejected413(t *testing.T) {
	p, _ := fitted(t)
	ts := httptest.NewServer(New(p, WithLogger(obs.NopLogger()), WithRegistry(obs.NewRegistry())))
	defer ts.Close()

	var body bytes.Buffer
	body.WriteString(`{"indicators":[[`)
	body.Write(bytes.Repeat([]byte("1,"), (maxBodyBytes/2)+1024))
	body.WriteString(`1]]}`)
	resp, err := http.Post(ts.URL+"/v1/forecast", "application/json", &body)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body status = %d, want 413", resp.StatusCode)
	}
}

// TestRecoveredMiddlewareWrites500 unit-tests the outer panic-recovery
// middleware: a handler panic becomes a 500 when nothing was written, and
// leaves an already-started response alone.
func TestRecoveredMiddlewareWrites500(t *testing.T) {
	p, _ := fitted(t)
	reg := obs.NewRegistry()
	s := New(p, WithRegistry(reg), WithLogger(obs.NopLogger()))

	rr := httptest.NewRecorder()
	s.recovered(func(http.ResponseWriter, *http.Request) { panic("boom") })(
		rr, httptest.NewRequest(http.MethodGet, "/x", nil))
	if rr.Code != http.StatusInternalServerError {
		t.Fatalf("panic status = %d, want 500", rr.Code)
	}
	if got := counterVal(reg, "rptcn_panics_recovered_total"); got != 1 {
		t.Fatalf("panics recovered = %v, want 1", got)
	}

	// Panic after the handler already committed a status: don't stomp it.
	rec := &statusRecorder{ResponseWriter: httptest.NewRecorder()}
	s.recovered(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusAccepted)
		panic("late boom")
	})(rec, httptest.NewRequest(http.MethodGet, "/x", nil))
	if rec.status != http.StatusAccepted {
		t.Fatalf("late panic overwrote status: %d", rec.status)
	}
}

// TestChaosForecastEndpointAlwaysAnswers is the headline chaos suite:
// with panics, NaN corruption, and latency injected at every serving
// fault point on periodic schedules, 40 concurrent forecast requests must
// ALL be answered — 200 with a finite, correctly-shaped forecast, model
// or fallback — and the degraded/shed counters must account for every
// degraded response exactly.
func TestChaosForecastEndpointAlwaysAnswers(t *testing.T) {
	p, e := fitted(t)
	reg := obs.NewRegistry()
	ts := httptest.NewServer(New(p, WithRegistry(reg), WithLogger(obs.NopLogger())))
	defer ts.Close()
	tail := tailOf(e, 64)

	inj := fault.NewInjector(
		fault.Rule{Scope: "server.forecast", Kind: fault.KindPanic, After: 2, Every: 5},
		fault.Rule{Scope: "server.forecast", Kind: fault.KindLatency, Latency: 2 * time.Millisecond, Every: 3},
		fault.Rule{Scope: "model.forward.out", Kind: fault.KindNaN, Every: 7},
		fault.Rule{Scope: "model.forward", Kind: fault.KindPanic, After: 1, Every: 11},
	)
	defer fault.Activate(inj)()

	raw, err := json.Marshal(ForecastRequest{Indicators: tail})
	if err != nil {
		t.Fatal(err)
	}

	const workers, perWorker = 10, 4
	var (
		mu       sync.Mutex
		degraded int
		answered int
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Only t.Errorf below: t.Fatal must not be called off the
			// test goroutine.
			for i := 0; i < perWorker; i++ {
				resp, err := http.Post(ts.URL+"/v1/forecast", "application/json", bytes.NewReader(raw))
				if err != nil {
					t.Errorf("chaos request failed outright: %v", err)
					continue
				}
				var out ForecastResponse
				decErr := json.NewDecoder(resp.Body).Decode(&out)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("chaos request status = %d, want 200", resp.StatusCode)
					continue
				}
				if decErr != nil {
					t.Errorf("chaos response undecodable: %v", decErr)
					continue
				}
				if len(out.Forecast) != p.Cfg.Horizon || out.Horizon != p.Cfg.Horizon {
					t.Errorf("chaos forecast shape = %+v", out)
				}
				for _, v := range out.Forecast {
					if math.IsNaN(v) || math.IsInf(v, 0) {
						t.Errorf("chaos forecast leaked non-finite value: %v", out.Forecast)
						break
					}
				}
				mu.Lock()
				answered++
				if out.Degraded {
					degraded++
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if answered != workers*perWorker {
		t.Fatalf("answered %d of %d chaos requests", answered, workers*perWorker)
	}
	if degraded == 0 {
		t.Fatal("chaos schedule injected faults but no request degraded")
	}

	// Accounting: every degraded response shows up in exactly one reason
	// counter, and nothing was shed (10 workers < MaxInFlight default).
	sum := 0.0
	for _, reason := range degradeReasons {
		sum += counterVal(reg, degradedName, obs.L("reason", reason))
	}
	if sum != float64(degraded) {
		t.Fatalf("degraded counters sum to %v, but %d degraded responses were served", sum, degraded)
	}
	if got := counterVal(reg, "rptcn_dropped_requests_total"); got != 0 {
		t.Fatalf("dropped counter = %v with no 429 responses observed", got)
	}

	// Every serving fault point was genuinely exercised.
	for _, scope := range []string{"server.forecast", "model.forward", "model.forward.out"} {
		if inj.Probes(scope) == 0 {
			t.Fatalf("fault point %q never probed during the chaos run", scope)
		}
	}
	// And the metrics endpoint survived it all.
	if got := scrape(t, ts.URL); got == "" {
		t.Fatal("empty /metrics after chaos run")
	}
}
