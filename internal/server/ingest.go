package server

import (
	"errors"
	"fmt"
	"net/http"
	"slices"

	"repro/internal/core"
	"repro/internal/registry"
	"repro/internal/shard"
	"repro/internal/trace"
)

// Streaming trace ingestion: POST /v1/ingest accepts a v2018-style
// usage CSV body and streams it through trace.ScanCSV straight into
// per-entity ring buffers — no per-sample allocation, no intermediate
// record materialization. GET /v1/forecast/{entity} then serves a
// forecast from an entity's ring: the trailing window is read as
// zero-copy views under the entity's lock, run through the stored data
// pipeline, and fused into the same micro-batcher as JSON requests. A
// resource manager can therefore pump raw monitoring streams in and ask
// for per-entity forecasts by name, instead of re-shipping every
// entity's history on every request.

// IngestConfig tunes streaming trace ingestion.
type IngestConfig struct {
	// Disabled switches the /v1/ingest and /v1/forecast/{entity} routes
	// off (they respond 404).
	Disabled bool
	// RingCapacity is the number of most-recent samples retained per
	// entity. Default: twice the predictor's MinHistory (or 64 if
	// larger), so a full input window plus slack is always on hand.
	RingCapacity int
	// MaxBodyBytes bounds one ingest request's body (default 256 MiB —
	// usage CSVs are long; the scan is streaming so memory stays flat).
	MaxBodyBytes int64
	// MaxEntities caps how many entities hold ring state at once; when a
	// new entity arrives at the cap, the least-recently-touched ring is
	// evicted (rptcn_ingest_evicted_entities_total counts them). 0 means
	// unbounded — the pre-cap behavior.
	MaxEntities int
}

func (c *IngestConfig) fillDefaults(p *core.Predictor) {
	if c.RingCapacity <= 0 {
		c.RingCapacity = 2 * p.MinHistory()
		if c.RingCapacity < 64 {
			c.RingCapacity = 64
		}
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 256 << 20
	}
}

// WithIngest overrides the streaming-ingestion parameters.
func WithIngest(cfg IngestConfig) Option {
	return func(s *Server) { s.ingestCfg = cfg }
}

// IngestResponse is the /v1/ingest response body.
type IngestResponse struct {
	// Rows is the number of usable CSV rows parsed.
	Rows int `json:"rows"`
	// Skipped counts unusable rows (ragged, unparsable) dropped by the
	// lenient scanner.
	Skipped int `json:"skipped"`
	// Rejected counts parsed samples the rings refused because their
	// timestamp did not advance the entity's newest sample (replays,
	// duplicates, out-of-order deliveries).
	Rejected int `json:"rejected"`
	// Entities is the total number of entities with ring state.
	Entities int `json:"entities"`
}

// handleIngest streams the CSV body into the ring store. The body is
// never buffered whole: ScanCSV reads through a pooled 64 KiB window.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	rejected := 0
	body := http.MaxBytesReader(w, r.Body, s.ingestCfg.MaxBodyBytes)
	st, err := trace.ScanCSV(body, func(entity []byte, ts int, vals *[trace.NumIndicators]float64) error {
		if !s.rings.Ingest(entity, ts, vals) {
			rejected++
		}
		return nil
	})
	s.ingestRows.Add(float64(st.Rows))
	s.ingestSkipped.Add(float64(st.Skipped))
	s.ingestRejected.Add(float64(rejected))
	s.ingestEntities.Set(float64(s.rings.Len()))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("ingest body exceeds %d bytes", tooBig.Limit))
			return
		}
		s.writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.writeJSON(w, http.StatusOK, IngestResponse{
		Rows:     st.Rows,
		Skipped:  st.Skipped,
		Rejected: rejected,
		Entities: s.rings.Len(),
	})
}

// EntityInfo is one entry of the /v1/entities response.
type EntityInfo struct {
	ID      string `json:"id"`
	Samples int    `json:"samples"`
	LastTS  int    `json:"last_ts"`
}

// handleEntities lists entities with ring state, sorted by ID so the
// listing is deterministic regardless of ingestion or shard order.
// ?limit=N bounds the page size and ?after=<id> resumes strictly after
// an ID; a truncated page carries the X-Next-After header, so a client
// walks a 4000-entity fleet in bounded pages:
//
//	GET /v1/entities?limit=500
//	GET /v1/entities?limit=500&after=<X-Next-After>   ... until the header stops
func (s *Server) handleEntities(w http.ResponseWriter, r *http.Request) {
	limit, after, err := parseListParams(r)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	ids := s.rings.Entities() // sorted ascending
	if after != "" {
		lo, _ := slices.BinarySearch(ids, after)
		if lo < len(ids) && ids[lo] == after {
			lo++
		}
		ids = ids[lo:]
	}
	if limit > 0 && len(ids) > limit {
		ids = ids[:limit]
		w.Header().Set("X-Next-After", ids[len(ids)-1])
	}
	out := make([]EntityInfo, 0, len(ids))
	for _, id := range ids {
		info := EntityInfo{ID: id}
		s.rings.WithWindow(id, s.ingestCfg.RingCapacity, func(win [][]float64, _, lastTS int) {
			info.Samples = len(win[0])
			info.LastTS = lastTS
		})
		out = append(out, info)
	}
	s.writeJSON(w, http.StatusOK, out)
}

// errUnknownEntity marks a forecast request for an entity with no ring
// state; surfaced as 404 rather than 422.
var errUnknownEntity = errors.New("server: unknown entity")

// handleEntityForecast serves GET /v1/forecast/{entity} through the
// entity's shard: the shard worker reads the ring window as zero-copy
// views under the entity's lock, fuses concurrent requests for its
// entities into one forward, and answers — all shard-local, no global
// inference lock with per-shard replicas. ?model=<name> serves from the
// named registry model instead of the default engine (requires
// WithModelRegistry). The full per-request protection stack (breaker,
// timeout, panic recovery, cancel detection) still wraps the wait.
func (s *Server) handleEntityForecast(w http.ResponseWriter, r *http.Request) {
	entity := r.PathValue("entity")
	if entity == "" {
		s.writeError(w, http.StatusBadRequest, "empty entity")
		return
	}
	model := r.URL.Query().Get("model")
	if model != "" && s.modelCache == nil {
		s.writeError(w, http.StatusNotFound, "no model registry configured")
		return
	}
	ft := telemetryFrom(r.Context())
	ft.set(entity, false)

	o, res := s.guardedInfer(r.Context(), func() inferOutcome {
		sr := s.rings.Forecast(entity, model)
		if sr.Panicked {
			return inferOutcome{panicked: true}
		}
		return inferOutcome{forecast: sr.Forecast, gen: sr.Gen, err: sr.Err}
	})
	forecast := o.forecast
	switch res.kind {
	case inferOK:
		resp := ForecastResponse{
			Forecast:   forecast,
			Target:     targetName(s.predictor),
			Horizon:    s.predictor.Cfg.Horizon,
			Generation: o.gen,
			Model:      model,
		}
		if model != "" {
			// A named model has its own target/horizon; report what was
			// actually served rather than the default model's metadata.
			resp.Target = ""
			resp.Horizon = len(forecast)
		}
		s.writeJSON(w, http.StatusOK, resp)
	case inferBadInput:
		switch {
		case errors.Is(res.err, errUnknownEntity), errors.Is(res.err, shard.ErrUnknownEntity):
			s.writeError(w, http.StatusNotFound, fmt.Sprintf("entity %q has no ingested samples", entity))
			return
		case errors.Is(res.err, registry.ErrUnknownModel):
			s.writeError(w, http.StatusNotFound, res.err.Error())
			return
		case errors.Is(res.err, shard.ErrClosed):
			s.writeError(w, http.StatusServiceUnavailable, "server shutting down")
			return
		}
		s.writeError(w, http.StatusUnprocessableEntity, res.err.Error())
	case inferCanceled:
		s.canceled.Inc()
		s.writeError(w, StatusClientClosedRequest, "client closed request")
	default:
		fb, ok := s.entityFallback(entity)
		if !ok {
			s.writeError(w, http.StatusServiceUnavailable,
				"model unavailable and entity history too short for a fallback forecast")
			return
		}
		ft.set(entity, true)
		s.degradedInc(res.reason)
		s.log.Warn("serving degraded entity forecast", "entity", entity, "reason", res.reason)
		s.writeJSON(w, http.StatusOK, ForecastResponse{
			Forecast: fb,
			Target:   targetName(s.predictor),
			Horizon:  s.predictor.Cfg.Horizon,
			Degraded: true,
		})
	}
}

// entityFallback is the ring-backed twin of fallbackForecast: a
// last-value forecast from the entity's target-indicator history.
func (s *Server) entityFallback(entity string) ([]float64, bool) {
	idx := 0
	if sel := s.predictor.SelectedIndicators(); len(sel) > 0 {
		idx = sel[0]
	}
	var last float64
	found := false
	s.rings.WithWindow(entity, 1, func(win [][]float64, _, _ int) {
		if idx < len(win) && len(win[idx]) > 0 {
			last = win[idx][len(win[idx])-1]
			found = true
		}
	})
	if !found {
		return nil, false
	}
	fb := make([]float64, s.predictor.Cfg.Horizon)
	for i := range fb {
		fb[i] = last
	}
	return fb, true
}
