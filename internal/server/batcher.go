package server

import (
	"errors"
	"log/slog"
	"runtime/debug"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// Server-side request micro-batching: concurrent forecast requests are
// queued and fused into one batched grad-free arena forward, then the
// per-request rows are fanned back out. Because every forward kernel is
// row-independent (TestGemmRowIndependence, the core batching suite),
// each request's answer is bitwise identical to running it alone — the
// fusion buys GEMM efficiency without changing a single output.
//
// The latency contract: the first request of a batch waits at most
// MaxDelay for company; under load the batch fills to MaxBatch and
// leaves immediately, so added tail latency is bounded by MaxDelay and
// vanishes exactly when batching pays for itself.

// ErrServerClosed is returned to requests caught mid-flight by Close.
var ErrServerClosed = errors.New("server: shutting down")

// BatchConfig tunes request micro-batching. The zero value gets the
// defaults — batching is always on (MaxBatch 1 disables fusion while
// keeping the single serialized inference pipeline).
type BatchConfig struct {
	// MaxBatch caps how many requests fuse into one forward (default 32,
	// matching the default MaxInFlight — one full batch per admission
	// window).
	MaxBatch int
	// MaxDelay bounds how long the first request of a batch waits for
	// more to arrive (default 2ms).
	MaxDelay time.Duration
}

func (c *BatchConfig) fillDefaults() {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 32
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = 2 * time.Millisecond
	}
}

// WithBatching overrides the micro-batching parameters.
func WithBatching(cfg BatchConfig) Option {
	return func(s *Server) { s.batchCfg = cfg }
}

// batchResp is one request's share of a batched forward. gen is the
// serving-model generation that produced the forecast, read under the
// same lock hold as the forward itself — so a response can always be
// attributed to exactly one set of weights even while hot-swaps land.
type batchResp struct {
	forecast []float64
	gen      int64
	err      error
	panicked bool
}

// batchReq is one enqueued request. done is buffered so the collector
// never blocks on a client that stopped waiting (timeout, disconnect).
type batchReq struct {
	in       *core.PreparedInput
	done     chan batchResp
	enqueued time.Time
}

// batcher owns the collector goroutine that fuses queued requests.
type batcher struct {
	predictor *core.Predictor
	cfg       BatchConfig
	log       *slog.Logger

	queue   chan *batchReq
	stop    chan struct{}
	stopped chan struct{}
	once    sync.Once

	depth  *obs.Gauge     // requests enqueued, not yet picked into a batch
	sizes  *obs.Histogram // realized batch sizes
	delay  *obs.Histogram // per-request enqueue→batch-start wait
	panics *obs.Counter   // shared with the server's recovered-panic counter
}

func newBatcher(p *core.Predictor, cfg BatchConfig, queueCap int, reg *obs.Registry,
	log *slog.Logger, panics *obs.Counter) *batcher {
	cfg.fillDefaults()
	b := &batcher{
		predictor: p,
		cfg:       cfg,
		log:       log,
		queue:     make(chan *batchReq, queueCap),
		stop:      make(chan struct{}),
		stopped:   make(chan struct{}),
		depth: reg.Gauge("rptcn_batch_queue_depth",
			"Forecast requests enqueued for micro-batching, not yet running."),
		sizes: reg.Histogram("rptcn_batch_size_requests",
			"Requests fused per micro-batched inference.",
			[]float64{1, 2, 4, 8, 16, 32, 64}),
		delay: reg.Histogram("rptcn_batch_delay_seconds",
			"Per-request wait between enqueue and batch start.", nil),
		panics: panics,
	}
	go b.run()
	return b
}

// submit enqueues one prepared request and blocks until its share of a
// batched forward comes back (or the batcher shuts down).
func (b *batcher) submit(in *core.PreparedInput) batchResp {
	r := &batchReq{in: in, done: make(chan batchResp, 1), enqueued: time.Now()}
	b.depth.Inc()
	select {
	case b.queue <- r:
	case <-b.stopped:
		b.depth.Dec()
		return batchResp{err: ErrServerClosed}
	}
	select {
	case resp := <-r.done:
		return resp
	case <-b.stopped:
		// The collector may have answered in the same instant it shut
		// down; prefer a real answer over the shutdown error.
		select {
		case resp := <-r.done:
			return resp
		default:
			return batchResp{err: ErrServerClosed}
		}
	}
}

// run is the collector loop: block for the first request, then gather
// more until the batch is full or MaxDelay elapses, and run the fused
// forward. One loop iteration per batch.
func (b *batcher) run() {
	defer close(b.stopped)
	batch := make([]*batchReq, 0, b.cfg.MaxBatch)
	for {
		var first *batchReq
		select {
		case first = <-b.queue:
		case <-b.stop:
			b.drain()
			return
		}
		batch = append(batch[:0], first)
		timer := time.NewTimer(b.cfg.MaxDelay)
		for len(batch) < b.cfg.MaxBatch {
			select {
			case r := <-b.queue:
				batch = append(batch, r)
				continue
			case <-timer.C:
			case <-b.stop:
			}
			break
		}
		timer.Stop()
		b.runBatch(batch)
		select {
		case <-b.stop:
			b.drain()
			return
		default:
		}
	}
}

// drain answers every still-queued request with the shutdown error so no
// submitter blocks forever (must only run on the collector goroutine,
// after stop).
func (b *batcher) drain() {
	for {
		select {
		case r := <-b.queue:
			b.depth.Dec()
			r.done <- batchResp{err: ErrServerClosed}
		default:
			return
		}
	}
}

// runBatch executes one fused forward and fans the rows back out. A
// panic inside the model poisons the whole batch: every member reports
// panicked (and degrades at its own call site), but the process-wide
// panic counter ticks once — one fault, one event.
func (b *batcher) runBatch(reqs []*batchReq) {
	start := time.Now()
	b.depth.Add(-float64(len(reqs)))
	b.sizes.Observe(float64(len(reqs)))
	inputs := make([]*core.PreparedInput, len(reqs))
	for i, r := range reqs {
		inputs[i] = r.in
		b.delay.Observe(start.Sub(r.enqueued).Seconds())
	}
	var (
		out      [][]float64
		gen      int64
		err      error
		panicked bool
	)
	func() {
		defer func() {
			if p := recover(); p != nil {
				panicked = true
				b.panics.Inc()
				b.log.Error("panic recovered in batched inference",
					"batch", len(reqs), "panic", p, "stack", string(debug.Stack()))
			}
		}()
		out, gen, err = b.predictor.ForecastBatchGen(inputs)
	}()
	for i, r := range reqs {
		resp := batchResp{gen: gen, err: err, panicked: panicked}
		if !panicked && err == nil {
			resp.forecast = out[i]
		}
		r.done <- resp
	}
}

// close stops the collector, answers anything still queued with
// ErrServerClosed, and waits for the goroutine to exit. Idempotent.
func (b *batcher) close() {
	b.once.Do(func() {
		close(b.stop)
		<-b.stopped
	})
}
