package server

import (
	"math"
	"net/http"
	"runtime/debug"
	"sync"
	"time"

	"repro/internal/naive"
	"repro/internal/obs"
)

// StatusClientClosedRequest is the (nginx-convention) status recorded
// when the client goes away before the forecast completes. It is not a
// server error: it never increments the 5xx error counter and never
// trips the circuit breaker.
const StatusClientClosedRequest = 499

// ResilienceConfig tunes the serving fault-tolerance layer. The zero
// value gets production-safe defaults — resilience is always on.
type ResilienceConfig struct {
	// MaxInFlight caps concurrently served requests (beyond it the
	// server sheds load with 429 + Retry-After). /healthz and /metrics
	// are exempt so probes and scrapes survive overload. Default 32.
	MaxInFlight int
	// RequestTimeout bounds one forecast inference; past it the request
	// degrades to the naive fallback. Default 10s.
	RequestTimeout time.Duration
	// Breaker configures the inference circuit breaker.
	Breaker BreakerConfig
}

func (c *ResilienceConfig) fillDefaults() {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 32
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 10 * time.Second
	}
	c.Breaker.fillDefaults()
}

// WithResilience overrides the default limits and breaker settings.
func WithResilience(cfg ResilienceConfig) Option {
	return func(s *Server) { s.resilience = cfg }
}

// BreakerConfig tunes the inference circuit breaker: it watches the
// last Window inference outcomes and opens when failures reach
// FailureThreshold of them, short-circuiting straight to the fallback
// for Cooldown before probing the model again (half-open).
type BreakerConfig struct {
	Window           int           // outcomes in the sliding window (default 20)
	FailureThreshold float64       // open at failures/Window >= this (default 0.5)
	Cooldown         time.Duration // open duration before a half-open probe (default 5s)
}

func (c *BreakerConfig) fillDefaults() {
	if c.Window <= 0 {
		c.Window = 20
	}
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 0.5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 5 * time.Second
	}
}

const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen
)

// breaker is a sliding-window circuit breaker. Failures are model
// failures only (panic, timeout, non-finite output) — client mistakes
// and disconnects never count.
type breaker struct {
	cfg   BreakerConfig
	gauge *obs.Gauge // rptcn_circuit_open: 0 closed, 1 open/half-open

	mu       sync.Mutex
	window   []bool // ring of outcomes, true = failure
	next     int
	filled   int
	failures int
	state    int
	openedAt time.Time
	probing  bool // a half-open trial request is in flight
}

func newBreaker(cfg BreakerConfig, gauge *obs.Gauge) *breaker {
	cfg.fillDefaults()
	return &breaker{cfg: cfg, gauge: gauge, window: make([]bool, cfg.Window)}
}

// allow reports whether the model may be tried for this request. In the
// open state it returns false until Cooldown elapses, then admits a
// single half-open probe whose outcome decides reopen-vs-close.
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if time.Since(b.openedAt) < b.cfg.Cooldown {
			return false
		}
		b.state = breakerHalfOpen
		b.probing = true
		return true
	default: // half-open: one probe at a time
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// record feeds one inference outcome back into the breaker.
func (b *breaker) record(failure bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == breakerHalfOpen {
		b.probing = false
		if failure {
			b.trip()
		} else {
			b.reset()
		}
		return
	}
	if b.window[b.next] {
		b.failures--
	}
	b.window[b.next] = failure
	if failure {
		b.failures++
	}
	b.next = (b.next + 1) % len(b.window)
	if b.filled < len(b.window) {
		b.filled++
	}
	if b.state == breakerClosed && b.filled == len(b.window) &&
		float64(b.failures) >= b.cfg.FailureThreshold*float64(len(b.window)) {
		b.trip()
	}
}

// trip opens the breaker (must hold mu).
func (b *breaker) trip() {
	b.state = breakerOpen
	b.openedAt = time.Now()
	b.gauge.Set(1)
}

// reset closes the breaker and clears the window (must hold mu).
func (b *breaker) reset() {
	b.state = breakerClosed
	for i := range b.window {
		b.window[i] = false
	}
	b.failures, b.next, b.filled = 0, 0, 0
	b.gauge.Set(0)
}

// release hands back a half-open probe slot without an outcome (the
// request was canceled or turned out to be a client error); the next
// request gets to probe instead. No-op in other states.
func (b *breaker) release() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == breakerHalfOpen {
		b.probing = false
	}
}

// open reports whether the breaker currently short-circuits requests.
func (b *breaker) open() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state != breakerClosed
}

// recovered wraps a handler with panic recovery: a panicking handler
// produces a 500 (when nothing was written yet), a stack trace in the
// log, and a counter increment — never a crashed process.
func (s *Server) recovered(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			p := recover()
			if p == nil {
				return
			}
			s.panics.Inc()
			s.log.Error("panic recovered in handler",
				"path", r.URL.Path, "panic", p, "stack", string(debug.Stack()))
			if rec, ok := w.(*statusRecorder); !ok || rec.status == 0 {
				s.writeError(w, http.StatusInternalServerError, "internal error")
			}
		}()
		h(w, r)
	}
}

// limited wraps a handler with the concurrency limiter: past MaxInFlight
// concurrent requests, further ones are shed immediately with 429 and a
// Retry-After hint instead of queueing without bound.
func (s *Server) limited(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		select {
		case s.sem <- struct{}{}:
			defer func() { <-s.sem }()
			h(w, r)
		default:
			s.dropped.Inc()
			w.Header().Set("Retry-After", "1")
			s.writeError(w, http.StatusTooManyRequests, "server overloaded, retry later")
		}
	}
}

// fallbackForecast serves the graceful-degradation path: a last-value
// (persistence) forecast computed from the request's own target-series
// history — always available, never touches the model.
func (s *Server) fallbackForecast(series [][]float64) ([]float64, bool) {
	idx := 0
	if sel := s.predictor.SelectedIndicators(); len(sel) > 0 {
		idx = sel[0]
	}
	if idx >= len(series) || len(series[idx]) == 0 {
		return nil, false
	}
	var p naive.Persistence
	if err := p.Fit(series[idx]); err != nil {
		return nil, false
	}
	return p.Forecast(s.predictor.Cfg.Horizon), true
}

// finiteAll reports whether every forecast value is a usable number; a
// NaN/Inf anywhere means the model output is poisoned and must not be
// handed to a resource manager.
func finiteAll(xs []float64) bool {
	for _, v := range xs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}
