package server

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"repro/internal/tensor"
)

// stdlibDecode is the reference the fast path must agree with.
func stdlibDecode(body []byte) (ForecastRequest, error) {
	var req ForecastRequest
	err := json.NewDecoder(bytes.NewReader(body)).Decode(&req)
	return req, err
}

// TestDecodeForecastRequestMatchesStdlib feeds canonical, hostile and
// degenerate bodies through both the fast path and encoding/json and
// demands identical outcomes: same accept/reject decision and bitwise
// identical floats.
func TestDecodeForecastRequestMatchesStdlib(t *testing.T) {
	bodies := [][]byte{
		[]byte(`{"indicators":[[1,2,3],[4,5,6]]}`),
		[]byte(` { "indicators" : [ [ 1.5 , -2e-3 ] , [ 0.25 ] ] } `),
		[]byte("{\n\t\"indicators\": [[0]]\n}\n"),
		[]byte(`{"indicators":[]}`),
		[]byte(`{"indicators":[[]]}`),
		[]byte(`{"indicators":[[1e308,-1e-308,0.0,-0.0]]}`),
		[]byte(`{"indicators":[[1.7976931348623157e308]]}`),
		[]byte(`{"indicators":[[5e-324,2.2250738585072014e-308]]}`),
		[]byte(`{"indicators":[[0.1,0.2,0.30000000000000004]]}`),
		[]byte(`{"indicators":[[1E+2,1e-2,12.34E1]]}`),
		// Fallback shapes the fast path must hand to encoding/json.
		[]byte(`{"extra":1,"indicators":[[1]]}`),
		[]byte(`{"indicators":[[1]],"extra":1}`),
		[]byte(`{"indicators":[[1]]}`),
		[]byte(`{"indicators":null}`),
		[]byte(`{"indicators":[null]}`),
		[]byte(`{"indicators":[[null]]}`),
		[]byte(`{}`),
		[]byte(`{"indicators":[[1]]} trailing`),
		[]byte(`{"indicators":[[1]]}{"indicators":[[2]]}`),
		// Rejections that must stay rejections.
		[]byte(`{"indicators":[[Inf]]}`),
		[]byte(`{"indicators":[[NaN]]}`),
		[]byte(`{"indicators":[[+1]]}`),
		[]byte(`{"indicators":[[0x10]]}`),
		[]byte(`{"indicators":[[01]]}`),
		[]byte(`{"indicators":[[1.]]}`),
		[]byte(`{"indicators":[[.5]]}`),
		[]byte(`{"indicators":[[1e]]}`),
		[]byte(`{"indicators":[[1,]]}`),
		[]byte(`{"indicators":[[1],]}`),
		[]byte(`{"indicators":[[1]`),
		[]byte(`{nope`),
		[]byte(``),
		[]byte(`[[1,2]]`),
	}
	for _, body := range bodies {
		want, wantErr := stdlibDecode(body)
		var got ForecastRequest
		gotErr := decodeForecastRequest(body, &got)
		if (gotErr == nil) != (wantErr == nil) {
			t.Fatalf("%s: err = %v, stdlib err = %v", body, gotErr, wantErr)
		}
		if gotErr != nil {
			continue
		}
		if len(got.Indicators) != len(want.Indicators) {
			t.Fatalf("%s: %d rows, stdlib %d", body, len(got.Indicators), len(want.Indicators))
		}
		for i := range want.Indicators {
			if len(got.Indicators[i]) != len(want.Indicators[i]) {
				t.Fatalf("%s: row %d has %d cols, stdlib %d",
					body, i, len(got.Indicators[i]), len(want.Indicators[i]))
			}
			for j := range want.Indicators[i] {
				if math.Float64bits(got.Indicators[i][j]) != math.Float64bits(want.Indicators[i][j]) {
					t.Fatalf("%s: [%d][%d] = %g, stdlib %g", body, i, j,
						got.Indicators[i][j], want.Indicators[i][j])
				}
			}
		}
	}
}

// TestDecodeForecastRequestRoundTrip pushes randomized request bodies
// (the exact bytes a Go client produces) through the fast path and
// checks bitwise round-tripping.
func TestDecodeForecastRequestRoundTrip(t *testing.T) {
	r := tensor.NewRNG(99)
	for trial := 0; trial < 50; trial++ {
		rows := 1 + int(r.Uint64()%8)
		var req ForecastRequest
		for i := 0; i < rows; i++ {
			cols := int(r.Uint64() % 70)
			row := make([]float64, cols)
			for j := range row {
				row[j] = r.NormFloat64() * math.Pow(10, float64(int(r.Uint64()%40))-20)
			}
			req.Indicators = append(req.Indicators, row)
		}
		raw, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		var got ForecastRequest
		if err := decodeForecastRequest(raw, &got); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !fastParseForecast(raw, &ForecastRequest{}) {
			t.Fatalf("trial %d: canonical body missed the fast path", trial)
		}
		for i := range req.Indicators {
			for j := range req.Indicators[i] {
				if math.Float64bits(got.Indicators[i][j]) != math.Float64bits(req.Indicators[i][j]) {
					t.Fatalf("trial %d: [%d][%d] drifted", trial, i, j)
				}
			}
		}
	}
}

func BenchmarkDecodeForecastFast(b *testing.B) {
	_, e := fitted(b)
	raw, _ := json.Marshal(ForecastRequest{Indicators: tailOf(e, 64)})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var req ForecastRequest
		if err := decodeForecastRequest(raw, &req); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeForecastStdlib(b *testing.B) {
	_, e := fitted(b)
	raw, _ := json.Marshal(ForecastRequest{Indicators: tailOf(e, 64)})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stdlibDecode(raw); err != nil {
			b.Fatal(err)
		}
	}
}
