package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/registry"
	"repro/internal/trace"
)

// getForecast fetches GET /v1/forecast/{entity}[?model=] and decodes it.
func getForecast(t *testing.T, url, entity, model string) (ForecastResponse, int) {
	t.Helper()
	u := url + "/v1/forecast/" + entity
	if model != "" {
		u += "?model=" + model
	}
	resp, err := http.Get(u)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out ForecastResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return out, resp.StatusCode
}

// TestShardedServingMatchesSingleShard pins the acceptance contract of
// sharding: the same fleet served by a 4-shard server (per-shard model
// replicas) answers exactly what the default 1-shard server (shared
// predictor — today's path) answers, entity by entity, under concurrent
// load. Run with -race this also exercises the per-shard single-owner
// discipline end to end through HTTP.
func TestShardedServingMatchesSingleShard(t *testing.T) {
	p, _ := fitted(t)
	entities := trace.Generate(trace.GeneratorConfig{
		Entities: 12, Kind: trace.Container, Samples: 80, Seed: 5,
	})

	single := httptest.NewServer(New(p))
	defer single.Close()
	srv := New(p, WithSharding(ShardConfig{Shards: 4}))
	sharded := httptest.NewServer(srv)
	defer sharded.Close()

	ingestCSV(t, single.URL, entities)
	ingestCSV(t, sharded.URL, entities)

	want := make(map[string]ForecastResponse, len(entities))
	for _, e := range entities {
		out, code := getForecast(t, single.URL, e.ID, "")
		if code != http.StatusOK || out.Degraded {
			t.Fatalf("single-shard forecast %s: code %d, %+v", e.ID, code, out)
		}
		want[e.ID] = out
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < len(entities); j++ {
				e := entities[(i+j)%len(entities)]
				out, code := getForecast(t, sharded.URL, e.ID, "")
				if code != http.StatusOK {
					t.Errorf("sharded forecast %s: code %d", e.ID, code)
					return
				}
				ref := want[e.ID]
				if len(out.Forecast) != len(ref.Forecast) {
					t.Errorf("sharded forecast %s: %d steps vs %d", e.ID, len(out.Forecast), len(ref.Forecast))
					return
				}
				for k := range ref.Forecast {
					if out.Forecast[k] != ref.Forecast[k] {
						t.Errorf("entity %s step %d: sharded %g != single %g",
							e.ID, k, out.Forecast[k], ref.Forecast[k])
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()

	// /debug/shards reflects the spread: 4 shards, all entities owned,
	// every request accounted, queues drained.
	resp, err := http.Get(sharded.URL + "/debug/shards")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st ShardsStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Shards != 4 || len(st.PerShard) != 4 {
		t.Fatalf("shards status = %+v", st)
	}
	if st.Entities != len(entities) {
		t.Fatalf("status entities = %d, want %d", st.Entities, len(entities))
	}
	var served uint64
	for _, sh := range st.PerShard {
		served += sh.Requests
		if sh.QueueDepth != 0 {
			t.Fatalf("shard %d queue not drained: %+v", sh.Shard, sh)
		}
	}
	if wantServed := uint64(8 * len(entities)); served != wantServed {
		t.Fatalf("per-shard request total = %d, want %d", served, wantServed)
	}
}

// TestEntitiesPagination pins the /v1/entities listing contract: sorted
// IDs, ?limit= pages with X-Next-After continuation, a full walk
// recovers the whole fleet exactly once, and a bad limit is a 400.
func TestEntitiesPagination(t *testing.T) {
	p, _ := fitted(t)
	entities := trace.Generate(trace.GeneratorConfig{
		Entities: 23, Kind: trace.Container, Samples: 10, Seed: 6,
	})
	srv := New(p, WithSharding(ShardConfig{Shards: 3}))
	ts := httptest.NewServer(srv)
	defer ts.Close()
	ingestCSV(t, ts.URL, entities)

	page := func(limit int, after string) ([]EntityInfo, string) {
		u := fmt.Sprintf("%s/v1/entities?limit=%d", ts.URL, limit)
		if after != "" {
			u += "&after=" + after
		}
		resp, err := http.Get(u)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("entities page status = %d", resp.StatusCode)
		}
		var out []EntityInfo
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out, resp.Header.Get("X-Next-After")
	}

	var walked []string
	after := ""
	pages := 0
	for {
		out, next := page(5, after)
		for _, e := range out {
			walked = append(walked, e.ID)
			if e.Samples == 0 {
				t.Fatalf("entity %s listed with no samples", e.ID)
			}
		}
		pages++
		if next == "" {
			break
		}
		if len(out) != 5 {
			t.Fatalf("truncated page has %d entries with continuation set", len(out))
		}
		after = next
	}
	if pages != 5 {
		t.Fatalf("walk took %d pages, want 5 (4×5 + 3)", pages)
	}
	if len(walked) != len(entities) {
		t.Fatalf("walk found %d entities, want %d", len(walked), len(entities))
	}
	seen := map[string]bool{}
	for i, id := range walked {
		if seen[id] {
			t.Fatalf("entity %s listed twice", id)
		}
		seen[id] = true
		if i > 0 && walked[i-1] >= id {
			t.Fatalf("listing not sorted: %s before %s", walked[i-1], id)
		}
	}

	// Unpaginated listing still returns the whole (sorted) fleet — the
	// pre-pagination contract.
	all, next := page(0, "")
	if len(all) != len(entities) || next != "" {
		t.Fatalf("limit=0 returned %d entities, continuation %q", len(all), next)
	}

	resp, err := http.Get(ts.URL + "/v1/entities?limit=nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad limit status = %d, want 400", resp.StatusCode)
	}
}

// TestModelRegistryServing pins the multi-model path through HTTP: a
// published registry model serves via ?model=, the default path is
// untouched, an unknown model is a 404, and the cache warms (hit on the
// second request).
func TestModelRegistryServing(t *testing.T) {
	p, e := fitted(t)
	alt, _ := fitted(t) // same fixture → same weights; identity checked via plumbing, not values
	st, err := registry.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Publish("alt", alt); err != nil {
		t.Fatal(err)
	}
	cache := registry.NewCache(st, 2)
	srv := New(p, WithSharding(ShardConfig{Shards: 2}), WithModelRegistry(cache))
	ts := httptest.NewServer(srv)
	defer ts.Close()
	ingestCSV(t, ts.URL, []*trace.EntitySeries{e})

	out, code := getForecast(t, ts.URL, e.ID, "alt")
	if code != http.StatusOK {
		t.Fatalf("named-model forecast status = %d", code)
	}
	if out.Model != "alt" || len(out.Forecast) == 0 {
		t.Fatalf("named-model response = %+v", out)
	}
	if _, code = getForecast(t, ts.URL, e.ID, "alt"); code != http.StatusOK {
		t.Fatalf("second named-model forecast status = %d", code)
	}
	cs := cache.Stats()
	if cs.Misses != 1 || cs.Hits < 1 {
		t.Fatalf("cache stats after two requests = %+v (want 1 load, then hits)", cs)
	}

	if _, code = getForecast(t, ts.URL, e.ID, "ghost"); code != http.StatusNotFound {
		t.Fatalf("unknown model status = %d, want 404", code)
	}
	// Default path unaffected by the registry option.
	if _, code = getForecast(t, ts.URL, e.ID, ""); code != http.StatusOK {
		t.Fatalf("default forecast status = %d", code)
	}

	// Without a registry, naming a model is a 404.
	bare := httptest.NewServer(New(p))
	defer bare.Close()
	ingestCSV(t, bare.URL, []*trace.EntitySeries{e})
	if _, code = getForecast(t, bare.URL, e.ID, "alt"); code != http.StatusNotFound {
		t.Fatalf("model param without registry = %d, want 404", code)
	}
}
