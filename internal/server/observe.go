package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"html"
	"io"
	"net/http"
	"strings"

	"repro/internal/quality"
)

// readJSON decodes a size-bounded JSON request body into v.
func readJSON(w http.ResponseWriter, r *http.Request, v any) error {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return fmt.Errorf("request body exceeds %d bytes", tooBig.Limit)
		}
		return fmt.Errorf("unreadable body: %v", err)
	}
	if err := json.Unmarshal(body, v); err != nil {
		return fmt.Errorf("invalid JSON: %v", err)
	}
	return nil
}

// Ground-truth ingestion and the live quality status surface.

// feedQuality streams one successful forecast into the quality engine:
// the self-join of the request's own history against earlier pending
// forecasts, the forecast itself for future resolution, and the input
// statistics for the drift/mutation detectors. Every engine call is a
// non-blocking enqueue, so this adds nanoseconds to the serving path.
func (s *Server) feedQuality(req *ForecastRequest, forecast []float64, sum inputSummary) {
	var t int64
	if req.T != nil {
		t = *req.T
		// Self-join: the history window carries fresh actuals for the
		// target indicator; timestamps overlapping previously forecast
		// times resolve those forecasts.
		if idx := s.quality.targetIdx; idx < len(req.Indicators) {
			tgt := req.Indicators[idx]
			if len(tgt) > 0 {
				s.engine.Observe(req.Entity, t-int64(len(tgt))+1, tgt)
				if s.adapt != nil {
					// The same actuals resolve mirrored shadow forecasts.
					s.adapt.ObserveActuals(req.Entity, t-int64(len(tgt))+1, tgt)
				}
			}
		}
		s.engine.RecordForecast(req.Entity, t, forecast)
	} else {
		// Without a sample time there is nothing to join on; a synthetic
		// request ordinal still drives the input detectors.
		t = s.reqSeq.Add(1)
	}
	if sum.HasMean || sum.HasOOR {
		s.engine.ObserveInput(req.Entity, t, sum.Mean, sum.OOR, sum.HasOOR)
	}
}

// ObserveRequest is the /v1/observe request body: ground truth for the
// target indicator, Values[i] measured at sample time T0+i.
type ObserveRequest struct {
	Entity string    `json:"entity,omitempty"`
	T0     int64     `json:"t0"`
	Values []float64 `json:"values"`
}

// ObserveResponse acknowledges accepted ground truth.
type ObserveResponse struct {
	Status   string `json:"status"`
	Accepted int    `json:"accepted"`
}

func (s *Server) handleObserve(w http.ResponseWriter, r *http.Request) {
	var req ObserveRequest
	if err := readJSON(w, r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if len(req.Values) == 0 {
		s.writeError(w, http.StatusBadRequest, "values must be non-empty")
		return
	}
	s.engine.Observe(req.Entity, req.T0, req.Values)
	if s.adapt != nil {
		s.adapt.ObserveActuals(req.Entity, req.T0, req.Values)
	}
	// 202: resolution happens asynchronously on the engine worker.
	s.writeJSON(w, http.StatusAccepted, ObserveResponse{Status: "accepted", Accepted: len(req.Values)})
}

func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	if !s.ready.Load() {
		s.writeError(w, http.StatusServiceUnavailable, "not ready")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, `{"status":"ready"}`)
}

func (s *Server) handleQualityStatus(w http.ResponseWriter, r *http.Request) {
	st := s.engine.Status()
	if r.URL.Query().Get("format") == "html" ||
		(r.URL.Query().Get("format") == "" && strings.Contains(r.Header.Get("Accept"), "text/html")) {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		writeQualityHTML(w, &st)
		return
	}
	s.writeJSON(w, http.StatusOK, st)
}

// writeQualityHTML renders the status report as a minimal, dependency-
// free HTML page for humans behind the same endpoint the JSON lives on.
func writeQualityHTML(w http.ResponseWriter, st *quality.StatusReport) {
	esc := html.EscapeString
	fmt.Fprint(w, `<!DOCTYPE html><html><head><title>forecast quality</title><style>
body{font-family:monospace;margin:2em}table{border-collapse:collapse;margin:1em 0}
td,th{border:1px solid #999;padding:4px 10px;text-align:right}th{background:#eee}
td:first-child,th:first-child{text-align:left}
.ok{color:#070}.warn{color:#b70}.alarm,.breach{color:#b00;font-weight:bold}
</style></head><body><h1>forecast quality</h1>`)
	fmt.Fprintf(w, "<p>t=%d · pending=%d · resolved=%d · expired=%d · dropped=%d</p>",
		st.Time, st.Pending, st.Resolved, st.Expired, st.Dropped)

	fmt.Fprintf(w, `<h2>drift</h2><table><tr><th>signal</th><th>state</th><th>level</th><th>baseline</th></tr>`)
	for _, row := range []struct {
		name string
		d    quality.DriftStatus
	}{{"error", st.ErrorDrift}, {"input", st.InputDrift}} {
		fmt.Fprintf(w, `<tr><td>%s</td><td class="%s">%s</td><td>%.4g</td><td>%.4g ± %.4g</td></tr>`,
			row.name, esc(row.d.State), esc(row.d.State), row.d.Level, row.d.BaselineMean, row.d.BaselineStd)
	}
	fmt.Fprint(w, "</table>")

	if len(st.SLO) > 0 {
		fmt.Fprint(w, `<h2>slo</h2><table><tr><th>rule</th><th>state</th><th>value</th><th>pairs</th></tr>`)
		for _, r := range st.SLO {
			fmt.Fprintf(w, `<tr><td>%s</td><td class="%s">%s</td><td>%.4g</td><td>%d</td></tr>`,
				esc(r.Rule), esc(r.State), esc(r.State), r.Value, r.Count)
		}
		fmt.Fprint(w, "</table>")
	}

	stepTable := func(steps []quality.StepStats, all quality.StepStats) {
		fmt.Fprint(w, `<table><tr><th>step</th><th>count</th><th>mae</th><th>mse</th><th>bias</th><th>over</th><th>under</th><th>p90|e|</th></tr>`)
		rows := append([]quality.StepStats{all}, steps...)
		for i, s := range rows {
			label := fmt.Sprintf("%d", s.Step)
			if i == 0 {
				label = "all"
			}
			fmt.Fprintf(w, "<tr><td>%s</td><td>%d</td><td>%.4g</td><td>%.4g</td><td>%+.4g</td><td>%d</td><td>%d</td><td>%.4g</td></tr>",
				label, s.Count, s.MAE, s.MSE, s.Bias, s.Over, s.Under, s.P90AbsErr)
		}
		fmt.Fprint(w, "</table>")
	}
	fmt.Fprint(w, "<h2>accuracy (all entities)</h2>")
	stepTable(st.Steps, st.Aggregate)

	for _, e := range st.Entities {
		fmt.Fprintf(w, "<h2>entity %s</h2><p>last_t=%d · pending=%d", esc(e.Entity), e.LastT, e.Pending)
		if len(e.InputMutations) > 0 {
			fmt.Fprintf(w, " · input mutations at %v", e.InputMutations)
		}
		if len(e.ResidualMutations) > 0 {
			fmt.Fprintf(w, " · residual mutations at %v", e.ResidualMutations)
		}
		fmt.Fprint(w, "</p>")
		stepTable(e.Steps, e.All)
	}
	fmt.Fprint(w, "</body></html>")
}
