package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/adapt"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/quality"
	"repro/internal/trace"
)

// TestForecastSwapHammer is the torn-read gate from the issue: hammer
// /v1/forecast from many goroutines while a hot-swap lands mid-flight.
// Every response must be 200, never degraded, and bitwise equal to the
// expected forecast OF ITS REPORTED GENERATION — a response mixing old
// and new weights (or a 5xx caused by the swap) fails. Run under -race
// this also proves the swap path is data-race-free against serving.
func TestForecastSwapHammer(t *testing.T) {
	p, e := fitted(t)

	// Candidate fine-tuned on slightly shifted history so its weights
	// (and forecasts) genuinely differ from generation 1.
	shift := make([][]float64, trace.NumIndicators)
	for i := range shift {
		src := e.Metrics[i]
		row := make([]float64, len(src))
		for j, v := range src {
			row[j] = v + 3
		}
		shift[i] = row
	}
	cand, eval, _, err := p.FineTune(shift, core.FineTuneConfig{Epochs: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}

	// Expected forecast per generation, computed up front: the serving
	// path is bitwise deterministic for a fixed model, and the shadow
	// inferencer agrees bitwise with post-swap serving (core suite).
	tail := make([][]float64, trace.NumIndicators)
	for i := range tail {
		m := e.Metrics[i]
		tail[i] = m[len(m)-p.MinHistory():]
	}
	f1, err := p.ForecastFrom(tail)
	if err != nil {
		t.Fatal(err)
	}
	in, err := p.PrepareInput(tail)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := p.NewInferencer(cand).Forecast(in)
	if err != nil {
		t.Fatal(err)
	}
	want := map[int64][]float64{1: f1, 2: f2}

	s := New(p, WithRegistry(obs.NewRegistry()))
	ts := httptest.NewServer(s)
	defer func() { ts.Close(); s.Close() }()

	body, _ := json.Marshal(ForecastRequest{Indicators: tail})
	var (
		stopHammer atomic.Bool
		sawGen     [3]atomic.Int64
		failures   atomic.Int64
		firstErr   atomic.Value
	)
	fail := func(format string, args ...any) {
		failures.Add(1)
		firstErr.CompareAndSwap(nil, fmt.Sprintf(format, args...))
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stopHammer.Load() {
				resp, err := http.Post(ts.URL+"/v1/forecast", "application/json", bytes.NewReader(body))
				if err != nil {
					fail("request error: %v", err)
					return
				}
				raw, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					fail("status %d: %s", resp.StatusCode, raw)
					return
				}
				var fr ForecastResponse
				if err := json.Unmarshal(raw, &fr); err != nil {
					fail("bad response JSON: %v", err)
					return
				}
				if fr.Degraded {
					fail("degraded forecast during swap")
					return
				}
				exp, ok := want[fr.Generation]
				if !ok {
					fail("unknown generation %d", fr.Generation)
					return
				}
				if len(fr.Forecast) != len(exp) {
					fail("forecast length %d, want %d", len(fr.Forecast), len(exp))
					return
				}
				for i := range exp {
					if math.Float64bits(fr.Forecast[i]) != math.Float64bits(exp[i]) {
						fail("gen %d forecast[%d] = %x, want %x — torn read",
							fr.Generation, i, math.Float64bits(fr.Forecast[i]), math.Float64bits(exp[i]))
						return
					}
				}
				sawGen[fr.Generation].Add(1)
			}
		}()
	}

	// Let generation 1 serve under load, swap mid-hammer, then let
	// generation 2 serve under load.
	for sawGen[1].Load() < 32 && failures.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	if _, _, gen, err := p.SwapModel(cand, eval); err != nil || gen != 2 {
		t.Fatalf("swap: gen=%d err=%v", gen, err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for sawGen[2].Load() < 32 && failures.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("generation 2 never observed under load")
		}
		time.Sleep(time.Millisecond)
	}
	stopHammer.Store(true)
	wg.Wait()

	if n := failures.Load(); n != 0 {
		t.Fatalf("%d hammer failures; first: %v", n, firstErr.Load())
	}
	if sawGen[1].Load() == 0 || sawGen[2].Load() == 0 {
		t.Fatalf("hammer did not straddle the swap: gen1=%d gen2=%d", sawGen[1].Load(), sawGen[2].Load())
	}
}

// TestServerAdaptationEndToEnd drives the whole loop over HTTP: a
// mutated regime is ingested and forecast against; the quality engine's
// mutation detector fires; the supervisor retrains from the rings,
// shadow-scores against mirrored live traffic (fed by the requests' own
// self-join actuals), and hot-swaps. The test gates on /debug/adapt
// reporting a swap and /v1/model reporting generation 2.
func TestServerAdaptationEndToEnd(t *testing.T) {
	ser := trace.GenerateWithMutations(900, []int{500}, 13)
	p := core.NewPredictor(core.PredictorConfig{
		Scenario: core.MulExp, Window: 16, Horizon: 3, Epochs: 4, Seed: 2,
		Model: core.Config{Channels: []int{8, 8}, KernelSize: 3, WeightNorm: true, FCWidth: 16},
	})
	clean := make([][]float64, trace.NumIndicators)
	for i := range clean {
		clean[i] = ser.Metrics[i][:480]
	}
	if err := p.Fit(clean, int(trace.CPUUtilPercent)); err != nil {
		t.Fatal(err)
	}

	s := New(p,
		WithRegistry(obs.NewRegistry()),
		WithQualityConfig(quality.Config{
			Mutation: quality.MutationConfig{MedianWidth: 5, Warmup: 16, Cooldown: 8, Alpha: 0.25, Delta: 3, Lambda: 50},
		}),
		WithIngest(IngestConfig{RingCapacity: 512}),
		WithAdaptation(adapt.Config{
			MinSamples:        160,
			FineTune:          core.FineTuneConfig{Epochs: 2, Seed: 5},
			MinShadowResolved: 6,
			ProbationResolved: 6,
			Cooldown:          time.Millisecond,
		}),
	)
	ts := httptest.NewServer(s)
	defer func() { ts.Close(); s.Close() }()

	// Stream the mutated tail into the rings (training data for the
	// candidate).
	var csv bytes.Buffer
	tailSer := &trace.EntitySeries{ID: "m1", Interval: ser.Interval}
	for i := range tailSer.Metrics {
		tailSer.Metrics[i] = ser.Metrics[i][500:]
	}
	if err := trace.WriteCSV(&csv, []*trace.EntitySeries{tailSer}); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/ingest", "text/csv", &csv)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}

	// Replay forecasts over the mutated regime with entity+T so the
	// self-join resolves earlier forecasts (feeding both the quality
	// engine and the shadow scorer) and input stats drive the mutation
	// detector. Walk until the supervisor reports a swap.
	hist := p.MinHistory()
	deadline := time.Now().Add(120 * time.Second)
	swapped := false
	for pass := 0; !swapped; pass++ {
		for s0 := 500 + hist; s0 < 900 && !swapped; s0++ {
			win := make([][]float64, trace.NumIndicators)
			for i := range win {
				win[i] = ser.Metrics[i][s0-hist : s0]
			}
			tt := int64(s0 - 1)
			raw, _ := json.Marshal(ForecastRequest{Indicators: win, Entity: "m1", T: &tt})
			r2, err := http.Post(ts.URL+"/v1/forecast", "application/json", strings.NewReader(string(raw)))
			if err != nil {
				t.Fatal(err)
			}
			io.Copy(io.Discard, r2.Body)
			r2.Body.Close()
			if r2.StatusCode != http.StatusOK {
				t.Fatalf("forecast status %d at sample %d", r2.StatusCode, s0)
			}
			st := s.Adaptation().Status()
			if st.Swaps >= 1 {
				swapped = true
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("no swap after %d passes; adapt status: %+v", pass+1, s.Adaptation().Status())
		}
	}

	// /v1/model reflects the new generation and the adapt snapshot.
	r3, err := http.Get(ts.URL + "/v1/model")
	if err != nil {
		t.Fatal(err)
	}
	defer r3.Body.Close()
	var info ModelInfo
	if err := json.NewDecoder(r3.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	if info.Generation < 2 {
		t.Fatalf("model generation = %d, want ≥ 2 after swap", info.Generation)
	}
	if info.Adapt == nil || info.Adapt.Swaps < 1 {
		t.Fatalf("model adapt snapshot missing or swapless: %+v", info.Adapt)
	}
	if info.Adapt.LastSwapUnix == 0 {
		t.Fatal("last-swap timestamp not reported")
	}

	// /debug/adapt serves the same snapshot.
	r4, err := http.Get(ts.URL + "/debug/adapt")
	if err != nil {
		t.Fatal(err)
	}
	defer r4.Body.Close()
	var st adapt.Status
	if err := json.NewDecoder(r4.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Swaps < 1 {
		t.Fatalf("/debug/adapt swaps = %d, want ≥ 1", st.Swaps)
	}
}

// TestIngestMaxEntitiesEviction: the ring store honors the LRU cap end
// to end — ingesting one entity past the cap evicts the oldest and the
// eviction surfaces on /metrics.
func TestIngestMaxEntitiesEviction(t *testing.T) {
	p, e := fitted(t)
	reg := obs.NewRegistry()
	s := New(p, WithRegistry(reg), WithIngest(IngestConfig{RingCapacity: 64, MaxEntities: 2}))
	ts := httptest.NewServer(s)
	defer func() { ts.Close(); s.Close() }()

	ingest := func(id string) {
		t.Helper()
		es := &trace.EntitySeries{ID: id, Interval: e.Interval}
		for i := range es.Metrics {
			es.Metrics[i] = e.Metrics[i][:8]
		}
		var csv bytes.Buffer
		if err := trace.WriteCSV(&csv, []*trace.EntitySeries{es}); err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(ts.URL+"/v1/ingest", "text/csv", &csv)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest %s: status %d", id, resp.StatusCode)
		}
	}
	ingest("a")
	ingest("b")
	ingest("c") // evicts a (LRU)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(raw), "rptcn_ingest_evicted_entities_total 1") {
		t.Fatalf("eviction counter missing from /metrics:\n%s",
			grepLines(string(raw), "rptcn_ingest_"))
	}
	// The evicted entity is gone; the newcomers survive.
	var ids []EntityInfo
	r2, err := http.Get(ts.URL + "/v1/entities")
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	if err := json.NewDecoder(r2.Body).Decode(&ids); err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 {
		t.Fatalf("entities after eviction = %v, want 2", ids)
	}
	for _, info := range ids {
		if info.ID == "a" {
			t.Fatal("LRU entity a not evicted")
		}
	}
}

func grepLines(s, substr string) string {
	var b strings.Builder
	for _, line := range strings.Split(s, "\n") {
		if strings.Contains(line, substr) {
			b.WriteString(line)
			b.WriteString("\n")
		}
	}
	return b.String()
}
