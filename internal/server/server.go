// Package server exposes a fitted RPTCN predictor over HTTP so a cluster
// resource manager can query forecasts online — the integration point the
// paper's Sec. II motivates ("the predictive result can provide support
// for job scheduling and an effective reference for resource allocation").
//
// Endpoints:
//
//	GET  /healthz      liveness probe
//	GET  /metrics      Prometheus text-format metrics
//	GET  /v1/model     model metadata (scenario, window, screening, size)
//	POST /v1/forecast  {"indicators": [[...],...]} → {"forecast": [...]}
//
// Every route is instrumented through internal/obs: request counters by
// path and status code, an in-flight gauge, per-route latency histograms,
// and the rptcn_forecast_latency_seconds SLO histogram.
package server

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"sync"

	"repro/internal/core"
	"repro/internal/nn"
	"repro/internal/obs"
	obstrace "repro/internal/obs/trace"
	"repro/internal/trace"
)

// Server routes forecast requests to a fitted predictor. Model layers
// cache activations during a forward pass, so inference is serialized with
// a mutex; the handler itself is safe for concurrent use.
type Server struct {
	predictor *core.Predictor
	mux       *http.ServeMux
	reg       *obs.Registry
	log       *slog.Logger
	tracer    *obstrace.Tracer
	quality   *qualityMonitor

	inferMu sync.Mutex // guards predictor.ForecastFrom
}

// Option customizes a Server.
type Option func(*Server)

// WithRegistry directs the server's metrics into r instead of the
// process-wide obs.Default() registry. Tests use this for isolation.
func WithRegistry(r *obs.Registry) Option {
	return func(s *Server) { s.reg = r }
}

// WithLogger replaces the server's structured logger.
func WithLogger(l *slog.Logger) Option {
	return func(s *Server) { s.log = l }
}

// WithTracer records one "http.request" span per served request into t
// (spans are collected only while t is enabled).
func WithTracer(t *obstrace.Tracer) Option {
	return func(s *Server) { s.tracer = t }
}

// New wraps a fitted predictor. It panics if p is nil.
func New(p *core.Predictor, opts ...Option) *Server {
	if p == nil {
		panic("server: nil predictor")
	}
	s := &Server{predictor: p, mux: http.NewServeMux()}
	for _, o := range opts {
		o(s)
	}
	if s.reg == nil {
		s.reg = obs.Default()
	}
	if s.log == nil {
		s.log = obs.Logger("server")
	}
	s.quality = newQualityMonitor(s.reg, p)
	in := newInstrumentation(s.reg, s.tracer)
	s.mux.HandleFunc("GET /healthz", in.wrap("/healthz", s.handleHealth))
	s.mux.HandleFunc("GET /v1/model", in.wrap("/v1/model", s.handleModel))
	s.mux.HandleFunc("POST /v1/forecast", in.wrap("/v1/forecast", s.handleForecast))
	s.mux.Handle("GET /metrics", s.reg.Handler())
	// Method-less fallbacks keep 405 semantics for known paths (a bare
	// catch-all would swallow wrong-method requests as 404s).
	s.mux.HandleFunc("/v1/forecast", in.wrap("/v1/forecast", methodNotAllowed(http.MethodPost)))
	s.mux.HandleFunc("/healthz", in.wrap("/healthz", methodNotAllowed(http.MethodGet)))
	s.mux.HandleFunc("/v1/model", in.wrap("/v1/model", methodNotAllowed(http.MethodGet)))
	// Cardinality guard: every unregistered path lands here and is
	// instrumented under the single route label "other", so arbitrary
	// probing cannot mint new metric series.
	s.mux.HandleFunc("/", in.wrap("other", s.handleNotFound))
	return s
}

// methodNotAllowed rejects a request to a known path with the wrong
// method, advertising the allowed one.
func methodNotAllowed(allow string) http.HandlerFunc {
	return func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Allow", allow)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusMethodNotAllowed)
		fmt.Fprintln(w, `{"error":"method not allowed"}`)
	}
}

// Registry returns the metrics registry the server reports into.
func (s *Server) Registry() *obs.Registry { return s.reg }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func (s *Server) handleNotFound(w http.ResponseWriter, _ *http.Request) {
	s.writeError(w, http.StatusNotFound, "not found")
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, `{"status":"ok"}`)
}

// ModelInfo is the /v1/model response body.
type ModelInfo struct {
	Scenario       string   `json:"scenario"`
	Window         int      `json:"window"`
	Horizon        int      `json:"horizon"`
	ExpandFactor   int      `json:"expand_factor"`
	Selected       []string `json:"selected_indicators"`
	ParamCount     int      `json:"param_count"`
	ReceptiveField int      `json:"receptive_field"`
}

func (s *Server) handleModel(w http.ResponseWriter, _ *http.Request) {
	p := s.predictor
	info := ModelInfo{
		Scenario:     p.Cfg.Scenario.String(),
		Window:       p.Cfg.Window,
		Horizon:      p.Cfg.Horizon,
		ExpandFactor: p.Cfg.ExpandFactor,
	}
	for _, idx := range p.SelectedIndicators() {
		info.Selected = append(info.Selected, trace.Indicator(idx).String())
	}
	if m := p.Model(); m != nil {
		info.ParamCount = nn.ParamCount(m)
		info.ReceptiveField = m.ReceptiveField()
	}
	s.writeJSON(w, http.StatusOK, info)
}

// ForecastRequest is the /v1/forecast request body: raw indicator history
// in canonical indicator order, [indicator][time].
type ForecastRequest struct {
	Indicators [][]float64 `json:"indicators"`
}

// ForecastResponse is the /v1/forecast response body.
type ForecastResponse struct {
	Forecast []float64 `json:"forecast"`
	Target   string    `json:"target"`
	Horizon  int       `json:"horizon"`
}

// maxBodyBytes bounds request bodies (a window of 8 indicators is tiny;
// 16 MiB leaves room for long histories without allowing abuse).
const maxBodyBytes = 16 << 20

func (s *Server) handleForecast(w http.ResponseWriter, r *http.Request) {
	var req ForecastRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err := dec.Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Sprintf("invalid JSON: %v", err))
		return
	}
	if len(req.Indicators) == 0 {
		s.writeError(w, http.StatusBadRequest, "indicators must be non-empty")
		return
	}
	s.inferMu.Lock()
	forecast, err := s.predictor.ForecastFrom(req.Indicators)
	s.inferMu.Unlock()
	if err != nil {
		s.writeError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	// Online quality monitoring: backtest against the actuals the request
	// already carries and track input drift vs the training bounds. One
	// extra inference per request — acceptable at this model size; the
	// skipped counter says when histories are too short to afford it.
	s.quality.observe(req.Indicators, func(h [][]float64) ([]float64, error) {
		s.inferMu.Lock()
		defer s.inferMu.Unlock()
		return s.predictor.ForecastFrom(h)
	})
	s.writeJSON(w, http.StatusOK, ForecastResponse{
		Forecast: forecast,
		Target:   targetName(s.predictor),
		Horizon:  s.predictor.Cfg.Horizon,
	})
}

func targetName(p *core.Predictor) string {
	sel := p.SelectedIndicators()
	if len(sel) == 0 {
		return ""
	}
	return trace.Indicator(sel[0]).String()
}

type errorBody struct {
	Error string `json:"error"`
}

func (s *Server) writeError(w http.ResponseWriter, code int, msg string) {
	s.writeJSON(w, code, errorBody{Error: msg})
}

func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are already out, so the client sees a truncated body;
		// record the failure instead of dropping it silently.
		s.log.Error("response encode failed", "status", code, "err", err)
		s.reg.Counter("rptcn_http_encode_errors_total",
			"Responses whose JSON encoding failed mid-write.").Inc()
	}
}
