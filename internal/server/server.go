// Package server exposes a fitted RPTCN predictor over HTTP so a cluster
// resource manager can query forecasts online — the integration point the
// paper's Sec. II motivates ("the predictive result can provide support
// for job scheduling and an effective reference for resource allocation").
//
// Endpoints:
//
//	GET  /healthz        liveness probe (process up)
//	GET  /readyz         readiness probe (model loaded, batcher running)
//	GET  /metrics        Prometheus text-format metrics
//	GET  /v1/model       model metadata (scenario, window, screening, size)
//	POST /v1/forecast    {"indicators": [[...],...]} → {"forecast": [...]}
//	POST /v1/observe     ground-truth ingestion for forecast-quality joins
//	GET  /debug/quality  live forecast-quality status (JSON, ?format=html)
//	GET  /debug/fleet    per-entity fleet telemetry: top-K heavy hitters,
//	                     latency quantiles, exemplars, trace sampling
//	                     (JSON, ?format=html)
//	GET  /debug          index page linking every diagnostic endpoint
//	GET  /debug/traces   sampled span journal (JSONL, when tracing is on)
//
// Every route is instrumented through internal/obs: request counters by
// path and status code, an in-flight gauge, per-route latency histograms,
// and the rptcn_forecast_latency_seconds SLO histogram.
//
// Forecast quality is measured online by internal/quality: each served
// forecast is remembered, and when ground truth for its target times
// arrives — via POST /v1/observe, or implicitly when a later forecast
// request's history overlaps them (requests that carry an entity and a
// sample time) — the resolved errors feed rolling accuracy windows,
// drift/mutation detectors, and SLO rules surfaced on /debug/quality.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/adapt"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/obs/runlog"
	"repro/internal/obs/sketch"
	obstrace "repro/internal/obs/trace"
	"repro/internal/quality"
	"repro/internal/registry"
	"repro/internal/shard"
	"repro/internal/trace"
)

// Server routes forecast requests to a fitted predictor. Concurrent
// requests are micro-batched: each prepares its input in parallel, then
// queues for the collector goroutine, which fuses up to MaxBatch waiting
// requests into one grad-free arena forward (see batcher.go). The
// handler itself is safe for concurrent use.
type Server struct {
	predictor  *core.Predictor
	mux        *http.ServeMux
	reg        *obs.Registry
	log        *slog.Logger
	tracer     *obstrace.Tracer
	quality    *qualityMonitor
	resilience ResilienceConfig
	batchCfg   BatchConfig
	batcher    *batcher

	// Online forecast-quality engine (ground-truth joins, drift and
	// mutation detectors, SLO rules — see internal/quality).
	engine     *quality.Engine
	qualityCfg quality.Config
	journal    *runlog.Run
	reqSeq     atomic.Int64 // synthetic sample clock for t-less requests

	// ready flips true once the model is loaded and the batcher is
	// running, and false again on Close — the /readyz answer.
	ready atomic.Bool

	// Fault-tolerance plumbing: load shedding, circuit breaking, and the
	// counters that account for every shed/degraded/recovered request.
	sem      chan struct{}
	breaker  *breaker
	dropped  *obs.Counter
	panics   *obs.Counter
	canceled *obs.Counter

	// Streaming ingestion and sharded entity serving: the entity→shard
	// router owns the per-entity sample rings (fed by /v1/ingest) and
	// serves /v1/forecast/{entity} through per-shard micro-batchers (nil
	// when ingestion is disabled), plus the accounting metrics.
	rings          *shard.Router
	shardCfg       ShardConfig
	modelCache     *registry.Cache
	ingestCfg      IngestConfig
	ingestRows     *obs.Counter
	ingestSkipped  *obs.Counter
	ingestRejected *obs.Counter
	ingestEntities *obs.Gauge
	ingestEvicted  *obs.Counter

	// Online adaptation: the drift-triggered retrain/shadow/hot-swap
	// supervisor (nil unless WithAdaptation was given and the ingestion
	// rings it trains from are enabled).
	adapt    *adapt.Supervisor
	adaptCfg *adapt.Config

	// Fleet telemetry: O(K) per-entity sketches behind /debug/fleet
	// (nil when disabled), the forecast-latency histogram whose bucket
	// exemplars link into /debug/traces, and the unknown-path guard.
	fleet       *sketch.Fleet
	fleetCfg    FleetConfig
	forecastLat *obs.Histogram
	debugAddr   string

	unknownPaths *obs.Counter
	unknownMu    sync.Mutex
	unknownSeen  map[string]bool
}

// Option customizes a Server.
type Option func(*Server)

// WithRegistry directs the server's metrics into r instead of the
// process-wide obs.Default() registry. Tests use this for isolation.
func WithRegistry(r *obs.Registry) Option {
	return func(s *Server) { s.reg = r }
}

// WithLogger replaces the server's structured logger.
func WithLogger(l *slog.Logger) Option {
	return func(s *Server) { s.log = l }
}

// WithTracer records one "http.request" span per served request into t
// (spans are collected only while t is enabled).
func WithTracer(t *obstrace.Tracer) Option {
	return func(s *Server) { s.tracer = t }
}

// WithQualityConfig tunes the online quality engine (window sizes,
// detector thresholds, SLO rules). Horizon and Registry are always taken
// from the server's own predictor and registry.
func WithQualityConfig(cfg quality.Config) Option {
	return func(s *Server) { s.qualityCfg = cfg }
}

// WithJournal streams drift and SLO state transitions into the run
// journal (alongside the training events already recorded there).
func WithJournal(run *runlog.Run) Option {
	return func(s *Server) { s.journal = run }
}

// New wraps a fitted predictor. It panics if p is nil.
func New(p *core.Predictor, opts ...Option) *Server {
	if p == nil {
		panic("server: nil predictor")
	}
	s := &Server{predictor: p, mux: http.NewServeMux()}
	for _, o := range opts {
		o(s)
	}
	if s.reg == nil {
		s.reg = obs.Default()
	}
	if s.log == nil {
		s.log = obs.Logger("server")
	}
	s.quality = newQualityMonitor(s.reg, p)
	s.resilience.fillDefaults()
	s.sem = make(chan struct{}, s.resilience.MaxInFlight)
	s.dropped = s.reg.Counter("rptcn_dropped_requests_total",
		"Requests shed by the concurrency limiter (429).")
	s.panics = s.reg.Counter("rptcn_panics_recovered_total",
		"Panics recovered by the serving middleware instead of crashing the process.")
	s.canceled = s.reg.Counter("rptcn_canceled_requests_total",
		"Requests abandoned by the client before the forecast finished (499).")
	s.breaker = newBreaker(s.resilience.Breaker, s.reg.Gauge("rptcn_circuit_open",
		"1 while the inference circuit breaker is open or half-open, else 0."))
	// The queue holds at most MaxInFlight requests (the limiter admits no
	// more), so enqueueing never blocks a request goroutine.
	s.batcher = newBatcher(p, s.batchCfg, s.resilience.MaxInFlight, s.reg, s.log, s.panics)
	// Streaming ingestion rings + the entity→shard router: one
	// fixed-capacity ring per entity (sized to hold a full input window
	// plus slack), sharded across the router's workers. Built before the
	// quality engine because the adaptation supervisor trains from the
	// rings AND subscribes to the engine's events.
	s.ingestCfg.fillDefaults(p)
	s.batchCfg.fillDefaults()
	if !s.ingestCfg.Disabled {
		rt, err := s.buildRouter()
		if err != nil {
			// Unreachable with validated inputs, but never let a config
			// slip kill JSON-path serving: degrade to ingestion-off.
			s.log.Error("entity serving disabled: shard router failed to start", "err", err)
			s.ingestCfg.Disabled = true
		} else {
			s.rings = rt
		}
	}
	if !s.ingestCfg.Disabled {
		s.ingestRows = s.reg.Counter("rptcn_ingested_samples_total",
			"Usable CSV rows accepted by /v1/ingest.")
		s.ingestSkipped = s.reg.Counter("rptcn_ingest_skipped_rows_total",
			"Unusable CSV rows dropped by the lenient streaming scanner.")
		s.ingestRejected = s.reg.Counter("rptcn_ingest_rejected_samples_total",
			"Parsed samples rejected by the rings (non-advancing timestamps).")
		s.ingestEntities = s.reg.Gauge("rptcn_ingest_entities",
			"Entities with ring state from streaming ingestion.")
		s.ingestEvicted = s.reg.Counter("rptcn_ingest_evicted_entities_total",
			"Entities LRU-evicted from the ingestion ring store (max-entities cap).")
		s.reg.RegisterCollector(func() {
			if d := s.rings.Evicted() - uint64(s.ingestEvicted.Value()); d > 0 {
				s.ingestEvicted.Add(float64(d))
			}
		})
	}
	// Online adaptation: fine-tune on drift, shadow-score, hot-swap. The
	// supervisor subscribes to the quality engine's drift/mutation
	// events, so it must exist before the engine. Serving never depends
	// on it: a failed setup degrades to a static model with a warning.
	if s.adaptCfg != nil {
		cfg := *s.adaptCfg
		cfg.Predictor = p
		if s.rings != nil {
			// Guarded: a nil *shard.Router inside the RingSource
			// interface would defeat adapt's own nil check.
			cfg.Rings = s.rings
		}
		if cfg.Registry == nil {
			cfg.Registry = s.reg
		}
		if cfg.Journal == nil {
			cfg.Journal = s.journal
		}
		if s.rings == nil {
			s.log.Warn("adaptation disabled: streaming ingestion is off, so there is no history to retrain from")
		} else if sup, err := adapt.New(cfg); err != nil {
			s.log.Error("adaptation disabled: supervisor failed to start", "err", err)
		} else {
			s.adapt = sup
			userEvents := s.qualityCfg.Events
			s.qualityCfg.Events = func(ev quality.Event) {
				sup.OnQualityEvent(ev)
				if userEvents != nil {
					userEvents(ev)
				}
			}
		}
	}
	// The quality engine closes the forecast→ground-truth loop. Its hot
	// path is a non-blocking channel send, so serving latency is
	// unaffected; the worker goroutine owns all state.
	s.qualityCfg.Horizon = p.Cfg.Horizon
	s.qualityCfg.Registry = s.reg
	if s.qualityCfg.Journal == nil {
		s.qualityCfg.Journal = s.journal
	}
	s.engine = quality.New(s.qualityCfg)
	obs.RegisterBuildInfo(s.reg)
	// Pre-register every degradation reason so the family is complete on
	// /metrics before the first incident.
	for _, reason := range degradeReasons {
		s.reg.Counter(degradedName, degradedHelp, obs.L("reason", reason))
	}
	// Fleet telemetry: per-entity latency/error sketches at O(K) memory
	// (see internal/obs/sketch and /debug/fleet). On by default — a
	// Record is ~100 ns against a millisecond-scale forecast.
	if !s.fleetCfg.Disabled {
		s.fleet = sketch.NewFleet(sketch.Config{K: s.fleetCfg.K, Compression: s.fleetCfg.Compression})
	}
	// The SLO histogram doubles as the exemplar carrier: the middleware
	// attaches (trace ID, entity) exemplars to its buckets, and
	// /debug/fleet surfaces them. Same family the middleware records
	// into — Histogram is get-or-create by name.
	s.forecastLat = s.reg.Histogram("rptcn_forecast_latency_seconds",
		"End-to-end forecast request latency.", nil)
	s.unknownSeen = make(map[string]bool)
	s.unknownPaths = s.reg.Counter("rptcn_http_unknown_paths_total",
		"Requests for paths the server does not route (404 catch-all).")
	if s.tracer != nil {
		registerTraceMetrics(s.reg, s.tracer)
	}

	in := newInstrumentation(s)
	// Middleware order (outer to inner): instrumentation sees the final
	// status; recovery turns handler panics into 500s; the limiter sheds
	// load before any work happens. /healthz and /metrics bypass the
	// limiter so probes and scrapes keep answering under overload.
	s.mux.HandleFunc("GET /healthz", in.wrap("/healthz", s.recovered(s.handleHealth)))
	s.mux.HandleFunc("GET /readyz", in.wrap("/readyz", s.recovered(s.handleReady)))
	s.mux.HandleFunc("GET /v1/model", in.wrap("/v1/model", s.recovered(s.limited(s.handleModel))))
	s.mux.HandleFunc("POST /v1/forecast", in.wrap("/v1/forecast", s.recovered(s.limited(s.handleForecast))))
	s.mux.HandleFunc("POST /v1/observe", in.wrap("/v1/observe", s.recovered(s.limited(s.handleObserve))))
	s.mux.HandleFunc("GET /debug/quality", in.wrap("/debug/quality", s.recovered(s.handleQualityStatus)))
	if s.adapt != nil {
		s.mux.HandleFunc("GET /debug/adapt", in.wrap("/debug/adapt", s.recovered(s.handleAdaptStatus)))
		s.mux.HandleFunc("/debug/adapt", in.wrap("/debug/adapt", methodNotAllowed(http.MethodGet)))
	}
	s.mux.HandleFunc("GET /debug/fleet", in.wrap("/debug/fleet", s.recovered(s.handleFleet)))
	s.mux.HandleFunc("GET /debug", in.wrap("/debug", s.recovered(s.handleDebugIndex)))
	s.mux.HandleFunc("GET /debug/{$}", in.wrap("/debug", s.recovered(s.handleDebugIndex)))
	if s.tracer != nil {
		// The exemplar trace IDs on /debug/fleet key into this journal,
		// so it must be reachable from the serving address, not only the
		// pprof sidecar.
		s.mux.HandleFunc("GET /debug/traces", in.wrap("/debug/traces", s.tracer.Handler().ServeHTTP))
	}
	if !s.ingestCfg.Disabled {
		s.mux.HandleFunc("POST /v1/ingest", in.wrap("/v1/ingest", s.recovered(s.limited(s.handleIngest))))
		s.mux.HandleFunc("GET /v1/entities", in.wrap("/v1/entities", s.recovered(s.limited(s.handleEntities))))
		s.mux.HandleFunc("GET /v1/forecast/{entity}", in.wrap("/v1/forecast/{entity}",
			s.recovered(s.limited(s.handleEntityForecast))))
		s.mux.HandleFunc("GET /debug/shards", in.wrap("/debug/shards", s.recovered(s.handleShards)))
		s.mux.HandleFunc("/v1/ingest", in.wrap("/v1/ingest", methodNotAllowed(http.MethodPost)))
		s.mux.HandleFunc("/v1/entities", in.wrap("/v1/entities", methodNotAllowed(http.MethodGet)))
		s.mux.HandleFunc("/debug/shards", in.wrap("/debug/shards", methodNotAllowed(http.MethodGet)))
	}
	s.mux.Handle("GET /metrics", s.reg.Handler())
	// Method-less fallbacks keep 405 semantics for known paths (a bare
	// catch-all would swallow wrong-method requests as 404s).
	s.mux.HandleFunc("/v1/forecast", in.wrap("/v1/forecast", methodNotAllowed(http.MethodPost)))
	s.mux.HandleFunc("/v1/observe", in.wrap("/v1/observe", methodNotAllowed(http.MethodPost)))
	s.mux.HandleFunc("/healthz", in.wrap("/healthz", methodNotAllowed(http.MethodGet)))
	s.mux.HandleFunc("/readyz", in.wrap("/readyz", methodNotAllowed(http.MethodGet)))
	s.mux.HandleFunc("/v1/model", in.wrap("/v1/model", methodNotAllowed(http.MethodGet)))
	s.mux.HandleFunc("/debug/quality", in.wrap("/debug/quality", methodNotAllowed(http.MethodGet)))
	s.mux.HandleFunc("/debug/fleet", in.wrap("/debug/fleet", methodNotAllowed(http.MethodGet)))
	// Cardinality guard: every unregistered path lands here and is
	// instrumented under the single route label "other", so arbitrary
	// probing cannot mint new metric series.
	s.mux.HandleFunc("/", in.wrap("other", s.recovered(s.handleNotFound)))
	// Ready: the predictor carries a loaded model and the batcher's
	// collector goroutine is running. An unfitted predictor serves
	// metadata and probes but reports unready until a model arrives.
	s.ready.Store(p.Model() != nil)
	return s
}

const (
	degradedName = "rptcn_degraded_forecasts_total"
	degradedHelp = "Forecasts served by the naive fallback instead of the model, by reason."
)

// degradeReasons enumerates every way a forecast can degrade.
var degradeReasons = []string{"panic", "timeout", "invalid_output", "breaker_open"}

func (s *Server) degradedInc(reason string) {
	s.reg.Counter(degradedName, degradedHelp, obs.L("reason", reason)).Inc()
}

// methodNotAllowed rejects a request to a known path with the wrong
// method, advertising the allowed one.
func methodNotAllowed(allow string) http.HandlerFunc {
	return func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Allow", allow)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusMethodNotAllowed)
		fmt.Fprintln(w, `{"error":"method not allowed"}`)
	}
}

// Registry returns the metrics registry the server reports into.
func (s *Server) Registry() *obs.Registry { return s.reg }

// Close stops the micro-batching collector and the quality engine's
// worker goroutine; requests caught mid-queue are answered with
// ErrServerClosed and /readyz flips to 503. Idempotent. In-flight HTTP
// requests should be drained first (http.Server.Shutdown).
func (s *Server) Close() error {
	s.ready.Store(false)
	s.batcher.close()
	if s.rings != nil {
		s.rings.Close()
	}
	err := s.engine.Close()
	if s.adapt != nil {
		// After the engine: no more events can arrive once it is down.
		s.adapt.Close()
	}
	return err
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, `{"status":"ok"}`)
}

// ModelInfo is the /v1/model response body.
type ModelInfo struct {
	Scenario       string   `json:"scenario"`
	Window         int      `json:"window"`
	Horizon        int      `json:"horizon"`
	ExpandFactor   int      `json:"expand_factor"`
	Selected       []string `json:"selected_indicators"`
	ParamCount     int      `json:"param_count"`
	ReceptiveField int      `json:"receptive_field"`
	// Float32 reports whether forecasts are currently served on the
	// float32 SIMD tier (see core.Predictor.EnableFloat32).
	Float32 bool `json:"float32,omitempty"`
	// Generation counts the weights serving right now: 1 is the original
	// fit; every online hot-swap (promotion or rollback) increments it.
	Generation int64 `json:"generation,omitempty"`
	// Adapt is the online-adaptation supervisor's snapshot (state,
	// swaps, rollbacks, last swap time) — present only when adaptation
	// is enabled.
	Adapt *adapt.Status `json:"adapt,omitempty"`
}

func (s *Server) handleModel(w http.ResponseWriter, _ *http.Request) {
	p := s.predictor
	info := ModelInfo{
		Scenario:     p.Cfg.Scenario.String(),
		Window:       p.Cfg.Window,
		Horizon:      p.Cfg.Horizon,
		ExpandFactor: p.Cfg.ExpandFactor,
		Float32:      p.Float32Active(),
		Generation:   p.Generation(),
	}
	if s.adapt != nil {
		st := s.adapt.Status()
		info.Adapt = &st
	}
	for _, idx := range p.SelectedIndicators() {
		info.Selected = append(info.Selected, trace.Indicator(idx).String())
	}
	if m := p.Model(); m != nil {
		info.ParamCount = nn.ParamCount(m)
		info.ReceptiveField = m.ReceptiveField()
	}
	s.writeJSON(w, http.StatusOK, info)
}

// ForecastRequest is the /v1/forecast request body: raw indicator history
// in canonical indicator order, [indicator][time]. Entity and T are
// optional quality-tracking metadata: T is the sample time (monotone
// per-entity index) of the LAST history sample, so forecast step k
// predicts time T+k. Requests that carry them get their forecasts
// remembered and automatically resolved against later overlapping
// windows ("self-join") or POST /v1/observe ground truth.
type ForecastRequest struct {
	Indicators [][]float64 `json:"indicators"`
	Entity     string      `json:"entity,omitempty"`
	T          *int64      `json:"t,omitempty"`
}

// ForecastResponse is the /v1/forecast response body. Degraded marks a
// fallback (last-value) forecast served because the model failed, timed
// out, or is circuit-broken — still actionable for a resource manager,
// but flagged so callers can weigh it accordingly.
type ForecastResponse struct {
	Forecast []float64 `json:"forecast"`
	Target   string    `json:"target"`
	Horizon  int       `json:"horizon"`
	Degraded bool      `json:"degraded,omitempty"`
	// Generation identifies the serving-model weights that produced
	// this forecast (1 = the original fit, +1 per online hot-swap,
	// rollbacks included). 0 on degraded fallbacks, which bypass the
	// model entirely.
	Generation int64 `json:"generation,omitempty"`
	// Model names the registry model that served this forecast (entity
	// path with ?model=); empty for the default serving model.
	Model string `json:"model,omitempty"`
}

// maxBodyBytes bounds request bodies (a window of 8 indicators is tiny;
// 16 MiB leaves room for long histories without allowing abuse).
const maxBodyBytes = 16 << 20

func (s *Server) handleForecast(w http.ResponseWriter, r *http.Request) {
	var req ForecastRequest
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit))
			return
		}
		s.writeError(w, http.StatusBadRequest, fmt.Sprintf("unreadable body: %v", err))
		return
	}
	if err := decodeForecastRequest(body, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Sprintf("invalid JSON: %v", err))
		return
	}
	if len(req.Indicators) == 0 {
		s.writeError(w, http.StatusBadRequest, "indicators must be non-empty")
		return
	}
	// Ragged histories can never form a valid window; reject them as a
	// client error here rather than letting the pipeline's panic surface
	// as a model failure (which would charge the breaker for a bad payload).
	for i, row := range req.Indicators {
		if len(row) != len(req.Indicators[0]) {
			s.writeError(w, http.StatusBadRequest, fmt.Sprintf(
				"indicator series must all have the same length: series 0 has %d samples, series %d has %d",
				len(req.Indicators[0]), i, len(row)))
			return
		}
	}

	// Report the entity to the instrumentation middleware, which feeds
	// the fleet sketches and latency exemplars after the response is out.
	ft := telemetryFrom(r.Context())
	ft.set(req.Entity, false)

	o, res := s.infer(r.Context(), req.Indicators)
	forecast := o.forecast
	switch res.kind {
	case inferOK:
		// Online quality monitoring: backtest against the actuals the
		// request already carries and track input drift vs the training
		// bounds. Skipped on degraded/failed requests — there is nothing
		// meaningful to backtest.
		sum := s.quality.observe(req.Indicators, func(h [][]float64) (f []float64, err error) {
			defer func() {
				if p := recover(); p != nil {
					s.panics.Inc()
					err = fmt.Errorf("inference panic: %v", p)
				}
			}()
			// ForecastFrom self-serializes inside the predictor, so the
			// backtest needs no server-side lock.
			return s.predictor.ForecastFrom(h)
		})
		s.feedQuality(&req, forecast, sum)
		// Shadow evaluation: mirror the served forecast (and its exact
		// prepared input) to the adaptation supervisor. A cheap atomic
		// no-op unless a candidate is actually being scored.
		if s.adapt != nil && req.T != nil {
			s.adapt.MirrorForecast(req.Entity, *req.T, o.in, forecast)
		}
		s.writeJSON(w, http.StatusOK, ForecastResponse{
			Forecast:   forecast,
			Target:     targetName(s.predictor),
			Horizon:    s.predictor.Cfg.Horizon,
			Generation: o.gen,
		})
	case inferBadInput:
		s.writeError(w, http.StatusUnprocessableEntity, res.err.Error())
	case inferCanceled:
		// The client went away mid-inference. 499, not a 5xx: the model
		// did nothing wrong, so neither the error counter nor the
		// breaker hears about it.
		s.canceled.Inc()
		s.writeError(w, StatusClientClosedRequest, "client closed request")
	default: // degraded: fall back to the last-value forecast
		fb, ok := s.fallbackForecast(req.Indicators)
		if !ok {
			s.writeError(w, http.StatusServiceUnavailable,
				"model unavailable and history too short for a fallback forecast")
			return
		}
		ft.set(req.Entity, true)
		s.degradedInc(res.reason)
		s.log.Warn("serving degraded forecast", "reason", res.reason)
		s.writeJSON(w, http.StatusOK, ForecastResponse{
			Forecast: fb,
			Target:   targetName(s.predictor),
			Horizon:  s.predictor.Cfg.Horizon,
			Degraded: true,
		})
	}
}

// infer outcome kinds.
const (
	inferOK = iota
	inferBadInput
	inferCanceled
	inferDegraded
)

type inferResult struct {
	kind   int
	reason string // degradation reason, when kind == inferDegraded
	err    error  // client-side input error, when kind == inferBadInput
}

// infer runs one model inference with the full protection stack: the
// circuit breaker may short-circuit it, a panic anywhere on the model
// path is recovered off-goroutine (a cross-goroutine panic cannot be
// caught by HTTP middleware), the request deadline bounds the wait, a
// canceled client context is surfaced as such, and a non-finite forecast
// is rejected as a model failure.
//
// The work splits in two: the per-request goroutine runs the data
// pipeline (PrepareInput — read-only, so requests prepare in parallel),
// then hands the prepared window to the micro-batcher, which fuses
// concurrent requests into one arena forward. Every protection is still
// per-request: each waiter has its own deadline, its own breaker
// outcome, and its own degradation decision.
func (s *Server) infer(ctx context.Context, series [][]float64) (inferOutcome, inferResult) {
	return s.guardedInfer(ctx, func() inferOutcome {
		in, err := s.predictor.PrepareInput(series)
		if err != nil {
			return inferOutcome{err: err}
		}
		resp := s.batcher.submit(in)
		return inferOutcome{forecast: resp.forecast, in: in, gen: resp.gen, err: resp.err, panicked: resp.panicked}
	})
}

// inferOutcome is one protected inference attempt's result. in and gen
// ride along for the adaptation supervisor: the prepared input lets the
// shadow candidate re-run exactly what the live model saw, and the
// generation attributes the forecast to one set of weights.
type inferOutcome struct {
	forecast []float64
	in       *core.PreparedInput
	gen      int64
	err      error
	panicked bool
}

// guardedInfer runs one inference attempt under the full protection
// stack (breaker admission, off-goroutine panic recovery, request
// timeout, client-cancel detection, finite-output validation). run does
// the actual work — prepare + batched forward for the JSON path, ring
// window + batched forward for the entity path.
func (s *Server) guardedInfer(ctx context.Context, run func() inferOutcome) (inferOutcome, inferResult) {
	if !s.breaker.allow() {
		return inferOutcome{}, inferResult{kind: inferDegraded, reason: "breaker_open"}
	}
	ch := make(chan inferOutcome, 1)
	go func() {
		var o inferOutcome
		defer func() {
			if p := recover(); p != nil {
				s.panics.Inc()
				s.log.Error("panic recovered in inference",
					"panic", p, "stack", string(debug.Stack()))
				o = inferOutcome{panicked: true}
			}
			ch <- o
		}()
		// Chaos hook: the server.forecast fault point injects latency or
		// panics here, upstream of the real model call.
		fault.Disrupt("server.forecast")
		o = run()
	}()
	timer := time.NewTimer(s.resilience.RequestTimeout)
	defer timer.Stop()
	select {
	case o := <-ch:
		switch {
		case o.panicked:
			s.breaker.record(true)
			return inferOutcome{}, inferResult{kind: inferDegraded, reason: "panic"}
		case o.err != nil:
			// ForecastFrom errors are input-validation failures — the
			// client's problem, not the model's; the breaker stays out.
			s.breaker.release()
			return inferOutcome{}, inferResult{kind: inferBadInput, err: o.err}
		case !finiteAll(o.forecast):
			s.breaker.record(true)
			return inferOutcome{}, inferResult{kind: inferDegraded, reason: "invalid_output"}
		default:
			s.breaker.record(false)
			return o, inferResult{kind: inferOK}
		}
	case <-timer.C:
		s.breaker.record(true)
		return inferOutcome{}, inferResult{kind: inferDegraded, reason: "timeout"}
	case <-ctx.Done():
		// No outcome to record: a disconnect says nothing about model
		// health, but a half-open probe slot must be handed back.
		s.breaker.release()
		return inferOutcome{}, inferResult{kind: inferCanceled}
	}
}

func targetName(p *core.Predictor) string {
	sel := p.SelectedIndicators()
	if len(sel) == 0 {
		return ""
	}
	return trace.Indicator(sel[0]).String()
}

type errorBody struct {
	Error string `json:"error"`
}

func (s *Server) writeError(w http.ResponseWriter, code int, msg string) {
	s.writeJSON(w, code, errorBody{Error: msg})
}

func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are already out, so the client sees a truncated body;
		// record the failure instead of dropping it silently.
		s.log.Error("response encode failed", "status", code, "err", err)
		s.reg.Counter("rptcn_http_encode_errors_total",
			"Responses whose JSON encoding failed mid-write.").Inc()
	}
}
