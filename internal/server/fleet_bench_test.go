package server

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/obs"
	obstrace "repro/internal/obs/trace"
	"repro/internal/trace"
)

// BenchmarkForecastTelemetry measures the end-to-end serving cost of one
// forecast request with the full fleet-telemetry stack on (sketches +
// exemplars + tail-sampled tracing) versus everything off, cycling
// through 2000 distinct entities. The acceptance bar is on/off within
// 2%: the sketches are O(100ns) against a model inference in the
// hundreds of microseconds. sketch_bytes reports the live sketch
// footprint after the run — O(K), not O(entities).
func BenchmarkForecastTelemetry(b *testing.B) {
	const entities = 2000
	p, e := fitted(b)
	tail := make([][]float64, trace.NumIndicators)
	for i := range tail {
		m := e.Metrics[i]
		tail[i] = m[len(m)-64:]
	}
	// Pre-marshal one request body per entity; the loop only serves.
	bodies := make([]string, entities)
	for i := range bodies {
		tt := int64(1000 + i)
		raw, err := json.Marshal(ForecastRequest{
			Indicators: tail, Entity: fmt.Sprintf("m_%d", i), T: &tt,
		})
		if err != nil {
			b.Fatal(err)
		}
		bodies[i] = string(raw)
	}

	run := func(b *testing.B, s *Server) {
		defer s.Close()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rec := httptest.NewRecorder()
			req := httptest.NewRequest("POST", "/v1/forecast", strings.NewReader(bodies[i%entities]))
			s.ServeHTTP(rec, req)
			if rec.Code != 200 {
				b.Fatalf("status = %d: %s", rec.Code, rec.Body)
			}
		}
		b.StopTimer()
		if s.fleet != nil {
			b.ReportMetric(float64(s.fleet.Footprint()), "sketch_bytes")
		}
	}

	b.Run("telemetry=off", func(b *testing.B) {
		run(b, New(p, WithRegistry(obs.NewRegistry()),
			WithFleetTelemetry(FleetConfig{Disabled: true})))
	})
	b.Run("telemetry=on", func(b *testing.B) {
		tr := obstrace.New(256)
		tr.SetEnabled(true)
		tr.SetTailSampling(&obstrace.TailSampleConfig{KeepEvery: 10})
		run(b, New(p, WithRegistry(obs.NewRegistry()), WithTracer(tr),
			WithFleetTelemetry(FleetConfig{K: 32})))
	})
}
