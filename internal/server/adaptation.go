package server

import (
	"net/http"

	"repro/internal/adapt"
)

// Online adaptation wiring: WithAdaptation hands the server an
// adapt.Config; New fills in the serving predictor, the ingestion ring
// store (the retraining data source), the shared registry, and the run
// journal, then subscribes the supervisor to the quality engine's
// drift/mutation events. From there the loop is automatic:
//
//	quality event → background fine-tune on recent ring windows →
//	shadow-score against live traffic → atomic hot-swap when the
//	candidate wins → probation → rollback if quality regresses.
//
// The request path only ever pays two atomic loads: the mirror gate in
// MirrorForecast/ObserveActuals, and the generation read that already
// rides the batched forward. Requires streaming ingestion (the rings
// are the only history the supervisor can train on); with ingestion
// disabled the option logs a warning and serving stays static.

// WithAdaptation enables drift-adaptive online retraining. Zero-value
// fields of cfg get adapt's defaults; Predictor, Rings, Registry, and
// Journal are supplied by the server and need not be set.
func WithAdaptation(cfg adapt.Config) Option {
	return func(s *Server) { s.adaptCfg = &cfg }
}

// Adaptation returns the adaptation supervisor, or nil when disabled —
// tests and CLIs use it to inspect swap progress.
func (s *Server) Adaptation() *adapt.Supervisor { return s.adapt }

// handleAdaptStatus serves GET /debug/adapt: the supervisor's live
// snapshot (state machine position, shadow scorecard, swap/rollback
// counters).
func (s *Server) handleAdaptStatus(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, s.adapt.Status())
}
