package server

import (
	"context"
	"net/http"
	"strconv"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/sketch"
	obstrace "repro/internal/obs/trace"
)

// instrumentation holds the serving-path metric families. All series are
// pre-registered at construction so /metrics shows the full schema (at
// zero) from the first scrape.
type instrumentation struct {
	reg      *obs.Registry
	tracer   *obstrace.Tracer // may be nil
	fleet    *sketch.Fleet    // may be nil (fleet telemetry disabled)
	inFlight *obs.Gauge
}

func newInstrumentation(s *Server) *instrumentation {
	return &instrumentation{
		reg:      s.reg,
		tracer:   s.tracer,
		fleet:    s.fleet,
		inFlight: s.reg.Gauge("rptcn_http_in_flight", "Requests currently being served."),
	}
}

// statusRecorder captures the response code written by a handler.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(p []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	return r.ResponseWriter.Write(p)
}

// wrap instruments one route: request counter (by path and code), error
// counter, in-flight gauge, a latency histogram, and (when tracing is
// enabled) one "http.request" span per request. The forecast endpoint
// additionally feeds rptcn_forecast_latency_seconds — the SLO histogram
// for the paper's real-time prediction mode, now with per-bucket
// (trace ID, entity) exemplars — and the per-entity fleet sketches.
//
// The route label is always one of the registered route patterns (the
// catch-all handler reports "other"), never the raw request path, so the
// path label's cardinality is bounded no matter what clients probe. The
// per-entity dimension deliberately never becomes a label: it flows into
// the O(K) sketches on /debug/fleet instead.
func (in *instrumentation) wrap(route string, h http.HandlerFunc) http.HandlerFunc {
	lat := in.reg.Histogram("rptcn_http_request_seconds",
		"HTTP request latency by route.", nil, obs.L("path", route))
	errs := in.reg.Counter("rptcn_http_errors_total",
		"HTTP responses with status >= 500.", obs.L("path", route))
	// Pre-register the success series so the counter family is visible
	// before the first request.
	in.reg.Counter("rptcn_http_requests_total", "Total HTTP requests.",
		obs.L("path", route), obs.L("code", "200"))
	var forecastLat *obs.Histogram
	if route == "/v1/forecast" {
		forecastLat = in.reg.Histogram("rptcn_forecast_latency_seconds",
			"End-to-end forecast request latency.", nil)
	}
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		in.inFlight.Inc()
		var span *obstrace.Span
		if in.tracer != nil {
			span = in.tracer.Start("http.request",
				obstrace.String("path", route), obstrace.String("method", r.Method))
		}
		// Forecast requests carry a telemetry slot the handler fills in
		// with what only it knows (entity, degraded) and the sketches
		// consume below. Only real forecasts (POSTs) feed the fleet;
		// 405 fallbacks on the same route do not.
		var ft *forecastTelemetry
		if forecastLat != nil && r.Method == http.MethodPost {
			ft = &forecastTelemetry{}
			r = r.WithContext(context.WithValue(r.Context(), telemetryKey{}, ft))
		}
		rec := &statusRecorder{ResponseWriter: w}
		h(rec, r)
		in.inFlight.Dec()
		if rec.status == 0 {
			rec.status = http.StatusOK
		}
		span.SetAttr(obstrace.Int("status", rec.status))
		elapsed := time.Since(start).Seconds()
		lat.Observe(elapsed)
		if ft != nil {
			entity, degraded := ft.get()
			if degraded || rec.status >= 500 {
				// Tail sampling must never drop the interesting traces.
				span.Keep()
			}
			// Exemplar capture is a lock-free pointer store — it cannot
			// block this path even while /debug/fleet is reading.
			forecastLat.ObserveExemplar(elapsed, span.TraceID(), entity)
			if in.fleet != nil {
				in.fleet.Record(entity, elapsed, degraded || rec.status >= 400)
			}
		} else if forecastLat != nil {
			forecastLat.Observe(elapsed)
		}
		if rec.status >= 500 {
			span.Keep()
		}
		span.End()
		in.reg.Counter("rptcn_http_requests_total", "Total HTTP requests.",
			obs.L("path", route), obs.L("code", strconv.Itoa(rec.status))).Inc()
		if rec.status >= 500 {
			errs.Inc()
		}
	}
}
