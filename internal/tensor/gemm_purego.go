//go:build purego

package tensor

// Building with -tags purego forces the portable math.FMA / fma32
// register tiles even on amd64 hardware that has the assembly kernels.
// CI runs the full GEMM suite under this tag so the fallback path —
// normally reachable only on non-amd64 hosts or pre-AVX2 CPUs — is
// exercised on every change. Both paths are bitwise identical, so every
// test passes unmodified.
const forcePureGo = true
