//go:build !amd64

package tensor

// Non-amd64 builds always use the portable math.FMA register tile. On
// arm64 math.FMA compiles to the native fused instruction, so "portable"
// is not a euphemism for slow there.
const useFMAKernel = false

func fmaKernel4x8(ap, bp, c *float64, k, ldc int, acc bool) {
	panic("tensor: fmaKernel4x8 without assembly support")
}
