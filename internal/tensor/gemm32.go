package tensor

import (
	"math"
	"sync"

	"repro/internal/par"
)

// This file is the float32 twin of the packed GEMM engine in gemm.go,
// with one structural difference: the register tile doubles to
// MR×NR = 8×16. float32 packs 8 lanes per YMM register instead of 4, so
// the same 8-accumulator + 2-B-vector register budget that gives f64 a
// 4×8 tile gives f32 a 4×16 half-tile; the microkernel computes the 8×16
// tile as two sequential 4-row halves over the same packed B panel
// (which stays hot in L1 for the second pass). The determinism contract
// is identical to the f64 path: every output element is one ascending-k
// chain of exactly-rounded float32 fused multiply-adds over row i of A
// and column j of B alone — independent of worker count, tile shape, and
// batch size.
//
// The portable fallback cannot lean on math.FMA directly: there is no
// float32 FMA in the standard library, and float32(math.FMA(float64...))
// double-rounds (53→24 bits) on rare tie cases. fma32 below repairs that
// with a round-to-odd correction, so the fallback matches the hardware
// VFMADD231PS instruction bit for bit.
const (
	gemm32MR = 8
	gemm32NR = 16
)

// gemm32Op describes one C = A·B (or C += A·B) in row-major float32
// storage. aTrans means a holds the k×m transpose of the logical m×k A;
// bTrans means b holds the n×k transpose of the logical k×n B.
type gemm32Op struct {
	a, b, dst []float32
	m, k, n   int
	aTrans    bool
	bTrans    bool
	acc       bool // accumulate into dst instead of overwriting
}

// gemm32Scratch carries the packed-B buffer and a pre-bound worker
// closure so a steady-state call performs zero heap allocations.
type gemm32Scratch struct {
	bp  []float32 // packed B: ceil(n/NR) panels of NR*k
	op  gemm32Op
	run func(lo, hi int) // processes A row-panels [lo,hi)
}

var gemm32ScratchPool = sync.Pool{New: func() any {
	s := &gemm32Scratch{}
	s.run = func(lo, hi int) { s.runPanels(lo, hi) }
	return s
}}

// panel32Scratch is the per-goroutine packing buffer: one A panel and one
// spill tile for ragged tile edges.
type panel32Scratch struct {
	ap []float32 // MR * k
	ct [gemm32MR * gemm32NR]float32
}

var panel32ScratchPool = sync.Pool{New: func() any { return &panel32Scratch{} }}

// gemm32 executes op on the packed kernel, parallelizing across A
// row-panels when the op is large enough to amortize pool dispatch.
// Chunk boundaries are in whole panels, so no two workers ever share a
// panel and the per-element arithmetic order never depends on the split.
func gemm32(op gemm32Op) {
	if op.m == 0 || op.n == 0 {
		return
	}
	if op.k == 0 {
		if !op.acc {
			for i := range op.dst[:op.m*op.n] {
				op.dst[i] = 0
			}
		}
		return
	}
	s := gemm32ScratchPool.Get().(*gemm32Scratch)
	s.op = op
	s.packB()
	panels := (op.m + gemm32MR - 1) / gemm32MR
	if op.m*op.n*op.k < parallelFlops || panels < 2 {
		s.run(0, panels)
	} else {
		par.Run(panels, s.run)
	}
	s.op = gemm32Op{} // do not retain caller slices in the pool
	gemm32ScratchPool.Put(s)
}

// packB lays B out in column panels of NR: panel jp holds columns
// [jp*NR, jp*NR+NR) as bp[jp*NR*k + p*NR + c], zero-padded past n so the
// microkernel never branches on ragged widths.
func (s *gemm32Scratch) packB() {
	k, n := s.op.k, s.op.n
	padN := (n + gemm32NR - 1) / gemm32NR * gemm32NR
	if cap(s.bp) < padN*k {
		s.bp = make([]float32, padN*k)
	}
	bp := s.bp[:padN*k]
	b := s.op.b
	if s.op.bTrans {
		// b is n×k; column j of logical B is row j of b.
		for jc := 0; jc < padN; jc += gemm32NR {
			panel := bp[jc*k : jc*k+gemm32NR*k]
			cols := n - jc
			if cols > gemm32NR {
				cols = gemm32NR
			}
			for c := 0; c < cols; c++ {
				brow := b[(jc+c)*k : (jc+c+1)*k]
				for p, v := range brow {
					panel[p*gemm32NR+c] = v
				}
			}
			for c := cols; c < gemm32NR; c++ {
				for p := 0; p < k; p++ {
					panel[p*gemm32NR+c] = 0
				}
			}
		}
		return
	}
	// b is k×n row-major.
	for jc := 0; jc < padN; jc += gemm32NR {
		panel := bp[jc*k : jc*k+gemm32NR*k]
		cols := n - jc
		if cols > gemm32NR {
			cols = gemm32NR
		}
		for p := 0; p < k; p++ {
			src := b[p*n+jc : p*n+jc+cols]
			dst := panel[p*gemm32NR : p*gemm32NR+gemm32NR]
			copy(dst, src)
			for c := cols; c < gemm32NR; c++ {
				dst[c] = 0
			}
		}
	}
}

// runPanels computes A row-panels [lo,hi): pack the panel, then sweep
// every B panel with the register-tile kernel. Ragged edges run the same
// kernel into a spill tile and copy the valid rectangle, so every element
// sees the identical FMA chain.
func (s *gemm32Scratch) runPanels(lo, hi int) {
	op := &s.op
	k, n := op.k, op.n
	padN := (n + gemm32NR - 1) / gemm32NR * gemm32NR
	ps := panel32ScratchPool.Get().(*panel32Scratch)
	if cap(ps.ap) < gemm32MR*k {
		ps.ap = make([]float32, gemm32MR*k)
	}
	ap := ps.ap[:gemm32MR*k]
	for panel := lo; panel < hi; panel++ {
		i0 := panel * gemm32MR
		rows := op.m - i0
		if rows > gemm32MR {
			rows = gemm32MR
		}
		packA32(ap, op, i0, rows)
		for jc := 0; jc < padN; jc += gemm32NR {
			bpanel := s.bp[jc*k : jc*k+gemm32NR*k]
			cols := n - jc
			if cols > gemm32NR {
				cols = gemm32NR
			}
			if rows == gemm32MR && cols == gemm32NR {
				gemm32Kernel(ap, bpanel, op.dst[i0*n+jc:], k, n, op.acc)
				continue
			}
			// Ragged tile: preload the valid rectangle (zeros elsewhere)
			// and run with acc=true — starting the FMA chain from 0 or
			// from dst is exactly what the interior tiles do.
			ct := &ps.ct
			for i := range ct {
				ct[i] = 0
			}
			if op.acc {
				for r := 0; r < rows; r++ {
					copy(ct[r*gemm32NR:r*gemm32NR+cols], op.dst[(i0+r)*n+jc:(i0+r)*n+jc+cols])
				}
			}
			gemm32Kernel(ap, bpanel, ct[:], k, gemm32NR, true)
			for r := 0; r < rows; r++ {
				copy(op.dst[(i0+r)*n+jc:(i0+r)*n+jc+cols], ct[r*gemm32NR:r*gemm32NR+cols])
			}
		}
	}
	panel32ScratchPool.Put(ps)
}

// packA32 packs rows [i0, i0+rows) of logical A as ap[p*MR+r], zeroing
// the pad rows of a short final panel.
func packA32(ap []float32, op *gemm32Op, i0, rows int) {
	k := op.k
	if op.aTrans {
		// a is k×m; logical row i is column i of a.
		m := op.m
		for p := 0; p < k; p++ {
			src := op.a[p*m+i0:]
			dst := ap[p*gemm32MR : p*gemm32MR+gemm32MR]
			for r := 0; r < rows; r++ {
				dst[r] = src[r]
			}
			for r := rows; r < gemm32MR; r++ {
				dst[r] = 0
			}
		}
		return
	}
	for r := 0; r < rows; r++ {
		arow := op.a[(i0+r)*k : (i0+r+1)*k]
		for p, v := range arow {
			ap[p*gemm32MR+r] = v
		}
	}
	for r := rows; r < gemm32MR; r++ {
		for p := 0; p < k; p++ {
			ap[p*gemm32MR+r] = 0
		}
	}
}

// gemm32Kernel computes the MR×NR tile c[r*ldc+j] (+)= Σ_p ap[p*MR+r] ·
// bp[p*NR+j], one exactly-rounded float32 fused multiply-add per product
// in ascending p. On capable amd64 hardware this dispatches to the
// AVX2 microkernel; everywhere else to the fma32 tile below. Both
// produce identical bits.
func gemm32Kernel(ap, bp, c []float32, k, ldc int, acc bool) {
	if useFMAKernel32 {
		fmaKernel8x16(&ap[0], &bp[0], &c[0], k, ldc, acc)
		return
	}
	gemm32KernelGeneric(ap, bp, c, k, ldc, acc)
}

// gemm32KernelGeneric is the portable register tile: an 8×16 block of
// scalar accumulators streaming the packed panels with fma32. It matches
// the assembly kernel bit for bit (fma32 is exactly rounded), at scalar
// speed — this path exists for correctness on hosts without AVX2+FMA and
// for the purego CI leg, not for throughput.
func gemm32KernelGeneric(ap, bp, c []float32, k, ldc int, acc bool) {
	var acc8x16 [gemm32MR][gemm32NR]float32
	if acc {
		for r := 0; r < gemm32MR; r++ {
			copy(acc8x16[r][:], c[r*ldc:r*ldc+gemm32NR])
		}
	}
	for p := 0; p < k; p++ {
		bpp := bp[p*gemm32NR : p*gemm32NR+gemm32NR : p*gemm32NR+gemm32NR]
		app := ap[p*gemm32MR : p*gemm32MR+gemm32MR : p*gemm32MR+gemm32MR]
		for r := 0; r < gemm32MR; r++ {
			ar := app[r]
			row := &acc8x16[r]
			for j := 0; j < gemm32NR; j++ {
				row[j] = fma32(ar, bpp[j], row[j])
			}
		}
	}
	for r := 0; r < gemm32MR; r++ {
		copy(c[r*ldc:r*ldc+gemm32NR], acc8x16[r][:])
	}
}

// fma32 returns the correctly rounded float32 fused multiply-add
// a·b + c — bit-identical to the hardware VFMADD231PS instruction.
//
// The product of two float32s (24-bit significands) is exact in float64
// (53 bits), so p below carries no error. The double-precision sum
// s = p + c is then the exactly-rounded 53-bit result — but converting
// it straight to float32 double-rounds: when s sits exactly on a 24-bit
// tie and the discarded residue broke that tie, round-to-nearest at 53
// bits already erased the evidence. The classic repair is round-to-odd:
// recover the exact residue with a TwoSum, and when s is inexact with an
// even last bit, nudge it one ulp toward the true value so the final
// 53→24-bit rounding sees an unambiguously off-tie value. With 53−24 =
// 29 ≥ 2 guard bits, round-to-nearest of the round-to-odd value equals
// round-to-nearest of the exact value.
func fma32(a, b, c float32) float32 {
	p := float64(a) * float64(b) // exact
	s := p + float64(c)
	if math.IsInf(s, 0) {
		return float32(s)
	}
	// TwoSum: s + err == p + c exactly.
	bb := s - p
	err := (p - (s - bb)) + (float64(c) - bb)
	if err != 0 {
		bits := math.Float64bits(s)
		if bits&1 == 0 {
			if (err > 0) == (s > 0) {
				bits++ // true value is farther from zero
			} else {
				bits-- // true value is nearer to zero
			}
			s = math.Float64frombits(bits)
		}
	}
	return float32(s)
}

// HasFMAKernel32 reports whether this process runs the hand-written
// float32 AVX2+FMA microkernel or the portable fma32 tile. Both are
// bitwise identical; this is exported for benchmarks and the experiments
// report.
func HasFMAKernel32() bool { return useFMAKernel32 }
