package tensor

import (
	"math"
	"math/big"
	"testing"

	"repro/internal/par"
)

// fma32Oracle folds one correctly rounded float32 fused multiply-add per
// k-step in ascending k — the chain every f32 gemm path must reproduce
// bit for bit.
func fma32Oracle(init float32, a func(p int) float32, b func(p int) float32, k int) float32 {
	acc := init
	for p := 0; p < k; p++ {
		acc = fma32(a(p), b(p), acc)
	}
	return acc
}

func requireBitwise32(t *testing.T, got, want *Tensor32, what string) {
	t.Helper()
	for i := range want.Data {
		if math.Float32bits(got.Data[i]) != math.Float32bits(want.Data[i]) {
			t.Fatalf("%s: elem %d = %x, want %x (%g vs %g)", what, i,
				math.Float32bits(got.Data[i]), math.Float32bits(want.Data[i]),
				got.Data[i], want.Data[i])
		}
	}
}

// bigFMA32 computes round-to-nearest-even float32 of a·b + c exactly via
// math/big — the ground truth fma32 must match.
func bigFMA32(a, b, c float32) float32 {
	bigA := new(big.Float).SetPrec(200).SetFloat64(float64(a))
	bigB := new(big.Float).SetPrec(200).SetFloat64(float64(b))
	bigC := new(big.Float).SetPrec(200).SetFloat64(float64(c))
	sum := new(big.Float).SetPrec(200).Mul(bigA, bigB)
	sum.Add(sum, bigC)
	f, _ := sum.Float32()
	return f
}

// TestFMA32MatchesBigFloat pins fma32's round-to-odd correction against
// an arbitrary-precision oracle, including inputs engineered to land on
// the 24-bit rounding ties where a naive float32(math.FMA(...)) cast
// double-rounds.
func TestFMA32MatchesBigFloat(t *testing.T) {
	check := func(a, b, c float32) {
		t.Helper()
		got := fma32(a, b, c)
		want := bigFMA32(a, b, c)
		if math.Float32bits(got) != math.Float32bits(want) {
			t.Fatalf("fma32(%x, %x, %x) = %x, want %x",
				math.Float32bits(a), math.Float32bits(b), math.Float32bits(c),
				math.Float32bits(got), math.Float32bits(want))
		}
	}
	// Adversarial: c cancels most of a·b, leaving a residue exactly on a
	// tie. 1+2^-23 squared is 1 + 2^-22 + 2^-46: subtracting 1 leaves
	// 2^-22 + 2^-46, whose float32 rounding is decided by the 2^-46 tail
	// — invisible after an intermediate 53-bit rounding on nearby
	// variants.
	onePlus := float32(1 + 1.0/(1<<23))
	check(onePlus, onePlus, -1)
	check(onePlus, -onePlus, 1)
	check(1.5, onePlus, -1.5)
	// Exact ties with zero residue must stay round-to-nearest-even.
	check(1, 1.0/(1<<24), 1)
	check(1, -1.0/(1<<24), 1)
	// Zeros, infinities, and ordinary magnitudes.
	check(0, 5, 7)
	check(3, 0, -2)
	check(math.MaxFloat32, 2, 0)
	check(math.MaxFloat32, -2, 0)
	// Subnormal products.
	tiny := float32(1e-40)
	check(tiny, tiny, 0)
	check(tiny, tiny, 1)
	check(tiny, -tiny, tiny)
	trials := 100000
	if testing.Short() {
		trials = 10000
	}
	r := NewRNG(11)
	for i := 0; i < trials; i++ {
		a := float32(r.NormFloat64())
		b := float32(r.NormFloat64())
		c := float32(r.NormFloat64())
		check(a, b, c)
		// Force heavy cancellation so the residue decides the rounding.
		check(a, b, -a*b)
	}
}

func TestMatMul32MatchesFMAOracle(t *testing.T) {
	r := NewRNG(3)
	for _, sh := range gemmShapes {
		a := RandN32(r, sh.m, sh.k)
		b := RandN32(r, sh.k, sh.n)
		got := a.MatMul(b)
		want := New32(sh.m, sh.n)
		for i := 0; i < sh.m; i++ {
			for j := 0; j < sh.n; j++ {
				want.Data[i*sh.n+j] = fma32Oracle(0,
					func(p int) float32 { return a.Data[i*sh.k+p] },
					func(p int) float32 { return b.Data[p*sh.n+j] }, sh.k)
			}
		}
		requireBitwise32(t, got, want, "MatMul32")
	}
}

func TestMatMulT32MatchesFMAOracle(t *testing.T) {
	r := NewRNG(4)
	for _, sh := range gemmShapes {
		a := RandN32(r, sh.m, sh.k)
		b := RandN32(r, sh.n, sh.k)
		got := a.MatMulT(b)
		want := New32(sh.m, sh.n)
		for i := 0; i < sh.m; i++ {
			for j := 0; j < sh.n; j++ {
				want.Data[i*sh.n+j] = fma32Oracle(0,
					func(p int) float32 { return a.Data[i*sh.k+p] },
					func(p int) float32 { return b.Data[j*sh.k+p] }, sh.k)
			}
		}
		requireBitwise32(t, got, want, "MatMulT32")
	}
}

func TestTMatMulAcc32MatchesFMAOracle(t *testing.T) {
	r := NewRNG(5)
	for _, sh := range gemmShapes {
		a := RandN32(r, sh.k, sh.m)
		b := RandN32(r, sh.k, sh.n)
		dst := RandN32(r, sh.m, sh.n)
		want := New32(sh.m, sh.n)
		for i := 0; i < sh.m; i++ {
			for j := 0; j < sh.n; j++ {
				want.Data[i*sh.n+j] = fma32Oracle(dst.Data[i*sh.n+j],
					func(p int) float32 { return a.Data[p*sh.m+i] },
					func(p int) float32 { return b.Data[p*sh.n+j] }, sh.k)
			}
		}
		a.TMatMulAcc(b, dst)
		requireBitwise32(t, dst, want, "TMatMulAcc32")
	}
}

// TestGemm32RowIndependence pins the property f32 batched inference
// relies on: row i of a large product is bitwise the result of
// multiplying row i alone.
func TestGemm32RowIndependence(t *testing.T) {
	r := NewRNG(6)
	const m, k, n = 37, 48, 40
	a := RandN32(r, m, k)
	b := RandN32(r, k, n)
	full := a.MatMul(b)
	for _, i := range []int{0, 1, 17, m - 1} {
		row := FromSlice32(append([]float32(nil), a.Data[i*k:(i+1)*k]...), 1, k)
		single := row.MatMul(b)
		for j := 0; j < n; j++ {
			if math.Float32bits(single.Data[j]) != math.Float32bits(full.Data[i*n+j]) {
				t.Fatalf("row %d col %d: batch result %g != single-row result %g",
					i, j, full.Data[i*n+j], single.Data[j])
			}
		}
	}
}

// TestGemm32WorkerCountInvariance reruns the same large products under
// 1, 2 and 4 workers and demands bitwise identical float32 results.
func TestGemm32WorkerCountInvariance(t *testing.T) {
	r := NewRNG(7)
	const m, k, n = 130, 67, 75 // crosses parallelFlops, ragged in every dim
	a := RandN32(r, m, k)
	b := RandN32(r, k, n)
	bT := RandN32(r, n, k)
	aT := RandN32(r, k, m)
	acc0 := RandN32(r, m, n)

	type result struct{ mm, mmt, tmm *Tensor32 }
	runAll := func(workers int) result {
		prev := par.SetWorkers(workers)
		defer par.SetWorkers(prev)
		acc := FromSlice32(append([]float32(nil), acc0.Data...), m, n)
		return result{a.MatMul(b), a.MatMulT(bT), aT.TMatMulAcc(b, acc)}
	}
	base := runAll(1)
	for _, w := range []int{2, 4} {
		got := runAll(w)
		requireBitwise32(t, got.mm, base.mm, "MatMul32 workers")
		requireBitwise32(t, got.mmt, base.mmt, "MatMulT32 workers")
		requireBitwise32(t, got.tmm, base.tmm, "TMatMulAcc32 workers")
	}
}

// TestGemm32CloseToReference sanity-checks the fused f32 kernels against
// the unfused naive loops.
func TestGemm32CloseToReference(t *testing.T) {
	r := NewRNG(8)
	const m, k, n = 33, 41, 27
	a := RandN32(r, m, k)
	b := RandN32(r, k, n)
	got := a.MatMul(b)
	want := New32(m, n)
	a.ReferenceMatMulInto(b, want)
	if !got.Equal(want, 1e-4) {
		t.Fatal("packed MatMul32 far from naive reference")
	}
}

// TestReference32ParityWithFloat64 runs identical inputs (drawn as
// float32, widened exactly to float64) through the naive Reference
// kernels in both widths and bounds the divergence — the pure
// quantization error the f32 tier inherits, independent of packing or
// fusion.
func TestReference32ParityWithFloat64(t *testing.T) {
	r := NewRNG(12)
	const m, k, n = 29, 53, 31
	a32 := RandN32(r, m, k)
	b32 := RandN32(r, k, n)
	a64, b64 := a32.To64(), b32.To64()

	check := func(got32 *Tensor32, want64 *Tensor, what string) {
		t.Helper()
		// Each output is a k-term dot product: worst-case float32
		// rounding grows with k·eps32 times the accumulated magnitude.
		tol := float64(k) * 3 * 0x1p-24
		for i, v := range got32.Data {
			w := want64.Data[i]
			if math.Abs(float64(v)-w) > tol*(math.Abs(w)+1) {
				t.Fatalf("%s: elem %d diverges: f32 %g vs f64 %g", what, i, v, w)
			}
		}
	}

	g32 := New32(m, n)
	g64 := New(m, n)
	a32.ReferenceMatMulInto(b32, g32)
	a64.ReferenceMatMulInto(b64, g64)
	check(g32, g64, "ReferenceMatMulInto")

	bt32 := RandN32(r, n, k)
	bt64 := bt32.To64()
	a32.ReferenceMatMulTInto(bt32, g32)
	a64.ReferenceMatMulTInto(bt64, g64)
	check(g32, g64, "ReferenceMatMulTInto")

	at32 := RandN32(r, k, m)
	at64 := at32.To64()
	acc32 := New32(m, n)
	acc64 := New(m, n)
	at32.ReferenceTMatMulAcc(b32, acc32)
	at64.ReferenceTMatMulAcc(b64, acc64)
	check(acc32, acc64, "ReferenceTMatMulAcc")
}

// TestGemm32ZeroAllocSteadyState verifies a warmed-up Into-variant f32
// matmul performs no heap allocations.
func TestGemm32ZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation defeats escape analysis; allocation counts are meaningless")
	}
	r := NewRNG(9)
	a := RandN32(r, 64, 64)
	b := RandN32(r, 64, 64)
	dst := New32(64, 64)
	a.MatMulInto(b, dst) // warm the scratch pools
	allocs := testing.AllocsPerRun(20, func() { a.MatMulInto(b, dst) })
	if allocs != 0 {
		t.Fatalf("MatMulInto steady state allocates %.1f times per op, want 0", allocs)
	}
}
