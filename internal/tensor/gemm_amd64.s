#include "textflag.h"

// func fmaKernel4x8(ap, bp, c *float64, k, ldc int, acc bool)
//
// The 4x8 register-tile GEMM microkernel: 8 YMM accumulators hold the
// whole C tile while the packed panels stream past. Per k-step it issues
// 2 B-panel loads, 4 A broadcasts and 8 fused multiply-adds — one
// exactly-rounded FMA per product, ascending k, matching the portable
// math.FMA kernel bit for bit.
TEXT ·fmaKernel4x8(SB), NOSPLIT, $0-41
	MOVQ ap+0(FP), SI
	MOVQ bp+8(FP), DX
	MOVQ c+16(FP), DI
	MOVQ k+24(FP), CX
	MOVQ ldc+32(FP), R8
	SHLQ $3, R8
	LEAQ (DI)(R8*1), R9
	LEAQ (DI)(R8*2), R10
	LEAQ (R9)(R8*2), R11
	MOVBLZX acc+40(FP), AX
	TESTB AL, AL
	JZ   zero
	VMOVUPD (DI), Y0
	VMOVUPD 32(DI), Y1
	VMOVUPD (R9), Y2
	VMOVUPD 32(R9), Y3
	VMOVUPD (R10), Y4
	VMOVUPD 32(R10), Y5
	VMOVUPD (R11), Y6
	VMOVUPD 32(R11), Y7
	JMP  loop
zero:
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	VXORPD Y4, Y4, Y4
	VXORPD Y5, Y5, Y5
	VXORPD Y6, Y6, Y6
	VXORPD Y7, Y7, Y7
loop:
	VMOVUPD (DX), Y8
	VMOVUPD 32(DX), Y9
	VBROADCASTSD (SI), Y10
	VFMADD231PD Y8, Y10, Y0
	VFMADD231PD Y9, Y10, Y1
	VBROADCASTSD 8(SI), Y11
	VFMADD231PD Y8, Y11, Y2
	VFMADD231PD Y9, Y11, Y3
	VBROADCASTSD 16(SI), Y10
	VFMADD231PD Y8, Y10, Y4
	VFMADD231PD Y9, Y10, Y5
	VBROADCASTSD 24(SI), Y11
	VFMADD231PD Y8, Y11, Y6
	VFMADD231PD Y9, Y11, Y7
	ADDQ $64, DX
	ADDQ $32, SI
	DECQ CX
	JNZ  loop
	VMOVUPD Y0, (DI)
	VMOVUPD Y1, 32(DI)
	VMOVUPD Y2, (R9)
	VMOVUPD Y3, 32(R9)
	VMOVUPD Y4, (R10)
	VMOVUPD Y5, 32(R10)
	VMOVUPD Y6, (R11)
	VMOVUPD Y7, 32(R11)
	VZEROUPPER
	RET

// func cpuidRaw(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidRaw(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
