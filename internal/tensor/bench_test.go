package tensor

import "testing"

func benchMatMul(b *testing.B, m, k, n int) {
	r := NewRNG(1)
	x := RandN(r, m, k)
	y := RandN(r, k, n)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x.MatMul(y)
	}
	b.SetBytes(int64(8 * (m*k + k*n + m*n)))
}

func BenchmarkMatMulSmall(b *testing.B)  { benchMatMul(b, 32, 32, 32) }
func BenchmarkMatMulMedium(b *testing.B) { benchMatMul(b, 128, 128, 128) }
func BenchmarkMatMulLarge(b *testing.B)  { benchMatMul(b, 512, 512, 512) }

func BenchmarkMatMulTallSkinny(b *testing.B) { benchMatMul(b, 1024, 16, 64) }

func BenchmarkMatMulT(b *testing.B) {
	r := NewRNG(2)
	x := RandN(r, 64, 128)
	y := RandN(r, 96, 128)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x.MatMulT(y)
	}
}

func BenchmarkTMatMul(b *testing.B) {
	r := NewRNG(3)
	x := RandN(r, 128, 64)
	y := RandN(r, 128, 96)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x.TMatMul(y)
	}
}

func BenchmarkElementwiseAdd(b *testing.B) {
	r := NewRNG(4)
	x := RandN(r, 1<<16)
	y := RandN(r, 1<<16)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x.Add(y)
	}
}

func BenchmarkRNGNormal(b *testing.B) {
	r := NewRNG(5)
	for i := 0; i < b.N; i++ {
		r.NormFloat64()
	}
}
