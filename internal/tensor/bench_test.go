package tensor

import "testing"

func benchMatMul(b *testing.B, m, k, n int) {
	r := NewRNG(1)
	x := RandN(r, m, k)
	y := RandN(r, k, n)
	x.MatMul(y) // warm the scratch pools so b.N=1 runs don't count pool misses
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x.MatMul(y)
	}
	b.SetBytes(int64(8 * (m*k + k*n + m*n)))
}

func BenchmarkMatMulSmall(b *testing.B)  { benchMatMul(b, 32, 32, 32) }
func BenchmarkMatMulMedium(b *testing.B) { benchMatMul(b, 128, 128, 128) }
func BenchmarkMatMulLarge(b *testing.B)  { benchMatMul(b, 512, 512, 512) }

func BenchmarkMatMulTallSkinny(b *testing.B) { benchMatMul(b, 1024, 16, 64) }

func benchMatMul32(b *testing.B, m, k, n int) {
	r := NewRNG(1)
	x := RandN32(r, m, k)
	y := RandN32(r, k, n)
	x.MatMul(y)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x.MatMul(y)
	}
	b.SetBytes(int64(4 * (m*k + k*n + m*n)))
}

func BenchmarkMatMulF32Small(b *testing.B)  { benchMatMul32(b, 32, 32, 32) }
func BenchmarkMatMulF32Medium(b *testing.B) { benchMatMul32(b, 128, 128, 128) }
func BenchmarkMatMulF32Large(b *testing.B)  { benchMatMul32(b, 512, 512, 512) }

func BenchmarkMatMulF32TallSkinny(b *testing.B) { benchMatMul32(b, 1024, 16, 64) }

func BenchmarkMatMulT(b *testing.B) {
	r := NewRNG(2)
	x := RandN(r, 64, 128)
	y := RandN(r, 96, 128)
	x.MatMulT(y) // pool warmup
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x.MatMulT(y)
	}
}

func BenchmarkTMatMul(b *testing.B) {
	r := NewRNG(3)
	x := RandN(r, 128, 64)
	y := RandN(r, 128, 96)
	x.TMatMul(y) // pool warmup
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x.TMatMul(y)
	}
}

func BenchmarkElementwiseAdd(b *testing.B) {
	r := NewRNG(4)
	x := RandN(r, 1<<16)
	y := RandN(r, 1<<16)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x.Add(y)
	}
}

func BenchmarkRNGNormal(b *testing.B) {
	r := NewRNG(5)
	for i := 0; i < b.N; i++ {
		r.NormFloat64()
	}
}
