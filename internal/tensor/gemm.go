package tensor

import (
	"math"
	"sync"

	"repro/internal/par"
)

// This file is the packed, cache-blocked GEMM engine behind MatMul,
// MatMulT and TMatMul. The classic blocked structure (pack B once into
// column panels, pack A row-panel by row-panel, compute MR×NR register
// tiles) is specialized to one extra requirement the rest of the system
// depends on: bitwise determinism. Every output element is produced by
// folding one fused multiply-add per k-step into a single accumulator in
// ascending-k order, and by nothing else. That makes the value of
// C[i][j] a function of row i of A and column j of B alone — independent
// of the worker count, of how rows are chunked, of tile shape, and of
// how many other rows or columns the operation carries. The batched
// inference path leans on exactly this property: row i of a batch-32
// forward is bitwise the row a batch-1 forward would produce.
//
// Fused arithmetic is used in all paths: the AVX2+FMA microkernel on
// amd64 hardware that supports it (runtime CPUID check), and math.FMA —
// exactly-rounded by spec, hardware or not — in the portable fallback.
// Both produce identical bits for identical inputs.
//
// Blocking parameters: the microkernel computes an MR×NR = 4×8 tile
// held entirely in registers (8 YMM accumulators on amd64), streaming a
// packed MR-wide A panel and a packed NR-wide B panel over the full k
// extent. Panels are packed so the kernel reads both operands
// sequentially: ap[p*MR+r], bp[p*NR+c]. A 4×8 tile over k=512 touches
// ~16 KiB of A panel + ~32 KiB of B panel — the A panel and the active
// slice of B live in L1/L2 while C stays in registers; there is no
// k-blocking because splitting k would need partial-sum merges that
// change rounding order.
const (
	gemmMR = 4
	gemmNR = 8
)

// gemmOp describes one C = A·B (or C += A·B) in row-major storage.
// aTrans means a holds the k×m transpose of the logical m×k A;
// bTrans means b holds the n×k transpose of the logical k×n B.
type gemmOp struct {
	a, b, dst []float64
	m, k, n   int
	aTrans    bool
	bTrans    bool
	acc       bool // accumulate into dst instead of overwriting
}

// gemmScratch carries the packed-B buffer and a pre-bound worker closure
// so a steady-state gemm call performs zero heap allocations: the
// scratch (and the closure capturing it) is built once per pooled object
// and reused across calls.
type gemmScratch struct {
	bp  []float64 // packed B: ceil(n/NR) panels of NR*k
	op  gemmOp
	run func(lo, hi int) // processes A row-panels [lo,hi)
}

var gemmScratchPool = sync.Pool{New: func() any {
	s := &gemmScratch{}
	s.run = func(lo, hi int) { s.runPanels(lo, hi) }
	return s
}}

// panelScratch is the per-goroutine packing buffer: one A panel and one
// spill tile for ragged tile edges. Pooled separately from gemmScratch
// because several workers pack A panels for the same operation at once.
type panelScratch struct {
	ap []float64 // MR * k
	ct [gemmMR * gemmNR]float64
}

var panelScratchPool = sync.Pool{New: func() any { return &panelScratch{} }}

// gemm executes op on the packed kernel, parallelizing across A
// row-panels when the op is large enough to amortize pool dispatch.
// Chunk boundaries are in whole panels, so no two workers ever share a
// panel and the per-element arithmetic order never depends on the split.
func gemm(op gemmOp) {
	if op.m == 0 || op.n == 0 {
		return
	}
	if op.k == 0 {
		if !op.acc {
			zeroRect(op.dst, op.m, op.n)
		}
		return
	}
	s := gemmScratchPool.Get().(*gemmScratch)
	s.op = op
	s.packB()
	panels := (op.m + gemmMR - 1) / gemmMR
	if op.m*op.n*op.k < parallelFlops || panels < 2 {
		s.run(0, panels)
	} else {
		par.Run(panels, s.run)
	}
	s.op = gemmOp{} // do not retain caller slices in the pool
	gemmScratchPool.Put(s)
}

func zeroRect(dst []float64, m, n int) {
	for i := range dst[:m*n] {
		dst[i] = 0
	}
}

// packB lays B out in column panels of NR: panel jp holds columns
// [jp*NR, jp*NR+NR) as bp[jp*NR*k + p*NR + c], zero-padded past n so the
// microkernel never branches on ragged widths. Padded columns are never
// copied back out.
func (s *gemmScratch) packB() {
	k, n := s.op.k, s.op.n
	padN := (n + gemmNR - 1) / gemmNR * gemmNR
	if cap(s.bp) < padN*k {
		s.bp = make([]float64, padN*k)
	}
	bp := s.bp[:padN*k]
	b := s.op.b
	if s.op.bTrans {
		// b is n×k; column j of logical B is row j of b.
		for jc := 0; jc < padN; jc += gemmNR {
			panel := bp[jc*k : jc*k+gemmNR*k]
			cols := n - jc
			if cols > gemmNR {
				cols = gemmNR
			}
			for c := 0; c < cols; c++ {
				brow := b[(jc+c)*k : (jc+c+1)*k]
				for p, v := range brow {
					panel[p*gemmNR+c] = v
				}
			}
			for c := cols; c < gemmNR; c++ {
				for p := 0; p < k; p++ {
					panel[p*gemmNR+c] = 0
				}
			}
		}
		return
	}
	// b is k×n row-major.
	for jc := 0; jc < padN; jc += gemmNR {
		panel := bp[jc*k : jc*k+gemmNR*k]
		cols := n - jc
		if cols > gemmNR {
			cols = gemmNR
		}
		for p := 0; p < k; p++ {
			src := b[p*n+jc : p*n+jc+cols]
			dst := panel[p*gemmNR : p*gemmNR+gemmNR]
			copy(dst, src)
			for c := cols; c < gemmNR; c++ {
				dst[c] = 0
			}
		}
	}
}

// runPanels computes A row-panels [lo,hi): pack the panel, then sweep
// every B panel with the register-tile kernel. Ragged edges (m%MR rows,
// n%NR cols) run the same kernel into a spill tile and copy the valid
// rectangle, so every element sees the identical FMA chain.
func (s *gemmScratch) runPanels(lo, hi int) {
	op := &s.op
	k, n := op.k, op.n
	padN := (n + gemmNR - 1) / gemmNR * gemmNR
	ps := panelScratchPool.Get().(*panelScratch)
	if cap(ps.ap) < gemmMR*k {
		ps.ap = make([]float64, gemmMR*k)
	}
	ap := ps.ap[:gemmMR*k]
	for panel := lo; panel < hi; panel++ {
		i0 := panel * gemmMR
		rows := op.m - i0
		if rows > gemmMR {
			rows = gemmMR
		}
		packA(ap, op, i0, rows)
		for jc := 0; jc < padN; jc += gemmNR {
			bpanel := s.bp[jc*k : jc*k+gemmNR*k]
			cols := n - jc
			if cols > gemmNR {
				cols = gemmNR
			}
			if rows == gemmMR && cols == gemmNR {
				gemmKernel(ap, bpanel, op.dst[i0*n+jc:], k, n, op.acc)
				continue
			}
			// Ragged tile: preload the valid rectangle (zeros elsewhere)
			// and run with acc=true — starting the FMA chain from 0 or
			// from dst is exactly what the interior tiles do.
			ct := &ps.ct
			for i := range ct {
				ct[i] = 0
			}
			if op.acc {
				for r := 0; r < rows; r++ {
					copy(ct[r*gemmNR:r*gemmNR+cols], op.dst[(i0+r)*n+jc:(i0+r)*n+jc+cols])
				}
			}
			gemmKernel(ap, bpanel, ct[:], k, gemmNR, true)
			for r := 0; r < rows; r++ {
				copy(op.dst[(i0+r)*n+jc:(i0+r)*n+jc+cols], ct[r*gemmNR:r*gemmNR+cols])
			}
		}
	}
	panelScratchPool.Put(ps)
}

// packA packs rows [i0, i0+rows) of logical A as ap[p*MR+r], zeroing
// the pad rows of a short final panel.
func packA(ap []float64, op *gemmOp, i0, rows int) {
	k := op.k
	if op.aTrans {
		// a is k×m; logical row i is column i of a.
		m := op.m
		for p := 0; p < k; p++ {
			src := op.a[p*m+i0:]
			dst := ap[p*gemmMR : p*gemmMR+gemmMR]
			for r := 0; r < rows; r++ {
				dst[r] = src[r]
			}
			for r := rows; r < gemmMR; r++ {
				dst[r] = 0
			}
		}
		return
	}
	for r := 0; r < rows; r++ {
		arow := op.a[(i0+r)*k : (i0+r+1)*k]
		for p, v := range arow {
			ap[p*gemmMR+r] = v
		}
	}
	for r := rows; r < gemmMR; r++ {
		for p := 0; p < k; p++ {
			ap[p*gemmMR+r] = 0
		}
	}
}

// gemmKernel computes the MR×NR tile c[r*ldc+j] (+)= Σ_p ap[p*MR+r] ·
// bp[p*NR+j], one exactly-rounded fused multiply-add per product in
// ascending p. On capable amd64 hardware this dispatches to the AVX2
// microkernel; everywhere else to the math.FMA tile below. Both produce
// identical bits.
func gemmKernel(ap, bp, c []float64, k, ldc int, acc bool) {
	if useFMAKernel {
		fmaKernel4x8(&ap[0], &bp[0], &c[0], k, ldc, acc)
		return
	}
	gemmKernelGeneric(ap, bp, c, k, ldc, acc)
}

// gemmKernelGeneric is the portable register tile: 32 scalar
// accumulators streaming the packed panels with math.FMA. math.FMA is
// exactly rounded whether or not the hardware has a fused instruction,
// so this matches the assembly kernel bit for bit.
func gemmKernelGeneric(ap, bp, c []float64, k, ldc int, acc bool) {
	var c00, c01, c02, c03, c04, c05, c06, c07 float64
	var c10, c11, c12, c13, c14, c15, c16, c17 float64
	var c20, c21, c22, c23, c24, c25, c26, c27 float64
	var c30, c31, c32, c33, c34, c35, c36, c37 float64
	if acc {
		r0 := c[0*ldc : 0*ldc+8]
		c00, c01, c02, c03, c04, c05, c06, c07 = r0[0], r0[1], r0[2], r0[3], r0[4], r0[5], r0[6], r0[7]
		r1 := c[1*ldc : 1*ldc+8]
		c10, c11, c12, c13, c14, c15, c16, c17 = r1[0], r1[1], r1[2], r1[3], r1[4], r1[5], r1[6], r1[7]
		r2 := c[2*ldc : 2*ldc+8]
		c20, c21, c22, c23, c24, c25, c26, c27 = r2[0], r2[1], r2[2], r2[3], r2[4], r2[5], r2[6], r2[7]
		r3 := c[3*ldc : 3*ldc+8]
		c30, c31, c32, c33, c34, c35, c36, c37 = r3[0], r3[1], r3[2], r3[3], r3[4], r3[5], r3[6], r3[7]
	}
	for p := 0; p < k; p++ {
		bpp := bp[p*gemmNR : p*gemmNR+gemmNR : p*gemmNR+gemmNR]
		app := ap[p*gemmMR : p*gemmMR+gemmMR : p*gemmMR+gemmMR]
		a0 := app[0]
		c00 = math.FMA(a0, bpp[0], c00)
		c01 = math.FMA(a0, bpp[1], c01)
		c02 = math.FMA(a0, bpp[2], c02)
		c03 = math.FMA(a0, bpp[3], c03)
		c04 = math.FMA(a0, bpp[4], c04)
		c05 = math.FMA(a0, bpp[5], c05)
		c06 = math.FMA(a0, bpp[6], c06)
		c07 = math.FMA(a0, bpp[7], c07)
		a1 := app[1]
		c10 = math.FMA(a1, bpp[0], c10)
		c11 = math.FMA(a1, bpp[1], c11)
		c12 = math.FMA(a1, bpp[2], c12)
		c13 = math.FMA(a1, bpp[3], c13)
		c14 = math.FMA(a1, bpp[4], c14)
		c15 = math.FMA(a1, bpp[5], c15)
		c16 = math.FMA(a1, bpp[6], c16)
		c17 = math.FMA(a1, bpp[7], c17)
		a2 := app[2]
		c20 = math.FMA(a2, bpp[0], c20)
		c21 = math.FMA(a2, bpp[1], c21)
		c22 = math.FMA(a2, bpp[2], c22)
		c23 = math.FMA(a2, bpp[3], c23)
		c24 = math.FMA(a2, bpp[4], c24)
		c25 = math.FMA(a2, bpp[5], c25)
		c26 = math.FMA(a2, bpp[6], c26)
		c27 = math.FMA(a2, bpp[7], c27)
		a3 := app[3]
		c30 = math.FMA(a3, bpp[0], c30)
		c31 = math.FMA(a3, bpp[1], c31)
		c32 = math.FMA(a3, bpp[2], c32)
		c33 = math.FMA(a3, bpp[3], c33)
		c34 = math.FMA(a3, bpp[4], c34)
		c35 = math.FMA(a3, bpp[5], c35)
		c36 = math.FMA(a3, bpp[6], c36)
		c37 = math.FMA(a3, bpp[7], c37)
	}
	r0 := c[0*ldc : 0*ldc+8]
	r0[0], r0[1], r0[2], r0[3], r0[4], r0[5], r0[6], r0[7] = c00, c01, c02, c03, c04, c05, c06, c07
	r1 := c[1*ldc : 1*ldc+8]
	r1[0], r1[1], r1[2], r1[3], r1[4], r1[5], r1[6], r1[7] = c10, c11, c12, c13, c14, c15, c16, c17
	r2 := c[2*ldc : 2*ldc+8]
	r2[0], r2[1], r2[2], r2[3], r2[4], r2[5], r2[6], r2[7] = c20, c21, c22, c23, c24, c25, c26, c27
	r3 := c[3*ldc : 3*ldc+8]
	r3[0], r3[1], r3[2], r3[3], r3[4], r3[5], r3[6], r3[7] = c30, c31, c32, c33, c34, c35, c36, c37
}

// HasFMAKernel reports whether this process runs the hand-written
// AVX2+FMA microkernel (true on amd64 with AVX2, FMA, and OS YMM-state
// support) or the portable math.FMA tile. Both are bitwise identical;
// this is exported for benchmarks and the experiments report.
func HasFMAKernel() bool { return useFMAKernel }
