// Package tensor provides dense, row-major float64 tensors and the numeric
// kernels the neural-network stack is built on. It is deliberately small:
// shapes are explicit, there is no implicit broadcasting beyond the few
// documented helpers, and all parallel kernels are deterministic.
package tensor

import (
	"fmt"
	"strings"
)

// Tensor is a dense row-major array of float64 with an explicit shape.
// The zero value is an empty tensor; use the constructors to build one.
type Tensor struct {
	shape   []int
	strides []int
	Data    []float64
}

// New returns a zero-filled tensor with the given shape.
// It panics if any dimension is negative.
func New(shape ...int) *Tensor {
	n := checkShape(shape)
	return &Tensor{
		shape:   append([]int(nil), shape...),
		strides: computeStrides(shape),
		Data:    make([]float64, n),
	}
}

// FromSlice wraps data in a tensor with the given shape. The slice is used
// directly (not copied); it panics if len(data) does not match the shape.
func FromSlice(data []float64, shape ...int) *Tensor {
	n := checkShape(shape)
	if len(data) != n {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v (want %d)", len(data), shape, n))
	}
	return &Tensor{
		shape:   append([]int(nil), shape...),
		strides: computeStrides(shape),
		Data:    data,
	}
}

// Full returns a tensor with every element set to v.
func Full(v float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = v
	}
	return t
}

func checkShape(shape []int) int {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension in shape %v", shape))
		}
		n *= d
	}
	return n
}

func computeStrides(shape []int) []int {
	strides := make([]int, len(shape))
	acc := 1
	for i := len(shape) - 1; i >= 0; i-- {
		strides[i] = acc
		acc *= shape[i]
	}
	return strides
}

// Shape returns a copy of the tensor's shape.
func (t *Tensor) Shape() []int { return append([]int(nil), t.shape...) }

// Dims returns the number of dimensions.
func (t *Tensor) Dims() int { return len(t.shape) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Size returns the total number of elements.
func (t *Tensor) Size() int { return len(t.Data) }

// SameShape reports whether t and u have identical shapes.
func (t *Tensor) SameShape(u *Tensor) bool {
	if len(t.shape) != len(u.shape) {
		return false
	}
	for i, d := range t.shape {
		if u.shape[i] != d {
			return false
		}
	}
	return true
}

// Index converts a multi-dimensional index into a flat offset.
func (t *Tensor) Index(idx ...int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index rank %d does not match shape %v", len(idx), t.shape))
	}
	off := 0
	for i, ix := range idx {
		if ix < 0 || ix >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.shape))
		}
		off += ix * t.strides[i]
	}
	return off
}

// At returns the element at the given multi-dimensional index.
func (t *Tensor) At(idx ...int) float64 { return t.Data[t.Index(idx...)] }

// Set writes v at the given multi-dimensional index.
func (t *Tensor) Set(v float64, idx ...int) { t.Data[t.Index(idx...)] = v }

// Clone returns a deep copy of t.
func (t *Tensor) Clone() *Tensor {
	c := New(t.shape...)
	copy(c.Data, t.Data)
	return c
}

// CopyFrom copies the data of u into t. Shapes must match.
func (t *Tensor) CopyFrom(u *Tensor) {
	if !t.SameShape(u) {
		panic(fmt.Sprintf("tensor: CopyFrom shape mismatch %v vs %v", t.shape, u.shape))
	}
	copy(t.Data, u.Data)
}

// Reshape returns a view of t with a new shape covering the same data.
// The total number of elements must be unchanged.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := checkShape(shape)
	if n != len(t.Data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (size %d) to %v (size %d)", t.shape, len(t.Data), shape, n))
	}
	return &Tensor{
		shape:   append([]int(nil), shape...),
		strides: computeStrides(shape),
		Data:    t.Data,
	}
}

// Zero sets every element to 0.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float64) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// String renders small tensors fully and large ones as a summary.
func (t *Tensor) String() string {
	if len(t.Data) <= 32 {
		return fmt.Sprintf("Tensor%v%v", t.shape, t.Data)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Tensor%v[", t.shape)
	for i := 0; i < 8; i++ {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%g", t.Data[i])
	}
	fmt.Fprintf(&b, " ... %d elems]", len(t.Data))
	return b.String()
}
