// Package tensor provides dense, row-major float64 tensors and the numeric
// kernels the neural-network stack is built on. It is deliberately small:
// shapes are explicit, there is no implicit broadcasting beyond the few
// documented helpers, and all parallel kernels are deterministic — results
// are bitwise identical regardless of the worker count (see internal/par).
package tensor

import (
	"fmt"
	"strings"
)

// MaxRank is the highest tensor rank the package supports. Shapes and
// strides are stored inline (no per-tensor slice allocations), which keeps
// a tensor at two heap objects: the header and the data.
const MaxRank = 4

// Tensor is a dense row-major array of float64 with an explicit shape.
// The zero value is an empty tensor; use the constructors to build one.
type Tensor struct {
	shape   [MaxRank]int
	strides [MaxRank]int
	rank    int
	Data    []float64
}

// New returns a zero-filled tensor with the given shape.
// It panics if any dimension is negative or the rank exceeds MaxRank.
func New(shape ...int) *Tensor {
	t := &Tensor{}
	n := t.setShape(shape)
	t.Data = make([]float64, n)
	return t
}

// FromSlice wraps data in a tensor with the given shape. The slice is used
// directly (not copied); it panics if len(data) does not match the shape.
func FromSlice(data []float64, shape ...int) *Tensor {
	t := &Tensor{}
	n := t.setShape(shape)
	if len(data) != n {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v (want %d)", len(data), shape, n))
	}
	t.Data = data
	return t
}

// NewLike returns a zero-filled tensor with the same shape as t.
func NewLike(t *Tensor) *Tensor {
	return &Tensor{shape: t.shape, strides: t.strides, rank: t.rank, Data: make([]float64, len(t.Data))}
}

// Full returns a tensor with every element set to v.
func Full(v float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = v
	}
	return t
}

// setShape validates shape, stores it inline with its strides, and returns
// the element count.
func (t *Tensor) setShape(shape []int) int {
	if len(shape) > MaxRank {
		panic(fmt.Sprintf("tensor: rank %d exceeds MaxRank %d", len(shape), MaxRank))
	}
	n := 1
	for i, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension in shape %v", shape))
		}
		t.shape[i] = d
		n *= d
	}
	t.rank = len(shape)
	acc := 1
	for i := len(shape) - 1; i >= 0; i-- {
		t.strides[i] = acc
		acc *= shape[i]
	}
	return n
}

// dims returns the shape as a slice view of the inline array (no copy;
// for in-package use only).
func (t *Tensor) dims() []int { return t.shape[:t.rank] }

// Shape returns a copy of the tensor's shape.
func (t *Tensor) Shape() []int { return append([]int(nil), t.dims()...) }

// Dims returns the number of dimensions.
func (t *Tensor) Dims() int { return t.rank }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int {
	if i < 0 || i >= t.rank {
		panic(fmt.Sprintf("tensor: Dim(%d) out of range for rank %d", i, t.rank))
	}
	return t.shape[i]
}

// Size returns the total number of elements.
func (t *Tensor) Size() int { return len(t.Data) }

// SameShape reports whether t and u have identical shapes.
func (t *Tensor) SameShape(u *Tensor) bool {
	if t.rank != u.rank {
		return false
	}
	return t.shape == u.shape
}

// Index converts a multi-dimensional index into a flat offset.
func (t *Tensor) Index(idx ...int) int {
	if len(idx) != t.rank {
		panic(fmt.Sprintf("tensor: index rank %d does not match shape %v", len(idx), t.dims()))
	}
	off := 0
	for i, ix := range idx {
		if ix < 0 || ix >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.dims()))
		}
		off += ix * t.strides[i]
	}
	return off
}

// At returns the element at the given multi-dimensional index.
func (t *Tensor) At(idx ...int) float64 { return t.Data[t.Index(idx...)] }

// Set writes v at the given multi-dimensional index.
func (t *Tensor) Set(v float64, idx ...int) { t.Data[t.Index(idx...)] = v }

// Clone returns a deep copy of t.
func (t *Tensor) Clone() *Tensor {
	c := New(t.dims()...)
	copy(c.Data, t.Data)
	return c
}

// CopyFrom copies the data of u into t. Shapes must match.
func (t *Tensor) CopyFrom(u *Tensor) {
	if !t.SameShape(u) {
		panic(fmt.Sprintf("tensor: CopyFrom shape mismatch %v vs %v", t.dims(), u.dims()))
	}
	copy(t.Data, u.Data)
}

// Reshape returns a view of t with a new shape covering the same data.
// The total number of elements must be unchanged.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	out := &Tensor{}
	n := out.setShape(shape)
	if n != len(t.Data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (size %d) to %v (size %d)", t.dims(), len(t.Data), shape, n))
	}
	out.Data = t.Data
	return out
}

// Zero sets every element to 0.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float64) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// String renders small tensors fully and large ones as a summary.
func (t *Tensor) String() string {
	if len(t.Data) <= 32 {
		return fmt.Sprintf("Tensor%v%v", t.dims(), t.Data)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Tensor%v[", t.dims())
	for i := 0; i < 8; i++ {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%g", t.Data[i])
	}
	fmt.Fprintf(&b, " ... %d elems]", len(t.Data))
	return b.String()
}
