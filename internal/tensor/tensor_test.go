package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewShapeAndSize(t *testing.T) {
	x := New(2, 3, 4)
	if x.Size() != 24 {
		t.Fatalf("Size = %d, want 24", x.Size())
	}
	if x.Dims() != 3 || x.Dim(0) != 2 || x.Dim(1) != 3 || x.Dim(2) != 4 {
		t.Fatalf("bad shape: %v", x.Shape())
	}
	for _, v := range x.Data {
		if v != 0 {
			t.Fatal("New tensor not zero-filled")
		}
	}
}

func TestNewNegativeDimensionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative dimension")
		}
	}()
	New(2, -1)
}

func TestFromSliceLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	FromSlice([]float64{1, 2, 3}, 2, 2)
}

func TestAtSetRowMajorLayout(t *testing.T) {
	x := New(2, 3)
	x.Set(7, 1, 2)
	if x.Data[5] != 7 {
		t.Fatalf("row-major layout violated: Data=%v", x.Data)
	}
	if x.At(1, 2) != 7 {
		t.Fatalf("At(1,2) = %g, want 7", x.At(1, 2))
	}
}

func TestIndexOutOfRangePanics(t *testing.T) {
	x := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range index")
		}
	}()
	x.At(2, 0)
}

func TestReshapeSharesData(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	y := x.Reshape(3, 2)
	y.Set(99, 0, 0)
	if x.At(0, 0) != 99 {
		t.Fatal("Reshape should share underlying data")
	}
	if y.At(2, 1) != 6 {
		t.Fatalf("Reshape layout wrong: %v", y.Data)
	}
}

func TestReshapeSizeMismatchPanics(t *testing.T) {
	x := New(2, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on reshape size mismatch")
		}
	}()
	x.Reshape(4, 2)
}

func TestCloneIndependence(t *testing.T) {
	x := FromSlice([]float64{1, 2}, 2)
	y := x.Clone()
	y.Data[0] = 42
	if x.Data[0] != 1 {
		t.Fatal("Clone must not share data")
	}
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3}, 3)
	b := FromSlice([]float64{4, 5, 6}, 3)
	if got := a.Add(b).Data; got[0] != 5 || got[2] != 9 {
		t.Fatalf("Add = %v", got)
	}
	if got := b.Sub(a).Data; got[0] != 3 || got[2] != 3 {
		t.Fatalf("Sub = %v", got)
	}
	if got := a.Mul(b).Data; got[1] != 10 {
		t.Fatalf("Mul = %v", got)
	}
	if got := a.Scale(2).Data; got[2] != 6 {
		t.Fatalf("Scale = %v", got)
	}
	a.AXPY(10, b)
	if a.Data[0] != 41 {
		t.Fatalf("AXPY = %v", a.Data)
	}
}

func TestShapeMismatchPanics(t *testing.T) {
	a := New(2)
	b := New(3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on shape mismatch")
		}
	}()
	a.Add(b)
}

func TestReductions(t *testing.T) {
	x := FromSlice([]float64{-1, 4, 2, 3}, 4)
	if x.Sum() != 8 {
		t.Fatalf("Sum = %g", x.Sum())
	}
	if x.Mean() != 2 {
		t.Fatalf("Mean = %g", x.Mean())
	}
	if x.Max() != 4 || x.Min() != -1 {
		t.Fatalf("Max/Min = %g/%g", x.Max(), x.Min())
	}
	if got := x.Norm2(); math.Abs(got-math.Sqrt(30)) > 1e-12 {
		t.Fatalf("Norm2 = %g", got)
	}
}

func TestDot(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3}, 3)
	b := FromSlice([]float64{4, 5, 6}, 3)
	if got := a.Dot(b); got != 32 {
		t.Fatalf("Dot = %g, want 32", got)
	}
}

func TestAddRowVectorAndSumRows(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	v := FromSlice([]float64{10, 20, 30}, 3)
	y := x.AddRowVector(v)
	if y.At(0, 0) != 11 || y.At(1, 2) != 36 {
		t.Fatalf("AddRowVector = %v", y.Data)
	}
	s := x.SumRows()
	if s.Data[0] != 5 || s.Data[1] != 7 || s.Data[2] != 9 {
		t.Fatalf("SumRows = %v", s.Data)
	}
}

func TestMatMulKnownResult(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float64{7, 8, 9, 10, 11, 12}, 3, 2)
	c := a.MatMul(b)
	want := []float64{58, 64, 139, 154}
	for i, v := range want {
		if c.Data[i] != v {
			t.Fatalf("MatMul = %v, want %v", c.Data, want)
		}
	}
}

func TestMatMulDimensionMismatchPanics(t *testing.T) {
	a := New(2, 3)
	b := New(2, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on inner dimension mismatch")
		}
	}()
	a.MatMul(b)
}

// TestMatMulParallelMatchesSequential checks that the goroutine-parallel
// kernel used for large matrices agrees with the small sequential kernel.
func TestMatMulParallelMatchesSequential(t *testing.T) {
	r := NewRNG(1)
	const m, k, n = 97, 53, 89 // m*n > parallelThreshold
	a := RandN(r, m, k)
	b := RandN(r, k, n)
	got := a.MatMul(b)
	want := New(m, n)
	a.ReferenceMatMulInto(b, want)
	if !got.Equal(want, 1e-12) {
		t.Fatal("parallel MatMul disagrees with sequential kernel")
	}
}

func TestMatMulTAndTMatMul(t *testing.T) {
	r := NewRNG(2)
	a := RandN(r, 5, 7)
	b := RandN(r, 9, 7)
	got := a.MatMulT(b)
	want := a.MatMul(b.Transpose2D())
	if !got.Equal(want, 1e-12) {
		t.Fatal("MatMulT disagrees with explicit transpose")
	}
	d := RandN(r, 9, 4)
	got3 := b.TMatMul(d)
	want3 := b.Transpose2D().MatMul(d)
	if !got3.Equal(want3, 1e-12) {
		t.Fatal("TMatMul disagrees with explicit transpose")
	}
}

func TestTranspose2D(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	at := a.Transpose2D()
	if at.Dim(0) != 3 || at.Dim(1) != 2 || at.At(2, 1) != 6 || at.At(0, 1) != 4 {
		t.Fatalf("Transpose2D = %v", at.Data)
	}
}

func TestMatVec(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	v := FromSlice([]float64{1, -1}, 2)
	got := a.MatVec(v)
	if got.Data[0] != -1 || got.Data[1] != -1 {
		t.Fatalf("MatVec = %v", got.Data)
	}
}

func TestRNGReproducible(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give identical streams")
		}
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %g", v)
		}
	}
}

func TestRNGNormalMoments(t *testing.T) {
	r := NewRNG(11)
	const n = 200000
	sum, sum2 := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sum2 += v * v
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %g, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance = %g, want ~1", variance)
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	r := NewRNG(3)
	p := r.Perm(50)
	seen := make(map[int]bool)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("Perm produced invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestRNGSeedZeroNonDegenerate(t *testing.T) {
	r := NewRNG(0)
	a, b := r.Uint64(), r.Uint64()
	if a == 0 && b == 0 {
		t.Fatal("seed 0 produced a degenerate stream")
	}
}

// Property: (a+b)-b == a elementwise, up to float rounding.
func TestPropertyAddSubRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		a := RandN(r, 4, 5)
		b := RandN(r, 4, 5)
		return a.Add(b).Sub(b).Equal(a, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: matmul distributes over addition: A(B+C) == AB + AC.
func TestPropertyMatMulDistributive(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		a := RandN(r, 6, 4)
		b := RandN(r, 4, 5)
		c := RandN(r, 4, 5)
		lhs := a.MatMul(b.Add(c))
		rhs := a.MatMul(b).Add(a.MatMul(c))
		return lhs.Equal(rhs, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: (AB)ᵀ == BᵀAᵀ.
func TestPropertyTransposeOfProduct(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		a := RandN(r, 3, 6)
		b := RandN(r, 6, 4)
		lhs := a.MatMul(b).Transpose2D()
		rhs := b.Transpose2D().MatMul(a.Transpose2D())
		return lhs.Equal(rhs, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestStringSmallAndLarge(t *testing.T) {
	small := FromSlice([]float64{1, 2}, 2)
	if small.String() == "" {
		t.Fatal("empty String for small tensor")
	}
	large := New(100)
	if large.String() == "" {
		t.Fatal("empty String for large tensor")
	}
}
