#include "textflag.h"

// func fmaKernel8x16(ap, bp, c *float32, k, ldc int, acc bool)
//
// The 8x16 float32 register-tile GEMM microkernel. float32 packs 8
// lanes per YMM register, so the 8-accumulator register budget of the
// f64 4x8 kernel covers a 4x16 half-tile here; the full 8x16 tile is
// computed as two sequential 4-row halves over the same packed B panel,
// which stays hot in L1 for the second pass. Per k-step each half
// issues 2 B-panel loads, 4 A broadcasts and 8 fused multiply-adds —
// one exactly-rounded FMA per product, ascending k, matching the
// portable fma32 kernel bit for bit.
TEXT ·fmaKernel8x16(SB), NOSPLIT, $0-41
	MOVQ ap+0(FP), SI
	MOVQ bp+8(FP), DX
	MOVQ c+16(FP), DI
	MOVQ k+24(FP), CX
	MOVQ ldc+32(FP), R8
	SHLQ $2, R8
	MOVBLZX acc+40(FP), AX
	MOVQ DX, R12
	MOVQ CX, R13

	// Half 0: rows 0-3.
	LEAQ (DI)(R8*1), R9
	LEAQ (DI)(R8*2), R10
	LEAQ (R9)(R8*2), R11
	TESTB AL, AL
	JZ   zero0
	VMOVUPS (DI), Y0
	VMOVUPS 32(DI), Y1
	VMOVUPS (R9), Y2
	VMOVUPS 32(R9), Y3
	VMOVUPS (R10), Y4
	VMOVUPS 32(R10), Y5
	VMOVUPS (R11), Y6
	VMOVUPS 32(R11), Y7
	JMP  loop0
zero0:
	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3
	VXORPS Y4, Y4, Y4
	VXORPS Y5, Y5, Y5
	VXORPS Y6, Y6, Y6
	VXORPS Y7, Y7, Y7
loop0:
	VMOVUPS (DX), Y8
	VMOVUPS 32(DX), Y9
	VBROADCASTSS (SI), Y10
	VFMADD231PS Y8, Y10, Y0
	VFMADD231PS Y9, Y10, Y1
	VBROADCASTSS 4(SI), Y11
	VFMADD231PS Y8, Y11, Y2
	VFMADD231PS Y9, Y11, Y3
	VBROADCASTSS 8(SI), Y10
	VFMADD231PS Y8, Y10, Y4
	VFMADD231PS Y9, Y10, Y5
	VBROADCASTSS 12(SI), Y11
	VFMADD231PS Y8, Y11, Y6
	VFMADD231PS Y9, Y11, Y7
	ADDQ $64, DX
	ADDQ $32, SI
	DECQ CX
	JNZ  loop0
	VMOVUPS Y0, (DI)
	VMOVUPS Y1, 32(DI)
	VMOVUPS Y2, (R9)
	VMOVUPS Y3, 32(R9)
	VMOVUPS Y4, (R10)
	VMOVUPS Y5, 32(R10)
	VMOVUPS Y6, (R11)
	VMOVUPS Y7, 32(R11)

	// Half 1: rows 4-7. Re-stream B from the start; A resumes at the
	// second four rows of the MR=8-wide packed panel.
	MOVQ R12, DX
	MOVQ R13, CX
	MOVQ ap+0(FP), SI
	ADDQ $16, SI
	LEAQ (R10)(R8*2), DI
	LEAQ (DI)(R8*1), R9
	LEAQ (DI)(R8*2), R10
	LEAQ (R9)(R8*2), R11
	TESTB AL, AL
	JZ   zero1
	VMOVUPS (DI), Y0
	VMOVUPS 32(DI), Y1
	VMOVUPS (R9), Y2
	VMOVUPS 32(R9), Y3
	VMOVUPS (R10), Y4
	VMOVUPS 32(R10), Y5
	VMOVUPS (R11), Y6
	VMOVUPS 32(R11), Y7
	JMP  loop1
zero1:
	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3
	VXORPS Y4, Y4, Y4
	VXORPS Y5, Y5, Y5
	VXORPS Y6, Y6, Y6
	VXORPS Y7, Y7, Y7
loop1:
	VMOVUPS (DX), Y8
	VMOVUPS 32(DX), Y9
	VBROADCASTSS (SI), Y10
	VFMADD231PS Y8, Y10, Y0
	VFMADD231PS Y9, Y10, Y1
	VBROADCASTSS 4(SI), Y11
	VFMADD231PS Y8, Y11, Y2
	VFMADD231PS Y9, Y11, Y3
	VBROADCASTSS 8(SI), Y10
	VFMADD231PS Y8, Y10, Y4
	VFMADD231PS Y9, Y10, Y5
	VBROADCASTSS 12(SI), Y11
	VFMADD231PS Y8, Y11, Y6
	VFMADD231PS Y9, Y11, Y7
	ADDQ $64, DX
	ADDQ $32, SI
	DECQ CX
	JNZ  loop1
	VMOVUPS Y0, (DI)
	VMOVUPS Y1, 32(DI)
	VMOVUPS Y2, (R9)
	VMOVUPS Y3, 32(R9)
	VMOVUPS Y4, (R10)
	VMOVUPS Y5, 32(R10)
	VMOVUPS Y6, (R11)
	VMOVUPS Y7, 32(R11)
	VZEROUPPER
	RET
