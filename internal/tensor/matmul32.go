package tensor

import "fmt"

// Float32 matmul entry points, routed through the packed 8×16 GEMM
// engine in gemm32.go. Only the operations the inference path needs are
// mirrored: the f32 tier is serve-only, so the gradient-oriented ops
// stay float64.

// MatMul returns the matrix product t × u for 2-D tensors.
func (t *Tensor32) MatMul(u *Tensor32) *Tensor32 {
	m, _, n := matmul32Dims(t, u, "MatMul")
	out := New32(m, n)
	t.MatMulInto(u, out)
	return out
}

// MatMulInto computes dst = t × u, reusing dst's storage. dst must be
// [m, n] and must not alias t or u. It returns dst.
func (t *Tensor32) MatMulInto(u, dst *Tensor32) *Tensor32 {
	m, k, n := matmul32Dims(t, u, "MatMulInto")
	checkDst32(dst, m, n, "MatMulInto")
	gemm32(gemm32Op{a: t.Data, b: u.Data, dst: dst.Data, m: m, k: k, n: n})
	return dst
}

// MatMulT returns t × uᵀ without materializing the transpose.
func (t *Tensor32) MatMulT(u *Tensor32) *Tensor32 {
	m, _, n := matmulT32Dims(t, u, "MatMulT")
	out := New32(m, n)
	t.MatMulTInto(u, out)
	return out
}

// MatMulTInto computes dst = t × uᵀ, reusing dst's storage. dst must be
// [m, n] and must not alias t or u. It returns dst.
func (t *Tensor32) MatMulTInto(u, dst *Tensor32) *Tensor32 {
	m, k, n := matmulT32Dims(t, u, "MatMulTInto")
	checkDst32(dst, m, n, "MatMulTInto")
	gemm32(gemm32Op{a: t.Data, b: u.Data, dst: dst.Data, m: m, k: k, n: n, bTrans: true})
	return dst
}

// TMatMul returns tᵀ × u without materializing the transpose.
func (t *Tensor32) TMatMul(u *Tensor32) *Tensor32 {
	_, m := tmatmul32Dims(t, u, "TMatMul")
	return t.TMatMulAcc(u, New32(m, u.shape[1]))
}

// TMatMulAcc accumulates tᵀ × u into dst (dst += tᵀ × u) without a
// temporary. dst must be [cols(t), cols(u)] and must not alias t or u.
// It returns dst.
func (t *Tensor32) TMatMulAcc(u, dst *Tensor32) *Tensor32 {
	k, m := tmatmul32Dims(t, u, "TMatMulAcc")
	n := u.shape[1]
	checkDst32(dst, m, n, "TMatMulAcc")
	gemm32(gemm32Op{a: t.Data, b: u.Data, dst: dst.Data, m: m, k: k, n: n, aTrans: true, acc: true})
	return dst
}

// AddRowVectorInPlace adds the length-cols vector v to every row of a
// 2-D tensor in place and returns t.
func (t *Tensor32) AddRowVectorInPlace(v *Tensor32) *Tensor32 {
	if t.Dims() != 2 {
		panic("tensor: AddRowVectorInPlace requires a 2-D tensor")
	}
	rows, cols := t.shape[0], t.shape[1]
	if v.Size() != cols {
		panic(fmt.Sprintf("tensor: AddRowVectorInPlace vector length %d != cols %d", v.Size(), cols))
	}
	for r := 0; r < rows; r++ {
		base := r * cols
		for c := 0; c < cols; c++ {
			t.Data[base+c] += v.Data[c]
		}
	}
	return t
}

func matmul32Dims(t, u *Tensor32, op string) (m, k, n int) {
	if t.Dims() != 2 || u.Dims() != 2 {
		panic("tensor: " + op + " requires 2-D tensors")
	}
	m, k = t.shape[0], t.shape[1]
	k2, n := u.shape[0], u.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: %s inner dimension mismatch %v × %v", op, t.dims(), u.dims()))
	}
	return m, k, n
}

func matmulT32Dims(t, u *Tensor32, op string) (m, k, n int) {
	if t.Dims() != 2 || u.Dims() != 2 {
		panic("tensor: " + op + " requires 2-D tensors")
	}
	m, k = t.shape[0], t.shape[1]
	n, k2 := u.shape[0], u.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: %s inner dimension mismatch %v × %vᵀ", op, t.dims(), u.dims()))
	}
	return m, k, n
}

func tmatmul32Dims(t, u *Tensor32, op string) (k, m int) {
	if t.Dims() != 2 || u.Dims() != 2 {
		panic("tensor: " + op + " requires 2-D tensors")
	}
	k, m = t.shape[0], t.shape[1]
	if u.shape[0] != k {
		panic(fmt.Sprintf("tensor: %s inner dimension mismatch %vᵀ × %v", op, t.dims(), u.dims()))
	}
	return k, m
}

func checkDst32(dst *Tensor32, m, n int, op string) {
	if dst.Dims() != 2 || dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: %s destination shape %v, want [%d %d]", op, dst.dims(), m, n))
	}
}
