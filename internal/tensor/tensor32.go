package tensor

import (
	"fmt"
	"strings"
)

// Tensor32 is the float32 twin of Tensor: a dense row-major array with
// the same inline shape headers (two heap objects per tensor). It exists
// for the serving fast path — half the memory traffic and twice the SIMD
// lane width of float64 — and carries the same determinism contract: all
// parallel kernels produce bitwise identical float32 results at any
// worker count. The zero value is an empty tensor.
type Tensor32 struct {
	shape   [MaxRank]int
	strides [MaxRank]int
	rank    int
	Data    []float32
}

// New32 returns a zero-filled float32 tensor with the given shape.
// It panics if any dimension is negative or the rank exceeds MaxRank.
func New32(shape ...int) *Tensor32 {
	t := &Tensor32{}
	n := t.setShape(shape)
	t.Data = make([]float32, n)
	return t
}

// FromSlice32 wraps data in a tensor with the given shape. The slice is
// used directly (not copied); it panics if len(data) does not match the
// shape.
func FromSlice32(data []float32, shape ...int) *Tensor32 {
	t := &Tensor32{}
	n := t.setShape(shape)
	if len(data) != n {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v (want %d)", len(data), shape, n))
	}
	t.Data = data
	return t
}

// NewLike32 returns a zero-filled float32 tensor with the same shape as t.
func NewLike32(t *Tensor32) *Tensor32 {
	return &Tensor32{shape: t.shape, strides: t.strides, rank: t.rank, Data: make([]float32, len(t.Data))}
}

// To32 converts a float64 tensor to float32, rounding each element to
// nearest. This is the quantization step: it runs once per weight at
// model-quantize time, never on the inference hot path.
func (t *Tensor) To32() *Tensor32 {
	out := &Tensor32{shape: t.shape, strides: t.strides, rank: t.rank, Data: make([]float32, len(t.Data))}
	for i, v := range t.Data {
		out.Data[i] = float32(v)
	}
	return out
}

// To64 widens a float32 tensor to float64 (exact — every float32 is
// representable as a float64).
func (t *Tensor32) To64() *Tensor {
	out := &Tensor{shape: t.shape, strides: t.strides, rank: t.rank, Data: make([]float64, len(t.Data))}
	for i, v := range t.Data {
		out.Data[i] = float64(v)
	}
	return out
}

// QuantizeFrom overwrites t with the rounded-to-nearest float32 values of
// u, reusing t's storage. Shapes must match.
func (t *Tensor32) QuantizeFrom(u *Tensor) {
	if t.rank != u.rank || t.shape != u.shape {
		panic(fmt.Sprintf("tensor: QuantizeFrom shape mismatch %v vs %v", t.dims(), u.dims()))
	}
	for i, v := range u.Data {
		t.Data[i] = float32(v)
	}
}

// setShape validates shape, stores it inline with its strides, and returns
// the element count.
func (t *Tensor32) setShape(shape []int) int {
	if len(shape) > MaxRank {
		panic(fmt.Sprintf("tensor: rank %d exceeds MaxRank %d", len(shape), MaxRank))
	}
	n := 1
	for i, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension in shape %v", shape))
		}
		t.shape[i] = d
		n *= d
	}
	t.rank = len(shape)
	acc := 1
	for i := len(shape) - 1; i >= 0; i-- {
		t.strides[i] = acc
		acc *= shape[i]
	}
	return n
}

// dims returns the shape as a slice view of the inline array (no copy;
// for in-package use only).
func (t *Tensor32) dims() []int { return t.shape[:t.rank] }

// Shape returns a copy of the tensor's shape.
func (t *Tensor32) Shape() []int { return append([]int(nil), t.dims()...) }

// Dims returns the number of dimensions.
func (t *Tensor32) Dims() int { return t.rank }

// Dim returns the size of dimension i.
func (t *Tensor32) Dim(i int) int {
	if i < 0 || i >= t.rank {
		panic(fmt.Sprintf("tensor: Dim(%d) out of range for rank %d", i, t.rank))
	}
	return t.shape[i]
}

// Size returns the total number of elements.
func (t *Tensor32) Size() int { return len(t.Data) }

// SameShape reports whether t and u have identical shapes.
func (t *Tensor32) SameShape(u *Tensor32) bool {
	if t.rank != u.rank {
		return false
	}
	return t.shape == u.shape
}

// Index converts a multi-dimensional index into a flat offset.
func (t *Tensor32) Index(idx ...int) int {
	if len(idx) != t.rank {
		panic(fmt.Sprintf("tensor: index rank %d does not match shape %v", len(idx), t.dims()))
	}
	off := 0
	for i, ix := range idx {
		if ix < 0 || ix >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.dims()))
		}
		off += ix * t.strides[i]
	}
	return off
}

// At returns the element at the given multi-dimensional index.
func (t *Tensor32) At(idx ...int) float32 { return t.Data[t.Index(idx...)] }

// Set writes v at the given multi-dimensional index.
func (t *Tensor32) Set(v float32, idx ...int) { t.Data[t.Index(idx...)] = v }

// Clone returns a deep copy of t.
func (t *Tensor32) Clone() *Tensor32 {
	c := New32(t.dims()...)
	copy(c.Data, t.Data)
	return c
}

// CopyFrom copies the data of u into t. Shapes must match.
func (t *Tensor32) CopyFrom(u *Tensor32) {
	if !t.SameShape(u) {
		panic(fmt.Sprintf("tensor: CopyFrom shape mismatch %v vs %v", t.dims(), u.dims()))
	}
	copy(t.Data, u.Data)
}

// Reshape returns a view of t with a new shape covering the same data.
// The total number of elements must be unchanged.
func (t *Tensor32) Reshape(shape ...int) *Tensor32 {
	out := &Tensor32{}
	n := out.setShape(shape)
	if n != len(t.Data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (size %d) to %v (size %d)", t.dims(), len(t.Data), shape, n))
	}
	out.Data = t.Data
	return out
}

// Zero sets every element to 0.
func (t *Tensor32) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// Fill sets every element to v.
func (t *Tensor32) Fill(v float32) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// Equal reports whether t and u have the same shape and elementwise
// |t-u| <= tol (NaNs compare unequal, like the float64 Equal).
func (t *Tensor32) Equal(u *Tensor32, tol float32) bool {
	if !t.SameShape(u) {
		return false
	}
	for i, v := range t.Data {
		d := v - u.Data[i]
		if d < 0 {
			d = -d
		}
		if !(d <= tol) {
			return false
		}
	}
	return true
}

// String renders small tensors fully and large ones as a summary.
func (t *Tensor32) String() string {
	if len(t.Data) <= 32 {
		return fmt.Sprintf("Tensor32%v%v", t.dims(), t.Data)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Tensor32%v[", t.dims())
	for i := 0; i < 8; i++ {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%g", t.Data[i])
	}
	fmt.Fprintf(&b, " ... %d elems]", len(t.Data))
	return b.String()
}
