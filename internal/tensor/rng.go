package tensor

import "math"

// RNG is a small, fast, reproducible pseudo-random generator
// (xorshift64* with a splitmix64-seeded state). Every stochastic component
// in the repository draws from an explicitly seeded RNG so experiments are
// bit-for-bit reproducible.
type RNG struct {
	state uint64
	// spare Gaussian value from the Box–Muller pair.
	hasSpare bool
	spare    float64
}

// NewRNG returns a generator seeded with seed. Seed 0 is remapped to a
// fixed nonzero constant because xorshift state must be nonzero.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	r.Seed(seed)
	return r
}

// Seed resets the generator state from seed via splitmix64.
func (r *RNG) Seed(seed uint64) {
	z := seed + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 0x853c49e6748fea9b
	}
	r.state = z
	r.hasSpare = false
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545f4914f6cdd1d
}

// Float64 returns a uniform value in [0,1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0,n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("tensor: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// NormFloat64 returns a standard normal value via Box–Muller.
func (r *RNG) NormFloat64() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	f := math.Sqrt(-2 * math.Log(s) / s)
	r.spare = v * f
	r.hasSpare = true
	return u * f
}

// Perm returns a pseudo-random permutation of [0,n).
func (r *RNG) Perm(n int) []int {
	return r.PermInto(make([]int, n))
}

// PermInto fills p with a pseudo-random permutation of [0,len(p)) and
// returns it — the allocation-free form of Perm for hot loops that reuse
// the slice. It consumes exactly the same RNG draws as Perm, so a run is
// reproducible regardless of which form it uses.
func (r *RNG) PermInto(p []int) []int {
	n := len(p)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Split derives a new, independent generator from this one. Use it to give
// each component its own stream without correlated draws.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64())
}

// RNGState is a serializable snapshot of an RNG's position in its
// stream, including the buffered Box–Muller spare, so checkpoint/resume
// reproduces Gaussian draws bit for bit.
type RNGState struct {
	State     uint64 `json:"state"`
	HasSpare  bool   `json:"has_spare,omitempty"`
	SpareBits uint64 `json:"spare_bits,omitempty"`
}

// State captures the generator's current state.
func (r *RNG) State() RNGState {
	return RNGState{State: r.state, HasSpare: r.hasSpare, SpareBits: math.Float64bits(r.spare)}
}

// SetState rewinds the generator to a captured state: the next draws
// are bitwise identical to the draws that followed the capture.
func (r *RNG) SetState(s RNGState) {
	r.state = s.State
	r.hasSpare = s.HasSpare
	r.spare = math.Float64frombits(s.SpareBits)
	if r.state == 0 {
		// xorshift state must be nonzero; a zero snapshot is corrupt, so
		// fall back to the seed-0 remap constant.
		r.state = 0x853c49e6748fea9b
	}
}

// RandN fills a new tensor of the given shape with N(0,1) draws.
func RandN(r *RNG, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = r.NormFloat64()
	}
	return t
}

// RandN32 fills a new float32 tensor of the given shape with N(0,1)
// draws, rounded to nearest. It consumes the same RNG stream as RandN.
func RandN32(r *RNG, shape ...int) *Tensor32 {
	t := New32(shape...)
	for i := range t.Data {
		t.Data[i] = float32(r.NormFloat64())
	}
	return t
}

// RandUniform fills a new tensor of the given shape with U[lo,hi) draws.
func RandUniform(r *RNG, lo, hi float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = lo + (hi-lo)*r.Float64()
	}
	return t
}
