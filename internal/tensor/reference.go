package tensor

// Reference kernels: the pre-GEMM naive loops, kept as an independent
// implementation for correctness cross-checks and for the packed-vs-naive
// speedup table in cmd/experiments. They use unfused multiply-then-add,
// so they agree with the packed kernels only to rounding error — the
// packed paths are validated bitwise against a scalar math.FMA oracle in
// the tests instead.

// ReferenceMatMulInto computes dst = t × u with the naive ikj loop.
func (t *Tensor) ReferenceMatMulInto(u, dst *Tensor) *Tensor {
	m, k, n := matmulDims(t, u, "ReferenceMatMulInto")
	checkDst(dst, m, n, "ReferenceMatMulInto")
	dst.Zero()
	out, a, b := dst.Data, t.Data, u.Data
	for i := 0; i < m; i++ {
		arow := a[i*k : (i+1)*k]
		orow := out[i*n : (i+1)*n]
		for p, av := range arow {
			brow := b[p*n : (p+1)*n]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return dst
}

// ReferenceMatMulTInto computes dst = t × uᵀ with the naive dot-product
// loop.
func (t *Tensor) ReferenceMatMulTInto(u, dst *Tensor) *Tensor {
	m, k, n := matmulTDims(t, u, "ReferenceMatMulTInto")
	checkDst(dst, m, n, "ReferenceMatMulTInto")
	out, a, b := dst.Data, t.Data, u.Data
	for i := 0; i < m; i++ {
		arow := a[i*k : (i+1)*k]
		orow := out[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			brow := b[j*k : (j+1)*k]
			s := 0.0
			for p, av := range arow {
				s += av * brow[p]
			}
			orow[j] = s
		}
	}
	return dst
}

// ReferenceTMatMulAcc accumulates dst += tᵀ × u with the naive p-outer
// loop.
func (t *Tensor) ReferenceTMatMulAcc(u, dst *Tensor) *Tensor {
	k, m := tmatmulDims(t, u, "ReferenceTMatMulAcc")
	n := u.shape[1]
	checkDst(dst, m, n, "ReferenceTMatMulAcc")
	out, a, b := dst.Data, t.Data, u.Data
	for p := 0; p < k; p++ {
		arow := a[p*m : (p+1)*m]
		brow := b[p*n : (p+1)*n]
		for i, av := range arow {
			orow := out[i*n : (i+1)*n]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return dst
}
