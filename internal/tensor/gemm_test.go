package tensor

import (
	"math"
	"testing"

	"repro/internal/par"
)

// fmaOracle computes one element the way every gemm path must: a single
// exactly-rounded fused multiply-add per k-step, ascending k.
func fmaOracle(init float64, a func(p int) float64, b func(p int) float64, k int) float64 {
	acc := init
	for p := 0; p < k; p++ {
		acc = math.FMA(a(p), b(p), acc)
	}
	return acc
}

func requireBitwise(t *testing.T, got, want *Tensor, what string) {
	t.Helper()
	for i := range want.Data {
		if math.Float64bits(got.Data[i]) != math.Float64bits(want.Data[i]) {
			t.Fatalf("%s: elem %d = %x, want %x (%g vs %g)", what, i,
				math.Float64bits(got.Data[i]), math.Float64bits(want.Data[i]),
				got.Data[i], want.Data[i])
		}
	}
}

// gemmShapes covers interior-only, ragged-edge, tall-skinny, wide, and
// sub-tile shapes, plus one big enough to cross the parallel threshold.
var gemmShapes = []struct{ m, k, n int }{
	{1, 1, 1},
	{1, 5, 1},
	{3, 7, 5},
	{4, 8, 8},
	{5, 9, 17},
	{8, 16, 24},
	{31, 33, 29},
	{32, 64, 64},
	{97, 53, 89},
	{128, 1, 64},
	{1, 64, 256},
	{64, 128, 96},
}

func TestMatMulMatchesFMAOracle(t *testing.T) {
	r := NewRNG(3)
	for _, sh := range gemmShapes {
		a := RandN(r, sh.m, sh.k)
		b := RandN(r, sh.k, sh.n)
		got := a.MatMul(b)
		want := New(sh.m, sh.n)
		for i := 0; i < sh.m; i++ {
			for j := 0; j < sh.n; j++ {
				want.Data[i*sh.n+j] = fmaOracle(0,
					func(p int) float64 { return a.Data[i*sh.k+p] },
					func(p int) float64 { return b.Data[p*sh.n+j] }, sh.k)
			}
		}
		requireBitwise(t, got, want, "MatMul")
	}
}

func TestMatMulTMatchesFMAOracle(t *testing.T) {
	r := NewRNG(4)
	for _, sh := range gemmShapes {
		a := RandN(r, sh.m, sh.k)
		b := RandN(r, sh.n, sh.k)
		got := a.MatMulT(b)
		want := New(sh.m, sh.n)
		for i := 0; i < sh.m; i++ {
			for j := 0; j < sh.n; j++ {
				want.Data[i*sh.n+j] = fmaOracle(0,
					func(p int) float64 { return a.Data[i*sh.k+p] },
					func(p int) float64 { return b.Data[j*sh.k+p] }, sh.k)
			}
		}
		requireBitwise(t, got, want, "MatMulT")
	}
}

func TestTMatMulAccMatchesFMAOracle(t *testing.T) {
	r := NewRNG(5)
	for _, sh := range gemmShapes {
		a := RandN(r, sh.k, sh.m)
		b := RandN(r, sh.k, sh.n)
		dst := RandN(r, sh.m, sh.n)
		want := New(sh.m, sh.n)
		for i := 0; i < sh.m; i++ {
			for j := 0; j < sh.n; j++ {
				want.Data[i*sh.n+j] = fmaOracle(dst.Data[i*sh.n+j],
					func(p int) float64 { return a.Data[p*sh.m+i] },
					func(p int) float64 { return b.Data[p*sh.n+j] }, sh.k)
			}
		}
		a.TMatMulAcc(b, dst)
		requireBitwise(t, dst, want, "TMatMulAcc")
	}
}

// TestGemmRowIndependence pins the property batched inference relies on:
// row i of a large product is bitwise the result of multiplying row i
// alone — regardless of batch size or which kernel path the size picks.
func TestGemmRowIndependence(t *testing.T) {
	r := NewRNG(6)
	const m, k, n = 37, 48, 40
	a := RandN(r, m, k)
	b := RandN(r, k, n)
	full := a.MatMul(b)
	for _, i := range []int{0, 1, 17, m - 1} {
		row := FromSlice(append([]float64(nil), a.Data[i*k:(i+1)*k]...), 1, k)
		single := row.MatMul(b)
		for j := 0; j < n; j++ {
			if math.Float64bits(single.Data[j]) != math.Float64bits(full.Data[i*n+j]) {
				t.Fatalf("row %d col %d: batch result %g != single-row result %g",
					i, j, full.Data[i*n+j], single.Data[j])
			}
		}
	}
}

// TestGemmWorkerCountInvariance reruns the same large products under
// 1, 2 and 4 workers and demands bitwise identical results.
func TestGemmWorkerCountInvariance(t *testing.T) {
	r := NewRNG(7)
	const m, k, n = 130, 67, 75 // crosses parallelFlops, ragged in every dim
	a := RandN(r, m, k)
	b := RandN(r, k, n)
	bT := RandN(r, n, k)
	aT := RandN(r, k, m)
	acc0 := RandN(r, m, n)

	type result struct{ mm, mmt, tmm *Tensor }
	runAll := func(workers int) result {
		prev := par.SetWorkers(workers)
		defer par.SetWorkers(prev)
		acc := FromSlice(append([]float64(nil), acc0.Data...), m, n)
		return result{a.MatMul(b), a.MatMulT(bT), aT.TMatMulAcc(b, acc)}
	}
	base := runAll(1)
	for _, w := range []int{2, 4} {
		got := runAll(w)
		requireBitwise(t, got.mm, base.mm, "MatMul workers")
		requireBitwise(t, got.mmt, base.mmt, "MatMulT workers")
		requireBitwise(t, got.tmm, base.tmm, "TMatMulAcc workers")
	}
}

// TestGemmCloseToReference sanity-checks the fused kernels against the
// unfused naive loops: same math, different rounding, so agreement must
// be tight but is not bitwise.
func TestGemmCloseToReference(t *testing.T) {
	r := NewRNG(8)
	const m, k, n = 33, 41, 27
	a := RandN(r, m, k)
	b := RandN(r, k, n)
	got := a.MatMul(b)
	want := New(m, n)
	a.ReferenceMatMulInto(b, want)
	if !got.Equal(want, 1e-10) {
		t.Fatal("packed MatMul far from naive reference")
	}
}

// TestGemmZeroAllocSteadyState verifies a warmed-up Into-variant matmul
// performs no heap allocations.
func TestGemmZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation defeats escape analysis; allocation counts are meaningless")
	}
	r := NewRNG(9)
	a := RandN(r, 64, 64)
	b := RandN(r, 64, 64)
	dst := New(64, 64)
	a.MatMulInto(b, dst) // warm the scratch pools
	allocs := testing.AllocsPerRun(20, func() { a.MatMulInto(b, dst) })
	if allocs != 0 {
		t.Fatalf("MatMulInto steady state allocates %.1f times per op, want 0", allocs)
	}
}
