package tensor

// Float32 reference kernels: naive unfused loops mirroring reference.go,
// kept as an independent implementation for cross-checks. The f32↔f64
// parity tests promote these to an oracle pair: running the same inputs
// through Reference* in both widths bounds the quantization error the
// packed kernels inherit.

// ReferenceMatMulInto computes dst = t × u with the naive ikj loop.
func (t *Tensor32) ReferenceMatMulInto(u, dst *Tensor32) *Tensor32 {
	m, k, n := matmul32Dims(t, u, "ReferenceMatMulInto")
	checkDst32(dst, m, n, "ReferenceMatMulInto")
	dst.Zero()
	out, a, b := dst.Data, t.Data, u.Data
	for i := 0; i < m; i++ {
		arow := a[i*k : (i+1)*k]
		orow := out[i*n : (i+1)*n]
		for p, av := range arow {
			brow := b[p*n : (p+1)*n]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return dst
}

// ReferenceMatMulTInto computes dst = t × uᵀ with the naive dot-product
// loop.
func (t *Tensor32) ReferenceMatMulTInto(u, dst *Tensor32) *Tensor32 {
	m, k, n := matmulT32Dims(t, u, "ReferenceMatMulTInto")
	checkDst32(dst, m, n, "ReferenceMatMulTInto")
	out, a, b := dst.Data, t.Data, u.Data
	for i := 0; i < m; i++ {
		arow := a[i*k : (i+1)*k]
		orow := out[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			brow := b[j*k : (j+1)*k]
			s := float32(0)
			for p, av := range arow {
				s += av * brow[p]
			}
			orow[j] = s
		}
	}
	return dst
}

// ReferenceTMatMulAcc accumulates dst += tᵀ × u with the naive p-outer
// loop.
func (t *Tensor32) ReferenceTMatMulAcc(u, dst *Tensor32) *Tensor32 {
	k, m := tmatmul32Dims(t, u, "ReferenceTMatMulAcc")
	n := u.shape[1]
	checkDst32(dst, m, n, "ReferenceTMatMulAcc")
	out, a, b := dst.Data, t.Data, u.Data
	for p := 0; p < k; p++ {
		arow := a[p*m : (p+1)*m]
		brow := b[p*n : (p+1)*n]
		for i, av := range arow {
			orow := out[i*n : (i+1)*n]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return dst
}
