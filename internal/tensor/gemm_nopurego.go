//go:build !purego

package tensor

// Default build: the runtime CPUID check in gemm_amd64.go decides
// between the assembly and portable kernels. See gemm_purego.go.
const forcePureGo = false
