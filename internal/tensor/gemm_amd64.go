package tensor

// fmaKernel4x8 is the AVX2+FMA microkernel in gemm_amd64.s. ap and bp
// point at packed panels of at least k*MR and k*NR elements; c points at
// the top-left of a 4×8 tile with row stride ldc (the tile must be fully
// in bounds). k must be ≥ 1.
func fmaKernel4x8(ap, bp, c *float64, k, ldc int, acc bool)

func cpuidRaw(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
func xgetbv0() (eax, edx uint32)

// useFMAKernel is decided once at startup: the assembly kernel needs
// AVX2 + FMA3 and an OS that saves YMM state (OSXSAVE + XCR0 bits 1–2).
// Without them the portable math.FMA kernel runs instead — slower,
// bitwise identical. Building with -tags purego pins the portable
// kernel regardless of hardware (see gemm_purego.go).
var useFMAKernel = !forcePureGo && detectFMAKernel()

func detectFMAKernel() bool {
	maxLeaf, _, _, _ := cpuidRaw(0, 0)
	if maxLeaf < 7 {
		return false
	}
	_, _, ecx1, _ := cpuidRaw(1, 0)
	const (
		fmaBit     = 1 << 12
		osxsaveBit = 1 << 27
		avxBit     = 1 << 28
	)
	if ecx1&fmaBit == 0 || ecx1&osxsaveBit == 0 || ecx1&avxBit == 0 {
		return false
	}
	xlo, _ := xgetbv0()
	if xlo&0x6 != 0x6 { // XMM and YMM state enabled by the OS
		return false
	}
	_, ebx7, _, _ := cpuidRaw(7, 0)
	const avx2Bit = 1 << 5
	return ebx7&avx2Bit != 0
}
