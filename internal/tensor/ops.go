package tensor

import (
	"fmt"
	"math"
)

// Add returns t + u elementwise as a new tensor. Shapes must match.
func (t *Tensor) Add(u *Tensor) *Tensor {
	t.mustMatch(u, "Add")
	out := NewLike(t)
	for i, v := range t.Data {
		out.Data[i] = v + u.Data[i]
	}
	return out
}

// Sub returns t - u elementwise as a new tensor. Shapes must match.
func (t *Tensor) Sub(u *Tensor) *Tensor {
	t.mustMatch(u, "Sub")
	out := NewLike(t)
	for i, v := range t.Data {
		out.Data[i] = v - u.Data[i]
	}
	return out
}

// Mul returns the Hadamard (elementwise) product t ⊙ u as a new tensor.
func (t *Tensor) Mul(u *Tensor) *Tensor {
	t.mustMatch(u, "Mul")
	out := NewLike(t)
	for i, v := range t.Data {
		out.Data[i] = v * u.Data[i]
	}
	return out
}

// AddInPlace sets t = t + u and returns t.
func (t *Tensor) AddInPlace(u *Tensor) *Tensor {
	t.mustMatch(u, "AddInPlace")
	for i, v := range u.Data {
		t.Data[i] += v
	}
	return t
}

// SubInPlace sets t = t - u and returns t.
func (t *Tensor) SubInPlace(u *Tensor) *Tensor {
	t.mustMatch(u, "SubInPlace")
	for i, v := range u.Data {
		t.Data[i] -= v
	}
	return t
}

// MulInPlace sets t = t ⊙ u and returns t.
func (t *Tensor) MulInPlace(u *Tensor) *Tensor {
	t.mustMatch(u, "MulInPlace")
	for i, v := range u.Data {
		t.Data[i] *= v
	}
	return t
}

// Scale returns c*t as a new tensor.
func (t *Tensor) Scale(c float64) *Tensor {
	out := NewLike(t)
	for i, v := range t.Data {
		out.Data[i] = c * v
	}
	return out
}

// ScaleInPlace sets t = c*t and returns t.
func (t *Tensor) ScaleInPlace(c float64) *Tensor {
	for i := range t.Data {
		t.Data[i] *= c
	}
	return t
}

// AXPY sets t = t + a*u and returns t (the BLAS axpy update).
func (t *Tensor) AXPY(a float64, u *Tensor) *Tensor {
	t.mustMatch(u, "AXPY")
	for i, v := range u.Data {
		t.Data[i] += a * v
	}
	return t
}

// Apply returns a new tensor with f applied to every element.
func (t *Tensor) Apply(f func(float64) float64) *Tensor {
	out := NewLike(t)
	for i, v := range t.Data {
		out.Data[i] = f(v)
	}
	return out
}

// ApplyInPlace applies f to every element of t in place and returns t.
func (t *Tensor) ApplyInPlace(f func(float64) float64) *Tensor {
	for i, v := range t.Data {
		t.Data[i] = f(v)
	}
	return t
}

// Sum returns the sum of all elements.
func (t *Tensor) Sum() float64 {
	s := 0.0
	for _, v := range t.Data {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of all elements (0 for empty tensors).
func (t *Tensor) Mean() float64 {
	if len(t.Data) == 0 {
		return 0
	}
	return t.Sum() / float64(len(t.Data))
}

// Max returns the maximum element. It panics on an empty tensor.
func (t *Tensor) Max() float64 {
	if len(t.Data) == 0 {
		panic("tensor: Max of empty tensor")
	}
	m := t.Data[0]
	for _, v := range t.Data[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Min returns the minimum element. It panics on an empty tensor.
func (t *Tensor) Min() float64 {
	if len(t.Data) == 0 {
		panic("tensor: Min of empty tensor")
	}
	m := t.Data[0]
	for _, v := range t.Data[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Norm2 returns the Euclidean (Frobenius) norm of t.
func (t *Tensor) Norm2() float64 {
	s := 0.0
	for _, v := range t.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// Dot returns the inner product of t and u viewed as flat vectors.
func (t *Tensor) Dot(u *Tensor) float64 {
	if len(t.Data) != len(u.Data) {
		panic(fmt.Sprintf("tensor: Dot size mismatch %d vs %d", len(t.Data), len(u.Data)))
	}
	s := 0.0
	for i, v := range t.Data {
		s += v * u.Data[i]
	}
	return s
}

// AddRowVector adds vector v (length = columns) to every row of the 2-D
// tensor t, returning a new tensor. This is the bias broadcast used by
// fully connected layers.
func (t *Tensor) AddRowVector(v *Tensor) *Tensor {
	if t.Dims() != 2 {
		panic("tensor: AddRowVector requires a 2-D tensor")
	}
	rows, cols := t.shape[0], t.shape[1]
	if v.Size() != cols {
		panic(fmt.Sprintf("tensor: AddRowVector vector length %d != cols %d", v.Size(), cols))
	}
	out := New(rows, cols)
	for r := 0; r < rows; r++ {
		base := r * cols
		for c := 0; c < cols; c++ {
			out.Data[base+c] = t.Data[base+c] + v.Data[c]
		}
	}
	return out
}

// AddRowVectorInPlace adds the length-cols vector v to every row of a 2-D
// tensor in place and returns t.
func (t *Tensor) AddRowVectorInPlace(v *Tensor) *Tensor {
	if t.Dims() != 2 {
		panic("tensor: AddRowVectorInPlace requires a 2-D tensor")
	}
	rows, cols := t.shape[0], t.shape[1]
	if v.Size() != cols {
		panic(fmt.Sprintf("tensor: AddRowVectorInPlace vector length %d != cols %d", v.Size(), cols))
	}
	for r := 0; r < rows; r++ {
		base := r * cols
		for c := 0; c < cols; c++ {
			t.Data[base+c] += v.Data[c]
		}
	}
	return t
}

// SumRows returns a length-cols vector with the column sums of a 2-D tensor
// (the reduction matching AddRowVector's broadcast in the backward pass).
func (t *Tensor) SumRows() *Tensor {
	if t.Dims() != 2 {
		panic("tensor: SumRows requires a 2-D tensor")
	}
	rows, cols := t.shape[0], t.shape[1]
	out := New(cols)
	for r := 0; r < rows; r++ {
		base := r * cols
		for c := 0; c < cols; c++ {
			out.Data[c] += t.Data[base+c]
		}
	}
	return out
}

// SumRowsAcc accumulates the column sums of a 2-D tensor into the
// length-cols vector dst (dst += column sums) and returns dst — the
// temporary-free form of Grad.AddInPlace(t.SumRows()).
func (t *Tensor) SumRowsAcc(dst *Tensor) *Tensor {
	if t.Dims() != 2 {
		panic("tensor: SumRowsAcc requires a 2-D tensor")
	}
	rows, cols := t.shape[0], t.shape[1]
	if dst.Size() != cols {
		panic(fmt.Sprintf("tensor: SumRowsAcc destination length %d != cols %d", dst.Size(), cols))
	}
	for r := 0; r < rows; r++ {
		base := r * cols
		for c := 0; c < cols; c++ {
			dst.Data[c] += t.Data[base+c]
		}
	}
	return dst
}

func (t *Tensor) mustMatch(u *Tensor, op string) {
	if !t.SameShape(u) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %v vs %v", op, t.dims(), u.dims()))
	}
}

// Equal reports whether t and u have the same shape and all elements are
// within tol of each other.
func (t *Tensor) Equal(u *Tensor, tol float64) bool {
	if !t.SameShape(u) {
		return false
	}
	for i, v := range t.Data {
		if math.Abs(v-u.Data[i]) > tol {
			return false
		}
	}
	return true
}
