package tensor

// fmaKernel8x16 is the float32 AVX2+FMA microkernel in gemm32_amd64.s.
// ap and bp point at packed panels of at least k*MR and k*NR elements; c
// points at the top-left of an 8×16 tile with row stride ldc (the tile
// must be fully in bounds). k must be ≥ 1.
func fmaKernel8x16(ap, bp, c *float32, k, ldc int, acc bool)

// useFMAKernel32 shares the f64 kernel's feature gate: the same
// AVX2 + FMA3 + OS-YMM-state requirements cover VFMADD231PS.
var useFMAKernel32 = useFMAKernel
