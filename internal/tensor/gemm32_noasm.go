//go:build !amd64

package tensor

// Non-amd64 builds always use the portable fma32 register tile. Unlike
// the f64 path (where math.FMA compiles to a native fused instruction on
// arm64), the float32 fallback pays a software round-to-odd correction
// per multiply-add; it is correct everywhere but fast nowhere.
const useFMAKernel32 = false

func fmaKernel8x16(ap, bp, c *float32, k, ldc int, acc bool) {
	panic("tensor: fmaKernel8x16 without assembly support")
}
