package tensor

import (
	"fmt"
	"runtime"
	"sync"
)

// parallelThreshold is the number of output elements above which MatMul
// fans work out across goroutines. Below it the sequential kernel is faster.
const parallelThreshold = 64 * 64

// MatMul returns the matrix product t × u for 2-D tensors, computed with a
// cache-friendly ikj loop order and parallelized across rows for large
// outputs.
func (t *Tensor) MatMul(u *Tensor) *Tensor {
	if t.Dims() != 2 || u.Dims() != 2 {
		panic("tensor: MatMul requires 2-D tensors")
	}
	m, k := t.shape[0], t.shape[1]
	k2, n := u.shape[0], u.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dimension mismatch %v × %v", t.shape, u.shape))
	}
	out := New(m, n)
	if m*n < parallelThreshold {
		matmulRows(out.Data, t.Data, u.Data, 0, m, k, n)
		return out
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > m {
		workers = m
	}
	var wg sync.WaitGroup
	chunk := (m + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > m {
			hi = m
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			matmulRows(out.Data, t.Data, u.Data, lo, hi, k, n)
		}(lo, hi)
	}
	wg.Wait()
	return out
}

// matmulRows computes rows [lo,hi) of out = a×b where a is m×k and b is k×n.
func matmulRows(out, a, b []float64, lo, hi, k, n int) {
	for i := lo; i < hi; i++ {
		arow := a[i*k : (i+1)*k]
		orow := out[i*n : (i+1)*n]
		for p, av := range arow {
			if av == 0 {
				continue
			}
			brow := b[p*n : (p+1)*n]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// MatMulT returns t × uᵀ without materializing the transpose.
func (t *Tensor) MatMulT(u *Tensor) *Tensor {
	if t.Dims() != 2 || u.Dims() != 2 {
		panic("tensor: MatMulT requires 2-D tensors")
	}
	m, k := t.shape[0], t.shape[1]
	n, k2 := u.shape[0], u.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulT inner dimension mismatch %v × %vᵀ", t.shape, u.shape))
	}
	out := New(m, n)
	for i := 0; i < m; i++ {
		arow := t.Data[i*k : (i+1)*k]
		orow := out.Data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			brow := u.Data[j*k : (j+1)*k]
			s := 0.0
			for p, av := range arow {
				s += av * brow[p]
			}
			orow[j] = s
		}
	}
	return out
}

// TMatMul returns tᵀ × u without materializing the transpose.
func (t *Tensor) TMatMul(u *Tensor) *Tensor {
	if t.Dims() != 2 || u.Dims() != 2 {
		panic("tensor: TMatMul requires 2-D tensors")
	}
	k, m := t.shape[0], t.shape[1]
	k2, n := u.shape[0], u.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: TMatMul inner dimension mismatch %vᵀ × %v", t.shape, u.shape))
	}
	out := New(m, n)
	for p := 0; p < k; p++ {
		arow := t.Data[p*m : (p+1)*m]
		brow := u.Data[p*n : (p+1)*n]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			orow := out.Data[i*n : (i+1)*n]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// Transpose2D returns the transpose of a 2-D tensor as a new tensor.
func (t *Tensor) Transpose2D() *Tensor {
	if t.Dims() != 2 {
		panic("tensor: Transpose2D requires a 2-D tensor")
	}
	m, n := t.shape[0], t.shape[1]
	out := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.Data[j*m+i] = t.Data[i*n+j]
		}
	}
	return out
}

// MatVec returns the matrix-vector product t × v for a 2-D tensor and a
// 1-D tensor.
func (t *Tensor) MatVec(v *Tensor) *Tensor {
	if t.Dims() != 2 || v.Dims() != 1 {
		panic("tensor: MatVec requires a 2-D tensor and a 1-D tensor")
	}
	m, n := t.shape[0], t.shape[1]
	if v.Size() != n {
		panic(fmt.Sprintf("tensor: MatVec dimension mismatch %v × len %d", t.shape, v.Size()))
	}
	out := New(m)
	for i := 0; i < m; i++ {
		row := t.Data[i*n : (i+1)*n]
		s := 0.0
		for j, rv := range row {
			s += rv * v.Data[j]
		}
		out.Data[i] = s
	}
	return out
}
