package tensor

import (
	"fmt"

	"repro/internal/par"
)

// parallelFlops is the number of multiply-adds (m·n·k for a matmul) above
// which a kernel fans out onto the internal/par worker pool. Below it the
// sequential kernel wins.
//
// Tuning evidence (Xeon @ 2.10GHz, go1.24): BenchmarkParDispatch in
// internal/par puts the fixed cost of waking a 4-worker pool and claiming
// all chunks of a Run at ~0.8µs (vs ~0.3µs for the inline 1-worker path).
// The ikj kernel sustains roughly 2 mul-adds/ns single-threaded, so the
// crossover 32·64·64 ≈ 131k mul-adds ≈ 65µs of work: a 2-worker split
// (~33µs + 1µs dispatch) already halves the wall clock, and dispatch
// stays ~1.5% of the op. One step smaller (32³ ≈ 17µs,
// BenchmarkMatMulSmall) the split still wins at 4+ workers but is
// marginal at 2, so small ops stay sequential to protect latency.
const parallelFlops = 32 * 64 * 64

// parallelElems is the element count above which simple O(n) kernels
// (transpose, matvec rows) parallelize. These move ~8 bytes per element
// with little arithmetic (~1ns/elem), so 32k elements ≈ 32µs of work —
// roughly the same ≥10× dispatch-cost bar as parallelFlops.
const parallelElems = 32 * 1024

// MatMul returns the matrix product t × u for 2-D tensors via the packed
// register-tile GEMM kernel (see gemm.go).
func (t *Tensor) MatMul(u *Tensor) *Tensor {
	m, _, n := matmulDims(t, u, "MatMul")
	out := New(m, n)
	t.MatMulInto(u, out)
	return out
}

// MatMulInto computes dst = t × u, reusing dst's storage. dst must be
// [m, n] and must not alias t or u. It returns dst.
func (t *Tensor) MatMulInto(u, dst *Tensor) *Tensor {
	m, k, n := matmulDims(t, u, "MatMulInto")
	checkDst(dst, m, n, "MatMulInto")
	gemm(gemmOp{a: t.Data, b: u.Data, dst: dst.Data, m: m, k: k, n: n})
	return dst
}

// MatMulT returns t × uᵀ without materializing the transpose.
func (t *Tensor) MatMulT(u *Tensor) *Tensor {
	m, _, n := matmulTDims(t, u, "MatMulT")
	out := New(m, n)
	t.MatMulTInto(u, out)
	return out
}

// MatMulTInto computes dst = t × uᵀ, reusing dst's storage. dst must be
// [m, n] and must not alias t or u. It returns dst.
func (t *Tensor) MatMulTInto(u, dst *Tensor) *Tensor {
	m, k, n := matmulTDims(t, u, "MatMulTInto")
	checkDst(dst, m, n, "MatMulTInto")
	gemm(gemmOp{a: t.Data, b: u.Data, dst: dst.Data, m: m, k: k, n: n, bTrans: true})
	return dst
}

// TMatMul returns tᵀ × u without materializing the transpose.
func (t *Tensor) TMatMul(u *Tensor) *Tensor {
	_, m := tmatmulDims(t, u, "TMatMul")
	return t.TMatMulAcc(u, New(m, u.shape[1]))
}

// TMatMulAcc accumulates tᵀ × u into dst (dst += tᵀ × u) without a
// temporary — the gradient-accumulation op param.Grad += gradᵀ·x. dst must
// be [cols(t), cols(u)] and must not alias t or u. It returns dst.
func (t *Tensor) TMatMulAcc(u, dst *Tensor) *Tensor {
	k, m := tmatmulDims(t, u, "TMatMulAcc")
	n := u.shape[1]
	checkDst(dst, m, n, "TMatMulAcc")
	gemm(gemmOp{a: t.Data, b: u.Data, dst: dst.Data, m: m, k: k, n: n, aTrans: true, acc: true})
	return dst
}

func tmatmulDims(t, u *Tensor, op string) (k, m int) {
	if t.Dims() != 2 || u.Dims() != 2 {
		panic("tensor: " + op + " requires 2-D tensors")
	}
	k, m = t.shape[0], t.shape[1]
	if u.shape[0] != k {
		panic(fmt.Sprintf("tensor: %s inner dimension mismatch %vᵀ × %v", op, t.dims(), u.dims()))
	}
	return k, m
}

// Transpose2D returns the transpose of a 2-D tensor as a new tensor.
func (t *Tensor) Transpose2D() *Tensor {
	if t.Dims() != 2 {
		panic("tensor: Transpose2D requires a 2-D tensor")
	}
	m, n := t.shape[0], t.shape[1]
	out := New(n, m)
	transpose := func(jlo, jhi int) {
		for j := jlo; j < jhi; j++ {
			orow := out.Data[j*m : (j+1)*m]
			for i := 0; i < m; i++ {
				orow[i] = t.Data[i*n+j]
			}
		}
	}
	if m*n < parallelElems || n < 2 {
		transpose(0, n)
		return out
	}
	par.Run(n, transpose)
	return out
}

// MatVec returns the matrix-vector product t × v for a 2-D tensor and a
// 1-D tensor, parallelized across rows for large matrices.
func (t *Tensor) MatVec(v *Tensor) *Tensor {
	if t.Dims() != 2 || v.Dims() != 1 {
		panic("tensor: MatVec requires a 2-D tensor and a 1-D tensor")
	}
	m, n := t.shape[0], t.shape[1]
	if v.Size() != n {
		panic(fmt.Sprintf("tensor: MatVec dimension mismatch %v × len %d", t.dims(), v.Size()))
	}
	out := New(m)
	rows := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := t.Data[i*n : (i+1)*n]
			s := 0.0
			for j, rv := range row {
				s += rv * v.Data[j]
			}
			out.Data[i] = s
		}
	}
	if m*n < parallelElems || m < 2 {
		rows(0, m)
		return out
	}
	par.Run(m, rows)
	return out
}

func matmulDims(t, u *Tensor, op string) (m, k, n int) {
	if t.Dims() != 2 || u.Dims() != 2 {
		panic("tensor: " + op + " requires 2-D tensors")
	}
	m, k = t.shape[0], t.shape[1]
	k2, n := u.shape[0], u.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: %s inner dimension mismatch %v × %v", op, t.dims(), u.dims()))
	}
	return m, k, n
}

func matmulTDims(t, u *Tensor, op string) (m, k, n int) {
	if t.Dims() != 2 || u.Dims() != 2 {
		panic("tensor: " + op + " requires 2-D tensors")
	}
	m, k = t.shape[0], t.shape[1]
	n, k2 := u.shape[0], u.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: %s inner dimension mismatch %v × %vᵀ", op, t.dims(), u.dims()))
	}
	return m, k, n
}

func checkDst(dst *Tensor, m, n int, op string) {
	if dst.Dims() != 2 || dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: %s destination shape %v, want [%d %d]", op, dst.dims(), m, n))
	}
}
