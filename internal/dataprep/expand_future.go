package dataprep

import (
	"fmt"
	"math"
	"time"
)

// This file implements the two data-expansion improvements the paper's
// discussion (Sec. V-C) proposes as future work:
//
//  1. "adding first-order difference information for resource utilization"
//     — ExpandWithDifference appends a Δr channel per indicator.
//  2. "set different dimension columns according to the correlation
//     weights of each performance metric" — ExpandWeighted gives each
//     indicator an expansion factor proportional to its |PCC| with the
//     prediction target.

// ExpandWithDifference performs horizontal expansion (Fig. 4b) and
// additionally appends one first-difference channel per indicator:
// Δr_t = r_t − r_{t−1}. Channel order per indicator: lag 0 .. lag factor−1,
// then the difference channel. Output series are trimmed to stay aligned
// (by max(factor−1, 1) samples).
func ExpandWithDifference(series [][]float64, factor int) [][]float64 {
	defer observeStage(StageExpand, time.Now())
	if factor < 1 {
		panic(fmt.Sprintf("dataprep: expansion factor %d < 1", factor))
	}
	if len(series) == 0 {
		return nil
	}
	trim := factor - 1
	if trim < 1 {
		trim = 1 // the difference channel needs one step of history
	}
	n := len(series[0])
	if n <= trim {
		return make([][]float64, 0)
	}
	outLen := n - trim
	out := make([][]float64, 0, len(series)*(factor+1))
	for _, s := range series {
		for lag := 0; lag < factor; lag++ {
			c := make([]float64, outLen)
			for t := 0; t < outLen; t++ {
				c[t] = s[t+trim-lag]
			}
			out = append(out, c)
		}
		d := make([]float64, outLen)
		for t := 0; t < outLen; t++ {
			d[t] = s[t+trim] - s[t+trim-1]
		}
		out = append(out, d)
	}
	return out
}

// ExpandWeighted assigns each indicator an expansion factor of
// 1 + round(|corr|·(maxFactor−1)), so strongly correlated indicators get
// more lagged copies (more short-term weight) and weak ones fewer. corr
// must have one entry per series (the PCC with the prediction target, as
// returned by Correlations). All output channels are trimmed by
// maxFactor−1 samples to stay aligned regardless of per-channel factors.
//
// The per-indicator channel counts are returned alongside the expanded
// series so callers can map channels back to indicators.
func ExpandWeighted(series [][]float64, corr []float64, maxFactor int) (out [][]float64, factors []int) {
	if maxFactor < 1 {
		panic(fmt.Sprintf("dataprep: maxFactor %d < 1", maxFactor))
	}
	if len(series) != len(corr) {
		panic(fmt.Sprintf("dataprep: %d series but %d correlations", len(series), len(corr)))
	}
	if len(series) == 0 {
		return nil, nil
	}
	factors = WeightedFactors(corr, maxFactor)
	return ExpandWithFactors(series, factors, maxFactor), factors
}

// WeightedFactors maps per-indicator correlations to expansion factors:
// 1 + round(|corr|·(maxFactor−1)), clamped to [1, maxFactor].
func WeightedFactors(corr []float64, maxFactor int) []int {
	factors := make([]int, len(corr))
	for i, c := range corr {
		f := 1 + int(math.Round(math.Abs(c)*float64(maxFactor-1)))
		if f > maxFactor {
			f = maxFactor
		}
		if f < 1 {
			f = 1
		}
		factors[i] = f
	}
	return factors
}

// ExpandWithFactors expands each series into factors[i] lagged copies,
// trimming all channels by maxFactor−1 samples for alignment. Use it to
// replay a weighted expansion with factors fixed at training time.
func ExpandWithFactors(series [][]float64, factors []int, maxFactor int) [][]float64 {
	defer observeStage(StageExpand, time.Now())
	if len(series) != len(factors) {
		panic(fmt.Sprintf("dataprep: %d series but %d factors", len(series), len(factors)))
	}
	if len(series) == 0 {
		return nil
	}
	trim := maxFactor - 1
	n := len(series[0])
	if n <= trim {
		return make([][]float64, 0)
	}
	outLen := n - trim
	var out [][]float64
	for si, s := range series {
		for lag := 0; lag < factors[si]; lag++ {
			c := make([]float64, outLen)
			for t := 0; t < outLen; t++ {
				c[t] = s[t+trim-lag]
			}
			out = append(out, c)
		}
	}
	return out
}
