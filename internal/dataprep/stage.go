package dataprep

import (
	"time"

	"repro/internal/obs"
)

// Stage names of Algorithm 1's data pipeline, as used in the stage
// duration metric and in predictor trace spans ("dataprep.<stage>").
const (
	StageClean     = "clean"
	StageNormalize = "normalize"
	StageScreen    = "screen"
	StageExpand    = "expand"
	StageWindow    = "window"
)

// observeStage records one stage execution into the default registry:
//
//	rptcn_dataprep_stage_seconds{stage="clean"|"normalize"|...}
//
// Each pipeline stage runs once per Fit/ForecastFrom, so the lookup cost
// is irrelevant next to the stage work itself.
func observeStage(stage string, start time.Time) {
	obs.Default().Histogram("rptcn_dataprep_stage_seconds",
		"Wall time of Algorithm 1 data-preparation stages.",
		obs.ExponentialBuckets(1e-5, 4, 10),
		obs.L("stage", stage)).Observe(time.Since(start).Seconds())
}
