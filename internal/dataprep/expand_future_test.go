package dataprep

import (
	"math"
	"testing"
)

func TestExpandWithDifferenceChannels(t *testing.T) {
	s := []float64{10, 11, 13, 16, 20}
	out := ExpandWithDifference([][]float64{s}, 2)
	// 2 lag channels + 1 difference channel.
	if len(out) != 3 {
		t.Fatalf("channels = %d, want 3", len(out))
	}
	// trim = 1; output index 0 = raw index 1.
	if len(out[0]) != 4 {
		t.Fatalf("length = %d, want 4", len(out[0]))
	}
	// lag 0: 11,13,16,20 ; lag 1: 10,11,13,16 ; diff: 1,2,3,4.
	wantLag0 := []float64{11, 13, 16, 20}
	wantLag1 := []float64{10, 11, 13, 16}
	wantDiff := []float64{1, 2, 3, 4}
	for i := range wantLag0 {
		if out[0][i] != wantLag0[i] || out[1][i] != wantLag1[i] || out[2][i] != wantDiff[i] {
			t.Fatalf("got %v / %v / %v", out[0], out[1], out[2])
		}
	}
}

func TestExpandWithDifferenceFactorOne(t *testing.T) {
	// factor 1 still trims one sample for the difference channel.
	s := []float64{5, 8, 7}
	out := ExpandWithDifference([][]float64{s}, 1)
	if len(out) != 2 || len(out[0]) != 2 {
		t.Fatalf("shape = %dx%d", len(out), len(out[0]))
	}
	if out[0][0] != 8 || out[1][0] != 3 || out[1][1] != -1 {
		t.Fatalf("got %v / %v", out[0], out[1])
	}
}

func TestExpandWithDifferenceTooShort(t *testing.T) {
	if got := ExpandWithDifference([][]float64{{1}}, 2); len(got) != 0 {
		t.Fatalf("too-short = %v", got)
	}
}

func TestExpandWeightedFactorsFollowCorrelation(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5, 6}
	b := []float64{6, 5, 4, 3, 2, 1}
	c := []float64{1, 1, 2, 1, 1, 2}
	corr := []float64{1.0, -1.0, 0.1}
	out, factors := ExpandWeighted([][]float64{a, b, c}, corr, 3)
	// |corr|=1 → factor 3; |corr|=0.1 → 1 + round(0.2) = 1.
	if factors[0] != 3 || factors[1] != 3 || factors[2] != 1 {
		t.Fatalf("factors = %v", factors)
	}
	if len(out) != 7 {
		t.Fatalf("channels = %d, want 7", len(out))
	}
	// All channels trimmed by maxFactor−1 = 2.
	for _, ch := range out {
		if len(ch) != 4 {
			t.Fatalf("channel length = %d, want 4", len(ch))
		}
	}
	// First indicator lag-0 starts at raw index 2.
	if out[0][0] != 3 || out[1][0] != 2 || out[2][0] != 1 {
		t.Fatalf("lags wrong: %v %v %v", out[0], out[1], out[2])
	}
	// Third indicator (factor 1) is its lag-0 at the same alignment.
	last := out[6]
	if last[0] != 2 || last[3] != 2 {
		t.Fatalf("weak channel = %v", last)
	}
}

func TestExpandWeightedValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched corr length")
		}
	}()
	ExpandWeighted([][]float64{{1, 2}}, []float64{0.5, 0.5}, 2)
}

func TestExpandWeightedNaNCorrelationSafe(t *testing.T) {
	// A NaN correlation (constant series) must not panic; factor clamps to 1.
	s := []float64{1, 2, 3, 4}
	out, factors := ExpandWeighted([][]float64{s}, []float64{math.NaN()}, 3)
	if len(out) != 1 || factors[0] != 1 {
		t.Fatalf("NaN corr: %v %v", factors, out)
	}
}
