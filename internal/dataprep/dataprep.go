// Package dataprep implements the data pipeline of the paper's
// Algorithm 1: cleaning, min–max normalization (eq. 1), Pearson-correlation
// screening of performance indicators (eq. 2), horizontal feature expansion
// in the time dimension (Fig. 4b), and sliding-window supervised dataset
// construction.
package dataprep

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/stats"
	"repro/internal/tensor"
	"repro/internal/train"
)

// Clean removes every time index at which any indicator is NaN or Inf
// (listwise deletion keeps the indicator series aligned). The input is
// [indicator][time]; all series must have equal length.
func Clean(series [][]float64) [][]float64 {
	defer observeStage(StageClean, time.Now())
	if len(series) == 0 {
		return nil
	}
	n := len(series[0])
	keep := make([]bool, n)
	kept := 0
	for t := 0; t < n; t++ {
		ok := true
		for _, s := range series {
			v := s[t]
			if math.IsNaN(v) || math.IsInf(v, 0) {
				ok = false
				break
			}
		}
		keep[t] = ok
		if ok {
			kept++
		}
	}
	out := make([][]float64, len(series))
	for i, s := range series {
		o := make([]float64, 0, kept)
		for t, k := range keep {
			if k {
				o = append(o, s[t])
			}
		}
		out[i] = o
	}
	return out
}

// Normalizer performs per-indicator min–max scaling (eq. 1):
// x_norm = (x − min) / (max − min). Constant series map to 0.
type Normalizer struct {
	Min []float64
	Max []float64
}

// FitNormalizer computes the per-series extrema over the given data.
// Fit it on the training segment only to avoid test-set leakage.
func FitNormalizer(series [][]float64) *Normalizer {
	n := &Normalizer{
		Min: make([]float64, len(series)),
		Max: make([]float64, len(series)),
	}
	for i, s := range series {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, v := range s {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		n.Min[i], n.Max[i] = lo, hi
	}
	return n
}

// Transform applies the scaling, returning new slices.
func (n *Normalizer) Transform(series [][]float64) [][]float64 {
	defer observeStage(StageNormalize, time.Now())
	if len(series) != len(n.Min) {
		panic(fmt.Sprintf("dataprep: Transform expects %d series, got %d", len(n.Min), len(series)))
	}
	out := make([][]float64, len(series))
	for i, s := range series {
		span := n.Max[i] - n.Min[i]
		o := make([]float64, len(s))
		if span > 0 {
			for t, v := range s {
				o[t] = (v - n.Min[i]) / span
			}
		}
		out[i] = o
	}
	return out
}

// Inverse maps normalized values of series idx back to the raw scale.
func (n *Normalizer) Inverse(idx int, xs []float64) []float64 {
	span := n.Max[idx] - n.Min[idx]
	out := make([]float64, len(xs))
	for i, v := range xs {
		out[i] = v*span + n.Min[idx]
	}
	return out
}

// Correlations returns the Pearson correlation of every series with the
// target series (index target), in input order.
func Correlations(series [][]float64, target int) []float64 {
	out := make([]float64, len(series))
	for i, s := range series {
		out[i] = stats.Pearson(series[target], s)
	}
	return out
}

// CorrelationMatrix returns the full PCC matrix (Fig. 7).
func CorrelationMatrix(series [][]float64) [][]float64 {
	n := len(series)
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			m[i][j] = stats.Pearson(series[i], series[j])
		}
	}
	return m
}

// ScreenTopHalf ranks indicators by |PCC| with the target and returns the
// indices of the top half (p = len/2, per Algorithm 1 line 3), with the
// target itself always first — matching the paper's
// r'_i = {cpu_i, ..., perf_p}.
func ScreenTopHalf(series [][]float64, target int) []int {
	p := len(series) / 2
	if p < 1 {
		p = 1
	}
	return ScreenTopK(series, target, p)
}

// ScreenTopK is ScreenTopHalf with an explicit count k (including the
// target itself).
func ScreenTopK(series [][]float64, target, k int) []int {
	defer observeStage(StageScreen, time.Now())
	corr := Correlations(series, target)
	type ranked struct {
		idx int
		c   float64
	}
	rs := make([]ranked, 0, len(series))
	for i, c := range corr {
		if i == target {
			continue
		}
		rs = append(rs, ranked{i, math.Abs(c)})
	}
	sort.SliceStable(rs, func(a, b int) bool { return rs[a].c > rs[b].c })
	out := []int{target}
	for _, r := range rs {
		if len(out) >= k {
			break
		}
		out = append(out, r.idx)
	}
	return out
}

// Select extracts the given series indices, preserving order.
func Select(series [][]float64, idx []int) [][]float64 {
	out := make([][]float64, len(idx))
	for i, j := range idx {
		out[i] = series[j]
	}
	return out
}

// ExpandHorizontal implements the paper's Fig. 4(b): each indicator r is
// replicated into `factor` channels, the e-th copy lagged by e samples
// (r_t, r_{t−1}, r_{t−2}, ... as separate rows). A window of length L over
// the expanded channels therefore spans L+factor−1 raw samples — "from
// [r_{t−3}, r_t] to [r_{t−5}, r_t]" in the paper's example — and duplicates
// recent samples, increasing the weight of short-term neighbours.
//
// The first factor−1 time steps (which would index before the start) are
// trimmed from every output channel so all channels stay aligned.
func ExpandHorizontal(series [][]float64, factor int) [][]float64 {
	defer observeStage(StageExpand, time.Now())
	if factor < 1 {
		panic(fmt.Sprintf("dataprep: expansion factor %d < 1", factor))
	}
	if len(series) == 0 {
		return nil
	}
	n := len(series[0])
	if n <= factor-1 {
		return make([][]float64, 0)
	}
	outLen := n - (factor - 1)
	out := make([][]float64, 0, len(series)*factor)
	for _, s := range series {
		for lag := 0; lag < factor; lag++ {
			c := make([]float64, outLen)
			// Output index t corresponds to raw index t+factor−1;
			// this channel reads lag samples earlier.
			for t := 0; t < outLen; t++ {
				c[t] = s[t+factor-1-lag]
			}
			out = append(out, c)
		}
	}
	return out
}

// WindowConfig controls supervised dataset construction.
type WindowConfig struct {
	// Window is the input sequence length L fed to the models.
	Window int
	// Horizon is the number of future steps k to predict.
	Horizon int
	// Target is the row index (within the provided series) of the
	// indicator being predicted.
	Target int
}

// BuildSupervised slides a window of length cfg.Window over the series
// ([channel][time], already normalized) and builds a dataset with inputs
// X = [N, channels, Window] and targets
// Y = [N, Horizon] holding the next Horizon values of the target series.
func BuildSupervised(series [][]float64, cfg WindowConfig) (train.Dataset, error) {
	defer observeStage(StageWindow, time.Now())
	if len(series) == 0 {
		return train.Dataset{}, errors.New("dataprep: no series")
	}
	if cfg.Window < 1 || cfg.Horizon < 1 {
		return train.Dataset{}, fmt.Errorf("dataprep: invalid window %d / horizon %d", cfg.Window, cfg.Horizon)
	}
	if cfg.Target < 0 || cfg.Target >= len(series) {
		return train.Dataset{}, fmt.Errorf("dataprep: target %d out of range", cfg.Target)
	}
	n := len(series[0])
	for _, s := range series {
		if len(s) != n {
			return train.Dataset{}, errors.New("dataprep: unequal series lengths")
		}
	}
	nSamples := n - cfg.Window - cfg.Horizon + 1
	if nSamples < 1 {
		return train.Dataset{}, fmt.Errorf("dataprep: series too short (%d) for window %d + horizon %d", n, cfg.Window, cfg.Horizon)
	}
	c := len(series)
	x := tensor.New(nSamples, c, cfg.Window)
	y := tensor.New(nSamples, cfg.Horizon)
	for i := 0; i < nSamples; i++ {
		for ci := 0; ci < c; ci++ {
			base := (i*c + ci) * cfg.Window
			copy(x.Data[base:base+cfg.Window], series[ci][i:i+cfg.Window])
		}
		copy(y.Data[i*cfg.Horizon:(i+1)*cfg.Horizon], series[cfg.Target][i+cfg.Window:i+cfg.Window+cfg.Horizon])
	}
	return train.Dataset{X: x, Y: y}, nil
}

// FlattenWindows converts a [N, C, L] dataset into [N][C·L] rows for
// feature-vector models (XGBoost).
func FlattenWindows(d train.Dataset) ([][]float64, []float64) {
	n := d.Len()
	if n == 0 {
		return nil, nil
	}
	per := d.X.Size() / n
	X := make([][]float64, n)
	y := make([]float64, n)
	hk := d.Y.Size() / n
	for i := 0; i < n; i++ {
		row := make([]float64, per)
		copy(row, d.X.Data[i*per:(i+1)*per])
		X[i] = row
		y[i] = d.Y.Data[i*hk] // first-step target
	}
	return X, y
}
