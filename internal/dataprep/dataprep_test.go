package dataprep

import (
	"math"
	"testing"

	"repro/internal/train"
)

func TestCleanRemovesNaNRows(t *testing.T) {
	series := [][]float64{
		{1, math.NaN(), 3, 4},
		{5, 6, 7, math.Inf(1)},
	}
	got := Clean(series)
	if len(got[0]) != 2 || got[0][0] != 1 || got[0][1] != 3 {
		t.Fatalf("Clean = %v", got)
	}
	if got[1][0] != 5 || got[1][1] != 7 {
		t.Fatalf("Clean misaligned: %v", got)
	}
}

func TestCleanEmptyAndCleanInput(t *testing.T) {
	if Clean(nil) != nil {
		t.Fatal("Clean(nil) should be nil")
	}
	series := [][]float64{{1, 2}, {3, 4}}
	got := Clean(series)
	if len(got[0]) != 2 {
		t.Fatal("Clean dropped valid rows")
	}
}

func TestNormalizerMapsToUnitInterval(t *testing.T) {
	series := [][]float64{{10, 20, 30}, {-1, 0, 1}}
	n := FitNormalizer(series)
	out := n.Transform(series)
	want0 := []float64{0, 0.5, 1}
	for i, v := range want0 {
		if math.Abs(out[0][i]-v) > 1e-12 {
			t.Fatalf("Transform[0] = %v", out[0])
		}
	}
	if out[1][0] != 0 || out[1][2] != 1 {
		t.Fatalf("Transform[1] = %v", out[1])
	}
}

func TestNormalizerConstantSeries(t *testing.T) {
	series := [][]float64{{5, 5, 5}}
	n := FitNormalizer(series)
	out := n.Transform(series)
	for _, v := range out[0] {
		if v != 0 {
			t.Fatalf("constant series should map to 0, got %v", out[0])
		}
	}
}

func TestNormalizerInverseRoundTrip(t *testing.T) {
	series := [][]float64{{3, 9, 6, 12}}
	n := FitNormalizer(series)
	norm := n.Transform(series)
	back := n.Inverse(0, norm[0])
	for i, v := range back {
		if math.Abs(v-series[0][i]) > 1e-12 {
			t.Fatalf("Inverse round trip = %v", back)
		}
	}
}

func TestNormalizerNoLeakageFromTest(t *testing.T) {
	trainPart := [][]float64{{0, 10}}
	n := FitNormalizer(trainPart)
	// Values outside the training range extrapolate beyond [0,1] — by
	// design, since fitting on test data would leak.
	out := n.Transform([][]float64{{20}})
	if out[0][0] != 2 {
		t.Fatalf("out-of-range transform = %v", out[0])
	}
}

func TestCorrelationsAndMatrix(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	b := []float64{2, 4, 6, 8}
	c := []float64{4, 3, 2, 1}
	corr := Correlations([][]float64{a, b, c}, 0)
	if math.Abs(corr[0]-1) > 1e-12 || math.Abs(corr[1]-1) > 1e-12 || math.Abs(corr[2]+1) > 1e-12 {
		t.Fatalf("Correlations = %v", corr)
	}
	m := CorrelationMatrix([][]float64{a, c})
	if math.Abs(m[0][0]-1) > 1e-12 || math.Abs(m[0][1]+1) > 1e-12 || math.Abs(m[1][0]+1) > 1e-12 {
		t.Fatalf("CorrelationMatrix = %v", m)
	}
}

func TestScreenTopHalfKeepsTargetFirst(t *testing.T) {
	target := []float64{1, 2, 3, 4, 5, 6}
	strong := []float64{1.1, 2.1, 2.9, 4.2, 5.1, 5.9}
	weak := []float64{3, 1, 4, 1, 5, 9}
	anti := []float64{6, 5, 4, 3, 2, 1} // |corr| = 1, ranks top
	series := [][]float64{weak, target, strong, anti}
	idx := ScreenTopHalf(series, 1)
	if len(idx) != 2 {
		t.Fatalf("top half of 4 = %d entries", len(idx))
	}
	if idx[0] != 1 {
		t.Fatalf("target must come first, got %v", idx)
	}
	if idx[1] != 3 && idx[1] != 2 {
		t.Fatalf("second pick should be a strongly correlated series, got %v", idx)
	}
}

func TestScreenTopKAbsoluteCorrelation(t *testing.T) {
	target := []float64{1, 2, 3, 4}
	anti := []float64{4, 3, 2, 1}
	noise := []float64{1, -1, 1, -1}
	idx := ScreenTopK([][]float64{target, anti, noise}, 0, 2)
	if len(idx) != 2 || idx[0] != 0 || idx[1] != 1 {
		t.Fatalf("ScreenTopK must rank by |PCC|: %v", idx)
	}
}

func TestSelect(t *testing.T) {
	series := [][]float64{{1}, {2}, {3}}
	got := Select(series, []int{2, 0})
	if got[0][0] != 3 || got[1][0] != 1 {
		t.Fatalf("Select = %v", got)
	}
}

func TestExpandHorizontalLagsAndAlignment(t *testing.T) {
	s := []float64{10, 11, 12, 13, 14}
	out := ExpandHorizontal([][]float64{s}, 3)
	if len(out) != 3 {
		t.Fatalf("expanded channels = %d", len(out))
	}
	// Output index 0 corresponds to raw index 2.
	if len(out[0]) != 3 {
		t.Fatalf("expanded length = %d", len(out[0]))
	}
	// lag 0: raw values 12,13,14; lag 1: 11,12,13; lag 2: 10,11,12.
	want := [][]float64{{12, 13, 14}, {11, 12, 13}, {10, 11, 12}}
	for l := range want {
		for i := range want[l] {
			if out[l][i] != want[l][i] {
				t.Fatalf("lag %d = %v, want %v", l, out[l], want[l])
			}
		}
	}
}

func TestExpandHorizontalFactorOneIsCopy(t *testing.T) {
	s := []float64{1, 2, 3}
	out := ExpandHorizontal([][]float64{s}, 1)
	if len(out) != 1 || len(out[0]) != 3 || out[0][2] != 3 {
		t.Fatalf("factor 1 = %v", out)
	}
}

func TestExpandHorizontalMultipleIndicators(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	b := []float64{5, 6, 7, 8}
	out := ExpandHorizontal([][]float64{a, b}, 2)
	if len(out) != 4 {
		t.Fatalf("channels = %d, want 4", len(out))
	}
	// Channel order: a lag0, a lag1, b lag0, b lag1.
	if out[0][0] != 2 || out[1][0] != 1 || out[2][0] != 6 || out[3][0] != 5 {
		t.Fatalf("channel order wrong: %v", out)
	}
}

func TestExpandHorizontalTooShort(t *testing.T) {
	out := ExpandHorizontal([][]float64{{1}}, 3)
	if len(out) != 0 {
		t.Fatalf("too-short expansion should be empty, got %v", out)
	}
}

func TestExpandHorizontalSpansPaperExample(t *testing.T) {
	// Paper: window of 4 over factor-3 expansion spans [r_{t-5}, r_t].
	s := make([]float64, 20)
	for i := range s {
		s[i] = float64(i)
	}
	out := ExpandHorizontal([][]float64{s}, 3)
	L := 4
	// Take the final window of length 4 across all 3 channels: values
	// touched must span raw indices t−5..t.
	end := len(out[0])
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, ch := range out {
		for _, v := range ch[end-L:] {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
	}
	if hi != 19 || lo != 14 {
		t.Fatalf("window spans raw [%g, %g], want [14, 19]", lo, hi)
	}
}

func TestBuildSupervisedShapesAndValues(t *testing.T) {
	a := []float64{0, 1, 2, 3, 4, 5, 6, 7}
	b := []float64{10, 11, 12, 13, 14, 15, 16, 17}
	d, err := BuildSupervised([][]float64{a, b}, WindowConfig{Window: 3, Horizon: 2, Target: 0})
	if err != nil {
		t.Fatal(err)
	}
	// N = 8 − 3 − 2 + 1 = 4 samples.
	if d.Len() != 4 {
		t.Fatalf("samples = %d, want 4", d.Len())
	}
	if d.X.Dim(1) != 2 || d.X.Dim(2) != 3 || d.Y.Dim(1) != 2 {
		t.Fatalf("shapes X=%v Y=%v", d.X.Shape(), d.Y.Shape())
	}
	// Sample 0: window a[0:3], b[0:3]; targets a[3], a[4].
	if d.X.At(0, 0, 0) != 0 || d.X.At(0, 0, 2) != 2 || d.X.At(0, 1, 1) != 11 {
		t.Fatal("X values wrong")
	}
	if d.Y.At(0, 0) != 3 || d.Y.At(0, 1) != 4 {
		t.Fatalf("Y values wrong: %v", d.Y.Data)
	}
	// Last sample: window a[3:6]; targets a[6], a[7].
	if d.Y.At(3, 0) != 6 || d.Y.At(3, 1) != 7 {
		t.Fatal("last sample targets wrong")
	}
}

func TestBuildSupervisedErrors(t *testing.T) {
	if _, err := BuildSupervised(nil, WindowConfig{Window: 2, Horizon: 1}); err == nil {
		t.Fatal("expected error for empty series")
	}
	if _, err := BuildSupervised([][]float64{{1, 2}}, WindowConfig{Window: 0, Horizon: 1}); err == nil {
		t.Fatal("expected error for zero window")
	}
	if _, err := BuildSupervised([][]float64{{1, 2}}, WindowConfig{Window: 2, Horizon: 1, Target: 5}); err == nil {
		t.Fatal("expected error for bad target")
	}
	if _, err := BuildSupervised([][]float64{{1, 2}, {1}}, WindowConfig{Window: 1, Horizon: 1}); err == nil {
		t.Fatal("expected error for ragged series")
	}
	if _, err := BuildSupervised([][]float64{{1, 2}}, WindowConfig{Window: 2, Horizon: 2}); err == nil {
		t.Fatal("expected error for too-short series")
	}
}

func TestFlattenWindows(t *testing.T) {
	a := []float64{0, 1, 2, 3, 4}
	d, err := BuildSupervised([][]float64{a}, WindowConfig{Window: 2, Horizon: 1, Target: 0})
	if err != nil {
		t.Fatal(err)
	}
	X, y := FlattenWindows(d)
	if len(X) != 3 || len(X[0]) != 2 {
		t.Fatalf("FlattenWindows X = %v", X)
	}
	if X[0][0] != 0 || X[0][1] != 1 || y[0] != 2 {
		t.Fatalf("row 0 = %v -> %g", X[0], y[0])
	}
}

func TestFlattenWindowsEmpty(t *testing.T) {
	X, y := FlattenWindows(train.Dataset{})
	if X != nil || y != nil {
		t.Fatal("empty dataset should flatten to nil")
	}
}
