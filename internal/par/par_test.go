package par

import (
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunCoversRange(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	for _, n := range []int{0, 1, 7, 31, 32, 33, 1000} {
		hit := make([]int32, n)
		p.Run(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hit[i], 1)
			}
		})
		for i, h := range hit {
			if h != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, h)
			}
		}
	}
}

func TestRunChunksBoundariesIndependentOfWorkers(t *testing.T) {
	// The determinism contract: chunk boundaries are a function of (n,
	// grain) only. Record them under 1 and 8 workers and compare.
	boundaries := func(workers int) [][2]int {
		p := NewPool(workers)
		defer p.Close()
		n, grain := 1003, 17
		out := make([][2]int, NumChunks(n, grain))
		p.RunChunks(n, grain, func(chunk, lo, hi int) {
			out[chunk] = [2]int{lo, hi}
		})
		return out
	}
	a, b := boundaries(1), boundaries(8)
	if len(a) != len(b) {
		t.Fatalf("chunk counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("chunk %d boundaries differ: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestChunkedReductionBitwiseStable(t *testing.T) {
	// A floating-point sum reduced per chunk and folded in chunk order
	// must be bit-identical across worker counts.
	data := make([]float64, 4099)
	for i := range data {
		data[i] = 1.0 / float64(i+3)
	}
	sum := func(workers int) float64 {
		p := NewPool(workers)
		defer p.Close()
		const grain = 256
		partials := make([]float64, NumChunks(len(data), grain))
		p.RunChunks(len(data), grain, func(chunk, lo, hi int) {
			s := 0.0
			for _, v := range data[lo:hi] {
				s += v
			}
			partials[chunk] = s
		})
		total := 0.0
		for _, s := range partials {
			total += s
		}
		return total
	}
	s1 := sum(1)
	for _, w := range []int{2, 3, 8} {
		if sw := sum(w); sw != s1 {
			t.Fatalf("workers=%d sum %v != workers=1 sum %v", w, sw, s1)
		}
	}
}

func TestPoolCloseStopsGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	p := NewPool(8)
	p.Run(100, func(lo, hi int) {})
	p.Close()
	// Helpers exit synchronously in Close (wg.Wait), but give the runtime
	// a beat to retire them before counting.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > before {
		t.Fatalf("goroutines leaked: %d before, %d after Close", before, got)
	}
	// Run after Close degrades to inline execution rather than hanging.
	done := int32(0)
	p.Run(10, func(lo, hi int) { atomic.AddInt32(&done, int32(hi-lo)) })
	if done != 10 {
		t.Fatalf("post-Close Run covered %d of 10", done)
	}
}

func TestPanicPropagates(t *testing.T) {
	for _, workers := range []int{1, 4} {
		p := NewPool(workers)
		defer func(p *Pool) { p.Close() }(p)
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("workers=%d: panic did not propagate", workers)
				}
				if !strings.Contains(r.(string), "kernel exploded") {
					t.Fatalf("workers=%d: panic value %v lost the original message", workers, r)
				}
			}()
			p.Run(100, func(lo, hi int) {
				if lo == 0 {
					panic("kernel exploded")
				}
			})
		}()
		// The pool must remain usable after a panic.
		n := int32(0)
		p.Run(50, func(lo, hi int) { atomic.AddInt32(&n, int32(hi-lo)) })
		if n != 50 {
			t.Fatalf("workers=%d: pool broken after panic (covered %d/50)", workers, n)
		}
	}
}

func TestNestedRunDoesNotDeadlock(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	doneCh := make(chan struct{})
	go func() {
		defer close(doneCh)
		var total atomic.Int64
		p.Run(16, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				// Inner Run from inside a worker: must complete even with
				// every helper busy on the outer task.
				p.Run(32, func(ilo, ihi int) {
					total.Add(int64(ihi - ilo))
				})
			}
		})
		if total.Load() != 16*32 {
			t.Errorf("nested Run covered %d of %d", total.Load(), 16*32)
		}
	}()
	select {
	case <-doneCh:
	case <-time.After(30 * time.Second):
		t.Fatal("nested Run deadlocked")
	}
}

func TestSetWorkersSwapsDefaultPool(t *testing.T) {
	orig := Workers()
	defer SetWorkers(orig)
	SetWorkers(3)
	if got := Workers(); got != 3 {
		t.Fatalf("Workers() = %d after SetWorkers(3)", got)
	}
	covered := int32(0)
	Run(100, func(lo, hi int) { atomic.AddInt32(&covered, int32(hi-lo)) })
	if covered != 100 {
		t.Fatalf("default pool Run covered %d/100", covered)
	}
}
