package par

import "testing"

// BenchmarkParDispatch measures the fixed cost of waking the pool and
// claiming all chunks of an empty task — the overhead a kernel must
// amortize before parallelizing. The threshold comments in
// internal/tensor/matmul.go cite this number.
func BenchmarkParDispatch(b *testing.B) {
	p := NewPool(4)
	defer p.Close()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Run(1024, func(lo, hi int) {})
	}
}

// BenchmarkParDispatchInline is the same task on a 1-worker pool (pure
// inline execution): the floor the pooled dispatch is compared against.
func BenchmarkParDispatchInline(b *testing.B) {
	p := NewPool(1)
	defer p.Close()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Run(1024, func(lo, hi int) {})
	}
}
