// Package par is the shared parallel-compute substrate for the numeric
// kernels: a persistent worker pool that splits index ranges across
// GOMAXPROCS workers with zero goroutine spawns per operation.
//
// Determinism contract: the chunk boundaries of Run/RunChunks depend only
// on the range length and the grain — never on the worker count or on
// scheduling. Kernels that reduce floating-point partials therefore
// accumulate one partial per chunk and fold them in chunk-index order,
// which makes results bitwise identical whether the pool has 1 worker or
// 64. Worker count only decides which goroutine computes a chunk, not
// what arithmetic is performed.
package par

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// defaultChunksPerRun is how many chunks Run carves a range into. It is a
// fixed constant (not a function of the worker count) so that chunk
// boundaries — and hence any per-chunk floating-point partials — are
// identical across pool sizes. 32 chunks keeps the per-chunk claim cost
// (one atomic add) negligible while still load-balancing uneven chunks
// across up to 32 workers.
const defaultChunksPerRun = 32

// task is one Run invocation: a range, a grain, and an atomically claimed
// chunk cursor shared by every goroutine that helps execute it. Tasks are
// pooled and reference-counted so steady-state dispatch allocates nothing:
// the submitter holds one reference, each successful hand-off to a helper
// adds one, and the last goroutine to release returns the task to the pool.
type task struct {
	fn      func(chunk, lo, hi int)
	fnRange func(lo, hi int) // used by RunGrain; avoids a wrapper closure
	n       int
	grain   int
	chunks  int

	next    atomic.Int64  // next chunk index to claim
	pending atomic.Int64  // chunks not yet completed
	refs    atomic.Int64  // goroutines still holding this task
	done    chan struct{} // buffered(1) so the task is reusable after receive

	panicked atomic.Bool
	panicVal any
}

var taskPool = sync.Pool{New: func() any {
	return &task{done: make(chan struct{}, 1)}
}}

func getTask() *task { return taskPool.Get().(*task) }

// release drops one reference; the last holder clears the task and returns
// it to the pool. Callers must not touch the task after releasing.
func (t *task) release() {
	if t.refs.Add(-1) == 0 {
		t.fn, t.fnRange = nil, nil
		t.panicVal = nil
		t.panicked.Store(false)
		t.next.Store(0)
		taskPool.Put(t)
	}
}

// process claims and executes chunks until none remain. It is called by
// pool workers and by the submitting goroutine alike.
func (t *task) process() {
	for {
		c := int(t.next.Add(1)) - 1
		if c >= t.chunks {
			return
		}
		t.runChunk(c)
	}
}

func (t *task) runChunk(c int) {
	defer func() {
		if r := recover(); r != nil {
			// First panic wins; panicVal is published to the submitter by
			// the pending-counter release chain followed by the done send.
			if t.panicked.CompareAndSwap(false, true) {
				t.panicVal = r
			}
		}
		if t.pending.Add(-1) == 0 {
			t.done <- struct{}{}
		}
	}()
	lo := c * t.grain
	hi := lo + t.grain
	if hi > t.n {
		hi = t.n
	}
	if t.fnRange != nil {
		t.fnRange(lo, hi)
	} else {
		t.fn(c, lo, hi)
	}
}

// Pool is a persistent set of worker goroutines executing tasks. The
// submitting goroutine always participates in its own task, so a Pool with
// W workers runs W-1 helper goroutines and never deadlocks on nested Run
// calls: an inner Run issued from inside a worker simply executes on the
// goroutines that reach it (at minimum, the submitter itself).
type Pool struct {
	workers int
	work    chan *task
	wg      sync.WaitGroup
	closed  atomic.Bool
}

// NewPool creates a pool that runs tasks on up to workers goroutines
// (including the submitter). workers < 1 is treated as 1; a 1-worker pool
// spawns no goroutines and runs everything inline.
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	p := &Pool{workers: workers, work: make(chan *task, workers)}
	for i := 0; i < workers-1; i++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for t := range p.work {
				t.process()
				t.release()
			}
		}()
	}
	return p
}

// Workers returns the pool's parallelism (helper goroutines + submitter).
func (p *Pool) Workers() int { return p.workers }

// Close shuts the helper goroutines down and waits for them to exit. It
// must not be called concurrently with Run; calling Run after Close runs
// the work inline on the caller.
func (p *Pool) Close() {
	if p.closed.Swap(true) {
		return
	}
	close(p.work)
	p.wg.Wait()
}

// Run splits [0,n) into chunks and executes fn over them, blocking until
// every chunk completes. fn must write to disjoint outputs for distinct
// index ranges. Chunk boundaries depend only on n (see the package
// determinism contract). A panic in any chunk is re-raised on the caller
// after the remaining chunks finish.
func (p *Pool) Run(n int, fn func(lo, hi int)) {
	grain := (n + defaultChunksPerRun - 1) / defaultChunksPerRun
	if grain < 1 {
		grain = 1
	}
	p.RunGrain(n, grain, fn)
}

// RunGrain is Run with a caller-chosen chunk size.
func (p *Pool) RunGrain(n, grain int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	if p.workers == 1 || n <= grain || p.closed.Load() {
		// Run/RunGrain kernels never see chunk boundaries (no chunk index),
		// so the no-parallelism path covers the range in one call instead of
		// chunks-many — sparing kernels that pay a fixed cost per call (e.g.
		// a matrix re-traversal per column block) from paying it when there
		// is nothing to split for.
		fn(0, n)
		return
	}
	t := getTask()
	t.fnRange = fn
	t.n, t.grain, t.chunks = n, grain, NumChunks(n, grain)
	p.dispatch(t)
}

// RunChunks splits [0,n) into NumChunks(n, grain) chunks of size grain
// (the last possibly shorter) and calls fn(chunk, lo, hi) for each. The
// chunk index is the deterministic reduction slot: kernels accumulate one
// partial per chunk and fold partials in chunk order after RunChunks
// returns.
func (p *Pool) RunChunks(n, grain int, fn func(chunk, lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	chunks := NumChunks(n, grain)
	if p.workers == 1 || chunks == 1 || p.closed.Load() {
		// Inline path: same chunk boundaries, zero scheduling.
		runInline(n, grain, chunks, fn)
		return
	}
	t := getTask()
	t.fn = fn
	t.n, t.grain, t.chunks = n, grain, chunks
	p.dispatch(t)
}

// dispatch runs a prepared task on the pool: it wakes helpers, has the
// submitter participate, waits for completion, and recycles the task.
func (p *Pool) dispatch(t *task) {
	t.pending.Store(int64(t.chunks))
	t.refs.Store(1)
	// Wake up to workers-1 helpers; non-blocking so a busy pool (or a
	// nested Run from inside a worker) degrades to the submitter doing
	// more of the work instead of deadlocking. Each successful hand-off
	// takes a reference BEFORE the send so a fast helper can never drop
	// the count to zero while the submitter still holds the task.
wake:
	for i := 0; i < p.workers-1 && i < t.chunks-1; i++ {
		t.refs.Add(1)
		select {
		case p.work <- t:
		default:
			t.refs.Add(-1)
			break wake // channel full; helpers are busy
		}
	}
	t.process()
	<-t.done
	pv := t.panicVal
	t.release()
	if pv != nil {
		panic(fmt.Sprintf("par: worker panic: %v", pv))
	}
}

func runInline(n, grain, chunks int, fn func(chunk, lo, hi int)) {
	var panicVal any
	for c := 0; c < chunks; c++ {
		lo := c * grain
		hi := lo + grain
		if hi > n {
			hi = n
		}
		func() {
			defer func() {
				if r := recover(); r != nil && panicVal == nil {
					panicVal = r
				}
			}()
			fn(c, lo, hi)
		}()
	}
	if panicVal != nil {
		panic(fmt.Sprintf("par: worker panic: %v", panicVal))
	}
}

// NumChunks returns the number of chunks RunChunks uses for a range of n
// elements at the given grain — the size reduction kernels need for their
// per-chunk partial buffers.
func NumChunks(n, grain int) int {
	if n <= 0 {
		return 0
	}
	if grain < 1 {
		grain = 1
	}
	return (n + grain - 1) / grain
}

var (
	defaultMu   sync.Mutex
	defaultPool *Pool
)

// Default returns the process-wide pool, creating it sized to
// runtime.GOMAXPROCS(0) on first use.
func Default() *Pool {
	defaultMu.Lock()
	defer defaultMu.Unlock()
	if defaultPool == nil {
		defaultPool = NewPool(runtime.GOMAXPROCS(0))
	}
	return defaultPool
}

// SetWorkers replaces the default pool with one of the given size and
// returns the previous size. It exists for tests (the determinism suite
// compares 1-worker and N-worker runs in-process) and for callers that
// want to cap kernel parallelism below GOMAXPROCS. It must not race with
// in-flight Run calls.
func SetWorkers(n int) int {
	defaultMu.Lock()
	defer defaultMu.Unlock()
	prev := runtime.GOMAXPROCS(0)
	if defaultPool != nil {
		prev = defaultPool.workers
		defaultPool.Close()
	}
	defaultPool = NewPool(n)
	return prev
}

// Workers returns the default pool's parallelism.
func Workers() int { return Default().Workers() }

// Run executes fn over [0,n) on the default pool. See (*Pool).Run.
func Run(n int, fn func(lo, hi int)) { Default().Run(n, fn) }

// RunGrain executes fn over [0,n) in chunks of grain on the default pool.
func RunGrain(n, grain int, fn func(lo, hi int)) { Default().RunGrain(n, grain, fn) }

// RunChunks executes fn over [0,n) in indexed chunks on the default pool.
// See (*Pool).RunChunks.
func RunChunks(n, grain int, fn func(chunk, lo, hi int)) { Default().RunChunks(n, grain, fn) }
