// Package adapt closes RPTCN's high-dynamic loop: when the online
// quality engine (internal/quality) detects a mutation point or drift
// escalation, the supervisor fine-tunes a CANDIDATE model in the
// background on recent windows from the ingestion ring store, scores it
// against live traffic in shadow (mirrored forecasts, never returned to
// clients), and atomically hot-swaps it into serving only when the
// promotion gates pass. A probation window after every swap watches the
// new generation's live error and rolls back to the previous weights if
// quality regresses — adaptation can only ever be a no-op or an
// improvement from the caller's perspective, never a new failure mode.
//
// Robustness contract:
//   - The request path is never blocked: every input is a non-blocking
//     enqueue onto a bounded queue (overflow counted, dropped), and the
//     swap itself is one short critical section on the predictor's
//     serving lock.
//   - One retrain in flight, ever. Failures retry with bounded
//     exponential backoff; exhausting the budget raises the
//     rptcn_adapt_alarm gauge and serving continues on the old weights.
//   - Cooldown between swaps bounds churn under detector flapping.
//   - Counters and lifecycle state persist crash-safely under the run
//     dir (internal/fsx); a restart discards any in-flight candidate
//     (its artifacts are pruned) and resumes from idle.
//
// The supervisor runs on a single worker goroutine and is fully
// deterministic given the same event sequence; candidate training reuses
// train.Fit's crash-safe checkpoints, divergence guards, and
// deterministic RNG streams, so a retrain is reproducible bit for bit.
package adapt

import (
	"errors"
	"log/slog"
	"math"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/obs/runlog"
	"repro/internal/quality"
	"repro/internal/trace"
	"repro/internal/train"
)

// Config configures a Supervisor. Predictor and Rings are required.
type Config struct {
	// Predictor is the serving predictor to adapt.
	Predictor *core.Predictor
	// Rings is the recent-history source candidates train on — a plain
	// *trace.RingStore, or the sharded router's delegating view.
	Rings trace.RingSource
	// Dir, when set, holds crash-safe supervisor state
	// (adapt-state.json) and candidate training checkpoints
	// (candidates/). Empty runs fully in-memory.
	Dir string
	// MinSamples is the fewest ring samples an entity needs before its
	// history is worth retraining on (default 4× the predictor's
	// MinHistory, so the supervised split has real windows on each side).
	MinSamples int
	// FineTune tunes candidate training; zero values inherit the
	// predictor's hyperparameters (see core.FineTuneConfig). The Guard
	// is forced on — a diverging fine-tune must self-heal — and the
	// checkpoint dir is pointed at Dir/candidates when Dir is set.
	FineTune core.FineTuneConfig
	// MinShadowResolved is how many mirrored forecasts must resolve
	// against ground truth before the promotion verdict (default 32).
	MinShadowResolved int
	// PromoteMargin is the relative MAE improvement the candidate must
	// show: promoted iff shadowMAE ≤ liveMAE × (1 − PromoteMargin)
	// (default 0.02).
	PromoteMargin float64
	// ProbationResolved is how many post-swap live pairs decide the
	// rollback verdict (default MinShadowResolved).
	ProbationResolved int
	// RollbackFactor triggers rollback when the post-swap live MAE
	// exceeds the pre-swap live MAE × RollbackFactor (default 1.10).
	RollbackFactor float64
	// MaxRetries bounds consecutive retrain failures before the alarm
	// raises and the supervisor goes idle (default 3).
	MaxRetries int
	// RetryBackoff is the first retry delay; it doubles per failure
	// (default 2s).
	RetryBackoff time.Duration
	// Cooldown is the minimum gap between swaps; triggers inside it are
	// ignored (default 60s).
	Cooldown time.Duration
	// MaxPending bounds the mirrored forecasts awaiting ground truth
	// (default 4096).
	MaxPending int
	// QueueSize bounds the event queue (default 4096).
	QueueSize int
	// Registry receives rptcn_adapt_* metrics (default obs.Default()).
	Registry *obs.Registry
	// Journal, when set, receives runlog.TypeAdapt lifecycle events.
	Journal *runlog.Run
	// Log receives lifecycle messages (default obs.Logger("adapt")).
	Log *slog.Logger
	// Now is the clock (default time.Now); injectable for tests.
	Now func() time.Time
}

func (c *Config) fillDefaults() error {
	if c.Predictor == nil {
		return errors.New("adapt: Config.Predictor is required")
	}
	if c.Rings == nil {
		return errors.New("adapt: Config.Rings is required")
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 4 * c.Predictor.MinHistory()
	}
	if c.MinShadowResolved <= 0 {
		c.MinShadowResolved = 32
	}
	if c.PromoteMargin == 0 {
		c.PromoteMargin = 0.02
	}
	if c.ProbationResolved <= 0 {
		c.ProbationResolved = c.MinShadowResolved
	}
	if c.RollbackFactor == 0 {
		c.RollbackFactor = 1.10
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 3
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 2 * time.Second
	}
	if c.Cooldown == 0 {
		c.Cooldown = 60 * time.Second
	}
	if c.MaxPending <= 0 {
		c.MaxPending = 4096
	}
	if c.QueueSize <= 0 {
		c.QueueSize = 4096
	}
	if c.Registry == nil {
		c.Registry = obs.Default()
	}
	if c.Log == nil {
		c.Log = obs.Logger("adapt")
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	c.FineTune.Guard.Enabled = true
	if c.Dir != "" && c.FineTune.Checkpoint.Dir == "" {
		c.FineTune.Checkpoint.Dir = filepath.Join(c.Dir, "candidates")
	}
	return nil
}

// Lifecycle states.
const (
	StateIdle      = "idle"
	StateTraining  = "training"
	StateShadow    = "shadow"
	StateProbation = "probation"
)

func stateCode(s string) float64 {
	switch s {
	case StateTraining:
		return 1
	case StateShadow:
		return 2
	case StateProbation:
		return 3
	}
	return 0
}

// event kinds.
const (
	evTrigger = iota
	evMirror
	evActuals
	evStatus
	evFlush
)

type event struct {
	kind   int
	entity string
	t      int64
	in     *core.PreparedInput // evMirror
	values []float64           // evMirror: live forecast; evActuals: ground truth
	reply  chan Status
	done   chan struct{}
}

// trainResult is what the single in-flight retrain goroutine reports.
type trainResult struct {
	entity string
	cand   *core.Model
	eval   train.Dataset
	err    error
}

// shadowPair is one mirrored horizon step awaiting ground truth.
type shadowPair struct {
	live, cand float64
	hasCand    bool
}

// Supervisor is the drift-adaptive retraining loop. All exported
// methods are safe for concurrent use and never block the caller.
type Supervisor struct {
	cfg Config

	ch        chan event
	trainDone chan trainResult // cap 1: one retrain in flight
	retryCh   chan struct{}    // cap 1: one backoff timer in flight
	stop      chan struct{}
	stopped   chan struct{}
	once      sync.Once

	// mirroring is 1 while the worker wants mirrored forecasts/actuals
	// (shadow or probation): the serve path checks it before paying for
	// an enqueue, so adaptation is ~free while idle.
	mirroring atomic.Bool

	// Metrics.
	stateG    *obs.Gauge
	genG      *obs.Gauge
	alarmG    *obs.Gauge
	swapsC    *obs.Counter
	rollbackC *obs.Counter
	retrainOK *obs.Counter
	retrainKO *obs.Counter
	shadowC   *obs.Counter
	droppedEv *obs.Counter

	// Worker-owned state.
	state        string
	alarm        bool
	swaps        uint64
	rollbacks    uint64
	retrains     uint64
	failures     uint64
	lastSwapUnix int64
	cooldownEnd  time.Time
	retry        int
	retryTimer   *time.Timer

	// Candidate under evaluation (shadow) and rollback capture
	// (probation).
	entity    string
	candModel *core.Model
	candEval  train.Dataset
	inf       *core.Inferencer
	pending   map[string]map[int64][]shadowPair
	pendingN  int
	shadowRes int
	liveAbs   float64
	candAbs   float64
	prevModel *core.Model
	prevEval  train.Dataset
	probRes   int
	probAbs   float64
	baseMAE   float64 // pre-swap live MAE, the probation baseline
}

// New starts a supervisor (one worker goroutine; stop with Close). Any
// candidate left behind by a crash is discarded: its checkpoints are
// pruned and the persisted counters resume from disk with state idle —
// the serving model is authoritative, a half-trained candidate never is.
func New(cfg Config) (*Supervisor, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	reg := cfg.Registry
	s := &Supervisor{
		cfg:       cfg,
		ch:        make(chan event, cfg.QueueSize),
		trainDone: make(chan trainResult, 1),
		retryCh:   make(chan struct{}, 1),
		stop:      make(chan struct{}),
		stopped:   make(chan struct{}),
		state:     StateIdle,
		pending:   map[string]map[int64][]shadowPair{},
		stateG: reg.Gauge("rptcn_adapt_state",
			"Adaptation state: 0 idle, 1 training, 2 shadow, 3 probation."),
		genG: reg.Gauge("rptcn_adapt_generation",
			"Serving model generation (1 = original fit)."),
		alarmG: reg.Gauge("rptcn_adapt_alarm",
			"1 while retraining has exhausted its retry budget; serving continues on old weights."),
		swapsC: reg.Counter("rptcn_adapt_swaps_total",
			"Model hot-swaps performed (promotions and rollbacks)."),
		rollbackC: reg.Counter("rptcn_adapt_rollbacks_total",
			"Post-swap probation rollbacks to the previous generation."),
		retrainOK: reg.Counter("rptcn_adapt_retrains_total",
			"Background retrains, by result.", obs.L("result", "ok")),
		retrainKO: reg.Counter("rptcn_adapt_retrains_total",
			"Background retrains, by result.", obs.L("result", "failed")),
		shadowC: reg.Counter("rptcn_adapt_shadow_forecasts_total",
			"Candidate forecasts computed in shadow (never served)."),
		droppedEv: reg.Counter("rptcn_adapt_dropped_events_total",
			"Adaptation events dropped because the queue was full."),
	}
	if err := s.recover(); err != nil {
		return nil, err
	}
	s.genG.Set(float64(cfg.Predictor.Generation()))
	s.stateG.Set(stateCode(s.state))
	if s.alarm {
		s.alarmG.Set(1)
	}
	go s.run()
	return s, nil
}

// OnQualityEvent is the quality.Config.Events subscription point: it
// runs on the quality engine's worker goroutine, so it only enqueues.
func (s *Supervisor) OnQualityEvent(ev quality.Event) {
	// Only escalations trigger retraining: every mutation fire, and
	// drift reaching alarm. A drift recovery ("ok") is not a reason to
	// retrain.
	if ev.Kind == "drift" && ev.State != "alarm" {
		return
	}
	s.send(event{kind: evTrigger, entity: ev.Entity, t: ev.T})
}

// MirrorForecast mirrors one served forecast (with its prepared input)
// for shadow/probation scoring. Cheap no-op unless the supervisor is
// actively scoring; in must be immutable (core.PreparedInput is).
func (s *Supervisor) MirrorForecast(entity string, t int64, in *core.PreparedInput, live []float64) {
	if !s.mirroring.Load() || in == nil || len(live) == 0 {
		return
	}
	vals := make([]float64, len(live))
	copy(vals, live)
	s.send(event{kind: evMirror, entity: entity, t: t, in: in, values: vals})
}

// ObserveActuals feeds ground truth: actuals[i] is the target
// indicator's value at sample time t0+i. Cheap no-op unless scoring.
func (s *Supervisor) ObserveActuals(entity string, t0 int64, actuals []float64) {
	if !s.mirroring.Load() || len(actuals) == 0 {
		return
	}
	vals := make([]float64, len(actuals))
	copy(vals, actuals)
	s.send(event{kind: evActuals, entity: entity, t: t0, values: vals})
}

func (s *Supervisor) send(ev event) {
	select {
	case s.ch <- ev:
	case <-s.stopped:
	default:
		s.droppedEv.Inc()
	}
}

// Flush blocks until every event enqueued before the call has been
// processed (no-op after Close).
func (s *Supervisor) Flush() {
	done := make(chan struct{})
	select {
	case s.ch <- event{kind: evFlush, done: done}:
	case <-s.stopped:
		return
	}
	select {
	case <-done:
	case <-s.stopped:
	}
}

// Status returns a consistent snapshot after draining already-enqueued
// events. After Close it returns the zero status.
func (s *Supervisor) Status() Status {
	reply := make(chan Status, 1)
	select {
	case s.ch <- event{kind: evStatus, reply: reply}:
	case <-s.stopped:
		return Status{}
	}
	select {
	case st := <-reply:
		return st
	case <-s.stopped:
		return Status{}
	}
}

// Close stops the worker and waits for it to exit. A retrain still in
// flight is abandoned (its goroutine finishes into a buffered channel
// and is garbage collected). Idempotent.
func (s *Supervisor) Close() error {
	s.once.Do(func() {
		close(s.stop)
		<-s.stopped
	})
	return nil
}

func (s *Supervisor) run() {
	defer close(s.stopped)
	defer func() {
		if s.retryTimer != nil {
			s.retryTimer.Stop()
		}
	}()
	for {
		select {
		case ev := <-s.ch:
			s.handle(ev)
		case res := <-s.trainDone:
			s.onTrainDone(res)
		case <-s.retryCh:
			s.startRetrain(s.entity)
		case <-s.stop:
			for {
				select {
				case ev := <-s.ch:
					s.handle(ev)
				default:
					return
				}
			}
		}
	}
}

func (s *Supervisor) handle(ev event) {
	switch ev.kind {
	case evTrigger:
		s.onTrigger(ev)
	case evMirror:
		s.onMirror(ev)
	case evActuals:
		s.onActuals(ev)
	case evStatus:
		ev.reply <- s.buildStatus()
	case evFlush:
		close(ev.done)
	}
}

// onTrigger starts a retrain for a quality escalation, unless one is
// already in flight or the post-swap cooldown is still running.
func (s *Supervisor) onTrigger(ev event) {
	if s.state != StateIdle {
		return
	}
	if s.cfg.Now().Before(s.cooldownEnd) {
		s.journal("trigger_ignored", map[string]any{"reason": "cooldown", "entity": ev.entity, "t": ev.t})
		return
	}
	s.retry = 0
	s.startRetrain(ev.entity)
}

// startRetrain gathers training windows and spawns the (single)
// fine-tune goroutine. Insufficient data counts as a failure and walks
// the same bounded-retry backoff — rings may simply need to fill up.
func (s *Supervisor) startRetrain(entity string) {
	entity, series := s.gather(entity)
	if series == nil {
		s.onTrainDone(trainResult{entity: entity, err: errors.New("adapt: no entity with enough ring samples to retrain on")})
		return
	}
	s.entity = entity
	s.retrains++
	s.setState(StateTraining)
	s.journal("retrain_start", map[string]any{
		"entity": entity, "samples": len(series[0]), "generation": s.cfg.Predictor.Generation(),
		"attempt": s.retry + 1,
	})
	s.cfg.Log.Info("retraining candidate", "entity", entity,
		"samples", len(series[0]), "attempt", s.retry+1)
	ft := s.cfg.FineTune
	p := s.cfg.Predictor
	go func() {
		cand, eval, _, err := p.FineTune(series, ft)
		s.trainDone <- trainResult{entity: entity, cand: cand, eval: eval, err: err}
	}()
}

// gather snapshots training history: the triggering entity's ring if it
// is deep enough, else the deepest ring in the store.
func (s *Supervisor) gather(entity string) (string, [][]float64) {
	snap := func(id string) [][]float64 {
		var out [][]float64
		s.cfg.Rings.WithWindow(id, 1<<30, func(win [][]float64, _, _ int) {
			if len(win) == 0 || len(win[0]) < s.cfg.MinSamples {
				return
			}
			out = make([][]float64, len(win))
			for i, row := range win {
				out[i] = append([]float64(nil), row...)
			}
		})
		return out
	}
	if entity != "" {
		if ser := snap(entity); ser != nil {
			return entity, ser
		}
	}
	best, bestN := "", 0
	for _, id := range s.cfg.Rings.Entities() {
		if n := s.cfg.Rings.SampleCount(id); n > bestN {
			best, bestN = id, n
		}
	}
	if best != "" && best != entity {
		if ser := snap(best); ser != nil {
			return best, ser
		}
	}
	return entity, nil
}

// onTrainDone moves a finished retrain into shadow, or schedules a
// bounded-backoff retry, or raises the alarm.
func (s *Supervisor) onTrainDone(res trainResult) {
	if res.err != nil {
		s.failures++
		s.retrainKO.Inc()
		s.journal("retrain_failed", map[string]any{
			"entity": res.entity, "attempt": s.retry + 1, "err": res.err.Error(),
		})
		s.cfg.Log.Warn("candidate retrain failed", "entity", res.entity,
			"attempt", s.retry+1, "err", res.err)
		s.retry++
		if s.retry > s.cfg.MaxRetries {
			s.alarm = true
			s.alarmG.Set(1)
			s.journal("alarm", map[string]any{"reason": "retrain retries exhausted", "attempts": s.retry})
			s.cfg.Log.Error("adaptation alarm: retrain retries exhausted; serving continues on current weights",
				"attempts", s.retry)
			s.toIdle()
			return
		}
		// Exponential backoff: RetryBackoff × 2^(attempt−1).
		delay := s.cfg.RetryBackoff << (s.retry - 1)
		s.setState(StateTraining)
		s.entity = res.entity
		s.retryTimer = time.AfterFunc(delay, func() {
			select {
			case s.retryCh <- struct{}{}:
			default:
			}
		})
		return
	}
	s.retrainOK.Inc()
	s.candModel = res.cand
	s.candEval = res.eval
	s.entity = res.entity
	s.inf = s.cfg.Predictor.NewInferencer(res.cand)
	s.resetScoring()
	s.setState(StateShadow)
	s.mirroring.Store(true)
	s.journal("shadow_start", map[string]any{
		"entity": res.entity, "need_resolved": s.cfg.MinShadowResolved,
	})
	s.cfg.Log.Info("candidate in shadow", "entity", res.entity,
		"need_resolved", s.cfg.MinShadowResolved)
}

func (s *Supervisor) resetScoring() {
	s.pending = map[string]map[int64][]shadowPair{}
	s.pendingN = 0
	s.shadowRes = 0
	s.liveAbs, s.candAbs = 0, 0
	s.probRes = 0
	s.probAbs = 0
}

// onMirror scores one served forecast: in shadow the candidate runs the
// same prepared input; in probation only the live (new-generation)
// forecast is tracked against ground truth.
func (s *Supervisor) onMirror(ev event) {
	if s.state != StateShadow && s.state != StateProbation {
		return
	}
	var cand []float64
	if s.state == StateShadow {
		var err error
		cand, err = s.inf.Forecast(ev.in)
		if err != nil {
			s.cfg.Log.Warn("shadow forecast failed", "err", err)
			return
		}
		s.shadowC.Inc()
		for _, v := range cand {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				// Non-finite shadow output is an instant disqualification.
				s.journal("discarded", map[string]any{"entity": s.entity, "reason": "non-finite shadow forecast"})
				s.cfg.Log.Warn("candidate discarded: non-finite shadow forecast")
				s.toIdle()
				return
			}
		}
	}
	byT := s.pending[ev.entity]
	if byT == nil {
		byT = map[int64][]shadowPair{}
		s.pending[ev.entity] = byT
	}
	for k, lv := range ev.values {
		if s.pendingN >= s.cfg.MaxPending {
			break
		}
		pair := shadowPair{live: lv}
		if cand != nil && k < len(cand) {
			pair.cand, pair.hasCand = cand[k], true
		}
		tt := ev.t + int64(k) + 1
		byT[tt] = append(byT[tt], pair)
		s.pendingN++
	}
}

// onActuals resolves mirrored pairs against ground truth and applies
// the shadow/probation verdicts when enough pairs have resolved.
func (s *Supervisor) onActuals(ev event) {
	if s.state != StateShadow && s.state != StateProbation {
		return
	}
	byT := s.pending[ev.entity]
	if byT == nil {
		return
	}
	for i, actual := range ev.values {
		if math.IsNaN(actual) || math.IsInf(actual, 0) {
			continue
		}
		tt := ev.t + int64(i)
		pairs, ok := byT[tt]
		if !ok {
			continue
		}
		delete(byT, tt)
		s.pendingN -= len(pairs)
		for _, pr := range pairs {
			switch s.state {
			case StateShadow:
				if !pr.hasCand {
					continue
				}
				s.liveAbs += math.Abs(pr.live - actual)
				s.candAbs += math.Abs(pr.cand - actual)
				s.shadowRes++
			case StateProbation:
				s.probAbs += math.Abs(pr.live - actual)
				s.probRes++
			}
		}
	}
	switch {
	case s.state == StateShadow && s.shadowRes >= s.cfg.MinShadowResolved:
		s.decideShadow()
	case s.state == StateProbation && s.probRes >= s.cfg.ProbationResolved:
		s.decideProbation()
	}
}

// decideShadow applies the promotion gate and either hot-swaps the
// candidate into serving (entering probation) or discards it.
func (s *Supervisor) decideShadow() {
	liveMAE := s.liveAbs / float64(s.shadowRes)
	candMAE := s.candAbs / float64(s.shadowRes)
	gate := liveMAE * (1 - s.cfg.PromoteMargin)
	if candMAE > gate {
		s.journal("discarded", map[string]any{
			"entity": s.entity, "live_mae": liveMAE, "cand_mae": candMAE,
			"resolved": s.shadowRes, "reason": "promotion gate not met",
		})
		s.cfg.Log.Info("candidate discarded: promotion gate not met",
			"live_mae", liveMAE, "cand_mae", candMAE, "resolved", s.shadowRes)
		s.toIdle()
		return
	}
	prev, prevEval, gen, err := s.cfg.Predictor.SwapModel(s.candModel, s.candEval)
	if err != nil {
		s.journal("discarded", map[string]any{"entity": s.entity, "reason": "swap failed: " + err.Error()})
		s.cfg.Log.Error("hot-swap failed; candidate discarded", "err", err)
		s.toIdle()
		return
	}
	s.swaps++
	s.swapsC.Inc()
	s.lastSwapUnix = s.cfg.Now().Unix()
	s.cooldownEnd = s.cfg.Now().Add(s.cfg.Cooldown)
	s.genG.Set(float64(gen))
	s.alarm = false
	s.alarmG.Set(0)
	s.prevModel, s.prevEval = prev, prevEval
	s.baseMAE = liveMAE
	s.resetScoring()
	s.candModel, s.inf = nil, nil
	s.setState(StateProbation)
	s.journal("promoted", map[string]any{
		"entity": s.entity, "generation": gen,
		"live_mae": liveMAE, "cand_mae": candMAE,
	})
	s.cfg.Log.Info("candidate promoted", "generation", gen,
		"live_mae", liveMAE, "cand_mae", candMAE, "probation_need", s.cfg.ProbationResolved)
}

// decideProbation keeps the new generation or rolls back to the old.
func (s *Supervisor) decideProbation() {
	probMAE := s.probAbs / float64(s.probRes)
	if probMAE <= s.baseMAE*s.cfg.RollbackFactor {
		s.journal("probation_pass", map[string]any{
			"generation": s.cfg.Predictor.Generation(), "mae": probMAE, "baseline_mae": s.baseMAE,
		})
		s.cfg.Log.Info("probation passed; promotion is final",
			"mae", probMAE, "baseline_mae", s.baseMAE)
		s.toIdle()
		return
	}
	prev, prevEval := s.prevModel, s.prevEval
	_, _, gen, err := s.cfg.Predictor.SwapModel(prev, prevEval)
	if err != nil {
		// Rolling back can only fail if serving was lost entirely;
		// alarm and keep what we have.
		s.alarm = true
		s.alarmG.Set(1)
		s.journal("alarm", map[string]any{"reason": "rollback failed: " + err.Error()})
		s.cfg.Log.Error("rollback failed", "err", err)
		s.toIdle()
		return
	}
	s.rollbacks++
	s.rollbackC.Inc()
	s.swaps++
	s.swapsC.Inc()
	s.lastSwapUnix = s.cfg.Now().Unix()
	s.cooldownEnd = s.cfg.Now().Add(s.cfg.Cooldown)
	s.genG.Set(float64(gen))
	s.journal("rollback", map[string]any{
		"generation": gen, "mae": probMAE, "baseline_mae": s.baseMAE,
	})
	s.cfg.Log.Warn("post-swap quality regressed; rolled back to previous weights",
		"generation", gen, "mae", probMAE, "baseline_mae", s.baseMAE)
	s.toIdle()
}

// toIdle clears candidate state, prunes candidate artifacts, and
// persists.
func (s *Supervisor) toIdle() {
	s.candModel, s.inf = nil, nil
	s.candEval = train.Dataset{}
	s.prevModel, s.prevEval = nil, train.Dataset{}
	s.resetScoring()
	s.mirroring.Store(false)
	if dir := s.cfg.FineTune.Checkpoint.Dir; dir != "" {
		train.PruneCheckpoints(dir, 0)
	}
	s.setState(StateIdle)
}

func (s *Supervisor) setState(state string) {
	s.state = state
	s.stateG.Set(stateCode(state))
	s.persist()
}

func (s *Supervisor) journal(kind string, data map[string]any) {
	if s.cfg.Journal == nil {
		return
	}
	d := map[string]any{"kind": kind}
	for k, v := range data {
		d[k] = v
	}
	s.cfg.Journal.Log(runlog.TypeAdapt, d)
}
