package adapt

import (
	"math"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/par"
	"repro/internal/quality"
)

// TestAdaptKillDuringRetrain is the crash chaos test from the issue's
// acceptance criteria: a child process is SIGKILLed in the middle of a
// candidate fine-tune (after it has written checkpoints), then a fresh
// supervisor over the same state dir must recover cleanly — in-flight
// candidate discarded, artifacts pruned, state idle — and the NEXT
// retrain must converge, promote, and serve bitwise-deterministic
// forecasts at any worker count.
func TestAdaptKillDuringRetrain(t *testing.T) {
	if os.Getenv("ADAPT_KILL_HELPER") == "1" {
		adaptKillHelper(t)
		return
	}
	if testing.Short() {
		t.Skip("re-exec chaos test skipped in -short")
	}

	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run=TestAdaptKillDuringRetrain$")
	cmd.Env = append(os.Environ(), "ADAPT_KILL_HELPER=1", "ADAPT_KILL_DIR="+dir)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = cmd.Process.Kill(); _, _ = cmd.Process.Wait() }()

	// Wait for the child's fine-tune to start checkpointing, then pull
	// the plug mid-training.
	candDir := filepath.Join(dir, "candidates")
	deadline := time.Now().Add(120 * time.Second)
	for {
		if files, _ := filepath.Glob(filepath.Join(candDir, "ckpt-*.json")); len(files) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("child never wrote a candidate checkpoint")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := cmd.Process.Kill(); err != nil { // SIGKILL: no cleanup runs
		t.Fatal(err)
	}
	_, _ = cmd.Process.Wait()

	// Restart: a supervisor over the same dir must come up idle with the
	// orphaned candidate gone.
	f := newFixture(t, Config{Dir: dir})
	st := f.sup.Status()
	if st.State != StateIdle {
		t.Fatalf("recovered state = %q, want idle", st.State)
	}
	if files, _ := filepath.Glob(filepath.Join(candDir, "ckpt-*.json")); len(files) != 0 {
		t.Fatalf("orphaned candidate checkpoints survived recovery: %v", files)
	}
	if st.Retrains == 0 {
		t.Fatal("retrain counter lost across the crash")
	}

	// The next retrain converges and promotes.
	f.trigger()
	f.waitState(t, StateShadow)
	f.feedScoring(t, 0, func() bool { return f.sup.Status().State == StateProbation })
	if got := f.p.Generation(); got != 2 {
		t.Fatalf("generation after post-crash promotion = %d, want 2", got)
	}

	// Post-swap forecasts are bitwise identical at any worker count.
	hist := f.p.MinHistory()
	win := sliceSeries(f.ser, fxSamples-hist, fxSamples)
	ref, err := f.p.ForecastFrom(win)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4} {
		prev := par.SetWorkers(workers)
		got, err := f.p.ForecastFrom(win)
		par.SetWorkers(prev)
		if err != nil {
			t.Fatal(err)
		}
		for i := range ref {
			if math.Float64bits(ref[i]) != math.Float64bits(got[i]) {
				t.Fatalf("workers=%d: forecast[%d] %x vs %x", workers, i, math.Float64bits(ref[i]), math.Float64bits(got[i]))
			}
		}
	}
}

// adaptKillHelper runs in the child process: it starts a deliberately
// slow fine-tune (thousands of epochs, checkpoint every epoch) and then
// parks, waiting to be SIGKILLed by the parent.
func adaptKillHelper(t *testing.T) {
	dir := os.Getenv("ADAPT_KILL_DIR")
	if dir == "" {
		t.Fatal("ADAPT_KILL_DIR not set")
	}
	f := newFixture(t, Config{
		Dir: dir,
		FineTune: core.FineTuneConfig{
			Epochs:   100000, // far longer than the parent lets us live
			Patience: 100000, // no early stop: stay mid-training until killed
			Seed:     5,
		},
	})
	f.sup.OnQualityEvent(quality.Event{Kind: "mutation", Signal: "input", Entity: "m1", T: int64(fxMutateAt + 20)})
	select {} // killed from outside
}
