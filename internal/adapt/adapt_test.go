package adapt

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/obs/runlog"
	"repro/internal/quality"
	"repro/internal/trace"
)

// fixture is one self-contained adaptation scenario: a predictor fitted
// on the clean prefix of a mutated trace, rings filled with the mutated
// tail, and a supervisor with test-sized gates.
type fixture struct {
	p      *core.Predictor
	rings  *trace.RingStore
	sup    *Supervisor
	ser    *trace.EntitySeries
	dir    string
	reg    *obs.Registry
	logBuf *bytes.Buffer
}

const (
	fxSamples  = 600
	fxMutateAt = 300 // regime flips high at sample 300 and stays
	fxTrainLen = 280 // clean prefix the predictor is fitted on
)

// series returns [indicator][time] over [lo,hi).
func sliceSeries(e *trace.EntitySeries, lo, hi int) [][]float64 {
	out := make([][]float64, trace.NumIndicators)
	for i := range out {
		out[i] = e.Metrics[i][lo:hi]
	}
	return out
}

func newFixture(t *testing.T, cfg Config) *fixture {
	t.Helper()
	ser := trace.GenerateWithMutations(fxSamples, []int{fxMutateAt}, 13)
	p := core.NewPredictor(core.PredictorConfig{
		Scenario:     core.MulExp,
		Window:       12,
		Horizon:      2,
		ExpandFactor: 2,
		Epochs:       3,
		BatchSize:    8,
		Seed:         9,
		Model:        core.Config{Channels: []int{6, 6}, KernelSize: 3, WeightNorm: true, FCWidth: 8},
	})
	if err := p.Fit(sliceSeries(ser, 0, fxTrainLen), 0); err != nil {
		t.Fatal(err)
	}

	rings := trace.NewBoundedRingStore(fxSamples, 0)
	var vals [trace.NumIndicators]float64
	for s := fxMutateAt; s < fxSamples; s++ {
		for i := range vals {
			vals[i] = ser.Metrics[i][s]
		}
		if !rings.IngestString("m1", s*ser.Interval, &vals) {
			t.Fatalf("ring rejected sample %d", s)
		}
	}

	f := &fixture{p: p, rings: rings, ser: ser, dir: t.TempDir(), reg: obs.NewRegistry()}
	cfg.Predictor = p
	cfg.Rings = rings
	if cfg.Dir == "" {
		cfg.Dir = f.dir
	} else {
		f.dir = cfg.Dir
	}
	cfg.Registry = f.reg
	if cfg.MinSamples == 0 {
		cfg.MinSamples = 120
	}
	if cfg.FineTune.Epochs == 0 {
		cfg.FineTune = core.FineTuneConfig{Epochs: 2, Seed: 5}
	}
	if cfg.MinShadowResolved == 0 {
		cfg.MinShadowResolved = 8
	}
	if cfg.ProbationResolved == 0 {
		cfg.ProbationResolved = 8
	}
	if cfg.Cooldown == 0 {
		cfg.Cooldown = time.Millisecond
	}
	if cfg.RetryBackoff == 0 {
		cfg.RetryBackoff = 5 * time.Millisecond
	}
	sup, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sup.Close() })
	f.sup = sup
	return f
}

// waitState polls Status until the supervisor reaches want.
func (f *fixture) waitState(t *testing.T, want string) Status {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		st := f.sup.Status()
		if st.State == want {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for state %q; at %+v", want, st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// waitIdleAfter polls until the supervisor is idle AND check passes.
func (f *fixture) waitIdle(t *testing.T, check func(Status) bool) Status {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		st := f.sup.Status()
		if st.State == StateIdle && (check == nil || check(st)) {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for idle; at %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// trigger fires a synthetic mutation event for m1.
func (f *fixture) trigger() {
	f.sup.OnQualityEvent(quality.Event{Kind: "mutation", Signal: "input", Entity: "m1", T: int64(fxMutateAt + 20)})
}

// feedScoring streams live forecasts + ground truth from the mutated
// regime through the mirror/actuals path until stop returns true (or the
// data runs out). distort is added to each actual (0 for honest truth).
func (f *fixture) feedScoring(t *testing.T, distort float64, stop func() bool) {
	t.Helper()
	hist := f.p.MinHistory()
	h := f.p.Cfg.Horizon
	for s := fxMutateAt + hist; s < fxSamples-h; s++ {
		if stop() {
			return
		}
		win := sliceSeries(f.ser, s-hist, s)
		live, err := f.p.ForecastFrom(win)
		if err != nil {
			t.Fatal(err)
		}
		in, err := f.p.PrepareInput(win)
		if err != nil {
			t.Fatal(err)
		}
		f.sup.MirrorForecast("m1", int64(s-1), in, live)
		actuals := make([]float64, h)
		for k := 0; k < h; k++ {
			actuals[k] = f.ser.Metrics[0][s+k] + distort
		}
		f.sup.ObserveActuals("m1", int64(s), actuals)
		f.sup.Flush()
	}
	if !stop() {
		t.Fatal("scoring data exhausted before the supervisor reached a verdict")
	}
}

// TestAdaptPromoteAndProbationPass walks the happy path end to end:
// mutation trigger → background retrain on the mutated ring window →
// shadow scoring beats live (the live model only ever saw the clean
// regime) → atomic promotion to generation 2 → honest probation truth →
// promotion is final.
func TestAdaptPromoteAndProbationPass(t *testing.T) {
	var journal bytes.Buffer
	jr := runlog.New(&journal)
	f := newFixture(t, Config{Journal: jr})
	f.trigger()
	f.waitState(t, StateShadow)

	f.feedScoring(t, 0, func() bool { return f.sup.Status().State == StateProbation })
	st := f.sup.Status()
	if st.Generation != 2 {
		t.Fatalf("generation after promotion = %d, want 2", st.Generation)
	}
	if st.Swaps != 1 || st.Rollbacks != 0 {
		t.Fatalf("swaps/rollbacks = %d/%d, want 1/0", st.Swaps, st.Rollbacks)
	}

	f.feedScoring(t, 0, func() bool { return f.sup.Status().State == StateIdle })
	st = f.waitIdle(t, nil)
	if st.Generation != 2 || st.Rollbacks != 0 {
		t.Fatalf("after probation: generation %d rollbacks %d, want 2/0", st.Generation, st.Rollbacks)
	}
	if st.LastSwapUnix == 0 {
		t.Fatal("LastSwapUnix not stamped")
	}

	// Journal tells the whole story (close flushes the buffered writer).
	if err := jr.Close(); err != nil {
		t.Fatal(err)
	}
	for _, kind := range []string{"retrain_start", "shadow_start", "promoted", "probation_pass"} {
		if !strings.Contains(journal.String(), `"kind":"`+kind+`"`) {
			t.Errorf("journal missing %q event:\n%s", kind, journal.String())
		}
	}
	// Candidate artifacts are pruned once the cycle ends.
	if files, _ := filepath.Glob(filepath.Join(f.dir, "candidates", "ckpt-*.json")); len(files) != 0 {
		t.Fatalf("candidate checkpoints not pruned: %v", files)
	}
	// State persisted crash-safely.
	if _, err := os.Stat(filepath.Join(f.dir, stateFile)); err != nil {
		t.Fatalf("state file missing: %v", err)
	}
}

// TestAdaptRollback promotes a candidate, then feeds probation actuals
// shifted far from every forecast: the post-swap MAE blows past the
// rollback gate and the supervisor must swap the old weights back as a
// new generation.
func TestAdaptRollback(t *testing.T) {
	f := newFixture(t, Config{})
	f.trigger()
	f.waitState(t, StateShadow)
	f.feedScoring(t, 0, func() bool { return f.sup.Status().State == StateProbation })

	f.feedScoring(t, 500, func() bool { return f.sup.Status().State == StateIdle })
	st := f.waitIdle(t, nil)
	if st.Rollbacks != 1 {
		t.Fatalf("rollbacks = %d, want 1", st.Rollbacks)
	}
	if st.Generation != 3 {
		t.Fatalf("generation after rollback = %d, want 3 (promotion + rollback)", st.Generation)
	}
	if st.Swaps != 2 {
		t.Fatalf("swaps = %d, want 2", st.Swaps)
	}
}

// TestAdaptDiscardOnGate sets an unreachable promotion margin: the
// candidate must be quietly discarded, serving stays on generation 1,
// and no swap happens.
func TestAdaptDiscardOnGate(t *testing.T) {
	f := newFixture(t, Config{PromoteMargin: 0.999})
	f.trigger()
	f.waitState(t, StateShadow)
	f.feedScoring(t, 0, func() bool { return f.sup.Status().State == StateIdle })
	st := f.waitIdle(t, nil)
	if st.Generation != 1 || st.Swaps != 0 {
		t.Fatalf("discard changed serving: generation %d swaps %d", st.Generation, st.Swaps)
	}
	if st.Retrains != 1 {
		t.Fatalf("retrains = %d, want 1", st.Retrains)
	}
}

// TestAdaptRetryAndAlarm starves the supervisor of training data (empty
// rings): every retrain attempt fails, the bounded backoff walks through
// MaxRetries, and the alarm raises while serving continues untouched.
func TestAdaptRetryAndAlarm(t *testing.T) {
	ser := trace.GenerateWithMutations(fxSamples, []int{fxMutateAt}, 13)
	p := core.NewPredictor(core.PredictorConfig{
		Scenario: core.MulExp, Window: 12, Horizon: 2, ExpandFactor: 2,
		Epochs: 2, BatchSize: 8, Seed: 9,
		Model: core.Config{Channels: []int{6, 6}, KernelSize: 3, WeightNorm: true, FCWidth: 8},
	})
	if err := p.Fit(sliceSeries(ser, 0, fxTrainLen), 0); err != nil {
		t.Fatal(err)
	}
	sup, err := New(Config{
		Predictor: p, Rings: trace.NewBoundedRingStore(64, 0),
		MaxRetries: 2, RetryBackoff: time.Millisecond,
		Registry: obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sup.Close()
	sup.OnQualityEvent(quality.Event{Kind: "mutation", Signal: "input", Entity: "ghost", T: 100})

	deadline := time.Now().Add(30 * time.Second)
	for {
		st := sup.Status()
		if st.Alarm && st.State == StateIdle {
			if st.Failures != 3 { // initial attempt + 2 retries
				t.Fatalf("failures = %d, want 3", st.Failures)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("alarm never raised; at %+v", st)
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Serving is untouched throughout.
	if p.Generation() != 1 {
		t.Fatalf("generation = %d, want 1", p.Generation())
	}
	// A fresh trigger resets the retry budget and tries again (and
	// clears the alarm on the next successful retrain — not reachable
	// here, but the trigger must at least restart the cycle).
	sup.OnQualityEvent(quality.Event{Kind: "mutation", Signal: "input", Entity: "ghost", T: 200})
	deadline = time.Now().Add(30 * time.Second)
	for {
		if st := sup.Status(); st.Failures > 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("new trigger after alarm did not restart retraining")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestAdaptDriftEventFilter: only drift ALARMS trigger retraining —
// warn/ok transitions must be ignored.
func TestAdaptDriftEventFilter(t *testing.T) {
	f := newFixture(t, Config{})
	f.sup.OnQualityEvent(quality.Event{Kind: "drift", Signal: "error", T: 100, State: "warn"})
	f.sup.OnQualityEvent(quality.Event{Kind: "drift", Signal: "error", T: 101, State: "ok"})
	f.sup.Flush()
	if st := f.sup.Status(); st.State != StateIdle || st.Retrains != 0 {
		t.Fatalf("non-alarm drift events triggered retraining: %+v", st)
	}
	f.sup.OnQualityEvent(quality.Event{Kind: "drift", Signal: "error", T: 102, State: "alarm"})
	f.waitState(t, StateShadow) // alarm does trigger (rings have data)
}

// TestAdaptCooldown: a second trigger inside the cooldown window is
// ignored.
func TestAdaptCooldown(t *testing.T) {
	now := time.Unix(1000, 0)
	f := newFixture(t, Config{
		Cooldown: time.Hour,
		Now:      func() time.Time { return now },
	})
	f.trigger()
	f.waitState(t, StateShadow)
	f.feedScoring(t, 0, func() bool { return f.sup.Status().State == StateProbation })
	f.feedScoring(t, 0, func() bool { return f.sup.Status().State == StateIdle })
	st := f.waitIdle(t, nil)
	if st.Swaps != 1 {
		t.Fatalf("swaps = %d, want 1", st.Swaps)
	}
	f.trigger() // inside the 1h cooldown — must be ignored
	f.sup.Flush()
	if st := f.sup.Status(); st.State != StateIdle || st.Retrains != 1 {
		t.Fatalf("trigger inside cooldown not ignored: %+v", st)
	}
}

// TestAdaptRecovery simulates a crash: a supervisor that swapped once is
// closed, a stray candidate checkpoint is planted, and a new supervisor
// over the same dir must restore the counters, prune the orphan, and
// journal the recovery.
func TestAdaptRecovery(t *testing.T) {
	dir := t.TempDir()
	f := newFixture(t, Config{Dir: dir})
	f.trigger()
	f.waitState(t, StateShadow)
	f.feedScoring(t, 0, func() bool { return f.sup.Status().State == StateProbation })
	f.feedScoring(t, 0, func() bool { return f.sup.Status().State == StateIdle })
	f.waitIdle(t, nil)
	f.sup.Close()

	// Plant an orphaned candidate checkpoint, as a SIGKILL mid-retrain
	// would leave behind.
	candDir := filepath.Join(dir, "candidates")
	if err := os.MkdirAll(candDir, 0o755); err != nil {
		t.Fatal(err)
	}
	orphan := filepath.Join(candDir, "ckpt-000001.json")
	if err := os.WriteFile(orphan, []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}

	var journal bytes.Buffer
	jr := runlog.New(&journal)
	sup2, err := New(Config{
		Predictor: f.p, Rings: f.rings, Dir: dir,
		Registry: obs.NewRegistry(), Journal: jr,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sup2.Close()
	st := sup2.Status()
	if st.State != StateIdle {
		t.Fatalf("recovered state = %q, want idle", st.State)
	}
	if st.Swaps != 1 || st.Retrains != 1 {
		t.Fatalf("recovered counters swaps/retrains = %d/%d, want 1/1", st.Swaps, st.Retrains)
	}
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatal("orphaned candidate checkpoint not pruned on recovery")
	}
	if err := jr.Close(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(journal.String(), `"kind":"recovered"`) {
		t.Errorf("journal missing recovered event:\n%s", journal.String())
	}
}

// TestAdaptCorruptStateQuarantined: garbage in adapt-state.json must not
// prevent startup — it is renamed aside and counters start fresh.
func TestAdaptCorruptStateQuarantined(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, stateFile), []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	f := newFixture(t, Config{Dir: dir})
	if st := f.sup.Status(); st.Swaps != 0 || st.State != StateIdle {
		t.Fatalf("corrupt state leaked into supervisor: %+v", st)
	}
	if _, err := os.Stat(filepath.Join(dir, stateFile+".corrupt")); err != nil {
		t.Fatalf("corrupt state not quarantined: %v", err)
	}
}

// TestAdaptMirrorCheapWhenIdle: the mirror path must not enqueue events
// while the supervisor is idle (the atomic gate keeps the serve path
// free), and promotion gates on generation via the registry.
func TestAdaptMirrorCheapWhenIdle(t *testing.T) {
	f := newFixture(t, Config{})
	hist := f.p.MinHistory()
	win := sliceSeries(f.ser, fxMutateAt, fxMutateAt+hist)
	in, err := f.p.PrepareInput(win)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		f.sup.MirrorForecast("m1", int64(i), in, []float64{1, 2})
		f.sup.ObserveActuals("m1", int64(i), []float64{1})
	}
	f.sup.Flush()
	if st := f.sup.Status(); st.DroppedEvents != 0 || st.State != StateIdle {
		t.Fatalf("idle mirroring did work: %+v", st)
	}
	if got := f.sup.pendingN; got != 0 {
		t.Fatalf("idle mirroring buffered %d pairs", got)
	}
}
