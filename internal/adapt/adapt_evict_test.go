package adapt

import (
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/quality"
	"repro/internal/trace"
)

// TestAdaptShadowSurvivesEntityEviction pins the sharded-fleet hazard:
// the entity a shadow run was triggered on is LRU-evicted from a
// bounded ring store while the candidate is still being scored. The
// supervisor must not panic or wedge — scoring runs entirely off
// mirrored events, so the in-flight cycle concludes normally; only the
// NEXT retrain notices the data is gone, walks its bounded retries, and
// raises the alarm while serving stays untouched. Close() afterwards
// must still tear the worker down without leaking it.
func TestAdaptShadowSurvivesEntityEviction(t *testing.T) {
	baseline := runtime.NumGoroutine()

	ser := trace.GenerateWithMutations(fxSamples, []int{fxMutateAt}, 13)
	p := core.NewPredictor(core.PredictorConfig{
		Scenario: core.MulExp, Window: 12, Horizon: 2, ExpandFactor: 2,
		Epochs: 3, BatchSize: 8, Seed: 9,
		Model: core.Config{Channels: []int{6, 6}, KernelSize: 3, WeightNorm: true, FCWidth: 8},
	})
	if err := p.Fit(sliceSeries(ser, 0, fxTrainLen), 0); err != nil {
		t.Fatal(err)
	}

	// Capacity for exactly 2 entities: m1 plus one newcomer fits, the
	// second newcomer evicts m1 (the LRU entry).
	rings := trace.NewBoundedRingStore(fxSamples, 2)
	var vals [trace.NumIndicators]float64
	for s := fxMutateAt; s < fxSamples; s++ {
		for i := range vals {
			vals[i] = ser.Metrics[i][s]
		}
		rings.IngestString("m1", s*ser.Interval, &vals)
	}

	sup, err := New(Config{
		Predictor:         p,
		Rings:             rings,
		MinSamples:        120,
		FineTune:          core.FineTuneConfig{Epochs: 2, Seed: 5},
		MinShadowResolved: 8,
		// Unreachable gate: the cycle must end in a clean discard, so the
		// test never depends on candidate quality.
		PromoteMargin: 0.999,
		MaxRetries:    2,
		RetryBackoff:  time.Millisecond,
		Cooldown:      time.Millisecond,
		Registry:      obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sup.Close()
	f := &fixture{p: p, sup: sup, ser: ser}

	sup.OnQualityEvent(quality.Event{Kind: "mutation", Signal: "input", Entity: "m1", T: int64(fxMutateAt + 20)})
	f.waitState(t, StateShadow)

	// Mid-shadow: fleet churn evicts the triggering entity.
	for _, id := range []string{"noise1", "noise2"} {
		for s := 0; s < 8; s++ {
			rings.IngestString(id, (s+1)*10, &vals)
		}
	}
	if rings.SampleCount("m1") != 0 {
		t.Fatal("m1 not evicted; fixture broken")
	}
	if ev := rings.Evicted(); ev != 1 {
		t.Fatalf("evicted = %d, want 1", ev)
	}

	// Scoring still runs purely off mirrored events — the evicted entity
	// resolves to a verdict as if nothing happened.
	f.feedScoring(t, 0, func() bool { return sup.Status().State == StateIdle })
	st := f.waitIdle(t, nil)
	if st.Generation != 1 || st.Swaps != 0 {
		t.Fatalf("discard after eviction changed serving: %+v", st)
	}
	if st.Retrains != 1 {
		t.Fatalf("retrains = %d, want 1", st.Retrains)
	}

	// The NEXT cycle is where the eviction bites: m1's ring is gone and
	// the churn entities are far too shallow to retrain on, so gather
	// fails every attempt, the bounded backoff runs out, and the alarm
	// raises — an abort, not a panic or a wedge.
	time.Sleep(2 * time.Millisecond) // clear the 1ms cooldown
	sup.OnQualityEvent(quality.Event{Kind: "mutation", Signal: "input", Entity: "m1", T: int64(fxSamples)})
	deadline := time.Now().Add(30 * time.Second)
	for {
		st = sup.Status()
		if st.Alarm && st.State == StateIdle {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("alarm never raised after eviction starved retraining; at %+v", st)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if st.Failures != 3 { // initial attempt + MaxRetries
		t.Fatalf("failures = %d, want 3", st.Failures)
	}
	if p.Generation() != 1 {
		t.Fatalf("generation = %d, want 1 (serving untouched)", p.Generation())
	}

	// Teardown leaks nothing: the worker exits, Close is idempotent, and
	// the goroutine count settles back to the pre-supervisor baseline.
	if err := sup.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sup.Close(); err != nil {
		t.Fatal(err)
	}
	if got := sup.Status(); got.State != "" {
		t.Fatalf("status after close = %+v, want zero", got)
	}
	deadline = time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline+2 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d now vs %d at start", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
