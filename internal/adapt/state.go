package adapt

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/fsx"
	"repro/internal/train"
)

// stateFile is the crash-safe supervisor snapshot under Config.Dir.
const stateFile = "adapt-state.json"

// stateFormat is bumped on incompatible changes.
const stateFormat = 1

// persistedState is what survives a crash: the lifetime counters and the
// alarm. Lifecycle state deliberately does NOT survive — a candidate
// that was training or in shadow when the process died is discarded on
// restart (its checkpoints are pruned), because the serving model is the
// only weights a recovered process can trust.
type persistedState struct {
	Format       int    `json:"format"`
	State        string `json:"state"` // informational: state at last persist
	Swaps        uint64 `json:"swaps"`
	Rollbacks    uint64 `json:"rollbacks"`
	Retrains     uint64 `json:"retrains"`
	Failures     uint64 `json:"failures"`
	Alarm        bool   `json:"alarm"`
	LastSwapUnix int64  `json:"last_swap_unix,omitempty"`
}

// persist writes the snapshot atomically; called on every lifecycle
// transition from the worker goroutine. Persistence errors are logged,
// never fatal — adaptation keeps running in-memory.
func (s *Supervisor) persist() {
	if s.cfg.Dir == "" {
		return
	}
	st := persistedState{
		Format:       stateFormat,
		State:        s.state,
		Swaps:        s.swaps,
		Rollbacks:    s.rollbacks,
		Retrains:     s.retrains,
		Failures:     s.failures,
		Alarm:        s.alarm,
		LastSwapUnix: s.lastSwapUnix,
	}
	err := fsx.WriteFileAtomic(filepath.Join(s.cfg.Dir, stateFile), func(w io.Writer) error {
		return json.NewEncoder(w).Encode(st)
	})
	if err != nil {
		s.cfg.Log.Warn("persisting adaptation state failed", "err", err)
	}
}

// recover restores counters from a previous run and cleans up any
// abandoned candidate artifacts. Called from New before the worker
// starts. A corrupt state file is quarantined (renamed aside), not
// fatal: losing counters is better than refusing to adapt.
func (s *Supervisor) recover() error {
	if s.cfg.Dir == "" {
		return nil
	}
	if err := os.MkdirAll(s.cfg.Dir, 0o755); err != nil {
		return fmt.Errorf("adapt: %w", err)
	}
	path := filepath.Join(s.cfg.Dir, stateFile)
	raw, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("adapt: %w", err)
	}
	var st persistedState
	if uerr := json.Unmarshal(raw, &st); uerr != nil || st.Format != stateFormat {
		s.cfg.Log.Warn("quarantining unreadable adaptation state", "path", path, "err", uerr)
		_ = os.Rename(path, path+".corrupt")
		return nil
	}
	s.swaps = st.Swaps
	s.rollbacks = st.Rollbacks
	s.retrains = st.Retrains
	s.failures = st.Failures
	s.alarm = st.Alarm
	s.lastSwapUnix = st.LastSwapUnix
	s.swapsC.Add(float64(st.Swaps))
	s.rollbackC.Add(float64(st.Rollbacks))
	// A candidate in flight at crash time is gone; drop its artifacts so
	// they cannot be confused with a live retrain's checkpoints.
	interrupted := st.State != StateIdle
	var pruned int
	if dir := s.cfg.FineTune.Checkpoint.Dir; dir != "" {
		pruned = train.PruneCheckpoints(dir, 0)
	}
	if interrupted || pruned > 0 {
		s.journal("recovered", map[string]any{
			"prev_state": st.State, "pruned_checkpoints": pruned,
		})
		s.cfg.Log.Info("recovered adaptation state; in-flight candidate discarded",
			"prev_state", st.State, "pruned_checkpoints", pruned)
	}
	return nil
}

// ShadowStatus is the live shadow/probation scorecard.
type ShadowStatus struct {
	// Resolved forecasts scored so far and how many the verdict needs.
	Resolved int `json:"resolved"`
	Needed   int `json:"needed"`
	// LiveMAE/CandMAE are the paired MAEs over resolved pairs (shadow
	// phase); in probation CandMAE is 0 and LiveMAE tracks the new
	// generation against the pre-swap BaselineMAE.
	LiveMAE     float64 `json:"live_mae"`
	CandMAE     float64 `json:"cand_mae,omitempty"`
	BaselineMAE float64 `json:"baseline_mae,omitempty"`
}

// Status is a point-in-time snapshot of the supervisor, served by
// /debug/adapt and folded into /v1/model.
type Status struct {
	State         string        `json:"state"`
	Generation    int64         `json:"generation"`
	Entity        string        `json:"entity,omitempty"` // entity driving the current cycle
	Swaps         uint64        `json:"swaps"`
	Rollbacks     uint64        `json:"rollbacks"`
	Retrains      uint64        `json:"retrains"`
	Failures      uint64        `json:"failures"`
	Alarm         bool          `json:"alarm"`
	Retry         int           `json:"retry,omitempty"` // consecutive failures this cycle
	LastSwapUnix  int64         `json:"last_swap_unix,omitempty"`
	Shadow        *ShadowStatus `json:"shadow,omitempty"`
	Probation     *ShadowStatus `json:"probation,omitempty"`
	DroppedEvents uint64        `json:"dropped_events,omitempty"`
}

// buildStatus runs on the worker goroutine.
func (s *Supervisor) buildStatus() Status {
	st := Status{
		State:         s.state,
		Generation:    s.cfg.Predictor.Generation(),
		Entity:        s.entity,
		Swaps:         s.swaps,
		Rollbacks:     s.rollbacks,
		Retrains:      s.retrains,
		Failures:      s.failures,
		Alarm:         s.alarm,
		Retry:         s.retry,
		LastSwapUnix:  s.lastSwapUnix,
		DroppedEvents: uint64(s.droppedEv.Value()),
	}
	switch s.state {
	case StateShadow:
		sh := &ShadowStatus{Resolved: s.shadowRes, Needed: s.cfg.MinShadowResolved}
		if s.shadowRes > 0 {
			sh.LiveMAE = s.liveAbs / float64(s.shadowRes)
			sh.CandMAE = s.candAbs / float64(s.shadowRes)
		}
		st.Shadow = sh
	case StateProbation:
		pb := &ShadowStatus{Resolved: s.probRes, Needed: s.cfg.ProbationResolved, BaselineMAE: s.baseMAE}
		if s.probRes > 0 {
			pb.LiveMAE = s.probAbs / float64(s.probRes)
		}
		st.Probation = pb
	}
	return st
}
