// Package gbt implements gradient-boosted regression trees in the style of
// XGBoost (Chen & Guestrin 2016), the strongest classical baseline in the
// paper's Table II. It uses the defining pieces of that system: a
// second-order (gradient/hessian) approximation of the loss, exact greedy
// split search with the regularized gain
//
//	gain = ½·[G_L²/(H_L+λ) + G_R²/(H_R+λ) − G²/(H+λ)] − γ,
//
// leaf weights −G/(H+λ), shrinkage, and row/column subsampling.
package gbt

import (
	"fmt"
	"sort"

	"repro/internal/tensor"
)

// Config holds the boosting hyperparameters.
type Config struct {
	Rounds         int     // number of trees (default 100)
	MaxDepth       int     // maximum tree depth (default 4)
	LearningRate   float64 // shrinkage η (default 0.1)
	Lambda         float64 // L2 regularization λ on leaf weights (default 1)
	Gamma          float64 // minimum split gain γ (default 0)
	MinChildWeight float64 // minimum hessian sum per child (default 1)
	Subsample      float64 // row subsample ratio per tree (default 1)
	ColSample      float64 // column subsample ratio per tree (default 1)
	Seed           uint64  // RNG seed for subsampling
}

func (c *Config) fillDefaults() {
	if c.Rounds == 0 {
		c.Rounds = 100
	}
	if c.MaxDepth == 0 {
		c.MaxDepth = 4
	}
	if c.LearningRate == 0 {
		c.LearningRate = 0.1
	}
	if c.Lambda == 0 {
		c.Lambda = 1
	}
	if c.MinChildWeight == 0 {
		c.MinChildWeight = 1
	}
	if c.Subsample == 0 {
		c.Subsample = 1
	}
	if c.ColSample == 0 {
		c.ColSample = 1
	}
}

type node struct {
	leaf      bool
	value     float64 // leaf weight
	feature   int
	threshold float64
	gain      float64 // split gain (for feature importance)
	left      *node
	right     *node
}

func (n *node) predict(x []float64) float64 {
	for !n.leaf {
		if x[n.feature] < n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.value
}

// Model is a fitted gradient-boosted ensemble.
type Model struct {
	Base  float64 // initial prediction (training mean)
	Eta   float64
	trees []*node
}

// NTrees returns the number of boosted trees.
func (m *Model) NTrees() int { return len(m.trees) }

// Fit trains the ensemble for squared-error regression. X is row-major
// [n][features]; y has length n.
func Fit(X [][]float64, y []float64, cfg Config) (*Model, error) {
	if len(X) == 0 || len(X) != len(y) {
		return nil, fmt.Errorf("gbt: bad input sizes %d rows, %d targets", len(X), len(y))
	}
	cfg.fillDefaults()
	n := len(X)
	nf := len(X[0])
	rng := tensor.NewRNG(cfg.Seed)

	base := 0.0
	for _, v := range y {
		base += v
	}
	base /= float64(n)

	m := &Model{Base: base, Eta: cfg.LearningRate}
	pred := make([]float64, n)
	for i := range pred {
		pred[i] = base
	}
	grad := make([]float64, n)
	hess := make([]float64, n)

	for round := 0; round < cfg.Rounds; round++ {
		// Squared loss: g = pred − y, h = 1.
		for i := range grad {
			grad[i] = pred[i] - y[i]
			hess[i] = 1
		}
		rows := sampleRows(rng, n, cfg.Subsample)
		cols := sampleCols(rng, nf, cfg.ColSample)
		tree := buildNode(X, grad, hess, rows, cols, cfg, 0)
		m.trees = append(m.trees, tree)
		for i := range pred {
			pred[i] += cfg.LearningRate * tree.predict(X[i])
		}
	}
	return m, nil
}

func sampleRows(rng *tensor.RNG, n int, ratio float64) []int {
	if ratio >= 1 {
		rows := make([]int, n)
		for i := range rows {
			rows[i] = i
		}
		return rows
	}
	k := int(float64(n) * ratio)
	if k < 1 {
		k = 1
	}
	perm := rng.Perm(n)
	rows := perm[:k]
	sort.Ints(rows)
	return rows
}

func sampleCols(rng *tensor.RNG, nf int, ratio float64) []int {
	if ratio >= 1 {
		cols := make([]int, nf)
		for i := range cols {
			cols[i] = i
		}
		return cols
	}
	k := int(float64(nf) * ratio)
	if k < 1 {
		k = 1
	}
	perm := rng.Perm(nf)
	cols := perm[:k]
	sort.Ints(cols)
	return cols
}

// buildNode grows one tree node greedily.
func buildNode(X [][]float64, grad, hess []float64, rows, cols []int, cfg Config, depth int) *node {
	var G, H float64
	for _, i := range rows {
		G += grad[i]
		H += hess[i]
	}
	leafValue := -G / (H + cfg.Lambda)

	if depth >= cfg.MaxDepth || len(rows) < 2 {
		return &node{leaf: true, value: leafValue}
	}

	parentScore := G * G / (H + cfg.Lambda)
	bestGain := 0.0
	bestFeature := -1
	bestThreshold := 0.0
	var bestLeft, bestRight []int

	order := make([]int, len(rows))
	for _, f := range cols {
		copy(order, rows)
		sort.Slice(order, func(a, b int) bool { return X[order[a]][f] < X[order[b]][f] })
		var gl, hl float64
		for k := 0; k < len(order)-1; k++ {
			i := order[k]
			gl += grad[i]
			hl += hess[i]
			// Can't split between equal feature values.
			if X[order[k]][f] == X[order[k+1]][f] {
				continue
			}
			gr := G - gl
			hr := H - hl
			if hl < cfg.MinChildWeight || hr < cfg.MinChildWeight {
				continue
			}
			gain := 0.5*(gl*gl/(hl+cfg.Lambda)+gr*gr/(hr+cfg.Lambda)-parentScore) - cfg.Gamma
			if gain > bestGain {
				bestGain = gain
				bestFeature = f
				bestThreshold = (X[order[k]][f] + X[order[k+1]][f]) / 2
				bestLeft = append(bestLeft[:0], order[:k+1]...)
				bestRight = append(bestRight[:0], order[k+1:]...)
			}
		}
	}

	if bestFeature < 0 {
		return &node{leaf: true, value: leafValue}
	}
	left := append([]int(nil), bestLeft...)
	right := append([]int(nil), bestRight...)
	return &node{
		feature:   bestFeature,
		threshold: bestThreshold,
		gain:      bestGain,
		left:      buildNode(X, grad, hess, left, cols, cfg, depth+1),
		right:     buildNode(X, grad, hess, right, cols, cfg, depth+1),
	}
}

// Predict returns the model output for one feature vector.
func (m *Model) Predict(x []float64) float64 {
	out := m.Base
	for _, t := range m.trees {
		out += m.Eta * t.predict(x)
	}
	return out
}

// PredictBatch returns predictions for every row of X.
func (m *Model) PredictBatch(X [][]float64) []float64 {
	out := make([]float64, len(X))
	for i, x := range X {
		out[i] = m.Predict(x)
	}
	return out
}

// StagedLoss returns the training MSE after each boosting round — the
// "loss curve" equivalent used when comparing convergence with the deep
// models (Figs. 9–10 treat XGBoost rounds as epochs).
func (m *Model) StagedLoss(X [][]float64, y []float64) []float64 {
	pred := make([]float64, len(X))
	for i := range pred {
		pred[i] = m.Base
	}
	out := make([]float64, len(m.trees))
	for ti, t := range m.trees {
		s := 0.0
		for i, x := range X {
			pred[i] += m.Eta * t.predict(x)
			d := pred[i] - y[i]
			s += d * d
		}
		out[ti] = s / float64(len(X))
	}
	return out
}
