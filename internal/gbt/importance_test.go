package gbt

import (
	"testing"

	"repro/internal/tensor"
)

func TestImportanceIdentifiesSignalFeature(t *testing.T) {
	// y depends only on feature 1; features 0 and 2 are noise.
	r := tensor.NewRNG(1)
	n := 400
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		X[i] = []float64{r.Float64(), r.Float64(), r.Float64()}
		y[i] = 5 * X[i][1]
	}
	m, err := Fit(X, y, Config{Rounds: 30, MaxDepth: 3, LearningRate: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	imp := m.Importance()
	if len(imp) == 0 {
		t.Fatal("no importance entries")
	}
	if imp[0].Feature != 1 {
		t.Fatalf("top feature = %d, want 1 (importances: %+v)", imp[0].Feature, imp)
	}
	// The signal feature should dominate total gain.
	total := 0.0
	for _, fi := range imp {
		total += fi.Gain
	}
	if imp[0].Gain < 0.9*total {
		t.Fatalf("signal feature gain share = %g, want > 0.9", imp[0].Gain/total)
	}
	if imp[0].Cover <= 0 {
		t.Fatal("cover not counted")
	}
}

func TestImportanceSortedDescending(t *testing.T) {
	r := tensor.NewRNG(2)
	n := 300
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		X[i] = []float64{r.Float64(), r.Float64()}
		y[i] = 3*X[i][0] + X[i][1]
	}
	m, err := Fit(X, y, Config{Rounds: 40, MaxDepth: 3})
	if err != nil {
		t.Fatal(err)
	}
	imp := m.Importance()
	for i := 1; i < len(imp); i++ {
		if imp[i].Gain > imp[i-1].Gain {
			t.Fatal("importance not sorted by gain")
		}
	}
}

func TestImportanceEmptyForStumps(t *testing.T) {
	// With γ huge no splits happen: importance must be empty.
	X := [][]float64{{1}, {2}, {3}, {4}}
	y := []float64{1, 2, 3, 4}
	m, err := Fit(X, y, Config{Rounds: 5, Gamma: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	if imp := m.Importance(); len(imp) != 0 {
		t.Fatalf("stump ensemble importance = %+v", imp)
	}
}
